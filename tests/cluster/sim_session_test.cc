// SimSession: the steppable simulation API and its checkpoint/restore
// contract (DESIGN.md §11). Stepping must be invisible in the final result
// (a stepped run equals a batch RunClusterSim of the same config), a
// snapshot/restore cycle must be byte-invisible in the telemetry exports,
// and corrupted or truncated snapshots must fail Restore with a descriptive
// error -- never a crash or a half-restored session.
#include "src/cluster/sim_session.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "src/sim/snapshot_io.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

ClusterSimConfig SmallSim() {
  ClusterSimConfig config;
  config.num_servers = 8;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 2.0 * 3600.0;
  config.trace.max_lifetime_s = 3600.0;
  config.trace.seed = 42;
  config.trace =
      WithTargetLoad(config.trace, 1.4, config.num_servers, config.server_capacity);
  config.cluster.strategy = ReclamationStrategy::kDeflation;
  config.sample_period_s = 300.0;
  config.reinflate_period_s = 600.0;
  return config;
}

// The observable output of a telemetry context: metrics JSON + trace JSONL.
std::string Export(const TelemetryContext& telemetry) {
  std::ostringstream os;
  telemetry.metrics().DumpJson(os);
  os << "\n";
  telemetry.trace().DumpJsonl(os);
  return os.str();
}

std::string UninterruptedExport(const ClusterSimConfig& base) {
  ClusterSimConfig config = base;
  TelemetryContext telemetry;
  config.telemetry = &telemetry;
  Result<SimSession> session = SimSession::Open(config);
  EXPECT_TRUE(session.ok()) << session.error();
  session.value().Finish();
  return Export(telemetry);
}

TEST(SimSessionTest, OpenRejectsInvalidConfig) {
  ClusterSimConfig config = SmallSim();
  config.num_servers = 0;
  EXPECT_FALSE(SimSession::Open(config).ok());
  config = SmallSim();
  config.sample_period_s = 0.0;
  EXPECT_FALSE(SimSession::Open(config).ok());
  config = SmallSim();
  config.cluster.threads = 0;
  EXPECT_FALSE(SimSession::Open(config).ok());
}

TEST(SimSessionTest, SteppedRunEqualsBatchRun) {
  const ClusterSimConfig config = SmallSim();
  const ClusterSimResult batch = RunClusterSim(config);

  Result<SimSession> session = SimSession::Open(config);
  ASSERT_TRUE(session.ok()) << session.error();
  SimSession& sim = session.value();
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_executed(), 0);
  sim.StepUntil(1800.0);
  EXPECT_EQ(sim.now(), 1800.0);
  while (sim.StepEvents(17) > 0) {
  }
  EXPECT_TRUE(sim.done());
  const ClusterSimResult stepped = sim.Finish();

  EXPECT_EQ(batch.counters.launched, stepped.counters.launched);
  EXPECT_EQ(batch.counters.preempted, stepped.counters.preempted);
  EXPECT_EQ(batch.counters.completed, stepped.counters.completed);
  // Exact double equality on purpose: stepping must not even reorder
  // floating-point folds.
  EXPECT_EQ(batch.mean_utilization, stepped.mean_utilization);
  EXPECT_EQ(batch.mean_overcommitment, stepped.mean_overcommitment);
  EXPECT_EQ(batch.low_priority_allocation_quality,
            stepped.low_priority_allocation_quality);
}

TEST(SimSessionTest, InspectReportsLiveState) {
  Result<SimSession> session = SimSession::Open(SmallSim());
  ASSERT_TRUE(session.ok()) << session.error();
  SimSession& sim = session.value();
  sim.StepUntil(3600.0);
  const SimInspectView view = sim.Inspect();
  EXPECT_EQ(view.now_s, 3600.0);
  EXPECT_EQ(view.duration_s, 2.0 * 3600.0);
  EXPECT_GT(view.events_executed, 0);
  EXPECT_GT(view.pending_events, 0);
  EXPECT_GT(view.hosted_vms, 0);
  EXPECT_EQ(view.servers.size(), 8u);
  int64_t hosted = 0;
  for (const SimServerView& server : view.servers) {
    hosted += server.vm_count;
    EXPECT_GE(server.nominal_overcommitment, 0.0);
  }
  EXPECT_EQ(hosted, view.hosted_vms);
  EXPECT_EQ(view.counters.launched - view.counters.completed -
                view.counters.preempted - view.counters.crash_preempted,
            view.hosted_vms);
}

TEST(SimSessionTest, SnapshotRestoreIsByteInvisible) {
  const ClusterSimConfig base = SmallSim();
  const std::string uninterrupted = UninterruptedExport(base);

  for (const double kill_at_s : {0.0, 450.0, 3600.0, 7100.0}) {
    ClusterSimConfig config = base;
    TelemetryContext first_half;
    config.telemetry = &first_half;
    Result<SimSession> session = SimSession::Open(config);
    ASSERT_TRUE(session.ok()) << session.error();
    session.value().StepUntil(kill_at_s);
    const std::string bytes = session.value().SnapshotBytes();
    session = Error{"killed"};  // drop the live session

    TelemetryContext resumed;
    SimSession::RestoreOptions options;
    options.telemetry = &resumed;
    Result<SimSession> restored = SimSession::RestoreBytes(bytes, options);
    ASSERT_TRUE(restored.ok()) << "kill at " << kill_at_s << "s: "
                               << restored.error();
    EXPECT_EQ(restored.value().now(), kill_at_s);
    restored.value().Finish();
    EXPECT_EQ(uninterrupted, Export(resumed)) << "kill at " << kill_at_s << "s";
  }
}

TEST(SimSessionTest, SnapshotIsThreadCountIndependent) {
  // A snapshot taken at --threads 1 must equal one taken at --threads 7 at
  // the same boundary, and restoring with a different thread count must not
  // change the remainder of the run.
  std::string snapshots[2];
  int i = 0;
  for (const int threads : {1, 7}) {
    ClusterSimConfig config = SmallSim();
    config.cluster.threads = threads;
    TelemetryContext telemetry;  // trace enabled, as in UninterruptedExport
    config.telemetry = &telemetry;
    Result<SimSession> session = SimSession::Open(config);
    ASSERT_TRUE(session.ok()) << session.error();
    session.value().StepUntil(3600.0);
    snapshots[i++] = session.value().SnapshotBytes();
  }
  // The serialized thread count itself is part of the config section, so
  // normalize via restore: both must produce identical final exports.
  std::string exports[2];
  for (int s = 0; s < 2; ++s) {
    TelemetryContext telemetry;
    SimSession::RestoreOptions options;
    options.telemetry = &telemetry;
    options.threads = 2;
    Result<SimSession> restored = SimSession::RestoreBytes(snapshots[s], options);
    ASSERT_TRUE(restored.ok()) << restored.error();
    restored.value().Finish();
    exports[s] = Export(telemetry);
  }
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_EQ(exports[0], UninterruptedExport(SmallSim()));
}

TEST(SimSessionTest, SnapshotFileRoundTripsAndCleansUp) {
  const std::string path = "sim_session_test.snap";
  Result<SimSession> session = SimSession::Open(SmallSim());
  ASSERT_TRUE(session.ok()) << session.error();
  session.value().StepUntil(1200.0);
  const Result<bool> saved = session.value().Snapshot(path);
  ASSERT_TRUE(saved.ok()) << saved.error();

  Result<SimSession> restored = SimSession::Restore(path);
  ASSERT_TRUE(restored.ok()) << restored.error();
  EXPECT_EQ(restored.value().now(), 1200.0);
  EXPECT_EQ(restored.value().events_executed(), session.value().events_executed());
  std::remove(path.c_str());
}

TEST(SimSessionTest, RestoreRejectsMissingFile) {
  const Result<SimSession> restored = SimSession::Restore("no_such_file.snap");
  ASSERT_FALSE(restored.ok());
}

TEST(SimSessionTest, RestoreRejectsCorruptedSnapshots) {
  Result<SimSession> session = SimSession::Open(SmallSim());
  ASSERT_TRUE(session.ok()) << session.error();
  session.value().StepUntil(1800.0);
  const std::string bytes = session.value().SnapshotBytes();

  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  Result<SimSession> r = SimSession::RestoreBytes(bad_magic);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("magic"), std::string::npos) << r.error();

  // Unsupported future version.
  std::string bad_version = bytes;
  bad_version[8] = static_cast<char>(kSnapshotFormatVersion + 1);
  r = SimSession::RestoreBytes(bad_version);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("version"), std::string::npos) << r.error();

  // A flipped payload byte must trip the integrity footer.
  std::string flipped = bytes;
  flipped[bytes.size() / 2] = static_cast<char>(flipped[bytes.size() / 2] ^ 0x5a);
  r = SimSession::RestoreBytes(flipped);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("integrity"), std::string::npos) << r.error();

  // Truncation at a sampling of prefix lengths: always an error, never a
  // crash, never a session.
  for (const size_t keep : {size_t{0}, size_t{4}, size_t{11}, size_t{12},
                            bytes.size() / 3, bytes.size() - 9, bytes.size() - 1}) {
    r = SimSession::RestoreBytes(bytes.substr(0, keep));
    EXPECT_FALSE(r.ok()) << "prefix of " << keep << " bytes restored";
  }

  // Trailing garbage after the footer.
  r = SimSession::RestoreBytes(bytes + "zzz");
  EXPECT_FALSE(r.ok());
}

TEST(SimSessionTest, RestoreRejectsUsedTelemetryContext) {
  Result<SimSession> session = SimSession::Open(SmallSim());
  ASSERT_TRUE(session.ok()) << session.error();
  session.value().StepUntil(1800.0);
  const std::string bytes = session.value().SnapshotBytes();

  // A context that already has metrics registered cannot reproduce the
  // snapshot's registry layout; Restore must refuse rather than mis-import.
  TelemetryContext used;
  used.metrics().Counter("someone/elses/counter");
  SimSession::RestoreOptions options;
  options.telemetry = &used;
  const Result<SimSession> restored = SimSession::RestoreBytes(bytes, options);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.error().find("mismatch"), std::string::npos)
      << restored.error();
}

TEST(SimSessionTest, DeprecatedOverloadStillRoutesThroughConfigSink) {
  // The shim must behave exactly like setting ClusterSimConfig::telemetry.
  TelemetryContext via_overload;
  TelemetryContext via_config;
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  const ClusterSimResult a = RunClusterSim(SmallSim(), &via_overload);
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif
  ClusterSimConfig config = SmallSim();
  config.telemetry = &via_config;
  const ClusterSimResult b = RunClusterSim(config);
  EXPECT_EQ(a.counters.launched, b.counters.launched);
  EXPECT_EQ(Export(via_overload), Export(via_config));
}

}  // namespace
}  // namespace defl
