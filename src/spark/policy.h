// The Spark cascade-deflation policy of Section 4.1: given a deflation
// vector, estimate the total running time under (a) VM-level deflation
// (stragglers dominate: slowdown by the most-deflated VM, Equation 1) and
// (b) application self-deflation (recomputation of killed lineage plus even
// slowdown by the mean deflation, Equation 3), and pick the cheaper one.
// The recomputation fraction r comes from the synchronous-execution-time
// heuristic, overridden to the worst case r = 1 when a shuffle is imminent.
//
// The policy is pure and decoupled from the engine: decisions are made from
// these estimates, outcomes are whatever the engine then actually measures.
#ifndef SRC_SPARK_POLICY_H_
#define SRC_SPARK_POLICY_H_

#include <vector>

#include "src/telemetry/telemetry.h"

namespace defl {

enum class SparkDeflationChoice {
  kSelfDeflate,  // kill tasks / shrink executors, return resources voluntarily
  kVmLevel,      // decline; let OS + hypervisor reclaim underneath
};

const char* SparkDeflationChoiceName(SparkDeflationChoice choice);

struct SparkPolicyInputs {
  // Fraction of the job already completed (c), estimated from stage costs.
  double progress_c = 0.0;
  // Requested deflation fraction per worker VM (the deflation vector d).
  std::vector<double> deflation_fractions;
  // Recomputation-fraction estimate r in [0, 1]: the synchronous-execution
  // heuristic r = sync time / total time, or 1 for worst-case.
  double r_estimate = 0.0;
  // A shuffle stage is scheduled in the immediate future: killed tasks will
  // not have cached outputs, so the policy uses r = 1 (Section 4.1).
  bool shuffle_imminent = false;
  // Synchronous (DNN-style) jobs restart from a checkpoint when tasks are
  // killed; self-deflation is then effectively worst-case.
  bool synchronous_job = false;
  // Efficiency of running on overcommitted (VM-level-deflated) resources
  // relative to the same amount of cleanly relinquished resources: captures
  // lock-holder preemption and swap overheads that self-deflation avoids.
  // Equation 1's denominator becomes (1 - max d) * efficiency. With
  // efficiency = 1 this reduces exactly to the paper's Equation 1; the
  // default reflects the measured gap (see DESIGN.md).
  double vm_overcommit_efficiency = 0.85;
};

// Equation 1 (normalized by T): c + (1-c) / ((1 - max(d)) * efficiency).
double EstimateVmLevelTimeFactor(double c, double max_deflation,
                                 double overcommit_efficiency = 1.0);

// Equation 3 (normalized by T): c + (r*c + 1 - c) / (1 - mean(d)).
double EstimateSelfDeflationTimeFactor(double c, double mean_deflation, double r);

struct SparkPolicyDecision {
  SparkDeflationChoice choice = SparkDeflationChoice::kVmLevel;
  double t_vm_factor = 0.0;
  double t_self_factor = 0.0;
  double r_used = 0.0;
};

// When `telemetry` is non-null, every decision is counted under
// spark/policy/* and recorded as a kSparkPolicy trace event whose target
// vector carries (t_vm_factor, t_self_factor, r_used, progress_c) in its
// (cpu, mem, disk, net) slots and whose outcome is 1 for self-deflation,
// 0 for VM-level.
SparkPolicyDecision DecideSparkDeflation(const SparkPolicyInputs& inputs,
                                         TelemetryContext* telemetry = nullptr);

}  // namespace defl

#endif  // SRC_SPARK_POLICY_H_
