file(REMOVE_RECURSE
  "CMakeFiles/fig5c_memcached_app.dir/fig5c_memcached_app.cc.o"
  "CMakeFiles/fig5c_memcached_app.dir/fig5c_memcached_app.cc.o.d"
  "fig5c_memcached_app"
  "fig5c_memcached_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_memcached_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
