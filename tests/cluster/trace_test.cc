#include "src/cluster/trace.h"

#include <gtest/gtest.h>

#include <cmath>

namespace defl {
namespace {

TraceConfig SmallConfig() {
  TraceConfig config;
  config.duration_s = 3600.0 * 4;
  config.arrival_rate_per_s = 0.05;
  config.seed = 9;
  return config;
}

TEST(TraceTest, DeterministicForSameSeed) {
  const auto a = GenerateTrace(SmallConfig());
  const auto b = GenerateTrace(SmallConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].spec.name, b[i].spec.name);
  }
}

TEST(TraceTest, ArrivalsAreOrderedAndInRange) {
  const auto trace = GenerateTrace(SmallConfig());
  ASSERT_FALSE(trace.empty());
  double prev = 0.0;
  for (const TraceEvent& e : trace) {
    EXPECT_GE(e.arrival_s, prev);
    EXPECT_LT(e.arrival_s, SmallConfig().duration_s);
    prev = e.arrival_s;
  }
}

TEST(TraceTest, ArrivalCountMatchesPoissonRate) {
  const TraceConfig config = SmallConfig();
  const auto trace = GenerateTrace(config);
  const double expected = config.arrival_rate_per_s * config.duration_s;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, 4.0 * std::sqrt(expected));
}

TEST(TraceTest, LifetimesRespectBounds) {
  const TraceConfig config = SmallConfig();
  for (const TraceEvent& e : GenerateTrace(config)) {
    EXPECT_GE(e.lifetime_s, config.min_lifetime_s);
    EXPECT_LE(e.lifetime_s, config.max_lifetime_s);
  }
}

TEST(TraceTest, PriorityMixMatchesFraction) {
  TraceConfig config = SmallConfig();
  config.duration_s = 3600.0 * 24;
  config.low_priority_fraction = 0.5;
  const auto trace = GenerateTrace(config);
  int low = 0;
  for (const TraceEvent& e : trace) {
    low += e.spec.priority == VmPriority::kLow ? 1 : 0;
  }
  const double fraction = static_cast<double>(low) / static_cast<double>(trace.size());
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(TraceTest, MinSizesFollowCatalog) {
  for (const TraceEvent& e : GenerateTrace(SmallConfig())) {
    EXPECT_TRUE(e.spec.min_size.AllLeq(e.spec.size));
    EXPECT_GT(e.spec.min_size.cpu(), 0.0);
  }
}

TEST(TraceTest, MeanLifetimeFormulaMatchesEmpirical) {
  TraceConfig config = SmallConfig();
  config.duration_s = 3600.0 * 200;
  config.arrival_rate_per_s = 0.05;
  const auto trace = GenerateTrace(config);
  double sum = 0.0;
  for (const TraceEvent& e : trace) {
    sum += e.lifetime_s;
  }
  const double empirical = sum / static_cast<double>(trace.size());
  EXPECT_NEAR(empirical / MeanLifetimeS(config), 1.0, 0.1);
}

TEST(TraceTest, WithTargetLoadHitsOfferedLoad) {
  TraceConfig config = SmallConfig();
  const int servers = 10;
  const ResourceVector capacity(32.0, 262144.0);
  const TraceConfig tuned = WithTargetLoad(config, 1.6, servers, capacity);
  const double offered =
      tuned.arrival_rate_per_s * MeanLifetimeS(tuned) * MeanVmCpu(tuned);
  EXPECT_NEAR(offered / (servers * capacity.cpu()), 1.6, 1e-9);
}

TEST(TraceTest, DefaultCatalogIsSane) {
  const auto catalog = DefaultVmCatalog();
  ASSERT_GE(catalog.size(), 3u);
  for (const VmCatalogEntry& entry : catalog) {
    EXPECT_GT(entry.weight, 0.0);
    EXPECT_GT(entry.size.cpu(), 0.0);
    EXPECT_GE(entry.min_fraction, 0.0);
    EXPECT_LE(entry.min_fraction, 1.0);
  }
}

}  // namespace
}  // namespace defl
