file(REMOVE_RECURSE
  "CMakeFiles/ext_ablation_balloon.dir/ext_ablation_balloon.cc.o"
  "CMakeFiles/ext_ablation_balloon.dir/ext_ablation_balloon.cc.o.d"
  "ext_ablation_balloon"
  "ext_ablation_balloon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ablation_balloon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
