file(REMOVE_RECURSE
  "CMakeFiles/ext_web_cluster_lb.dir/ext_web_cluster_lb.cc.o"
  "CMakeFiles/ext_web_cluster_lb.dir/ext_web_cluster_lb.cc.o.d"
  "ext_web_cluster_lb"
  "ext_web_cluster_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_web_cluster_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
