// EventTrace: a structured, machine-consumable record of every deflation
// decision the system takes. Each record is one fixed-size POD entry
// {time, kind, layer, vm, server, target_vector, reclaimed_vector, outcome},
// appended in O(1); recording can be disabled entirely (one branch per call)
// for hot-path benchmarking. The trace replaces grepping DEFL_LOG output:
// the per-VM allocation timelines, deflation latency distributions and
// deflation-tolerance analyses of the evaluation all read from it.
//
// Storage is epoch-arena-chunked (DESIGN.md §14): records append into
// fixed-size chunks bump-allocated from an EpochArena, so a multi-million-
// record cloud run never pays vector-doubling copies, and Clear() recycles
// every chunk in O(chunks) -- a record..Clear cycle is allocation-free in
// steady state. Records are addressed through TraceEventView (indexable,
// iterable); they are not one contiguous array.
//
// Event kinds and the meaning of the vector/outcome fields are documented in
// DESIGN.md ("Telemetry & tracing").
#ifndef SRC_TELEMETRY_EVENT_TRACE_H_
#define SRC_TELEMETRY_EVENT_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "src/common/epoch_arena.h"
#include "src/resources/resource_vector.h"

namespace defl {

enum class TraceEventKind : uint8_t {
  kCascadeStage,   // one layer of one cascade deflation (layer set)
  kDeflation,      // a whole cascade Deflate() call (requested vs reclaimed)
  kReinflation,    // reverse cascade (requested vs returned)
  kPlacement,      // a VM was placed on a server
  kRejection,      // an arrival could not be placed
  kVmLaunch,       // a VM started running on a server
  kVmRemove,       // a VM left a server (any reason)
  kVmComplete,     // normal completion, recorded by the cluster manager
  kPreemption,     // a low-priority VM was revoked
  kOvercommitEnter,  // server's nominal demand crossed above capacity
  kOvercommitExit,   // ...and back below
  kSparkPolicy,    // a Section 4.1 policy decision
  kTaskKill,       // a Spark task was killed (self-deflation / preemption)
  kRollback,       // a synchronous Spark job rolled back to its checkpoint
  kFaultInjected,  // the FaultInjector fired a fault (outcome = FaultKind)
  kAgentTimeout,   // an agent RPC attempt timed out
  kBreakerTrip,    // consecutive timeouts opened a VM's circuit breaker
  kBreakerReset,   // a footprint probe succeeded; the breaker closed
  kServerCrash,    // a whole server went down; its VMs were lost
  kServerDegrade,  // a server was excluded from new placements
  kServerRecover,  // a crashed/degraded server came back
};

// The cascade layer an event belongs to, kNone for non-cascade events.
enum class CascadeLayer : uint8_t {
  kNone,
  kApplication,
  kGuestOs,
  kBalloon,
  kHypervisor,
};

const char* TraceEventKindName(TraceEventKind kind);
const char* CascadeLayerName(CascadeLayer layer);

struct TraceEventRecord {
  double time = 0.0;
  TraceEventKind kind = TraceEventKind::kDeflation;
  CascadeLayer layer = CascadeLayer::kNone;
  int64_t vm = -1;      // VmId, -1 when not VM-scoped
  int64_t server = -1;  // ServerId, -1 when not server-scoped
  ResourceVector target;
  ResourceVector reclaimed;
  // Kind-specific code: success flag, placement pass, policy choice, stage id.
  int32_t outcome = 0;
};

// Lightweight random-access view over the trace's chunked record storage.
// Valid until the trace is mutated (append, Clear, RestoreEvents) -- the
// same contract the old contiguous-vector reference had.
class TraceEventView {
 public:
  static constexpr size_t kChunkRecords = 512;

  TraceEventView(const std::vector<TraceEventRecord*>* chunks, size_t size)
      : chunks_(chunks), size_(size) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const TraceEventRecord& operator[](size_t i) const {
    return (*chunks_)[i / kChunkRecords][i % kChunkRecords];
  }

  class Iterator {
   public:
    Iterator(const std::vector<TraceEventRecord*>* chunks, size_t index)
        : chunks_(chunks), index_(index) {}
    const TraceEventRecord& operator*() const {
      return (*chunks_)[index_ / kChunkRecords][index_ % kChunkRecords];
    }
    const TraceEventRecord* operator->() const { return &**this; }
    Iterator& operator++() {
      ++index_;
      return *this;
    }
    bool operator==(const Iterator& other) const { return index_ == other.index_; }
    bool operator!=(const Iterator& other) const { return index_ != other.index_; }

   private:
    const std::vector<TraceEventRecord*>* chunks_;
    size_t index_;
  };

  Iterator begin() const { return Iterator(chunks_, 0); }
  Iterator end() const { return Iterator(chunks_, size_); }

 private:
  const std::vector<TraceEventRecord*>* chunks_;
  size_t size_;
};

class EventTrace {
 public:
  EventTrace() : arena_(TraceEventView::kChunkRecords * sizeof(TraceEventRecord)) {}
  EventTrace(const EventTrace&) = delete;
  EventTrace& operator=(const EventTrace&) = delete;

  // The clock stamps records with the current simulated time; producers that
  // run outside a simulator leave it unset (records stamp 0, or use RecordAt).
  void SetClock(std::function<double()> clock) { clock_ = std::move(clock); }
  void ClearClock() { clock_ = nullptr; }
  double Now() const { return clock_ ? clock_() : 0.0; }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // O(1) append; a disabled trace costs one branch.
  void Record(TraceEventKind kind, CascadeLayer layer, int64_t vm, int64_t server,
              const ResourceVector& target, const ResourceVector& reclaimed,
              int32_t outcome) {
    if (!enabled_) {
      return;
    }
    RecordAt(Now(), kind, layer, vm, server, target, reclaimed, outcome);
  }
  void RecordAt(double time, TraceEventKind kind, CascadeLayer layer, int64_t vm,
                int64_t server, const ResourceVector& target,
                const ResourceVector& reclaimed, int32_t outcome) {
    if (!enabled_) {
      return;
    }
    Append() =
        TraceEventRecord{time, kind, layer, vm, server, target, reclaimed, outcome};
  }

  TraceEventView events() const { return TraceEventView(&chunks_, size_); }
  size_t size() const { return size_; }

  // Drops every record and recycles all chunk storage into the arena's block
  // pool: a record..Clear cycle is allocation-free once warmed.
  void Clear() {
    chunks_.clear();
    size_ = 0;
    arena_.ResetEpoch();
  }

  // Replaces the recorded events wholesale: deterministic checkpoint/restore
  // (SimSession snapshots) rebuilds the trace exactly as the snapshotting run
  // left it, discarding whatever the restore machinery itself recorded.
  // Bypasses the enabled flag, as the wholesale assignment it replaces did.
  void RestoreEvents(const std::vector<TraceEventRecord>& events) {
    Clear();
    for (const TraceEventRecord& event : events) {
      Append() = event;
    }
  }

  // Counts events of one kind (convenience for tests and benches),
  // optionally restricted to one cascade layer.
  int64_t CountKind(TraceEventKind kind) const;
  int64_t CountKind(TraceEventKind kind, CascadeLayer layer) const;

  // One JSON object per line; deterministic (identical runs dump
  // byte-identical output).
  void DumpJsonl(std::ostream& os) const;

 private:
  // Reserves the next record slot, opening a fresh arena chunk when the
  // current one is full. Chunk addresses are stable until Clear().
  TraceEventRecord& Append() {
    const size_t offset = size_ % TraceEventView::kChunkRecords;
    if (offset == 0) {
      chunks_.push_back(
          arena_.NewArray<TraceEventRecord>(TraceEventView::kChunkRecords));
    }
    return chunks_[size_++ / TraceEventView::kChunkRecords][offset];
  }

  bool enabled_ = true;
  std::function<double()> clock_;
  EpochArena arena_;  // one block per chunk; Clear() recycles them all
  std::vector<TraceEventRecord*> chunks_;
  size_t size_ = 0;
};

}  // namespace defl

#endif  // SRC_TELEMETRY_EVENT_TRACE_H_
