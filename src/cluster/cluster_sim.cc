#include "src/cluster/cluster_sim.h"

#include <algorithm>
#include <memory>

#include "src/cluster/predictor.h"
#include "src/common/stats.h"
#include "src/sim/simulator.h"

namespace defl {

ClusterSimResult RunClusterSim(const ClusterSimConfig& config) {
  Simulator sim;
  ClusterManager manager(config.num_servers, config.server_capacity, config.cluster);
  const std::vector<TraceEvent> trace =
      config.explicit_trace.empty() ? GenerateTrace(config.trace)
                                    : config.explicit_trace;

  TimeWeightedMean utilization;
  TimeWeightedMean overcommitment;
  double peak_overcommitment = 0.0;
  std::vector<double> server_oc_samples;

  VmId next_id = 0;
  for (const TraceEvent& event : trace) {
    const VmId id = next_id++;
    sim.At(event.arrival_s, [&manager, &sim, event, id] {
      auto vm = std::make_unique<Vm>(id, event.spec);
      const Result<ServerId> placed = manager.LaunchVm(std::move(vm));
      if (!placed.ok()) {
        return;
      }
      sim.After(event.lifetime_s, [&manager, id] {
        // The VM may have been preempted in the meantime; completing a
        // missing VM is a no-op.
        if (manager.FindVm(id) != nullptr) {
          manager.CompleteVm(id);
        }
      });
    });
  }

  UsageSummary usage;
  RunningStats allocation_quality;
  const double dt_hours = config.sample_period_s / 3600.0;
  sim.Every(config.sample_period_s, [&] {
    const double oc = manager.Overcommitment();
    utilization.Update(sim.now(), manager.Utilization());
    overcommitment.Update(sim.now(), oc);
    peak_overcommitment = std::max(peak_overcommitment, oc);
    for (Server* server : manager.servers()) {
      server_oc_samples.push_back(server->NominalOvercommitment());
      for (const auto& vm : server->vms()) {
        if (vm->priority() == VmPriority::kLow) {
          usage.low_pri_vm_hours += dt_hours;
          usage.low_pri_nominal_cpu_hours += vm->size().cpu() * dt_hours;
          usage.low_pri_effective_cpu_hours += vm->effective().cpu() * dt_hours;
          if (vm->size().cpu() > 0.0) {
            allocation_quality.Add(vm->effective().cpu() / vm->size().cpu());
          }
        } else {
          usage.high_pri_cpu_hours += vm->effective().cpu() * dt_hours;
        }
      }
    }
  });

  // Proactive reinflation loop (optionally with predictive holdback).
  EwmaPredictor high_pri_demand(config.predictor_alpha);
  if (config.reinflate_period_s > 0.0) {
    sim.Every(config.reinflate_period_s, [&] {
      double high_pri_cpu = 0.0;
      for (Server* server : manager.servers()) {
        for (const auto& vm : server->vms()) {
          if (vm->priority() == VmPriority::kHigh) {
            high_pri_cpu += vm->effective().cpu();
          }
        }
      }
      high_pri_demand.Observe(high_pri_cpu);
      double holdback_cpu_per_server = 0.0;
      if (config.predictive_holdback && high_pri_demand.initialized()) {
        const double expected_growth =
            std::max(0.0, high_pri_demand.UpperBound(1.0) - high_pri_cpu);
        holdback_cpu_per_server = expected_growth / config.num_servers;
      }
      for (Server* server : manager.servers()) {
        LocalController* controller = manager.controller(server->id());
        if (controller == nullptr) {
          continue;
        }
        // Hold back capacity-shaped headroom for forecast demand.
        const double cpu = server->capacity().cpu();
        const ResourceVector holdback =
            cpu > 0.0 ? server->capacity() * (holdback_cpu_per_server / cpu)
                      : ResourceVector::Zero();
        controller->ReinflateAll(holdback);
      }
    });
  }

  sim.Run(config.trace.duration_s);

  ClusterSimResult result;
  result.counters = manager.counters();
  const int64_t low = result.counters.launched_low_priority;
  result.preemption_probability =
      low > 0 ? static_cast<double>(result.counters.preempted) / static_cast<double>(low)
              : 0.0;
  const int64_t arrivals = result.counters.launched + result.counters.rejected;
  result.rejection_rate =
      arrivals > 0
          ? static_cast<double>(result.counters.rejected) / static_cast<double>(arrivals)
          : 0.0;
  result.mean_utilization = utilization.Finish(config.trace.duration_s);
  result.mean_overcommitment = overcommitment.Finish(config.trace.duration_s);
  result.peak_overcommitment = peak_overcommitment;
  result.server_overcommitment_samples = std::move(server_oc_samples);
  usage.preemptions = result.counters.preempted;
  result.usage = usage;
  result.low_priority_allocation_quality = allocation_quality.mean();
  return result;
}

}  // namespace defl
