// Spark workload descriptions: RDD lineage chains with narrow/wide
// dependencies, partition counts, per-partition compute costs and output
// sizes. The four evaluation workloads (Table 2) are built here:
//   * ALS    -- shuffle-heavy alternating least squares (deep wide lineage),
//   * K-means -- iterative maps over a cached input with tiny reduces,
//   * CNN/RNN -- synchronous data-parallel DNN training (BigDL-style):
//                every iteration is a barrier; losing any task rolls the
//                model back to the last checkpoint.
#ifndef SRC_SPARK_WORKLOAD_H_
#define SRC_SPARK_WORKLOAD_H_

#include <string>
#include <vector>

namespace defl {

using RddId = int;

struct RddDef {
  RddId id = 0;
  std::string name;
  // -1 for a source RDD (reads from external storage, always recomputable).
  RddId parent = -1;
  // Optional second parent (join/cogroup); always consumed shuffle-wide and
  // forces a stage boundary. -1 = none.
  RddId parent2 = -1;
  // Wide dependency: computing any partition needs ALL parent partitions
  // (shuffle); starts a new stage. Narrow: partition i needs parent's i.
  bool wide = false;
  int num_partitions = 0;
  // Compute cost of one partition, in seconds on one fully-backed core.
  double cost_per_partition_s = 0.0;
  // Materialized output size (shuffle file or cached block) per partition.
  double output_mb_per_partition = 0.0;
  // persist(): output kept in executor memory for reuse by later stages.
  bool cached = false;
};

struct SparkWorkload {
  std::string name;
  std::vector<RddDef> rdds;  // topologically ordered; rdds[i].id == i
  // Synchronous data-parallel training semantics: killing any running task
  // or losing any worker invalidates in-flight and post-checkpoint progress.
  bool synchronous = false;
  // Iteration checkpointing (used by the preemption baseline and Figure 7b):
  // every `checkpoint_every_stages` completed stages, pay `checkpoint_cost_s`
  // and make all outputs so far durable. 0 = disabled.
  int checkpoint_every_stages = 0;
  double checkpoint_cost_s = 0.0;
  // Records processed per task, for throughput timelines (Figure 7b/8a).
  double records_per_task = 0.0;
  // Fraction of a task's runtime that scales with CPU capacity; the rest is
  // memory-bandwidth / synchronization bound. DNN training (BigDL) tasks are
  // mostly bandwidth-bound, which is why CNN tolerates 50% CPU deflation
  // with only ~20% slowdown (Figure 6c).
  double cpu_elastic_fraction = 1.0;
  // Fraction of worker VM memory the tasks actually touch (working set);
  // determines swap pain under VM-level memory deflation. Data-heavy jobs
  // (K-means over 50 GB, ALS over 100 GB) fill their executors; DNN training
  // on small datasets (Cifar-10) does not.
  double memory_demand_fraction = 0.6;

  // Total compute cost (sum over partitions of all RDDs), seconds.
  double TotalCost() const;
};

// Workload builders with the evaluation-scale defaults; the scale factor
// multiplies partition costs (1.0 reproduces the paper-sized runs).
SparkWorkload MakeAlsWorkload(double scale = 1.0);
SparkWorkload MakeKmeansWorkload(double scale = 1.0);
SparkWorkload MakeCnnWorkload(double scale = 1.0, bool with_checkpointing = false,
                              int iterations = 20);
SparkWorkload MakeRnnWorkload(double scale = 1.0, bool with_checkpointing = false,
                              int iterations = 15);

}  // namespace defl

#endif  // SRC_SPARK_WORKLOAD_H_
