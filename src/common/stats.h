// Streaming and batch statistics used by the benchmark harnesses and the
// cluster simulator: Welford running moments, percentiles, fixed-bin
// histograms, and a time-weighted average accumulator for utilization-style
// metrics sampled over simulated time.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace defl {

// Numerically stable running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Merge another accumulator into this one (parallel-friendly).
  void Merge(const RunningStats& other);

  // Welford second moment, exposed with RestoreState for deterministic
  // checkpoint/restore (SimSession snapshots). min()/max()/mean() already
  // return the raw fields exactly whenever count() > 0, and all fields are
  // zero when count() == 0, so those getters round-trip losslessly.
  double m2() const { return m2_; }
  void RestoreState(int64_t count, double mean, double m2, double min,
                    double max, double sum) {
    count_ = count;
    mean_ = mean;
    m2_ = m2;
    min_ = min;
    max_ = max;
    sum_ = sum;
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile with linear interpolation between order statistics.
// p in [0, 100]. Sorts a copy; fine for harness-sized data.
double Percentile(std::vector<double> values, double p);

// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
// first/last bin. Non-finite samples (NaN/Inf) are dropped and counted, not
// binned: casting them to an integer bin index is undefined behavior.
// Used for reporting distributions in bench output.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void Add(double x);
  int64_t bin_count(int bin) const { return counts_[static_cast<size_t>(bin)]; }
  int num_bins() const { return static_cast<int>(counts_.size()); }
  int64_t total() const { return total_; }
  // NaN/Inf samples rejected by Add (not included in total()).
  int64_t dropped() const { return dropped_; }
  double bin_lo(int bin) const;
  double bin_hi(int bin) const;

  // Multi-line "lo..hi: count" rendering for harness output.
  std::string ToString() const;

  // Bin geometry and bin-count restore for deterministic checkpoint/restore
  // (SimSession snapshots). RestoreState requires `counts` to match the
  // constructed bin count; geometry is re-derived from the registration that
  // recreated the histogram, not from the snapshot.
  double lo() const { return lo_; }
  double width() const { return width_; }
  bool RestoreState(const std::vector<int64_t>& counts, int64_t total,
                    int64_t dropped) {
    if (counts.size() != counts_.size()) {
      return false;
    }
    counts_ = counts;
    total_ = total;
    dropped_ = dropped;
    return true;
  }

 private:
  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  int64_t dropped_ = 0;
};

// Time-weighted mean of a piecewise-constant signal, e.g. cluster utilization
// over simulated seconds. Call Update(t, v) at each change point; the value v
// holds from time t until the next update or Finish(t_end).
class TimeWeightedMean {
 public:
  void Update(double time, double value);
  // Closes the signal at time t_end and returns the weighted mean.
  double Finish(double t_end);
  double mean() const;

 private:
  bool started_ = false;
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
};

}  // namespace defl

#endif  // SRC_COMMON_STATS_H_
