#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace defl {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  assert(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), width_((hi - lo) / bins), counts_(static_cast<size_t>(bins), 0) {
  assert(bins > 0 && hi > lo);
}

void Histogram::Add(double x) {
  if (!std::isfinite(x)) {
    ++dropped_;
    return;
  }
  // Clamp before the cast: a finite sample far outside [lo, hi) could still
  // overflow the integer bin index, and that cast is just as undefined.
  const double pos = std::clamp((x - lo_) / width_, 0.0,
                                static_cast<double>(counts_.size() - 1));
  const auto bin = static_cast<int64_t>(pos);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(int bin) const { return lo_ + width_ * bin; }
double Histogram::bin_hi(int bin) const { return lo_ + width_ * (bin + 1); }

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (int b = 0; b < num_bins(); ++b) {
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << "): " << bin_count(b) << "\n";
  }
  return os.str();
}

void TimeWeightedMean::Update(double time, double value) {
  if (started_) {
    assert(time >= last_time_);
    weighted_sum_ += last_value_ * (time - last_time_);
    total_time_ += time - last_time_;
  }
  started_ = true;
  last_time_ = time;
  last_value_ = value;
}

double TimeWeightedMean::Finish(double t_end) {
  Update(t_end, last_value_);
  return mean();
}

double TimeWeightedMean::mean() const {
  return total_time_ > 0.0 ? weighted_sum_ / total_time_ : last_value_;
}

}  // namespace defl
