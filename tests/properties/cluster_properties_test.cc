// Property tests of the trace-driven cluster simulation, swept over loads,
// strategies, placement policies and seeds:
//
//   P1  accounting: launched = completed + preempted + still-running;
//       preempted <= launched_low_priority; rates in [0, 1];
//   P2  capacity: utilization never exceeds 1; effective allocation on every
//       server never exceeds its capacity;
//   P3  dominance: at equal load, deflation-based management never preempts
//       more than preemption-only management;
//   P4  determinism: same seed, same result.
#include <gtest/gtest.h>

#include <tuple>

#include "src/cluster/cluster_sim.h"

namespace defl {
namespace {

ClusterSimConfig MakeConfig(double load, ReclamationStrategy strategy,
                            PlacementPolicy placement, uint64_t seed) {
  ClusterSimConfig config;
  config.num_servers = 16;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 4.0 * 3600.0;
  config.trace.max_lifetime_s = 3.0 * 3600.0;
  config.trace.seed = seed;
  config.trace =
      WithTargetLoad(config.trace, load, config.num_servers, config.server_capacity);
  config.cluster.strategy = strategy;
  config.cluster.placement = placement;
  config.sample_period_s = 200.0;
  return config;
}

using SimCase = std::tuple<double, int /*strategy*/, int /*placement*/, uint64_t>;

class ClusterSimPropertyTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(ClusterSimPropertyTest, AccountingAndCapacityInvariants) {
  const auto [load, strategy, placement, seed] = GetParam();
  const ClusterSimResult r =
      RunClusterSim(MakeConfig(load, static_cast<ReclamationStrategy>(strategy),
                               static_cast<PlacementPolicy>(placement), seed));

  // P1: accounting.
  EXPECT_GE(r.counters.launched, 0);
  EXPECT_LE(r.counters.completed + r.counters.preempted, r.counters.launched);
  EXPECT_LE(r.counters.preempted, r.counters.launched_low_priority);
  EXPECT_LE(r.counters.launched_low_priority, r.counters.launched);
  EXPECT_GE(r.preemption_probability, 0.0);
  EXPECT_LE(r.preemption_probability, 1.0);
  EXPECT_GE(r.rejection_rate, 0.0);
  EXPECT_LE(r.rejection_rate, 1.0);

  // P2: capacity.
  EXPECT_GE(r.mean_utilization, 0.0);
  EXPECT_LE(r.mean_utilization, 1.0 + 1e-9);
  EXPECT_GE(r.peak_overcommitment, r.mean_overcommitment - 1e-9);
  for (const double oc : r.server_overcommitment_samples) {
    EXPECT_GE(oc, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterSimPropertyTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 1.8),
                       ::testing::Values(0, 1),  // deflation, preemption-only
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(5u, 55u)));

class StrategyDominanceTest : public ::testing::TestWithParam<double> {};

TEST_P(StrategyDominanceTest, DeflationNeverPreemptsMoreThanPreemptionOnly) {
  const double load = GetParam();
  const ClusterSimResult deflation = RunClusterSim(MakeConfig(
      load, ReclamationStrategy::kDeflation, PlacementPolicy::kBestFit, 9));
  const ClusterSimResult preemption = RunClusterSim(MakeConfig(
      load, ReclamationStrategy::kPreemptionOnly, PlacementPolicy::kBestFit, 9));
  EXPECT_LE(deflation.preemption_probability,
            preemption.preemption_probability + 0.02)
      << "at load " << load;
  // Deflation should also admit at least as much work.
  EXPECT_GE(deflation.counters.launched, preemption.counters.launched);
}

INSTANTIATE_TEST_SUITE_P(Loads, StrategyDominanceTest,
                         ::testing::Values(0.6, 1.0, 1.4, 1.8, 2.2));

TEST(ClusterSimDeterminismTest, SameSeedSameResult) {
  const ClusterSimConfig config =
      MakeConfig(1.4, ReclamationStrategy::kDeflation, PlacementPolicy::kTwoChoices, 3);
  const ClusterSimResult a = RunClusterSim(config);
  const ClusterSimResult b = RunClusterSim(config);
  EXPECT_EQ(a.counters.launched, b.counters.launched);
  EXPECT_EQ(a.counters.preempted, b.counters.preempted);
  EXPECT_DOUBLE_EQ(a.mean_utilization, b.mean_utilization);
  EXPECT_DOUBLE_EQ(a.mean_overcommitment, b.mean_overcommitment);
}

}  // namespace
}  // namespace defl
