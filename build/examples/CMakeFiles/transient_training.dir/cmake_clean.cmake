file(REMOVE_RECURSE
  "CMakeFiles/transient_training.dir/transient_training.cpp.o"
  "CMakeFiles/transient_training.dir/transient_training.cpp.o.d"
  "transient_training"
  "transient_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
