#include "src/telemetry/metrics.h"

#include <algorithm>

#include "src/telemetry/json_util.h"

namespace defl {

CounterHandle MetricsRegistry::Counter(const std::string& name) {
  const CounterHandle existing = FindCounter(name);
  if (existing.valid()) {
    return existing;
  }
  counters_.push_back(CounterSlot{name, 0});
  return CounterHandle{static_cast<int32_t>(counters_.size()) - 1};
}

GaugeHandle MetricsRegistry::Gauge(const std::string& name) {
  const GaugeHandle existing = FindGauge(name);
  if (existing.valid()) {
    return existing;
  }
  gauges_.push_back(GaugeSlot{name, 0.0});
  return GaugeHandle{static_cast<int32_t>(gauges_.size()) - 1};
}

DistributionHandle MetricsRegistry::Distribution(const std::string& name) {
  const DistributionHandle existing = FindDistribution(name);
  if (existing.valid()) {
    return existing;
  }
  distributions_.push_back(DistributionSlot{name, RunningStats(), {}});
  return DistributionHandle{static_cast<int32_t>(distributions_.size()) - 1};
}

DistributionHandle MetricsRegistry::Distribution(const std::string& name,
                                                 double hist_lo, double hist_hi,
                                                 int hist_bins) {
  const DistributionHandle h = Distribution(name);
  DistributionSlot& slot = distributions_[static_cast<size_t>(h.index)];
  if (slot.histogram.empty()) {
    slot.histogram.emplace_back(hist_lo, hist_hi, hist_bins);
  }
  return h;
}

SeriesHandle MetricsRegistry::Series(const std::string& name) {
  const SeriesHandle existing = FindSeries(name);
  if (existing.valid()) {
    return existing;
  }
  series_.push_back(SeriesSlot{name, {}});
  return SeriesHandle{static_cast<int32_t>(series_.size()) - 1};
}

void MetricsRegistry::Observe(DistributionHandle h, double sample) {
  if (!h.valid()) {
    return;
  }
  DistributionSlot& slot = distributions_[static_cast<size_t>(h.index)];
  slot.stats.Add(sample);
  if (!slot.histogram.empty()) {
    slot.histogram.front().Add(sample);
  }
}

const RunningStats& MetricsRegistry::distribution(DistributionHandle h) const {
  static const RunningStats kEmpty;
  return h.valid() ? distributions_[static_cast<size_t>(h.index)].stats : kEmpty;
}

const std::vector<MetricsRegistry::TimePoint>& MetricsRegistry::series_points(
    SeriesHandle h) const {
  static const std::vector<TimePoint> kEmpty;
  return h.valid() ? series_[static_cast<size_t>(h.index)].points : kEmpty;
}

double MetricsRegistry::SeriesTimeWeightedMean(SeriesHandle h, double t_end) const {
  const std::vector<TimePoint>& points = series_points(h);
  if (points.empty()) {
    return 0.0;
  }
  TimeWeightedMean mean;
  for (const TimePoint& p : points) {
    mean.Update(p.time, p.value);
  }
  return mean.Finish(std::max(t_end, points.back().time));
}

double MetricsRegistry::SeriesMax(SeriesHandle h) const {
  const std::vector<TimePoint>& points = series_points(h);
  double max = 0.0;
  for (const TimePoint& p : points) {
    max = std::max(max, p.value);
  }
  return max;
}

CounterHandle MetricsRegistry::FindCounter(const std::string& name) const {
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].name == name) {
      return CounterHandle{static_cast<int32_t>(i)};
    }
  }
  return CounterHandle{};
}

GaugeHandle MetricsRegistry::FindGauge(const std::string& name) const {
  for (size_t i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i].name == name) {
      return GaugeHandle{static_cast<int32_t>(i)};
    }
  }
  return GaugeHandle{};
}

DistributionHandle MetricsRegistry::FindDistribution(const std::string& name) const {
  for (size_t i = 0; i < distributions_.size(); ++i) {
    if (distributions_[i].name == name) {
      return DistributionHandle{static_cast<int32_t>(i)};
    }
  }
  return DistributionHandle{};
}

SeriesHandle MetricsRegistry::FindSeries(const std::string& name) const {
  for (size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name == name) {
      return SeriesHandle{static_cast<int32_t>(i)};
    }
  }
  return SeriesHandle{};
}

void MetricsRegistry::DumpJson(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  for (size_t i = 0; i < counters_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    " << JsonString(counters_[i].name)
       << ": " << counters_[i].value;
  }
  os << (counters_.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (size_t i = 0; i < gauges_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    " << JsonString(gauges_[i].name)
       << ": " << JsonNumber(gauges_[i].value);
  }
  os << (gauges_.empty() ? "" : "\n  ") << "},\n  \"distributions\": {";
  for (size_t i = 0; i < distributions_.size(); ++i) {
    const DistributionSlot& slot = distributions_[i];
    os << (i == 0 ? "\n" : ",\n") << "    " << JsonString(slot.name) << ": {"
       << "\"count\": " << slot.stats.count()
       << ", \"mean\": " << JsonNumber(slot.stats.mean())
       << ", \"stddev\": " << JsonNumber(slot.stats.stddev())
       << ", \"min\": " << JsonNumber(slot.stats.min())
       << ", \"max\": " << JsonNumber(slot.stats.max())
       << ", \"sum\": " << JsonNumber(slot.stats.sum());
    if (!slot.histogram.empty()) {
      const Histogram& hist = slot.histogram.front();
      os << ", \"histogram\": [";
      for (int b = 0; b < hist.num_bins(); ++b) {
        os << (b == 0 ? "" : ", ") << "[" << JsonNumber(hist.bin_lo(b)) << ", "
           << JsonNumber(hist.bin_hi(b)) << ", " << hist.bin_count(b) << "]";
      }
      os << "]";
    }
    os << "}";
  }
  os << (distributions_.empty() ? "" : "\n  ") << "},\n  \"series\": {";
  for (size_t i = 0; i < series_.size(); ++i) {
    const SeriesSlot& slot = series_[i];
    os << (i == 0 ? "\n" : ",\n") << "    " << JsonString(slot.name)
       << ": {\"points\": [";
    for (size_t p = 0; p < slot.points.size(); ++p) {
      os << (p == 0 ? "" : ", ") << "[" << JsonNumber(slot.points[p].time) << ", "
         << JsonNumber(slot.points[p].value) << "]";
    }
    os << "]}";
  }
  os << (series_.empty() ? "" : "\n  ") << "}\n}\n";
}

MetricsRegistry::State MetricsRegistry::ExportState() const {
  State state;
  state.counters.reserve(counters_.size());
  for (const CounterSlot& slot : counters_) {
    state.counters.emplace_back(slot.name, slot.value);
  }
  state.gauges.reserve(gauges_.size());
  for (const GaugeSlot& slot : gauges_) {
    state.gauges.emplace_back(slot.name, slot.value);
  }
  state.distributions.reserve(distributions_.size());
  for (const DistributionSlot& slot : distributions_) {
    DistributionState d;
    d.name = slot.name;
    d.count = slot.stats.count();
    d.mean = slot.stats.mean();
    d.m2 = slot.stats.m2();
    d.min = slot.stats.min();
    d.max = slot.stats.max();
    d.sum = slot.stats.sum();
    if (!slot.histogram.empty()) {
      const Histogram& hist = slot.histogram.front();
      d.has_histogram = true;
      d.hist_counts.reserve(static_cast<size_t>(hist.num_bins()));
      for (int b = 0; b < hist.num_bins(); ++b) {
        d.hist_counts.push_back(hist.bin_count(b));
      }
      d.hist_total = hist.total();
      d.hist_dropped = hist.dropped();
    }
    state.distributions.push_back(std::move(d));
  }
  state.series.reserve(series_.size());
  for (const SeriesSlot& slot : series_) {
    state.series.emplace_back(slot.name, slot.points);
  }
  return state;
}

Result<bool> MetricsRegistry::ImportState(const State& state) {
  // Verify the full layout first so a mismatch leaves the registry untouched.
  if (state.counters.size() != counters_.size() ||
      state.gauges.size() != gauges_.size() ||
      state.distributions.size() != distributions_.size() ||
      state.series.size() != series_.size()) {
    return Error{"metrics layout mismatch: snapshot has " +
                 std::to_string(state.counters.size()) + "/" +
                 std::to_string(state.gauges.size()) + "/" +
                 std::to_string(state.distributions.size()) + "/" +
                 std::to_string(state.series.size()) +
                 " counter/gauge/distribution/series slots, registry has " +
                 std::to_string(counters_.size()) + "/" +
                 std::to_string(gauges_.size()) + "/" +
                 std::to_string(distributions_.size()) + "/" +
                 std::to_string(series_.size())};
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (state.counters[i].first != counters_[i].name) {
      return Error{"metrics layout mismatch: counter slot " + std::to_string(i) +
                   " is \"" + counters_[i].name + "\" here but \"" +
                   state.counters[i].first + "\" in the snapshot"};
    }
  }
  for (size_t i = 0; i < gauges_.size(); ++i) {
    if (state.gauges[i].first != gauges_[i].name) {
      return Error{"metrics layout mismatch: gauge slot " + std::to_string(i) +
                   " is \"" + gauges_[i].name + "\" here but \"" +
                   state.gauges[i].first + "\" in the snapshot"};
    }
  }
  for (size_t i = 0; i < distributions_.size(); ++i) {
    const DistributionState& d = state.distributions[i];
    DistributionSlot& slot = distributions_[i];
    if (d.name != slot.name) {
      return Error{"metrics layout mismatch: distribution slot " +
                   std::to_string(i) + " is \"" + slot.name + "\" here but \"" +
                   d.name + "\" in the snapshot"};
    }
    if (d.has_histogram != !slot.histogram.empty() ||
        (d.has_histogram &&
         d.hist_counts.size() !=
             static_cast<size_t>(slot.histogram.front().num_bins()))) {
      return Error{"metrics layout mismatch: histogram shape of \"" + slot.name +
                   "\" differs from the snapshot"};
    }
  }
  for (size_t i = 0; i < series_.size(); ++i) {
    if (state.series[i].first != series_[i].name) {
      return Error{"metrics layout mismatch: series slot " + std::to_string(i) +
                   " is \"" + series_[i].name + "\" here but \"" +
                   state.series[i].first + "\" in the snapshot"};
    }
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i].value = state.counters[i].second;
  }
  for (size_t i = 0; i < gauges_.size(); ++i) {
    gauges_[i].value = state.gauges[i].second;
  }
  for (size_t i = 0; i < distributions_.size(); ++i) {
    const DistributionState& d = state.distributions[i];
    DistributionSlot& slot = distributions_[i];
    slot.stats.RestoreState(d.count, d.mean, d.m2, d.min, d.max, d.sum);
    if (d.has_histogram) {
      slot.histogram.front().RestoreState(d.hist_counts, d.hist_total,
                                          d.hist_dropped);
    }
  }
  for (size_t i = 0; i < series_.size(); ++i) {
    series_[i].points = state.series[i].second;
  }
  return true;
}

}  // namespace defl
