// Property test for the allocation-free core (DESIGN.md §14): the epoch
// arenas, pooled event slots, and retire-reclaim scratch buffers are pure
// performance machinery -- they must be invisible in every observable byte.
// Randomized cluster configurations (server count, load, strategy, policy,
// tick periods drawn from DEFL_FAULT_SEED) are run to completion and must
// export byte-identical telemetry across thread counts {1, 2, 7}, across a
// mid-run snapshot/restore, and across a durable-recovery boundary. The
// snapshot bytes themselves must not depend on warm arena/pool state: a
// fresh run and a restored run snapshotted at the same instant (with very
// different recycled-memory footprints) must serialize identically.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>

#include "src/cluster/durable_session.h"
#include "src/cluster/sim_session.h"
#include "src/common/rng.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

const int kThreadCounts[] = {1, 2, 7};

uint64_t TestSeed() {
  const char* env = std::getenv("DEFL_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

// One randomized configuration. Periods are drawn from a set that includes a
// non-dyadic value so the drift-free tick formula's rounding path is
// exercised, not just the exact dyadic accumulation.
ClusterSimConfig RandomConfig(Rng& rng) {
  ClusterSimConfig config;
  config.num_servers = static_cast<int>(rng.UniformInt(6, 16));
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = rng.Uniform(0.5, 1.5) * 3600.0;
  config.trace.max_lifetime_s = 1800.0;
  config.trace.seed = rng.NextU64();
  config.trace = WithTargetLoad(config.trace, rng.Uniform(1.0, 2.0),
                                config.num_servers, config.server_capacity);
  config.cluster.strategy = rng.UniformInt(0, 3) == 0
                                ? ReclamationStrategy::kPreemptionOnly
                                : ReclamationStrategy::kDeflation;
  const PlacementPolicy policies[] = {PlacementPolicy::kBestFit,
                                      PlacementPolicy::kFirstFit,
                                      PlacementPolicy::kTwoChoices};
  config.cluster.placement = policies[static_cast<size_t>(rng.UniformInt(0, 2))];
  const double periods[] = {150.0, 300.0, 450.0};
  config.sample_period_s = periods[static_cast<size_t>(rng.UniformInt(0, 2))];
  config.reinflate_period_s = 2.0 * config.sample_period_s;
  config.predictive_holdback = rng.UniformInt(0, 1) == 1;
  return config;
}

std::string Export(const TelemetryContext& telemetry) {
  std::ostringstream os;
  telemetry.metrics().DumpJson(os);
  os << "\n";
  telemetry.trace().DumpJsonl(os);
  return os.str();
}

std::string RunUninterrupted(ClusterSimConfig config, int threads) {
  config.cluster.threads = threads;
  TelemetryContext telemetry;
  config.telemetry = &telemetry;
  Result<SimSession> session = SimSession::Open(config);
  EXPECT_TRUE(session.ok()) << session.error();
  if (!session.ok()) {
    return "";
  }
  session.value().Finish();
  return Export(telemetry);
}

TEST(ArenaEquivalenceTest, RandomConfigsAreByteIdenticalAcrossThreadCounts) {
  Rng rng(TestSeed() ^ 0xa4e7aULL);
  for (int trial = 0; trial < 3; ++trial) {
    const ClusterSimConfig config = RandomConfig(rng);
    const std::string reference = RunUninterrupted(config, 1);
    ASSERT_FALSE(reference.empty());
    for (const int threads : kThreadCounts) {
      EXPECT_EQ(reference, RunUninterrupted(config, threads))
          << "trial " << trial << ", threads=" << threads;
    }
  }
}

TEST(ArenaEquivalenceTest, MidRunRestoreIsInvisibleUnderRandomConfigs) {
  Rng rng(TestSeed() ^ 0x5ca7c4ULL);
  for (int trial = 0; trial < 3; ++trial) {
    const ClusterSimConfig config = RandomConfig(rng);
    const std::string reference = RunUninterrupted(config, 1);
    const double kill_at_s = rng.Uniform(0.0, config.trace.duration_s);
    const int threads =
        kThreadCounts[static_cast<size_t>(rng.UniformInt(0, 2))];
    const int restore_threads =
        kThreadCounts[static_cast<size_t>(rng.UniformInt(0, 2))];
    std::string bytes;
    {
      TelemetryContext telemetry;
      ClusterSimConfig run = config;
      run.cluster.threads = threads;
      run.telemetry = &telemetry;
      Result<SimSession> session = SimSession::Open(run);
      ASSERT_TRUE(session.ok()) << session.error();
      session.value().StepUntil(kill_at_s);
      bytes = session.value().SnapshotBytes();
    }
    TelemetryContext resumed;
    SimSession::RestoreOptions options;
    options.telemetry = &resumed;
    options.threads = restore_threads;
    Result<SimSession> restored = SimSession::RestoreBytes(bytes, options);
    ASSERT_TRUE(restored.ok()) << restored.error();
    restored.value().Finish();
    EXPECT_EQ(reference, Export(resumed))
        << "trial " << trial << ": kill at " << kill_at_s << "s, threads "
        << threads << " -> " << restore_threads;
  }
}

TEST(ArenaEquivalenceTest, SnapshotBytesNeverDependOnWarmArenaState) {
  // A fresh session and a restored one hold very different recycled-memory
  // state at the same simulated instant: the restored session's event-slot
  // pool, trace-chunk arena, and sweep scratch were warmed by a different
  // history. Their snapshots at a common later time must still be
  // byte-equal -- nothing arena-shaped may leak into the format.
  Rng rng(TestSeed() ^ 0xa110cULL);
  for (int trial = 0; trial < 2; ++trial) {
    const ClusterSimConfig config = RandomConfig(rng);
    const double early = rng.Uniform(0.1, 0.4) * config.trace.duration_s;
    const double late = rng.Uniform(0.6, 0.9) * config.trace.duration_s;

    ClusterSimConfig fresh_run = config;
    TelemetryContext fresh_telemetry;
    fresh_run.telemetry = &fresh_telemetry;
    Result<SimSession> fresh = SimSession::Open(fresh_run);
    ASSERT_TRUE(fresh.ok()) << fresh.error();
    fresh.value().StepUntil(late);
    const std::string direct = fresh.value().SnapshotBytes();

    std::string early_bytes;
    {
      TelemetryContext telemetry;
      ClusterSimConfig run = config;
      run.telemetry = &telemetry;
      Result<SimSession> session = SimSession::Open(run);
      ASSERT_TRUE(session.ok()) << session.error();
      session.value().StepUntil(early);
      early_bytes = session.value().SnapshotBytes();
    }
    TelemetryContext resumed;
    SimSession::RestoreOptions options;
    options.telemetry = &resumed;
    Result<SimSession> restored = SimSession::RestoreBytes(early_bytes, options);
    ASSERT_TRUE(restored.ok()) << restored.error();
    restored.value().StepUntil(late);
    EXPECT_EQ(direct, restored.value().SnapshotBytes())
        << "trial " << trial << ": snapshot at " << late
        << "s differs between a fresh run and one restored at " << early << "s";

    // Restore -> immediate re-snapshot is the identity on the bytes, too.
    Result<SimSession> reread = SimSession::RestoreBytes(direct);
    ASSERT_TRUE(reread.ok()) << reread.error();
    EXPECT_EQ(direct, reread.value().SnapshotBytes()) << "trial " << trial;
  }
}

TEST(ArenaEquivalenceTest, DurableRecoveryBoundaryIsInvisible) {
  // Clean handoff across the durability layer: step a durable run partway,
  // drop the process's in-memory state (with its warmed arenas and pools),
  // recover from the directory, and finish. The export must match the
  // uninterrupted run bit for bit.
  const std::string dir = testing::TempDir() + "/arena_equivalence_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  Rng rng(TestSeed() ^ 0xd00dULL);
  const ClusterSimConfig config = RandomConfig(rng);
  const std::string reference = RunUninterrupted(config, 1);
  {
    // A real telemetry sink (trace enabled) so checkpoints carry the trace,
    // exactly as the CLI's --durable-dir path does.
    TelemetryContext telemetry;
    ClusterSimConfig run = config;
    run.cluster.threads = 1;
    run.telemetry = &telemetry;
    DurableSession::Options options;
    options.dir = dir;
    options.checkpoint_every_s = config.sample_period_s * 4.0;
    Result<DurableSession> durable = DurableSession::Create(run, options);
    ASSERT_TRUE(durable.ok()) << durable.error();
    const Result<bool> stepped =
        durable.value().StepUntil(0.5 * config.trace.duration_s);
    ASSERT_TRUE(stepped.ok()) << stepped.error();
  }  // in-memory state (arenas, slot pools, scratch) dies here
  TelemetryContext recovered_telemetry;
  DurableSession::Options options;
  options.dir = dir;
  options.telemetry = &recovered_telemetry;
  Result<DurableSession> recovered = DurableSession::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.error();
  const Result<ClusterSimResult> result = recovered.value().Finish();
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(reference, Export(recovered_telemetry));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace defl
