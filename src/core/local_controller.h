// Per-server local deflation controller (Section 5, Figure 2). Tracks
// resource allocation and availability on one server, implements the
// proportional cascade deflation policy across its low-priority VMs, preempts
// VMs only when deflation to their minimum sizes cannot satisfy demand, and
// runs the reverse cascade (proportional reinflation) when resources free up.
#ifndef SRC_CORE_LOCAL_CONTROLLER_H_
#define SRC_CORE_LOCAL_CONTROLLER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/agent_guard.h"
#include "src/core/cascade.h"
#include "src/core/deflation_agent.h"
#include "src/hypervisor/server.h"
#include "src/resources/resource_vector.h"

namespace defl {

// How a server-level shortfall is split across its deflatable VMs.
enum class DeflationSplit {
  // x_i proportional to each VM's deflatable headroom (the paper's policy).
  kProportional,
  // Equal absolute amounts from every deflatable VM (ablation baseline):
  // hits small VMs much harder and creates stragglers.
  kEqual,
};

const char* DeflationSplitName(DeflationSplit split);

struct LocalControllerConfig {
  DeflationMode mode = DeflationMode::kCascade;
  LatencyParams latency;
  // Safety margin in the proportional target x_i = (1 - alpha) * share_i:
  // holding back a fraction of each VM's deflatable headroom (Section 5).
  double alpha = 0.0;
  DeflationSplit split = DeflationSplit::kProportional;
  // Per-operation deadline for the synchronous cascade stages (Section 5);
  // <= 0 disables. Clipped work falls through to the hypervisor.
  double deflation_deadline_s = 0.0;
  // Agent RPC deadline/retry/circuit-breaker settings; effective only while
  // a fault injector is attached (without one, no RPC can fail).
  AgentGuardConfig guard;
};

// One server's planned reverse cascade: how much to give back to each of its
// deflated VMs. Computed read-only by PlanReinflate (touches only the
// controller's own server, so per-shard planning can run in parallel under
// the DESIGN.md §10 ownership rule) and consumed by ApplyReinflate on the
// coordinating thread. A plan is valid only while the server's VM set and
// allocations are unchanged between the two calls.
struct ReinflatePlan {
  struct Entry {
    Vm* vm = nullptr;
    ResourceVector give;
  };
  std::vector<Entry> entries;
  bool empty() const { return entries.empty(); }
};

struct ReclaimResult {
  bool success = false;
  // Resources freed (unplug + overcommit + preempted allocations).
  ResourceVector freed;
  // Wall-clock latency: per-VM deflations run concurrently, so the slowest
  // VM determines it (Section 6.3: "deflation is concurrent across VMs").
  double latency_seconds = 0.0;
  std::vector<VmId> deflated;
  std::vector<VmId> preempted;
};

class LocalController {
 public:
  LocalController(Server* server, const LocalControllerConfig& config = {});

  // Registers/unregisters the application deflation agent for a hosted VM.
  // With a fault injector attached, the agent is wrapped in a GuardedAgent
  // (deadline + retries + circuit breaker); FindAgent returns the wrapper.
  void RegisterAgent(VmId id, DeflationAgent* agent);
  void UnregisterAgent(VmId id);
  DeflationAgent* FindAgent(VmId id) const;
  // The guard for a VM's agent, or nullptr (no injector / no agent).
  GuardedAgent* FindGuard(VmId id) const;

  // Ensures at least `demand` is free on the server, deflating low-priority
  // VMs proportionally to their deflatable headroom and preempting (farthest-
  // from-target first) only if deflation cannot cover the shortfall.
  // Preempted VMs are removed from the server; their ids are reported.
  ReclaimResult MakeRoom(const ResourceVector& demand);

  // Deflates one VM by an explicit target (used by the cluster manager and
  // the single-VM benches).
  DeflationOutcome DeflateVm(VmId id, const ResourceVector& target);

  // Proportionally reinflates deflated VMs from the server's current free
  // pool, reserving `hold_back` (e.g. for a VM about to arrive).
  // Returns the total amount returned to VMs. Equivalent to
  // ApplyReinflate(PlanReinflate(hold_back)).
  ResourceVector ReinflateAll(const ResourceVector& hold_back = ResourceVector::Zero());

  // Read-only half of ReinflateAll: proportional-to-deflation split of the
  // current free pool (minus `hold_back`) across this server's VMs. Mutates
  // nothing except the server's lazily refreshed accounting cache, which is
  // safe under per-shard ownership.
  ReinflatePlan PlanReinflate(const ResourceVector& hold_back = ResourceVector::Zero()) const;
  // Buffer-filling form for the sweep hot loop: clears `out` (capacity kept)
  // and fills it, so a caller passing the same plan every sweep allocates
  // nothing in steady state.
  void PlanReinflate(const ResourceVector& hold_back, ReinflatePlan* out) const;
  // Mutating half: runs the reverse cascade for each planned entry, in plan
  // order, publishing telemetry as usual. Returns the total returned.
  ResourceVector ApplyReinflate(const ReinflatePlan& plan);

  Server* server() { return server_; }
  const LocalControllerConfig& config() const { return config_; }
  CascadeController& cascade() { return cascade_; }

  // Publishes MakeRoom/preemption metrics and events through `telemetry`
  // (nullptr detaches) and forwards the context to the cascade controller.
  void AttachTelemetry(TelemetryContext* telemetry);
  TelemetryContext* telemetry() const { return telemetry_; }

  // Enables failure injection: forwards the injector to the cascade
  // (latency spikes) and wraps registered agents in GuardedAgents so the
  // RPC path gains deadlines, retries, and the per-VM circuit breaker.
  void AttachFaultInjector(FaultInjector* faults);
  FaultInjector* fault_injector() const { return faults_; }

 private:
  // Total amount a VM has been deflated by (unplug + overcommit).
  static ResourceVector DeflatedBy(const Vm& vm);
  CascadeOptions Options() const;
  // Cascade deflation of one VM plus the guard's synthetic RPC latency.
  DeflationOutcome GuardedDeflate(Vm& vm, const ResourceVector& target);
  void WrapAgent(VmId id, DeflationAgent* agent);

  Server* server_;
  LocalControllerConfig config_;
  CascadeController cascade_;
  FaultInjector* faults_ = nullptr;
  std::map<VmId, DeflationAgent*> agents_;
  std::map<VmId, std::unique_ptr<GuardedAgent>> guards_;

  TelemetryContext* telemetry_ = nullptr;
  struct {
    CounterHandle make_room_calls;
    CounterHandle make_room_failures;
    CounterHandle preemptions;
    DistributionHandle make_room_latency_s;
  } metrics_;
};

}  // namespace defl

#endif  // SRC_CORE_LOCAL_CONTROLLER_H_
