// Figure 5d: SpecJBB (fixed injection rate) mean response time under
// combined CPU+memory deflation, unmodified JVM (fixed max heap, swaps) vs
// the deflation-aware JVM (shrinks max heap via GC to fit resident memory).
#include "bench/bench_util.h"
#include "src/apps/deflation_harness.h"
#include "src/apps/jvm.h"

namespace defl {
namespace {

double Point(bool app_deflation, double f) {
  JvmModel model{JvmConfig{}};
  const HarnessResult r = DeflateAppVm(
      model, app_deflation ? DeflationMode::kCascade : DeflationMode::kVmLevel,
      ResourceVector(f, f, 0.0, 0.0), StandardVmSpec(), app_deflation);
  return model.ResponseTimeUs(r.alloc);
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Figure 5d", "SpecJBB response time: unmodified vs app deflation");
  bench::PrintNote("Fixed injection rate; CPU and memory deflated by the same fraction.");
  bench::PrintNote("Response times in microseconds (10000 = saturated/SLO blown).");
  bench::PrintColumns({"deflation%", "unmodified", "app-deflation"});
  for (const double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    bench::PrintCell(f * 100.0);
    bench::PrintCell(Point(false, f));
    bench::PrintCell(Point(true, f));
    bench::EndRow();
  }
  return 0;
}
