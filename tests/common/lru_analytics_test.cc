#include "src/common/lru_analytics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/lru_cache.h"
#include "src/common/rng.h"

namespace defl {
namespace {

TEST(CheLruTest, BoundaryConditions) {
  EXPECT_DOUBLE_EQ(CheLruHitRate(1000, 0, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(CheLruHitRate(1000, 1000, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(CheLruHitRate(1000, 5000, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(CheLruHitRate(0, 10, 0.9), 0.0);
}

TEST(CheLruTest, MonotoneInCapacity) {
  double prev = -1.0;
  for (int64_t c = 100; c <= 100000; c *= 3) {
    const double h = CheLruHitRate(200000, c, 0.9);
    EXPECT_GT(h, prev);
    prev = h;
  }
}

TEST(CheLruTest, BelowIdealTopK) {
  // Che (real LRU) never beats the ideal static top-k cache.
  for (const double s : {0.7, 0.9, 1.1}) {
    for (const int64_t c : {1000, 20000, 100000}) {
      EXPECT_LE(CheLruHitRate(200000, c, s), ZipfHeadFraction(200000, c, s) + 1e-9)
          << "s=" << s << " c=" << c;
    }
  }
}

TEST(CheLruTest, CharacteristicTimeGrowsWithCapacity) {
  const double t1 = CheCharacteristicTime(100000, 1000, 0.9);
  const double t2 = CheCharacteristicTime(100000, 30000, 0.9);
  EXPECT_GT(t1, 0.0);
  EXPECT_GT(t2, t1);
}

TEST(CheLruTest, OccupancyIsSelfConsistent) {
  // By construction, the expected number of distinct items within T_C must
  // equal the capacity; verify indirectly via an exact small case.
  const int64_t n = 200;   // below the exact-head threshold: no integration
  const int64_t c = 50;
  const double t = CheCharacteristicTime(n, c, 0.8);
  const double h_n = GeneralizedHarmonic(n, 0.8);
  double occupancy = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    occupancy += 1.0 - std::exp(-std::pow(static_cast<double>(i), -0.8) / h_n * t);
  }
  EXPECT_NEAR(occupancy, static_cast<double>(c), 0.01);
}

// The headline property: Che tracks a real LRU driven by a real Zipf stream
// far better than the ideal top-k curve does.
TEST(CheLruTest, MatchesRealLruCache) {
  const int64_t universe = 50000;
  const double s = 0.9;
  Rng rng(77);
  ZipfDistribution zipf(universe, s);
  for (const int64_t capacity : {2500, 10000, 25000}) {
    LruCache<int64_t, char> cache(capacity);
    for (int i = 0; i < 300000; ++i) {
      const int64_t key = zipf.Sample(rng);
      if (!cache.Get(key).has_value()) {
        cache.Put(key, 1);
      }
    }
    cache.ResetCounters();
    for (int i = 0; i < 300000; ++i) {
      const int64_t key = zipf.Sample(rng);
      if (!cache.Get(key).has_value()) {
        cache.Put(key, 1);
      }
    }
    const double che = CheLruHitRate(universe, capacity, s);
    EXPECT_NEAR(cache.HitRate(), che, 0.02) << "capacity " << capacity;
  }
}

TEST(CheLruTest, LargeUniverseIsFast) {
  // 200M items: must complete via the bucketed tail, not an O(n) sum.
  const double h = CheLruHitRate(200'000'000, 50'000'000, 0.95);
  EXPECT_GT(h, 0.5);
  EXPECT_LT(h, 1.0);
}

}  // namespace
}  // namespace defl
