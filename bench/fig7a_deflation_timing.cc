// Figure 7a: ALS deflated by 50% at different points of its execution:
// self-deflation vs VM-level. Early on, recomputation is cheap and
// self-deflation competes; later, VM-level wins (the cross-over the paper
// reports around 30% progress). Both overheads trend down with progress
// since less of the job runs on reduced resources.
#include "bench/bench_util.h"
#include "src/spark/experiment.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

double Point(SparkReclamationApproach approach, double progress,
             TelemetryContext* telemetry) {
  const SparkWorkload wl = MakeAlsWorkload(0.5);
  SparkExperimentConfig config;
  config.approach = approach;
  config.deflation_fraction = 0.5;
  config.deflate_at_progress = progress;
  const double baseline = SparkBaselineMakespan(wl, config);
  config.telemetry = telemetry;
  const SparkExperimentResult result = RunSparkExperiment(wl, config);
  return result.completed ? result.makespan_s / baseline : -1.0;
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Figure 7a", "ALS: deflation timing vs mechanism");
  bench::PrintNote("50% deflation applied when the job reaches the given progress.");
  bench::PrintColumns({"progress%", "self", "vm-level"});
  // One shared telemetry context accumulates across every measured run.
  TelemetryContext telemetry;
  for (const double p : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    bench::PrintCell(p * 100.0);
    bench::PrintCell(Point(SparkReclamationApproach::kSelfDeflation, p, &telemetry));
    bench::PrintCell(Point(SparkReclamationApproach::kVmLevel, p, &telemetry));
    bench::EndRow();
  }
  const MetricsRegistry& registry = telemetry.metrics();
  std::printf("  (telemetry: %lld deflate ops, %lld tasks killed, %lld rollbacks, "
              "%zu trace events)\n",
              static_cast<long long>(registry.CounterValue("cascade/deflate/ops")),
              static_cast<long long>(registry.CounterValue("spark/engine/tasks_killed")),
              static_cast<long long>(registry.CounterValue("spark/engine/rollbacks")),
              telemetry.trace().size());
  return 0;
}
