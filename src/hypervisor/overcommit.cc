#include "src/hypervisor/overcommit.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace defl {

double MultiplexedCpuFactor(double visible_cpus, double cpu_capacity,
                            const OvercommitCosts& costs) {
  if (visible_cpus <= 0.0) {
    return 0.0;
  }
  if (cpu_capacity >= visible_cpus) {
    return 1.0;
  }
  if (cpu_capacity <= 0.0) {
    return 0.0;
  }
  const double raw = cpu_capacity / visible_cpus;
  const double multiplex_ratio = visible_cpus / cpu_capacity - 1.0;
  const double lhp = 1.0 / (1.0 + costs.lhp_coefficient * multiplex_ratio);
  return raw * lhp;
}

double CappedParallelRate(double runnable_threads, double visible_cpus,
                          double cpu_capacity, const OvercommitCosts& costs) {
  const double threads = std::min(runnable_threads, visible_cpus);
  if (threads <= 0.0 || cpu_capacity <= 0.0) {
    return 0.0;
  }
  if (threads <= cpu_capacity) {
    return threads;  // fully backed: every runnable thread gets a core
  }
  // More runnable threads than capacity: work-conserving cap plus LHP.
  const double lhp = 1.0 / (1.0 + costs.lhp_coefficient * (threads / cpu_capacity - 1.0));
  return cpu_capacity * lhp;
}

double AmdahlSlowdown(double parallel_fraction, double visible_cpus,
                      double cpu_capacity, double baseline_cpus,
                      const OvercommitCosts& costs) {
  const double p = std::clamp(parallel_fraction, 0.0, 1.0);
  const double serial_rate = CappedParallelRate(1.0, visible_cpus, cpu_capacity, costs);
  const double parallel_rate =
      CappedParallelRate(visible_cpus, visible_cpus, cpu_capacity, costs);
  if (serial_rate <= 0.0 || parallel_rate <= 0.0) {
    return 1e9;  // no CPU at all: effectively stalled
  }
  const double time = (1.0 - p) / serial_rate + p / parallel_rate;
  const double baseline_time = (1.0 - p) + p / baseline_cpus;
  return time / baseline_time;
}

double AverageAccessCostUs(double swap_hit_fraction, const OvercommitCosts& costs) {
  const double f = std::clamp(swap_hit_fraction, 0.0, 1.0);
  return (1.0 - f) * costs.mem_access_us + f * costs.swap_access_us;
}

double SwapSlowdown(double swap_hit_fraction, double memory_intensity,
                    const OvercommitCosts& costs) {
  const double intensity = std::clamp(memory_intensity, 0.0, 1.0);
  const double cost_ratio = AverageAccessCostUs(swap_hit_fraction, costs) / costs.mem_access_us;
  // Runtime = (1 - intensity) * compute + intensity * memory * cost_ratio.
  return (1.0 - intensity) + intensity * cost_ratio;
}

double BlindPagingWasteMb(double guest_visible_mb, double resident_mb,
                          double efficiency) {
  const double blind_mb = std::max(0.0, guest_visible_mb - resident_mb);
  return (1.0 - std::clamp(efficiency, 0.0, 1.0)) * blind_mb;
}

double LruSwapHitFraction(double footprint_mb, double resident_mb, double zipf_s) {
  if (footprint_mb <= 0.0 || resident_mb >= footprint_mb) {
    return 0.0;
  }
  if (resident_mb <= 0.0) {
    return 1.0;
  }
  // Model the footprint as 4 KB pages with Zipf popularity; the resident set
  // holds the hottest pages (kernel LRU), so the swap-hit fraction is the
  // Zipf tail mass beyond the resident capacity.
  constexpr double kPageMb = 4096.0 / (1024.0 * 1024.0);
  const auto total_pages = static_cast<int64_t>(footprint_mb / kPageMb);
  const auto resident_pages = static_cast<int64_t>(resident_mb / kPageMb);
  if (total_pages <= 0) {
    return 0.0;
  }
  return 1.0 - ZipfHeadFraction(total_pages, std::max<int64_t>(resident_pages, 1), zipf_s);
}

}  // namespace defl
