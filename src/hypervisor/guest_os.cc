#include "src/hypervisor/guest_os.h"

#include <algorithm>
#include <cmath>

namespace defl {

GuestOs::GuestOs(const ResourceVector& spec) : GuestOs(spec, Params()) {}

GuestOs::GuestOs(const ResourceVector& spec, const Params& params)
    : spec_(spec), params_(params) {
  if (params_.unplug_flakiness > 0.0) {
    // Compatibility path for the legacy per-GuestOs fault params: one
    // always-active kUnplugPartial rule on a private injector.
    FaultPlan plan;
    plan.seed = params_.fault_seed;
    FaultRule rule;
    rule.kind = FaultKind::kUnplugPartial;
    rule.magnitude = params_.unplug_flakiness;
    plan.rules.push_back(rule);
    owned_injector_ = std::make_unique<FaultInjector>(std::move(plan));
    fault_injector_ = owned_injector_.get();
  }
}

void GuestOs::AttachFaultInjector(FaultInjector* injector, int64_t vm_id) {
  fault_injector_ = injector;
  fault_vm_ = vm_id;
  if (injector != nullptr) {
    owned_injector_.reset();
  }
}

ResourceVector GuestOs::SafelyUnpluggable() const {
  const ResourceVector vis = visible();
  ResourceVector out;  // zero disk/net: never unplugged

  const double unpinned = vis.cpu() - std::max(pinned_cpus_, params_.min_cpus);
  out[ResourceKind::kCpu] = std::max(0.0, std::floor(unpinned));

  // Page cache counts as reclaimable: the kernel drops it under pressure.
  // Balloon-pinned memory (and its fragmentation waste) is not.
  const double free_mb = UsableMemoryMb() - app_used_mb_ - params_.kernel_reserve_mb;
  out[ResourceKind::kMemory] = std::max(0.0, free_mb) * params_.unplug_efficiency;
  return out;
}

double GuestOs::UsableMemoryMb() const {
  return visible().memory_mb() - balloon_mb_ - BalloonFragmentationMb();
}

double GuestOs::BalloonInflate(double mb) {
  const double safe =
      std::max(0.0, UsableMemoryMb() - app_used_mb_ - params_.kernel_reserve_mb);
  // Inflating by x consumes x * (1 + fragmentation) of usable memory.
  const double pinned =
      std::min(std::max(mb, 0.0), safe / (1.0 + params_.balloon_fragmentation));
  balloon_mb_ += pinned;
  NotifyAllocationChanged();
  return pinned;
}

double GuestOs::BalloonDeflate(double mb) {
  const double released = std::min(std::max(mb, 0.0), balloon_mb_);
  balloon_mb_ -= released;
  NotifyAllocationChanged();
  return released;
}

ResourceVector GuestOs::TryUnplug(const ResourceVector& target, bool force) {
  ResourceVector done;
  const ResourceVector vis = visible();

  // CPU: whole units only; even under force, at least min_cpus stay online.
  double cpu_req = std::floor(std::max(0.0, target.cpu()));
  const double cpu_avail =
      force ? std::max(0.0, vis.cpu() - params_.min_cpus) : SafelyUnpluggable().cpu();
  done[ResourceKind::kCpu] = std::min(cpu_req, std::floor(cpu_avail));

  // Memory: best-effort; forced unplug ignores the app footprint but still
  // honors the kernel reserve and unmovable-page efficiency.
  double mem_req = std::max(0.0, target.memory_mb());
  double mem_avail;
  if (force) {
    mem_avail = std::max(0.0, vis.memory_mb() - params_.kernel_reserve_mb) *
                params_.unplug_efficiency;
  } else {
    mem_avail = SafelyUnpluggable().memory_mb();
  }
  // Injected partial failures: page migration can fail to assemble the full
  // contiguous range; the cascade's lower layers pick up the slack.
  if (fault_injector_ != nullptr) {
    const FaultDecision fault =
        fault_injector_->Sample(FaultKind::kUnplugPartial, fault_vm_, -1);
    if (fault.fired) {
      mem_avail *= 1.0 - std::clamp(fault.magnitude, 0.0, 1.0) * fault.roll;
    }
  }
  done[ResourceKind::kMemory] = std::min(mem_req, mem_avail);

  // Memory taken beyond the truly-free pool comes out of the page cache
  // (the kernel drops clean cache pages before anything else).
  const double reclaimable =
      std::max(0.0, vis.memory_mb() - app_used_mb_ - params_.kernel_reserve_mb);
  const double truly_free = std::max(0.0, reclaimable - page_cache_mb_);
  const double from_cache =
      std::clamp(done.memory_mb() - truly_free, 0.0, page_cache_mb_);
  page_cache_mb_ -= from_cache;

  unplugged_ += done;
  NotifyAllocationChanged();
  return done;
}

ResourceVector GuestOs::Replug(const ResourceVector& amount) {
  const ResourceVector done = amount.ClampNonNegative().Min(unplugged_);
  unplugged_ -= done;
  NotifyAllocationChanged();
  return done;
}

bool GuestOs::UnderOomPressure() const {
  return app_used_mb_ + params_.kernel_reserve_mb > UsableMemoryMb();
}

}  // namespace defl
