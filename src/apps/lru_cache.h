// A real LRU cache (hash map + intrusive recency list), used as the storage
// engine of the memcached model and to validate the analytic Zipf/LRU hit
// rate curves in tests. Capacity is counted in user-defined cost units
// (e.g. item bytes) so the cache can be resized on the fly -- the paper's
// memcached deflation mechanism is exactly a dynamic cache-size reduction
// with LRU eviction (Section 4, Table 1).
#ifndef SRC_APPS_LRU_CACHE_H_
#define SRC_APPS_LRU_CACHE_H_

#include <cassert>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace defl {

template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(int64_t capacity) : capacity_(capacity) { assert(capacity >= 0); }

  // Inserts or updates; evicts least-recently-used entries as needed.
  // `cost` is the entry's size in capacity units (default 1).
  void Put(const Key& key, Value value, int64_t cost = 1) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      size_ -= it->second->cost;
      order_.erase(it->second);
      map_.erase(it);
    }
    if (cost > capacity_) {
      return;  // cannot fit even alone; drop (memcached semantics)
    }
    order_.push_front(Entry{key, std::move(value), cost});
    map_[key] = order_.begin();
    size_ += cost;
    EvictToCapacity();
  }

  // Returns the value and refreshes recency, or nullopt on miss.
  std::optional<Value> Get(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  bool Contains(const Key& key) const { return map_.contains(key); }

  bool Erase(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return false;
    }
    size_ -= it->second->cost;
    order_.erase(it->second);
    map_.erase(it);
    return true;
  }

  // Shrinks or grows the capacity; shrinking evicts LRU entries immediately
  // (this is the deflation mechanism).
  void Resize(int64_t capacity) {
    assert(capacity >= 0);
    capacity_ = capacity;
    EvictToCapacity();
  }

  int64_t capacity() const { return capacity_; }
  int64_t size() const { return size_; }
  int64_t entry_count() const { return static_cast<int64_t>(map_.size()); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  double HitRate() const {
    const int64_t total = hits_ + misses_;
    return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
  }
  void ResetCounters() {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  struct Entry {
    Key key;
    Value value;
    int64_t cost;
  };

  void EvictToCapacity() {
    while (size_ > capacity_ && !order_.empty()) {
      const Entry& victim = order_.back();
      size_ -= victim.cost;
      map_.erase(victim.key);
      order_.pop_back();
    }
  }

  int64_t capacity_;
  int64_t size_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  std::list<Entry> order_;
  std::unordered_map<Key, typename std::list<Entry>::iterator> map_;
};

}  // namespace defl

#endif  // SRC_APPS_LRU_CACHE_H_
