// Performance-cost models for hypervisor-level overcommitment mechanisms.
// These capture the tradeoffs Section 3.1 describes qualitatively:
//   * multiplexing vCPUs onto fewer physical cores causes lock-holder
//     preemption (LHP) and blocked-waiter wakeup penalties;
//   * backing guest memory with less resident memory causes host swapping,
//     whose cost depends on how often the access stream leaves the resident
//     set;
//   * I/O throttling scales bandwidth-bound work linearly.
// Application models in src/apps and src/spark compose these primitives with
// their own demand curves.
#ifndef SRC_HYPERVISOR_OVERCOMMIT_H_
#define SRC_HYPERVISOR_OVERCOMMIT_H_

namespace defl {

struct OvercommitCosts {
  // LHP penalty coefficient: when R runnable vCPUs share C < R cores of
  // capacity, parallel throughput is multiplied by 1 / (1 + k * (R/C - 1)).
  // Calibrated so hypervisor-only CPU deflation trails OS-level hot-unplug
  // by ~20% at high deflation, matching Figure 5b.
  double lhp_coefficient = 0.2;
  // DRAM access service time (us) and swap (disk) access service time (us)
  // for the swap-penalty model. ~100ns vs ~5ms => factor 50000 per miss.
  double mem_access_us = 0.1;
  double swap_access_us = 5000.0;
};

// Throughput multiplier (<= 1) for CPU-parallel work on `visible_cpus` vCPUs
// backed by `cpu_capacity` physical cores. Without multiplexing this is 1.
// With multiplexing, raw capacity scales by capacity/vcpus and LHP adds a
// super-linear penalty in the multiplexing ratio.
double MultiplexedCpuFactor(double visible_cpus, double cpu_capacity,
                            const OvercommitCosts& costs = OvercommitCosts());

// Aggregate execution rate (in core-equivalents) of a code section with
// `runnable_threads` runnable threads on a VM with `visible_cpus` vCPUs and
// `cpu_capacity` physical backing. Models KVM + cgroups CPU throttling as a
// work-conserving bandwidth cap: a serial section still runs at full
// single-core speed as long as capacity >= 1, which is why hypervisor CPU
// throttling is competitive with hot-unplug for partially-serial workloads
// (Figure 5b). Lock-holder preemption kicks in only when more threads are
// runnable than there is capacity.
double CappedParallelRate(double runnable_threads, double visible_cpus,
                          double cpu_capacity,
                          const OvercommitCosts& costs = OvercommitCosts());

// Time multiplier (>= 1) for an Amdahl-style workload with parallel fraction
// `parallel_fraction`, `visible_cpus` vCPUs and `cpu_capacity` backing,
// relative to the same work on `baseline_cpus` fully-backed CPUs.
double AmdahlSlowdown(double parallel_fraction, double visible_cpus,
                      double cpu_capacity, double baseline_cpus,
                      const OvercommitCosts& costs = OvercommitCosts());

// Average memory access cost (us) when a fraction `swap_hit_fraction` of
// accesses miss the resident set and hit swap.
double AverageAccessCostUs(double swap_hit_fraction,
                           const OvercommitCosts& costs = OvercommitCosts());

// Slowdown multiplier (>= 1) for memory-bound work: ratio of the effective
// average access cost to the all-resident cost, damped by `memory_intensity`
// in [0, 1] -- the fraction of runtime that is memory-access-bound.
double SwapSlowdown(double swap_hit_fraction, double memory_intensity,
                    const OvercommitCosts& costs = OvercommitCosts());

// Residency wasted by blind hypervisor paging: when the host reclaims
// memory underneath an unaware guest, a fraction of the remaining resident
// set ends up holding the wrong (cold/free) pages. The waste scales with how
// much was blindly reclaimed -- guest-visible memory beyond the resident
// limit -- not with total residency, so informed reclamation (unplug,
// application-freed memory) pays nothing.
//   waste_mb = (1 - efficiency) * max(0, guest_visible_mb - resident_mb)
double BlindPagingWasteMb(double guest_visible_mb, double resident_mb,
                          double efficiency);

// Fraction of accesses that hit swap for an app whose page-level access
// stream is approximately LRU-managed by the guest kernel: the hottest
// `resident_mb` of the `footprint_mb` working set stays resident, and the
// page popularity follows Zipf(zipf_s) (a standard locality model). Returns
// 0 when the footprint fits.
double LruSwapHitFraction(double footprint_mb, double resident_mb, double zipf_s = 0.9);

}  // namespace defl

#endif  // SRC_HYPERVISOR_OVERCOMMIT_H_
