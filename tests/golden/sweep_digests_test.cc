// Golden digests for the what-if sweep orchestrator (DESIGN.md §15): both
// shipped sweep grids (examples/*.grid), run against a FIXED-SEED mid-run
// snapshot, are hashed and pinned against tests/golden/sweep_digests.txt --
// any change to a sweep's observable report (cell metrics, ordering,
// rendering) shows up in review as a digest diff. A worker-count-invariance
// leg proves the report is byte-identical at 1 vs 8 workers, so the digest
// pins ONE canonical report, not one-per-schedule.
//
// To regenerate after an intended output change:
//   DEFL_UPDATE_GOLDEN=1 ./sweep_digests_test
// then copy the printed block into tests/golden/sweep_digests.txt.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "src/cluster/sim_session.h"
#include "src/service/sweep.h"
#include "src/service/whatif.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

#ifndef DEFL_SOURCE_DIR
#error "build must define DEFL_SOURCE_DIR"
#endif

constexpr const char* kDigestFile =
    DEFL_SOURCE_DIR "/tests/golden/sweep_digests.txt";

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 14695981039346656037ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string HexDigest(uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

// Fixed seed (not DEFL_FAULT_SEED): golden output must be one exact byte
// stream, identical on every CI leg.
std::string GoldenSnapshot() {
  ClusterSimConfig config;
  config.num_servers = 10;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.seed = 42;
  config.trace.duration_s = 4.0 * 3600.0;
  config.trace.max_lifetime_s = 2.0 * 3600.0;
  config.trace =
      WithTargetLoad(config.trace, 1.5, config.num_servers, config.server_capacity);
  config.reinflate_period_s = 600.0;
  Result<SimSession> session = SimSession::Open(config);
  EXPECT_TRUE(session.ok()) << session.error();
  session.value().StepUntil(2.0 * 3600.0);
  return session.value().SnapshotBytes();
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

std::map<std::string, std::string> LoadDigests() {
  std::map<std::string, std::string> digests;
  std::ifstream in(kDigestFile);
  std::string name;
  std::string digest;
  while (in >> name >> digest) {
    digests[name] = digest;
  }
  return digests;
}

class SweepDigestTest : public testing::TestWithParam<const char*> {};

TEST_P(SweepDigestTest, ReportIsWorkerInvariantAndMatchesDigest) {
  const std::string name = GetParam();
  const std::string grid_text =
      ReadFileOrDie(std::string(DEFL_SOURCE_DIR "/examples/") + name + ".grid");
  Result<SweepGrid> grid = ParseSweepGrid(grid_text);
  ASSERT_TRUE(grid.ok()) << grid.error();

  Result<WhatIfService> service = WhatIfService::Load(GoldenSnapshot());
  ASSERT_TRUE(service.ok()) << service.error();
  SweepOrchestrator orchestrator(&service.value());

  Result<std::string> one = orchestrator.Run(grid.value(), 1);
  ASSERT_TRUE(one.ok()) << one.error();
  Result<std::string> eight = orchestrator.Run(grid.value(), 8);
  ASSERT_TRUE(eight.ok()) << eight.error();
  ASSERT_EQ(one.value(), eight.value())
      << name << ": sweep report differs between 1 and 8 workers";

  const std::string digest = HexDigest(Fnv1a64(one.value()));
  if (std::getenv("DEFL_UPDATE_GOLDEN") != nullptr) {
    std::printf("GOLDEN %s %s\n", name.c_str(), digest.c_str());
    GTEST_SKIP() << "DEFL_UPDATE_GOLDEN set; printed new digest";
  }
  const std::map<std::string, std::string> digests = LoadDigests();
  const auto it = digests.find(name);
  ASSERT_NE(it, digests.end())
      << "no golden digest for sweep '" << name << "' in " << kDigestFile
      << "; run with DEFL_UPDATE_GOLDEN=1 and check the line in";
  EXPECT_EQ(it->second, digest)
      << "sweep '" << name << "' report changed; if intended, regenerate "
      << kDigestFile << " with DEFL_UPDATE_GOLDEN=1";
}

INSTANTIATE_TEST_SUITE_P(Grids, SweepDigestTest,
                         testing::Values("sweep_policies", "sweep_faults"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace defl
