#include "src/apps/deflation_harness.h"

#include <gtest/gtest.h>

#include "src/apps/memcached.h"

namespace defl {
namespace {

TEST(DeflationHarnessTest, ZeroFractionsLeaveVmUntouched) {
  MemcachedModel model{MemcachedConfig{}};
  const HarnessResult r =
      DeflateAppVm(model, DeflationMode::kCascade, ResourceVector::Zero());
  const VmSpec spec = StandardVmSpec();
  EXPECT_DOUBLE_EQ(r.alloc.visible_cpus, spec.size.cpu());
  EXPECT_DOUBLE_EQ(r.alloc.cpu_capacity, spec.size.cpu());
  EXPECT_FALSE(r.oom);
  EXPECT_TRUE(r.outcome.TotalReclaimed().IsZero());
}

TEST(DeflationHarnessTest, TargetIsSpecTimesFractions) {
  MemcachedModel model{MemcachedConfig{}};
  const HarnessResult r = DeflateAppVm(model, DeflationMode::kVmLevel,
                                       ResourceVector(0.5, 0.25, 0.0, 0.0),
                                       StandardVmSpec(), /*use_agent=*/false);
  const VmSpec spec = StandardVmSpec();
  EXPECT_DOUBLE_EQ(r.outcome.requested.cpu(), spec.size.cpu() * 0.5);
  EXPECT_DOUBLE_EQ(r.outcome.requested.memory_mb(), spec.size.memory_mb() * 0.25);
  EXPECT_TRUE(r.outcome.TargetMet());
}

TEST(DeflationHarnessTest, UseAgentFalseSkipsSelfDeflation) {
  MemcachedModel model{MemcachedConfig{}};
  const double cache_before = model.cache_limit_mb();
  DeflateAppVm(model, DeflationMode::kCascade, ResourceVector(0.0, 0.5, 0.0, 0.0),
               StandardVmSpec(), /*use_agent=*/false);
  EXPECT_DOUBLE_EQ(model.cache_limit_mb(), cache_before);
}

TEST(DeflationHarnessTest, CascadeWithAgentShrinksApp) {
  MemcachedModel model{MemcachedConfig{}};
  const double cache_before = model.cache_limit_mb();
  DeflateAppVm(model, DeflationMode::kCascade, ResourceVector(0.0, 0.5, 0.0, 0.0));
  EXPECT_LT(model.cache_limit_mb(), cache_before);
}

TEST(DeflationHarnessTest, StandardVmSpecShape) {
  const VmSpec spec = StandardVmSpec();
  EXPECT_DOUBLE_EQ(spec.size.cpu(), 4.0);
  EXPECT_DOUBLE_EQ(spec.size.memory_mb(), 16384.0);
  EXPECT_EQ(spec.priority, VmPriority::kLow);
}

}  // namespace
}  // namespace defl
