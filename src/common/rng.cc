#include "src/common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace defl {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Debiased modulo (rejection) sampling.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t x = NextU64();
  while (x >= limit) {
    x = NextU64();
  }
  return lo + static_cast<int64_t>(x % span);
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / rate;
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Normal(double mean, double stddev) {
  const double u1 = 1.0 - NextDouble();  // (0, 1]
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::BoundedPareto(double lo, double hi, double alpha) {
  assert(lo > 0.0 && hi > lo && alpha > 0.0);
  const double u = NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> v(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    v[static_cast<size_t>(i)] = i;
  }
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<size_t>(UniformInt(0, i));
    std::swap(v[static_cast<size_t>(i)], v[j]);
  }
  return v;
}

Rng Rng::Fork() { return Rng(NextU64()); }

// --- ZipfDistribution (Hormann rejection-inversion) ---

ZipfDistribution::ZipfDistribution(int64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1 && s > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  t_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s));
}

double ZipfDistribution::H(double x) const {
  // Integral of t^-s: primitive function used by rejection-inversion.
  if (std::abs(s_ - 1.0) < 1e-12) {
    return std::log(x);
  }
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double u) const {
  if (std::abs(s_ - 1.0) < 1e-12) {
    return std::exp(u);
  }
  return std::pow(1.0 + u * (1.0 - s_), 1.0 / (1.0 - s_));
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  if (n_ == 1) {
    return 1;
  }
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    auto k = static_cast<int64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= t_ || u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k;
    }
  }
}

double GeneralizedHarmonic(int64_t k, double s) {
  if (k <= 0) {
    return 0.0;
  }
  constexpr int64_t kExactTerms = 256;
  double sum = 0.0;
  const int64_t head = std::min(k, kExactTerms);
  for (int64_t i = 1; i <= head; ++i) {
    sum += std::pow(static_cast<double>(i), -s);
  }
  if (k <= kExactTerms) {
    return sum;
  }
  // Euler-Maclaurin continuation from kExactTerms to k:
  //   sum_{i=a+1..k} i^-s ~= integral_a^k x^-s dx + (k^-s - a^-s)/2 + ...
  const double a = static_cast<double>(kExactTerms);
  const double kd = static_cast<double>(k);
  double integral;
  if (std::abs(s - 1.0) < 1e-12) {
    integral = std::log(kd / a);
  } else {
    integral = (std::pow(kd, 1.0 - s) - std::pow(a, 1.0 - s)) / (1.0 - s);
  }
  sum += integral + 0.5 * (std::pow(kd, -s) - std::pow(a, -s));
  // First Bernoulli correction term: s/12 * (a^{-s-1} - k^{-s-1}).
  sum += s / 12.0 * (std::pow(a, -s - 1.0) - std::pow(kd, -s - 1.0));
  return sum;
}

double ZipfHeadFraction(int64_t n, int64_t k, double s) {
  if (n <= 0 || k <= 0) {
    return 0.0;
  }
  if (k >= n) {
    return 1.0;
  }
  return GeneralizedHarmonic(k, s) / GeneralizedHarmonic(n, s);
}

}  // namespace defl
