// EventTrace: a structured, machine-consumable record of every deflation
// decision the system takes. Each record is one fixed-size POD entry
// {time, kind, layer, vm, server, target_vector, reclaimed_vector, outcome},
// appended in O(1); recording can be disabled entirely (one branch per call)
// for hot-path benchmarking. The trace replaces grepping DEFL_LOG output:
// the per-VM allocation timelines, deflation latency distributions and
// deflation-tolerance analyses of the evaluation all read from it.
//
// Event kinds and the meaning of the vector/outcome fields are documented in
// DESIGN.md ("Telemetry & tracing").
#ifndef SRC_TELEMETRY_EVENT_TRACE_H_
#define SRC_TELEMETRY_EVENT_TRACE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "src/resources/resource_vector.h"

namespace defl {

enum class TraceEventKind : uint8_t {
  kCascadeStage,   // one layer of one cascade deflation (layer set)
  kDeflation,      // a whole cascade Deflate() call (requested vs reclaimed)
  kReinflation,    // reverse cascade (requested vs returned)
  kPlacement,      // a VM was placed on a server
  kRejection,      // an arrival could not be placed
  kVmLaunch,       // a VM started running on a server
  kVmRemove,       // a VM left a server (any reason)
  kVmComplete,     // normal completion, recorded by the cluster manager
  kPreemption,     // a low-priority VM was revoked
  kOvercommitEnter,  // server's nominal demand crossed above capacity
  kOvercommitExit,   // ...and back below
  kSparkPolicy,    // a Section 4.1 policy decision
  kTaskKill,       // a Spark task was killed (self-deflation / preemption)
  kRollback,       // a synchronous Spark job rolled back to its checkpoint
  kFaultInjected,  // the FaultInjector fired a fault (outcome = FaultKind)
  kAgentTimeout,   // an agent RPC attempt timed out
  kBreakerTrip,    // consecutive timeouts opened a VM's circuit breaker
  kBreakerReset,   // a footprint probe succeeded; the breaker closed
  kServerCrash,    // a whole server went down; its VMs were lost
  kServerDegrade,  // a server was excluded from new placements
  kServerRecover,  // a crashed/degraded server came back
};

// The cascade layer an event belongs to, kNone for non-cascade events.
enum class CascadeLayer : uint8_t {
  kNone,
  kApplication,
  kGuestOs,
  kBalloon,
  kHypervisor,
};

const char* TraceEventKindName(TraceEventKind kind);
const char* CascadeLayerName(CascadeLayer layer);

struct TraceEventRecord {
  double time = 0.0;
  TraceEventKind kind = TraceEventKind::kDeflation;
  CascadeLayer layer = CascadeLayer::kNone;
  int64_t vm = -1;      // VmId, -1 when not VM-scoped
  int64_t server = -1;  // ServerId, -1 when not server-scoped
  ResourceVector target;
  ResourceVector reclaimed;
  // Kind-specific code: success flag, placement pass, policy choice, stage id.
  int32_t outcome = 0;
};

class EventTrace {
 public:
  EventTrace() = default;
  EventTrace(const EventTrace&) = delete;
  EventTrace& operator=(const EventTrace&) = delete;

  // The clock stamps records with the current simulated time; producers that
  // run outside a simulator leave it unset (records stamp 0, or use RecordAt).
  void SetClock(std::function<double()> clock) { clock_ = std::move(clock); }
  void ClearClock() { clock_ = nullptr; }
  double Now() const { return clock_ ? clock_() : 0.0; }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // O(1) append; a disabled trace costs one branch.
  void Record(TraceEventKind kind, CascadeLayer layer, int64_t vm, int64_t server,
              const ResourceVector& target, const ResourceVector& reclaimed,
              int32_t outcome) {
    if (!enabled_) {
      return;
    }
    RecordAt(Now(), kind, layer, vm, server, target, reclaimed, outcome);
  }
  void RecordAt(double time, TraceEventKind kind, CascadeLayer layer, int64_t vm,
                int64_t server, const ResourceVector& target,
                const ResourceVector& reclaimed, int32_t outcome) {
    if (!enabled_) {
      return;
    }
    events_.push_back(
        TraceEventRecord{time, kind, layer, vm, server, target, reclaimed, outcome});
  }

  const std::vector<TraceEventRecord>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  // Replaces the recorded events wholesale: deterministic checkpoint/restore
  // (SimSession snapshots) rebuilds the trace exactly as the snapshotting run
  // left it, discarding whatever the restore machinery itself recorded.
  void RestoreEvents(std::vector<TraceEventRecord> events) {
    events_ = std::move(events);
  }

  // Counts events of one kind (convenience for tests and benches),
  // optionally restricted to one cascade layer.
  int64_t CountKind(TraceEventKind kind) const;
  int64_t CountKind(TraceEventKind kind, CascadeLayer layer) const;

  // One JSON object per line; deterministic (identical runs dump
  // byte-identical output).
  void DumpJsonl(std::ostream& os) const;

 private:
  bool enabled_ = true;
  std::function<double()> clock_;
  std::vector<TraceEventRecord> events_;
};

}  // namespace defl

#endif  // SRC_TELEMETRY_EVENT_TRACE_H_
