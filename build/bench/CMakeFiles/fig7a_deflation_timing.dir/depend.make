# Empty dependencies file for fig7a_deflation_timing.
# This may be replaced when dependencies are built.
