#include "src/cluster/sim_session.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <memory>
#include <utility>

#include "src/cluster/predictor.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/faults/fault_injector.h"
#include "src/hypervisor/vm.h"
#include "src/sim/snapshot_io.h"

namespace defl {
namespace {

// The typed, serializable event queue. The closure-based Simulator cannot
// checkpoint (std::function is opaque), so the session replays the cluster
// simulation through seven reconstructible event kinds; `payload` indexes
// into state the snapshot carries (the fault timeline, the materialized
// trace) or names a server/VM directly. Scheduling and execution order
// mirror the old RunClusterSim closure program exactly -- same (time, seq)
// keys, same relative pushes -- so the event sequence, every RNG draw, and
// therefore every byte of telemetry are unchanged.
enum class SimEventKind : uint8_t {
  kFaultEvent = 0,     // payload: index into State::fault_events
  kMarkHealthy = 1,    // payload: server id (recovery probation expired)
  kVmArrival = 2,      // payload: trace index == VmId
  kVmCompletion = 3,   // payload: VmId (no-op if already preempted)
  kSampleTick = 4,     // payload unused; self-reschedules
  kReinflateTick = 5,  // payload unused; self-reschedules
  kSloTick = 6,        // payload unused; self-reschedules (interactive only)
};
constexpr uint8_t kMaxEventKind = 6;

struct QueueEntry {
  double when = 0.0;
  int64_t seq = 0;
  SimEventKind kind = SimEventKind::kSampleTick;
  int64_t payload = 0;
};

// Drift-free periodic chains: tick k fires at exactly k * period. The chains
// are seeded at t = period, so the fire index is recoverable from the entry's
// own timestamp -- snapshots carry no extra state. Accumulating
// `when + period` instead compounds one rounding error per tick over
// million-tick cloud runs.
double NextPeriodicFire(double when, double period) {
  return (std::round(when / period) + 1.0) * period;
}

// Heap comparator: the *earliest* (when, seq) entry is popped first; seq
// breaks same-time ties in scheduling order, the determinism backbone.
struct LaterEntry {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.when != b.when) {
      return a.when > b.when;
    }
    return a.seq > b.seq;
  }
};

void WriteResourceVector(SnapshotWriter& w, const ResourceVector& v) {
  for (const ResourceKind kind : kAllResources) {
    w.WriteF64(v[kind]);
  }
}

ResourceVector ReadResourceVector(SnapshotReader& r) {
  ResourceVector v;
  for (const ResourceKind kind : kAllResources) {
    v[kind] = r.ReadF64();
  }
  return v;
}

void WriteVmSpec(SnapshotWriter& w, const VmSpec& spec) {
  w.WriteString(spec.name);
  WriteResourceVector(w, spec.size);
  w.WriteU8(static_cast<uint8_t>(spec.priority));
  WriteResourceVector(w, spec.min_size);
}

VmSpec ReadVmSpec(SnapshotReader& r) {
  VmSpec spec;
  spec.name = r.ReadString();
  spec.size = ReadResourceVector(r);
  const uint8_t priority = r.ReadU8();
  if (priority > static_cast<uint8_t>(VmPriority::kLow)) {
    r.Fail("snapshot VM priority byte " + std::to_string(priority) +
           " is out of range");
  }
  spec.priority = static_cast<VmPriority>(priority);
  spec.min_size = ReadResourceVector(r);
  return spec;
}

// Checksum over the trace's serialized form, computed once per session (the
// trace is immutable). Elided-trace snapshots store it so a restore can
// prove the regenerated arrivals are the ones the run actually used.
uint64_t TraceFnv(const std::vector<TraceEvent>& trace) {
  SnapshotWriter w;
  for (const TraceEvent& event : trace) {
    w.WriteF64(event.arrival_s);
    w.WriteF64(event.lifetime_s);
    WriteVmSpec(w, event.spec);
  }
  const std::string bytes = w.Finish();
  return SnapshotFnv1a64(bytes.data(), bytes.size());
}

// --- Interactive-serving workload mix (ROADMAP item 3) -------------------
// A seeded fraction of low-priority arrivals are re-tagged as web VMs that
// serve an open-loop request stream; the SLO tick evaluates their p99
// against the fig5-style latency model and, under the slo-aware policy,
// relieves violating VMs at the expense of batch co-tenants.

constexpr double kTwoPi = 6.283185307179586476925286766559;

bool IsInteractiveSpec(const VmSpec& spec) {
  return spec.name.rfind("web", 0) == 0;
}

// Re-tags a seeded fraction of low-priority arrivals as interactive web VMs
// (deflatable to 25% of nominal, like the catalog's web entries). One
// Chance() draw per candidate event, in trace order, so the tagged set is a
// pure function of (trace, seed, fraction) -- regenerated identically on
// restore. Events already named "web*" (explicit replay traces) count as
// interactive without re-tagging. Arrival times and lifetimes are untouched,
// so pending queue entries indexing the trace stay valid across a re-tag.
int64_t ApplyInteractiveMix(std::vector<TraceEvent>& trace,
                            const InteractiveSloConfig& mix) {
  Rng rng(mix.seed);
  int64_t tagged = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    TraceEvent& event = trace[i];
    if (IsInteractiveSpec(event.spec)) {
      ++tagged;
      continue;
    }
    if (event.spec.priority != VmPriority::kLow) {
      continue;
    }
    if (!rng.Chance(mix.fraction)) {
      continue;
    }
    event.spec.name = "web-" + std::to_string(i);
    event.spec.min_size = event.spec.size * 0.25;
    ++tagged;
  }
  return tagged;
}

int64_t CountInteractive(const std::vector<TraceEvent>& trace) {
  int64_t tagged = 0;
  for (const TraceEvent& event : trace) {
    if (IsInteractiveSpec(event.spec)) {
      ++tagged;
    }
  }
  return tagged;
}

// Stateless per-VM phase offset for the diurnal request-rate curve
// (SplitMix64 finalizer over the mix seed and the VM id): every VM peaks at
// its own time of day without the session carrying per-VM generator state.
double InteractivePhaseS(uint64_t seed, VmId id, double period_s) {
  uint64_t z = seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(id) + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return period_s * (static_cast<double>(z >> 11) * 0x1.0p-53);
}

// Open-loop offered load for one web VM at simulated time `now`: millions of
// aggregate users follow a sinusoidal diurnal curve, phase-shifted per VM.
double OfferedRps(const InteractiveSloConfig& mix, VmId id, double nominal_cpu,
                  double now) {
  const double phase = InteractivePhaseS(mix.seed, id, mix.rate_period_s);
  const double wave = std::sin(kTwoPi * (now + phase) / mix.rate_period_s);
  return std::max(0.0,
                  mix.rate_rps_per_cpu * nominal_cpu *
                      (1.0 + mix.rate_amplitude * wave));
}

// Length prefix bounded against the remaining payload so a crafted count
// can never drive a near-infinite loop or allocation.
uint64_t ReadCount(SnapshotReader& r, size_t min_entry_bytes, const char* what) {
  const uint64_t n = r.ReadU64();
  if (r.ok() && min_entry_bytes > 0 &&
      n > r.Remaining() / min_entry_bytes) {
    r.Fail(std::string("snapshot ") + what + " count " + std::to_string(n) +
           " exceeds the remaining payload");
    return 0;
  }
  return n;
}

void WriteConfig(SnapshotWriter& w, const ClusterSimConfig& config) {
  w.WriteI64(config.num_servers);
  WriteResourceVector(w, config.server_capacity);
  const TraceConfig& t = config.trace;
  w.WriteF64(t.duration_s);
  w.WriteF64(t.arrival_rate_per_s);
  w.WriteF64(t.lifetime_alpha);
  w.WriteF64(t.min_lifetime_s);
  w.WriteF64(t.max_lifetime_s);
  w.WriteF64(t.low_priority_fraction);
  w.WriteU64(t.seed);
  w.WriteU64(t.catalog.size());
  for (const VmCatalogEntry& entry : t.catalog) {
    w.WriteString(entry.app);
    WriteResourceVector(w, entry.size);
    w.WriteF64(entry.min_fraction);
    w.WriteF64(entry.weight);
  }
  const ClusterConfig& c = config.cluster;
  w.WriteU8(static_cast<uint8_t>(c.placement));
  w.WriteU8(static_cast<uint8_t>(c.strategy));
  const LocalControllerConfig& lc = c.controller;
  w.WriteU8(static_cast<uint8_t>(lc.mode));
  w.WriteF64(lc.latency.swap_out_mbps);
  w.WriteF64(lc.latency.control_loop_overhead);
  w.WriteF64(lc.latency.unplug_cold_mbps);
  w.WriteF64(lc.latency.unplug_freed_mbps);
  w.WriteF64(lc.latency.app_free_mbps);
  w.WriteF64(lc.latency.app_fixed_s);
  w.WriteF64(lc.latency.cpu_unplug_s);
  w.WriteF64(lc.latency.balloon_mbps);
  w.WriteF64(lc.latency.fixed_s);
  w.WriteF64(lc.alpha);
  w.WriteU8(static_cast<uint8_t>(lc.split));
  w.WriteF64(lc.deflation_deadline_s);
  w.WriteF64(lc.guard.rpc_timeout_s);
  w.WriteI64(lc.guard.max_attempts);
  w.WriteF64(lc.guard.backoff_base_s);
  w.WriteF64(lc.guard.backoff_cap_s);
  w.WriteI64(lc.guard.breaker_threshold);
  w.WriteU64(c.seed);
  w.WriteI64(c.threads);
  w.WriteF64(config.sample_period_s);
  w.WriteF64(config.reinflate_period_s);
  w.WriteBool(config.predictive_holdback);
  w.WriteF64(config.predictor_alpha);
  w.WriteU64(config.fault_plan.seed);
  w.WriteU64(config.fault_plan.rules.size());
  for (const FaultRule& rule : config.fault_plan.rules) {
    w.WriteU8(static_cast<uint8_t>(rule.kind));
    w.WriteI64(rule.vm);
    w.WriteI64(rule.server);
    w.WriteF64(rule.probability);
    w.WriteF64(rule.magnitude);
    w.WriteF64(rule.start_s);
    w.WriteF64(rule.end_s);
    w.WriteI64(rule.max_count);
  }
  w.WriteF64(config.recovery_grace_s);
  // Format v2: the diurnal/bursty arrival generator parameters.
  const ArrivalGenConfig& a = config.arrivals;
  w.WriteBool(a.enabled);
  w.WriteF64(a.diurnal_amplitude);
  w.WriteF64(a.diurnal_period_s);
  w.WriteF64(a.diurnal_phase_s);
  w.WriteF64(a.burst_rate_per_s);
  w.WriteF64(a.burst_duration_s);
  w.WriteF64(a.burst_multiplier);
  w.WriteU64(a.seed);
  // Format v4: the interactive-serving workload mix + SLO controller.
  const InteractiveSloConfig& i = config.interactive;
  w.WriteBool(i.enabled);
  w.WriteF64(i.fraction);
  w.WriteU64(i.seed);
  w.WriteF64(i.slo_p99_ms);
  w.WriteBool(i.slo_aware);
  w.WriteF64(i.control_period_s);
  w.WriteF64(i.rate_rps_per_cpu);
  w.WriteF64(i.rate_amplitude);
  w.WriteF64(i.rate_period_s);
  w.WriteF64(i.latency.base_service_us);
  w.WriteF64(i.latency.knee_fraction);
  w.WriteF64(i.latency.graceful_slope);
  w.WriteF64(i.latency.cliff_power);
  w.WriteF64(i.latency.cliff_scale);
  w.WriteF64(i.latency.max_utilization);
}

ClusterSimConfig ReadConfig(SnapshotReader& r) {
  ClusterSimConfig config;
  config.num_servers = static_cast<int>(r.ReadI64());
  config.server_capacity = ReadResourceVector(r);
  TraceConfig& t = config.trace;
  t.duration_s = r.ReadF64();
  t.arrival_rate_per_s = r.ReadF64();
  t.lifetime_alpha = r.ReadF64();
  t.min_lifetime_s = r.ReadF64();
  t.max_lifetime_s = r.ReadF64();
  t.low_priority_fraction = r.ReadF64();
  t.seed = r.ReadU64();
  t.catalog.clear();
  const uint64_t catalog_size = ReadCount(r, 8 * 7, "catalog");
  for (uint64_t i = 0; r.ok() && i < catalog_size; ++i) {
    VmCatalogEntry entry;
    entry.app = r.ReadString();
    entry.size = ReadResourceVector(r);
    entry.min_fraction = r.ReadF64();
    entry.weight = r.ReadF64();
    t.catalog.push_back(std::move(entry));
  }
  ClusterConfig& c = config.cluster;
  c.placement = static_cast<PlacementPolicy>(r.ReadU8());
  c.strategy = static_cast<ReclamationStrategy>(r.ReadU8());
  LocalControllerConfig& lc = c.controller;
  lc.mode = static_cast<DeflationMode>(r.ReadU8());
  lc.latency.swap_out_mbps = r.ReadF64();
  lc.latency.control_loop_overhead = r.ReadF64();
  lc.latency.unplug_cold_mbps = r.ReadF64();
  lc.latency.unplug_freed_mbps = r.ReadF64();
  lc.latency.app_free_mbps = r.ReadF64();
  lc.latency.app_fixed_s = r.ReadF64();
  lc.latency.cpu_unplug_s = r.ReadF64();
  lc.latency.balloon_mbps = r.ReadF64();
  lc.latency.fixed_s = r.ReadF64();
  lc.alpha = r.ReadF64();
  lc.split = static_cast<DeflationSplit>(r.ReadU8());
  lc.deflation_deadline_s = r.ReadF64();
  lc.guard.rpc_timeout_s = r.ReadF64();
  lc.guard.max_attempts = static_cast<int>(r.ReadI64());
  lc.guard.backoff_base_s = r.ReadF64();
  lc.guard.backoff_cap_s = r.ReadF64();
  lc.guard.breaker_threshold = static_cast<int>(r.ReadI64());
  c.seed = r.ReadU64();
  c.threads = static_cast<int>(r.ReadI64());
  config.sample_period_s = r.ReadF64();
  config.reinflate_period_s = r.ReadF64();
  config.predictive_holdback = r.ReadBool();
  config.predictor_alpha = r.ReadF64();
  config.fault_plan.seed = r.ReadU64();
  const uint64_t num_rules = ReadCount(r, 1 + 8 * 7, "fault rule");
  for (uint64_t i = 0; r.ok() && i < num_rules; ++i) {
    FaultRule rule;
    const uint8_t kind = r.ReadU8();
    if (kind >= kNumFaultKinds) {
      r.Fail("snapshot fault kind byte " + std::to_string(kind) +
             " is out of range");
      break;
    }
    rule.kind = static_cast<FaultKind>(kind);
    rule.vm = r.ReadI64();
    rule.server = r.ReadI64();
    rule.probability = r.ReadF64();
    rule.magnitude = r.ReadF64();
    rule.start_s = r.ReadF64();
    rule.end_s = r.ReadF64();
    rule.max_count = r.ReadI64();
    config.fault_plan.rules.push_back(rule);
  }
  config.recovery_grace_s = r.ReadF64();
  ArrivalGenConfig& a = config.arrivals;
  a.enabled = r.ReadBool();
  a.diurnal_amplitude = r.ReadF64();
  a.diurnal_period_s = r.ReadF64();
  a.diurnal_phase_s = r.ReadF64();
  a.burst_rate_per_s = r.ReadF64();
  a.burst_duration_s = r.ReadF64();
  a.burst_multiplier = r.ReadF64();
  a.seed = r.ReadU64();
  InteractiveSloConfig& i = config.interactive;
  i.enabled = r.ReadBool();
  i.fraction = r.ReadF64();
  i.seed = r.ReadU64();
  i.slo_p99_ms = r.ReadF64();
  i.slo_aware = r.ReadBool();
  i.control_period_s = r.ReadF64();
  i.rate_rps_per_cpu = r.ReadF64();
  i.rate_amplitude = r.ReadF64();
  i.rate_period_s = r.ReadF64();
  i.latency.base_service_us = r.ReadF64();
  i.latency.knee_fraction = r.ReadF64();
  i.latency.graceful_slope = r.ReadF64();
  i.latency.cliff_power = r.ReadF64();
  i.latency.cliff_scale = r.ReadF64();
  i.latency.max_utilization = r.ReadF64();
  return config;
}

}  // namespace

// Everything a running session owns. The address is pinned inside the
// session's unique_ptr, so the telemetry clock callback can capture `this`.
struct SimSession::State {
  ClusterSimConfig config;

  TelemetryContext* telemetry = nullptr;
  std::unique_ptr<TelemetryContext> owned_telemetry;
  std::unique_ptr<ClusterManager> manager;
  std::unique_ptr<FaultInjector> injector;
  // The plan's whole-server availability timeline, re-derived (not
  // serialized) from the plan on both Open and Restore -- ServerEventsFor is
  // a pure function of plan + server count.
  std::vector<FaultInjector::ServerEvent> fault_events;
  // The materialized arrival trace; VmId == index. Inlined into snapshots
  // only when it was handed in explicitly -- a config-generated trace is
  // regenerated on restore and only its length + checksum are serialized,
  // keeping checkpoint I/O proportional to live state, not trace length.
  std::vector<TraceEvent> trace;
  bool trace_generated = false;
  uint64_t trace_fnv = 0;
  EwmaPredictor predictor;

  SeriesHandle util_series;
  SeriesHandle oc_series;
  SeriesHandle server_oc_series;
  GaugeHandle low_vm_hours;
  GaugeHandle low_nominal_cpu_hours;
  GaugeHandle low_effective_cpu_hours;
  GaugeHandle high_cpu_hours;
  DistributionHandle allocation_quality;
  // Interactive-serving metrics: registered only when interactive.enabled,
  // so the registry layout (and every golden digest) of the existing
  // scenarios is unchanged. Derived (not serialized): interactive_tagged is
  // recounted from the materialized trace on restore.
  CounterHandle slo_checks;
  CounterHandle slo_violations;
  CounterHandle slo_reinflates;
  CounterHandle slo_victim_deflations;
  DistributionHandle slo_p99_dist;
  SeriesHandle slo_offered_series;
  SeriesHandle slo_p99_series;
  int64_t interactive_tagged = 0;

  double now = 0.0;
  int64_t next_seq = 0;
  int64_t events_executed = 0;
  std::vector<QueueEntry> queue;  // binary heap under LaterEntry
  double dt_hours = 0.0;
  std::vector<ClusterManager::ServerUsageSample> usage_samples;  // scratch

  ~State() {
    if (telemetry != nullptr) {
      telemetry->trace().ClearClock();
    }
  }

  void Push(double when, SimEventKind kind, int64_t payload) {
    queue.push_back(QueueEntry{when, next_seq++, kind, payload});
    std::push_heap(queue.begin(), queue.end(), LaterEntry{});
  }

  void Execute(const QueueEntry& entry) {
    switch (entry.kind) {
      case SimEventKind::kFaultEvent: {
        const FaultInjector::ServerEvent& event =
            fault_events[static_cast<size_t>(entry.payload)];
        switch (event.kind) {
          case FaultKind::kServerCrash:
            manager->CrashServer(event.server);
            break;
          case FaultKind::kServerDegrade:
            manager->DegradeServer(event.server);
            break;
          case FaultKind::kServerRecover:
            manager->RecoverServer(event.server);
            Push(entry.when + config.recovery_grace_s, SimEventKind::kMarkHealthy,
                 event.server);
            break;
          default:
            break;
        }
        break;
      }
      case SimEventKind::kMarkHealthy:
        manager->MarkHealthy(entry.payload);
        break;
      case SimEventKind::kVmArrival: {
        const TraceEvent& event = trace[static_cast<size_t>(entry.payload)];
        auto vm = std::make_unique<Vm>(entry.payload, event.spec);
        const Result<ServerId> placed = manager->LaunchVm(std::move(vm));
        if (placed.ok()) {
          Push(entry.when + event.lifetime_s, SimEventKind::kVmCompletion,
               entry.payload);
        }
        break;
      }
      case SimEventKind::kVmCompletion:
        // The VM may have been preempted in the meantime; completing a
        // missing VM is a no-op.
        if (manager->FindVm(entry.payload) != nullptr) {
          manager->CompleteVm(entry.payload);
        }
        break;
      case SimEventKind::kSampleTick:
        SampleTick();
        Push(NextPeriodicFire(entry.when, config.sample_period_s),
             SimEventKind::kSampleTick, 0);
        break;
      case SimEventKind::kReinflateTick:
        ReinflateTick();
        Push(NextPeriodicFire(entry.when, config.reinflate_period_s),
             SimEventKind::kReinflateTick, 0);
        break;
      case SimEventKind::kSloTick:
        SloTick();
        Push(NextPeriodicFire(entry.when, config.interactive.control_period_s),
             SimEventKind::kSloTick, 0);
        break;
    }
  }

  void RegisterInteractiveMetrics(MetricsRegistry& registry) {
    slo_checks = registry.Counter("slo/checks");
    slo_violations = registry.Counter("slo/violations");
    slo_reinflates = registry.Counter("slo/reinflate_ops");
    slo_victim_deflations = registry.Counter("slo/victim_deflations");
    slo_p99_dist = registry.Distribution("slo/p99_ms");
    slo_offered_series = registry.Series("slo/offered_rps");
    slo_p99_series = registry.Series("slo/worst_p99_ms");
  }

  // Relieves one SLO-violating web VM: restore its nominal allocation by
  // deflating batch/spark co-tenants on the same server (never another web
  // VM) and handing the freed resources back through the reverse cascade.
  // Victims are taken in hosting order -- the canonical order everything
  // else uses -- so the pass is deterministic at any thread count.
  void RelieveSloPressure(Server* server, LocalController* controller,
                          Vm* web, MetricsRegistry& registry) {
    const ResourceVector deficit =
        (web->spec().size - web->effective()).ClampNonNegative();
    if (!deficit.AnyPositive()) {
      return;
    }
    ResourceVector shortfall = (deficit - server->Free()).ClampNonNegative();
    if (shortfall.AnyPositive()) {
      for (const auto& hosted : server->vms()) {
        if (!shortfall.AnyPositive()) {
          break;
        }
        Vm* victim = hosted.get();
        if (victim == web || !victim->deflatable() ||
            IsInteractiveSpec(victim->spec())) {
          continue;
        }
        const ResourceVector take = shortfall.Min(victim->deflatable_amount());
        if (!take.AnyPositive()) {
          continue;
        }
        const DeflationOutcome outcome = controller->DeflateVm(victim->id(), take);
        const ResourceVector got = outcome.TotalReclaimed();
        if (got.AnyPositive()) {
          registry.Add(slo_victim_deflations);
        }
        shortfall = (shortfall - got).ClampNonNegative();
      }
    }
    const ResourceVector give = deficit.Min(server->Free());
    if (!give.AnyPositive()) {
      return;
    }
    ReinflatePlan plan;
    plan.entries.push_back(ReinflatePlan::Entry{web, give});
    controller->ApplyReinflate(plan);
    registry.Add(slo_reinflates);
  }

  // The SLO control loop (ROADMAP item 3): evaluate every interactive VM's
  // open-loop p99 against the target. Under the slo-aware policy a violating
  // VM is relieved immediately; under the uniform baseline the violation is
  // only counted and reclamation stays with the EuroSys policies. Sequential
  // in canonical (server, hosting) order -- the tick reads and mutates fleet
  // state, so it runs on the coordinating thread like plan application does.
  void SloTick() {
    const InteractiveSloConfig& mix = config.interactive;
    MetricsRegistry& registry = telemetry->metrics();
    double worst_p99_ms = 0.0;
    double total_offered = 0.0;
    for (Server* server : manager->servers()) {
      LocalController* controller = manager->controller(server->id());
      const auto& hosted = server->vms();
      for (size_t i = 0; i < hosted.size(); ++i) {
        Vm* web = hosted[i].get();
        if (!IsInteractiveSpec(web->spec())) {
          continue;
        }
        const double nominal_cpu = web->spec().size[ResourceKind::kCpu];
        const double effective_cpu = web->effective()[ResourceKind::kCpu];
        if (nominal_cpu <= 0.0) {
          continue;
        }
        const double offered = OfferedRps(mix, web->id(), nominal_cpu, now);
        total_offered += offered;
        const double d =
            std::clamp(1.0 - effective_cpu / nominal_cpu, 0.0, 1.0);
        const WebLatencyQuantiles q =
            WebLatencyUnderLoad(mix.latency, effective_cpu, d, offered);
        registry.Add(slo_checks);
        registry.Observe(slo_p99_dist, q.p99_ms);
        worst_p99_ms = std::max(worst_p99_ms, q.p99_ms);
        if (q.p99_ms <= mix.slo_p99_ms) {
          continue;
        }
        registry.Add(slo_violations);
        if (mix.slo_aware) {
          RelieveSloPressure(server, controller, web, registry);
        }
      }
    }
    registry.ObserveAt(slo_offered_series, now, total_offered);
    registry.ObserveAt(slo_p99_series, now, worst_p99_ms);
  }

  // The sampling sweep gathers every server's usage snapshot in parallel
  // (read-only, shard ownership over the accounting caches) and folds it
  // into the registry here in canonical (server, hosting) order -- the exact
  // sequence of registry calls the sequential loop made, so the exported
  // metrics are byte-identical for any thread count.
  void SampleTick() {
    MetricsRegistry& registry = telemetry->metrics();
    manager->CollectUsageSamples(&usage_samples);  // also warms all caches
    registry.ObserveAt(util_series, now, manager->Utilization());
    registry.ObserveAt(oc_series, now, manager->Overcommitment());
    for (const ClusterManager::ServerUsageSample& sample : usage_samples) {
      registry.ObserveAt(server_oc_series, now, sample.nominal_overcommitment);
      for (const ClusterManager::ServerUsageSample::VmUsage& vm : sample.vms) {
        if (vm.low_priority) {
          registry.AddTo(low_vm_hours, dt_hours);
          registry.AddTo(low_nominal_cpu_hours, vm.nominal_cpu * dt_hours);
          registry.AddTo(low_effective_cpu_hours, vm.effective_cpu * dt_hours);
          if (vm.nominal_cpu > 0.0) {
            registry.Observe(allocation_quality, vm.effective_cpu / vm.nominal_cpu);
          }
        } else {
          registry.AddTo(high_cpu_hours, vm.effective_cpu * dt_hours);
        }
      }
    }
  }

  // Proactive reinflation loop (optionally with predictive holdback). The
  // demand gather and the per-server planning run sharded in parallel; the
  // plans apply in canonical server order (DESIGN.md §10).
  void ReinflateTick() {
    const double high_pri_cpu = manager->HighPriorityEffectiveCpu();
    predictor.Observe(high_pri_cpu);
    double holdback_cpu_per_server = 0.0;
    if (config.predictive_holdback && predictor.initialized()) {
      const double expected_growth =
          std::max(0.0, predictor.UpperBound(1.0) - high_pri_cpu);
      holdback_cpu_per_server = expected_growth / config.num_servers;
    }
    manager->ReinflateSweep(holdback_cpu_per_server);
  }

  // Simulator::Run(until) semantics: every event with when <= until runs,
  // later events stay queued, and the clock lands exactly on `until`.
  void RunUntil(double until) {
    while (!queue.empty() && queue.front().when <= until) {
      std::pop_heap(queue.begin(), queue.end(), LaterEntry{});
      const QueueEntry entry = queue.back();
      queue.pop_back();
      assert(entry.when >= now);
      now = entry.when;
      ++events_executed;
      Execute(entry);
    }
    if (until > now) {
      now = until;
    }
  }
};

namespace {

// Construction shared by Open and Restore: telemetry binding, manager,
// fault injector, and metric registration, in the exact order the original
// RunClusterSim used -- reproducing it is what makes the registry layout
// (and hence DumpJson output and snapshot import) identical across runs.
std::unique_ptr<SimSession::State> BuildCore(const ClusterSimConfig& config,
                                             TelemetryContext* telemetry_override) {
  auto state = std::make_unique<SimSession::State>();
  state->config = config;
  state->predictor = EwmaPredictor(config.predictor_alpha);
  state->dt_hours = config.sample_period_s / 3600.0;

  TelemetryContext* sink =
      telemetry_override != nullptr ? telemetry_override : config.telemetry;
  if (sink != nullptr) {
    state->telemetry = sink;
  } else {
    // Private context so every result field can still be derived from the
    // registry; nothing will export the trace, so don't accumulate it.
    state->owned_telemetry = std::make_unique<TelemetryContext>();
    state->owned_telemetry->trace().set_enabled(false);
    state->telemetry = state->owned_telemetry.get();
  }
  SimSession::State* raw = state.get();
  state->telemetry->SetClock([raw] { return raw->now; });

  state->manager = std::make_unique<ClusterManager>(
      config.num_servers, config.server_capacity, config.cluster, state->telemetry);
  // Only built when the plan has rules, so a faultless run registers no
  // fault metrics and its output stays byte-identical to earlier builds.
  if (!config.fault_plan.rules.empty()) {
    state->injector = std::make_unique<FaultInjector>(config.fault_plan);
    state->injector->AttachTelemetry(state->telemetry);
    state->manager->AttachFaultInjector(state->injector.get());
    state->fault_events = state->injector->ServerEventsFor(config.num_servers);
  }

  MetricsRegistry& registry = state->telemetry->metrics();
  state->util_series = registry.Series("cluster/utilization");
  state->oc_series = registry.Series("cluster/overcommitment");
  state->server_oc_series = registry.Series("cluster/server_overcommitment");
  state->low_vm_hours = registry.Gauge("cluster/usage/low_pri_vm_hours");
  state->low_nominal_cpu_hours =
      registry.Gauge("cluster/usage/low_pri_nominal_cpu_hours");
  state->low_effective_cpu_hours =
      registry.Gauge("cluster/usage/low_pri_effective_cpu_hours");
  state->high_cpu_hours = registry.Gauge("cluster/usage/high_pri_cpu_hours");
  state->allocation_quality =
      registry.Distribution("cluster/low_pri/allocation_quality");
  // Registered last, and only for interactive runs: every pre-existing
  // scenario keeps its exact registry layout (ImportState and the golden
  // digests both depend on it).
  if (config.interactive.enabled) {
    state->RegisterInteractiveMetrics(registry);
  }
  return state;
}

Result<bool> ValidateConfig(const ClusterSimConfig& config) {
  if (config.num_servers <= 0) {
    return Error{"num_servers must be positive"};
  }
  if (config.sample_period_s <= 0.0) {
    return Error{"sample_period_s must be positive"};
  }
  if (config.reinflate_period_s < 0.0) {
    return Error{"reinflate_period_s must be non-negative"};
  }
  if (config.cluster.threads < 1) {
    return Error{"cluster.threads must be >= 1"};
  }
  if (config.trace.duration_s < 0.0) {
    return Error{"trace.duration_s must be non-negative"};
  }
  if (config.recovery_grace_s < 0.0) {
    return Error{"recovery_grace_s must be non-negative"};
  }
  const std::string arrivals_error = ValidateArrivalGen(config.arrivals);
  if (!arrivals_error.empty()) {
    return Error{"arrivals: " + arrivals_error};
  }
  if (config.interactive.enabled) {
    const InteractiveSloConfig& i = config.interactive;
    if (i.fraction < 0.0 || i.fraction > 1.0) {
      return Error{"interactive.fraction must be in [0, 1]"};
    }
    if (i.slo_p99_ms <= 0.0) {
      return Error{"interactive.slo_p99_ms must be positive"};
    }
    if (i.control_period_s <= 0.0) {
      return Error{"interactive.control_period_s must be positive"};
    }
    if (i.rate_rps_per_cpu < 0.0) {
      return Error{"interactive.rate_rps_per_cpu must be non-negative"};
    }
    if (i.rate_amplitude < 0.0 || i.rate_amplitude > 1.0) {
      return Error{"interactive.rate_amplitude must be in [0, 1]"};
    }
    if (i.rate_period_s <= 0.0) {
      return Error{"interactive.rate_period_s must be positive"};
    }
    if (i.latency.base_service_us <= 0.0) {
      return Error{"interactive.latency.base_service_us must be positive"};
    }
    if (i.latency.knee_fraction < 0.0 || i.latency.knee_fraction >= 1.0) {
      return Error{"interactive.latency.knee_fraction must be in [0, 1)"};
    }
    if (i.latency.max_utilization <= 0.0 || i.latency.max_utilization >= 1.0) {
      return Error{"interactive.latency.max_utilization must be in (0, 1)"};
    }
  }
  return true;
}

}  // namespace

SimSession::SimSession(std::unique_ptr<State> state) : state_(std::move(state)) {}
SimSession::SimSession(SimSession&&) noexcept = default;
SimSession& SimSession::operator=(SimSession&&) noexcept = default;
SimSession::~SimSession() = default;

Result<SimSession> SimSession::Open(const ClusterSimConfig& config) {
  const Result<bool> valid = ValidateConfig(config);
  if (!valid.ok()) {
    return Error{"invalid ClusterSimConfig: " + valid.error()};
  }
  std::unique_ptr<State> state = BuildCore(config, nullptr);
  if (!config.explicit_trace.empty()) {
    state->trace = config.explicit_trace;
    // An explicit trace is authoritative: VMs it already names "web*" are
    // interactive, nothing is re-tagged.
    if (config.interactive.enabled) {
      state->interactive_tagged = CountInteractive(state->trace);
    }
  } else {
    state->trace = config.arrivals.enabled
                       ? GenerateDiurnalTrace(config.trace, config.arrivals)
                       : GenerateTrace(config.trace);
    state->trace_generated = true;
    if (config.interactive.enabled) {
      state->interactive_tagged =
          ApplyInteractiveMix(state->trace, config.interactive);
    }
  }
  // Checksummed after tagging: a restore regenerates and re-tags with the
  // snapshotted mix before verifying.
  state->trace_fnv = TraceFnv(state->trace);

  // Schedule the whole program in the exact order the batch runner did:
  // fault timeline, then trace arrivals, then the sampling tick, then the
  // reinflation tick. Sequence numbers (the same-time tie-break) depend only
  // on this order, which pins the event interleaving byte-for-byte.
  for (size_t i = 0; i < state->fault_events.size(); ++i) {
    state->Push(state->fault_events[i].time_s, SimEventKind::kFaultEvent,
                static_cast<int64_t>(i));
  }
  for (size_t i = 0; i < state->trace.size(); ++i) {
    state->Push(state->trace[i].arrival_s, SimEventKind::kVmArrival,
                static_cast<int64_t>(i));
  }
  state->Push(config.sample_period_s, SimEventKind::kSampleTick, 0);
  if (config.reinflate_period_s > 0.0) {
    state->Push(config.reinflate_period_s, SimEventKind::kReinflateTick, 0);
  }
  if (config.interactive.enabled) {
    state->Push(config.interactive.control_period_s, SimEventKind::kSloTick, 0);
  }
  return SimSession(std::move(state));
}

double SimSession::now() const { return state_->now; }
double SimSession::duration_s() const { return state_->config.trace.duration_s; }
int64_t SimSession::events_executed() const { return state_->events_executed; }

bool SimSession::done() const {
  return state_->queue.empty() ||
         state_->queue.front().when > state_->config.trace.duration_s;
}

void SimSession::StepUntil(double t) {
  state_->RunUntil(std::min(t, state_->config.trace.duration_s));
}

int64_t SimSession::StepEvents(int64_t max_events) {
  const double horizon = state_->config.trace.duration_s;
  int64_t executed = 0;
  while (executed < max_events && !state_->queue.empty() &&
         state_->queue.front().when <= horizon) {
    std::pop_heap(state_->queue.begin(), state_->queue.end(), LaterEntry{});
    const QueueEntry entry = state_->queue.back();
    state_->queue.pop_back();
    state_->now = entry.when;
    ++state_->events_executed;
    state_->Execute(entry);
    ++executed;
  }
  return executed;
}

SimInspectView SimSession::Inspect() const {
  State& s = *state_;
  SimInspectView view;
  view.now_s = s.now;
  view.duration_s = s.config.trace.duration_s;
  view.events_executed = s.events_executed;
  view.pending_events = static_cast<int64_t>(s.queue.size());
  view.utilization = s.manager->Utilization();
  view.overcommitment = s.manager->Overcommitment();
  view.counters = s.manager->counters();
  const std::vector<ServerHealth>& health = s.manager->health_states();
  view.servers.reserve(health.size());
  for (Server* server : s.manager->servers()) {
    SimServerView sv;
    sv.id = server->id();
    sv.health = health[static_cast<size_t>(server->id())];
    sv.vm_count = static_cast<int64_t>(server->vm_count());
    sv.allocated = server->Allocated();
    sv.free = server->Free();
    sv.nominal_overcommitment = server->NominalOvercommitment();
    view.hosted_vms += sv.vm_count;
    view.servers.push_back(sv);
  }
  return view;
}

ClusterSimResult SimSession::Finish() {
  State& s = *state_;
  s.RunUntil(s.config.trace.duration_s);

  const MetricsRegistry& registry = s.telemetry->metrics();
  ClusterSimResult result;
  result.counters = s.manager->counters();
  const int64_t low = result.counters.launched_low_priority;
  result.preemption_probability =
      low > 0 ? static_cast<double>(result.counters.preempted) / static_cast<double>(low)
              : 0.0;
  const int64_t arrivals = result.counters.launched + result.counters.rejected;
  result.rejection_rate =
      arrivals > 0
          ? static_cast<double>(result.counters.rejected) / static_cast<double>(arrivals)
          : 0.0;
  // Everything below is a registry read: the result struct is a snapshot
  // view over the telemetry the run produced.
  result.mean_utilization =
      registry.SeriesTimeWeightedMean(s.util_series, s.config.trace.duration_s);
  result.mean_overcommitment =
      registry.SeriesTimeWeightedMean(s.oc_series, s.config.trace.duration_s);
  result.peak_overcommitment = registry.SeriesMax(s.oc_series);
  const auto& server_oc_points = registry.series_points(s.server_oc_series);
  result.server_overcommitment_samples.reserve(server_oc_points.size());
  for (const MetricsRegistry::TimePoint& point : server_oc_points) {
    result.server_overcommitment_samples.push_back(point.value);
  }
  result.usage.low_pri_vm_hours = registry.gauge(s.low_vm_hours);
  result.usage.low_pri_nominal_cpu_hours = registry.gauge(s.low_nominal_cpu_hours);
  result.usage.low_pri_effective_cpu_hours =
      registry.gauge(s.low_effective_cpu_hours);
  result.usage.high_pri_cpu_hours = registry.gauge(s.high_cpu_hours);
  result.usage.preemptions = result.counters.preempted;
  result.low_priority_allocation_quality =
      registry.distribution(s.allocation_quality).mean();
  result.crash_preemptions = result.counters.crash_preempted;
  result.crash_replacements = result.counters.crash_replaced;
  result.server_crashes = result.counters.server_crashes;
  result.server_recoveries = result.counters.server_recoveries;
  if (s.config.interactive.enabled) {
    result.interactive_vms = s.interactive_tagged;
    const int64_t checks = registry.counter(s.slo_checks);
    const int64_t violations = registry.counter(s.slo_violations);
    result.slo_violation_rate =
        checks > 0 ? static_cast<double>(violations) / static_cast<double>(checks)
                   : 0.0;
    const RunningStats& p99 = registry.distribution(s.slo_p99_dist);
    result.slo_mean_p99_ms = p99.mean();
    result.slo_peak_p99_ms = p99.count() > 0 ? p99.max() : 0.0;
    result.slo_reinflate_ops = registry.counter(s.slo_reinflates);
    result.slo_victim_deflations = registry.counter(s.slo_victim_deflations);
  }
  return result;
}

TelemetryContext& SimSession::telemetry() { return *state_->telemetry; }
const ClusterSimConfig& SimSession::config() const { return state_->config; }
ClusterManager& SimSession::manager() { return *state_->manager; }

std::string SimSession::SnapshotBytes() const {
  const State& s = *state_;
  SnapshotWriter w;

  WriteConfig(w, s.config);

  // A config-generated trace is deterministic from the TraceConfig just
  // serialized, so only its length and checksum go into the snapshot; the
  // restore side regenerates and verifies. Explicit traces (replay files,
  // bench harnesses) have no generator to rerun and are inlined in full.
  w.WriteBool(s.trace_generated);
  w.WriteU64(s.trace.size());
  w.WriteU64(s.trace_fnv);
  if (!s.trace_generated) {
    for (const TraceEvent& event : s.trace) {
      w.WriteF64(event.arrival_s);
      w.WriteF64(event.lifetime_s);
      WriteVmSpec(w, event.spec);
    }
  }

  w.WriteF64(s.now);
  w.WriteI64(s.next_seq);
  w.WriteI64(s.events_executed);

  // Canonical queue image: sorted by (when, seq), independent of the heap's
  // internal array layout, so identical logical states snapshot to identical
  // bytes. Strictly-future VM arrivals are elided: arrival i was pushed at
  // Open with when = trace[i].arrival_s and seq = |fault timeline| + i and is
  // never re-pushed, so the restore side rebuilds them from the trace.
  // Arrivals AT `now` (an event-boundary snapshot can leave same-instant
  // stragglers unexecuted) are the only ones written out.
  std::vector<QueueEntry> entries;
  entries.reserve(s.queue.size());
  for (const QueueEntry& entry : s.queue) {
    if (entry.kind == SimEventKind::kVmArrival && entry.when > s.now) {
      continue;
    }
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const QueueEntry& a, const QueueEntry& b) {
              if (a.when != b.when) {
                return a.when < b.when;
              }
              return a.seq < b.seq;
            });
  w.WriteU64(entries.size());
  for (const QueueEntry& entry : entries) {
    w.WriteF64(entry.when);
    w.WriteI64(entry.seq);
    w.WriteU8(static_cast<uint8_t>(entry.kind));
    w.WriteI64(entry.payload);
  }

  const std::array<uint64_t, 4> rng = s.manager->SaveRngState();
  for (const uint64_t word : rng) {
    w.WriteU64(word);
  }
  const std::vector<ServerHealth>& health = s.manager->health_states();
  w.WriteU64(health.size());
  for (const ServerHealth h : health) {
    w.WriteU8(static_cast<uint8_t>(h));
  }
  const std::vector<VmId>& preempted = s.manager->pending_preempted();
  w.WriteU64(preempted.size());
  for (const VmId id : preempted) {
    w.WriteI64(id);
  }
  std::vector<Server*> servers = s.manager->servers();
  w.WriteU64(servers.size());
  for (Server* server : servers) {
    w.WriteU64(server->vm_count());
    for (const auto& vm : server->vms()) {
      w.WriteI64(vm->id());
      WriteVmSpec(w, vm->spec());
      WriteResourceVector(w, vm->hv_reclaimed());
      const GuestOs& guest = vm->guest_os();
      WriteResourceVector(w, guest.unplugged());
      w.WriteF64(guest.balloon_mb());
      w.WriteF64(guest.app_used_mb());
      w.WriteF64(guest.page_cache_mb());
      w.WriteI64(guest.pinned_cpus());
    }
  }

  w.WriteBool(s.injector != nullptr);
  if (s.injector != nullptr) {
    const FaultInjector::State fstate = s.injector->ExportState();
    w.WriteU64(fstate.site_draws.size());
    for (const auto& [kind, vm, server, draws] : fstate.site_draws) {
      w.WriteU8(kind);
      w.WriteI64(vm);
      w.WriteI64(server);
      w.WriteU64(draws);
    }
    w.WriteU64(fstate.rule_fires.size());
    for (const int64_t fires : fstate.rule_fires) {
      w.WriteI64(fires);
    }
    for (const int64_t count : fstate.injected) {
      w.WriteI64(count);
    }
  }

  w.WriteBool(s.predictor.initialized());
  w.WriteF64(s.predictor.mean());
  w.WriteF64(s.predictor.variance());

  w.WriteBool(s.telemetry->trace().enabled());
  const MetricsRegistry::State mstate = s.telemetry->metrics().ExportState();
  w.WriteU64(mstate.counters.size());
  for (const auto& [name, value] : mstate.counters) {
    w.WriteString(name);
    w.WriteI64(value);
  }
  w.WriteU64(mstate.gauges.size());
  for (const auto& [name, value] : mstate.gauges) {
    w.WriteString(name);
    w.WriteF64(value);
  }
  w.WriteU64(mstate.distributions.size());
  for (const MetricsRegistry::DistributionState& d : mstate.distributions) {
    w.WriteString(d.name);
    w.WriteI64(d.count);
    w.WriteF64(d.mean);
    w.WriteF64(d.m2);
    w.WriteF64(d.min);
    w.WriteF64(d.max);
    w.WriteF64(d.sum);
    w.WriteBool(d.has_histogram);
    if (d.has_histogram) {
      w.WriteU64(d.hist_counts.size());
      for (const int64_t count : d.hist_counts) {
        w.WriteI64(count);
      }
      w.WriteI64(d.hist_total);
      w.WriteI64(d.hist_dropped);
    }
  }
  w.WriteU64(mstate.series.size());
  for (const auto& [name, points] : mstate.series) {
    w.WriteString(name);
    w.WriteU64(points.size());
    for (const MetricsRegistry::TimePoint& point : points) {
      w.WriteF64(point.time);
      w.WriteF64(point.value);
    }
  }
  const TraceEventView events = s.telemetry->trace().events();
  w.WriteU64(events.size());
  for (const TraceEventRecord& event : events) {
    w.WriteF64(event.time);
    w.WriteU8(static_cast<uint8_t>(event.kind));
    w.WriteU8(static_cast<uint8_t>(event.layer));
    w.WriteI64(event.vm);
    w.WriteI64(event.server);
    WriteResourceVector(w, event.target);
    WriteResourceVector(w, event.reclaimed);
    w.WriteI64(event.outcome);
  }

  return w.Finish();
}

Result<bool> SimSession::Snapshot(const std::string& path) const {
  return WriteSnapshotFile(SnapshotBytes(), path);
}

Result<SimSession> SimSession::Restore(const std::string& path,
                                       const RestoreOptions& options) {
  Result<std::string> bytes = ReadSnapshotFile(path);
  if (!bytes.ok()) {
    return Error{bytes.error()};
  }
  Result<SimSession> session = RestoreBytes(bytes.value(), options);
  if (!session.ok()) {
    return Error{"cannot restore " + path + ": " + session.error()};
  }
  return session;
}

Result<SimSession> SimSession::RestoreBytes(const std::string& bytes,
                                            const RestoreOptions& options) {
  return RestoreView(std::string_view(bytes), options);
}

Result<SimSession> SimSession::RestoreView(std::string_view bytes,
                                           const RestoreOptions& options) {
  Result<SnapshotReader> opened = SnapshotReader::OpenView(bytes);
  if (!opened.ok()) {
    return Error{opened.error()};
  }
  SnapshotReader& r = opened.value();

  ClusterSimConfig config = ReadConfig(r);
  if (!r.ok()) {
    return Error{r.error()};
  }
  config.telemetry = nullptr;
  if (options.threads > 0) {
    config.cluster.threads = options.threads;
  }
  if (options.placement >= 0) {
    if (options.placement > static_cast<int>(PlacementPolicy::kTwoChoices)) {
      return Error{"placement override " + std::to_string(options.placement) +
                   " is not a PlacementPolicy (max " +
                   std::to_string(static_cast<int>(PlacementPolicy::kTwoChoices)) +
                   ")"};
    }
    config.cluster.placement = static_cast<PlacementPolicy>(options.placement);
  }
  const Result<bool> valid = ValidateConfig(config);
  if (!valid.ok()) {
    return Error{"snapshot carries an invalid config: " + valid.error()};
  }

  std::unique_ptr<State> state = BuildCore(config, options.telemetry);
  State& s = *state;

  const bool trace_generated = r.ReadBool();
  if (trace_generated) {
    // The trace was elided: rerun the generator the original session used
    // and prove the result is bit-identical via the stored length/checksum.
    // Pending arrival events index into this list, so a generator that
    // drifted across builds must fail the restore, not corrupt it.
    const uint64_t trace_size = r.ReadU64();
    const uint64_t trace_fnv = r.ReadU64();
    if (r.ok()) {
      s.trace = s.config.arrivals.enabled
                    ? GenerateDiurnalTrace(s.config.trace, s.config.arrivals)
                    : GenerateTrace(s.config.trace);
      s.trace_generated = true;
      if (s.config.interactive.enabled) {
        s.interactive_tagged = ApplyInteractiveMix(s.trace, s.config.interactive);
      }
      s.trace_fnv = TraceFnv(s.trace);
      if (s.trace.size() != trace_size || s.trace_fnv != trace_fnv) {
        r.Fail("snapshot's elided arrival trace cannot be regenerated: the "
               "generator produced " +
               std::to_string(s.trace.size()) + " arrivals, snapshot recorded " +
               std::to_string(trace_size) + " (checksum " +
               (s.trace_fnv == trace_fnv ? "matches" : "differs") + ")");
      }
    }
  } else {
    const uint64_t trace_size = ReadCount(r, 8 * 2, "trace event");
    const uint64_t trace_fnv = r.ReadU64();
    s.trace.reserve(static_cast<size_t>(trace_size));
    for (uint64_t i = 0; r.ok() && i < trace_size; ++i) {
      TraceEvent event;
      event.arrival_s = r.ReadF64();
      event.lifetime_s = r.ReadF64();
      event.spec = ReadVmSpec(r);
      s.trace.push_back(std::move(event));
    }
    // An explicit trace must never be re-sampled: pending arrival events
    // index into exactly this materialized list.
    s.config.explicit_trace = s.trace;
    if (s.config.interactive.enabled) {
      s.interactive_tagged = CountInteractive(s.trace);
    }
    s.trace_fnv = TraceFnv(s.trace);
    if (r.ok() && s.trace_fnv != trace_fnv) {
      r.Fail("snapshot's inlined arrival trace fails its checksum");
    }
  }

  s.now = r.ReadF64();
  s.next_seq = r.ReadI64();
  s.events_executed = r.ReadI64();

  const uint64_t queue_size = ReadCount(r, 8 * 3 + 1, "queue entry");
  s.queue.reserve(static_cast<size_t>(queue_size));
  for (uint64_t i = 0; r.ok() && i < queue_size; ++i) {
    QueueEntry entry;
    entry.when = r.ReadF64();
    entry.seq = r.ReadI64();
    const uint8_t kind = r.ReadU8();
    entry.payload = r.ReadI64();
    if (kind > kMaxEventKind) {
      r.Fail("snapshot queue entry kind byte " + std::to_string(kind) +
             " is out of range");
      break;
    }
    entry.kind = static_cast<SimEventKind>(kind);
    // Bound payloads so a logically-inconsistent snapshot cannot index out
    // of range later (the checksum only protects against corruption).
    bool payload_ok = true;
    switch (entry.kind) {
      case SimEventKind::kFaultEvent:
        payload_ok = entry.payload >= 0 &&
                     static_cast<size_t>(entry.payload) < s.fault_events.size();
        break;
      case SimEventKind::kMarkHealthy:
        payload_ok = entry.payload >= 0 && entry.payload < config.num_servers;
        break;
      case SimEventKind::kVmArrival:
      case SimEventKind::kVmCompletion:
        payload_ok = entry.payload >= 0 &&
                     static_cast<size_t>(entry.payload) < s.trace.size();
        break;
      case SimEventKind::kSloTick:
        // An SLO tick without the interactive config is inconsistent (its
        // reschedule would divide by a zero period).
        if (!config.interactive.enabled) {
          r.Fail("snapshot queues an SLO tick but interactive serving is "
                 "disabled in its config");
        }
        break;
      default:
        break;
    }
    if (!payload_ok) {
      r.Fail("snapshot queue entry payload " + std::to_string(entry.payload) +
             " is out of range for its event kind");
      break;
    }
    s.queue.push_back(entry);
  }
  // Rebuild the elided strictly-future arrivals (see SnapshotBytes): arrival
  // i re-enters with its Open-time sequence number, |fault timeline| + i, so
  // the same-time tie-break order is bit-exact.
  if (r.ok()) {
    const int64_t arrival_seq_base = static_cast<int64_t>(s.fault_events.size());
    for (size_t i = 0; i < s.trace.size(); ++i) {
      if (s.trace[i].arrival_s > s.now) {
        s.queue.push_back(QueueEntry{s.trace[i].arrival_s,
                                     arrival_seq_base + static_cast<int64_t>(i),
                                     SimEventKind::kVmArrival,
                                     static_cast<int64_t>(i)});
      }
    }
  }
  std::make_heap(s.queue.begin(), s.queue.end(), LaterEntry{});

  std::array<uint64_t, 4> rng;
  for (uint64_t& word : rng) {
    word = r.ReadU64();
  }
  s.manager->RestoreRngState(rng);

  const uint64_t health_size = ReadCount(r, 1, "server health");
  std::vector<ServerHealth> health;
  health.reserve(static_cast<size_t>(health_size));
  for (uint64_t i = 0; r.ok() && i < health_size; ++i) {
    const uint8_t h = r.ReadU8();
    if (h > static_cast<uint8_t>(ServerHealth::kRecovering)) {
      r.Fail("snapshot server health byte " + std::to_string(h) +
             " is out of range");
      break;
    }
    health.push_back(static_cast<ServerHealth>(h));
  }
  if (r.ok() && !s.manager->RestoreHealthStates(health)) {
    r.Fail("snapshot has " + std::to_string(health.size()) +
           " server health entries for " + std::to_string(config.num_servers) +
           " servers");
  }

  const uint64_t preempted_size = ReadCount(r, 8, "pending preemption");
  std::vector<VmId> preempted;
  preempted.reserve(static_cast<size_t>(preempted_size));
  for (uint64_t i = 0; r.ok() && i < preempted_size; ++i) {
    preempted.push_back(r.ReadI64());
  }
  s.manager->RestorePreempted(std::move(preempted));

  const uint64_t server_count = ReadCount(r, 8, "server");
  if (r.ok() && server_count != static_cast<uint64_t>(config.num_servers)) {
    r.Fail("snapshot has " + std::to_string(server_count) +
           " server sections for " + std::to_string(config.num_servers) +
           " servers");
  }
  for (uint64_t server_id = 0; r.ok() && server_id < server_count; ++server_id) {
    const uint64_t vm_count = ReadCount(r, 8, "hosted VM");
    for (uint64_t i = 0; r.ok() && i < vm_count; ++i) {
      const VmId id = r.ReadI64();
      VmSpec spec = ReadVmSpec(r);
      const ResourceVector hv_reclaimed = ReadResourceVector(r);
      const ResourceVector unplugged = ReadResourceVector(r);
      const double balloon_mb = r.ReadF64();
      const double app_used_mb = r.ReadF64();
      const double page_cache_mb = r.ReadF64();
      const int64_t pinned_cpus = r.ReadI64();
      if (!r.ok()) {
        break;
      }
      // Reinstate the VM exactly as it was -- direct state injection, no
      // TryUnplug/HvReclaim replay (those would consume RNG/fault draws the
      // snapshotting run already took). Adoption in (server, hosting) order
      // replays the admission order, so per-server accounting caches
      // recompute to the exact same folds.
      auto vm = std::make_unique<Vm>(id, std::move(spec));
      vm->guest_os().set_app_used_mb(app_used_mb);
      vm->guest_os().set_page_cache_mb(page_cache_mb);
      vm->guest_os().set_pinned_cpus(static_cast<int>(pinned_cpus));
      vm->guest_os().RestoreDeflationState(unplugged, balloon_mb);
      vm->RestoreHvReclaimed(hv_reclaimed);
      s.manager->AdoptVm(std::move(vm), static_cast<ServerId>(server_id));
    }
  }

  const bool has_injector = r.ReadBool();
  if (r.ok() && has_injector != (s.injector != nullptr)) {
    r.Fail("snapshot fault-injector presence does not match its fault plan");
  }
  if (r.ok() && has_injector) {
    FaultInjector::State fstate;
    const uint64_t site_count = ReadCount(r, 1 + 8 * 3, "fault site");
    fstate.site_draws.reserve(static_cast<size_t>(site_count));
    for (uint64_t i = 0; r.ok() && i < site_count; ++i) {
      const uint8_t kind = r.ReadU8();
      const int64_t vm = r.ReadI64();
      const int64_t server = r.ReadI64();
      const uint64_t draws = r.ReadU64();
      fstate.site_draws.emplace_back(kind, vm, server, draws);
    }
    const uint64_t fire_count = ReadCount(r, 8, "rule fire");
    fstate.rule_fires.reserve(static_cast<size_t>(fire_count));
    for (uint64_t i = 0; r.ok() && i < fire_count; ++i) {
      fstate.rule_fires.push_back(r.ReadI64());
    }
    for (int64_t& count : fstate.injected) {
      count = r.ReadI64();
    }
    if (r.ok()) {
      const Result<bool> imported = s.injector->ImportState(fstate);
      if (!imported.ok()) {
        r.Fail(imported.error());
      }
    }
  }

  const bool predictor_initialized = r.ReadBool();
  const double predictor_mean = r.ReadF64();
  const double predictor_var = r.ReadF64();
  s.predictor.RestoreState(predictor_initialized, predictor_mean, predictor_var);

  const bool trace_enabled = r.ReadBool();
  MetricsRegistry::State mstate;
  const uint64_t counter_count = ReadCount(r, 8 * 2, "counter");
  for (uint64_t i = 0; r.ok() && i < counter_count; ++i) {
    std::string name = r.ReadString();
    const int64_t value = r.ReadI64();
    mstate.counters.emplace_back(std::move(name), value);
  }
  const uint64_t gauge_count = ReadCount(r, 8 * 2, "gauge");
  for (uint64_t i = 0; r.ok() && i < gauge_count; ++i) {
    std::string name = r.ReadString();
    const double value = r.ReadF64();
    mstate.gauges.emplace_back(std::move(name), value);
  }
  const uint64_t dist_count = ReadCount(r, 8 * 7 + 1, "distribution");
  for (uint64_t i = 0; r.ok() && i < dist_count; ++i) {
    MetricsRegistry::DistributionState d;
    d.name = r.ReadString();
    d.count = r.ReadI64();
    d.mean = r.ReadF64();
    d.m2 = r.ReadF64();
    d.min = r.ReadF64();
    d.max = r.ReadF64();
    d.sum = r.ReadF64();
    d.has_histogram = r.ReadBool();
    if (d.has_histogram) {
      const uint64_t bins = ReadCount(r, 8, "histogram bin");
      d.hist_counts.reserve(static_cast<size_t>(bins));
      for (uint64_t b = 0; r.ok() && b < bins; ++b) {
        d.hist_counts.push_back(r.ReadI64());
      }
      d.hist_total = r.ReadI64();
      d.hist_dropped = r.ReadI64();
    }
    mstate.distributions.push_back(std::move(d));
  }
  const uint64_t series_count = ReadCount(r, 8 * 2, "series");
  for (uint64_t i = 0; r.ok() && i < series_count; ++i) {
    std::string name = r.ReadString();
    const uint64_t point_count = ReadCount(r, 8 * 2, "series point");
    std::vector<MetricsRegistry::TimePoint> points;
    points.reserve(static_cast<size_t>(point_count));
    for (uint64_t p = 0; r.ok() && p < point_count; ++p) {
      MetricsRegistry::TimePoint point;
      point.time = r.ReadF64();
      point.value = r.ReadF64();
      points.push_back(point);
    }
    mstate.series.emplace_back(std::move(name), std::move(points));
  }
  if (r.ok()) {
    // Wholesale value overwrite: erases the junk telemetry the adoption path
    // emitted above and reinstates every counter/gauge/distribution/series
    // exactly. Rejects a registry whose layout differs from the snapshot
    // (e.g. a RestoreOptions::telemetry context that was not fresh).
    const Result<bool> imported = s.telemetry->metrics().ImportState(mstate);
    if (!imported.ok()) {
      r.Fail(imported.error());
    }
  }

  const uint64_t event_count = ReadCount(r, 8 * 12 + 2, "trace record");
  std::vector<TraceEventRecord> events;
  events.reserve(static_cast<size_t>(event_count));
  for (uint64_t i = 0; r.ok() && i < event_count; ++i) {
    TraceEventRecord event;
    event.time = r.ReadF64();
    event.kind = static_cast<TraceEventKind>(r.ReadU8());
    event.layer = static_cast<CascadeLayer>(r.ReadU8());
    event.vm = r.ReadI64();
    event.server = r.ReadI64();
    event.target = ReadResourceVector(r);
    event.reclaimed = ReadResourceVector(r);
    event.outcome = static_cast<int32_t>(r.ReadI64());
    events.push_back(event);
  }
  if (r.ok()) {
    s.telemetry->trace().set_enabled(trace_enabled);
    s.telemetry->trace().RestoreEvents(std::move(events));
  }

  // The SLO override (DESIGN.md §16) applies only after the full parse: the
  // trace checksum was verified against the ORIGINAL config's mix, and the
  // registry import needed the snapshot's exact layout. Enabling interactive
  // serving here appends the slo/* metrics to the registry tail -- the same
  // position BuildCore gives them -- and re-tags the regenerated trace, so
  // only future arrivals change; already-placed VMs keep their specs.
  if (r.ok() && options.slo.active) {
    const bool was_enabled = s.config.interactive.enabled;
    InteractiveSloConfig& mix = s.config.interactive;
    mix.enabled = true;
    if (options.slo.slo_p99_ms >= 0.0) {
      mix.slo_p99_ms = options.slo.slo_p99_ms;
    }
    if (options.slo.policy >= 0) {
      mix.slo_aware = options.slo.policy != 0;
    }
    if (options.slo.control_period_s >= 0.0) {
      mix.control_period_s = options.slo.control_period_s;
    }
    if (options.slo.fraction >= 0.0) {
      mix.fraction = options.slo.fraction;
    }
    const Result<bool> still_valid = ValidateConfig(s.config);
    if (!still_valid.ok()) {
      r.Fail("slo override yields an invalid config: " + still_valid.error());
    }
    if (r.ok() && (options.slo.fraction >= 0.0 || !was_enabled)) {
      if (s.trace_generated) {
        s.trace = s.config.arrivals.enabled
                      ? GenerateDiurnalTrace(s.config.trace, s.config.arrivals)
                      : GenerateTrace(s.config.trace);
        s.interactive_tagged = ApplyInteractiveMix(s.trace, mix);
        s.trace_fnv = TraceFnv(s.trace);
      } else if (options.slo.fraction >= 0.0) {
        r.Fail("slo override cannot re-tag an explicit trace (no generator "
               "to rerun); it tags by the \"web\" name prefix only");
      } else {
        s.interactive_tagged = CountInteractive(s.trace);
      }
    }
    if (r.ok() && !was_enabled) {
      s.RegisterInteractiveMetrics(s.telemetry->metrics());
      s.Push(NextPeriodicFire(s.now, mix.control_period_s),
             SimEventKind::kSloTick, 0);
    }
  }

  if (!r.ok()) {
    return Error{r.error()};
  }
  if (!r.AtEnd()) {
    return Error{"snapshot has " + std::to_string(r.Remaining()) +
                 " unexpected trailing payload bytes"};
  }
  return SimSession(std::move(state));
}

}  // namespace defl
