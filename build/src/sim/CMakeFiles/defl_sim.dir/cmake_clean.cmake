file(REMOVE_RECURSE
  "CMakeFiles/defl_sim.dir/simulator.cc.o"
  "CMakeFiles/defl_sim.dir/simulator.cc.o.d"
  "libdefl_sim.a"
  "libdefl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
