#include "src/cluster/trace_io.h"

#include <gtest/gtest.h>

namespace defl {
namespace {

std::vector<TraceEvent> SampleTrace() {
  TraceConfig config;
  config.duration_s = 3600.0;
  config.arrival_rate_per_s = 0.02;
  config.seed = 13;
  return GenerateTrace(config);
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const std::vector<TraceEvent> original = SampleTrace();
  ASSERT_FALSE(original.empty());
  const Result<std::vector<TraceEvent>> parsed = ParseTraceCsv(TraceToCsv(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const std::vector<TraceEvent>& loaded = parsed.value();
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded[i].arrival_s, original[i].arrival_s, 1e-3);
    EXPECT_NEAR(loaded[i].lifetime_s, original[i].lifetime_s, 1e-3);
    EXPECT_EQ(loaded[i].spec.name, original[i].spec.name);
    EXPECT_EQ(loaded[i].spec.priority, original[i].spec.priority);
    EXPECT_NEAR(loaded[i].spec.size.cpu(), original[i].spec.size.cpu(), 1e-9);
    EXPECT_NEAR(loaded[i].spec.min_size.memory_mb(),
                original[i].spec.min_size.memory_mb(), 1e-3);
  }
}

TEST(TraceIoTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "\n"
      "10,600,vm-a,low,4,16384,100,500,1,4096,25,125\n"
      "# another\n"
      "20,1200,vm-b,high,2,8192,50,250,0,0,0,0\n";
  const Result<std::vector<TraceEvent>> parsed = ParseTraceCsv(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].spec.priority, VmPriority::kLow);
  EXPECT_EQ(parsed.value()[1].spec.priority, VmPriority::kHigh);
  EXPECT_DOUBLE_EQ(parsed.value()[1].arrival_s, 20.0);
}

TEST(TraceIoTest, RejectsMalformedRows) {
  const char* bad_cases[] = {
      "10,600,vm,low,4,16384,100,500,1,4096,25\n",          // 11 fields
      "10,600,vm,medium,4,16384,100,500,1,4096,25,125\n",   // bad priority
      "10,xyz,vm,low,4,16384,100,500,1,4096,25,125\n",      // bad number
      "10,600,vm,low,4,16384,100,500,8,32768,200,1000\n",   // min > size
      "10,-5,vm,low,4,16384,100,500,1,4096,25,125\n",       // non-positive life
  };
  for (const char* text : bad_cases) {
    EXPECT_FALSE(ParseTraceCsv(text).ok()) << text;
  }
}

TEST(TraceIoTest, RejectsUnsortedArrivals) {
  const std::string text =
      "20,600,vm-a,low,4,16384,100,500,1,4096,25,125\n"
      "10,600,vm-b,low,4,16384,100,500,1,4096,25,125\n";
  const Result<std::vector<TraceEvent>> parsed = ParseTraceCsv(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("not sorted"), std::string::npos);
}

TEST(TraceIoTest, ErrorsNameTheLine) {
  const std::string text =
      "10,600,vm-a,low,4,16384,100,500,1,4096,25,125\n"
      "oops\n";
  const Result<std::vector<TraceEvent>> parsed = ParseTraceCsv(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("line 2"), std::string::npos);
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::vector<TraceEvent> original = SampleTrace();
  const std::string path = ::testing::TempDir() + "/trace_io_test.csv";
  const Result<bool> saved = SaveTraceFile(original, path);
  ASSERT_TRUE(saved.ok()) << saved.error();
  const Result<std::vector<TraceEvent>> loaded = LoadTraceFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().size(), original.size());
}

TEST(TraceIoTest, MissingFileIsAnError) {
  EXPECT_FALSE(LoadTraceFile("/nonexistent/path/trace.csv").ok());
}

TEST(TraceIoTest, EmptyInputIsAnEmptyTrace) {
  const Result<std::vector<TraceEvent>> parsed = ParseTraceCsv("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

// Every record WriteTraceCsv emits ends in '\n', but hand-authored or
// editor-stripped files may legitimately end without one. An unterminated
// final line that still forms a complete valid record (or a comment) loads
// normally; only a genuinely short or garbled tail is rejected, with the
// possible truncation called out so the error doesn't misdirect.
TEST(TraceIoTest, AcceptsCompleteFinalRecordWithoutNewline) {
  const std::string good =
      "10,600,vm-a,low,4,16384,100,500,1,4096,25,125\n";
  const char* valid_tails[] = {
      "20,600,vm-b,low,4,16384,100,500,1,4096,25,125",  // full record, no '\n'
      "# trailing comment without newline",
  };
  for (const char* tail : valid_tails) {
    const Result<std::vector<TraceEvent>> parsed = ParseTraceCsv(good + tail);
    ASSERT_TRUE(parsed.ok()) << tail << ": " << parsed.error();
  }
}

TEST(TraceIoTest, RejectsGarbledFinalRecordAsPossibleTruncation) {
  const std::string good =
      "10,600,vm-a,low,4,16384,100,500,1,4096,25,125\n";
  // Tails cut mid-record: fields missing, or the last number left dangling
  // at a separator.
  const char* truncated_tails[] = {
      "20,600,vm-b,low,4,16384,100,500",     // fields missing
      "20,600,vm-b,low,4,16384,100,500,1,",  // cut at a comma
  };
  for (const char* tail : truncated_tails) {
    const Result<std::vector<TraceEvent>> parsed = ParseTraceCsv(good + tail);
    ASSERT_FALSE(parsed.ok()) << tail;
    EXPECT_NE(parsed.error().find("possible truncated record at EOF"),
              std::string::npos)
        << parsed.error();
    EXPECT_NE(parsed.error().find("line 2"), std::string::npos) << parsed.error();
  }
}

TEST(TraceIoTest, TruncatedFileRoundTripIsRejected) {
  const std::vector<TraceEvent> original = SampleTrace();
  ASSERT_FALSE(original.empty());
  std::string text = TraceToCsv(original);
  ASSERT_TRUE(ParseTraceCsv(text).ok());
  // Dropping only the final newline leaves a complete record: still loads.
  text.pop_back();
  ASSERT_TRUE(ParseTraceCsv(text).ok());
  // Cutting into the record itself does not.
  text.resize(text.rfind(','));
  const Result<std::vector<TraceEvent>> parsed = ParseTraceCsv(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("possible truncated record at EOF"),
            std::string::npos)
      << parsed.error();
}

}  // namespace
}  // namespace defl
