# Empty compiler generated dependencies file for ext_ablation_balloon.
# This may be replaced when dependencies are built.
