file(REMOVE_RECURSE
  "libdefl_spark.a"
)
