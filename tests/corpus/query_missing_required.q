# overcommit needs target=; this one only has a shape.
overcommit cpu=2
