file(REMOVE_RECURSE
  "CMakeFiles/cluster_properties_test.dir/properties/cluster_properties_test.cc.o"
  "CMakeFiles/cluster_properties_test.dir/properties/cluster_properties_test.cc.o.d"
  "cluster_properties_test"
  "cluster_properties_test.pdb"
  "cluster_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
