#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace defl {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t x = rng.UniformInt(2, 5);
    EXPECT_GE(x, 2);
    EXPECT_LE(x, 5);
    saw_lo = saw_lo || x == 2;
    saw_hi = saw_hi || x == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(0.5);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.BoundedPareto(1.0, 100.0, 1.5);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(RngTest, BoundedParetoIsHeavyTailed) {
  // Mass should concentrate near the lower bound.
  Rng rng(19);
  int below_10 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.BoundedPareto(1.0, 1000.0, 1.2) < 10.0) {
      ++below_10;
    }
  }
  EXPECT_GT(below_10, n * 0.8);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(23);
  auto p = rng.Permutation(50);
  std::sort(p.begin(), p.end());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(p[static_cast<size_t>(i)], i);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

// --- Zipf ---

TEST(ZipfTest, SamplesInRange) {
  Rng rng(41);
  ZipfDistribution zipf(1000, 0.9);
  for (int i = 0; i < 10000; ++i) {
    const int64_t k = zipf.Sample(rng);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 1000);
  }
}

TEST(ZipfTest, UniverseOfOne) {
  Rng rng(43);
  ZipfDistribution zipf(1, 1.2);
  EXPECT_EQ(zipf.Sample(rng), 1);
}

TEST(ZipfTest, EmpiricalHeadMassMatchesAnalytic) {
  // The fraction of samples falling in the top-k ranks should match
  // ZipfHeadFraction, tying the sampler and the analytic model together.
  Rng rng(47);
  const int64_t n = 10000;
  const double s = 0.9;
  ZipfDistribution zipf(n, s);
  const int64_t k = 100;
  int64_t in_head = 0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    if (zipf.Sample(rng) <= k) {
      ++in_head;
    }
  }
  const double empirical = static_cast<double>(in_head) / samples;
  EXPECT_NEAR(empirical, ZipfHeadFraction(n, k, s), 0.01);
}

TEST(ZipfTest, SkewOneIsHandled) {
  Rng rng(53);
  ZipfDistribution zipf(500, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const int64_t k = zipf.Sample(rng);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 500);
  }
}

TEST(GeneralizedHarmonicTest, SmallExactValues) {
  EXPECT_DOUBLE_EQ(GeneralizedHarmonic(1, 1.0), 1.0);
  EXPECT_NEAR(GeneralizedHarmonic(2, 1.0), 1.5, 1e-12);
  EXPECT_NEAR(GeneralizedHarmonic(3, 2.0), 1.0 + 0.25 + 1.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(GeneralizedHarmonic(0, 1.0), 0.0);
}

TEST(GeneralizedHarmonicTest, LargeKMatchesBruteForce) {
  const double s = 0.9;
  const int64_t k = 100000;
  double brute = 0.0;
  for (int64_t i = 1; i <= k; ++i) {
    brute += std::pow(static_cast<double>(i), -s);
  }
  EXPECT_NEAR(GeneralizedHarmonic(k, s) / brute, 1.0, 1e-6);
}

TEST(ZipfHeadFractionTest, BoundaryBehavior) {
  EXPECT_DOUBLE_EQ(ZipfHeadFraction(100, 100, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(ZipfHeadFraction(100, 200, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(ZipfHeadFraction(100, 0, 0.9), 0.0);
  EXPECT_GT(ZipfHeadFraction(1000, 100, 0.9), 0.1);  // skewed head is heavy
}

TEST(ZipfHeadFractionTest, MonotonicInK) {
  double prev = 0.0;
  for (int64_t k = 1; k <= 1000; k += 37) {
    const double f = ZipfHeadFraction(1000, k, 0.8);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

}  // namespace
}  // namespace defl
