# Empty compiler generated dependencies file for defl_resources.
# This may be replaced when dependencies are built.
