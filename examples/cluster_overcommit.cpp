// Cluster-scale deflation: replays a synthetic day of VM arrivals (Poisson
// arrivals, heavy-tailed lifetimes, 60% transient VMs) through the
// deflation-based cluster manager and through a conventional preemption-only
// manager at 1.6x offered load, and compares utilization, overcommitment and
// the fate of transient VMs. Runs through the steppable SimSession API so the
// halfway point can be inspected live before the run finishes.
#include <cstdio>

#include "src/cluster/sim_session.h"

using namespace defl;

namespace {

ClusterSimResult Run(ReclamationStrategy strategy) {
  ClusterSimConfig config;
  config.num_servers = 40;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 12.0 * 3600.0;
  config.trace.max_lifetime_s = 8.0 * 3600.0;
  config.trace.seed = 2024;
  config.trace =
      WithTargetLoad(config.trace, 1.6, config.num_servers, config.server_capacity);
  config.cluster.strategy = strategy;
  Result<SimSession> session = SimSession::Open(config);
  if (!session.ok()) {
    std::printf("cannot open session: %s\n", session.error().c_str());
    return ClusterSimResult{};
  }
  // Stop the clock at midday and peek at the live cluster, then finish the
  // remaining half. Stepping does not change the result: the full run is
  // byte-identical to a batch RunClusterSim() of the same config.
  SimSession& sim = session.value();
  sim.StepUntil(6.0 * 3600.0);
  const SimInspectView midday = sim.Inspect();
  std::printf("  [t=%.0fh] %lld VMs hosted, utilization %.2f, overcommitment %.2f\n",
              midday.now_s / 3600.0, static_cast<long long>(midday.hosted_vms),
              midday.utilization, midday.overcommitment);
  return sim.Finish();
}

void Report(const char* label, const ClusterSimResult& r) {
  std::printf("%s\n", label);
  std::printf("  VMs launched: %ld (%ld transient), rejected: %ld\n",
              r.counters.launched, r.counters.launched_low_priority,
              r.counters.rejected);
  std::printf("  transient VMs preempted: %ld (probability %.3f)\n",
              r.counters.preempted, r.preemption_probability);
  std::printf("  mean utilization %.2f, mean overcommitment %.2f (peak %.2f)\n\n",
              r.mean_utilization, r.mean_overcommitment, r.peak_overcommitment);
}

}  // namespace

int main() {
  std::printf("40 servers, 12 h, offered load 1.6x capacity, 60%% transient VMs\n\n");
  Report("deflation-based management:", Run(ReclamationStrategy::kDeflation));
  Report("preemption-only management:", Run(ReclamationStrategy::kPreemptionOnly));
  return 0;
}
