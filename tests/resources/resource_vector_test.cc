#include "src/resources/resource_vector.h"

#include <gtest/gtest.h>

#include <cmath>

namespace defl {
namespace {

TEST(ResourceVectorTest, DefaultIsZero) {
  const ResourceVector v;
  EXPECT_TRUE(v.IsZero());
  EXPECT_DOUBLE_EQ(v.cpu(), 0.0);
  EXPECT_DOUBLE_EQ(v.memory_mb(), 0.0);
}

TEST(ResourceVectorTest, ConstructorAndAccessors) {
  const ResourceVector v(4.0, 16384.0, 100.0, 1000.0);
  EXPECT_DOUBLE_EQ(v.cpu(), 4.0);
  EXPECT_DOUBLE_EQ(v.memory_mb(), 16384.0);
  EXPECT_DOUBLE_EQ(v.disk_bw(), 100.0);
  EXPECT_DOUBLE_EQ(v.net_bw(), 1000.0);
  EXPECT_DOUBLE_EQ(v[ResourceKind::kCpu], 4.0);
  EXPECT_DOUBLE_EQ(v[ResourceKind::kNetBw], 1000.0);
}

TEST(ResourceVectorTest, Arithmetic) {
  const ResourceVector a(2.0, 10.0, 4.0, 6.0);
  const ResourceVector b(1.0, 5.0, 2.0, 3.0);
  EXPECT_EQ(a + b, ResourceVector(3.0, 15.0, 6.0, 9.0));
  EXPECT_EQ(a - b, b);
  EXPECT_EQ(a * 0.5, b);
  EXPECT_EQ(b * 2.0, a);
  EXPECT_EQ(a / 2.0, b);
  EXPECT_EQ(2.0 * b, a);
}

TEST(ResourceVectorTest, CompoundAssignment) {
  ResourceVector v(1.0, 1.0, 1.0, 1.0);
  v += ResourceVector(1.0, 2.0, 3.0, 4.0);
  EXPECT_EQ(v, ResourceVector(2.0, 3.0, 4.0, 5.0));
  v -= ResourceVector(2.0, 3.0, 4.0, 5.0);
  EXPECT_TRUE(v.IsZero());
}

TEST(ResourceVectorTest, MinMaxClamp) {
  const ResourceVector a(2.0, 10.0, 4.0, 6.0);
  const ResourceVector b(3.0, 5.0, 4.0, 7.0);
  EXPECT_EQ(a.Min(b), ResourceVector(2.0, 5.0, 4.0, 6.0));
  EXPECT_EQ(a.Max(b), ResourceVector(3.0, 10.0, 4.0, 7.0));
  const ResourceVector neg(-1.0, 2.0, -3.0, 0.0);
  EXPECT_EQ(neg.ClampNonNegative(), ResourceVector(0.0, 2.0, 0.0, 0.0));
}

TEST(ResourceVectorTest, ScaleAndSafeDivide) {
  const ResourceVector v(4.0, 100.0, 10.0, 20.0);
  const ResourceVector f(0.5, 0.1, 1.0, 0.0);
  EXPECT_EQ(v.Scale(f), ResourceVector(2.0, 10.0, 10.0, 0.0));
  const ResourceVector d = v.SafeDivide(ResourceVector(2.0, 0.0, 5.0, 10.0));
  EXPECT_DOUBLE_EQ(d.cpu(), 2.0);
  EXPECT_DOUBLE_EQ(d.memory_mb(), 0.0);  // divide by zero yields zero
  EXPECT_DOUBLE_EQ(d.disk_bw(), 2.0);
  EXPECT_DOUBLE_EQ(d.net_bw(), 2.0);
}

TEST(ResourceVectorTest, Comparisons) {
  const ResourceVector small(1.0, 1.0, 1.0, 1.0);
  const ResourceVector big(2.0, 2.0, 2.0, 2.0);
  EXPECT_TRUE(small.AllLeq(big));
  EXPECT_FALSE(big.AllLeq(small));
  EXPECT_TRUE(small.AllLeq(small));
  // Mixed: not all dims <=.
  EXPECT_FALSE(ResourceVector(3.0, 0.0, 0.0, 0.0).AllLeq(big));
  EXPECT_TRUE(big.AnyPositive());
  EXPECT_FALSE(ResourceVector().AnyPositive());
}

TEST(ResourceVectorTest, DotNormComponents) {
  const ResourceVector v(3.0, 4.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.Dot(v), 25.0);
  EXPECT_DOUBLE_EQ(v.MaxComponent(), 4.0);
  EXPECT_DOUBLE_EQ(v.MinComponent(), 0.0);
  EXPECT_DOUBLE_EQ(v.Sum(), 7.0);
}

TEST(ResourceVectorTest, CosineSimilarity) {
  const ResourceVector a(1.0, 0.0, 0.0, 0.0);
  const ResourceVector b(0.0, 1.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(ResourceVector::CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(ResourceVector::CosineSimilarity(a, a), 1.0);
  // Parallel vectors of different magnitude have similarity 1.
  EXPECT_NEAR(ResourceVector::CosineSimilarity(a * 5.0, a), 1.0, 1e-12);
  // Zero vector yields 0 (not NaN).
  EXPECT_DOUBLE_EQ(ResourceVector::CosineSimilarity(ResourceVector(), a), 0.0);
  EXPECT_DOUBLE_EQ(ResourceVector::CosineSimilarity(a, ResourceVector()), 0.0);
  EXPECT_DOUBLE_EQ(
      ResourceVector::CosineSimilarity(ResourceVector(), ResourceVector()), 0.0);
}

TEST(ResourceVectorTest, CosineSimilarityDegenerateMagnitudes) {
  // Components so small their squares underflow: the norm collapses to
  // exactly 0 and the denominator guard must return 0, not divide.
  const ResourceVector vanishing = ResourceVector::Uniform(1e-200);
  EXPECT_EQ(vanishing.Norm(), 0.0);
  EXPECT_DOUBLE_EQ(ResourceVector::CosineSimilarity(vanishing, vanishing), 0.0);

  // The smallest magnitudes whose squares survive as subnormals: the result
  // must stay finite (the guard is on the na*nb PRODUCT -- the exact
  // denominator expression the structure-of-arrays placement scan uses, so
  // the two paths agree bit-for-bit on when a vector is degenerate).
  const ResourceVector tiny = ResourceVector::Uniform(3e-162);
  ASSERT_GT(tiny.Norm(), 0.0);
  const double similarity = ResourceVector::CosineSimilarity(tiny, tiny);
  EXPECT_TRUE(std::isfinite(similarity));
  EXPECT_GE(similarity, 0.0);
}

TEST(ResourceVectorTest, UniformHelper) {
  const ResourceVector u = ResourceVector::Uniform(2.5);
  for (const ResourceKind kind : kAllResources) {
    EXPECT_DOUBLE_EQ(u[kind], 2.5);
  }
}

TEST(ResourceVectorTest, ToStringContainsAllDims) {
  const std::string s = ResourceVector(4.0, 16384.0, 100.0, 1000.0).ToString();
  EXPECT_NE(s.find("cpu=4"), std::string::npos);
  EXPECT_NE(s.find("16384"), std::string::npos);
}

TEST(ResourceKindTest, Names) {
  EXPECT_STREQ(ResourceKindName(ResourceKind::kCpu), "cpu");
  EXPECT_STREQ(ResourceKindName(ResourceKind::kMemory), "memory");
  EXPECT_STREQ(ResourceKindName(ResourceKind::kDiskBw), "disk_bw");
  EXPECT_STREQ(ResourceKindName(ResourceKind::kNetBw), "net_bw");
}

}  // namespace
}  // namespace defl
