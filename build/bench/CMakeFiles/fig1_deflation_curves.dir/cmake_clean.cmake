file(REMOVE_RECURSE
  "CMakeFiles/fig1_deflation_curves.dir/fig1_deflation_curves.cc.o"
  "CMakeFiles/fig1_deflation_curves.dir/fig1_deflation_curves.cc.o.d"
  "fig1_deflation_curves"
  "fig1_deflation_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_deflation_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
