#include "src/cluster/placement.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

namespace defl {
namespace {

std::unique_ptr<Vm> MakeVm(VmId id, double cpus, double mem_mb,
                           VmPriority priority = VmPriority::kLow) {
  VmSpec spec;
  spec.name = "vm" + std::to_string(id);
  spec.size = ResourceVector(cpus, mem_mb);
  spec.priority = priority;
  return std::make_unique<Vm>(id, spec);
}

class PlacementFixture : public ::testing::Test {
 protected:
  PlacementFixture() : rng_(7) {
    for (int i = 0; i < 4; ++i) {
      servers_.push_back(std::make_unique<Server>(i, ResourceVector(16.0, 65536.0)));
    }
  }

  std::vector<Server*> Servers() {
    std::vector<Server*> out;
    for (auto& s : servers_) {
      out.push_back(s.get());
    }
    return out;
  }

  std::vector<std::unique_ptr<Server>> servers_;
  Rng rng_;
};

TEST_F(PlacementFixture, FirstFitPicksLowestIndexFeasible) {
  servers_[0]->AddVm(MakeVm(1, 16.0, 65536.0, VmPriority::kHigh));  // full, rigid
  const Result<size_t> placed = PlaceVm(ResourceVector(4.0, 16384.0), Servers(),
                                        PlacementPolicy::kFirstFit, rng_);
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(placed.value(), 1u);
}

TEST_F(PlacementFixture, BestFitPrefersMatchingShape) {
  // Server 0: lots of CPU, little memory. Server 1: balanced.
  servers_[0]->AddVm(MakeVm(1, 0.5, 49152.0, VmPriority::kHigh));
  // Demand is memory-heavy: best-fit should avoid server 0 whose
  // availability is CPU-skewed.
  const ResourceVector demand(2.0, 32768.0);
  const Result<size_t> placed =
      PlaceVm(demand, Servers(), PlacementPolicy::kBestFit, rng_);
  ASSERT_TRUE(placed.ok());
  const double fit0 = PlacementFitness(demand, servers_[0]->Availability());
  const double fit_chosen =
      PlacementFitness(demand, servers_[placed.value()]->Availability());
  EXPECT_GE(fit_chosen, fit0);
}

TEST_F(PlacementFixture, DeflatableResourcesCountTowardAvailability) {
  for (auto& s : servers_) {
    s->AddVm(MakeVm(100 + s->id(), 16.0, 65536.0, VmPriority::kLow));  // full
  }
  const Result<size_t> with = PlaceVm(ResourceVector(8.0, 32768.0), Servers(),
                                      PlacementPolicy::kFirstFit, rng_,
                                      AvailabilityMode::kFreePlusDeflatable);
  EXPECT_TRUE(with.ok());
  const Result<size_t> without = PlaceVm(ResourceVector(8.0, 32768.0), Servers(),
                                         PlacementPolicy::kFirstFit, rng_,
                                         AvailabilityMode::kFreeOnly);
  EXPECT_FALSE(without.ok());
}

TEST_F(PlacementFixture, NoFeasibleServerIsAnError) {
  for (auto& s : servers_) {
    s->AddVm(MakeVm(100 + s->id(), 16.0, 65536.0, VmPriority::kHigh));
  }
  for (const PlacementPolicy policy :
       {PlacementPolicy::kBestFit, PlacementPolicy::kFirstFit,
        PlacementPolicy::kTwoChoices}) {
    const Result<size_t> placed =
        PlaceVm(ResourceVector(1.0, 1024.0), Servers(), policy, rng_);
    EXPECT_FALSE(placed.ok()) << PlacementPolicyName(policy);
  }
}

TEST_F(PlacementFixture, TwoChoicesReturnsFeasibleServer) {
  servers_[0]->AddVm(MakeVm(1, 16.0, 65536.0, VmPriority::kHigh));
  servers_[2]->AddVm(MakeVm(2, 16.0, 65536.0, VmPriority::kHigh));
  for (int i = 0; i < 50; ++i) {
    const Result<size_t> placed = PlaceVm(ResourceVector(8.0, 32768.0), Servers(),
                                          PlacementPolicy::kTwoChoices, rng_);
    ASSERT_TRUE(placed.ok());
    EXPECT_TRUE(placed.value() == 1 || placed.value() == 3);
  }
}

TEST_F(PlacementFixture, TwoChoicesPrefersFitterOfTwo) {
  // With all servers feasible, repeated placement should never pick a
  // clearly worse server... statistically: run many trials and check that
  // the fitter servers win more often than uniform.
  servers_[0]->AddVm(MakeVm(1, 14.0, 8192.0, VmPriority::kHigh));  // poor fit
  const ResourceVector demand(2.0, 8192.0);
  int chose_zero = 0;
  for (int i = 0; i < 200; ++i) {
    const Result<size_t> placed =
        PlaceVm(demand, Servers(), PlacementPolicy::kTwoChoices, rng_);
    ASSERT_TRUE(placed.ok());
    if (placed.value() == 0) {
      ++chose_zero;
    }
  }
  // Uniform over 4 servers would give ~50/200; preferring fitness cuts the
  // poor server's share well below its "either slot" probability.
  EXPECT_LT(chose_zero, 30);
}

TEST(PlacementTwoChoicesTest, ProbesAreDistinct) {
  // With exactly two servers, distinct sampling means every attempt probes
  // both, so the fitter feasible server always wins. Sampling with
  // replacement (the old bug) would draw a == b about half the time and
  // return whichever server that was, fitter or not.
  std::vector<std::unique_ptr<Server>> owned;
  owned.push_back(std::make_unique<Server>(0, ResourceVector(16.0, 65536.0)));
  owned.push_back(std::make_unique<Server>(1, ResourceVector(16.0, 65536.0)));
  // Server 0's availability is badly CPU-skewed for a memory-heavy demand.
  VmSpec spec;
  spec.name = "skew";
  spec.size = ResourceVector(1.0, 57344.0);
  spec.priority = VmPriority::kHigh;
  owned[0]->AddVm(std::make_unique<Vm>(100, spec));
  const std::vector<Server*> servers = {owned[0].get(), owned[1].get()};
  const ResourceVector demand(2.0, 8192.0);
  const double fit0 = PlacementFitness(demand, servers[0]->Availability());
  const double fit1 = PlacementFitness(demand, servers[1]->Availability());
  ASSERT_NE(fit0, fit1);
  const size_t fitter = fit0 >= fit1 ? 0u : 1u;
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed);
    const Result<size_t> placed =
        PlaceVm(demand, servers, PlacementPolicy::kTwoChoices, rng);
    ASSERT_TRUE(placed.ok());
    EXPECT_EQ(placed.value(), fitter) << "seed " << seed;
  }
}

TEST(PlacementTwoChoicesTest, SingleServerStillPlaces) {
  std::unique_ptr<Server> server =
      std::make_unique<Server>(0, ResourceVector(16.0, 65536.0));
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const Result<size_t> placed = PlaceVm(ResourceVector(2.0, 8192.0), {server.get()},
                                          PlacementPolicy::kTwoChoices, rng);
    ASSERT_TRUE(placed.ok());
    EXPECT_EQ(placed.value(), 0u);
  }
}

TEST(PlacementFitnessTest, AlignedVectorsScoreHighest) {
  const ResourceVector demand(4.0, 16384.0);
  EXPECT_GT(PlacementFitness(demand, ResourceVector(8.0, 32768.0)),
            PlacementFitness(demand, ResourceVector(32.0, 8192.0)));
  EXPECT_DOUBLE_EQ(PlacementFitness(demand, ResourceVector()), 0.0);
}

TEST(PlacementFitnessTest, DegenerateVectorsScoreZeroNotNan) {
  // Zero (or norm-product-underflowing) demand/availability must be defined
  // as fitness 0, never NaN: a NaN would poison the best-fit max and make
  // the scalar and SoA scans disagree on the winner.
  const ResourceVector tiny = ResourceVector::Uniform(1e-200);
  EXPECT_DOUBLE_EQ(PlacementFitness(ResourceVector(), ResourceVector()), 0.0);
  EXPECT_DOUBLE_EQ(PlacementFitness(tiny, tiny), 0.0);
  EXPECT_DOUBLE_EQ(PlacementFitness(tiny, ResourceVector(8.0, 32768.0)), 0.0);
  EXPECT_FALSE(std::isnan(PlacementFitness(ResourceVector(), tiny)));
}

TEST_F(PlacementFixture, FleetScanMatchesObjectScanOnDegenerateDemand) {
  // A zero demand is feasible everywhere with fitness 0 on every server;
  // both paths must fall back to the same lowest-index tie-break.
  servers_[0]->AddVm(MakeVm(1, 16.0, 65536.0, VmPriority::kHigh));  // full, rigid
  FleetView fleet;
  fleet.Bind(servers_);
  const std::vector<uint32_t> rows = {0, 1, 2, 3};
  const ResourceVector demand;  // zero
  for (const PlacementPolicy policy :
       {PlacementPolicy::kBestFit, PlacementPolicy::kFirstFit}) {
    Rng object_rng(3);
    Rng fleet_rng(3);
    const Result<size_t> object_pick = PlaceVm(demand, Servers(), policy, object_rng);
    const Result<size_t> fleet_pick =
        PlaceVmFleet(demand, fleet, rows, policy, fleet_rng);
    ASSERT_TRUE(object_pick.ok());
    ASSERT_TRUE(fleet_pick.ok());
    EXPECT_EQ(object_pick.value(), fleet_pick.value());
  }
}

TEST(PlacementPolicyTest, Names) {
  EXPECT_STREQ(PlacementPolicyName(PlacementPolicy::kBestFit), "best-fit");
  EXPECT_STREQ(PlacementPolicyName(PlacementPolicy::kFirstFit), "first-fit");
  EXPECT_STREQ(PlacementPolicyName(PlacementPolicy::kTwoChoices), "2-choices");
}

TEST(PlacementEdgeTest, EmptyServerListIsAnError) {
  Rng rng(1);
  EXPECT_FALSE(PlaceVm(ResourceVector(1.0, 1.0), {}, PlacementPolicy::kBestFit, rng).ok());
}

TEST(PlacementAvailabilityTest, PreemptibleModeCountsWholeLowPriorityVms) {
  Server server(1, ResourceVector(16.0, 65536.0));
  VmSpec spec;
  spec.name = "low";
  spec.size = ResourceVector(12.0, 49152.0);
  spec.priority = VmPriority::kLow;
  spec.min_size = spec.size * 0.75;  // barely deflatable
  server.AddVm(std::make_unique<Vm>(1, spec));
  const ResourceVector deflatable =
      ServerAvailability(server, AvailabilityMode::kFreePlusDeflatable);
  const ResourceVector preemptible =
      ServerAvailability(server, AvailabilityMode::kFreePlusPreemptible);
  EXPECT_DOUBLE_EQ(deflatable.cpu(), 4.0 + 3.0);
  EXPECT_DOUBLE_EQ(preemptible.cpu(), 4.0 + 12.0);
  EXPECT_DOUBLE_EQ(ServerAvailability(server, AvailabilityMode::kFreeOnly).cpu(), 4.0);
}

}  // namespace
}  // namespace defl
