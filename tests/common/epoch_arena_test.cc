#include "src/common/epoch_arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

namespace defl {
namespace {

TEST(EpochArenaTest, AllocationsAreDistinctAndWritable) {
  EpochArena arena;
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(16);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate pointer before reset";
    std::memset(p, 0xAB, 16);
  }
  EXPECT_GE(arena.epoch_bytes(), 1600u);
}

TEST(EpochArenaTest, ZeroSizedAllocationsStayDistinct) {
  EpochArena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, b);
}

TEST(EpochArenaTest, RespectsAlignment) {
  EpochArena arena;
  arena.Allocate(1, 1);  // skew the cursor
  for (const size_t align : {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{16}}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << "align " << align;
    arena.Allocate(1, 1);  // re-skew between checks
  }
}

TEST(EpochArenaTest, ResetRecyclesBlocksWithZeroSteadyStateOsAllocations) {
  EpochArena arena(/*block_bytes=*/1024);
  // Epoch 0 sizes the pool: force several blocks.
  for (int i = 0; i < 10; ++i) {
    arena.Allocate(512);
  }
  arena.ResetEpoch();
  const int64_t baseline = arena.os_allocations();
  EXPECT_GT(baseline, 0);
  EXPECT_GT(arena.free_blocks(), 0u);
  // Steady state: identical epochs must never go back to the OS.
  for (int epoch = 0; epoch < 50; ++epoch) {
    for (int i = 0; i < 10; ++i) {
      arena.Allocate(512);
    }
    arena.ResetEpoch();
  }
  EXPECT_EQ(arena.os_allocations(), baseline);
  EXPECT_EQ(arena.epochs(), 51);
  EXPECT_EQ(arena.epoch_bytes(), 0u);
}

TEST(EpochArenaTest, OversizedAllocationFallsBackToDedicatedBlock) {
  EpochArena arena(/*block_bytes=*/256);
  void* small = arena.Allocate(64);
  ASSERT_NE(small, nullptr);
  void* big = arena.Allocate(4096);  // > block size
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, 4096);
  EXPECT_EQ(arena.oversized_allocations(), 1);
  // The bump region continues after the oversized block without losing data.
  void* next = arena.Allocate(64);
  ASSERT_NE(next, nullptr);
  arena.ResetEpoch();
  // Oversized blocks are released, not pooled: a fresh oversized request
  // must go back to the OS while normal blocks recycle.
  const int64_t os_before = arena.os_allocations();
  arena.Allocate(64);
  EXPECT_EQ(arena.os_allocations(), os_before);  // recycled pooled block
  arena.Allocate(4096);
  EXPECT_EQ(arena.os_allocations(), os_before + 1);
  EXPECT_EQ(arena.oversized_allocations(), 2);
}

TEST(EpochArenaTest, TypedNewConstructsInPlace) {
  struct Pod {
    int a;
    double b;
  };
  EpochArena arena;
  Pod* pod = arena.New<Pod>(Pod{7, 2.5});
  EXPECT_EQ(pod->a, 7);
  EXPECT_DOUBLE_EQ(pod->b, 2.5);
  int* xs = arena.NewArray<int>(128);
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(xs[i], 0);
    xs[i] = i;
  }
  EXPECT_EQ(xs[127], 127);
}

TEST(ShardScratchTest, RetireKeepsCapacityAndEmptiesBuffers) {
  ShardScratch<int> scratch;
  scratch.EnsureShards(4);
  ASSERT_EQ(scratch.shards(), 4u);
  for (size_t s = 0; s < 4; ++s) {
    for (int i = 0; i < 100; ++i) {
      scratch.shard(s).push_back(static_cast<int>(s) * 1000 + i);
    }
  }
  std::vector<size_t> capacities;
  for (size_t s = 0; s < 4; ++s) {
    capacities.push_back(scratch.shard(s).capacity());
  }
  scratch.Retire();
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(scratch.shard(s).empty());
    EXPECT_EQ(scratch.shard(s).capacity(), capacities[s]) << "shard " << s;
  }
}

TEST(ShardScratchTest, RetireReclaimOrderingAcrossPhases) {
  // Models the coordinator protocol: fill (workers) -> fold (coordinator,
  // canonical shard order) -> retire. A second phase must observe only its
  // own writes, never phase-1 residue, and reuse the same heap buffers.
  ShardScratch<int> scratch;
  scratch.EnsureShards(3);
  for (size_t s = 0; s < 3; ++s) {
    scratch.shard(s).push_back(static_cast<int>(s) + 1);
  }
  int fold = 0;
  for (size_t s = 0; s < 3; ++s) {
    for (const int v : scratch.shard(s)) {
      fold = fold * 10 + v;
    }
  }
  EXPECT_EQ(fold, 123);  // canonical shard order
  const int* phase1_data = scratch.shard(0).data();
  scratch.Retire();
  for (size_t s = 0; s < 3; ++s) {
    scratch.shard(s).push_back(static_cast<int>(s) + 7);
  }
  EXPECT_EQ(scratch.shard(0).size(), 1u);
  EXPECT_EQ(scratch.shard(0)[0], 7);
  // Same backing store, no reallocation between phases.
  EXPECT_EQ(scratch.shard(0).data(), phase1_data);
}

TEST(ShardScratchTest, EnsureShardsGrowsButNeverShrinks) {
  ShardScratch<double> scratch;
  scratch.EnsureShards(2);
  scratch.shard(1).push_back(4.0);
  scratch.EnsureShards(5);
  EXPECT_EQ(scratch.shards(), 5u);
  ASSERT_EQ(scratch.shard(1).size(), 1u);
  EXPECT_DOUBLE_EQ(scratch.shard(1)[0], 4.0);
  scratch.EnsureShards(1);  // no-op
  EXPECT_EQ(scratch.shards(), 5u);
}

}  // namespace
}  // namespace defl
