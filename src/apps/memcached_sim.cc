#include "src/apps/memcached_sim.h"

#include <algorithm>

#include "src/apps/lru_cache.h"
#include "src/common/rng.h"
#include "src/hypervisor/overcommit.h"

namespace defl {

SimulatedMemcachedResult RunSimulatedMemcached(const MemcachedConfig& config,
                                               const EffectiveAllocation& alloc,
                                               int64_t num_requests, uint64_t seed) {
  SimulatedMemcachedResult result;
  if (alloc.guest_memory_mb < config.fill_fraction * config.configured_cache_mb +
                                  config.process_overhead_mb + config.oom_reserve_mb) {
    return result;  // OOM: server not running
  }

  const auto cache_items = static_cast<int64_t>(
      std::min(config.configured_cache_mb,
               config.fill_fraction * config.configured_cache_mb) *
      1024.0 / config.item_kb);
  // Resident item budget after process overhead and blind-paging waste.
  const double waste_mb = BlindPagingWasteMb(alloc.guest_memory_mb,
                                             alloc.resident_memory_mb,
                                             config.hv_paging_efficiency);
  const auto resident_items = static_cast<int64_t>(
      std::max(0.0, alloc.resident_memory_mb - config.process_overhead_mb - waste_mb) *
      1024.0 / config.item_kb);

  // The application cache (LRU over object keys)...
  LruCache<int64_t, char> cache(std::max<int64_t>(cache_items, 1));
  // ...and the kernel's page LRU, tracking which objects are resident.
  const bool overcommitted = alloc.memory_overcommitted();
  LruCache<int64_t, char> resident(std::max<int64_t>(resident_items, 1));

  ZipfDistribution zipf(config.num_keys, config.zipf_s);
  Rng rng(seed);

  // Warmup: populate the cache and the resident set.
  for (int64_t i = 0; i < num_requests; ++i) {
    const int64_t key = zipf.Sample(rng);
    if (!cache.Get(key).has_value()) {
      cache.Put(key, 1);
    }
    if (overcommitted && !resident.Get(key).has_value()) {
      resident.Put(key, 1);
    }
  }
  cache.ResetCounters();

  double busy_us = 0.0;
  for (int64_t i = 0; i < num_requests; ++i) {
    const int64_t key = zipf.Sample(rng);
    busy_us += config.base_service_us;
    if (cache.Get(key).has_value()) {
      ++result.hits;
      if (overcommitted && !resident.Get(key).has_value()) {
        // Page the object in: stall, then it becomes resident (evicting the
        // coldest resident page).
        busy_us += config.swap_in_us;
        ++result.swap_stalls;
        resident.Put(key, 1);
      }
    } else {
      cache.Put(key, 1);
      if (overcommitted) {
        resident.Put(key, 1);  // freshly written object is resident
      }
    }
  }

  result.requests = num_requests;
  result.measured_hit_rate =
      static_cast<double>(result.hits) / static_cast<double>(num_requests);
  result.measured_swap_fraction =
      result.hits > 0
          ? static_cast<double>(result.swap_stalls) / static_cast<double>(result.hits)
          : 0.0;
  // One event-loop worker per visible core, LHP-adjusted like the model.
  const double worker_rate = CappedParallelRate(alloc.visible_cpus, alloc.visible_cpus,
                                                alloc.cpu_capacity, config.costs);
  const double avg_service_us = busy_us / static_cast<double>(num_requests);
  result.measured_kgets =
      worker_rate * 1e6 / avg_service_us * result.measured_hit_rate / 1000.0;
  return result;
}

}  // namespace defl
