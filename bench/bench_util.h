// Shared formatting helpers for the figure-reproduction harnesses. Every
// bench prints a self-describing header, the experimental setup, and one
// row per data point so output can be diffed against EXPERIMENTS.md.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <initializer_list>
#include <string>

namespace defl::bench {

inline void PrintHeader(const std::string& figure, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s -- %s\n", figure.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void PrintNote(const std::string& note) { std::printf("  %s\n", note.c_str()); }

inline void PrintColumns(std::initializer_list<const char*> columns) {
  for (const char* c : columns) {
    std::printf("%16s", c);
  }
  std::printf("\n");
}

inline void PrintCell(double value) { std::printf("%16.3f", value); }
inline void PrintCell(const char* value) { std::printf("%16s", value); }
inline void EndRow() { std::printf("\n"); }

}  // namespace defl::bench

#endif  // BENCH_BENCH_UTIL_H_
