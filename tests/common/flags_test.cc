#include "src/common/flags.h"

#include <gtest/gtest.h>

namespace defl {
namespace {

struct Flags {
  std::string name = "default";
  double ratio = 1.5;
  int64_t count = 10;
  bool verbose = false;
};

FlagParser MakeParser(Flags& f) {
  FlagParser parser("test tool");
  parser.AddString("name", "a name", &f.name);
  parser.AddDouble("ratio", "a ratio", &f.ratio);
  parser.AddInt("count", "a count", &f.count);
  parser.AddBool("verbose", "chatty", &f.verbose);
  return parser;
}

Result<std::vector<std::string>> ParseArgs(FlagParser& parser,
                                     std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"tool"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parser.Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, DefaultsSurviveEmptyArgs) {
  Flags f;
  FlagParser parser = MakeParser(f);
  ASSERT_TRUE(ParseArgs(parser, {}).ok());
  EXPECT_EQ(f.name, "default");
  EXPECT_DOUBLE_EQ(f.ratio, 1.5);
  EXPECT_EQ(f.count, 10);
  EXPECT_FALSE(f.verbose);
}

TEST(FlagsTest, EqualsAndSpaceSyntax) {
  Flags f;
  FlagParser parser = MakeParser(f);
  ASSERT_TRUE(ParseArgs(parser, {"--name=alice", "--ratio", "2.25", "--count=42"}).ok());
  EXPECT_EQ(f.name, "alice");
  EXPECT_DOUBLE_EQ(f.ratio, 2.25);
  EXPECT_EQ(f.count, 42);
}

TEST(FlagsTest, BoolForms) {
  Flags f;
  FlagParser parser = MakeParser(f);
  ASSERT_TRUE(ParseArgs(parser, {"--verbose"}).ok());
  EXPECT_TRUE(f.verbose);
  ASSERT_TRUE(ParseArgs(parser, {"--verbose=false"}).ok());
  EXPECT_FALSE(f.verbose);
  ASSERT_TRUE(ParseArgs(parser, {"--verbose=1"}).ok());
  EXPECT_TRUE(f.verbose);
}

TEST(FlagsTest, PositionalArgumentsReturned) {
  Flags f;
  FlagParser parser = MakeParser(f);
  const auto result = ParseArgs(parser, {"input.csv", "--count=3", "output.csv"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), (std::vector<std::string>{"input.csv", "output.csv"}));
}

TEST(FlagsTest, Errors) {
  Flags f;
  FlagParser parser = MakeParser(f);
  EXPECT_FALSE(ParseArgs(parser, {"--nope=1"}).ok());
  EXPECT_FALSE(ParseArgs(parser, {"--ratio=abc"}).ok());
  EXPECT_FALSE(ParseArgs(parser, {"--count=1.5"}).ok());
  EXPECT_FALSE(ParseArgs(parser, {"--verbose=maybe"}).ok());
  EXPECT_FALSE(ParseArgs(parser, {"--name"}).ok());  // missing value
}

TEST(FlagsTest, DuplicateFlagRejected) {
  Flags f;
  FlagParser parser = MakeParser(f);
  const auto result = ParseArgs(parser, {"--count=3", "--count=4"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("--count"), std::string::npos) << result.error();
  EXPECT_NE(result.error().find("more than once"), std::string::npos)
      << result.error();
  // Mixed =/space syntax and underscore/dash spellings are still duplicates.
  EXPECT_FALSE(ParseArgs(parser, {"--ratio", "2.0", "--ratio=3.0"}).ok());
}

TEST(FlagsTest, DuplicateDetectionResetsBetweenParses) {
  Flags f;
  FlagParser parser = MakeParser(f);
  ASSERT_TRUE(ParseArgs(parser, {"--count=3"}).ok());
  // A second Parse on the same parser sees a fresh slate.
  ASSERT_TRUE(ParseArgs(parser, {"--count=5"}).ok());
  EXPECT_EQ(f.count, 5);
}

TEST(FlagsTest, UnknownFlagSuggestsNearestName) {
  Flags f;
  FlagParser parser = MakeParser(f);
  const auto result = ParseArgs(parser, {"--ratoi=2.0"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("unknown flag --ratoi"), std::string::npos)
      << result.error();
  EXPECT_NE(result.error().find("did you mean --ratio?"), std::string::npos)
      << result.error();
}

TEST(FlagsTest, UnknownFlagWithNoCloseMatchGetsNoSuggestion) {
  Flags f;
  FlagParser parser = MakeParser(f);
  const auto result = ParseArgs(parser, {"--zzzzzzzz=1"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("unknown flag --zzzzzzzz"), std::string::npos)
      << result.error();
  EXPECT_EQ(result.error().find("did you mean"), std::string::npos)
      << result.error();
}

TEST(FlagsTest, WasSetDistinguishesExplicitFromDefault) {
  Flags f;
  FlagParser parser = MakeParser(f);
  EXPECT_FALSE(parser.WasSet("ratio"));  // false before Parse()
  // Setting a flag to its default value still counts as explicitly set.
  ASSERT_TRUE(ParseArgs(parser, {"--ratio=1.5", "--count", "7"}).ok());
  EXPECT_TRUE(parser.WasSet("ratio"));
  EXPECT_TRUE(parser.WasSet("count"));
  EXPECT_FALSE(parser.WasSet("name"));
  EXPECT_FALSE(parser.WasSet("verbose"));
  EXPECT_FALSE(parser.WasSet("no-such-flag"));
  Flags g;
  FlagParser other = MakeParser(g);
  ASSERT_TRUE(ParseArgs(other, {"--name=x"}).ok());
  EXPECT_TRUE(other.WasSet("name"));
}

TEST(FlagsTest, HelpYieldsUsage) {
  Flags f;
  FlagParser parser = MakeParser(f);
  const auto result = ParseArgs(parser, {"--help"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("test tool"), std::string::npos);
  EXPECT_NE(result.error().find("--ratio"), std::string::npos);
  EXPECT_NE(result.error().find("default: 10"), std::string::npos);
}

}  // namespace
}  // namespace defl
