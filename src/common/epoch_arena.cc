#include "src/common/epoch_arena.h"

#include <cassert>

#include "src/common/logging.h"

namespace defl {

EpochArena::EpochArena(size_t block_bytes) : block_bytes_(block_bytes) {
  assert(block_bytes_ > 0);
}

EpochArena::~EpochArena() = default;

void* EpochArena::Allocate(size_t size, size_t align) {
  assert(align > 0 && (align & (align - 1)) == 0);
  if (align > alignof(std::max_align_t)) {
    DEFL_LOG(kError) << "EpochArena::Allocate: alignment " << align
                     << " exceeds max_align_t";
    std::abort();
  }
  if (size == 0) {
    size = 1;
  }
  size_t offset = (cursor_ + align - 1) & ~(align - 1);
  if (current_.data == nullptr || offset + size > current_.capacity) {
    StartBlock(size);
    offset = 0;  // fresh blocks are max_align_t-aligned
  }
  unsigned char* p = current_.data.get() + offset;
  epoch_bytes_ += (offset - cursor_) + size;
  cursor_ = offset + size;
  return p;
}

void EpochArena::StartBlock(size_t min_bytes) {
  if (current_.data != nullptr) {
    used_blocks_.push_back(std::move(current_));
  }
  if (min_bytes <= block_bytes_ && !free_blocks_.empty()) {
    current_ = std::move(free_blocks_.back());
    free_blocks_.pop_back();
  } else {
    const size_t capacity = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
    // operator new[] guarantees max_align_t alignment for the block base.
    current_ = Block{std::make_unique<unsigned char[]>(capacity), capacity};
    ++os_allocations_;
    if (capacity > block_bytes_) {
      ++oversized_allocations_;
    }
  }
  cursor_ = 0;
}

void EpochArena::ResetEpoch() {
  if (current_.data != nullptr) {
    used_blocks_.push_back(std::move(current_));
    current_ = Block{};
  }
  for (Block& block : used_blocks_) {
    if (block.capacity == block_bytes_) {
      free_blocks_.push_back(std::move(block));
    }
    // Oversized fallback blocks are dropped: pooling them would pin the
    // worst-case footprint forever.
  }
  used_blocks_.clear();
  cursor_ = 0;
  epoch_bytes_ = 0;
  ++epochs_;
}

}  // namespace defl
