// Extension (paper §8 "Pricing" / §6.3 "revenue"): economics of deflatable
// vs preemptible transient capacity at 1.6x offered load. Runs the trace-
// driven cluster under both management strategies and prices the delivered
// low-priority capacity under the flat-discount and resource-as-a-service
// models, including what customers lose to preemptions.
#include "bench/bench_util.h"
#include "src/cluster/cluster_sim.h"

namespace defl {
namespace {

ClusterSimResult RunStrategy(ReclamationStrategy strategy) {
  ClusterSimConfig config;
  config.num_servers = 40;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 12.0 * 3600.0;
  config.trace.max_lifetime_s = 8.0 * 3600.0;
  config.trace.seed = 31337;
  config.trace =
      WithTargetLoad(config.trace, 1.6, config.num_servers, config.server_capacity);
  config.cluster.strategy = strategy;
  config.reinflate_period_s = 600.0;
  return RunClusterSim(config);
}

void Row(const char* label, const RevenueReport& r) {
  bench::PrintCell(label);
  bench::PrintCell(r.provider_revenue);
  bench::PrintCell(r.customer_cost);
  bench::PrintCell(r.customer_loss);
  bench::PrintCell(r.effective_cost_per_cpu_hour * 1000.0);
  bench::EndRow();
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Extension: pricing",
                     "economics of deflatable vs preemptible capacity (Section 8)");
  bench::PrintNote("40 servers, 12 h, 1.6x offered load; on-demand $0.05/vCPU-h;");
  bench::PrintNote("deflatable discount 65%, preemptible (spot) discount 75%.");

  const PricingModel model;
  const ClusterSimResult deflation = RunStrategy(ReclamationStrategy::kDeflation);
  const ClusterSimResult preemption = RunStrategy(ReclamationStrategy::kPreemptionOnly);

  std::printf("\n  deflation cluster: %.0f effective low-pri CPU-h delivered, "
              "%ld preemptions\n",
              deflation.usage.low_pri_effective_cpu_hours,
              deflation.usage.preemptions);
  std::printf("  preemption cluster: %.0f effective low-pri CPU-h delivered, "
              "%ld preemptions\n\n",
              preemption.usage.low_pri_effective_cpu_hours,
              preemption.usage.preemptions);

  bench::PrintColumns({"model", "revenue$", "cust-cost$", "cust-loss$",
                       "eff-m$/cpu-h"});
  Row("defl-flat", PriceDeflatableFlat(deflation.usage, model));
  Row("defl-raas", PriceDeflatableRaaS(deflation.usage, model));
  Row("spot", PricePreemptible(preemption.usage, model));
  return 0;
}
