file(REMOVE_RECURSE
  "CMakeFiles/deflation_sim.dir/deflation_sim.cc.o"
  "CMakeFiles/deflation_sim.dir/deflation_sim.cc.o.d"
  "deflation_sim"
  "deflation_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deflation_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
