#include "src/cluster/cluster_sim.h"

#include <cassert>

#include "src/cluster/sim_session.h"

namespace defl {

ClusterSimResult RunClusterSim(const ClusterSimConfig& config) {
  Result<SimSession> session = SimSession::Open(config);
  // The batch entry point has no error channel; configs that SimSession
  // rejects (non-positive server count, zero sample period, ...) were
  // undefined behavior here before the session API existed.
  assert(session.ok() && "invalid ClusterSimConfig; use SimSession::Open for errors");
  if (!session.ok()) {
    return ClusterSimResult{};
  }
  return session.value().Finish();
}

ClusterSimResult RunClusterSim(const ClusterSimConfig& config,
                               TelemetryContext* telemetry) {
  ClusterSimConfig with_sink = config;
  with_sink.telemetry = telemetry;
  return RunClusterSim(with_sink);
}

}  // namespace defl
