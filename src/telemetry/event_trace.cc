#include "src/telemetry/event_trace.h"

#include "src/telemetry/json_util.h"

namespace defl {
namespace {

void DumpVector(std::ostream& os, const ResourceVector& v) {
  os << "{\"cpu\": " << JsonNumber(v.cpu()) << ", \"mem_mb\": "
     << JsonNumber(v.memory_mb()) << ", \"disk_bw\": " << JsonNumber(v.disk_bw())
     << ", \"net_bw\": " << JsonNumber(v.net_bw()) << "}";
}

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kCascadeStage:
      return "cascade_stage";
    case TraceEventKind::kDeflation:
      return "deflation";
    case TraceEventKind::kReinflation:
      return "reinflation";
    case TraceEventKind::kPlacement:
      return "placement";
    case TraceEventKind::kRejection:
      return "rejection";
    case TraceEventKind::kVmLaunch:
      return "vm_launch";
    case TraceEventKind::kVmRemove:
      return "vm_remove";
    case TraceEventKind::kVmComplete:
      return "vm_complete";
    case TraceEventKind::kPreemption:
      return "preemption";
    case TraceEventKind::kOvercommitEnter:
      return "overcommit_enter";
    case TraceEventKind::kOvercommitExit:
      return "overcommit_exit";
    case TraceEventKind::kSparkPolicy:
      return "spark_policy";
    case TraceEventKind::kTaskKill:
      return "task_kill";
    case TraceEventKind::kRollback:
      return "rollback";
    case TraceEventKind::kFaultInjected:
      return "fault_injected";
    case TraceEventKind::kAgentTimeout:
      return "agent_timeout";
    case TraceEventKind::kBreakerTrip:
      return "breaker_trip";
    case TraceEventKind::kBreakerReset:
      return "breaker_reset";
    case TraceEventKind::kServerCrash:
      return "server_crash";
    case TraceEventKind::kServerDegrade:
      return "server_degrade";
    case TraceEventKind::kServerRecover:
      return "server_recover";
  }
  return "?";
}

const char* CascadeLayerName(CascadeLayer layer) {
  switch (layer) {
    case CascadeLayer::kNone:
      return "none";
    case CascadeLayer::kApplication:
      return "application";
    case CascadeLayer::kGuestOs:
      return "guest_os";
    case CascadeLayer::kBalloon:
      return "balloon";
    case CascadeLayer::kHypervisor:
      return "hypervisor";
  }
  return "?";
}

int64_t EventTrace::CountKind(TraceEventKind kind) const {
  int64_t n = 0;
  for (const TraceEventRecord& e : events()) {
    if (e.kind == kind) {
      ++n;
    }
  }
  return n;
}

int64_t EventTrace::CountKind(TraceEventKind kind, CascadeLayer layer) const {
  int64_t n = 0;
  for (const TraceEventRecord& e : events()) {
    if (e.kind == kind && e.layer == layer) {
      ++n;
    }
  }
  return n;
}

void EventTrace::DumpJsonl(std::ostream& os) const {
  for (const TraceEventRecord& e : events()) {
    os << "{\"time\": " << JsonNumber(e.time) << ", \"kind\": \""
       << TraceEventKindName(e.kind) << "\", \"layer\": \""
       << CascadeLayerName(e.layer) << "\", \"vm\": " << e.vm
       << ", \"server\": " << e.server << ", \"target\": ";
    DumpVector(os, e.target);
    os << ", \"reclaimed\": ";
    DumpVector(os, e.reclaimed);
    os << ", \"outcome\": " << e.outcome << "}\n";
  }
}

}  // namespace defl
