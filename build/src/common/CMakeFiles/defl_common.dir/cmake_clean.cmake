file(REMOVE_RECURSE
  "CMakeFiles/defl_common.dir/flags.cc.o"
  "CMakeFiles/defl_common.dir/flags.cc.o.d"
  "CMakeFiles/defl_common.dir/logging.cc.o"
  "CMakeFiles/defl_common.dir/logging.cc.o.d"
  "CMakeFiles/defl_common.dir/lru_analytics.cc.o"
  "CMakeFiles/defl_common.dir/lru_analytics.cc.o.d"
  "CMakeFiles/defl_common.dir/rng.cc.o"
  "CMakeFiles/defl_common.dir/rng.cc.o.d"
  "CMakeFiles/defl_common.dir/stats.cc.o"
  "CMakeFiles/defl_common.dir/stats.cc.o.d"
  "libdefl_common.a"
  "libdefl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
