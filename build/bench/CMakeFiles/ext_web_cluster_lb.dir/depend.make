# Empty dependencies file for ext_web_cluster_lb.
# This may be replaced when dependencies are built.
