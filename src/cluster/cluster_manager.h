// Centralized deflation-based cluster manager (Section 5): places VMs with
// deflation-aware bin packing, reclaims resources through the per-server
// local controllers (proportional cascade deflation), preempts only when
// deflation to minimum sizes cannot satisfy demand, and reinflates
// proportionally when resources free up. A preemption-only mode implements
// the baseline used in Figure 8c.
#ifndef SRC_CLUSTER_CLUSTER_MANAGER_H_
#define SRC_CLUSTER_CLUSTER_MANAGER_H_

#include <memory>
#include <vector>

#include "src/cluster/placement.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/core/local_controller.h"
#include "src/hypervisor/server.h"

namespace defl {

enum class ReclamationStrategy {
  kDeflation,       // proportional cascade deflation, preempt below minimums
  kPreemptionOnly,  // the conventional transient-VM baseline
};

struct ClusterConfig {
  PlacementPolicy placement = PlacementPolicy::kBestFit;
  ReclamationStrategy strategy = ReclamationStrategy::kDeflation;
  LocalControllerConfig controller;
  uint64_t seed = 1;
};

// Snapshot view of the registry-backed lifecycle counters. Kept as a struct
// for API compatibility with the pre-telemetry counters; the live values
// reside in the MetricsRegistry under cluster/vms/*.
struct ClusterCounters {
  int64_t launched = 0;
  int64_t launched_low_priority = 0;
  int64_t rejected = 0;
  int64_t preempted = 0;       // low-priority VMs revoked
  int64_t completed = 0;
  int64_t deflation_ops = 0;   // MakeRoom calls that deflated something
};

class ClusterManager {
 public:
  // `telemetry` may be nullptr: the manager then owns a private context so
  // the counters() view always accumulates. Servers and local controllers
  // publish through the same context.
  ClusterManager(int num_servers, const ResourceVector& server_capacity,
                 const ClusterConfig& config, TelemetryContext* telemetry = nullptr);

  // Places and starts the VM, deflating or preempting per the configured
  // strategy. On failure the VM is rejected (returned error) and counted.
  Result<ServerId> LaunchVm(std::unique_ptr<Vm> vm);

  // Normal completion: the VM leaves and its server reinflates.
  void CompleteVm(VmId id);

  Vm* FindVm(VmId id);
  Server* ServerOf(VmId id);
  std::vector<Server*> servers();
  LocalController* controller(ServerId id);

  ClusterCounters counters() const;
  TelemetryContext* telemetry() const { return telemetry_; }
  // Low-priority VMs revoked since the last call (for lifecycle bookkeeping).
  std::vector<VmId> TakePreempted();

  // --- Cluster-level metrics ---
  // Dominant-dimension utilization of backed resources, in [0, 1].
  double Utilization() const;
  // Sum of nominal VM sizes over total capacity (>1 = overcommitted).
  double Overcommitment() const;
  // Per-server nominal overcommitment values (Figure 8d).
  std::vector<double> PerServerOvercommitment() const;

 private:
  // Preemption-only reclamation: revoke low-priority VMs on `server` until
  // `demand` fits; returns false if impossible.
  bool PreemptForDemand(Server& server, const ResourceVector& demand);

  ClusterConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<LocalController>> controllers_;
  std::vector<VmId> preempted_since_take_;

  TelemetryContext* telemetry_ = nullptr;
  std::unique_ptr<TelemetryContext> owned_telemetry_;
  struct {
    CounterHandle launched;
    CounterHandle launched_low_priority;
    CounterHandle rejected;
    CounterHandle preempted;
    CounterHandle completed;
    CounterHandle deflation_ops;
  } metrics_;
};

}  // namespace defl

#endif  // SRC_CLUSTER_CLUSTER_MANAGER_H_
