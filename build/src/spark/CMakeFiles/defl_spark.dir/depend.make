# Empty dependencies file for defl_spark.
# This may be replaced when dependencies are built.
