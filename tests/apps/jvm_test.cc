#include "src/apps/jvm.h"

#include <gtest/gtest.h>

#include "src/apps/deflation_harness.h"

namespace defl {
namespace {

EffectiveAllocation FullAllocation() {
  Vm vm(0, StandardVmSpec());
  return vm.allocation();
}

TEST(JvmModelTest, BaselineResponseTimeReasonable) {
  JvmModel model{JvmConfig{}};
  const double rt = model.ResponseTimeUs(FullAllocation());
  EXPECT_GT(rt, 300.0);
  EXPECT_LT(rt, 1000.0);
}

TEST(JvmModelTest, GcFractionGrowsAsHeapShrinks) {
  JvmModel model{JvmConfig{}};
  const double gc_full = model.GcFraction();
  model.ResizeHeap(model.min_heap_mb());
  EXPECT_GT(model.GcFraction(), gc_full);
  EXPECT_LE(model.GcFraction(), 0.95);
}

TEST(JvmModelTest, HeapResizeClampsToBounds) {
  JvmModel model{JvmConfig{}};
  model.ResizeHeap(1.0);
  EXPECT_DOUBLE_EQ(model.heap_mb(), model.min_heap_mb());
  model.ResizeHeap(1e9);
  EXPECT_DOUBLE_EQ(model.heap_mb(), model.config().configured_heap_mb);
}

TEST(JvmModelTest, AgentFreesHeapMemory) {
  JvmModel model{JvmConfig{}};
  const double before = model.MemoryFootprintMb();
  const ResourceVector freed = model.agent()->SelfDeflate(ResourceVector(0.0, 2048.0));
  EXPECT_NEAR(freed.memory_mb(), 2048.0, 1e-6);
  EXPECT_NEAR(model.MemoryFootprintMb(), before - 2048.0, 1e-6);
}

TEST(JvmModelTest, AgentCannotFreeBelowMinHeap) {
  JvmModel model{JvmConfig{}};
  const ResourceVector freed = model.agent()->SelfDeflate(ResourceVector(0.0, 1e9));
  EXPECT_DOUBLE_EQ(model.heap_mb(), model.min_heap_mb());
  EXPECT_LT(freed.memory_mb(), model.config().configured_heap_mb);
}

TEST(JvmModelTest, ReinflateGrowsHeapBack) {
  JvmModel model{JvmConfig{}};
  model.agent()->SelfDeflate(ResourceVector(0.0, 4096.0));
  model.agent()->OnReinflate(ResourceVector(0.0, 4096.0));
  EXPECT_DOUBLE_EQ(model.heap_mb(), model.config().configured_heap_mb);
}

TEST(JvmModelTest, UnmodifiedSwapsUnderMemoryDeflation) {
  JvmModel model{JvmConfig{}};
  const EffectiveAllocation full = FullAllocation();
  const double rt_full = model.ResponseTimeUs(full);
  const HarnessResult r = DeflateAppVm(model, DeflationMode::kVmLevel,
                                       ResourceVector(0.0, 0.5, 0.0, 0.0),
                                       StandardVmSpec(), /*use_agent=*/false);
  const double rt_deflated = model.ResponseTimeUs(r.alloc);
  EXPECT_GT(rt_deflated, rt_full * 2.0);
}

TEST(JvmModelTest, AppDeflationAvoidsSwapViaGc) {
  // Figure 5d: at combined CPU+memory deflation the deflation-aware JVM
  // (shrink heap, more GC) responds faster than the unmodified one (swap).
  const ResourceVector both(0.5, 0.5, 0.0, 0.0);

  JvmModel unmodified{JvmConfig{}};
  const HarnessResult u = DeflateAppVm(unmodified, DeflationMode::kVmLevel, both,
                                       StandardVmSpec(), /*use_agent=*/false);
  const double rt_unmodified = unmodified.ResponseTimeUs(u.alloc);

  JvmModel aware{JvmConfig{}};
  const HarnessResult a = DeflateAppVm(aware, DeflationMode::kCascade, both);
  const double rt_aware = aware.ResponseTimeUs(a.alloc);

  EXPECT_LT(rt_aware, rt_unmodified);
  EXPECT_GT(aware.GcFraction(), JvmModel{JvmConfig{}}.GcFraction());
}

TEST(JvmModelTest, SaturationCapsResponseTime) {
  JvmConfig config;
  config.injection_rate_per_s = 1e9;  // impossible load
  JvmModel model(config);
  EXPECT_DOUBLE_EQ(model.ResponseTimeUs(FullAllocation()),
                   config.max_response_time_us);
}

TEST(JvmModelTest, OomReportsMaxResponseTime) {
  JvmModel model{JvmConfig{}};
  EffectiveAllocation tiny = FullAllocation();
  tiny.guest_memory_mb = 1000.0;  // cannot hold the JVM
  tiny.resident_memory_mb = 1000.0;
  EXPECT_DOUBLE_EQ(model.ResponseTimeUs(tiny), model.config().max_response_time_us);
}

TEST(JvmModelTest, NormalizedPerformanceInverseOfResponseTime) {
  JvmModel model{JvmConfig{}};
  const EffectiveAllocation full = FullAllocation();
  model.SetBaseline(full);
  EXPECT_NEAR(model.NormalizedPerformance(full), 1.0, 1e-9);
  const HarnessResult r = DeflateAppVm(model, DeflationMode::kVmLevel,
                                       ResourceVector(0.5, 0.5, 0.0, 0.0),
                                       StandardVmSpec(), /*use_agent=*/false);
  EXPECT_LT(model.NormalizedPerformance(r.alloc), 1.0);
  EXPECT_GT(model.NormalizedPerformance(r.alloc), 0.0);
}

}  // namespace
}  // namespace defl
