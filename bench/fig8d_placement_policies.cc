// Figure 8d: distribution of per-server overcommitment under the three
// deflation-aware placement policies (best-fit, first-fit, 2-choices).
// Paper: all policies yield similar overcommitment -- deflation masks the
// differences between online bin-packing heuristics.
#include "bench/bench_util.h"
#include "src/cluster/sim_session.h"
#include "src/common/stats.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

ClusterSimResult RunWithPolicy(PlacementPolicy policy, TelemetryContext* telemetry) {
  ClusterSimConfig config;
  config.num_servers = 50;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 8.0 * 3600.0;
  config.trace.max_lifetime_s = 6.0 * 3600.0;
  config.trace.seed = 77;
  config.trace =
      WithTargetLoad(config.trace, 1.6, config.num_servers, config.server_capacity);
  config.cluster.strategy = ReclamationStrategy::kDeflation;
  config.cluster.placement = policy;
  config.sample_period_s = 300.0;
  config.telemetry = telemetry;
  Result<SimSession> session = SimSession::Open(config);
  return session.value().Finish();
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Figure 8d", "server overcommitment by placement policy");
  bench::PrintNote("50 servers at 1.6x offered load with deflation; distribution of");
  bench::PrintNote("per-server nominal overcommitment across servers and time.");
  bench::PrintColumns({"policy", "p25", "median", "p75", "mean", "preempt-p"});
  for (const PlacementPolicy policy :
       {PlacementPolicy::kBestFit, PlacementPolicy::kFirstFit,
        PlacementPolicy::kTwoChoices}) {
    TelemetryContext telemetry;
    const ClusterSimResult result = RunWithPolicy(policy, &telemetry);
    // The per-server overcommitment distribution comes straight out of the
    // registry series the sampling loop recorded.
    const MetricsRegistry& registry = telemetry.metrics();
    const auto& points =
        registry.series_points(registry.FindSeries("cluster/server_overcommitment"));
    std::vector<double> samples;
    samples.reserve(points.size());
    RunningStats stats;
    for (const MetricsRegistry::TimePoint& point : points) {
      samples.push_back(point.value);
      stats.Add(point.value);
    }
    bench::PrintCell(PlacementPolicyName(policy));
    bench::PrintCell(Percentile(samples, 25.0));
    bench::PrintCell(Percentile(samples, 50.0));
    bench::PrintCell(Percentile(samples, 75.0));
    bench::PrintCell(stats.mean());
    bench::PrintCell(result.preemption_probability);
    bench::EndRow();
  }
  return 0;
}
