#include "src/faults/fault_plan.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace defl {
namespace {

constexpr const char* kHeaderTag = "faultplan/1";

Result<double> ParseNumber(const std::string& value, const std::string& context) {
  double parsed = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size() ||
      !std::isfinite(parsed)) {
    return Error{"bad numeric value in '" + context + "'"};
  }
  return parsed;
}

Result<int64_t> ParseInteger(const std::string& value, const std::string& context) {
  const Result<double> parsed = ParseNumber(value, context);
  if (!parsed.ok()) {
    return Error{parsed.error()};
  }
  if (parsed.value() != std::floor(parsed.value()) ||
      std::abs(parsed.value()) > 9.0e15) {
    return Error{"expected an integer in '" + context + "'"};
  }
  return static_cast<int64_t>(parsed.value());
}

// Splits "key=value"; returns false on malformed tokens.
bool SplitKeyValue(const std::string& token, std::string* key, std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

std::string FormatDouble(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kAgentUnresponsive:
      return "agent-unresponsive";
    case FaultKind::kAgentSlow:
      return "agent-slow";
    case FaultKind::kAgentShortDelivery:
      return "agent-short";
    case FaultKind::kWireDrop:
      return "wire-drop";
    case FaultKind::kWireCorrupt:
      return "wire-corrupt";
    case FaultKind::kUnplugPartial:
      return "unplug-partial";
    case FaultKind::kHvLatencySpike:
      return "hv-latency-spike";
    case FaultKind::kServerDegrade:
      return "server-degrade";
    case FaultKind::kServerCrash:
      return "server-crash";
    case FaultKind::kServerRecover:
      return "server-recover";
  }
  return "?";
}

Result<FaultKind> FaultKindFromName(const std::string& name) {
  for (int i = 0; i < kNumFaultKinds; ++i) {
    const FaultKind kind = static_cast<FaultKind>(i);
    if (name == FaultKindName(kind)) {
      return kind;
    }
  }
  return Error{"unknown fault kind: '" + name + "'"};
}

bool IsServerEventKind(FaultKind kind) {
  return kind == FaultKind::kServerDegrade || kind == FaultKind::kServerCrash ||
         kind == FaultKind::kServerRecover;
}

Result<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string where = "line " + std::to_string(line_no);
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first) || first[0] == '#') {
      continue;  // blank or comment
    }
    if (!saw_header) {
      if (first != kHeaderTag) {
        return Error{where + ": expected '" + kHeaderTag + "' header, got '" +
                     first + "'"};
      }
      saw_header = true;
      std::string token;
      while (tokens >> token) {
        std::string key, value;
        if (!SplitKeyValue(token, &key, &value) || key != "seed") {
          return Error{where + ": bad header token '" + token + "'"};
        }
        const Result<int64_t> seed = ParseInteger(value, token);
        if (!seed.ok()) {
          return Error{where + ": " + seed.error()};
        }
        plan.seed = static_cast<uint64_t>(seed.value());
      }
      continue;
    }
    if (first != "rule") {
      return Error{where + ": expected 'rule', got '" + first + "'"};
    }
    FaultRule rule;
    bool have_kind = false;
    std::string token;
    while (tokens >> token) {
      std::string key, value;
      if (!SplitKeyValue(token, &key, &value)) {
        return Error{where + ": malformed token '" + token + "'"};
      }
      if (key == "kind") {
        const Result<FaultKind> kind = FaultKindFromName(value);
        if (!kind.ok()) {
          return Error{where + ": " + kind.error()};
        }
        rule.kind = kind.value();
        have_kind = true;
      } else if (key == "vm" || key == "server" || key == "max") {
        const Result<int64_t> parsed = ParseInteger(value, token);
        if (!parsed.ok()) {
          return Error{where + ": " + parsed.error()};
        }
        (key == "vm" ? rule.vm : key == "server" ? rule.server : rule.max_count) =
            parsed.value();
      } else if (key == "p" || key == "magnitude" || key == "start" ||
                 key == "end" || key == "at") {
        const Result<double> parsed = ParseNumber(value, token);
        if (!parsed.ok()) {
          return Error{where + ": " + parsed.error()};
        }
        if (key == "p") {
          rule.probability = parsed.value();
        } else if (key == "magnitude") {
          rule.magnitude = parsed.value();
        } else if (key == "start") {
          rule.start_s = parsed.value();
        } else if (key == "end") {
          rule.end_s = parsed.value();
        } else {  // at
          rule.start_s = parsed.value();
          rule.end_s = parsed.value();
        }
      } else {
        return Error{where + ": unknown key '" + key + "'"};
      }
    }
    if (!have_kind) {
      return Error{where + ": rule is missing kind="};
    }
    if (rule.probability < 0.0 || rule.probability > 1.0) {
      return Error{where + ": probability must be in [0, 1]"};
    }
    if (rule.magnitude < 0.0) {
      return Error{where + ": magnitude must be >= 0"};
    }
    if (rule.end_s < rule.start_s) {
      return Error{where + ": end before start"};
    }
    plan.rules.push_back(rule);
  }
  if (!saw_header) {
    return Error{"missing '" + std::string(kHeaderTag) + "' header"};
  }
  return plan;
}

std::string EncodeFaultPlan(const FaultPlan& plan) {
  std::ostringstream os;
  os << kHeaderTag << " seed=" << plan.seed << "\n";
  for (const FaultRule& rule : plan.rules) {
    os << "rule kind=" << FaultKindName(rule.kind) << " vm=" << rule.vm
       << " server=" << rule.server << " p=" << FormatDouble(rule.probability)
       << " magnitude=" << FormatDouble(rule.magnitude)
       << " start=" << FormatDouble(rule.start_s);
    if (rule.end_s < FaultRule::kNoEnd) {
      os << " end=" << FormatDouble(rule.end_s);
    }
    os << " max=" << rule.max_count << "\n";
  }
  return os.str();
}

Result<FaultPlan> LoadFaultPlanFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error{"cannot open fault plan file '" + path + "'"};
  }
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return ParseFaultPlan(text);
}

}  // namespace defl
