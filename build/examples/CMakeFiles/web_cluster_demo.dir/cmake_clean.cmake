file(REMOVE_RECURSE
  "CMakeFiles/web_cluster_demo.dir/web_cluster_demo.cpp.o"
  "CMakeFiles/web_cluster_demo.dir/web_cluster_demo.cpp.o.d"
  "web_cluster_demo"
  "web_cluster_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_cluster_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
