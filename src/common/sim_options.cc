#include "src/common/sim_options.h"

#include <utility>

namespace defl {

SimOptionsParser::SimOptionsParser(std::string program_description)
    : parser_(std::move(program_description)) {
  parser_.AddString("metrics-out", "write the metrics registry to this JSON file",
                    &common_.metrics_out);
  parser_.AddString("trace-out", "write the deflation event trace to this JSONL file",
                    &common_.trace_out);
  parser_.AddString("fault-plan", "inject failures from this fault plan file",
                    &common_.fault_plan);
}

Result<std::vector<std::string>> SimOptionsParser::Parse(int argc,
                                                         const char* const* argv) {
  return parser_.Parse(argc, argv);
}

Result<bool> RejectFlagCombination(const std::string& flag_a, bool a_set,
                                   const std::string& flag_b, bool b_set,
                                   const std::string& reason) {
  if (a_set && b_set) {
    return Error{"--" + flag_a + " and --" + flag_b + " cannot be combined (" +
                 reason + ")"};
  }
  return true;
}

}  // namespace defl
