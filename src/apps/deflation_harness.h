// Single-VM deflation harness: the experimental setup behind Figures 1 and 5
// -- one application in one VM, deflated by a given fraction through a chosen
// reclamation mode, then measured at steady state. Shared by the tests, the
// figure benches and the examples.
#ifndef SRC_APPS_DEFLATION_HARNESS_H_
#define SRC_APPS_DEFLATION_HARNESS_H_

#include "src/apps/app_model.h"
#include "src/core/cascade.h"
#include "src/hypervisor/vm.h"

namespace defl {

// The paper's standard VM: 4 vCPUs, 16 GB, with nominal I/O bandwidth.
VmSpec StandardVmSpec();

struct HarnessResult {
  EffectiveAllocation alloc;
  DeflationOutcome outcome;
  // True if the guest could no longer hold the application (forced unplug).
  bool oom = false;
};

// Creates a fresh VM of `spec`, seeds guest accounting from the app's
// footprint, reclaims `spec * fractions` through `mode`, and returns the
// resulting allocation. When `use_agent` is true and the app has an agent,
// the cascade consults it (only meaningful in kCascade mode). The app's
// internal state (cache size, heap, pool) is mutated by its agent; pass a
// fresh model per data point when sweeping.
HarnessResult DeflateAppVm(AppModel& app, DeflationMode mode,
                           const ResourceVector& fractions,
                           const VmSpec& spec = StandardVmSpec(),
                           bool use_agent = true);

}  // namespace defl

#endif  // SRC_APPS_DEFLATION_HARNESS_H_
