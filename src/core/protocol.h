// Wire protocol between the per-server local deflation controller and the
// in-VM deflation agents. In the paper this is a REST endpoint: "the
// deflation agents listen to deflation requests (in the form of deflation
// vectors) ... and respond with the amount of resources voluntarily
// relinquished" (Section 5). Here the messages are serializable structs with
// a compact text encoding, so agents can run out-of-process and traces can
// be logged/replayed; RemoteAgentProxy adapts a wire transport back to the
// in-process DeflationAgent interface.
#ifndef SRC_CORE_PROTOCOL_H_
#define SRC_CORE_PROTOCOL_H_

#include <functional>
#include <string>

#include "src/common/result.h"
#include "src/core/deflation_agent.h"
#include "src/hypervisor/vm.h"
#include "src/resources/resource_vector.h"

namespace defl {

enum class DeflationMessageKind {
  kDeflateRequest,    // controller -> agent: please free `amount`
  kDeflateResponse,   // agent -> controller: freed `amount`
  kReinflateNotice,   // controller -> agent: `amount` is available again
  kFootprintQuery,    // controller -> agent
  kFootprintReport,   // agent -> controller: memory_mb in amount.memory
};

const char* DeflationMessageKindName(DeflationMessageKind kind);

struct DeflationMessage {
  DeflationMessageKind kind = DeflationMessageKind::kDeflateRequest;
  VmId vm_id = 0;
  // Monotonic per-sender sequence number; responses echo the request's.
  int64_t sequence = 0;
  ResourceVector amount;
};

// Compact single-line encoding:
//   "defl/1 <kind> vm=<id> seq=<n> cpu=<v> mem=<v> disk=<v> net=<v>"
std::string EncodeMessage(const DeflationMessage& message);

// Parses a line produced by EncodeMessage; rejects malformed input, unknown
// kinds, wrong protocol version, and non-numeric fields.
Result<DeflationMessage> DecodeMessage(const std::string& line);

// A transport delivers an encoded request line and returns the encoded
// response line (e.g. an HTTP POST in a real deployment; in tests, a lambda
// wrapping an AgentEndpoint).
using WireTransport = std::function<std::string(const std::string& request_line)>;

// Server side: wraps a real agent behind the wire protocol.
class AgentEndpoint {
 public:
  AgentEndpoint(VmId vm_id, DeflationAgent* agent);

  // Handles one encoded request line; returns the encoded response line.
  // Malformed requests yield an encoded error-free zero response with the
  // request's sequence when parseable, else sequence -1.
  std::string Handle(const std::string& request_line);

 private:
  VmId vm_id_;
  DeflationAgent* agent_;
};

// Client side: a DeflationAgent that forwards every call over a transport.
// This is what the local controller registers when the application's agent
// lives inside the guest.
class RemoteAgentProxy : public DeflationAgent {
 public:
  RemoteAgentProxy(VmId vm_id, WireTransport transport);

  ResourceVector SelfDeflate(const ResourceVector& target) override;
  void OnReinflate(const ResourceVector& added) override;
  double MemoryFootprintMb() const override;

  int64_t messages_sent() const { return sequence_; }

 private:
  VmId vm_id_;
  WireTransport transport_;
  mutable int64_t sequence_ = 0;
};

}  // namespace defl

#endif  // SRC_CORE_PROTOCOL_H_
