# Empty compiler generated dependencies file for defl_hypervisor.
# This may be replaced when dependencies are built.
