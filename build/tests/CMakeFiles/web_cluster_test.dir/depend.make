# Empty dependencies file for web_cluster_test.
# This may be replaced when dependencies are built.
