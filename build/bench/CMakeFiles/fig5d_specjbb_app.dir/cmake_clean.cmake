file(REMOVE_RECURSE
  "CMakeFiles/fig5d_specjbb_app.dir/fig5d_specjbb_app.cc.o"
  "CMakeFiles/fig5d_specjbb_app.dir/fig5d_specjbb_app.cc.o.d"
  "fig5d_specjbb_app"
  "fig5d_specjbb_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5d_specjbb_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
