file(REMOVE_RECURSE
  "CMakeFiles/deflation_harness_test.dir/apps/deflation_harness_test.cc.o"
  "CMakeFiles/deflation_harness_test.dir/apps/deflation_harness_test.cc.o.d"
  "deflation_harness_test"
  "deflation_harness_test.pdb"
  "deflation_harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deflation_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
