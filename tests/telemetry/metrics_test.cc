#include "src/telemetry/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace defl {
namespace {

TEST(MetricsRegistryTest, CounterAddAndRead) {
  MetricsRegistry registry;
  const CounterHandle ops = registry.Counter("cascade/deflate/ops");
  EXPECT_TRUE(ops.valid());
  EXPECT_EQ(registry.counter(ops), 0);
  registry.Add(ops);
  registry.Add(ops, 4);
  EXPECT_EQ(registry.counter(ops), 5);
  EXPECT_EQ(registry.CounterValue("cascade/deflate/ops"), 5);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  const CounterHandle a = registry.Counter("cluster/vms/launched");
  const CounterHandle b = registry.Counter("cluster/vms/launched");
  EXPECT_EQ(a.index, b.index);
  registry.Add(a);
  registry.Add(b);
  // Both handles publish into the same slot -- how per-server controllers
  // share one aggregate metric.
  EXPECT_EQ(registry.counter(a), 2);

  const GaugeHandle g1 = registry.Gauge("cluster/usage/cpu_hours");
  const GaugeHandle g2 = registry.Gauge("cluster/usage/cpu_hours");
  EXPECT_EQ(g1.index, g2.index);
  const DistributionHandle d1 = registry.Distribution("cascade/latency_s");
  const DistributionHandle d2 = registry.Distribution("cascade/latency_s");
  EXPECT_EQ(d1.index, d2.index);
  const SeriesHandle s1 = registry.Series("cluster/utilization");
  const SeriesHandle s2 = registry.Series("cluster/utilization");
  EXPECT_EQ(s1.index, s2.index);
}

TEST(MetricsRegistryTest, InvalidHandlesAreSafeNoOps) {
  MetricsRegistry registry;
  CounterHandle c;  // default: invalid, as held by a detached producer
  GaugeHandle g;
  DistributionHandle d;
  SeriesHandle s;
  EXPECT_FALSE(c.valid());
  registry.Add(c);
  registry.Set(g, 3.0);
  registry.AddTo(g, 1.0);
  registry.Observe(d, 7.0);
  registry.ObserveAt(s, 1.0, 2.0);
  EXPECT_EQ(registry.counter(c), 0);
  EXPECT_DOUBLE_EQ(registry.gauge(g), 0.0);
  EXPECT_EQ(registry.distribution(d).count(), 0);
  EXPECT_TRUE(registry.series_points(s).empty());
  EXPECT_DOUBLE_EQ(registry.SeriesTimeWeightedMean(s, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(registry.SeriesMax(s), 0.0);
}

TEST(MetricsRegistryTest, FindReturnsInvalidForUnknownName) {
  MetricsRegistry registry;
  registry.Counter("a/b/c");
  EXPECT_FALSE(registry.FindCounter("no/such/metric").valid());
  EXPECT_FALSE(registry.FindGauge("a/b/c").valid());  // wrong family
  EXPECT_FALSE(registry.FindDistribution("a/b/c").valid());
  EXPECT_FALSE(registry.FindSeries("a/b/c").valid());
  EXPECT_EQ(registry.CounterValue("no/such/metric"), 0);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("no/such/metric"), 0.0);
}

TEST(MetricsRegistryTest, GaugeSetAndAccumulate) {
  MetricsRegistry registry;
  const GaugeHandle g = registry.Gauge("cluster/usage/vm_hours");
  registry.Set(g, 10.0);
  EXPECT_DOUBLE_EQ(registry.gauge(g), 10.0);
  registry.AddTo(g, 2.5);
  registry.AddTo(g, 2.5);
  EXPECT_DOUBLE_EQ(registry.gauge(g), 15.0);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("cluster/usage/vm_hours"), 15.0);
}

TEST(MetricsRegistryTest, DistributionTracksRunningStats) {
  MetricsRegistry registry;
  const DistributionHandle d = registry.Distribution("cascade/deflate/latency_s");
  for (const double sample : {1.0, 2.0, 3.0, 4.0}) {
    registry.Observe(d, sample);
  }
  const RunningStats& stats = registry.distribution(d);
  EXPECT_EQ(stats.count(), 4);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(MetricsRegistryTest, HistogramBackedDistributionStillObserves) {
  MetricsRegistry registry;
  const DistributionHandle d =
      registry.Distribution("cascade/deflate/latency_s", 0.0, 100.0, 10);
  registry.Observe(d, 5.0);
  registry.Observe(d, 95.0);
  registry.Observe(d, 1000.0);  // clamps into the last bin
  EXPECT_EQ(registry.distribution(d).count(), 3);
  EXPECT_DOUBLE_EQ(registry.distribution(d).max(), 1000.0);
}

TEST(MetricsRegistryTest, SeriesTimeWeightedMeanIsPiecewiseConstant) {
  MetricsRegistry registry;
  const SeriesHandle s = registry.Series("cluster/utilization");
  registry.ObserveAt(s, 0.0, 1.0);
  registry.ObserveAt(s, 10.0, 3.0);
  // 1.0 holds over [0, 10), 3.0 over [10, 20]: mean = (10 + 30) / 20.
  EXPECT_DOUBLE_EQ(registry.SeriesTimeWeightedMean(s, 20.0), 2.0);
  EXPECT_DOUBLE_EQ(registry.SeriesMax(s), 3.0);
  ASSERT_EQ(registry.series_points(s).size(), 2u);
  EXPECT_DOUBLE_EQ(registry.series_points(s)[1].time, 10.0);
  EXPECT_DOUBLE_EQ(registry.series_points(s)[1].value, 3.0);
}

TEST(MetricsRegistryTest, DumpJsonIsDeterministicAndNamed) {
  auto populate = [](MetricsRegistry& registry) {
    registry.Add(registry.Counter("cluster/vms/launched"), 7);
    registry.Set(registry.Gauge("cluster/usage/vm_hours"), 1.25);
    registry.Observe(registry.Distribution("cascade/deflate/latency_s"), 3.5);
    registry.ObserveAt(registry.Series("cluster/utilization"), 60.0, 0.5);
  };
  MetricsRegistry a;
  MetricsRegistry b;
  populate(a);
  populate(b);
  std::ostringstream dump_a;
  std::ostringstream dump_b;
  a.DumpJson(dump_a);
  b.DumpJson(dump_b);
  EXPECT_EQ(dump_a.str(), dump_b.str());
  EXPECT_NE(dump_a.str().find("\"cluster/vms/launched\""), std::string::npos);
  EXPECT_NE(dump_a.str().find("\"cluster/usage/vm_hours\""), std::string::npos);
  EXPECT_NE(dump_a.str().find("\"cascade/deflate/latency_s\""), std::string::npos);
  EXPECT_NE(dump_a.str().find("\"cluster/utilization\""), std::string::npos);
}

}  // namespace
}  // namespace defl
