file(REMOVE_RECURSE
  "CMakeFiles/ext_ablation_split.dir/ext_ablation_split.cc.o"
  "CMakeFiles/ext_ablation_split.dir/ext_ablation_split.cc.o.d"
  "ext_ablation_split"
  "ext_ablation_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ablation_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
