// Analytic LRU cache models under the independent reference model with
// Zipf-distributed popularity.
//
// ZipfHeadFraction (rng.h) gives the *ideal* top-k hit rate, which
// overestimates real LRU noticeably at moderate skew. Che's approximation
// [Che, Tung, Wang 2002] models the actual LRU dynamics via the cache
// characteristic time T_C -- the solution of
//     sum_i (1 - exp(-p_i * T_C)) = C
// with hit rate
//     H = sum_i p_i * (1 - exp(-p_i * T_C)),
// and is known to track real LRU within a percent or two. The sums are
// evaluated with an exact head plus log-bucketed integration of the tail,
// so the functions are cheap even for hundred-million-item universes.
#ifndef SRC_COMMON_LRU_ANALYTICS_H_
#define SRC_COMMON_LRU_ANALYTICS_H_

#include <cstdint>

namespace defl {

// Characteristic time of an LRU cache of `capacity` items over a Zipf(s)
// universe of n items (in units of requests). Returns 0 when capacity <= 0
// and +inf-like large values as capacity -> n.
double CheCharacteristicTime(int64_t n, int64_t capacity, double s);

// LRU hit rate per Che's approximation; in [0, 1]. Exact limits: 0 for an
// empty cache, 1 when the whole universe fits.
double CheLruHitRate(int64_t n, int64_t capacity, double s);

}  // namespace defl

#endif  // SRC_COMMON_LRU_ANALYTICS_H_
