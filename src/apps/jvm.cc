#include "src/apps/jvm.h"

#include <algorithm>
#include <cmath>

namespace defl {

ResourceVector JvmAgent::SelfDeflate(const ResourceVector& target) {
  const double want_mb = target.memory_mb();
  if (want_mb <= 0.0) {
    return ResourceVector::Zero();
  }
  const double before = model_->MemoryFootprintMb();
  model_->ResizeHeap(model_->heap_mb() - want_mb);
  const double freed = before - model_->MemoryFootprintMb();
  return ResourceVector(0.0, std::max(freed, 0.0));
}

void JvmAgent::OnReinflate(const ResourceVector& added) {
  if (added.memory_mb() > 0.0) {
    model_->ResizeHeap(model_->heap_mb() + added.memory_mb());
  }
}

double JvmAgent::MemoryFootprintMb() const { return model_->MemoryFootprintMb(); }

JvmModel::JvmModel(const JvmConfig& config)
    : config_(config), heap_mb_(config.configured_heap_mb), agent_(this) {}

double JvmModel::min_heap_mb() const {
  return config_.live_data_mb * config_.min_headroom_factor;
}

void JvmModel::ResizeHeap(double new_heap_mb) {
  heap_mb_ = std::clamp(new_heap_mb, min_heap_mb(), config_.configured_heap_mb);
}

double JvmModel::MemoryFootprintMb() const { return heap_mb_ + config_.jvm_overhead_mb; }

double JvmModel::GcFraction() const {
  const double headroom = heap_mb_ - config_.live_data_mb;
  if (headroom <= 0.0) {
    return 0.95;  // thrashing collector
  }
  return std::min(0.95, config_.gc_coefficient * config_.live_data_mb / headroom);
}

double JvmModel::SwapStallUs(const EffectiveAllocation& alloc) const {
  if (!alloc.memory_overcommitted()) {
    return 0.0;
  }
  const double waste_mb = BlindPagingWasteMb(
      alloc.guest_memory_mb, alloc.resident_memory_mb, config_.hv_paging_efficiency);
  const double resident_heap_mb = std::max(
      0.0, alloc.resident_memory_mb - config_.jvm_overhead_mb - waste_mb);
  const double p_swap =
      LruSwapHitFraction(heap_mb_, resident_heap_mb, config_.heap_zipf_s);
  return config_.pages_touched_per_request * p_swap * config_.swap_in_us;
}

double JvmModel::ResponseTimeUs(const EffectiveAllocation& alloc) const {
  // OOM: guest memory no longer holds the JVM (forced unplug under the
  // OS-only baseline); report the saturation cap.
  if (alloc.guest_memory_mb < MemoryFootprintMb()) {
    return config_.max_response_time_us;
  }
  // Service time: CPU cost inflated by the GC fraction, plus swap stalls.
  const double gc = GcFraction();
  const double service_us = config_.base_service_us / (1.0 - gc) + SwapStallUs(alloc);
  // Effective parallel capacity of the worker pool.
  const double capacity =
      CappedParallelRate(alloc.visible_cpus, alloc.visible_cpus, alloc.cpu_capacity,
                         config_.costs);
  if (capacity <= 0.0) {
    return config_.max_response_time_us;
  }
  const double utilization =
      config_.injection_rate_per_s * service_us * 1e-6 / capacity;
  if (utilization >= 1.0) {
    return config_.max_response_time_us;  // saturated under fixed IR
  }
  return std::min(config_.max_response_time_us, service_us / (1.0 - utilization));
}

double JvmModel::MaxThroughputPerS(const EffectiveAllocation& alloc) const {
  if (alloc.guest_memory_mb < MemoryFootprintMb()) {
    return 0.0;
  }
  const double service_us =
      config_.base_service_us / (1.0 - GcFraction()) + SwapStallUs(alloc);
  const double capacity =
      CappedParallelRate(alloc.visible_cpus, alloc.visible_cpus, alloc.cpu_capacity,
                         config_.costs);
  return capacity * 1e6 / service_us;
}

void JvmModel::SetBaseline(const EffectiveAllocation& alloc) {
  baseline_rt_us_ = ResponseTimeUs(alloc);
}

double JvmModel::NormalizedPerformance(const EffectiveAllocation& alloc) const {
  if (baseline_rt_us_ <= 0.0) {
    return 0.0;
  }
  // Performance is inverse response time, normalized to the baseline.
  return baseline_rt_us_ / ResponseTimeUs(alloc);
}

}  // namespace defl
