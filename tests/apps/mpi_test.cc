#include "src/apps/mpi.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/cascade.h"

namespace defl {
namespace {

std::unique_ptr<Vm> MakeVm(VmId id) {
  VmSpec spec;
  spec.name = "mpi-" + std::to_string(id);
  spec.size = ResourceVector(4.0, 16384.0, 100.0, 1000.0);
  spec.priority = VmPriority::kLow;
  return std::make_unique<Vm>(id, spec);
}

class MpiFixture : public ::testing::Test {
 protected:
  MpiFixture() : job_(MpiJobConfig{}) {
    for (int i = 0; i < 4; ++i) {
      vms_.push_back(MakeVm(i));
      vms_.back()->guest_os().set_app_used_mb(job_.config().footprint_mb_per_vm);
    }
  }

  std::vector<const Vm*> VmPtrs() const {
    std::vector<const Vm*> out;
    for (const auto& vm : vms_) {
      out.push_back(vm.get());
    }
    return out;
  }

  MpiJob job_;
  std::vector<std::unique_ptr<Vm>> vms_;
};

TEST_F(MpiFixture, UndeflatedRunsAtFullSpeed) {
  EXPECT_DOUBLE_EQ(job_.JobSpeed(VmPtrs()), 1.0);
}

TEST_F(MpiFixture, AgentIsInelastic) {
  EXPECT_TRUE(job_.agent()->SelfDeflate(ResourceVector(4.0, 8192.0)).IsZero());
  EXPECT_DOUBLE_EQ(job_.agent()->MemoryFootprintMb(),
                   job_.config().footprint_mb_per_vm);
}

TEST_F(MpiFixture, GangRunsAtSlowestVm) {
  CascadeController cascade(DeflationMode::kVmLevel);
  cascade.Deflate(*vms_[0], job_.agent(), vms_[0]->size() * 0.5);
  const double one_deflated = job_.JobSpeed(VmPtrs());
  // The whole gang slows to the single deflated VM's pace.
  EXPECT_NEAR(one_deflated, job_.VmRankSpeed(*vms_[0]), 1e-12);
  EXPECT_LT(one_deflated, 0.7);
}

TEST_F(MpiFixture, ProportionalDeflationBeatsSkewedAtEqualReclamation) {
  // The Section 5 policy rationale, quantified: reclaiming the same total
  // amount of resources hurts a gang job far less when spread evenly
  // (18.75% from each of 4 VMs) than when taken from a single victim (75%).
  CascadeController cascade(DeflationMode::kVmLevel);

  // Skewed: one VM gives up 3 of its 4 CPUs-worth.
  cascade.Deflate(*vms_[0], nullptr, vms_[0]->size() * 0.75);
  const double skewed_speed = job_.JobSpeed(VmPtrs());
  cascade.Reinflate(*vms_[0], nullptr, vms_[0]->size() - vms_[0]->effective());

  // Proportional: every VM gives up 18.75%.
  for (auto& vm : vms_) {
    cascade.Deflate(*vm, nullptr, vm->size() * 0.1875);
  }
  const double proportional_speed = job_.JobSpeed(VmPtrs());

  EXPECT_GT(proportional_speed, skewed_speed * 1.5);
}

TEST_F(MpiFixture, OomKillsTheJob) {
  // Forced unplug below the footprint on a single VM: rank death = job death.
  CascadeController cascade(DeflationMode::kOsOnly);
  cascade.Deflate(*vms_[2], nullptr, ResourceVector(0.0, 12000.0));
  EXPECT_DOUBLE_EQ(job_.JobSpeed(VmPtrs()), 0.0);
}

TEST_F(MpiFixture, ReinflationRestoresFullSpeed) {
  CascadeController cascade(DeflationMode::kVmLevel);
  for (auto& vm : vms_) {
    cascade.Deflate(*vm, nullptr, vm->size() * 0.5);
  }
  ASSERT_LT(job_.JobSpeed(VmPtrs()), 1.0);
  for (auto& vm : vms_) {
    cascade.Reinflate(*vm, nullptr, vm->size() - vm->effective());
  }
  EXPECT_DOUBLE_EQ(job_.JobSpeed(VmPtrs()), 1.0);
}

TEST_F(MpiFixture, MemoryOvercommitmentSlowsRanks) {
  CascadeController cascade(DeflationMode::kHypervisorOnly);
  cascade.Deflate(*vms_[1], nullptr, ResourceVector(0.0, 10000.0));
  const double speed = job_.VmRankSpeed(*vms_[1]);
  EXPECT_LT(speed, 1.0);
  EXPECT_GT(speed, 0.0);
}

}  // namespace
}  // namespace defl
