#include "src/core/protocol.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace defl {
namespace {

constexpr const char* kProtocolTag = "defl/1";

const char* KindToken(DeflationMessageKind kind) {
  switch (kind) {
    case DeflationMessageKind::kDeflateRequest:
      return "deflate-req";
    case DeflationMessageKind::kDeflateResponse:
      return "deflate-resp";
    case DeflationMessageKind::kReinflateNotice:
      return "reinflate";
    case DeflationMessageKind::kFootprintQuery:
      return "footprint-query";
    case DeflationMessageKind::kFootprintReport:
      return "footprint-report";
  }
  return "?";
}

Result<DeflationMessageKind> KindFromToken(const std::string& token) {
  for (const DeflationMessageKind kind :
       {DeflationMessageKind::kDeflateRequest, DeflationMessageKind::kDeflateResponse,
        DeflationMessageKind::kReinflateNotice, DeflationMessageKind::kFootprintQuery,
        DeflationMessageKind::kFootprintReport}) {
    if (token == KindToken(kind)) {
      return kind;
    }
  }
  return Error{"unknown message kind: " + token};
}

// Parses "key=value" and checks the key.
Result<double> ParseField(const std::string& token, const char* key) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || token.substr(0, eq) != key) {
    return Error{"expected field '" + std::string(key) + "', got '" + token + "'"};
  }
  const std::string value = token.substr(eq + 1);
  double parsed = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    return Error{"bad numeric value in '" + token + "'"};
  }
  // from_chars accepts "inf"/"nan" spellings; a non-finite amount would
  // poison every downstream resource computation.
  if (!std::isfinite(parsed)) {
    return Error{"non-finite value in '" + token + "'"};
  }
  return parsed;
}

}  // namespace

const char* DeflationMessageKindName(DeflationMessageKind kind) {
  return KindToken(kind);
}

std::string EncodeMessage(const DeflationMessage& message) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%s %s vm=%lld seq=%lld cpu=%.6g mem=%.6g disk=%.6g net=%.6g",
                kProtocolTag, KindToken(message.kind),
                static_cast<long long>(message.vm_id),
                static_cast<long long>(message.sequence), message.amount.cpu(),
                message.amount.memory_mb(), message.amount.disk_bw(),
                message.amount.net_bw());
  return buffer;
}

Result<DeflationMessage> DecodeMessage(const std::string& line) {
  // EncodeMessage emits at most 256 bytes; anything much longer is not ours
  // and is rejected before tokenization touches it.
  if (line.size() > 512) {
    return Error{"oversized message line (" + std::to_string(line.size()) + " bytes)"};
  }
  std::istringstream in(line);
  std::string tag;
  std::string kind_token;
  in >> tag >> kind_token;
  if (tag != kProtocolTag) {
    return Error{"bad protocol tag: '" + tag + "'"};
  }
  const Result<DeflationMessageKind> kind = KindFromToken(kind_token);
  if (!kind.ok()) {
    return Error{kind.error()};
  }

  DeflationMessage message;
  message.kind = kind.value();

  std::string token;
  const char* keys[] = {"vm", "seq", "cpu", "mem", "disk", "net"};
  double values[6] = {};
  for (int i = 0; i < 6; ++i) {
    if (!(in >> token)) {
      return Error{std::string("missing field '") + keys[i] + "'"};
    }
    const Result<double> parsed = ParseField(token, keys[i]);
    if (!parsed.ok()) {
      return Error{parsed.error()};
    }
    values[i] = parsed.value();
  }
  if (in >> token) {
    return Error{"trailing garbage: '" + token + "'"};
  }
  // vm and seq are identifiers: fractional or magnitude-overflowing values
  // mean the field was corrupted, not that a huge id exists.
  for (int i = 0; i < 2; ++i) {
    if (values[i] != std::floor(values[i]) || std::abs(values[i]) > 9.0e15) {
      return Error{std::string("non-integral id field '") + keys[i] + "'"};
    }
  }
  message.vm_id = static_cast<VmId>(values[0]);
  message.sequence = static_cast<int64_t>(values[1]);
  message.amount = ResourceVector(values[2], values[3], values[4], values[5]);
  return message;
}

AgentEndpoint::AgentEndpoint(VmId vm_id, DeflationAgent* agent)
    : vm_id_(vm_id), agent_(agent) {}

std::string AgentEndpoint::Handle(const std::string& request_line) {
  const Result<DeflationMessage> parsed = DecodeMessage(request_line);
  DeflationMessage response;
  response.vm_id = vm_id_;
  if (!parsed.ok()) {
    response.kind = DeflationMessageKind::kDeflateResponse;
    response.sequence = -1;
    return EncodeMessage(response);
  }
  const DeflationMessage& request = parsed.value();
  response.sequence = request.sequence;
  switch (request.kind) {
    case DeflationMessageKind::kDeflateRequest:
      response.kind = DeflationMessageKind::kDeflateResponse;
      response.amount = agent_->SelfDeflate(request.amount);
      break;
    case DeflationMessageKind::kReinflateNotice:
      agent_->OnReinflate(request.amount);
      response.kind = DeflationMessageKind::kFootprintReport;
      response.amount = ResourceVector(0.0, agent_->MemoryFootprintMb());
      break;
    case DeflationMessageKind::kFootprintQuery:
      response.kind = DeflationMessageKind::kFootprintReport;
      response.amount = ResourceVector(0.0, agent_->MemoryFootprintMb());
      break;
    case DeflationMessageKind::kDeflateResponse:
    case DeflationMessageKind::kFootprintReport:
      // Not valid as requests; reply with an empty response.
      response.kind = DeflationMessageKind::kDeflateResponse;
      response.sequence = -1;
      break;
  }
  return EncodeMessage(response);
}

RemoteAgentProxy::RemoteAgentProxy(VmId vm_id, WireTransport transport)
    : vm_id_(vm_id), transport_(std::move(transport)) {}

ResourceVector RemoteAgentProxy::SelfDeflate(const ResourceVector& target) {
  DeflationMessage request;
  request.kind = DeflationMessageKind::kDeflateRequest;
  request.vm_id = vm_id_;
  request.sequence = ++sequence_;
  request.amount = target;
  const Result<DeflationMessage> reply = DecodeMessage(transport_(EncodeMessage(request)));
  if (!reply.ok() || reply.value().sequence != request.sequence ||
      reply.value().kind != DeflationMessageKind::kDeflateResponse ||
      reply.value().vm_id != vm_id_) {
    // A silent, confused, or cross-wired agent frees nothing; the cascade
    // falls through.
    return ResourceVector::Zero();
  }
  return reply.value().amount.ClampNonNegative();
}

void RemoteAgentProxy::OnReinflate(const ResourceVector& added) {
  DeflationMessage request;
  request.kind = DeflationMessageKind::kReinflateNotice;
  request.vm_id = vm_id_;
  request.sequence = ++sequence_;
  request.amount = added;
  transport_(EncodeMessage(request));
}

double RemoteAgentProxy::MemoryFootprintMb() const {
  DeflationMessage request;
  request.kind = DeflationMessageKind::kFootprintQuery;
  request.vm_id = vm_id_;
  request.sequence = ++sequence_;
  const Result<DeflationMessage> reply = DecodeMessage(transport_(EncodeMessage(request)));
  if (!reply.ok() || reply.value().kind != DeflationMessageKind::kFootprintReport) {
    return 0.0;
  }
  return reply.value().amount.memory_mb();
}

}  // namespace defl
