file(REMOVE_RECURSE
  "CMakeFiles/fig8c_preemption_probability.dir/fig8c_preemption_probability.cc.o"
  "CMakeFiles/fig8c_preemption_probability.dir/fig8c_preemption_probability.cc.o.d"
  "fig8c_preemption_probability"
  "fig8c_preemption_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_preemption_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
