// Micro-benchmarks (google-benchmark) of the controller hot paths: cascade
// deflate/reinflate, proportional MakeRoom, placement over a large cluster,
// the Zipf/LRU analytics, and the Spark engine's per-event cost. Also hosts
// the ablation sweeps called out in DESIGN.md (policy r-estimates,
// proportional vs greedy splits) as parameterized benchmarks.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "src/cluster/placement.h"
#include "src/common/rng.h"
#include "src/core/local_controller.h"
#include "src/sim/simulator.h"
#include "src/spark/experiment.h"
#include "src/telemetry/telemetry.h"

// --- Global allocation accounting -------------------------------------------
// The whole binary's operator new/delete are overridden with counting
// wrappers so the simulator benchmarks can report an allocations-per-event
// counter (the DESIGN.md §14 "0 allocs/event" gate runs off it in CI). The
// counter is relaxed-atomic: benchmarks here are single-threaded and only the
// before/after difference matters.

namespace {
std::atomic<int64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace defl {
namespace {

int64_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

VmSpec BenchVmSpec(int i) {
  VmSpec spec;
  spec.name = "bench-vm-" + std::to_string(i);
  spec.size = ResourceVector(4.0, 16384.0, 100.0, 1000.0);
  spec.priority = VmPriority::kLow;
  spec.min_size = spec.size * 0.1;
  return spec;
}

void BM_CascadeDeflateReinflate(benchmark::State& state) {
  const auto mode = static_cast<DeflationMode>(state.range(0));
  CascadeController controller(mode);
  Vm vm(0, BenchVmSpec(0));
  vm.guest_os().set_app_used_mb(10000.0);
  const ResourceVector target = vm.size() * 0.5;
  for (auto _ : state) {
    const DeflationOutcome outcome = controller.Deflate(vm, nullptr, target);
    benchmark::DoNotOptimize(outcome.latency_seconds);
    controller.Reinflate(vm, nullptr, outcome.TotalReclaimed());
  }
}
BENCHMARK(BM_CascadeDeflateReinflate)
    ->Arg(static_cast<int>(DeflationMode::kHypervisorOnly))
    ->Arg(static_cast<int>(DeflationMode::kVmLevel));

// The same loop with a TelemetryContext attached -- the acceptance gate for
// the telemetry layer is that the trace-disabled variant is indistinguishable
// from the detached baseline above (one null check + one bool branch per
// emit site). Arg: 0 = attached with tracing disabled, 1 = tracing enabled
// (upper bound; counts the O(1) event appends and a per-iteration Clear()).
void BM_CascadeDeflateReinflateTelemetry(benchmark::State& state) {
  const bool trace_enabled = state.range(0) == 1;
  TelemetryContext telemetry;
  telemetry.trace().set_enabled(trace_enabled);
  CascadeController controller(DeflationMode::kVmLevel);
  controller.AttachTelemetry(&telemetry);
  Vm vm(0, BenchVmSpec(0));
  vm.guest_os().set_app_used_mb(10000.0);
  const ResourceVector target = vm.size() * 0.5;
  for (auto _ : state) {
    const DeflationOutcome outcome = controller.Deflate(vm, nullptr, target);
    benchmark::DoNotOptimize(outcome.latency_seconds);
    controller.Reinflate(vm, nullptr, outcome.TotalReclaimed());
    if (trace_enabled) {
      telemetry.trace().Clear();  // keep memory flat over millions of iters
    }
  }
  state.SetLabel(trace_enabled ? "trace on" : "trace off");
}
BENCHMARK(BM_CascadeDeflateReinflateTelemetry)->Arg(0)->Arg(1);

void BM_MakeRoomProportional(benchmark::State& state) {
  const auto num_vms = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Server server(0, ResourceVector(4.0 * num_vms, 16384.0 * num_vms, 1e6, 1e6));
    for (int i = 0; i < num_vms; ++i) {
      server.AddVm(std::make_unique<Vm>(i, BenchVmSpec(i)));
    }
    LocalControllerConfig config;
    config.mode = DeflationMode::kVmLevel;
    LocalController controller(&server, config);
    state.ResumeTiming();
    const ReclaimResult result =
        controller.MakeRoom(ResourceVector(2.0 * num_vms, 8192.0 * num_vms, 0.0, 0.0));
    benchmark::DoNotOptimize(result.success);
  }
}
BENCHMARK(BM_MakeRoomProportional)->Arg(4)->Arg(16)->Arg(64);

void BM_PlacementPolicies(benchmark::State& state) {
  const auto policy = static_cast<PlacementPolicy>(state.range(0));
  std::vector<std::unique_ptr<Server>> servers;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    servers.push_back(
        std::make_unique<Server>(i, ResourceVector(32.0, 262144.0, 1000.0, 10000.0)));
    const int vms = static_cast<int>(rng.UniformInt(0, 5));
    for (int v = 0; v < vms; ++v) {
      servers.back()->AddVm(std::make_unique<Vm>(i * 10 + v, BenchVmSpec(v)));
    }
  }
  std::vector<Server*> raw;
  for (auto& s : servers) {
    raw.push_back(s.get());
  }
  const ResourceVector demand(4.0, 16384.0, 50.0, 500.0);
  for (auto _ : state) {
    const Result<size_t> placed = PlaceVm(demand, raw, policy, rng);
    benchmark::DoNotOptimize(placed.ok());
  }
}
BENCHMARK(BM_PlacementPolicies)
    ->Arg(static_cast<int>(PlacementPolicy::kBestFit))
    ->Arg(static_cast<int>(PlacementPolicy::kFirstFit))
    ->Arg(static_cast<int>(PlacementPolicy::kTwoChoices));

// Placement-scan shootout: the object-graph path (PlaceVm calling per-Server
// accessors through pointers) vs the structure-of-arrays path (PlaceVmFleet
// streaming FleetView columns), best-fit so every probe scans the whole
// fleet. SetItemsProcessed counts servers scanned, so the reported
// items-per-second rate is probes/s and time/iteration divided by the Arg is
// ns/probe. Both paths produce bit-identical winners; only the memory layout
// differs.
struct PlacementScanFixture {
  std::vector<std::unique_ptr<Server>> servers;
  std::vector<Server*> raw;
  std::vector<uint32_t> rows;
  // Declared after servers so it is destroyed first (it detaches itself as
  // each server's observer), mirroring ClusterManager's member order.
  FleetView fleet;

  explicit PlacementScanFixture(int n) {
    Rng rng(5);
    for (int i = 0; i < n; ++i) {
      servers.push_back(std::make_unique<Server>(
          i, ResourceVector(32.0, 262144.0, 1000.0, 10000.0)));
      const int vms = static_cast<int>(rng.UniformInt(0, 5));
      for (int v = 0; v < vms; ++v) {
        servers.back()->AddVm(std::make_unique<Vm>(i * 10 + v, BenchVmSpec(v)));
      }
      raw.push_back(servers.back().get());
      rows.push_back(static_cast<uint32_t>(i));
    }
    fleet.Bind(servers);
    fleet.Refresh();
  }
};

void BM_PlacementScanObjectGraph(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PlacementScanFixture fx(n);
  Rng rng(7);
  const ResourceVector demand(4.0, 16384.0, 50.0, 500.0);
  for (auto _ : state) {
    const Result<size_t> placed =
        PlaceVm(demand, fx.raw, PlacementPolicy::kBestFit, rng);
    benchmark::DoNotOptimize(placed.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PlacementScanObjectGraph)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PlacementScanFleetView(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PlacementScanFixture fx(n);
  Rng rng(7);
  const ResourceVector demand(4.0, 16384.0, 50.0, 500.0);
  for (auto _ : state) {
    const Result<size_t> placed =
        PlaceVmFleet(demand, fx.fleet, fx.rows, PlacementPolicy::kBestFit, rng);
    benchmark::DoNotOptimize(placed.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PlacementScanFleetView)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ZipfHeadFraction(benchmark::State& state) {
  const int64_t n = state.range(0);
  int64_t k = 1;
  for (auto _ : state) {
    k = (k * 7 + 13) % n + 1;
    benchmark::DoNotOptimize(ZipfHeadFraction(n, k, 0.95));
  }
}
BENCHMARK(BM_ZipfHeadFraction)->Arg(1 << 16)->Arg(1 << 24);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(9);
  ZipfDistribution zipf(20'000'000, 0.95);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_SparkEngineSmallJob(benchmark::State& state) {
  const SparkWorkload wl = MakeKmeansWorkload(0.05);
  SparkExperimentConfig config;
  for (auto _ : state) {
    const SparkExperimentResult result = RunSparkExperiment(wl, config);
    benchmark::DoNotOptimize(result.makespan_s);
  }
}
BENCHMARK(BM_SparkEngineSmallJob);

// Ablation: the Spark policy's recomputation estimate -- worst-case r = 1
// vs the synchronous-execution heuristic. Measures decision quality as the
// realized slowdown of the policy's choice for K-means (where r = 1 wrongly
// forces VM-level).
void BM_PolicyAblationRHeuristic(benchmark::State& state) {
  const bool worst_case = state.range(0) == 1;
  const SparkWorkload wl = MakeKmeansWorkload(0.1);
  SparkExperimentConfig config;
  config.deflation_fraction = 0.5;
  for (auto _ : state) {
    // Reproduce the decision the policy would take, then run that mechanism.
    SparkPolicyInputs inputs;
    inputs.progress_c = 0.5;
    inputs.deflation_fractions = std::vector<double>(8, 0.5);
    inputs.r_estimate = worst_case ? 1.0 : 0.05;
    const SparkPolicyDecision decision = DecideSparkDeflation(inputs);
    config.approach = decision.choice == SparkDeflationChoice::kSelfDeflate
                          ? SparkReclamationApproach::kSelfDeflation
                          : SparkReclamationApproach::kVmLevel;
    const SparkExperimentResult result = RunSparkExperiment(wl, config);
    benchmark::DoNotOptimize(result.makespan_s);
  }
  state.SetLabel(worst_case ? "r=1 (worst case)" : "r heuristic");
}
BENCHMARK(BM_PolicyAblationRHeuristic)->Arg(0)->Arg(1);

// --- Simulator event-loop benchmarks (DESIGN.md §14) ------------------------
// Each reports two counters the scale-regression CI job gates on:
//   allocs_per_event  -- heap allocations per scheduled event in steady state
//                        (after a warm-up pass primes every pool/capacity);
//                        must be 0 for the arena-backed event core
//   ns_per_event      -- wall time per event (items_per_second inverse)
// The warm-up runs one full batch before the timed loop so the timed region
// measures recycled slots and stable vector capacities, not first-touch
// growth.

constexpr int kSimBatch = 512;

void BM_SimulatorEventLoop(benchmark::State& state) {
  Simulator sim;
  int64_t sink = 0;
  for (int i = 0; i < kSimBatch; ++i) {
    sim.After(1.0, [&sink] { ++sink; });
  }
  sim.Run();
  int64_t events = 0;
  const int64_t allocs_before = AllocCount();
  for (auto _ : state) {
    for (int i = 0; i < kSimBatch; ++i) {
      sim.After(1.0, [&sink] { ++sink; });
    }
    sim.Run();
    events += kSimBatch;
  }
  const int64_t allocs = AllocCount() - allocs_before;
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(events);
  state.counters["allocs_per_event"] =
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events) : 0.0;
}
BENCHMARK(BM_SimulatorEventLoop);

void BM_SimulatorEveryTick(benchmark::State& state) {
  Simulator sim;
  int64_t sink = 0;
  EventHandle tick = sim.Every(1.0, [&sink] { ++sink; });
  sim.Run(sim.now() + kSimBatch);  // warm-up: primes the queue + slot pools
  int64_t events = 0;
  const int64_t allocs_before = AllocCount();
  for (auto _ : state) {
    sim.Run(sim.now() + kSimBatch);
    events += kSimBatch;
  }
  const int64_t allocs = AllocCount() - allocs_before;
  tick.Cancel();
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(events);
  state.counters["allocs_per_event"] =
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events) : 0.0;
}
BENCHMARK(BM_SimulatorEveryTick);

void BM_SimulatorScheduleCancel(benchmark::State& state) {
  Simulator sim;
  int64_t sink = 0;
  std::vector<EventHandle> handles(kSimBatch);
  for (int i = 0; i < kSimBatch; ++i) {
    handles[static_cast<size_t>(i)] = sim.After(1.0, [&sink] { ++sink; });
  }
  for (EventHandle& h : handles) {
    h.Cancel();
  }
  sim.Run(sim.now() + 1.0);  // warm-up drains the cancelled batch
  int64_t events = 0;
  const int64_t allocs_before = AllocCount();
  for (auto _ : state) {
    for (int i = 0; i < kSimBatch; ++i) {
      handles[static_cast<size_t>(i)] = sim.After(1.0, [&sink] { ++sink; });
    }
    for (EventHandle& h : handles) {
      h.Cancel();
    }
    sim.Run(sim.now() + 1.0);
    events += kSimBatch;
  }
  const int64_t allocs = AllocCount() - allocs_before;
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(events);
  state.counters["allocs_per_event"] =
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events) : 0.0;
}
BENCHMARK(BM_SimulatorScheduleCancel);

}  // namespace
}  // namespace defl

BENCHMARK_MAIN();
