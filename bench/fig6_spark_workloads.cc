// Figure 6: normalized running time of ALS, K-means, CNN and RNN training
// under the four reclamation approaches (cascade policy / self-deflation /
// VM-level / preemption), deflated ~50% into their execution. The paper's
// headline: deflation beats preemption by up to 2x, and the cascade policy
// picks the better mechanism per workload.
#include <vector>

#include "bench/bench_util.h"
#include "src/spark/experiment.h"

namespace defl {
namespace {

struct WorkloadCase {
  SparkWorkload workload;
  std::vector<double> fractions;
};

void RunCase(const WorkloadCase& wc) {
  SparkExperimentConfig config;
  const double baseline = SparkBaselineMakespan(wc.workload, config);
  std::printf("  %s (baseline %.1f s)\n", wc.workload.name.c_str(), baseline);
  bench::PrintColumns({"deflation%", "cascade", "self", "vm-level", "preemption",
                       "policy-choice"});
  for (const double f : wc.fractions) {
    bench::PrintCell(f * 100.0);
    const char* choice = "-";
    for (const SparkReclamationApproach approach :
         {SparkReclamationApproach::kCascadePolicy,
          SparkReclamationApproach::kSelfDeflation, SparkReclamationApproach::kVmLevel,
          SparkReclamationApproach::kPreemption}) {
      SparkExperimentConfig c = config;
      c.approach = approach;
      c.deflation_fraction = f;
      c.deflate_at_progress = 0.5;
      const SparkExperimentResult result = RunSparkExperiment(wc.workload, c);
      bench::PrintCell(result.completed ? result.makespan_s / baseline : -1.0);
      if (approach == SparkReclamationApproach::kCascadePolicy) {
        choice = SparkDeflationChoiceName(result.decision.choice);
      }
    }
    bench::PrintCell(choice);
    bench::EndRow();
  }
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Figure 6", "Spark workloads under deflation vs preemption");
  bench::PrintNote("8 worker VMs (4 vCPU / 16 GB); all workers deflated at ~50% progress.");
  bench::PrintNote("Values are running time normalized to the undisturbed run.");
  const std::vector<WorkloadCase> cases = {
      {MakeAlsWorkload(0.5), {0.25, 0.5}},
      {MakeKmeansWorkload(0.5), {0.25, 0.5}},
      {MakeCnnWorkload(0.5), {0.125, 0.25, 0.5}},
      {MakeRnnWorkload(0.5), {0.125, 0.25, 0.5}},
  };
  for (const WorkloadCase& wc : cases) {
    RunCase(wc);
  }
  return 0;
}
