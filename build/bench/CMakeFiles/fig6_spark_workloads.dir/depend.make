# Empty dependencies file for fig6_spark_workloads.
# This may be replaced when dependencies are built.
