// What-if query model for the capacity-planning service (DESIGN.md §15).
// A query is one line of text -- a kind token followed by key=value fields:
//
//   place count=200 cpu=2 mem=4096 prio=low hours=1
//   fail fraction=0.25 seed=7
//   overcommit target=1.5 cpu=2 mem=4096 limit=5000
//   run hours=6
//   slo p99=80 policy=slo hours=6
//
// Every query executes against a private copy-on-restore child session of
// the service's immutable base snapshot, so answers never interfere. The
// parser is strict and total: unknown kinds or keys, duplicate keys,
// malformed numbers, out-of-range values, and empty scripts all fail with a
// descriptive (line-numbered, for scripts) error -- never a crash.
#ifndef SRC_SERVICE_QUERY_H_
#define SRC_SERVICE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/hypervisor/vm.h"
#include "src/resources/resource_vector.h"

namespace defl {

enum class QueryKind {
  kPlace,       // attempt `count` launches of `shape`; report placed/rejected
  kFail,        // crash floor(fraction * healthy + 0.5) servers (seeded draw)
  kOvercommit,  // admit `shape` VMs until Overcommitment() >= target
  kRun,         // advance the simulation `hours` sim-hours
  kSlo,         // run `hours` under an SLO/mix override; report violation rate
};

const char* QueryKindName(QueryKind kind);

struct WhatIfQuery {
  QueryKind kind = QueryKind::kRun;

  // place: VMs to attempt (count >= 1).
  int64_t count = 0;
  // place/overcommit: VM size (cpu required > 0; mem/disk/net >= 0) and
  // priority (prio=low VMs are fully deflatable, prio=high are firm).
  ResourceVector shape;
  VmPriority priority = VmPriority::kLow;

  // fail: fraction of currently-healthy servers to crash, in [0, 1], and the
  // seed of the private victim-selection RNG (part of the query, so the same
  // query always crashes the same servers).
  double fraction = 0.0;
  uint64_t seed = 1;

  // overcommit: stop once cluster Overcommitment() >= target (> 0), a launch
  // is rejected, or `limit` admissions were attempted (1 <= limit).
  double target = 0.0;
  int64_t limit = 10000;

  // slo: overrides applied to the child session before it runs, each -1 =
  // keep the snapshot's setting. `p99` is the SLO target in milliseconds
  // (> 0); `fraction` re-tags the interactive mix (in [0, 1]; generated
  // traces only -- an explicit trace carries its own tags); `policy` picks
  // the controller (1 = slo-aware, 0 = uniform baseline that only measures);
  // `period` is the controller check period in seconds (> 0). The snapshot
  // need not have interactive serving enabled -- an slo query enables it on
  // its private child.
  double slo_p99_ms = -1.0;
  double mix_fraction = -1.0;
  int slo_policy = -1;
  double slo_period_s = -1.0;

  // All kinds: afterwards advance the simulation this many sim-hours and
  // report preemptions and the deflation distribution. Required (> 0) for
  // `run` and `slo`; optional (>= 0, default 0 = report immediately)
  // elsewhere.
  double hours = 0.0;
};

// Parses one query line. The line must be a single query (no comments).
Result<WhatIfQuery> ParseQuery(const std::string& line);

// Parses a query script: one query per line, blank lines and `#` comments
// skipped. Errors carry the 1-based line number. An effectively empty script
// is an error (a batch of zero queries is always a caller mistake).
Result<std::vector<WhatIfQuery>> ParseQueryScript(const std::string& text);

}  // namespace defl

#endif  // SRC_SERVICE_QUERY_H_
