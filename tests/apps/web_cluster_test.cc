#include "src/apps/web_cluster.h"

#include <gtest/gtest.h>

#include <cmath>

namespace defl {
namespace {

ResourceVector VmSize() { return ResourceVector(4.0, 16384.0, 100.0, 1000.0); }

TEST(WebClusterTest, UndeflatedCapacityScalesWithBackends) {
  WebCluster cluster(4, VmSize());
  // Each backend: 4 cores at 2 ms/request = 2000 rps.
  EXPECT_NEAR(cluster.TotalCapacityRps(), 8000.0, 1.0);
}

TEST(WebClusterTest, EvenLoadBelowCapacityFullyServed) {
  WebCluster cluster(4, VmSize());
  for (const LoadBalancingPolicy policy :
       {LoadBalancingPolicy::kDeflationAware, LoadBalancingPolicy::kEvenSplit}) {
    const WebClusterMetrics m = cluster.Evaluate(4000.0, policy);
    EXPECT_NEAR(m.served_rps, 4000.0, 1e-6) << LoadBalancingPolicyName(policy);
    EXPECT_NEAR(m.dropped_rps, 0.0, 1e-6);
  }
}

TEST(WebClusterTest, DeflationShrinksBackendPoolAndCapacity) {
  WebCluster cluster(4, VmSize());
  const ResourceVector reclaimed =
      cluster.DeflateBackend(0, VmSize() * 0.5);
  EXPECT_GT(reclaimed.cpu(), 0.0);
  EXPECT_LT(cluster.server(0).threads(), cluster.server(1).threads());
  EXPECT_LT(cluster.TotalCapacityRps(), 8000.0);
}

TEST(WebClusterTest, AwareBalancerShiftsTrafficAwayFromDeflatedBackend) {
  WebCluster cluster(4, VmSize());
  cluster.DeflateBackend(0, VmSize() * 0.5);
  // Offered load that the remaining capacity can still serve.
  const double offered = 0.85 * cluster.TotalCapacityRps();

  const WebClusterMetrics aware =
      cluster.Evaluate(offered, LoadBalancingPolicy::kDeflationAware);
  EXPECT_NEAR(aware.dropped_rps, 0.0, 1e-6);
  // Deflated backend gets less traffic but the same utilization.
  for (size_t i = 1; i < aware.backend_utilization.size(); ++i) {
    EXPECT_NEAR(aware.backend_utilization[0], aware.backend_utilization[i], 1e-6);
  }

  const WebClusterMetrics oblivious =
      cluster.Evaluate(offered, LoadBalancingPolicy::kEvenSplit);
  EXPECT_GT(oblivious.dropped_rps, 0.0);  // deflated backend overloads
  EXPECT_GT(aware.served_rps, oblivious.served_rps);
  EXPECT_LT(aware.mean_response_us, oblivious.mean_response_us);
}

TEST(WebClusterTest, ReinflationRestoresCapacity) {
  WebCluster cluster(2, VmSize());
  const double before = cluster.TotalCapacityRps();
  cluster.DeflateBackend(1, VmSize() * 0.5);
  ASSERT_LT(cluster.TotalCapacityRps(), before);
  cluster.ReinflateBackend(1);
  EXPECT_NEAR(cluster.TotalCapacityRps(), before, 1.0);
  EXPECT_EQ(cluster.server(1).threads(), cluster.server(1).config().configured_threads);
}

TEST(WebClusterTest, AllBackendsDeflatedStillServeProportionally) {
  WebCluster cluster(4, VmSize());
  for (int i = 0; i < 4; ++i) {
    cluster.DeflateBackend(i, VmSize() * 0.5);
  }
  const double capacity = cluster.TotalCapacityRps();
  EXPECT_GT(capacity, 3000.0);  // roughly half of 8000
  EXPECT_LT(capacity, 5000.0);
  const WebClusterMetrics m =
      cluster.Evaluate(capacity * 0.9, LoadBalancingPolicy::kDeflationAware);
  EXPECT_NEAR(m.dropped_rps, 0.0, 1e-6);
}

TEST(WebClusterTest, ResponseTimeGrowsWithUtilization) {
  WebCluster cluster(2, VmSize());
  const WebClusterMetrics light =
      cluster.Evaluate(1000.0, LoadBalancingPolicy::kDeflationAware);
  const WebClusterMetrics heavy =
      cluster.Evaluate(3600.0, LoadBalancingPolicy::kDeflationAware);
  EXPECT_GT(heavy.mean_response_us, light.mean_response_us);
}

TEST(WebClusterTest, PolicyNames) {
  EXPECT_STREQ(LoadBalancingPolicyName(LoadBalancingPolicy::kDeflationAware),
               "deflation-aware");
  EXPECT_STREQ(LoadBalancingPolicyName(LoadBalancingPolicy::kEvenSplit), "even-split");
}

TEST(WebLatencyModelTest, InflationIsGracefulBelowKneeAndCliffAbove) {
  WebLatencyParams params;
  EXPECT_DOUBLE_EQ(WebServiceTimeInflation(params, 0.0), 1.0);
  // Below the knee: linear growth, small multipliers (fig5 graceful zone).
  const double at_knee = WebServiceTimeInflation(params, params.knee_fraction);
  EXPECT_NEAR(at_knee, 1.0 + params.graceful_slope * params.knee_fraction,
              1e-12);
  EXPECT_LT(at_knee, 2.0);
  // Past the knee the cliff term dominates.
  const double deep = WebServiceTimeInflation(params, 0.95);
  EXPECT_GT(deep, 5.0);
  // Monotone in d.
  double prev = 0.0;
  for (double d = 0.0; d <= 1.0; d += 0.05) {
    const double inflation = WebServiceTimeInflation(params, d);
    EXPECT_GE(inflation, prev) << "d=" << d;
    prev = inflation;
  }
  // Out-of-range inputs clamp rather than extrapolate.
  EXPECT_DOUBLE_EQ(WebServiceTimeInflation(params, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(WebServiceTimeInflation(params, 2.0),
                   WebServiceTimeInflation(params, 1.0));
}

TEST(WebLatencyModelTest, CapacityShrinksWithDeflation) {
  WebLatencyParams params;
  const double full = WebCapacityRps(params, 8.0, 0.0);
  EXPECT_NEAR(full, 8.0 * 1e6 / params.base_service_us, 1e-9);
  EXPECT_LT(WebCapacityRps(params, 8.0, 0.5), full);
  EXPECT_LT(WebCapacityRps(params, 8.0, 0.9), WebCapacityRps(params, 8.0, 0.5));
  EXPECT_DOUBLE_EQ(WebCapacityRps(params, 0.0, 0.0), 0.0);
}

TEST(WebLatencyModelTest, QuantilesOrderAndGrowWithLoadAndDeflation) {
  WebLatencyParams params;
  const WebLatencyQuantiles light = WebLatencyUnderLoad(params, 8.0, 0.0, 400.0);
  const WebLatencyQuantiles heavy =
      WebLatencyUnderLoad(params, 8.0, 0.0, 3600.0);
  EXPECT_LT(light.p50_ms, light.p99_ms);
  EXPECT_GT(heavy.p99_ms, light.p99_ms);
  EXPECT_GT(heavy.utilization, light.utilization);
  // Same offered load, deeper deflation: worse tail.
  const WebLatencyQuantiles deflated =
      WebLatencyUnderLoad(params, 8.0, 0.6, 400.0);
  EXPECT_GT(deflated.p99_ms, light.p99_ms);
  EXPECT_LT(deflated.capacity_rps, light.capacity_rps);
}

TEST(WebLatencyModelTest, OverloadClampsAndCollapseIsFiniteSentinel) {
  WebLatencyParams params;
  // Offered load far past capacity: utilization clamps, latency is finite.
  const WebLatencyQuantiles overload =
      WebLatencyUnderLoad(params, 2.0, 0.0, 1e9);
  EXPECT_DOUBLE_EQ(overload.utilization, params.max_utilization);
  EXPECT_TRUE(std::isfinite(overload.p99_ms));
  EXPECT_GT(overload.p99_ms, 1.0);
  // Zero effective compute: the hour-scale sentinel, still finite.
  const WebLatencyQuantiles collapsed =
      WebLatencyUnderLoad(params, 0.0, 1.0, 100.0);
  EXPECT_DOUBLE_EQ(collapsed.capacity_rps, 0.0);
  EXPECT_TRUE(std::isfinite(collapsed.p99_ms));
  EXPECT_GT(collapsed.p99_ms, 1e6);  // >1000 s in ms
}

}  // namespace
}  // namespace defl
