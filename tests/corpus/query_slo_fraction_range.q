slo fraction=1.25 hours=1
