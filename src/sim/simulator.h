// Discrete-event simulation kernel. A Simulator owns a virtual clock and a
// priority queue of scheduled events; events are callbacks executed in
// (time, sequence) order so same-time events run in scheduling order,
// which keeps every experiment deterministic.
//
// The event core is allocation-free in steady state (DESIGN.md §14): queue
// entries are 24-byte PODs in a recycled binary heap, and each event's
// callback + cancellation state live together in a pooled, generation-counted
// slot (slab chunks with stable addresses, free-list recycling). Callbacks
// are stored with small-buffer optimization -- captures up to
// InlineCallback::kInlineBytes never touch the heap; larger ones fall back to
// a counted heap allocation. EventHandle carries (pool, slot, generation), so
// cancellation stays O(1) and lazy (the entry is skipped when popped), stale
// handles are immune to slot reuse, and handles remain safe to query after
// the Simulator itself is gone (they share ownership of the slot pool).
//
// The Spark engine, the cluster manager, and the timeline benches all run on
// this kernel; the analytic application models do not need it.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace defl {

// Simulated time in seconds.
using SimTime = double;

namespace internal {

// Aborts with a logged message; out-of-line so this header stays free of the
// logging dependency. Scheduling into the past or with a non-positive period
// is a programming error that must not survive into release binaries
// (misordered events would silently corrupt a deterministic run).
[[noreturn]] void AbortInvalidSchedule(const char* what, double value, double now);

// Small-buffer-optimized owning callback: captures up to kInlineBytes are
// stored in place (no heap traffic on the event hot path); larger captures
// fall back to one heap allocation. Not copyable or movable -- a callback is
// constructed in its pooled slot and destroyed there.
class InlineCallback {
 public:
  static constexpr size_t kInlineBytes = 64;

  InlineCallback() = default;
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { Reset(); }

  template <typename F>
  void Set(F&& fn) {
    assert(invoke_ == nullptr);
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      target_ = new (storage_) Fn(std::forward<F>(fn));
      destroy_ = [](void* self) { static_cast<Fn*>(self)->~Fn(); };
    } else {
      target_ = new Fn(std::forward<F>(fn));
      destroy_ = [](void* self) { delete static_cast<Fn*>(self); };
    }
    invoke_ = [](void* self) { (*static_cast<Fn*>(self))(); };
  }

  void Invoke() { invoke_(target_); }

  void Reset() {
    if (destroy_ != nullptr) {
      destroy_(target_);
      destroy_ = nullptr;
      invoke_ = nullptr;
      target_ = nullptr;
    }
  }

  bool empty() const { return invoke_ == nullptr; }

 private:
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void* target_ = nullptr;
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

// One pooled event: callback, cancellation flag, and (for Every) the
// periodic re-arm state, all in a single intrusive entry. `generation`
// disambiguates slot reuse: a handle issued for generation g is dead once
// the slot is released (generation bumped), so recycled slots can never be
// cancelled through stale handles.
struct EventSlot {
  InlineCallback fn;
  double period = 0.0;  // > 0 -> periodic (Every)
  double first = 0.0;   // first firing time of a periodic slot
  int64_t fires = 0;    // completed periodic firings (drift-free re-arm)
  uint32_t generation = 0;
  uint32_t next_free = 0;
  bool cancelled = false;
};

// Slab of EventSlots: chunked storage (stable addresses across growth) with
// LIFO free-list recycling. After warm-up, Acquire/Release never allocate.
// Shared between the Simulator and its EventHandles so handles stay valid
// independent of the Simulator's lifetime.
class EventSlotPool {
 public:
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  EventSlotPool() = default;
  EventSlotPool(const EventSlotPool&) = delete;
  EventSlotPool& operator=(const EventSlotPool&) = delete;

  uint32_t Acquire() {
    if (free_head_ != kNoSlot) {
      const uint32_t index = free_head_;
      free_head_ = slot(index).next_free;
      return index;
    }
    const uint32_t index = size_;
    if (index % kChunkSlots == 0) {
      chunks_.push_back(std::make_unique<EventSlot[]>(kChunkSlots));
    }
    ++size_;
    return index;
  }

  // Destroys the callback, invalidates outstanding handles, and recycles the
  // slot. Must not be called while the slot's callback is executing.
  void Release(uint32_t index) {
    EventSlot& s = slot(index);
    s.fn.Reset();
    s.period = 0.0;
    s.fires = 0;
    s.cancelled = false;
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = index;
  }

  EventSlot& slot(uint32_t index) {
    return chunks_[index / kChunkSlots][index % kChunkSlots];
  }
  const EventSlot& slot(uint32_t index) const {
    return chunks_[index / kChunkSlots][index % kChunkSlots];
  }

  bool Pending(uint32_t index, uint32_t generation) const {
    const EventSlot& s = slot(index);
    return s.generation == generation && !s.cancelled;
  }

  void Cancel(uint32_t index, uint32_t generation) {
    EventSlot& s = slot(index);
    if (s.generation == generation) {
      s.cancelled = true;
    }
  }

  uint32_t size() const { return size_; }

 private:
  static constexpr uint32_t kChunkSlots = 256;
  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  uint32_t size_ = 0;
  uint32_t free_head_ = kNoSlot;
};

}  // namespace internal

// Handle that allows cancelling a scheduled event. Cancellation is lazy: the
// event stays in the queue but is skipped when popped. Copyable; copies share
// the same slot. Safe to hold past the event's execution and past the
// Simulator's destruction (the handle co-owns the slot pool).
class EventHandle {
 public:
  EventHandle() = default;

  // False if the event already ran or was cancelled, or the handle is empty.
  bool pending() const {
    return pool_ != nullptr && pool_->Pending(slot_, generation_);
  }
  void Cancel() {
    if (pool_ != nullptr) {
      pool_->Cancel(slot_, generation_);
    }
  }

 private:
  friend class Simulator;
  EventHandle(std::shared_ptr<internal::EventSlotPool> pool, uint32_t slot,
              uint32_t generation)
      : pool_(std::move(pool)), slot_(slot), generation_(generation) {}

  std::shared_ptr<internal::EventSlotPool> pool_;
  uint32_t slot_ = internal::EventSlotPool::kNoSlot;
  uint32_t generation_ = 0;
};

class Simulator {
 public:
  Simulator() : slots_(std::make_shared<internal::EventSlotPool>()) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= now; aborts otherwise,
  // in release builds too -- a misordered event would corrupt determinism).
  template <typename F>
  EventHandle At(SimTime when, F&& fn) {
    if (!(when >= now_)) {
      internal::AbortInvalidSchedule("Simulator::At: event time before now", when,
                                     now_);
    }
    return Push(when, std::forward<F>(fn));
  }

  // Schedules `fn` to run `delay` seconds from now (delay >= 0; aborts
  // otherwise, in release builds too).
  template <typename F>
  EventHandle After(SimTime delay, F&& fn) {
    if (!(delay >= 0.0)) {
      internal::AbortInvalidSchedule("Simulator::After: negative delay", delay,
                                     now_);
    }
    return Push(now_ + delay, std::forward<F>(fn));
  }

  // Schedules `fn` every `period` seconds (> 0; aborts otherwise), first
  // firing at now + period, until the returned handle is cancelled or the
  // run limit stops the sim. The k-th firing lands exactly at
  // first + k * period (computed from a fire counter, never accumulated, so
  // long simulations cannot drift off the period grid).
  template <typename F>
  EventHandle Every(SimTime period, F&& fn) {
    if (!(period > 0.0)) {
      internal::AbortInvalidSchedule("Simulator::Every: non-positive period",
                                     period, now_);
    }
    const uint32_t index = slots_->Acquire();
    internal::EventSlot& slot = slots_->slot(index);
    slot.fn.Set(std::forward<F>(fn));
    slot.period = period;
    slot.first = now_ + period;
    slot.fires = 0;
    PushEntry(slot.first, index, slot.generation);
    return EventHandle(slots_, index, slot.generation);
  }

  // Runs until the queue is empty or `until` is reached (events strictly
  // after `until` remain queued; the clock advances to `until`).
  void Run(SimTime until = kNoLimit);

  // Runs exactly one event if any is due; returns false when queue is empty.
  bool Step();

  int64_t events_executed() const { return events_executed_; }

  static constexpr SimTime kNoLimit = -1.0;

 private:
  // 24-byte POD heap entry; the callback lives in the slot pool.
  struct QueueEntry {
    SimTime when;
    int64_t seq;
    uint32_t slot;
    uint32_t generation;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  template <typename F>
  EventHandle Push(SimTime when, F&& fn) {
    const uint32_t index = slots_->Acquire();
    internal::EventSlot& slot = slots_->slot(index);
    slot.fn.Set(std::forward<F>(fn));
    PushEntry(when, index, slot.generation);
    return EventHandle(slots_, index, slot.generation);
  }

  void PushEntry(SimTime when, uint32_t slot, uint32_t generation) {
    queue_.push_back(QueueEntry{when, next_seq_++, slot, generation});
    std::push_heap(queue_.begin(), queue_.end(), Later{});
  }

  SimTime now_ = 0.0;
  int64_t next_seq_ = 0;
  int64_t events_executed_ = 0;
  std::shared_ptr<internal::EventSlotPool> slots_;
  std::vector<QueueEntry> queue_;  // binary heap under Later
};

}  // namespace defl

#endif  // SRC_SIM_SIMULATOR_H_
