#include "src/common/flags.h"

#include <algorithm>
#include <charconv>
#include <set>
#include <sstream>

namespace defl {
namespace {

std::string BoolText(bool b) { return b ? "true" : "false"; }

// Levenshtein distance, for did-you-mean suggestions on unknown flags.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) {
    row[j] = j;
  }
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[b.size()];
}

// Flags are registered dash-style (--metrics-out) but accepted with either
// separator (--metrics_out), gflags-style.
std::string NormalizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '_') {
      c = '-';
    }
  }
  return out;
}

}  // namespace

FlagParser::FlagParser(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagParser::AddString(const std::string& name, const std::string& help,
                           std::string* out) {
  flags_.push_back(Flag{name, help, Kind::kString, out, *out});
}

void FlagParser::AddDouble(const std::string& name, const std::string& help,
                           double* out) {
  flags_.push_back(Flag{name, help, Kind::kDouble, out, std::to_string(*out)});
}

void FlagParser::AddInt(const std::string& name, const std::string& help,
                        int64_t* out) {
  flags_.push_back(Flag{name, help, Kind::kInt, out, std::to_string(*out)});
}

void FlagParser::AddBool(const std::string& name, const std::string& help, bool* out) {
  flags_.push_back(Flag{name, help, Kind::kBool, out, BoolText(*out)});
}

FlagParser::Flag* FlagParser::Find(const std::string& name) {
  const std::string normalized = NormalizeName(name);
  for (Flag& flag : flags_) {
    if (NormalizeName(flag.name) == normalized) {
      return &flag;
    }
  }
  return nullptr;
}

Result<bool> FlagParser::Assign(Flag& flag, const std::string& value) {
  switch (flag.kind) {
    case Kind::kString:
      *static_cast<std::string*>(flag.out) = value;
      return true;
    case Kind::kDouble: {
      double parsed = 0.0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc() || ptr != value.data() + value.size()) {
        return Error{"--" + flag.name + ": bad number '" + value + "'"};
      }
      *static_cast<double*>(flag.out) = parsed;
      return true;
    }
    case Kind::kInt: {
      int64_t parsed = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc() || ptr != value.data() + value.size()) {
        return Error{"--" + flag.name + ": bad integer '" + value + "'"};
      }
      *static_cast<int64_t*>(flag.out) = parsed;
      return true;
    }
    case Kind::kBool:
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.out) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.out) = false;
      } else {
        return Error{"--" + flag.name + ": bad boolean '" + value + "'"};
      }
      return true;
  }
  return Error{"internal: unknown flag kind"};
}

Result<std::vector<std::string>> FlagParser::Parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  std::set<std::string> seen;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Error{Usage()};
    }
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    const size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos ? std::string::npos
                                                                   : eq - 2);
    Flag* flag = Find(name);
    if (flag == nullptr) {
      std::string message = "unknown flag --" + name;
      // Suggest the closest registered name when the typo is plausible
      // (edit distance at most 1/3 of the flag's length, minimum 2).
      size_t best_distance = std::max<size_t>(2, name.size() / 3) + 1;
      const Flag* best = nullptr;
      for (const Flag& candidate : flags_) {
        const size_t d = EditDistance(NormalizeName(name), candidate.name);
        if (d < best_distance) {
          best_distance = d;
          best = &candidate;
        }
      }
      if (best != nullptr) {
        message += " (did you mean --" + best->name + "?)";
      }
      return Error{message + "\n" + Usage()};
    }
    if (!seen.insert(NormalizeName(name)).second) {
      return Error{"--" + flag->name + " specified more than once"};
    }
    std::string value;
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
    } else if (flag->kind == Kind::kBool) {
      value = "true";
    } else {
      if (i + 1 >= argc) {
        return Error{"--" + name + " needs a value"};
      }
      value = argv[++i];
    }
    const Result<bool> assigned = Assign(*flag, value);
    if (!assigned.ok()) {
      return Error{assigned.error()};
    }
    flag->set = true;
  }
  return positional;
}

bool FlagParser::WasSet(const std::string& name) const {
  const std::string normalized = NormalizeName(name);
  for (const Flag& flag : flags_) {
    if (NormalizeName(flag.name) == normalized) {
      return flag.set;
    }
  }
  return false;
}

std::string FlagParser::Usage() const {
  std::ostringstream os;
  os << description_ << "\n\nflags:\n";
  for (const Flag& flag : flags_) {
    os << "  --" << flag.name << "  " << flag.help << " (default: " << flag.default_text
       << ")\n";
  }
  return os.str();
}

}  // namespace defl
