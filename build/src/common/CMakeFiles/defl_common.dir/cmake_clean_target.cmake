file(REMOVE_RECURSE
  "libdefl_common.a"
)
