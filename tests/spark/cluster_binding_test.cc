// End-to-end integration: a Spark job bound to the cluster management plane.
// High-priority VMs arrive on the server through the local controller;
// cascade deflation consults the Spark driver's agents (Section 4.1 policy),
// the job slows, the high-priority VMs leave, reinflation restores it.
#include "src/spark/cluster_binding.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/spark/workload.h"

namespace defl {
namespace {

struct ClusterFixture {
  explicit ClusterFixture(SparkWorkload workload)
      // Exactly the eight workers' nominal size: any high-priority arrival
      // must be funded by deflation.
      : server(0, ResourceVector(32.0, 128.0 * 1024.0, 1600.0, 10000.0)) {
    LocalControllerConfig config;
    config.mode = DeflationMode::kCascade;
    controller = std::make_unique<LocalController>(&server, config);
    std::vector<Vm*> raw;
    for (int i = 0; i < 8; ++i) {
      VmSpec spec;
      spec.name = "spark-" + std::to_string(i);
      spec.size = ResourceVector(4.0, 16384.0, 200.0, 1250.0);
      spec.priority = VmPriority::kLow;
      raw.push_back(server.AddVm(std::make_unique<Vm>(i, spec)));
    }
    engine = std::make_unique<SparkEngine>(&sim, std::move(workload), raw);
    binding = std::make_unique<SparkClusterBinding>(engine.get(), controller.get(), &sim);
  }

  // Launches a high-priority VM through the controller (reclaiming space)
  // and returns it for later completion.
  VmId LaunchHighPriority(VmId id, const ResourceVector& size) {
    const ReclaimResult result = controller->MakeRoom(size);
    EXPECT_TRUE(result.success);
    VmSpec spec;
    spec.name = "hp-" + std::to_string(id);
    spec.size = size;
    spec.priority = VmPriority::kHigh;
    server.AddVm(std::make_unique<Vm>(id, spec));
    binding->SyncAllocations();
    return id;
  }

  void CompleteHighPriority(VmId id) {
    server.RemoveVm(id);
    controller->ReinflateAll();
    binding->SyncAllocations();
  }

  Simulator sim;
  Server server;
  std::unique_ptr<LocalController> controller;
  std::unique_ptr<SparkEngine> engine;
  std::unique_ptr<SparkClusterBinding> binding;
};

TEST(SparkClusterBindingTest, UndisturbedJobRunsAtFullSpeed) {
  ClusterFixture f(MakeKmeansWorkload(0.25));
  const double baseline = [&] {
    ClusterFixture clean(MakeKmeansWorkload(0.25));
    clean.engine->Start();
    clean.sim.Run();
    return clean.engine->finish_time();
  }();
  f.engine->Start();
  f.sim.Run();
  ASSERT_TRUE(f.engine->done());
  EXPECT_DOUBLE_EQ(f.engine->finish_time(), baseline);
}

TEST(SparkClusterBindingTest, HighPriorityArrivalDeflatesThroughDriverPolicy) {
  ClusterFixture f(MakeKmeansWorkload(0.25));
  f.engine->Start();
  // Half the cluster is claimed by high-priority VMs mid-run.
  f.sim.At(6.0, [&] { f.LaunchHighPriority(100, ResourceVector(16.0, 65536.0)); });
  f.sim.Run(100000.0);
  ASSERT_TRUE(f.engine->done());
  // The driver was consulted and (K-means, low r) chose self-deflation.
  EXPECT_EQ(f.binding->self_deflation_rounds(), 1);
  EXPECT_GT(f.engine->tasks_killed(), 0);
  // The demand was actually met from the Spark VMs' resources.
  EXPECT_TRUE(f.server.FindVm(100) != nullptr);
  EXPECT_LE(f.server.Allocated().cpu(), f.server.capacity().cpu() + 1e-6);
}

TEST(SparkClusterBindingTest, SynchronousJobDeclinesSelfDeflation) {
  ClusterFixture f(MakeCnnWorkload(0.2));
  f.engine->Start();
  f.sim.At(20.0, [&] { f.LaunchHighPriority(100, ResourceVector(16.0, 65536.0)); });
  f.sim.Run(100000.0);
  ASSERT_TRUE(f.engine->done());
  EXPECT_EQ(f.binding->vm_level_rounds(), 1);
  EXPECT_EQ(f.binding->self_deflation_rounds(), 0);
  EXPECT_EQ(f.engine->tasks_killed(), 0);   // no kills: VM-level reclamation
  EXPECT_EQ(f.engine->rollbacks(), 0);      // so no model rollbacks either
}

TEST(SparkClusterBindingTest, PressureWindowSlowsThenRecovers) {
  const SparkWorkload wl = MakeCnnWorkload(0.3);
  const double baseline = [&wl] {
    ClusterFixture clean(wl);
    clean.engine->Start();
    clean.sim.Run();
    return clean.engine->finish_time();
  }();

  ClusterFixture f(wl);
  f.engine->Start();
  f.sim.At(10.0, [&] { f.LaunchHighPriority(100, ResourceVector(16.0, 65536.0)); });
  f.sim.At(40.0, [&] { f.CompleteHighPriority(100); });
  f.sim.Run(100000.0);
  ASSERT_TRUE(f.engine->done());
  EXPECT_GT(f.engine->finish_time(), baseline);
  // Bounded damage: 30 s of 50% pressure costs far less than 50% forever.
  EXPECT_LT(f.engine->finish_time(), baseline * 1.5);
  // Reinflation restored the workers.
  for (Vm* vm : f.engine->worker_vms()) {
    EXPECT_NEAR(vm->effective().cpu(), vm->size().cpu(), 1e-6);
  }
}

TEST(SparkClusterBindingTest, RepeatedPressureRoundsAreDecidedIndependently) {
  ClusterFixture f(MakeKmeansWorkload(0.3));
  f.engine->Start();
  f.sim.At(5.0, [&] { f.LaunchHighPriority(100, ResourceVector(8.0, 32768.0)); });
  f.sim.At(15.0, [&] { f.LaunchHighPriority(101, ResourceVector(8.0, 32768.0)); });
  f.sim.Run(100000.0);
  ASSERT_TRUE(f.engine->done());
  EXPECT_EQ(f.binding->self_deflation_rounds() + f.binding->vm_level_rounds(), 2);
}

}  // namespace
}  // namespace defl
