// Shared command-line surface for the simulation tools (deflation_sim,
// spark_sim): one place registers the flags both drivers accept, with one
// help string and one error wording, so `--metrics-out` behaves identically
// everywhere. Tool-specific flags still register on flags() directly; all
// of them inherit FlagParser's strictness (unknown-flag suggestions,
// duplicate-occurrence rejection, typed value errors).
#ifndef SRC_COMMON_SIM_OPTIONS_H_
#define SRC_COMMON_SIM_OPTIONS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/result.h"

namespace defl {

// The flags every simulation tool accepts.
struct SimCommonOptions {
  std::string metrics_out;   // write the metrics registry to this JSON file
  std::string trace_out;     // write the deflation event trace to this JSONL file
  std::string fault_plan;    // inject failures from this fault plan file
};

class SimOptionsParser {
 public:
  // Registers the SimCommonOptions flags up front so they appear first in
  // --help with identical wording in every tool.
  explicit SimOptionsParser(std::string program_description);

  // Register tool-specific flags here before calling Parse().
  FlagParser& flags() { return parser_; }
  const SimCommonOptions& common() const { return common_; }

  // Parses argv; on success returns positional arguments (see
  // FlagParser::Parse for --help and error semantics).
  Result<std::vector<std::string>> Parse(int argc, const char* const* argv);

 private:
  FlagParser parser_;
  SimCommonOptions common_;
};

// Usage error for flags that cannot be combined, with one wording for every
// tool: "--a and --b cannot be combined (<reason>)". Returns ok when at most
// one of the two is set.
Result<bool> RejectFlagCombination(const std::string& flag_a, bool a_set,
                                   const std::string& flag_b, bool b_set,
                                   const std::string& reason);

// ---------------------------------------------------------------------------
// WorkloadSpec: the declarative workload surface of the simulation tools.
//
// What a run simulates -- offered load, trace replay, the diurnal arrival
// model, the interactive-serving mix -- used to be smeared across a dozen
// mutually-exclusive deflation_sim flags. A WorkloadSpec consolidates it:
// one file (`--workload=interactive.workload`), one strict total parser, and
// one validator that owns every pairwise-exclusion rule with line-numbered
// messages. The old flags survive as deprecated aliases that build the same
// spec (provenance line 0), so their errors keep the `--flag` wording.
//
// Grammar (one setting per line, same shape as sweep grids):
//   # interactive-serving scenario
//   load = 1.8
//   duration-h = 24
//   diurnal = on
//   diurnal-period-h = 24
//   interactive = on
//   slo-p99-ms = 80
//   slo-policy = slo
//
// `key = value`, `#` comments, blank lines ignored; unknown keys, duplicate
// keys, and malformed values are line-numbered errors. Booleans accept
// on/off/true/false. The struct is deliberately cluster-agnostic (plain
// scalars, hours not seconds where the flags used hours): the tool layer
// maps it onto ClusterSimConfig.
struct WorkloadSpec {
  double load = 1.6;             // offered CPU load as a fraction of capacity
  double duration_h = 12.0;
  double low_pri_fraction = 0.6;
  uint64_t seed = 42;            // trace RNG seed
  std::string trace_file;        // replay this CSV instead of generating
  std::string fault_plan;        // inject failures from this plan file
  // Diurnal/bursty arrival generator (PR 6); off = flat-rate Poisson.
  bool diurnal = false;
  double diurnal_amplitude = 0.5;
  double diurnal_period_h = 24.0;
  double diurnal_phase_h = 0.0;
  double burst_rate_per_h = 0.0;
  double burst_duration_s = 600.0;
  double burst_multiplier = 2.0;
  uint64_t arrival_seed = 7;
  // Interactive-serving mix + SLO controller (DESIGN.md §16).
  bool interactive = false;
  double interactive_fraction = 0.3;
  uint64_t interactive_seed = 21;
  double slo_p99_ms = 100.0;
  std::string slo_policy = "slo";  // slo | uniform
  double slo_period_s = 60.0;
  double rate_rps_per_cpu = 30.0;
  double rate_amplitude = 0.6;
  double rate_period_h = 24.0;
  // Where each explicitly-set key came from: key -> 1-based source line for
  // spec files, 0 for flag-built specs. Validation words its errors from
  // this ("spec.workload:7: ..." vs "--diurnal-amplitude ...").
  std::map<std::string, int> provenance;

  bool Has(const std::string& key) const { return provenance.count(key) != 0; }
};

// Strict total parser for the spec grammar above. Any malformed line, value,
// unknown key, or duplicate key is a clean `source:line:` error -- never a
// crash or a silently-defaulted setting. Does NOT validate cross-key rules;
// callers run ValidateWorkloadSpec next (tool drivers may set provenance-0
// keys in between).
Result<WorkloadSpec> ParseWorkloadSpec(const std::string& text,
                                       const std::string& source_name);

// Every cross-key rule the tools used to enforce flag-by-flag: pairwise
// exclusions (trace replay vs the arrival generator), gating (arrival knobs
// require `diurnal`, SLO knobs require `interactive`), and range checks.
// Messages cite the offending key's source line for file-built specs and
// the `--flag` spelling for flag-built ones.
Result<bool> ValidateWorkloadSpec(const WorkloadSpec& spec,
                                  const std::string& source_name);

}  // namespace defl

#endif  // SRC_COMMON_SIM_OPTIONS_H_
