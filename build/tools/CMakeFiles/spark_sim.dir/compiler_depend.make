# Empty compiler generated dependencies file for spark_sim.
# This may be replaced when dependencies are built.
