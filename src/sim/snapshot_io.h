// Binary snapshot framing for deterministic checkpoint/restore (DESIGN.md
// §11). A snapshot is a single self-delimiting blob:
//
//   magic "DEFLSNAP" (8 bytes) | format version (u32) | payload ... |
//   FNV-1a-64 footer over everything before it (u64, little-endian)
//
// All integers are little-endian; doubles are serialized as their IEEE-754
// bit pattern, so values round-trip bit-exactly (the whole point: a restored
// run must replay byte-identical telemetry). Strings and vectors carry a
// u64 length prefix. The reader is strict and total: truncated, corrupted,
// or version-skewed inputs produce a Result error naming what went wrong,
// never a crash or a partially-applied state.
#ifndef SRC_SIM_SNAPSHOT_IO_H_
#define SRC_SIM_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace defl {

// FNV-1a 64-bit over a byte range (the same digest the golden suite pins
// tool output with; here it is the snapshot integrity footer).
uint64_t SnapshotFnv1a64(const char* data, size_t size);

inline constexpr char kSnapshotMagic[8] = {'D', 'E', 'F', 'L', 'S', 'N', 'A', 'P'};
// Version history:
//   1 -- initial SimSession format (PR 5).
//   2 -- ClusterSimConfig carries the diurnal/bursty ArrivalGenConfig.
//   3 -- config-generated traces and strictly-future arrivals are elided
//        (length + checksum only); durable-run checkpoints (PR 7).
//   4 -- ClusterSimConfig carries the InteractiveSloConfig workload mix.
inline constexpr uint32_t kSnapshotFormatVersion = 4;

// Append-only typed encoder. Build the payload with the typed writers, then
// Finish() seals the header + footer and returns the full blob.
class SnapshotWriter {
 public:
  SnapshotWriter();

  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  // IEEE-754 bit pattern: bit-exact round-trip.
  void WriteF64(double v);
  void WriteString(const std::string& s);

  // Seals and returns the blob (header + payload + FNV-1a footer). The
  // writer must not be reused afterwards.
  std::string Finish();

 private:
  std::string bytes_;
  bool finished_ = false;
};

// Sequential typed decoder over a sealed blob. Open() verifies the magic,
// the version, and the integrity footer up front, so the typed reads only
// have to guard against logical truncation (reads past the payload).
//
// Ownership comes in two flavours: Open() takes the bytes by value and owns
// them for the reader's lifetime; OpenView() decodes IN PLACE over memory the
// caller keeps alive and never mutates. The view form is what makes restores
// from one shared const blob cheap -- N concurrent readers over the same
// string perform zero copies of it (DESIGN.md §15).
class SnapshotReader {
 public:
  // Validates framing; the reader is positioned at the start of the payload.
  static Result<SnapshotReader> Open(std::string bytes);
  // As Open(), but non-owning: `bytes` must outlive the reader and must not
  // change while any reader views it (readers never write through it).
  static Result<SnapshotReader> OpenView(std::string_view bytes);

  // Moves must rebind the view when the reader owns its storage (the string
  // buffer can live inside the object for small strings).
  SnapshotReader(SnapshotReader&& other) noexcept;
  SnapshotReader& operator=(SnapshotReader&& other) noexcept;
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  // Typed reads. After any failure ok() turns false and every later read
  // returns a zero value; callers check ok()/error() once per section.
  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64() { return static_cast<int64_t>(ReadU64()); }
  bool ReadBool() { return ReadU8() != 0; }
  double ReadF64();
  std::string ReadString();

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  // Manual failure injection point for semantic validation errors, so one
  // error-reporting channel covers framing and content checks alike.
  void Fail(const std::string& message);

  // True when the payload was consumed exactly (trailing bytes are suspect).
  bool AtEnd() const { return pos_ == payload_end_; }
  // Payload bytes not yet consumed; lets callers sanity-bound length
  // prefixes before looping (a crafted count must not drive a huge loop).
  size_t Remaining() const { return payload_end_ - pos_; }

 private:
  SnapshotReader(std::string owned, std::string_view bytes, size_t payload_begin,
                 size_t payload_end);
  bool Need(size_t n);

  // Backing storage when the reader owns the blob (Open); empty for views.
  // `bytes_` always points at the blob being decoded.
  std::string owned_;
  std::string_view bytes_;
  size_t pos_ = 0;
  size_t payload_end_ = 0;
  std::string error_;
};

// File convenience wrappers. WriteSnapshotFile goes through WriteFileAtomic
// (tmp + fsync + rename + parent-dir fsync), so a crash -- even power loss --
// mid-write can never leave a half-written snapshot where a resumable one is
// expected.
Result<bool> WriteSnapshotFile(const std::string& bytes, const std::string& path);
Result<std::string> ReadSnapshotFile(const std::string& path);

}  // namespace defl

#endif  // SRC_SIM_SNAPSHOT_IO_H_
