file(REMOVE_RECURSE
  "libdefl_cluster.a"
)
