#include "src/sim/arrival_gen.h"

#include <algorithm>
#include <cmath>

namespace defl {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// True when t falls inside a burst window. `cursor` advances monotonically
// over the sorted onsets (all windows share one duration, so window ends are
// sorted too): amortized O(1) across an ascending sweep of t.
bool InBurst(const std::vector<double>& burst_onsets, double duration_s, double t,
             size_t* cursor) {
  while (*cursor < burst_onsets.size() &&
         burst_onsets[*cursor] + duration_s <= t) {
    ++(*cursor);
  }
  return *cursor < burst_onsets.size() && burst_onsets[*cursor] <= t;
}

double DiurnalFactor(const ArrivalGenConfig& config, double t) {
  if (config.diurnal_amplitude == 0.0) {
    return 1.0;
  }
  return 1.0 + config.diurnal_amplitude *
                   std::sin(kTwoPi * (t - config.diurnal_phase_s) /
                            config.diurnal_period_s);
}

}  // namespace

std::string ValidateArrivalGen(const ArrivalGenConfig& config) {
  if (config.diurnal_amplitude < 0.0 || config.diurnal_amplitude > 1.0) {
    return "diurnal amplitude must be in [0, 1]";
  }
  if (config.diurnal_period_s <= 0.0) {
    return "diurnal period must be positive";
  }
  if (config.burst_rate_per_s < 0.0) {
    return "burst rate must be non-negative";
  }
  if (config.burst_duration_s < 0.0) {
    return "burst duration must be non-negative";
  }
  if (config.burst_multiplier < 0.0) {
    return "burst multiplier must be non-negative";
  }
  return "";
}

double ArrivalRateAt(const ArrivalGenConfig& config, double base_rate_per_s,
                     double t, const std::vector<double>& burst_onsets) {
  size_t cursor = 0;
  double rate = base_rate_per_s * DiurnalFactor(config, t);
  if (InBurst(burst_onsets, config.burst_duration_s, t, &cursor)) {
    rate *= config.burst_multiplier;
  }
  return rate;
}

std::vector<double> GenerateArrivalTimes(const ArrivalGenConfig& config,
                                         double base_rate_per_s, double duration_s) {
  std::vector<double> out;
  if (base_rate_per_s <= 0.0 || duration_s <= 0.0) {
    return out;
  }
  Rng rng(config.seed);

  // Burst window onsets first, as their own Poisson process, so the thinning
  // draw sequence below is independent of how many windows there are.
  std::vector<double> burst_onsets;
  const bool bursts_active = config.burst_rate_per_s > 0.0 &&
                             config.burst_duration_s > 0.0 &&
                             config.burst_multiplier != 1.0;
  if (bursts_active) {
    double t = rng.Exponential(config.burst_rate_per_s);
    while (t < duration_s) {
      burst_onsets.push_back(t);
      t += rng.Exponential(config.burst_rate_per_s);
    }
  }

  // Thinning ceiling: diurnal peak times the burst boost (bursts below 1
  // only thin harder, so they do not raise the ceiling).
  const double boost = bursts_active ? std::max(config.burst_multiplier, 1.0) : 1.0;
  const double rate_max = base_rate_per_s * (1.0 + config.diurnal_amplitude) * boost;

  out.reserve(static_cast<size_t>(base_rate_per_s * duration_s * 1.1) + 16);
  size_t cursor = 0;
  double t = rng.Exponential(rate_max);
  while (t < duration_s) {
    double rate = base_rate_per_s * DiurnalFactor(config, t);
    if (bursts_active && InBurst(burst_onsets, config.burst_duration_s, t, &cursor)) {
      rate *= config.burst_multiplier;
    }
    // Accept with probability rate / rate_max.
    if (rng.NextDouble() * rate_max < rate) {
      out.push_back(t);
    }
    t += rng.Exponential(rate_max);
  }
  return out;
}

}  // namespace defl
