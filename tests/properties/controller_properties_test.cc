// Property tests of the per-server local controller, swept over VM mixes,
// demands and policies:
//
//   P1  MakeRoom postcondition: on success, demand fits in Free();
//   P2  server conservation: allocated + free == capacity (element-wise);
//   P3  high-priority VMs are never deflated nor preempted;
//   P4  proportionality: equal-size, equal-min VMs are deflated equally;
//   P5  reinflation never exceeds original specs and never overdraws the
//       server.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/common/rng.h"
#include "src/core/local_controller.h"

namespace defl {
namespace {

GuestOs::Params ExactOs() {
  GuestOs::Params p;
  p.kernel_reserve_mb = 0.0;
  p.unplug_efficiency = 1.0;
  p.min_cpus = 0;
  return p;
}

std::unique_ptr<Vm> MakeVm(VmId id, const ResourceVector& size, VmPriority priority,
                           double min_fraction) {
  VmSpec spec;
  spec.name = "vm" + std::to_string(id);
  spec.size = size;
  spec.priority = priority;
  spec.min_size = size * min_fraction;
  return std::make_unique<Vm>(id, spec, ExactOs());
}

void CheckConservation(const Server& server) {
  const ResourceVector total = server.Allocated() + server.Free();
  for (const ResourceKind kind : kAllResources) {
    // Free() clamps at zero, so allocated+free >= capacity in general; when
    // allocation fits, they must match exactly.
    if (server.Allocated()[kind] <= server.capacity()[kind] + 1e-9) {
      EXPECT_NEAR(total[kind], server.capacity()[kind], 1e-6)
          << ResourceKindName(kind);
    }
  }
}

using RoomCase = std::tuple<int /*num low*/, int /*num high*/, double /*demand frac*/,
                            double /*min frac*/>;

class MakeRoomPropertyTest : public ::testing::TestWithParam<RoomCase> {};

TEST_P(MakeRoomPropertyTest, PostconditionsHold) {
  const auto [num_low, num_high, demand_frac, min_frac] = GetParam();
  const ResourceVector vm_size(4.0, 16384.0, 100.0, 1000.0);
  const int total_vms = num_low + num_high;
  Server server(1, vm_size * total_vms);  // exactly full at nominal sizes
  LocalControllerConfig config;
  config.mode = DeflationMode::kVmLevel;
  LocalController controller(&server, config);

  for (int i = 0; i < num_low; ++i) {
    server.AddVm(MakeVm(i, vm_size, VmPriority::kLow, min_frac));
  }
  for (int i = 0; i < num_high; ++i) {
    server.AddVm(MakeVm(100 + i, vm_size, VmPriority::kHigh, 0.0));
  }

  const ResourceVector demand = vm_size * (demand_frac * num_low);
  const ReclaimResult result = controller.MakeRoom(demand);

  // P1: success iff the demand now fits.
  if (result.success) {
    EXPECT_TRUE(demand.AllLeq(server.Free(), 1e-6));
  }
  // P2: conservation.
  CheckConservation(server);
  // P3: high-priority untouched.
  for (int i = 0; i < num_high; ++i) {
    const Vm* vm = server.FindVm(100 + i);
    ASSERT_NE(vm, nullptr) << "high-priority VM preempted";
    EXPECT_EQ(vm->effective(), vm_size);
  }
  // Feasibility: demand <= what low-priority VMs could ever give.
  const double max_yield = (1.0 - min_frac) * num_low;
  if (demand_frac * num_low <= max_yield + 1e-9) {
    EXPECT_TRUE(result.success) << "feasible demand must succeed (possibly with "
                                << result.preempted.size() << " preemptions)";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MakeRoomPropertyTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(0, 2),
                                            ::testing::Values(0.1, 0.4, 0.8),
                                            ::testing::Values(0.0, 0.25, 0.6)));

TEST(ProportionalityPropertyTest, EqualVmsDeflateEqually) {
  const ResourceVector vm_size(4.0, 16384.0, 100.0, 1000.0);
  Server server(1, vm_size * 4);
  LocalControllerConfig config;
  config.mode = DeflationMode::kVmLevel;
  LocalController controller(&server, config);
  for (int i = 0; i < 4; ++i) {
    server.AddVm(MakeVm(i, vm_size, VmPriority::kLow, 0.1));
  }
  ASSERT_TRUE(controller.MakeRoom(vm_size * 2.0).success);
  const ResourceVector first = server.FindVm(0)->effective();
  for (int i = 1; i < 4; ++i) {
    const ResourceVector other = server.FindVm(i)->effective();
    for (const ResourceKind kind : kAllResources) {
      EXPECT_NEAR(other[kind], first[kind], 1e-6)
          << "vm " << i << " " << ResourceKindName(kind);
    }
  }
}

class ControllerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ControllerFuzzTest, RandomMakeRoomReinflateSequences) {
  Rng rng(GetParam());
  const ResourceVector capacity(64.0, 262144.0, 2000.0, 20000.0);
  Server server(1, capacity);
  LocalControllerConfig config;
  config.mode = DeflationMode::kVmLevel;
  LocalController controller(&server, config);

  VmId next_id = 0;
  for (int i = 0; i < 10; ++i) {
    const double cpus = static_cast<double>(rng.UniformInt(1, 8));
    server.AddVm(MakeVm(next_id++, ResourceVector(cpus, cpus * 4096.0, 100.0, 500.0),
                        rng.Chance(0.3) ? VmPriority::kHigh : VmPriority::kLow,
                        rng.Uniform(0.0, 0.4)));
  }

  for (int step = 0; step < 100; ++step) {
    if (rng.Chance(0.6)) {
      const ResourceVector demand(rng.Uniform(0.0, 16.0), rng.Uniform(0.0, 65536.0),
                                  rng.Uniform(0.0, 200.0), rng.Uniform(0.0, 1000.0));
      controller.MakeRoom(demand);
    } else {
      controller.ReinflateAll();
    }
    CheckConservation(server);
    for (const auto& vm : server.vms()) {
      for (const ResourceKind kind : kAllResources) {
        ASSERT_GE(vm->effective()[kind], -1e-9);
        ASSERT_LE(vm->effective()[kind], vm->size()[kind] + 1e-9);
      }
      if (!vm->deflatable()) {
        ASSERT_EQ(vm->effective(), vm->size()) << "high-priority VM was deflated";
      }
    }
    // Allocation never exceeds capacity.
    for (const ResourceKind kind : kAllResources) {
      ASSERT_LE(server.Allocated()[kind], capacity[kind] + 1e-6)
          << "step " << step << " " << ResourceKindName(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerFuzzTest,
                         ::testing::Values(2u, 17u, 271u, 65537u));

}  // namespace
}  // namespace defl
