file(REMOVE_RECURSE
  "libdefl_apps.a"
)
