#include "src/apps/memcached.h"

#include <algorithm>
#include <cmath>

#include "src/common/lru_analytics.h"
#include "src/common/rng.h"

namespace defl {

ResourceVector MemcachedAgent::SelfDeflate(const ResourceVector& target) {
  const double want_mb = target.memory_mb();
  if (want_mb <= 0.0) {
    return ResourceVector::Zero();
  }
  const double before = model_->MemoryFootprintMb();
  const double new_limit =
      std::max(model_->config().min_cache_mb, model_->cache_limit_mb() - want_mb);
  model_->ResizeCache(new_limit);
  const double freed = before - model_->MemoryFootprintMb();
  return ResourceVector(0.0, std::max(freed, 0.0));
}

void MemcachedAgent::OnReinflate(const ResourceVector& added) {
  const double grow_mb = added.memory_mb();
  if (grow_mb <= 0.0) {
    return;
  }
  const double new_limit = std::min(model_->config().configured_cache_mb,
                                    model_->cache_limit_mb() + grow_mb);
  model_->ResizeCache(new_limit);
}

double MemcachedAgent::MemoryFootprintMb() const { return model_->MemoryFootprintMb(); }

MemcachedModel::MemcachedModel(const MemcachedConfig& config)
    : config_(config), cache_limit_mb_(config.configured_cache_mb), agent_(this) {}

void MemcachedModel::SetBaseline(const EffectiveAllocation& alloc) {
  baseline_kgets_ = ThroughputKGets(alloc);
}

double MemcachedModel::StoredMb() const {
  const double filled_mb = config_.fill_fraction * config_.configured_cache_mb;
  return std::min(filled_mb, cache_limit_mb_);
}

int64_t MemcachedModel::StoredItems() const {
  return static_cast<int64_t>(StoredMb() * 1024.0 / config_.item_kb);
}

double MemcachedModel::MemoryFootprintMb() const {
  return StoredMb() + config_.process_overhead_mb;
}

void MemcachedModel::ResizeCache(double new_limit_mb) {
  cache_limit_mb_ = std::max(0.0, new_limit_mb);
}

double MemcachedModel::HitRate() const {
  // Real LRU dynamics via Che's approximation (validated against an actual
  // LRU in memcached_sim_test); the ideal top-k head fraction overestimates
  // hit rates by up to ~0.2 at this skew.
  return CheLruHitRate(config_.num_keys, StoredItems(), config_.zipf_s);
}

double MemcachedModel::SwapHitFraction(const EffectiveAllocation& alloc) const {
  if (alloc.guest_memory_mb < MemoryFootprintMb() + config_.oom_reserve_mb) {
    return 1.0;  // effectively OOM; caller reports termination
  }
  if (!alloc.memory_overcommitted()) {
    return 0.0;
  }
  // Residency available for object memory after process overhead, minus
  // what blind host paging wastes on the wrong pages (proportional to the
  // blindly reclaimed amount).
  const double waste_mb = BlindPagingWasteMb(
      alloc.guest_memory_mb, alloc.resident_memory_mb, config_.hv_paging_efficiency);
  const double resident_obj_mb = std::max(
      0.0, alloc.resident_memory_mb - config_.process_overhead_mb - waste_mb);
  const auto resident_items =
      static_cast<int64_t>(resident_obj_mb * 1024.0 / config_.item_kb);
  const int64_t stored = StoredItems();
  if (stored <= 0 || resident_items >= stored) {
    return 0.0;
  }
  // Accesses land on stored items; the kernel's page LRU keeps a resident
  // working set of `resident_items`. P(swap | hit) is the conditional miss
  // of the resident LRU within the hit stream (Che dynamics on both).
  const double stored_mass =
      CheLruHitRate(config_.num_keys, stored, config_.zipf_s);
  const double resident_mass = CheLruHitRate(
      config_.num_keys, std::max<int64_t>(resident_items, 1), config_.zipf_s);
  if (stored_mass <= 0.0) {
    return 0.0;
  }
  return std::clamp((stored_mass - resident_mass) / stored_mass, 0.0, 1.0);
}

double MemcachedModel::ThroughputKGets(const EffectiveAllocation& alloc) const {
  // OOM termination under forced unplug (the Figure 5a OS-only cliff).
  if (alloc.guest_memory_mb < MemoryFootprintMb() + config_.oom_reserve_mb) {
    return 0.0;
  }
  const double hit_rate = HitRate();
  const double p_swap = SwapHitFraction(alloc);
  // One event-driven worker per visible core; a swap fault stalls the
  // worker synchronously.
  const double avg_service_us =
      config_.base_service_us + hit_rate * p_swap * config_.swap_in_us;
  const double worker_rate =
      CappedParallelRate(alloc.visible_cpus, alloc.visible_cpus, alloc.cpu_capacity,
                         config_.costs);
  const double gets_per_s = worker_rate * 1e6 / avg_service_us;
  return gets_per_s * hit_rate / 1000.0;
}

double MemcachedModel::NormalizedPerformance(const EffectiveAllocation& alloc) const {
  if (baseline_kgets_ <= 0.0) {
    return 0.0;
  }
  return ThroughputKGets(alloc) / baseline_kgets_;
}

}  // namespace defl
