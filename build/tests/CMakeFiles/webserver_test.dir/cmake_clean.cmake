file(REMOVE_RECURSE
  "CMakeFiles/webserver_test.dir/apps/webserver_test.cc.o"
  "CMakeFiles/webserver_test.dir/apps/webserver_test.cc.o.d"
  "webserver_test"
  "webserver_test.pdb"
  "webserver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
