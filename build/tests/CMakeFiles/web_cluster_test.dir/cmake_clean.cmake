file(REMOVE_RECURSE
  "CMakeFiles/web_cluster_test.dir/apps/web_cluster_test.cc.o"
  "CMakeFiles/web_cluster_test.dir/apps/web_cluster_test.cc.o.d"
  "web_cluster_test"
  "web_cluster_test.pdb"
  "web_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
