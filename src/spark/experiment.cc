#include "src/spark/experiment.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/core/cascade.h"
#include "src/sim/simulator.h"

namespace defl {
namespace {

// Guest-OS memory accounting for a Spark worker: base system usage plus the
// live executors' shares.
void SyncGuestFootprint(Vm& vm, const SparkEngine& engine,
                        const SparkEngine::Config& config) {
  const double spec_mem = vm.size().memory_mb();
  const double per_exec_mem =
      spec_mem * config.executor_mem_fraction / std::max(vm.size().cpu(), 1.0);
  const double used =
      0.15 * spec_mem + per_exec_mem * engine.AliveExecutors(vm.id());
  vm.guest_os().set_app_used_mb(used);
}

class ExperimentRun {
 public:
  ExperimentRun(const SparkWorkload& workload, const SparkExperimentConfig& config)
      : config_(config), cascade_(DeflationMode::kVmLevel) {
    for (int i = 0; i < config.num_workers; ++i) {
      VmSpec spec;
      spec.name = "spark-worker-" + std::to_string(i);
      spec.size = config.worker_size;
      spec.priority = VmPriority::kLow;
      vms_.push_back(std::make_unique<Vm>(i, spec));
      vms_.back()->set_state(VmState::kRunning);
    }
    std::vector<Vm*> raw;
    for (const auto& vm : vms_) {
      raw.push_back(vm.get());
    }
    engine_ = std::make_unique<SparkEngine>(&sim_, workload, raw, config.engine);
    engine_->AttachTelemetry(config.telemetry);
    cascade_.AttachTelemetry(config.telemetry);
    if (config.faults != nullptr) {
      cascade_.AttachFaultInjector(config.faults);
      for (const auto& vm : vms_) {
        vm->guest_os().AttachFaultInjector(config.faults, vm->id());
      }
    }
    for (const auto& vm : vms_) {
      SyncGuestFootprint(*vm, *engine_, config.engine);
    }
  }

  SparkExperimentResult Run() {
    // The simulator lives on this stack frame; scope the telemetry clock to
    // the run so no dangling callback outlives it.
    TelemetryClockScope clock_scope(config_.telemetry, [this] { return sim_.now(); });
    engine_->Start();
    ArmDeflationTrigger();
    sim_.Run(config_.sim_time_limit_s);

    SparkExperimentResult result;
    result.completed = engine_->done();
    result.makespan_s = engine_->done() ? engine_->finish_time() : sim_.now();
    result.deflation_applied = deflated_;
    result.decision = decision_;
    result.tasks_killed = engine_->tasks_killed();
    result.recomputed_tasks = engine_->recomputed_tasks();
    result.rollbacks = engine_->rollbacks();
    result.completion_log = engine_->completion_log();
    return result;
  }

 private:
  void ArmDeflationTrigger() {
    if (config_.approach == SparkReclamationApproach::kNone ||
        config_.deflation_fraction <= 0.0) {
      return;
    }
    if (config_.deflate_at_time_s >= 0.0) {
      sim_.At(config_.deflate_at_time_s, [this] { ApplyPressure(); });
      return;
    }
    // Progress-based trigger: poll the driver.
    poll_ = sim_.Every(0.5, [this] {
      if (!deflated_ && engine_->Progress() >= config_.deflate_at_progress) {
        ApplyPressure();
      }
      if ((deflated_ || engine_->done()) && poll_.pending()) {
        poll_.Cancel();
      }
    });
  }

  void ApplyPressure() {
    if (deflated_ || engine_->done()) {
      return;
    }
    deflated_ = true;
    const double f = config_.deflation_fraction;

    SparkReclamationApproach approach = config_.approach;
    if (approach == SparkReclamationApproach::kCascadePolicy) {
      // The driver collects the deflation vector and runs the policy.
      const std::vector<double> fractions(vms_.size(), f);
      decision_ =
          DecideSparkDeflation(engine_->MakePolicyInputs(fractions), config_.telemetry);
      approach = decision_.choice == SparkDeflationChoice::kSelfDeflate
                     ? SparkReclamationApproach::kSelfDeflation
                     : SparkReclamationApproach::kVmLevel;
    }

    switch (approach) {
      case SparkReclamationApproach::kVmLevel:
        for (const auto& vm : vms_) {
          SyncGuestFootprint(*vm, *engine_, config_.engine);
          cascade_.Deflate(*vm, nullptr, vm->size() * f);
        }
        break;
      case SparkReclamationApproach::kSelfDeflation:
        for (const auto& vm : vms_) {
          const ResourceVector target = vm->size() * f;
          engine_->SelfDeflateVm(vm->id(), target);
          SyncGuestFootprint(*vm, *engine_, config_.engine);
          // The freed resources are reclaimed safely (unplug-first); any
          // remainder (I/O bandwidth, fractional CPU) is taken underneath.
          cascade_.Deflate(*vm, nullptr, target);
        }
        break;
      case SparkReclamationApproach::kPreemption: {
        const int to_preempt = static_cast<int>(
            std::llround(f * static_cast<double>(vms_.size())));
        for (int i = 0; i < to_preempt; ++i) {
          engine_->PreemptVm(vms_[static_cast<size_t>(i)]->id());
        }
        break;
      }
      case SparkReclamationApproach::kNone:
      case SparkReclamationApproach::kCascadePolicy:
        break;
    }
    engine_->OnAllocationChanged();

    if (config_.reinflate_after_s >= 0.0) {
      sim_.After(config_.reinflate_after_s, [this] { ReleasePressure(); });
    }
  }

  void ReleasePressure() {
    for (const auto& vm : vms_) {
      if (vm->state() == VmState::kPreempted) {
        // The provider re-launches the revoked VM (fresh executors).
        vm->set_state(VmState::kRunning);
        engine_->ReinflateVm(vm->id(), vm->size());
        continue;
      }
      const ResourceVector deflated_by = vm->size() - vm->effective();
      const ResourceVector returned = cascade_.Reinflate(*vm, nullptr, deflated_by);
      engine_->ReinflateVm(vm->id(), returned);
      SyncGuestFootprint(*vm, *engine_, config_.engine);
    }
    engine_->OnAllocationChanged();
  }

  SparkExperimentConfig config_;
  Simulator sim_;
  CascadeController cascade_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::unique_ptr<SparkEngine> engine_;
  bool deflated_ = false;
  SparkPolicyDecision decision_;
  EventHandle poll_;
};

}  // namespace

const char* SparkReclamationApproachName(SparkReclamationApproach approach) {
  switch (approach) {
    case SparkReclamationApproach::kNone:
      return "none";
    case SparkReclamationApproach::kCascadePolicy:
      return "cascade";
    case SparkReclamationApproach::kSelfDeflation:
      return "self";
    case SparkReclamationApproach::kVmLevel:
      return "vm-level";
    case SparkReclamationApproach::kPreemption:
      return "preemption";
  }
  return "?";
}

SparkExperimentResult RunSparkExperiment(const SparkWorkload& workload,
                                         const SparkExperimentConfig& config) {
  ExperimentRun run(workload, config);
  return run.Run();
}

double SparkBaselineMakespan(const SparkWorkload& workload,
                             const SparkExperimentConfig& config) {
  SparkExperimentConfig base = config;
  base.approach = SparkReclamationApproach::kNone;
  base.deflation_fraction = 0.0;
  base.reinflate_after_s = -1.0;
  const SparkExperimentResult result = RunSparkExperiment(workload, base);
  assert(result.completed);
  return result.makespan_s;
}

}  // namespace defl
