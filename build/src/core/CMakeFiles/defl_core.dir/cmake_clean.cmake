file(REMOVE_RECURSE
  "CMakeFiles/defl_core.dir/cascade.cc.o"
  "CMakeFiles/defl_core.dir/cascade.cc.o.d"
  "CMakeFiles/defl_core.dir/local_controller.cc.o"
  "CMakeFiles/defl_core.dir/local_controller.cc.o.d"
  "CMakeFiles/defl_core.dir/protocol.cc.o"
  "CMakeFiles/defl_core.dir/protocol.cc.o.d"
  "libdefl_core.a"
  "libdefl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
