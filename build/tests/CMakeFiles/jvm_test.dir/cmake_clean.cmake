file(REMOVE_RECURSE
  "CMakeFiles/jvm_test.dir/apps/jvm_test.cc.o"
  "CMakeFiles/jvm_test.dir/apps/jvm_test.cc.o.d"
  "jvm_test"
  "jvm_test.pdb"
  "jvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
