#include "src/cluster/placement.h"

#include <algorithm>

namespace defl {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kBestFit:
      return "best-fit";
    case PlacementPolicy::kFirstFit:
      return "first-fit";
    case PlacementPolicy::kTwoChoices:
      return "2-choices";
  }
  return "?";
}

double PlacementFitness(const ResourceVector& demand,
                        const ResourceVector& availability) {
  return ResourceVector::CosineSimilarity(demand, availability);
}

ResourceVector ServerAvailability(const Server& server, AvailabilityMode mode) {
  switch (mode) {
    case AvailabilityMode::kFreeOnly:
      return server.Free();
    case AvailabilityMode::kFreePlusDeflatable:
      return server.Availability();
    case AvailabilityMode::kFreePlusPreemptible:
      return server.Free() + server.Preemptible();
  }
  return server.Free();
}

Result<size_t> PlaceVm(const ResourceVector& demand,
                       const std::vector<Server*>& servers, PlacementPolicy policy,
                       Rng& rng, AvailabilityMode mode) {
  if (servers.empty()) {
    return Error{"no servers"};
  }
  // Each candidate's availability is computed exactly once per probe:
  // feasibility and fitness consume the same vector instead of re-deriving
  // it (the server-side aggregates are cached, but the vector assembly --
  // Free/clamp/adds -- is still worth sharing on the placement hot path).
  switch (policy) {
    case PlacementPolicy::kFirstFit:
      for (size_t i = 0; i < servers.size(); ++i) {
        if (demand.AllLeq(ServerAvailability(*servers[i], mode))) {
          return i;
        }
      }
      return Error{"no feasible server (first-fit)"};

    case PlacementPolicy::kBestFit: {
      size_t best = servers.size();
      double best_fitness = -1.0;
      for (size_t i = 0; i < servers.size(); ++i) {
        const ResourceVector availability = ServerAvailability(*servers[i], mode);
        if (!demand.AllLeq(availability)) {
          continue;
        }
        const double fitness = PlacementFitness(demand, availability);
        if (fitness > best_fitness) {
          best_fitness = fitness;
          best = i;
        }
      }
      if (best == servers.size()) {
        return Error{"no feasible server (best-fit)"};
      }
      return best;
    }

    case PlacementPolicy::kTwoChoices: {
      // Sample two *distinct* random servers and keep the fitter feasible
      // one; retry a few times before falling back to a full first-fit
      // scan. (Sampling with replacement would silently degenerate to one
      // choice whenever both draws land on the same server.)
      constexpr int kAttempts = 8;
      const auto count = static_cast<int64_t>(servers.size());
      for (int attempt = 0; attempt < kAttempts; ++attempt) {
        const auto a = static_cast<size_t>(rng.UniformInt(0, count - 1));
        size_t b = a;
        if (count >= 2) {
          // Draw from the count-1 servers that are not `a`.
          b = static_cast<size_t>(rng.UniformInt(0, count - 2));
          if (b >= a) {
            ++b;
          }
        }
        const ResourceVector avail_a = ServerAvailability(*servers[a], mode);
        const bool fa = demand.AllLeq(avail_a);
        if (b == a) {
          if (fa) {
            return a;
          }
          continue;
        }
        const ResourceVector avail_b = ServerAvailability(*servers[b], mode);
        const bool fb = demand.AllLeq(avail_b);
        if (fa && fb) {
          const double fit_a = PlacementFitness(demand, avail_a);
          const double fit_b = PlacementFitness(demand, avail_b);
          return fit_a >= fit_b ? a : b;
        }
        if (fa) {
          return a;
        }
        if (fb) {
          return b;
        }
      }
      for (size_t i = 0; i < servers.size(); ++i) {
        if (demand.AllLeq(ServerAvailability(*servers[i], mode))) {
          return i;
        }
      }
      return Error{"no feasible server (2-choices)"};
    }
  }
  return Error{"unknown policy"};
}

}  // namespace defl
