// Extension (DESIGN.md §16): SLO-violation rate vs deflation policy for the
// interactive-serving scenario. Sweeps the p99 target across the SLO-aware
// controller and the uniform-proportional baseline on the same diurnal
// trace: the controller concentrates deflation on batch victims and
// reinflates web VMs under tail pressure, so its violation rate must sit at
// or below the baseline's at every target.
//
// Output: the usual bench table, then one `ext_slo_json: {...}` footer line
// with the machine-readable points. The simulation is deterministic, so CI
// diffs the integer fields and the violation rates against
// bench/ext_slo_baseline.json exactly (any drift is a behavior change).
#include <string>

#include "bench/bench_util.h"
#include "src/cluster/cluster_sim.h"

namespace defl {
namespace {

// The interactive golden scenario at bench scale: hot enough that the
// baseline violates at every target and the controller has work to do.
ClusterSimConfig InteractiveConfig(double slo_p99_ms, bool slo_aware) {
  ClusterSimConfig config;
  config.num_servers = 30;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.seed = 42;
  config.trace.duration_s = 3.0 * 3600.0;
  config.trace.max_lifetime_s = 2.0 * 3600.0;
  config.trace.low_priority_fraction = 0.6;
  config.trace =
      WithTargetLoad(config.trace, 1.6, config.num_servers, config.server_capacity);
  config.reinflate_period_s = 600.0;
  config.arrivals.enabled = true;
  config.arrivals.diurnal_amplitude = 0.6;
  config.arrivals.diurnal_period_s = 2.0 * 3600.0;
  config.arrivals.seed = 17;
  config.interactive.enabled = true;
  config.interactive.fraction = 0.45;
  config.interactive.slo_p99_ms = slo_p99_ms;
  config.interactive.slo_aware = slo_aware;
  config.interactive.control_period_s = 300.0;
  config.interactive.rate_rps_per_cpu = 120.0;
  config.interactive.rate_period_s = 2.0 * 3600.0;
  return config;
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Extension: SLO vs deflation",
                     "slo-aware controller vs uniform-proportional baseline");
  bench::PrintNote("30 servers, 1.6x load, 45% interactive mix over diurnal");
  bench::PrintNote("arrivals; same trace per row, only the policy differs.");
  bench::PrintColumns({"p99-target", "policy", "viol-rate", "mean-p99",
                       "peak-p99", "reinflate", "victims", "preempted"});

  std::string json = "{\"bench\": \"ext_slo_deflation\", \"points\": [";
  bool first = true;
  int failures = 0;
  for (const double target_ms : {40.0, 60.0, 100.0}) {
    double uniform_rate = 0.0;
    for (const bool slo_aware : {false, true}) {
      const ClusterSimResult result =
          RunClusterSim(InteractiveConfig(target_ms, slo_aware));
      bench::PrintCell(target_ms);
      bench::PrintCell(slo_aware ? "slo" : "uniform");
      bench::PrintCell(result.slo_violation_rate);
      bench::PrintCell(result.slo_mean_p99_ms);
      bench::PrintCell(result.slo_peak_p99_ms);
      bench::PrintCell(static_cast<double>(result.slo_reinflate_ops));
      bench::PrintCell(static_cast<double>(result.slo_victim_deflations));
      bench::PrintCell(static_cast<double>(result.counters.preempted));
      bench::EndRow();
      if (slo_aware) {
        // The controller's whole claim: no worse a tail than the baseline.
        if (result.slo_violation_rate > uniform_rate) {
          std::printf("FAIL: slo policy violates more than uniform at "
                      "p99=%.0fms (%.4f vs %.4f)\n",
                      target_ms, result.slo_violation_rate, uniform_rate);
          ++failures;
        }
      } else {
        uniform_rate = result.slo_violation_rate;
      }
      char buf[384];
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"p99_target_ms\": %.0f, \"policy\": \"%s\", "
          "\"violation_rate\": %.4f, \"mean_p99_ms\": %.2f, "
          "\"peak_p99_ms\": %.2f, \"interactive_vms\": %lld, "
          "\"reinflate_ops\": %lld, \"victim_deflations\": %lld, "
          "\"preempted\": %lld}",
          first ? "" : ", ", target_ms, slo_aware ? "slo" : "uniform",
          result.slo_violation_rate, result.slo_mean_p99_ms,
          result.slo_peak_p99_ms,
          static_cast<long long>(result.interactive_vms),
          static_cast<long long>(result.slo_reinflate_ops),
          static_cast<long long>(result.slo_victim_deflations),
          static_cast<long long>(result.counters.preempted));
      json += buf;
      first = false;
    }
  }
  json += "]}";
  std::printf("ext_slo_json: %s\n", json.c_str());
  return failures == 0 ? 0 : 1;
}
