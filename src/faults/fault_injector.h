// FaultInjector: deterministic sampling of a FaultPlan. Every layer that can
// fail holds an injector pointer (nullptr = no faults, one branch) and asks
// it at each injection site whether a fault fires there. Sampling is keyed by
// (kind, vm, server): each site gets an independent SplitMix64-derived
// stream, so the decision sequence at one site does not depend on how often
// other sites sample. Same plan + same seed => identical failure schedule,
// which is what makes a faulted run byte-for-byte replayable.
#ifndef SRC_FAULTS_FAULT_INJECTOR_H_
#define SRC_FAULTS_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "src/faults/fault_plan.h"
#include "src/telemetry/telemetry.h"

namespace defl {

struct FaultDecision {
  bool fired = false;
  // The matched rule's magnitude (kind-specific; see FaultKind).
  double magnitude = 0.0;
  // An extra uniform [0, 1) draw for layers that need a severity roll
  // (e.g. partial unplug delivers (1 - magnitude * roll) of the available).
  double roll = 0.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Publishes per-kind injection counters ("faults/injected/<kind>") and
  // kFaultInjected trace events through `telemetry` (nullptr detaches). The
  // telemetry clock also supplies the time used to match rule windows.
  void AttachTelemetry(TelemetryContext* telemetry);
  TelemetryContext* telemetry() const { return telemetry_; }

  // Samples whether a fault of `kind` fires at site (vm, server) now.
  // Rules are matched in plan order; the first rule whose kind, scope, time
  // window, and remaining count budget match gets a Bernoulli(p) trial.
  FaultDecision Sample(FaultKind kind, int64_t vm, int64_t server);

  // Total faults fired per kind so far.
  int64_t injected(FaultKind kind) const {
    return injected_[static_cast<size_t>(kind)];
  }
  int64_t total_injected() const;

  // The whole-server availability events (crash/degrade/recover) in the
  // plan, expanded over `num_servers` (rules with server=-1 apply to every
  // server) and sorted by (time, plan order). The cluster simulator turns
  // these into scheduled calls on the cluster manager.
  struct ServerEvent {
    double time_s = 0.0;
    FaultKind kind = FaultKind::kServerCrash;
    int64_t server = -1;
  };
  std::vector<ServerEvent> ServerEventsFor(int num_servers) const;

  const FaultPlan& plan() const { return plan_; }

  // --- Deterministic checkpoint/restore (SimSession snapshots) ---
  // Sampling is stateless apart from the per-site draw counters and the
  // per-rule fire/injection tallies, so capturing them resumes the exact
  // failure schedule. ImportState rejects a state whose rule count does not
  // match this injector's plan (a snapshot from a different plan).
  struct State {
    // (kind, vm, server) -> draws taken at that site, in map (sorted) order.
    std::vector<std::tuple<uint8_t, int64_t, int64_t, uint64_t>> site_draws;
    std::vector<int64_t> rule_fires;
    std::array<int64_t, kNumFaultKinds> injected = {};
  };
  State ExportState() const;
  Result<bool> ImportState(const State& state);

 private:
  double Now() const { return telemetry_ != nullptr ? telemetry_->Now() : 0.0; }
  // The n-th uniform draw of the (kind, vm, server) site stream, with a salt
  // separating the fire trial from the severity roll.
  double SiteUniform(FaultKind kind, int64_t vm, int64_t server, uint64_t n,
                     uint64_t salt) const;

  FaultPlan plan_;
  // Per-site draw counters; ordered map keeps behavior deterministic.
  std::map<std::tuple<uint8_t, int64_t, int64_t>, uint64_t> site_draws_;
  std::vector<int64_t> rule_fires_;  // parallel to plan_.rules
  std::array<int64_t, kNumFaultKinds> injected_ = {};

  TelemetryContext* telemetry_ = nullptr;
  std::array<CounterHandle, kNumFaultKinds> metrics_ = {};
};

}  // namespace defl

#endif  // SRC_FAULTS_FAULT_INJECTOR_H_
