// Virtual machine model. A Vm tracks its allocation state across the two
// mechanical deflation layers:
//   * OS level   -- resources hot-unplugged from the guest (GuestOs),
//   * hypervisor -- resources overcommitted underneath the guest
//                   (CPU-share throttling, memory resident limit, I/O caps).
// Application-level deflation changes the app's own configuration and is
// tracked by the deflation agents (src/core), not here.
//
// Invariants (enforced by the mutators):
//   effective() = spec - unplugged - hv_reclaimed  >= 0 element-wise
//   hv_reclaimed <= guest_visible = spec - unplugged
#ifndef SRC_HYPERVISOR_VM_H_
#define SRC_HYPERVISOR_VM_H_

#include <cstdint>
#include <string>

#include "src/hypervisor/guest_os.h"
#include "src/resources/resource_vector.h"

namespace defl {

using VmId = int64_t;

enum class VmPriority {
  kHigh,  // non-deflatable, non-preemptible
  kLow,   // deflatable (transient)
};

enum class VmState { kPending, kRunning, kPreempted, kCompleted };

struct VmSpec {
  std::string name;
  ResourceVector size;
  VmPriority priority = VmPriority::kLow;
  // Minimum viable allocation; deflating below this is infeasible and the
  // cluster manager preempts instead (Section 5). Defaults to zero =
  // fully deflatable.
  ResourceVector min_size;
};

// What the application actually experiences; consumed by the app performance
// models in src/apps and src/spark.
struct EffectiveAllocation {
  // CPUs the guest sees (after hot-unplug).
  double visible_cpus = 0.0;
  // Physical CPU capacity backing them (after hypervisor shares). When
  // cpu_capacity < visible_cpus the vCPUs are multiplexed and lock-holder
  // preemption penalties apply.
  double cpu_capacity = 0.0;
  // Memory the guest sees (after hot-unplug).
  double guest_memory_mb = 0.0;
  // Hypervisor-backed resident memory; guest pages beyond this are swapped.
  double resident_memory_mb = 0.0;
  double disk_bw = 0.0;
  double net_bw = 0.0;
  // Guest page cache still standing (hot-unplug consumes it after the
  // truly-free pool); I/O-reuse-heavy apps slow down when it shrinks.
  double page_cache_mb = 0.0;

  // True when the hypervisor is multiplexing vCPUs onto fewer cores.
  bool cpu_multiplexed(double eps = 1e-9) const {
    return cpu_capacity + eps < visible_cpus;
  }
  // True when guest memory is not fully backed (host swapping active).
  bool memory_overcommitted(double eps = 1e-9) const {
    return resident_memory_mb + eps < guest_memory_mb;
  }
};

// A Vm observes its own GuestOs (unplug/balloon mutations) and forwards
// every allocation change -- its own hypervisor-level mutations included --
// to the listener its host server installs, so server-level accounting can
// be cached instead of recomputed by scanning VMs.
class Vm : public AllocationListener {
 public:
  Vm(VmId id, VmSpec spec, const GuestOs::Params& os_params = GuestOs::Params());
  // Moves rebind the guest-OS observer to the new object and drop the host
  // listener: a hosted VM is owned by its server and is never moved.
  Vm(Vm&& other) noexcept;
  Vm& operator=(Vm&& other) noexcept;

  VmId id() const { return id_; }
  const VmSpec& spec() const { return spec_; }
  const ResourceVector& size() const { return spec_.size; }
  VmPriority priority() const { return spec_.priority; }
  bool deflatable() const { return spec_.priority == VmPriority::kLow; }

  VmState state() const { return state_; }
  void set_state(VmState state) { state_ = state; }

  GuestOs& guest_os() { return guest_os_; }
  const GuestOs& guest_os() const { return guest_os_; }

  // --- Allocation views ---

  // What the guest OS sees (after unplug).
  ResourceVector guest_visible() const { return guest_os_.visible(); }
  // What is physically backed (after unplug and hypervisor reclamation).
  ResourceVector effective() const;
  // Resources still reclaimable before hitting min_size (zero for high-pri).
  ResourceVector deflatable_amount() const;
  // Per-resource deflation fraction: 1 - effective/spec, in [0, 1].
  double DeflationFraction(ResourceKind kind) const;
  // max over resources of DeflationFraction -- the "d" of Section 4.1.
  double MaxDeflationFraction() const;

  EffectiveAllocation allocation() const;

  // --- Hypervisor-level mechanism (overcommitment) ---

  // Reclaims up to `amount` via hypervisor overcommitment (CPU shares,
  // memory limit, I/O throttling). Clamped so effective() stays >= 0.
  // Returns what was actually reclaimed.
  ResourceVector HvReclaim(const ResourceVector& amount);
  // Releases previously overcommitted resources (reinflation step 1).
  // Returns what was actually released.
  ResourceVector HvRelease(const ResourceVector& amount);
  const ResourceVector& hv_reclaimed() const { return hv_reclaimed_; }

  // Called after guest unplug: hypervisor reclamation of a resource can
  // never exceed what the guest still sees; re-clamps and returns any
  // excess that became automatically free (unplugged memory is returned to
  // the host without needing overcommitment).
  void ClampHvToVisible();

  // Deterministic checkpoint/restore (SimSession snapshots): reinstates the
  // hypervisor-level reclamation directly, bypassing the HvReclaim clamping
  // (the snapshotted value already satisfied the invariants when taken).
  void RestoreHvReclaimed(const ResourceVector& amount) {
    hv_reclaimed_ = amount;
    NotifyAllocationChanged();
  }

  // --- Accounting change notification ---

  // Installs the observer told about every allocation-affecting mutation of
  // this VM (set by the host server on AddVm, cleared on RemoveVm).
  void set_allocation_listener(AllocationListener* listener) { listener_ = listener; }
  // Guest-OS mutations arrive here and are forwarded to the host listener.
  void OnAllocationChanged() override;

 private:
  void NotifyAllocationChanged();

  VmId id_;
  VmSpec spec_;
  VmState state_ = VmState::kPending;
  GuestOs guest_os_;
  ResourceVector hv_reclaimed_;
  AllocationListener* listener_ = nullptr;
};

}  // namespace defl

#endif  // SRC_HYPERVISOR_VM_H_
