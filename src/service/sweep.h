// SweepOrchestrator: fans a parameter grid -- placement policy x fail
// fraction x overcommit target x admission intensity -- over snapshot-seeded
// child sessions and merges the per-cell report lines in canonical grid
// order (DESIGN.md §15). Cells are independent (each forks its own child
// off the service's shared blob), so they run on any number of workers; the
// merge is by flat cell index, never completion order, which is why sweep
// output is byte-identical for every worker count.
//
// Grid file format -- `key = value` lines, `#` comments; list-valued keys
// are the sweep axes (comma-separated), the rest are scalars:
//
//   policy = best-fit, 2-choices        # axis: future placement policy
//   fail-fraction = 0.0, 0.25           # axis: servers crashed up front
//   overcommit-target = 1.0, 1.5        # axis: admission stops at this OC
//   intensity = 0.5, 1.0                # axis: scales the admission budget
//   hours = 2                           # sim-hours each cell then runs
//   shape = 2:4096                      # admitted VM size cpu:mem[:disk[:net]]
//   fail-seed = 7                       # victim-draw seed (shared by cells)
//   limit = 1000                        # admission budget at intensity 1.0
#ifndef SRC_SERVICE_SWEEP_H_
#define SRC_SERVICE_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/placement.h"
#include "src/common/result.h"
#include "src/resources/resource_vector.h"
#include "src/service/whatif.h"

namespace defl {

struct SweepGrid {
  // Axes, swept in this nesting order (policy outermost, intensity
  // innermost); each must be non-empty.
  std::vector<PlacementPolicy> policies;
  std::vector<double> fail_fractions;      // each in [0, 1]
  std::vector<double> overcommit_targets;  // each > 0; <= current OC = no-op
  std::vector<double> intensities;         // each >= 0; scales `limit`

  // Scalars shared by every cell.
  double hours = 1.0;      // >= 0
  ResourceVector shape = ResourceVector(2.0, 4096.0);
  uint64_t fail_seed = 1;
  int64_t limit = 1000;    // admissions attempted at intensity 1.0

  int64_t Cells() const {
    return static_cast<int64_t>(policies.size() * fail_fractions.size() *
                                overcommit_targets.size() * intensities.size());
  }
};

// Strict parser: unknown keys, duplicate keys, malformed numbers or policy
// names, out-of-range values, and empty axes fail with a line-numbered
// error; a grid with no axis values is an error.
Result<SweepGrid> ParseSweepGrid(const std::string& text);

class SweepOrchestrator {
 public:
  // The service outlives the orchestrator; only its shared blob is used.
  explicit SweepOrchestrator(const WhatIfService* service)
      : service_(service) {}

  // Runs every cell (on up to `workers` threads) and returns the report:
  // one header line, one line per cell in canonical grid order, and a
  // `# sweep` footer with the cell count and an FNV-1a-64 digest of
  // everything above it. Byte-identical for every worker count.
  Result<std::string> Run(const SweepGrid& grid, int workers) const;

 private:
  const WhatIfService* service_;
};

}  // namespace defl

#endif  // SRC_SERVICE_SWEEP_H_
