#include "src/apps/web_cluster.h"

#include <gtest/gtest.h>

namespace defl {
namespace {

ResourceVector VmSize() { return ResourceVector(4.0, 16384.0, 100.0, 1000.0); }

TEST(WebClusterTest, UndeflatedCapacityScalesWithBackends) {
  WebCluster cluster(4, VmSize());
  // Each backend: 4 cores at 2 ms/request = 2000 rps.
  EXPECT_NEAR(cluster.TotalCapacityRps(), 8000.0, 1.0);
}

TEST(WebClusterTest, EvenLoadBelowCapacityFullyServed) {
  WebCluster cluster(4, VmSize());
  for (const LoadBalancingPolicy policy :
       {LoadBalancingPolicy::kDeflationAware, LoadBalancingPolicy::kEvenSplit}) {
    const WebClusterMetrics m = cluster.Evaluate(4000.0, policy);
    EXPECT_NEAR(m.served_rps, 4000.0, 1e-6) << LoadBalancingPolicyName(policy);
    EXPECT_NEAR(m.dropped_rps, 0.0, 1e-6);
  }
}

TEST(WebClusterTest, DeflationShrinksBackendPoolAndCapacity) {
  WebCluster cluster(4, VmSize());
  const ResourceVector reclaimed =
      cluster.DeflateBackend(0, VmSize() * 0.5);
  EXPECT_GT(reclaimed.cpu(), 0.0);
  EXPECT_LT(cluster.server(0).threads(), cluster.server(1).threads());
  EXPECT_LT(cluster.TotalCapacityRps(), 8000.0);
}

TEST(WebClusterTest, AwareBalancerShiftsTrafficAwayFromDeflatedBackend) {
  WebCluster cluster(4, VmSize());
  cluster.DeflateBackend(0, VmSize() * 0.5);
  // Offered load that the remaining capacity can still serve.
  const double offered = 0.85 * cluster.TotalCapacityRps();

  const WebClusterMetrics aware =
      cluster.Evaluate(offered, LoadBalancingPolicy::kDeflationAware);
  EXPECT_NEAR(aware.dropped_rps, 0.0, 1e-6);
  // Deflated backend gets less traffic but the same utilization.
  for (size_t i = 1; i < aware.backend_utilization.size(); ++i) {
    EXPECT_NEAR(aware.backend_utilization[0], aware.backend_utilization[i], 1e-6);
  }

  const WebClusterMetrics oblivious =
      cluster.Evaluate(offered, LoadBalancingPolicy::kEvenSplit);
  EXPECT_GT(oblivious.dropped_rps, 0.0);  // deflated backend overloads
  EXPECT_GT(aware.served_rps, oblivious.served_rps);
  EXPECT_LT(aware.mean_response_us, oblivious.mean_response_us);
}

TEST(WebClusterTest, ReinflationRestoresCapacity) {
  WebCluster cluster(2, VmSize());
  const double before = cluster.TotalCapacityRps();
  cluster.DeflateBackend(1, VmSize() * 0.5);
  ASSERT_LT(cluster.TotalCapacityRps(), before);
  cluster.ReinflateBackend(1);
  EXPECT_NEAR(cluster.TotalCapacityRps(), before, 1.0);
  EXPECT_EQ(cluster.server(1).threads(), cluster.server(1).config().configured_threads);
}

TEST(WebClusterTest, AllBackendsDeflatedStillServeProportionally) {
  WebCluster cluster(4, VmSize());
  for (int i = 0; i < 4; ++i) {
    cluster.DeflateBackend(i, VmSize() * 0.5);
  }
  const double capacity = cluster.TotalCapacityRps();
  EXPECT_GT(capacity, 3000.0);  // roughly half of 8000
  EXPECT_LT(capacity, 5000.0);
  const WebClusterMetrics m =
      cluster.Evaluate(capacity * 0.9, LoadBalancingPolicy::kDeflationAware);
  EXPECT_NEAR(m.dropped_rps, 0.0, 1e-6);
}

TEST(WebClusterTest, ResponseTimeGrowsWithUtilization) {
  WebCluster cluster(2, VmSize());
  const WebClusterMetrics light =
      cluster.Evaluate(1000.0, LoadBalancingPolicy::kDeflationAware);
  const WebClusterMetrics heavy =
      cluster.Evaluate(3600.0, LoadBalancingPolicy::kDeflationAware);
  EXPECT_GT(heavy.mean_response_us, light.mean_response_us);
}

TEST(WebClusterTest, PolicyNames) {
  EXPECT_STREQ(LoadBalancingPolicyName(LoadBalancingPolicy::kDeflationAware),
               "deflation-aware");
  EXPECT_STREQ(LoadBalancingPolicyName(LoadBalancingPolicy::kEvenSplit), "even-split");
}

}  // namespace
}  // namespace defl
