// Integration: the cluster simulation publishing through a TelemetryContext.
// Two identical runs must produce byte-identical exports (the determinism
// guarantee the --metrics-out/--trace-out tool flags rely on), and the
// registry-backed ClusterCounters view must agree with the counter metrics
// it is derived from.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/cluster/cluster_sim.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

ClusterSimConfig SmallSim() {
  ClusterSimConfig config;
  config.num_servers = 8;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 3600.0 * 2;
  config.trace.max_lifetime_s = 3600.0;
  config.trace.seed = 42;
  config.trace =
      WithTargetLoad(config.trace, 1.4, config.num_servers, config.server_capacity);
  config.cluster.strategy = ReclamationStrategy::kDeflation;
  config.cluster.controller.mode = DeflationMode::kVmLevel;
  config.sample_period_s = 300.0;
  return config;
}

ClusterSimResult RunWithSink(ClusterSimConfig config, TelemetryContext* telemetry) {
  config.telemetry = telemetry;
  return RunClusterSim(config);
}

TEST(ClusterTelemetryTest, SameSeedRunsExportIdenticalTelemetry) {
  const ClusterSimConfig config = SmallSim();
  std::string metrics[2];
  std::string trace[2];
  for (int run = 0; run < 2; ++run) {
    TelemetryContext telemetry;
    RunWithSink(config, &telemetry);
    std::ostringstream metrics_os;
    telemetry.metrics().DumpJson(metrics_os);
    metrics[run] = metrics_os.str();
    std::ostringstream trace_os;
    telemetry.trace().DumpJsonl(trace_os);
    trace[run] = trace_os.str();
    EXPECT_GT(telemetry.trace().size(), 0u);
  }
  EXPECT_EQ(metrics[0], metrics[1]);
  EXPECT_EQ(trace[0], trace[1]);
}

TEST(ClusterTelemetryTest, CountersViewMatchesRegistry) {
  TelemetryContext telemetry;
  const ClusterSimResult result = RunWithSink(SmallSim(), &telemetry);
  const MetricsRegistry& registry = telemetry.metrics();
  EXPECT_GT(result.counters.launched, 0);
  EXPECT_EQ(result.counters.launched, registry.CounterValue("cluster/vms/launched"));
  EXPECT_EQ(result.counters.launched_low_priority,
            registry.CounterValue("cluster/vms/launched_low_priority"));
  EXPECT_EQ(result.counters.rejected, registry.CounterValue("cluster/vms/rejected"));
  EXPECT_EQ(result.counters.preempted, registry.CounterValue("cluster/vms/preempted"));
  EXPECT_EQ(result.counters.completed, registry.CounterValue("cluster/vms/completed"));
  EXPECT_EQ(result.counters.deflation_ops,
            registry.CounterValue("cluster/deflation_ops"));
}

TEST(ClusterTelemetryTest, ResultFieldsAgreeWithRegistryDerivation) {
  TelemetryContext telemetry;
  const ClusterSimConfig config = SmallSim();
  const ClusterSimResult result = RunWithSink(config, &telemetry);
  const MetricsRegistry& registry = telemetry.metrics();
  // The result's headline figures are themselves registry reads; recomputing
  // them from the exported series must reproduce them exactly.
  const SeriesHandle util = registry.FindSeries("cluster/utilization");
  const SeriesHandle oc = registry.FindSeries("cluster/overcommitment");
  ASSERT_TRUE(util.valid());
  ASSERT_TRUE(oc.valid());
  EXPECT_DOUBLE_EQ(result.mean_utilization,
                   registry.SeriesTimeWeightedMean(util, config.trace.duration_s));
  EXPECT_DOUBLE_EQ(result.mean_overcommitment,
                   registry.SeriesTimeWeightedMean(oc, config.trace.duration_s));
  EXPECT_DOUBLE_EQ(result.peak_overcommitment, registry.SeriesMax(oc));
  const SeriesHandle per_server = registry.FindSeries("cluster/server_overcommitment");
  ASSERT_TRUE(per_server.valid());
  EXPECT_EQ(result.server_overcommitment_samples.size(),
            registry.series_points(per_server).size());
}

TEST(ClusterTelemetryTest, TraceContainsLifecycleAndDeflationEvents) {
  TelemetryContext telemetry;
  const ClusterSimResult result = RunWithSink(SmallSim(), &telemetry);
  const EventTrace& trace = telemetry.trace();
  EXPECT_EQ(trace.CountKind(TraceEventKind::kVmLaunch), result.counters.launched);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kVmComplete), result.counters.completed);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kPlacement), result.counters.launched);
  // At 1.4x offered load the controller must have deflated something, and
  // each cascade Deflate() emits at least one per-layer stage event.
  EXPECT_GT(trace.CountKind(TraceEventKind::kDeflation), 0);
  EXPECT_GE(trace.CountKind(TraceEventKind::kCascadeStage),
            trace.CountKind(TraceEventKind::kDeflation));
  // Events are stamped off the simulator clock in non-decreasing order.
  double last = -1.0;
  for (const TraceEventRecord& event : trace.events()) {
    EXPECT_GE(event.time, last);
    last = event.time;
  }
}

TEST(ClusterTelemetryTest, NullContextStillProducesCounters) {
  // The one-argument overload runs on a private context: the counters view
  // must stay live even when the caller provides no telemetry.
  const ClusterSimResult result = RunClusterSim(SmallSim());
  EXPECT_GT(result.counters.launched, 0);
  EXPECT_GT(result.mean_utilization, 0.0);
}

}  // namespace
}  // namespace defl
