# Empty dependencies file for defl_sim.
# This may be replaced when dependencies are built.
