file(REMOVE_RECURSE
  "CMakeFiles/local_controller_test.dir/core/local_controller_test.cc.o"
  "CMakeFiles/local_controller_test.dir/core/local_controller_test.cc.o.d"
  "local_controller_test"
  "local_controller_test.pdb"
  "local_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
