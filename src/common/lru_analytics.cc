#include "src/common/lru_analytics.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace defl {
namespace {

constexpr int64_t kExactHead = 1024;
constexpr int kTailBuckets = 256;

// Evaluates sum_{i=1..n} f(p_i) with p_i = i^{-s} / H_{n,s}: exact head plus
// log-bucketed midpoint integration of the tail. `f` must be smooth in p.
template <typename F>
double ZipfSum(int64_t n, double s, F&& f) {
  const double h_n = GeneralizedHarmonic(n, s);
  double sum = 0.0;
  const int64_t head = std::min(n, kExactHead);
  for (int64_t i = 1; i <= head; ++i) {
    sum += f(std::pow(static_cast<double>(i), -s) / h_n);
  }
  if (n <= kExactHead) {
    return sum;
  }
  // Tail: integrate f(x^-s / H) dx over [head + 0.5, n + 0.5] in log space.
  const double lo = static_cast<double>(head) + 0.5;
  const double hi = static_cast<double>(n) + 0.5;
  const double log_ratio = std::log(hi / lo);
  double prev_edge = lo;
  for (int b = 1; b <= kTailBuckets; ++b) {
    const double edge = lo * std::exp(log_ratio * b / kTailBuckets);
    const double mid = std::sqrt(prev_edge * edge);  // geometric midpoint
    const double width = edge - prev_edge;
    sum += width * f(std::pow(mid, -s) / h_n);
    prev_edge = edge;
  }
  return sum;
}

// Expected number of distinct items referenced within time T.
double ExpectedOccupancy(int64_t n, double s, double t) {
  return ZipfSum(n, s, [t](double p) { return 1.0 - std::exp(-p * t); });
}

}  // namespace

double CheCharacteristicTime(int64_t n, int64_t capacity, double s) {
  if (capacity <= 0 || n <= 0) {
    return 0.0;
  }
  if (capacity >= n) {
    return 1e300;  // everything fits; infinite characteristic time
  }
  // Bisection on T: occupancy is monotone increasing in T.
  double lo = 0.0;
  double hi = 1.0;
  while (ExpectedOccupancy(n, s, hi) < static_cast<double>(capacity) && hi < 1e280) {
    hi *= 4.0;
  }
  for (int iter = 0; iter < 128; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ExpectedOccupancy(n, s, mid) < static_cast<double>(capacity)) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-9 * hi) {
      break;
    }
  }
  return 0.5 * (lo + hi);
}

double CheLruHitRate(int64_t n, int64_t capacity, double s) {
  if (capacity <= 0 || n <= 0) {
    return 0.0;
  }
  if (capacity >= n) {
    return 1.0;
  }
  const double t = CheCharacteristicTime(n, capacity, s);
  const double hit =
      ZipfSum(n, s, [t](double p) { return p * (1.0 - std::exp(-p * t)); });
  return std::clamp(hit, 0.0, 1.0);
}

}  // namespace defl
