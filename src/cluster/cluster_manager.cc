#include "src/cluster/cluster_manager.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace defl {

ClusterManager::ClusterManager(int num_servers, const ResourceVector& server_capacity,
                               const ClusterConfig& config, TelemetryContext* telemetry)
    : config_(config), rng_(config.seed) {
  assert(num_servers > 0);
  if (telemetry != nullptr) {
    telemetry_ = telemetry;
  } else {
    // Private fallback so the counters() view is always live. Nothing will
    // export the private trace, so don't let it accumulate.
    owned_telemetry_ = std::make_unique<TelemetryContext>();
    owned_telemetry_->trace().set_enabled(false);
    telemetry_ = owned_telemetry_.get();
  }
  MetricsRegistry& registry = telemetry_->metrics();
  metrics_.launched = registry.Counter("cluster/vms/launched");
  metrics_.launched_low_priority = registry.Counter("cluster/vms/launched_low_priority");
  metrics_.rejected = registry.Counter("cluster/vms/rejected");
  metrics_.preempted = registry.Counter("cluster/vms/preempted");
  metrics_.completed = registry.Counter("cluster/vms/completed");
  metrics_.deflation_ops = registry.Counter("cluster/deflation_ops");
  for (int i = 0; i < num_servers; ++i) {
    servers_.push_back(std::make_unique<Server>(i, server_capacity));
    servers_.back()->AttachTelemetry(telemetry_);
    controllers_.push_back(
        std::make_unique<LocalController>(servers_.back().get(), config.controller));
    controllers_.back()->AttachTelemetry(telemetry_);
  }
}

ClusterCounters ClusterManager::counters() const {
  const MetricsRegistry& registry = telemetry_->metrics();
  ClusterCounters out;
  out.launched = registry.counter(metrics_.launched);
  out.launched_low_priority = registry.counter(metrics_.launched_low_priority);
  out.rejected = registry.counter(metrics_.rejected);
  out.preempted = registry.counter(metrics_.preempted);
  out.completed = registry.counter(metrics_.completed);
  out.deflation_ops = registry.counter(metrics_.deflation_ops);
  return out;
}

std::vector<Server*> ClusterManager::servers() {
  std::vector<Server*> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) {
    out.push_back(s.get());
  }
  return out;
}

LocalController* ClusterManager::controller(ServerId id) {
  for (auto& c : controllers_) {
    if (c->server()->id() == id) {
      return c.get();
    }
  }
  return nullptr;
}

Result<ServerId> ClusterManager::LaunchVm(std::unique_ptr<Vm> vm) {
  assert(vm != nullptr);
  const ResourceVector demand = vm->size();
  const bool low_priority = vm->deflatable();

  // Reclamation happens only under resource pressure (Section 5): prefer a
  // server with enough untouched free capacity, and fall back to reclaimable
  // availability only when none exists. What is reclaimable depends on the
  // strategy and the arrival's priority: deflation-managed clusters can
  // shrink low-priority VMs for anyone; preemption-only clusters can revoke
  // low-priority VMs for high-priority arrivals but give low-priority
  // arrivals only free space.
  std::vector<AvailabilityMode> passes = {AvailabilityMode::kFreeOnly};
  if (config_.strategy == ReclamationStrategy::kDeflation) {
    passes.push_back(AvailabilityMode::kFreePlusDeflatable);
  }
  if (!low_priority) {
    // High priority displaces low priority outright as the last resort.
    passes.push_back(AvailabilityMode::kFreePlusPreemptible);
  }
  Result<size_t> placed = Error{"unplaced"};
  for (const AvailabilityMode mode : passes) {
    placed = PlaceVm(demand, servers(), config_.placement, rng_, mode);
    if (placed.ok()) {
      break;
    }
  }
  MetricsRegistry& registry = telemetry_->metrics();
  if (!placed.ok()) {
    registry.Add(metrics_.rejected);
    telemetry_->trace().Record(TraceEventKind::kRejection, CascadeLayer::kNone,
                               vm->id(), -1, demand, ResourceVector::Zero(), 0);
    return Error{placed.error()};
  }
  Server& server = *servers_[placed.value()];

  // Placement outcome for the trace: 1 = fit into free capacity,
  // 2 = deflation made room, 3 = preemption made room.
  int32_t placement_outcome = 1;
  if (!demand.AllLeq(server.Free())) {
    if (config_.strategy == ReclamationStrategy::kDeflation) {
      placement_outcome = 2;
      LocalController* controller = controllers_[placed.value()].get();
      const ReclaimResult reclaim = controller->MakeRoom(demand);
      for (const VmId victim : reclaim.preempted) {
        registry.Add(metrics_.preempted);
        preempted_since_take_.push_back(victim);
      }
      if (!reclaim.deflated.empty()) {
        registry.Add(metrics_.deflation_ops);
      }
      if (!reclaim.success) {
        registry.Add(metrics_.rejected);
        telemetry_->trace().Record(TraceEventKind::kRejection, CascadeLayer::kNone,
                                   vm->id(), server.id(), demand, reclaim.freed, 2);
        return Error{"reclamation failed on chosen server"};
      }
    } else {
      placement_outcome = 3;
      if (!PreemptForDemand(server, demand)) {
        registry.Add(metrics_.rejected);
        telemetry_->trace().Record(TraceEventKind::kRejection, CascadeLayer::kNone,
                                   vm->id(), server.id(), demand,
                                   ResourceVector::Zero(), 3);
        return Error{"preemption could not free enough resources"};
      }
    }
  }

  registry.Add(metrics_.launched);
  if (low_priority) {
    registry.Add(metrics_.launched_low_priority);
  }
  telemetry_->trace().Record(TraceEventKind::kPlacement, CascadeLayer::kNone, vm->id(),
                             server.id(), demand, server.Free(), placement_outcome);
  server.AddVm(std::move(vm));
  return server.id();
}

bool ClusterManager::PreemptForDemand(Server& server, const ResourceVector& demand) {
  while (!demand.AllLeq(server.Free())) {
    // Revoke the low-priority VM freeing the most of the bottleneck
    // resource (standard eviction heuristic).
    Vm* victim = nullptr;
    double victim_gain = -1.0;
    const ResourceVector need = (demand - server.Free()).ClampNonNegative();
    for (const auto& vm : server.vms()) {
      if (vm->priority() != VmPriority::kLow) {
        continue;
      }
      const double gain = vm->effective().Min(need).SafeDivide(server.capacity()).Sum();
      if (gain > victim_gain) {
        victim_gain = gain;
        victim = vm.get();
      }
    }
    if (victim == nullptr) {
      return false;
    }
    const VmId id = victim->id();
    telemetry_->metrics().Add(metrics_.preempted);
    telemetry_->trace().Record(TraceEventKind::kPreemption, CascadeLayer::kNone, id,
                               server.id(), need, victim->effective(), 0);
    victim->set_state(VmState::kPreempted);
    server.RemoveVm(id);
    preempted_since_take_.push_back(id);
  }
  return true;
}

void ClusterManager::CompleteVm(VmId id) {
  for (size_t i = 0; i < servers_.size(); ++i) {
    Server& server = *servers_[i];
    if (server.FindVm(id) == nullptr) {
      continue;
    }
    std::unique_ptr<Vm> vm = server.RemoveVm(id);
    vm->set_state(VmState::kCompleted);
    controllers_[i]->UnregisterAgent(id);
    telemetry_->metrics().Add(metrics_.completed);
    telemetry_->trace().Record(TraceEventKind::kVmComplete, CascadeLayer::kNone, id,
                               server.id(), vm->size(), vm->effective(), 0);
    // Freed resources flow back to deflated VMs (reverse cascade).
    if (config_.strategy == ReclamationStrategy::kDeflation) {
      controllers_[i]->ReinflateAll();
    }
    return;
  }
}

Vm* ClusterManager::FindVm(VmId id) {
  for (const auto& server : servers_) {
    if (Vm* vm = server->FindVm(id)) {
      return vm;
    }
  }
  return nullptr;
}

Server* ClusterManager::ServerOf(VmId id) {
  for (const auto& server : servers_) {
    if (server->FindVm(id) != nullptr) {
      return server.get();
    }
  }
  return nullptr;
}

std::vector<VmId> ClusterManager::TakePreempted() {
  std::vector<VmId> out;
  out.swap(preempted_since_take_);
  return out;
}

double ClusterManager::Utilization() const {
  ResourceVector allocated;
  ResourceVector capacity;
  for (const auto& server : servers_) {
    allocated += server->Allocated();
    capacity += server->capacity();
  }
  double util = 0.0;
  for (const ResourceKind kind : kAllResources) {
    if (capacity[kind] > 0.0) {
      util = std::max(util, allocated[kind] / capacity[kind]);
    }
  }
  return std::min(util, 1.0);
}

double ClusterManager::Overcommitment() const {
  ResourceVector nominal;
  ResourceVector capacity;
  for (const auto& server : servers_) {
    capacity += server->capacity();
    for (const auto& vm : server->vms()) {
      nominal += vm->size();
    }
  }
  double oc = 0.0;
  for (const ResourceKind kind : kAllResources) {
    if (capacity[kind] > 0.0) {
      oc = std::max(oc, nominal[kind] / capacity[kind]);
    }
  }
  return oc;
}

std::vector<double> ClusterManager::PerServerOvercommitment() const {
  std::vector<double> out;
  out.reserve(servers_.size());
  for (const auto& server : servers_) {
    out.push_back(server->NominalOvercommitment());
  }
  return out;
}

}  // namespace defl
