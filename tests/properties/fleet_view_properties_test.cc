// Property test for the structure-of-arrays placement mirror (DESIGN.md
// §12): after ANY sequence of cluster operations -- launches (which deflate
// or preempt under pressure), completions, explicit deflations, reinflations,
// crashes, recoveries -- a Refresh()ed FleetView row must be EXACTLY equal
// (bitwise, not approximately) to the owning server's accessors, and the
// SoA placement scan (PlaceVmFleet) must return the same decision as the
// object-graph scan (PlaceVm) for every policy and availability mode,
// including the 2-choices RNG draw sequence. Runs the whole sequence at
// thread counts {1, 2, 7}: the sharded SoA scans must be invisible in the
// outcome. Seeded from DEFL_FAULT_SEED so CI can run a seed matrix.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/cluster/cluster_manager.h"
#include "src/cluster/placement.h"

namespace defl {
namespace {

uint64_t TestSeed() {
  const char* env = std::getenv("DEFL_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

std::unique_ptr<Vm> RandomVm(VmId id, Rng& rng) {
  VmSpec spec;
  spec.name = "vm" + std::to_string(id);
  spec.size = ResourceVector(static_cast<double>(rng.UniformInt(1, 12)),
                             static_cast<double>(rng.UniformInt(1, 12)) * 4096.0);
  spec.priority = rng.Uniform(0.0, 1.0) < 0.6 ? VmPriority::kLow : VmPriority::kHigh;
  spec.min_size = spec.size * rng.Uniform(0.0, 0.6);
  return std::make_unique<Vm>(id, spec);
}

// Every mirrored row, after Refresh(), must be bitwise-equal to what the
// server's accessors report right now (RowConsistent re-reads the accessors
// and compares with operator==, i.e. exact doubles). A mutation path that
// forgot to notify the observer leaves a stale row and fails here.
void ExpectMirrorExact(ClusterManager& manager) {
  FleetView& fleet = manager.fleet();
  fleet.Refresh();
  ASSERT_FALSE(fleet.HasDirty());
  for (size_t row = 0; row < fleet.size(); ++row) {
    EXPECT_TRUE(fleet.RowConsistent(row)) << "row " << row;
  }
}

// The SoA scan and the object-graph scan must agree exactly -- same
// feasibility verdict, same chosen server, same RNG consumption -- for
// every policy x availability mode, sharded or not.
void ExpectScanEquivalent(ClusterManager& manager, Rng& rng) {
  std::vector<Server*> servers = manager.servers();
  std::vector<uint32_t> rows;
  rows.reserve(servers.size());
  for (const Server* server : servers) {
    rows.push_back(static_cast<uint32_t>(server->id()));
  }
  const ResourceVector demand(static_cast<double>(rng.UniformInt(1, 12)),
                              static_cast<double>(rng.UniformInt(1, 12)) * 4096.0);
  for (const PlacementPolicy policy :
       {PlacementPolicy::kBestFit, PlacementPolicy::kFirstFit,
        PlacementPolicy::kTwoChoices}) {
    for (const AvailabilityMode mode :
         {AvailabilityMode::kFreeOnly, AvailabilityMode::kFreePlusDeflatable,
          AvailabilityMode::kFreePlusPreemptible}) {
      const std::array<uint64_t, 4> saved = rng.SaveState();
      const Result<size_t> object_pick =
          PlaceVm(demand, servers, policy, rng, mode);
      rng.RestoreState(saved);
      const Result<size_t> fleet_pick =
          PlaceVmFleet(demand, manager.fleet(), rows, policy, rng, mode,
                       manager.thread_pool());
      ASSERT_EQ(object_pick.ok(), fleet_pick.ok())
          << PlacementPolicyName(policy) << " mode " << static_cast<int>(mode);
      if (object_pick.ok()) {
        EXPECT_EQ(object_pick.value(), fleet_pick.value())
            << PlacementPolicyName(policy) << " mode " << static_cast<int>(mode);
      }
    }
  }
}

class FleetViewPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FleetViewPropertyTest, RandomOpSequenceKeepsMirrorExact) {
  const uint64_t seed = TestSeed() + static_cast<uint64_t>(GetParam()) * 7919;
  Rng rng(seed);
  ClusterConfig config;
  config.strategy = GetParam() % 2 == 0 ? ReclamationStrategy::kDeflation
                                        : ReclamationStrategy::kPreemptionOnly;
  config.controller.mode = GetParam() % 3 == 0 ? DeflationMode::kVmLevel
                                               : DeflationMode::kCascade;
  config.placement = static_cast<PlacementPolicy>(GetParam() % 3);
  const int kThreadCounts[] = {1, 2, 7};
  config.threads = kThreadCounts[GetParam() % 3];
  const int num_servers = 5;
  ClusterManager manager(num_servers, ResourceVector(16.0, 65536.0), config);

  std::vector<VmId> live;
  VmId next_id = 1;
  for (int op = 0; op < 300; ++op) {
    const int64_t roll = rng.UniformInt(0, 99);
    if (roll < 45) {  // launch (may cascade-deflate or preempt under load)
      const VmId id = next_id++;
      if (manager.LaunchVm(RandomVm(id, rng)).ok()) {
        live.push_back(id);
      }
    } else if (roll < 60 && !live.empty()) {  // complete
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      manager.CompleteVm(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (roll < 72 && !live.empty()) {  // explicit deflate
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      Server* server = manager.ServerOf(live[pick]);
      if (server != nullptr) {
        Vm* vm = server->FindVm(live[pick]);
        manager.controller(server->id())
            ->DeflateVm(live[pick], vm->deflatable_amount() * rng.Uniform(0.0, 1.0));
      }
    } else if (roll < 80) {  // reinflate one server
      const ServerId target = rng.UniformInt(0, num_servers - 1);
      if (manager.health(target) != ServerHealth::kDown) {
        manager.controller(target)->ReinflateAll();
      }
    } else if (roll < 88) {  // crash (evacuates, re-places, revokes)
      manager.CrashServer(rng.UniformInt(0, num_servers - 1));
    } else if (roll < 96) {  // recover + promote
      const ServerId target = rng.UniformInt(0, num_servers - 1);
      manager.RecoverServer(target);
      manager.MarkHealthy(target);
    } else {  // degrade
      manager.DegradeServer(rng.UniformInt(0, num_servers - 1));
    }
    // Preemptions and crash revocations retire VMs behind our back.
    std::unordered_set<VmId> gone;
    for (const VmId id : manager.TakePreempted()) {
      gone.insert(id);
    }
    if (!gone.empty()) {
      std::erase_if(live, [&gone](VmId id) { return gone.count(id) > 0; });
    }
    std::erase_if(live, [&manager](VmId id) { return manager.FindVm(id) == nullptr; });

    ExpectMirrorExact(manager);
    ExpectScanEquivalent(manager, rng);
    if (::testing::Test::HasFailure()) {
      FAIL() << "fleet view drifted at op " << op << " (seed " << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FleetViewPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace defl
