#include "src/apps/kernel_compile.h"

#include <algorithm>

namespace defl {

KernelCompileModel::KernelCompileModel(const KernelCompileConfig& config)
    : config_(config) {}

double KernelCompileModel::Throughput(const EffectiveAllocation& alloc) const {
  // OOM under forced memory unplug.
  if (alloc.guest_memory_mb < config_.footprint_mb) {
    return 0.0;
  }
  const double slowdown =
      AmdahlSlowdown(config_.parallel_fraction, alloc.visible_cpus, alloc.cpu_capacity,
                     config_.baseline_cpus, config_.costs);
  if (slowdown <= 0.0) {
    return 0.0;
  }
  // Memory deflation below the working set stalls the compiler on swap;
  // compilation has decent locality, so use the shared LRU model with a
  // moderate skew.
  double swap_factor = 1.0;
  if (alloc.memory_overcommitted() && alloc.resident_memory_mb < config_.footprint_mb) {
    const double p_swap =
        LruSwapHitFraction(config_.footprint_mb, alloc.resident_memory_mb, 0.8);
    swap_factor = 1.0 + 12.0 * p_swap;  // calibrated mild thrash penalty
  }
  // Losing page cache to hot-unplug sends the build's re-reads to disk.
  double cache_factor = 1.0;
  if (config_.page_cache_working_set_mb > 0.0) {
    const double cache_hit =
        std::min(1.0, alloc.page_cache_mb / config_.page_cache_working_set_mb);
    cache_factor = 1.0 + config_.cold_cache_penalty * (1.0 - cache_hit);
  }
  return 1.0 / (slowdown * swap_factor * cache_factor);
}

double KernelCompileModel::NormalizedPerformance(const EffectiveAllocation& alloc) const {
  return Throughput(alloc);
}

}  // namespace defl
