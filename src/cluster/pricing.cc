#include "src/cluster/pricing.h"

namespace defl {
namespace {

RevenueReport Finish(RevenueReport report, double effective_cpu_hours) {
  report.effective_cost_per_cpu_hour =
      effective_cpu_hours > 0.0
          ? (report.customer_cost + report.customer_loss) / effective_cpu_hours
          : 0.0;
  return report;
}

}  // namespace

RevenueReport PriceDeflatableFlat(const UsageSummary& usage, const PricingModel& model) {
  RevenueReport report;
  const double rate = model.on_demand_cpu_hour * (1.0 - model.deflatable_discount);
  report.customer_cost = usage.low_pri_nominal_cpu_hours * rate;
  report.provider_revenue = report.customer_cost;
  // Deflation causes no fail-stop losses; rare preemptions still do.
  report.customer_loss = static_cast<double>(usage.preemptions) *
                         model.preemption_loss_cpu_hours * model.on_demand_cpu_hour;
  return Finish(report, usage.low_pri_effective_cpu_hours);
}

RevenueReport PriceDeflatableRaaS(const UsageSummary& usage, const PricingModel& model) {
  RevenueReport report;
  const double rate = model.on_demand_cpu_hour * (1.0 - model.deflatable_discount);
  // Billed only for what was actually allocated.
  report.customer_cost = usage.low_pri_effective_cpu_hours * rate;
  report.provider_revenue = report.customer_cost;
  report.customer_loss = static_cast<double>(usage.preemptions) *
                         model.preemption_loss_cpu_hours * model.on_demand_cpu_hour;
  return Finish(report, usage.low_pri_effective_cpu_hours);
}

RevenueReport PricePreemptible(const UsageSummary& usage, const PricingModel& model) {
  RevenueReport report;
  const double rate = model.on_demand_cpu_hour * (1.0 - model.preemptible_discount);
  report.customer_cost = usage.low_pri_nominal_cpu_hours * rate;
  report.provider_revenue = report.customer_cost;
  report.customer_loss = static_cast<double>(usage.preemptions) *
                         model.preemption_loss_cpu_hours * model.on_demand_cpu_hour;
  return Finish(report, usage.low_pri_effective_cpu_hours);
}

}  // namespace defl
