// Property test for the durability layer (DESIGN.md §13): a DurableSession
// killed with REAL SIGKILLs -- at seeded random crash points inside the WAL
// append, the checkpoint protocol, and the atomic rename dance -- and then
// recovered must finish with output byte-identical to an uninterrupted run.
// Kill chains span generations (a recovery can itself be killed), and the
// thread count is re-rolled on every generation, so the determinism contract
// is exercised across the crash boundary too. Kill points are drawn from
// DEFL_FAULT_SEED so CI's seed matrix explores different schedules each leg.
//
// The killing happens in forked children; the parent stays single-threaded
// (its own sessions run threads=1 and are destroyed before any fork), so the
// test is safe under TSan.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <sstream>
#include <string>

#include "src/cluster/durable_session.h"
#include "src/cluster/sim_session.h"
#include "src/common/crash_point.h"
#include "src/common/rng.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

const int kThreadCounts[] = {1, 2, 7};

// Crash points a generation can die at, covering a torn WAL record, a
// durable-but-unacted command, both halves of the checkpoint protocol, and
// both sides of the atomic rename.
const char* const kCrashPoints[] = {
    "wal-append-torn",    "wal-append-synced",     "ckpt-marker-synced",
    "atomic-tmp-synced",  "atomic-renamed",        "ckpt-snapshot-written",
};

uint64_t TestSeed() {
  const char* env = std::getenv("DEFL_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

ClusterSimConfig BaseConfig() {
  ClusterSimConfig config;
  config.num_servers = 10;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 2.0 * 3600.0;
  config.trace.max_lifetime_s = 3600.0;
  config.trace.seed = TestSeed();
  config.trace =
      WithTargetLoad(config.trace, 1.5, config.num_servers, config.server_capacity);
  config.cluster.strategy = ReclamationStrategy::kDeflation;
  config.sample_period_s = 300.0;
  config.reinflate_period_s = 600.0;
  config.predictive_holdback = true;
  return config;
}

std::string Export(const TelemetryContext& telemetry) {
  std::ostringstream os;
  telemetry.metrics().DumpJson(os);
  os << "\n";
  telemetry.trace().DumpJsonl(os);
  return os.str();
}

std::string RunUninterrupted(ClusterSimConfig config) {
  config.cluster.threads = 1;
  TelemetryContext telemetry;
  config.telemetry = &telemetry;
  Result<SimSession> session = SimSession::Open(config);
  EXPECT_TRUE(session.ok()) << session.error();
  session.value().Finish();
  return Export(telemetry);
}

// One forked generation: arm a crash point (maybe), create-or-recover the
// durable run, drive it to completion. Exit codes: 0 = finished, SIGKILL =
// died at the armed point (expected), anything else = a real failure.
void GenerationChild(const ClusterSimConfig& config, const std::string& dir,
                     int threads, const char* crash_point, int64_t countdown) {
  if (crash_point != nullptr) {
    ArmCrashPointForTest(crash_point, countdown);
  }
  // A real telemetry sink (trace enabled) so checkpoints carry the trace,
  // exactly as the CLI's --durable-dir path does.
  TelemetryContext telemetry;
  DurableSession::Options options;
  options.dir = dir;
  options.checkpoint_every_s = 600.0;
  options.keep_checkpoints = 2;
  options.threads = threads;
  Result<DurableSession> durable = Error{"unopened"};
  if (DurableSession::CanRecover(dir)) {
    options.telemetry = &telemetry;
    durable = DurableSession::Recover(options);
  } else {
    ClusterSimConfig fresh = config;
    fresh.cluster.threads = threads;
    fresh.telemetry = &telemetry;
    durable = DurableSession::Create(fresh, options);
  }
  if (!durable.ok()) {
    std::fprintf(stderr, "generation: %s\n", durable.error().c_str());
    ::_exit(3);
  }
  const Result<ClusterSimResult> result = durable.value().Finish();
  ::_exit(result.ok() ? 0 : 4);
}

// Drives generations until one finishes; returns how many were SIGKILLed.
// `plan(generation)` yields the crash point (or nullptr) for each generation.
template <typename Plan>
int RunKillChain(const ClusterSimConfig& config, const std::string& dir,
                 Rng& rng, Plan plan, int max_generations = 32) {
  int kills = 0;
  for (int generation = 0; generation < max_generations; ++generation) {
    const int threads =
        kThreadCounts[static_cast<size_t>(rng.UniformInt(0, 2))];
    const char* point = plan(generation);
    const int64_t countdown = rng.UniformInt(1, 6);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ADD_FAILURE() << "fork failed";
      return kills;
    }
    if (pid == 0) {
      GenerationChild(config, dir, threads, point, countdown);
    }
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    if (WIFEXITED(status)) {
      EXPECT_EQ(WEXITSTATUS(status), 0) << "generation " << generation
                                        << " failed (not a SIGKILL)";
      return kills;
    }
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      ADD_FAILURE() << "generation " << generation << " died oddly: status "
                    << status;
      return kills;
    }
    ++kills;
  }
  ADD_FAILURE() << "no generation finished within " << max_generations;
  return kills;
}

// Read-only recovery of the finished run, exported for comparison.
std::string RecoveredExport(const std::string& dir) {
  TelemetryContext telemetry;
  SimSession::RestoreOptions options;
  options.telemetry = &telemetry;
  options.threads = 1;
  Result<SimSession> session = SimSession::Recover(dir, options);
  EXPECT_TRUE(session.ok()) << session.error();
  if (!session.ok()) {
    return "";
  }
  session.value().Finish();
  return Export(telemetry);
}

class DurableRecoveryTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/durable_recovery_" +
           std::to_string(::getpid()) + "_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(DurableRecoveryTest, SeededKillChainsRecoverByteIdentically) {
  const ClusterSimConfig config = BaseConfig();
  const std::string reference = RunUninterrupted(config);
  ASSERT_FALSE(reference.empty());
  Rng rng(TestSeed() ^ 0xdead5afeULL);
  // Each generation dies at a seeded crash point until three kills landed,
  // then runs clean. Double/triple-kill chains arise by construction; the
  // thread count is re-rolled per generation.
  int planned_kills = 3;
  const int kills = RunKillChain(config, dir_, rng, [&](int) -> const char* {
    if (planned_kills <= 0) {
      return nullptr;
    }
    --planned_kills;
    return kCrashPoints[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(std::size(kCrashPoints)) - 1))];
  });
  EXPECT_GE(kills, 1) << "no crash point fired; the chain tested nothing";
  EXPECT_EQ(reference, RecoveredExport(dir_));
}

TEST_F(DurableRecoveryTest, KillsDuringRecoveryItselfStillConverge) {
  const ClusterSimConfig config = BaseConfig();
  const std::string reference = RunUninterrupted(config);
  Rng rng(TestSeed() ^ 0x0c0ffee0ULL);
  // Every generation is killed (including the recovery generations) until
  // the chain runs dry at five kills -- recovery must make durable progress
  // each time (auto-checkpoints during replay), not restart from scratch.
  int planned_kills = 5;
  RunKillChain(config, dir_, rng, [&](int) -> const char* {
    if (planned_kills <= 0) {
      return nullptr;
    }
    --planned_kills;
    // Mid-WAL-append and mid-checkpoint are the tender spots during replay.
    return planned_kills % 2 == 0 ? "ckpt-marker-synced" : "wal-append-synced";
  });
  EXPECT_EQ(reference, RecoveredExport(dir_));
}

TEST_F(DurableRecoveryTest, RecoverIsReadOnly) {
  const ClusterSimConfig config = BaseConfig();
  Rng rng(TestSeed() ^ 0x00b5e55edULL);
  RunKillChain(config, dir_, rng, [](int) { return nullptr; });
  // Snapshot the directory contents, recover twice, and verify nothing
  // (names or bytes) changed and both recoveries agree.
  std::ostringstream listing_before;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    listing_before << entry.path().filename().string() << ":"
                   << std::filesystem::file_size(entry.path()) << ";";
  }
  const std::string first = RecoveredExport(dir_);
  const std::string second = RecoveredExport(dir_);
  EXPECT_EQ(first, second);
  std::ostringstream listing_after;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    listing_after << entry.path().filename().string() << ":"
                  << std::filesystem::file_size(entry.path()) << ";";
  }
  EXPECT_EQ(listing_before.str(), listing_after.str());
}

TEST_F(DurableRecoveryTest, DirectoryKilledBeforeGenesisIsNotRecoverable) {
  const ClusterSimConfig config = BaseConfig();
  // Die inside the very first checkpoint's snapshot write: the directory
  // holds a WAL (with a marker) but no usable snapshot file yet.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    GenerationChild(config, dir_, 1, "atomic-tmp-synced", 1);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  // Nothing was acknowledged, so there is nothing to recover -- the driver
  // must start fresh, which the next generation does.
  EXPECT_FALSE(DurableSession::CanRecover(dir_));
  const std::string reference = RunUninterrupted(config);
  Rng rng(TestSeed());
  RunKillChain(config, dir_, rng, [](int) { return nullptr; });
  EXPECT_EQ(reference, RecoveredExport(dir_));
}

}  // namespace
}  // namespace defl
