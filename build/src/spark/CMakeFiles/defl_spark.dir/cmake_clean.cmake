file(REMOVE_RECURSE
  "CMakeFiles/defl_spark.dir/cluster_binding.cc.o"
  "CMakeFiles/defl_spark.dir/cluster_binding.cc.o.d"
  "CMakeFiles/defl_spark.dir/engine.cc.o"
  "CMakeFiles/defl_spark.dir/engine.cc.o.d"
  "CMakeFiles/defl_spark.dir/experiment.cc.o"
  "CMakeFiles/defl_spark.dir/experiment.cc.o.d"
  "CMakeFiles/defl_spark.dir/policy.cc.o"
  "CMakeFiles/defl_spark.dir/policy.cc.o.d"
  "CMakeFiles/defl_spark.dir/workload.cc.o"
  "CMakeFiles/defl_spark.dir/workload.cc.o.d"
  "libdefl_spark.a"
  "libdefl_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defl_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
