#include "src/spark/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/cascade.h"

namespace defl {
namespace {

class EngineFixture {
 public:
  explicit EngineFixture(SparkWorkload workload, int num_workers = 8) {
    for (int i = 0; i < num_workers; ++i) {
      VmSpec spec;
      spec.name = "w" + std::to_string(i);
      spec.size = ResourceVector(4.0, 16384.0, 200.0, 1250.0);
      spec.priority = VmPriority::kLow;
      vms.push_back(std::make_unique<Vm>(i, spec));
      vms.back()->set_state(VmState::kRunning);
    }
    std::vector<Vm*> raw;
    for (auto& vm : vms) {
      raw.push_back(vm.get());
    }
    engine = std::make_unique<SparkEngine>(&sim, std::move(workload), raw);
  }

  Simulator sim;
  std::vector<std::unique_ptr<Vm>> vms;
  std::unique_ptr<SparkEngine> engine;
};

// A small two-stage workload for precise assertions: 32 source partitions
// (1s each) feeding a wide stage of 32 partitions (2s each).
SparkWorkload TinyWorkload() {
  SparkWorkload wl;
  wl.name = "tiny";
  wl.records_per_task = 10.0;
  wl.rdds.push_back(RddDef{0, "src", -1, -1, false, 32, 1.0, 50.0, true});
  wl.rdds.push_back(RddDef{1, "agg", 0, -1, true, 32, 2.0, 10.0, false});
  return wl;
}

TEST(SparkEngineTest, BaselineRunCompletesAtIdealMakespan) {
  EngineFixture f(TinyWorkload());
  f.engine->Start();
  f.sim.Run();
  ASSERT_TRUE(f.engine->done());
  // 32 slots, 32 tasks/stage, full speed: 1s + 2s = 3s exactly.
  EXPECT_NEAR(f.engine->finish_time(), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(f.engine->Progress(), 1.0);
  EXPECT_EQ(f.engine->tasks_completed(), 64);
  EXPECT_EQ(f.engine->recomputed_tasks(), 0);
}

TEST(SparkEngineTest, FewerSlotsRunInWaves) {
  EngineFixture f(TinyWorkload(), /*num_workers=*/4);  // 16 slots
  f.engine->Start();
  f.sim.Run();
  ASSERT_TRUE(f.engine->done());
  // Two waves per stage: 2*1s + 2*2s = 6s.
  EXPECT_NEAR(f.engine->finish_time(), 6.0, 1e-9);
}

TEST(SparkEngineTest, StageBarrierIsRespected) {
  EngineFixture f(TinyWorkload());
  f.engine->Start();
  // At t = 0.5 only stage-0 tasks exist; no stage-1 completions before 1.0.
  f.sim.Run(2.0);
  for (const auto& c : f.engine->completion_log()) {
    if (c.stage == 1) {
      EXPECT_GE(c.time, 1.0 + 2.0 - 1e-9);
    }
  }
}

TEST(SparkEngineTest, VmLevelDeflationSlowsTasksDown) {
  EngineFixture f(TinyWorkload());
  CascadeController cascade(DeflationMode::kVmLevel);
  f.engine->Start();
  f.sim.At(0.5, [&] {
    for (auto& vm : f.vms) {
      vm->guest_os().set_app_used_mb(12000.0);
      cascade.Deflate(*vm, nullptr, vm->size() * 0.5);
    }
    f.engine->OnAllocationChanged();
  });
  f.sim.Run();
  ASSERT_TRUE(f.engine->done());
  EXPECT_GT(f.engine->finish_time(), 3.5);
  EXPECT_EQ(f.engine->tasks_killed(), 0);  // nothing dies under VM-level
}

TEST(SparkEngineTest, SingleDeflatedVmCreatesStraggler) {
  EngineFixture f(TinyWorkload());
  CascadeController cascade(DeflationMode::kHypervisorOnly);
  f.engine->Start();
  // Deflate only worker 0 by 75% right away: its 4 running tasks crawl and
  // the stage barrier waits for them.
  f.sim.At(1e-6, [&] {
    cascade.Deflate(*f.vms[0], nullptr, f.vms[0]->size() * 0.75);
    f.engine->OnAllocationChanged();
  });
  f.sim.Run();
  ASSERT_TRUE(f.engine->done());
  EXPECT_GT(f.engine->finish_time(), 5.0);  // >> the 3s ideal
}

TEST(SparkEngineTest, SelfDeflationKillsExecutorsAndFreesResources) {
  EngineFixture f(TinyWorkload());
  f.engine->Start();
  f.sim.At(0.5, [&] {
    const ResourceVector freed =
        f.engine->SelfDeflateVm(0, ResourceVector(2.0, 8192.0));
    EXPECT_DOUBLE_EQ(freed.cpu(), 2.0);
    EXPECT_GT(freed.memory_mb(), 0.0);
    EXPECT_EQ(f.engine->AliveExecutors(0), 2);
  });
  f.sim.Run();
  ASSERT_TRUE(f.engine->done());
  EXPECT_GT(f.engine->tasks_killed(), 0);  // slots were busy at t=0.5
}

TEST(SparkEngineTest, LostOutputsAreRecomputed) {
  EngineFixture f(TinyWorkload());
  f.engine->Start();
  // Kill all of worker 0's executors after stage 0 finished: its stage-0
  // outputs are needed by the (wide) stage 1 and must be recomputed.
  f.sim.At(1.5, [&] {
    f.engine->SelfDeflateVm(0, ResourceVector(4.0, 16384.0));
  });
  f.sim.Run();
  ASSERT_TRUE(f.engine->done());
  EXPECT_GT(f.engine->recomputed_tasks(), 0);
  EXPECT_GT(f.engine->finish_time(), 3.0);
}

TEST(SparkEngineTest, PreemptionStillCompletesViaLineage) {
  EngineFixture f(TinyWorkload());
  f.engine->Start();
  f.sim.At(1.5, [&] { f.engine->PreemptVm(0); });
  f.sim.Run();
  ASSERT_TRUE(f.engine->done());
  EXPECT_EQ(f.vms[0]->state(), VmState::kPreempted);
  EXPECT_GT(f.engine->recomputed_tasks(), 0);
  EXPECT_DOUBLE_EQ(f.engine->Progress(), 1.0);
}

TEST(SparkEngineTest, ReinflateRestoresParallelism) {
  EngineFixture f(TinyWorkload());
  f.engine->Start();
  f.sim.At(0.25, [&] { f.engine->SelfDeflateVm(0, ResourceVector(4.0, 16384.0)); });
  f.sim.At(0.5, [&] {
    f.engine->ReinflateVm(0, ResourceVector(4.0, 16384.0));
    EXPECT_EQ(f.engine->AliveExecutors(0), 4);
  });
  f.sim.Run();
  ASSERT_TRUE(f.engine->done());
}

TEST(SparkEngineTest, SynchronousWorkloadRollsBackOnKill) {
  SparkWorkload wl = MakeCnnWorkload(0.2);
  EngineFixture f(wl);
  f.engine->Start();
  // Let a few iterations finish, then kill an executor mid-iteration.
  f.sim.At(30.0, [&] { f.engine->SelfDeflateVm(0, ResourceVector(1.0, 0.0)); });
  f.sim.Run();
  ASSERT_TRUE(f.engine->done());
  EXPECT_GE(f.engine->rollbacks(), 1);
  // Without checkpointing, the completed iterations re-run.
  EXPECT_GT(f.engine->recomputed_tasks(), 0);
}

TEST(SparkEngineTest, CheckpointLimitsRollbackDamage) {
  // Same disruption, with and without checkpointing: the checkpointed run
  // recomputes less.
  auto run = [](bool checkpointing) {
    SparkWorkload wl = MakeCnnWorkload(0.2, checkpointing);
    EngineFixture f(wl);
    f.engine->Start();
    f.sim.At(20.0, [&] { f.engine->PreemptVm(0); });
    f.sim.Run();
    EXPECT_TRUE(f.engine->done());
    return f.engine->recomputed_tasks();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(SparkEngineTest, ProgressIsMonotonicUnderDisruption) {
  EngineFixture f(MakeKmeansWorkload(0.3));
  f.engine->Start();
  double last_progress = 0.0;
  f.sim.Every(1.0, [&] {
    const double p = f.engine->Progress();
    EXPECT_GE(p, last_progress - 1e-12);
    last_progress = p;
  });
  f.sim.At(10.0, [&] { f.engine->SelfDeflateVm(2, ResourceVector(4.0, 16384.0)); });
  f.sim.Run(100000.0);
  EXPECT_TRUE(f.engine->done());
}

TEST(SparkEngineTest, SyncFractionDistinguishesWorkloads) {
  EngineFixture als(MakeAlsWorkload());
  EngineFixture kmeans(MakeKmeansWorkload());
  EXPECT_GT(als.engine->SyncCostFraction(), 0.6);
  EXPECT_LT(kmeans.engine->SyncCostFraction(), 0.1);
}

// A join workload: two sources feeding a two-parent shuffle stage.
SparkWorkload JoinWorkload() {
  SparkWorkload wl;
  wl.name = "join";
  wl.records_per_task = 5.0;
  wl.rdds.push_back(RddDef{0, "left", -1, -1, false, 32, 1.0, 40.0, true});
  wl.rdds.push_back(RddDef{1, "right", -1, -1, false, 32, 1.0, 40.0, false});
  wl.rdds.push_back(RddDef{2, "joined", 1, 0, true, 32, 2.0, 10.0, false});
  return wl;
}

TEST(SparkEngineTest, JoinWaitsForBothParents) {
  EngineFixture f(JoinWorkload());
  f.engine->Start();
  f.sim.Run();
  ASSERT_TRUE(f.engine->done());
  // Both 32-task sources (2 waves on 32 slots) then the join: 1+1+2 = 4 s.
  EXPECT_NEAR(f.engine->finish_time(), 4.0, 1e-9);
  // No join task may complete before both parents are fully done (t=2).
  for (const auto& c : f.engine->completion_log()) {
    if (c.stage == 2) {
      EXPECT_GE(c.time, 2.0 + 2.0 - 1e-9);
    }
  }
}

TEST(SparkEngineTest, LosingEitherJoinParentTriggersRepair) {
  EngineFixture f(JoinWorkload());
  f.engine->Start();
  // Kill worker 0 right as the join stage starts: its share of BOTH parents'
  // outputs dies and must be recomputed before the join can finish.
  f.sim.At(2.5, [&] { f.engine->SelfDeflateVm(0, ResourceVector(4.0, 16384.0)); });
  f.sim.Run();
  ASSERT_TRUE(f.engine->done());
  EXPECT_GT(f.engine->recomputed_tasks(), 0);
  EXPECT_GT(f.engine->finish_time(), 4.0);
}

TEST(SparkEngineTest, AlsJoinLineageRecomputesRatings) {
  // The real ALS structure: losing executors mid-run forces re-reading the
  // cached ratings partitions those executors held, in addition to the
  // factor lineage.
  EngineFixture f(MakeAlsWorkload(0.2));
  f.engine->Start();
  f.sim.Every(1.0, [&] {
    if (!f.engine->done() && f.engine->Progress() > 0.5 &&
        f.engine->AliveExecutors(0) == 4) {
      f.engine->SelfDeflateVm(0, ResourceVector(4.0, 16384.0));
    }
  });
  f.sim.Run(100000.0);
  ASSERT_TRUE(f.engine->done());
  EXPECT_GT(f.engine->recomputed_tasks(), 0);
}

TEST(SparkEngineTest, CompletionLogCarriesRecords) {
  EngineFixture f(TinyWorkload());
  f.engine->Start();
  f.sim.Run();
  ASSERT_FALSE(f.engine->completion_log().empty());
  for (const auto& c : f.engine->completion_log()) {
    EXPECT_DOUBLE_EQ(c.records, 10.0);
    EXPECT_GE(c.time, 0.0);
  }
}

}  // namespace
}  // namespace defl
