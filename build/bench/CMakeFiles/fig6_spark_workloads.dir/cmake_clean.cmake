file(REMOVE_RECURSE
  "CMakeFiles/fig6_spark_workloads.dir/fig6_spark_workloads.cc.o"
  "CMakeFiles/fig6_spark_workloads.dir/fig6_spark_workloads.cc.o.d"
  "fig6_spark_workloads"
  "fig6_spark_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_spark_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
