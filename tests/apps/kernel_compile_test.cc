#include "src/apps/kernel_compile.h"

#include <gtest/gtest.h>

#include "src/apps/deflation_harness.h"

namespace defl {
namespace {

EffectiveAllocation FullAllocation() {
  Vm vm(0, StandardVmSpec());
  return vm.allocation();
}

double PerfAfterCpuDeflation(DeflationMode mode, double fraction) {
  KernelCompileModel model{KernelCompileConfig{}};
  const HarnessResult r = DeflateAppVm(model, mode,
                                       ResourceVector(fraction, 0.0, 0.0, 0.0),
                                       StandardVmSpec(), /*use_agent=*/false);
  return model.NormalizedPerformance(r.alloc);
}

TEST(KernelCompileTest, FullAllocationIsBaseline) {
  KernelCompileModel model{KernelCompileConfig{}};
  EXPECT_NEAR(model.NormalizedPerformance(FullAllocation()), 1.0, 1e-9);
}

TEST(KernelCompileTest, OsUnplugFollowsAmdahl) {
  // 4 -> 2 CPUs with p = 0.5: time 0.75/0.625, perf = 0.833.
  const double perf = PerfAfterCpuDeflation(DeflationMode::kOsOnly, 0.5);
  EXPECT_NEAR(perf, 0.625 / 0.75, 1e-6);
}

TEST(KernelCompileTest, HypervisorOnlyTrailsOsUnplug) {
  // Figure 5b: hypervisor-level CPU deflation is inferior to hot-unplug,
  // by up to ~20%, due to lock-holder preemption.
  for (const double f : {0.25, 0.5, 0.75}) {
    const double hv = PerfAfterCpuDeflation(DeflationMode::kHypervisorOnly, f);
    const double os = PerfAfterCpuDeflation(DeflationMode::kOsOnly, f);
    EXPECT_LT(hv, os) << "at deflation " << f;
    EXPECT_GT(hv, os * 0.7) << "at deflation " << f;
  }
}

TEST(KernelCompileTest, HybridDeflationAt75PercentLosesAboutThirty) {
  // Section 6.1: combining hypervisor and OS deflation allows 75% CPU
  // deflation with only ~30% performance loss.
  const double perf = PerfAfterCpuDeflation(DeflationMode::kVmLevel, 0.75);
  EXPECT_GT(perf, 0.55);
  EXPECT_LT(perf, 0.8);
}

TEST(KernelCompileTest, HybridAtLeastAsGoodAsEitherSingleLevel) {
  for (const double f : {0.25, 0.5, 0.6}) {
    const double hybrid = PerfAfterCpuDeflation(DeflationMode::kVmLevel, f);
    const double hv = PerfAfterCpuDeflation(DeflationMode::kHypervisorOnly, f);
    EXPECT_GE(hybrid, hv - 1e-9) << "at deflation " << f;
  }
}

TEST(KernelCompileTest, MonotonicInCpuDeflation) {
  double prev = 2.0;
  for (double f = 0.0; f <= 0.8; f += 0.1) {
    const double perf = PerfAfterCpuDeflation(DeflationMode::kVmLevel, f);
    EXPECT_LE(perf, prev + 1e-9) << "at deflation " << f;
    prev = perf;
  }
}

TEST(KernelCompileTest, MemorySwapHurtsBuild) {
  KernelCompileModel model{KernelCompileConfig{}};
  EffectiveAllocation alloc = FullAllocation();
  alloc.resident_memory_mb = model.config().footprint_mb * 0.5;
  const double perf = model.NormalizedPerformance(alloc);
  EXPECT_LT(perf, 0.8);
  EXPECT_GT(perf, 0.0);
}

TEST(KernelCompileTest, OomKillsBuild) {
  KernelCompileModel model{KernelCompileConfig{}};
  EffectiveAllocation alloc = FullAllocation();
  alloc.guest_memory_mb = model.config().footprint_mb - 1.0;
  EXPECT_DOUBLE_EQ(model.NormalizedPerformance(alloc), 0.0);
}

TEST(KernelCompileTest, LosingPageCacheSlowsTheBuild) {
  KernelCompileConfig config;
  config.page_cache_working_set_mb = 2048.0;
  KernelCompileModel model(config);
  EffectiveAllocation warm = FullAllocation();
  warm.page_cache_mb = 2048.0;
  EffectiveAllocation cold = warm;
  cold.page_cache_mb = 0.0;
  const double warm_perf = model.NormalizedPerformance(warm);
  const double cold_perf = model.NormalizedPerformance(cold);
  EXPECT_LT(cold_perf, warm_perf);
  EXPECT_NEAR(warm_perf / cold_perf, 1.0 + config.cold_cache_penalty, 1e-9);
}

TEST(KernelCompileTest, UnplugTakesCacheOnlyUnderDeepDeflation) {
  // With a warm cache in the guest, OS-level memory unplug first takes the
  // truly-free pool; the build only slows once the cache is consumed.
  KernelCompileConfig config;
  config.page_cache_working_set_mb = 2048.0;
  KernelCompileModel model(config);
  Vm vm(0, StandardVmSpec());
  vm.guest_os().set_app_used_mb(model.MemoryFootprintMb());
  vm.guest_os().set_page_cache_mb(2048.0);
  CascadeController controller(DeflationMode::kVmLevel);
  // 16384 - 4096 - 512 reserve = 11776 reclaimable; 9728 truly free.
  controller.Deflate(vm, nullptr, ResourceVector(0.0, 6000.0));
  const double after_light = model.NormalizedPerformance(vm.allocation());
  controller.Deflate(vm, nullptr, ResourceVector(0.0, 5000.0));
  const double after_deep = model.NormalizedPerformance(vm.allocation());
  EXPECT_GT(after_light, after_deep);
  EXPECT_LT(vm.guest_os().page_cache_mb(), 2048.0);
}

TEST(KernelCompileTest, HasNoAgentByDefault) {
  KernelCompileModel model{KernelCompileConfig{}};
  EXPECT_EQ(model.agent(), nullptr);
}

}  // namespace
}  // namespace defl
