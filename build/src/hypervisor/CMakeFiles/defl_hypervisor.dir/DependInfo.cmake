
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypervisor/guest_os.cc" "src/hypervisor/CMakeFiles/defl_hypervisor.dir/guest_os.cc.o" "gcc" "src/hypervisor/CMakeFiles/defl_hypervisor.dir/guest_os.cc.o.d"
  "/root/repo/src/hypervisor/latency.cc" "src/hypervisor/CMakeFiles/defl_hypervisor.dir/latency.cc.o" "gcc" "src/hypervisor/CMakeFiles/defl_hypervisor.dir/latency.cc.o.d"
  "/root/repo/src/hypervisor/overcommit.cc" "src/hypervisor/CMakeFiles/defl_hypervisor.dir/overcommit.cc.o" "gcc" "src/hypervisor/CMakeFiles/defl_hypervisor.dir/overcommit.cc.o.d"
  "/root/repo/src/hypervisor/server.cc" "src/hypervisor/CMakeFiles/defl_hypervisor.dir/server.cc.o" "gcc" "src/hypervisor/CMakeFiles/defl_hypervisor.dir/server.cc.o.d"
  "/root/repo/src/hypervisor/vm.cc" "src/hypervisor/CMakeFiles/defl_hypervisor.dir/vm.cc.o" "gcc" "src/hypervisor/CMakeFiles/defl_hypervisor.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/defl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/defl_resources.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
