// Cross-validation: the execution-based memcached simulation (real LRU +
// simulated kernel paging) against MemcachedModel's closed-form curves.
// The two implementations share no formulas, so agreement here validates
// the analytic model the Figure 5 benches are built on.
#include "src/apps/memcached_sim.h"

#include <gtest/gtest.h>

#include "src/apps/deflation_harness.h"

namespace defl {
namespace {

// Scaled-down config so the real LRU fits in test memory while the cache
// still dominates the VM (as in the Figure 5c setup), and small enough that
// a million requests drive the cache and the resident page set to steady
// state: 600k keys, a 360 MB / ~369k-item cache in a "512 MB" VM.
MemcachedConfig SmallConfig() {
  MemcachedConfig config;
  config.num_keys = 600000;
  // Flat enough that a million requests reach cache/paging steady state
  // (at higher skew the tail fills the structures too slowly to validate
  // steady-state formulas).
  config.zipf_s = 0.8;
  config.item_kb = 1.0;
  config.configured_cache_mb = 360.0;
  config.fill_fraction = 1.0;
  config.process_overhead_mb = 32.0;
  config.oom_reserve_mb = 16.0;
  return config;
}

VmSpec SmallVmSpec() {
  VmSpec spec;
  spec.name = "small-vm";
  spec.size = ResourceVector(4.0, 512.0, 200.0, 1250.0);
  spec.priority = VmPriority::kLow;
  return spec;
}

constexpr int64_t kRequests = 1000000;

TEST(MemcachedSimTest, UndeflatedMatchesAnalyticModel) {
  const MemcachedConfig config = SmallConfig();
  MemcachedModel model(config);
  Vm vm(0, SmallVmSpec());
  const EffectiveAllocation full = vm.allocation();

  const SimulatedMemcachedResult sim = RunSimulatedMemcached(config, full, kRequests, 7);
  // Che's approximation tracks the real LRU hit rate closely.
  EXPECT_NEAR(sim.measured_hit_rate, model.HitRate(), 0.03);
  // Throughput within 10%.
  const double analytic = model.ThroughputKGets(full);
  EXPECT_NEAR(sim.measured_kgets / analytic, 1.0, 0.10);
  EXPECT_EQ(sim.swap_stalls, 0);
}

TEST(MemcachedSimTest, MemoryDeflationMatchesAnalyticShape) {
  // Sweep hypervisor memory deflation; measured and analytic throughput
  // must degrade together. Both the hit rate (application LRU) and the
  // swap fraction (kernel page LRU) come from Che's approximation in the
  // model and from real LRU structures in the simulation.
  for (const double f : {0.2, 0.35, 0.5}) {
    const MemcachedConfig config = SmallConfig();
    MemcachedModel model(config);
    const HarnessResult r =
        DeflateAppVm(model, DeflationMode::kHypervisorOnly,
                     ResourceVector(0.0, f, 0.0, 0.0), SmallVmSpec(),
                     /*use_agent=*/false);
    const SimulatedMemcachedResult sim =
        RunSimulatedMemcached(config, r.alloc, kRequests, 11);
    const double analytic = model.ThroughputKGets(r.alloc);
    ASSERT_GT(analytic, 0.0);
    EXPECT_NEAR(sim.measured_kgets / analytic, 1.0, 0.12) << "deflation " << f;
    if (f >= 0.35) {
      EXPECT_GT(sim.swap_stalls, 0) << "deflation " << f;
    }
  }
}

TEST(MemcachedSimTest, SwapFractionGrowsWithDeflation) {
  double prev = -1.0;
  for (const double f : {0.2, 0.4, 0.55}) {
    const MemcachedConfig config = SmallConfig();
    MemcachedModel model(config);
    const HarnessResult r =
        DeflateAppVm(model, DeflationMode::kHypervisorOnly,
                     ResourceVector(0.0, f, 0.0, 0.0), SmallVmSpec(),
                     /*use_agent=*/false);
    const SimulatedMemcachedResult sim =
        RunSimulatedMemcached(config, r.alloc, kRequests, 13);
    EXPECT_GE(sim.measured_swap_fraction, prev) << "deflation " << f;
    prev = sim.measured_swap_fraction;
  }
  EXPECT_GT(prev, 0.01);
}

TEST(MemcachedSimTest, OomReturnsZero) {
  const MemcachedConfig config = SmallConfig();
  EffectiveAllocation tiny;
  tiny.visible_cpus = 4.0;
  tiny.cpu_capacity = 4.0;
  tiny.guest_memory_mb = 50.0;  // cannot hold the cache
  tiny.resident_memory_mb = 50.0;
  const SimulatedMemcachedResult sim =
      RunSimulatedMemcached(config, tiny, kRequests, 17);
  EXPECT_EQ(sim.requests, 0);
  EXPECT_DOUBLE_EQ(sim.measured_kgets, 0.0);
}

TEST(MemcachedSimTest, DeterministicForSameSeed) {
  const MemcachedConfig config = SmallConfig();
  Vm vm(0, SmallVmSpec());
  const SimulatedMemcachedResult a =
      RunSimulatedMemcached(config, vm.allocation(), 50000, 23);
  const SimulatedMemcachedResult b =
      RunSimulatedMemcached(config, vm.allocation(), 50000, 23);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_DOUBLE_EQ(a.measured_kgets, b.measured_kgets);
}

}  // namespace
}  // namespace defl
