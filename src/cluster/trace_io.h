// Trace file I/O: the paper drives its cluster simulator from the
// Eucalyptus workload traces; this reader/writer lets users plug in their
// own traces in a simple CSV schema (one VM per line):
//
//   arrival_s,lifetime_s,name,priority,cpus,memory_mb,disk_bw,net_bw,
//   min_cpus,min_memory_mb,min_disk_bw,min_net_bw
//
// Lines starting with '#' are comments. Parsing is strict: malformed rows
// produce an error naming the line, not silently skewed experiments.
#ifndef SRC_CLUSTER_TRACE_IO_H_
#define SRC_CLUSTER_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/cluster/trace.h"
#include "src/common/result.h"

namespace defl {

// Serializes a trace; the inverse of ParseTraceCsv.
std::string TraceToCsv(const std::vector<TraceEvent>& trace);
void WriteTraceCsv(const std::vector<TraceEvent>& trace, std::ostream& out);

// Parses a CSV trace. Events must be sorted by arrival time (verified).
Result<std::vector<TraceEvent>> ParseTraceCsv(const std::string& text);
Result<std::vector<TraceEvent>> ReadTraceCsv(std::istream& in);

// Convenience file wrappers.
Result<bool> SaveTraceFile(const std::vector<TraceEvent>& trace,
                           const std::string& path);
Result<std::vector<TraceEvent>> LoadTraceFile(const std::string& path);

}  // namespace defl

#endif  // SRC_CLUSTER_TRACE_IO_H_
