#include "src/core/cascade.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace defl {

const char* DeflationModeName(DeflationMode mode) {
  switch (mode) {
    case DeflationMode::kHypervisorOnly:
      return "hypervisor-only";
    case DeflationMode::kOsOnly:
      return "os-only";
    case DeflationMode::kVmLevel:
      return "vm-level";
    case DeflationMode::kCascade:
      return "cascade";
    case DeflationMode::kBalloonLevel:
      return "balloon-level";
  }
  return "?";
}

CascadeController::CascadeController(DeflationMode mode, LatencyParams latency_params)
    : mode_(mode), latency_model_(latency_params) {}

void CascadeController::AttachTelemetry(TelemetryContext* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    metrics_ = {};
    return;
  }
  MetricsRegistry& registry = telemetry_->metrics();
  metrics_.deflate_ops = registry.Counter("cascade/deflate/ops");
  metrics_.target_missed = registry.Counter("cascade/deflate/target_missed");
  metrics_.deadline_clipped = registry.Counter("cascade/deflate/deadline_clipped");
  metrics_.reinflate_ops = registry.Counter("cascade/reinflate/ops");
  metrics_.latency_s = registry.Distribution("cascade/deflate/latency_s");
  metrics_.app_freed_mb = registry.Distribution("cascade/app/freed_mb");
  metrics_.unplugged_mb = registry.Distribution("cascade/os/unplugged_mb");
  metrics_.hv_reclaimed_mb = registry.Distribution("cascade/hv/reclaimed_mb");
}

DeflationOutcome CascadeController::Deflate(Vm& vm, DeflationAgent* agent,
                                            const ResourceVector& target) {
  return Deflate(vm, agent, target, CascadeOptions{});
}

DeflationOutcome CascadeController::Deflate(Vm& vm, DeflationAgent* agent,
                                            const ResourceVector& target,
                                            const CascadeOptions& options) {
  DeflationOutcome out;
  out.requested = target.ClampNonNegative();

  const bool use_app = mode_ == DeflationMode::kCascade;
  const bool use_balloon = mode_ == DeflationMode::kBalloonLevel;
  const bool use_os =
      mode_ != DeflationMode::kHypervisorOnly && mode_ != DeflationMode::kBalloonLevel;
  const bool use_hv = mode_ != DeflationMode::kOsOnly;
  const LatencyParams& lat = latency_model_.params();
  // Remaining wall-clock budget for the upper (synchronous) stages.
  double budget_s = options.deadline_s > 0.0
                        ? std::max(0.0, options.deadline_s - lat.fixed_s)
                        : -1.0;

  GuestOs& guest = vm.guest_os();
  const double safe_free_before_mb = guest.SafelyUnpluggable().memory_mb();

  // --- Stage 1: application self-deflation (Figure 3: app_r). ---
  if (use_app && agent != nullptr) {
    ResourceVector app_target = out.requested;
    if (budget_s >= 0.0) {
      // Only ask the agent for what it can free within the time budget;
      // the rest falls through immediately (Section 5 timeout behavior).
      const double stage_budget = std::max(0.0, budget_s - lat.app_fixed_s);
      const double mem_cap = stage_budget * lat.app_free_mbps;
      if (app_target.memory_mb() > mem_cap) {
        app_target[ResourceKind::kMemory] = mem_cap;
        out.deadline_clipped = true;
      }
      if (mem_cap <= 0.0 && budget_s < lat.app_fixed_s) {
        app_target = ResourceVector::Zero();  // no time even for the round trip
      }
    }
    out.app_freed = agent->SelfDeflate(app_target).ClampNonNegative();
    // The app's footprint changed; tell the guest so unplug sees the freed
    // memory as reclaimable.
    guest.set_app_used_mb(agent->MemoryFootprintMb());
    out.breakdown.used_app_level = true;
    out.breakdown.app_freed_mb = out.app_freed.memory_mb();
    if (budget_s >= 0.0) {
      budget_s = std::max(0.0, budget_s - latency_model_.AppStageSeconds(out.breakdown));
    }
    if (telemetry_ != nullptr) {
      telemetry_->metrics().Observe(metrics_.app_freed_mb, out.app_freed.memory_mb());
      telemetry_->trace().Record(TraceEventKind::kCascadeStage,
                                 CascadeLayer::kApplication, vm.id(), -1, app_target,
                                 out.app_freed, 1);
    }
  }

  // --- Stage 2: guest-OS hot-unplug (Figure 3: hot_unplug). ---
  if (use_os) {
    ResourceVector unplug_target;
    bool force = false;
    if (mode_ == DeflationMode::kOsOnly) {
      // OS-only baseline: no fall-through exists, so the full target is
      // forced onto the unplug mechanism (this is what makes it unsafe --
      // the application can OOM, as in Figure 5a).
      unplug_target = out.requested;
      force = true;
    } else {
      // unplug_target = min(target, max(app_r, safely_free)) per Figure 3.
      unplug_target = out.app_freed.Max(guest.SafelyUnpluggable()).Min(out.requested);
    }
    if (budget_s >= 0.0) {
      // Clip unplug work to the remaining budget: already-freed memory
      // offlines fast, cold memory migrates slower; CPU unplug overlaps.
      const double freed_pool =
          std::max(safe_free_before_mb, out.app_freed.memory_mb());
      const double fast_mb =
          std::min({unplug_target.memory_mb(), freed_pool,
                    budget_s * lat.unplug_freed_mbps});
      const double cold_budget_s =
          std::max(0.0, budget_s - fast_mb / lat.unplug_freed_mbps);
      const double cold_cap_mb = cold_budget_s * lat.unplug_cold_mbps;
      const double mem_cap = fast_mb + cold_cap_mb;
      if (unplug_target.memory_mb() > mem_cap) {
        unplug_target[ResourceKind::kMemory] = mem_cap;
        out.deadline_clipped = true;
      }
      const double cpu_cap =
          std::floor(budget_s / latency_model_.params().cpu_unplug_s);
      if (unplug_target.cpu() > cpu_cap) {
        unplug_target[ResourceKind::kCpu] = std::max(0.0, cpu_cap);
        out.deadline_clipped = true;
      }
    }
    out.unplugged = guest.TryUnplug(unplug_target, force);
    // Unplugged resources are released to the host automatically; hypervisor
    // accounting can never exceed what the guest still sees.
    vm.ClampHvToVisible();

    const double unplugged_mb = out.unplugged.memory_mb();
    // Memory that was already free (app-freed or idle) is offlined cheaply;
    // the rest needs page migration.
    const double freed_pool_mb = std::max(safe_free_before_mb, out.app_freed.memory_mb());
    out.breakdown.unplug_freed_mb = std::min(unplugged_mb, freed_pool_mb);
    out.breakdown.unplug_cold_mb = unplugged_mb - out.breakdown.unplug_freed_mb;
    out.breakdown.unplug_cpus = out.unplugged.cpu();
    if (telemetry_ != nullptr) {
      telemetry_->metrics().Observe(metrics_.unplugged_mb, unplugged_mb);
      telemetry_->trace().Record(TraceEventKind::kCascadeStage, CascadeLayer::kGuestOs,
                                 vm.id(), -1, unplug_target, out.unplugged,
                                 force ? 2 : 1);
    }
  }

  // --- Stage 2 (alternative): balloon driver (comparison baseline). ---
  if (use_balloon && out.requested.memory_mb() > 0.0) {
    const double pinned = guest.BalloonInflate(out.requested.memory_mb());
    out.unplugged[ResourceKind::kMemory] = pinned;  // host-side: memory returned
    vm.ClampHvToVisible();
    out.breakdown.balloon_mb = pinned;
    if (telemetry_ != nullptr) {
      ResourceVector balloon_target;
      balloon_target[ResourceKind::kMemory] = out.requested.memory_mb();
      ResourceVector balloon_got;
      balloon_got[ResourceKind::kMemory] = pinned;
      telemetry_->trace().Record(TraceEventKind::kCascadeStage, CascadeLayer::kBalloon,
                                 vm.id(), -1, balloon_target, balloon_got, 1);
    }
  }

  // --- Stage 3: hypervisor overcommitment picks up the slack. ---
  if (use_hv) {
    const ResourceVector remaining = (out.requested - out.unplugged).ClampNonNegative();
    if (remaining.AnyPositive()) {
      out.hv_reclaimed = vm.HvReclaim(remaining);
      out.breakdown.hv_swap_mb = out.hv_reclaimed.memory_mb();
      if (telemetry_ != nullptr) {
        telemetry_->metrics().Observe(metrics_.hv_reclaimed_mb,
                                      out.hv_reclaimed.memory_mb());
        telemetry_->trace().Record(TraceEventKind::kCascadeStage,
                                   CascadeLayer::kHypervisor, vm.id(), -1, remaining,
                                   out.hv_reclaimed, 1);
      }
    }
  }

  out.latency_seconds = latency_model_.TotalSeconds(out.breakdown);
  if (faults_ != nullptr) {
    // Hypervisor ops under host contention: the swap/throttle stage takes a
    // multiple of its modeled time. The reclaimed amounts are unaffected --
    // the hypervisor layer is slow, never wrong.
    const FaultDecision spike =
        faults_->Sample(FaultKind::kHvLatencySpike, vm.id(), -1);
    if (spike.fired && spike.magnitude > 1.0) {
      out.latency_seconds += (spike.magnitude - 1.0) *
                             latency_model_.HypervisorStageSeconds(out.breakdown);
    }
  }
  if (telemetry_ != nullptr) {
    MetricsRegistry& registry = telemetry_->metrics();
    registry.Add(metrics_.deflate_ops);
    registry.Observe(metrics_.latency_s, out.latency_seconds);
    if (out.deadline_clipped) {
      registry.Add(metrics_.deadline_clipped);
    }
    int32_t outcome = out.TargetMet() ? kOutcomeTargetMet : 0;
    if (out.deadline_clipped) {
      outcome |= kOutcomeDeadlineClipped;
    }
    if (!out.TargetMet()) {
      registry.Add(metrics_.target_missed);
    }
    telemetry_->trace().Record(TraceEventKind::kDeflation, CascadeLayer::kNone,
                               vm.id(), -1, out.requested, out.TotalReclaimed(),
                               outcome);
  }
  if (!out.TargetMet()) {
    DEFL_LOG(kDebug) << "vm " << vm.id() << " [" << DeflationModeName(mode_)
                     << "] missed deflation target: requested "
                     << out.requested.ToString() << ", reclaimed "
                     << out.TotalReclaimed().ToString();
  }
  return out;
}

ResourceVector CascadeController::Reinflate(Vm& vm, DeflationAgent* agent,
                                            const ResourceVector& amount) {
  const ResourceVector want = amount.ClampNonNegative();
  // Step 1: raise the hypervisor-level allocation.
  const ResourceVector released = vm.HvRelease(want);
  // Step 2a: deflate the balloon (if this controller inflated one).
  ResourceVector deflated_balloon;
  deflated_balloon[ResourceKind::kMemory] =
      vm.guest_os().BalloonDeflate((want - released).memory_mb());
  // Step 2b: replug OS-level resources with whatever remains.
  const ResourceVector replugged =
      vm.guest_os().Replug(want - released - deflated_balloon);
  const ResourceVector total = released + deflated_balloon + replugged;
  // Step 3: tell the application it may expand again. The memory offer is
  // capped at what the guest can actually hold: hypervisor-released
  // residency only un-swaps existing guest memory, so the application may
  // grow only into guest-visible headroom.
  if (agent != nullptr && total.AnyPositive()) {
    ResourceVector offer = total;
    const GuestOs& guest = vm.guest_os();
    const double headroom = guest.visible().memory_mb() - agent->MemoryFootprintMb() -
                            guest.params().kernel_reserve_mb;
    offer[ResourceKind::kMemory] =
        std::clamp(offer.memory_mb(), 0.0, std::max(headroom, 0.0));
    agent->OnReinflate(offer);
    vm.guest_os().set_app_used_mb(agent->MemoryFootprintMb());
  }
  if (telemetry_ != nullptr) {
    telemetry_->metrics().Add(metrics_.reinflate_ops);
    telemetry_->trace().Record(TraceEventKind::kReinflation, CascadeLayer::kNone,
                               vm.id(), -1, want, total, 1);
  }
  return total;
}

}  // namespace defl
