#include "src/apps/web_cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/core/cascade.h"

namespace defl {

const char* LoadBalancingPolicyName(LoadBalancingPolicy policy) {
  switch (policy) {
    case LoadBalancingPolicy::kDeflationAware:
      return "deflation-aware";
    case LoadBalancingPolicy::kEvenSplit:
      return "even-split";
  }
  return "?";
}

double WebServiceTimeInflation(const WebLatencyParams& params, double d) {
  d = std::clamp(d, 0.0, 1.0);
  double inflation = 1.0 + params.graceful_slope * d;
  if (d > params.knee_fraction && params.knee_fraction < 1.0) {
    const double past =
        (d - params.knee_fraction) / (1.0 - params.knee_fraction);
    inflation += params.cliff_scale * std::pow(past, params.cliff_power);
  }
  return inflation;
}

double WebCapacityRps(const WebLatencyParams& params, double effective_cpus,
                      double d) {
  if (effective_cpus <= 0.0 || params.base_service_us <= 0.0) {
    return 0.0;
  }
  const double service_us =
      params.base_service_us * WebServiceTimeInflation(params, d);
  return effective_cpus * 1e6 / service_us;
}

WebLatencyQuantiles WebLatencyUnderLoad(const WebLatencyParams& params,
                                        double effective_cpus, double d,
                                        double offered_rps) {
  WebLatencyQuantiles q;
  q.capacity_rps = WebCapacityRps(params, effective_cpus, d);
  if (q.capacity_rps <= 0.0) {
    // A fully collapsed backend: report an hour-scale sentinel latency so
    // any finite SLO reads as violated, without producing inf/nan.
    q.utilization = 1.0;
    const double t_s = 3600.0;
    q.p50_ms = t_s * std::log(2.0) * 1000.0;
    q.p99_ms = t_s * std::log(100.0) * 1000.0;
    return q;
  }
  const double raw_rho = std::max(offered_rps, 0.0) / q.capacity_rps;
  q.utilization = std::min(raw_rho, params.max_utilization);
  // M/M/1 sojourn time T = (1/mu) / (1 - rho); exponential sojourn gives
  // quantile q at -T ln(1 - q).
  const double t_s = (1.0 / q.capacity_rps) / (1.0 - q.utilization);
  q.p50_ms = t_s * std::log(2.0) * 1000.0;
  q.p99_ms = t_s * std::log(100.0) * 1000.0;
  return q;
}

WebCluster::WebCluster(int num_backends, const ResourceVector& vm_size,
                       const WebServerConfig& server_config) {
  assert(num_backends > 0);
  for (int i = 0; i < num_backends; ++i) {
    VmSpec spec;
    spec.name = "web-" + std::to_string(i);
    spec.size = vm_size;
    spec.priority = VmPriority::kLow;
    Backend backend;
    backend.vm = std::make_unique<Vm>(i, spec);
    backend.vm->set_state(VmState::kRunning);
    backend.server = std::make_unique<WebServerModel>(server_config);
    backend.vm->guest_os().set_app_used_mb(backend.server->MemoryFootprintMb());
    backends_.push_back(std::move(backend));
  }
}

double WebCluster::BackendCapacityRps(Backend& backend) {
  return backend.server->ThroughputRps(backend.vm->allocation());
}

double WebCluster::TotalCapacityRps() {
  double total = 0.0;
  for (Backend& backend : backends_) {
    total += BackendCapacityRps(backend);
  }
  return total;
}

WebClusterMetrics WebCluster::Evaluate(double offered_rps, LoadBalancingPolicy policy) {
  WebClusterMetrics metrics;
  metrics.offered_rps = offered_rps;

  std::vector<double> capacity;
  capacity.reserve(backends_.size());
  double total_capacity = 0.0;
  for (Backend& backend : backends_) {
    capacity.push_back(BackendCapacityRps(backend));
    total_capacity += capacity.back();
  }

  double weighted_rt = 0.0;
  for (size_t i = 0; i < backends_.size(); ++i) {
    double share;
    if (policy == LoadBalancingPolicy::kDeflationAware) {
      // Weight by capacity: every backend runs at the same utilization.
      share = total_capacity > 0.0 ? capacity[i] / total_capacity : 0.0;
    } else {
      share = 1.0 / static_cast<double>(backends_.size());
    }
    const double assigned = offered_rps * share;
    const double served = std::min(assigned, capacity[i]);
    metrics.served_rps += served;
    metrics.dropped_rps += assigned - served;
    const double utilization = capacity[i] > 0.0 ? assigned / capacity[i] : 1.0;
    metrics.backend_utilization.push_back(std::min(utilization, 1.0));
    // M/M/1-style response time for the served stream; saturated backends
    // respond at a capped 20x service time.
    const double service_us = backends_[i].server->config().base_service_us;
    const double rho = std::min(utilization, 0.95);
    const double rt = std::min(service_us / (1.0 - rho), 20.0 * service_us);
    weighted_rt += served * rt;
  }
  metrics.mean_response_us =
      metrics.served_rps > 0.0 ? weighted_rt / metrics.served_rps : 0.0;
  return metrics;
}

ResourceVector WebCluster::DeflateBackend(int backend_index,
                                          const ResourceVector& target) {
  Backend& backend = backends_[static_cast<size_t>(backend_index)];
  CascadeController cascade(DeflationMode::kCascade);
  const DeflationOutcome outcome =
      cascade.Deflate(*backend.vm, backend.server->agent(), target);
  return outcome.TotalReclaimed();
}

void WebCluster::ReinflateBackend(int backend_index) {
  Backend& backend = backends_[static_cast<size_t>(backend_index)];
  CascadeController cascade(DeflationMode::kCascade);
  cascade.Reinflate(*backend.vm, backend.server->agent(),
                    backend.vm->size() - backend.vm->effective());
}

}  // namespace defl
