// Deflation latency model (Figure 8b). Reclamation time is dominated by
// memory: hypervisor-level reclamation must swap resident pages to disk,
// OS-level unplug migrates pages at memory speed, and application-level
// deflation frees memory internally (eviction / GC) after which unplugging
// is cheap. CPU and I/O throttling changes are effectively instantaneous;
// vCPU unplug costs a small fixed time per CPU.
#ifndef SRC_HYPERVISOR_LATENCY_H_
#define SRC_HYPERVISOR_LATENCY_H_

#include "src/resources/resource_vector.h"

namespace defl {

struct LatencyParams {
  // Host swap-out bandwidth (MB/s); the dominant cost of hypervisor-level
  // memory reclamation.
  double swap_out_mbps = 180.0;
  // The incremental control loop (Section 5) retries large reclamations in
  // steps; multiplies hypervisor memory latency.
  double control_loop_overhead = 1.35;
  // Page-migration bandwidth when unplugging memory that is in use / cold
  // but not freed by the app (MB/s).
  double unplug_cold_mbps = 1500.0;
  // Offlining memory the application has already freed (no migration).
  double unplug_freed_mbps = 6000.0;
  // Rate at which applications free memory internally: LRU eviction, GC.
  double app_free_mbps = 2500.0;
  // Fixed agent round-trip for application-level deflation (s).
  double app_fixed_s = 2.0;
  // Per-vCPU hot-unplug cost (s).
  double cpu_unplug_s = 0.6;
  // Balloon inflation rate (MB/s): the driver must allocate guest pages one
  // batch at a time under memory pressure -- slower than offlining freed
  // blocks (part of why hotplug wins, Section 7).
  double balloon_mbps = 900.0;
  // Fixed orchestration overhead per deflation operation (s).
  double fixed_s = 1.0;
};

// Breakdown of how much memory/cpu each layer reclaimed, produced by the
// cascade controller; the latency model turns it into seconds.
struct ReclaimBreakdown {
  double app_freed_mb = 0.0;      // freed internally by the application
  double unplug_freed_mb = 0.0;   // unplugged memory that the app had freed
  double unplug_cold_mb = 0.0;    // unplugged memory needing page migration
  double balloon_mb = 0.0;        // reclaimed via balloon inflation
  double hv_swap_mb = 0.0;        // hypervisor-reclaimed (swapped) memory
  double unplug_cpus = 0.0;
  bool used_app_level = false;
};

class DeflationLatencyModel {
 public:
  explicit DeflationLatencyModel(const LatencyParams& params = LatencyParams());

  // Total wall-clock seconds for one VM's cascade deflation. Stages run
  // sequentially (app, then OS, then hypervisor, per Figure 3); within a
  // stage CPU and memory operations overlap.
  double TotalSeconds(const ReclaimBreakdown& b) const;

  double AppStageSeconds(const ReclaimBreakdown& b) const;
  double OsStageSeconds(const ReclaimBreakdown& b) const;
  double HypervisorStageSeconds(const ReclaimBreakdown& b) const;

  const LatencyParams& params() const { return params_; }

 private:
  LatencyParams params_;
};

}  // namespace defl

#endif  // SRC_HYPERVISOR_LATENCY_H_
