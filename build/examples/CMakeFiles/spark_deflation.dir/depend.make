# Empty dependencies file for spark_deflation.
# This may be replaced when dependencies are built.
