#include "src/cluster/cluster_manager.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace defl {

const char* ServerHealthName(ServerHealth health) {
  switch (health) {
    case ServerHealth::kHealthy:
      return "healthy";
    case ServerHealth::kDegraded:
      return "degraded";
    case ServerHealth::kDown:
      return "down";
    case ServerHealth::kRecovering:
      return "recovering";
  }
  return "?";
}

ClusterManager::ClusterManager(int num_servers, const ResourceVector& server_capacity,
                               const ClusterConfig& config, TelemetryContext* telemetry)
    : config_(config),
      rng_(config.seed),
      pool_(std::make_unique<ThreadPool>(config.threads)) {
  assert(num_servers > 0);
  if (telemetry != nullptr) {
    telemetry_ = telemetry;
  } else {
    // Private fallback so the counters() view is always live. Nothing will
    // export the private trace, so don't let it accumulate.
    owned_telemetry_ = std::make_unique<TelemetryContext>();
    owned_telemetry_->trace().set_enabled(false);
    telemetry_ = owned_telemetry_.get();
  }
  MetricsRegistry& registry = telemetry_->metrics();
  metrics_.launched = registry.Counter("cluster/vms/launched");
  metrics_.launched_low_priority = registry.Counter("cluster/vms/launched_low_priority");
  metrics_.rejected = registry.Counter("cluster/vms/rejected");
  metrics_.preempted = registry.Counter("cluster/vms/preempted");
  metrics_.completed = registry.Counter("cluster/vms/completed");
  metrics_.deflation_ops = registry.Counter("cluster/deflation_ops");
  metrics_.crash_replaced = registry.Counter("cluster/vms/crash_replaced");
  metrics_.crash_preempted = registry.Counter("cluster/vms/crash_preempted");
  metrics_.crash_lost = registry.Counter("cluster/vms/crash_lost");
  metrics_.server_crashes = registry.Counter("cluster/servers/crashes");
  metrics_.server_recoveries = registry.Counter("cluster/servers/recoveries");
  metrics_.server_degrades = registry.Counter("cluster/servers/degrades");
  metrics_.healthy_servers = registry.Gauge("cluster/servers/healthy");
  health_.assign(static_cast<size_t>(num_servers), ServerHealth::kHealthy);
  registry.Set(metrics_.healthy_servers, static_cast<double>(num_servers));
  for (int i = 0; i < num_servers; ++i) {
    servers_.push_back(std::make_unique<Server>(i, server_capacity));
    servers_.back()->AttachTelemetry(telemetry_);
    controllers_.push_back(
        std::make_unique<LocalController>(servers_.back().get(), config.controller));
    controllers_.back()->AttachTelemetry(telemetry_);
  }
  // From here on, every allocation-affecting mutation marks its row in the
  // flat mirror; placement probes scan the mirror, never the objects.
  fleet_.Bind(servers_);
}

ClusterCounters ClusterManager::counters() const {
  const MetricsRegistry& registry = telemetry_->metrics();
  ClusterCounters out;
  out.launched = registry.counter(metrics_.launched);
  out.launched_low_priority = registry.counter(metrics_.launched_low_priority);
  out.rejected = registry.counter(metrics_.rejected);
  out.preempted = registry.counter(metrics_.preempted);
  out.completed = registry.counter(metrics_.completed);
  out.deflation_ops = registry.counter(metrics_.deflation_ops);
  out.crash_replaced = registry.counter(metrics_.crash_replaced);
  out.crash_preempted = registry.counter(metrics_.crash_preempted);
  out.crash_lost = registry.counter(metrics_.crash_lost);
  out.server_crashes = registry.counter(metrics_.server_crashes);
  out.server_recoveries = registry.counter(metrics_.server_recoveries);
  return out;
}

std::vector<Server*> ClusterManager::servers() {
  std::vector<Server*> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) {
    out.push_back(s.get());
  }
  return out;
}

LocalController* ClusterManager::controller(ServerId id) {
  const int index = ServerIndex(id);
  return index >= 0 ? controllers_[static_cast<size_t>(index)].get() : nullptr;
}

void ClusterManager::ForgetVm(VmId id, size_t server_index) {
  vm_index_.erase(id);
  controllers_[server_index]->UnregisterAgent(id);
}

ClusterManager::PlaceOutcome ClusterManager::TryPlace(std::unique_ptr<Vm>& vm) {
  PlaceOutcome out;
  const VmId vm_id = vm->id();
  const ResourceVector demand = vm->size();
  const bool low_priority = vm->deflatable();

  // Reclamation happens only under resource pressure (Section 5): prefer a
  // server with enough untouched free capacity, and fall back to reclaimable
  // availability only when none exists. What is reclaimable depends on the
  // strategy and the arrival's priority: deflation-managed clusters can
  // shrink low-priority VMs for anyone; preemption-only clusters can revoke
  // low-priority VMs for high-priority arrivals but give low-priority
  // arrivals only free space.
  std::array<AvailabilityMode, 3> passes;
  size_t num_passes = 0;
  passes[num_passes++] = AvailabilityMode::kFreeOnly;
  if (config_.strategy == ReclamationStrategy::kDeflation) {
    passes[num_passes++] = AvailabilityMode::kFreePlusDeflatable;
  }
  if (!low_priority) {
    // High priority displaces low priority outright as the last resort.
    passes[num_passes++] = AvailabilityMode::kFreePlusPreemptible;
  }
  RefreshPlaceable();
  Result<size_t> placed = Error{"unplaced"};
  if (placeable_rows_.empty()) {
    placed = Error{"no healthy servers"};
  } else {
    for (size_t p = 0; p < num_passes; ++p) {
      const AvailabilityMode mode = passes[p];
      placed = PlaceVmFleet(demand, fleet_, placeable_rows_, config_.placement, rng_,
                            mode, pool_.get());
      if (placed.ok()) {
        break;
      }
    }
  }
  if (!placed.ok()) {
    out.error = placed.error();
    return out;
  }
  const size_t index = placeable_rows_[placed.value()];
  Server& server = *servers_[index];
  out.server = server.id();

  MetricsRegistry& registry = telemetry_->metrics();
  if (!demand.AllLeq(server.Free())) {
    if (config_.strategy == ReclamationStrategy::kDeflation) {
      out.trace_outcome = 2;
      const ReclaimResult reclaim = controllers_[index]->MakeRoom(demand);
      for (const VmId victim : reclaim.preempted) {
        // MakeRoom already deregistered the victim's agent; drop it from the
        // VM index too so lookups cannot resolve a revoked VM.
        vm_index_.erase(victim);
        registry.Add(metrics_.preempted);
        preempted_since_take_.push_back(victim);
      }
      if (!reclaim.deflated.empty()) {
        registry.Add(metrics_.deflation_ops);
      }
      if (!reclaim.success) {
        // The failed attempt must not leave collateral damage: MakeRoom
        // deflated (and possibly preempted) VMs for an arrival that never
        // materialized, so give the survivors their resources back.
        controllers_[index]->ReinflateAll();
        out.freed = reclaim.freed;
        out.error = "reclamation failed on chosen server";
        return out;
      }
    } else {
      out.trace_outcome = 3;
      if (!PreemptForDemand(index, demand)) {
        out.error = "preemption could not free enough resources";
        return out;
      }
    }
  }

  telemetry_->trace().Record(TraceEventKind::kPlacement, CascadeLayer::kNone, vm->id(),
                             server.id(), demand, server.Free(), out.trace_outcome);
  if (faults_ != nullptr) {
    vm->guest_os().AttachFaultInjector(faults_, vm->id());
  }
  server.AddVm(std::move(vm));
  vm_index_[vm_id] = index;
  out.ok = true;
  return out;
}

Result<ServerId> ClusterManager::LaunchVm(std::unique_ptr<Vm> vm) {
  assert(vm != nullptr);
  const VmId id = vm->id();
  const ResourceVector demand = vm->size();
  const bool low_priority = vm->deflatable();
  MetricsRegistry& registry = telemetry_->metrics();

  const PlaceOutcome placed = TryPlace(vm);
  if (!placed.ok) {
    registry.Add(metrics_.rejected);
    // Rejection outcome mirrors how far placement got: 0 = no feasible
    // server, 2 = deflation fell short, 3 = preemption fell short.
    const int32_t outcome = placed.server < 0 ? 0 : placed.trace_outcome;
    telemetry_->trace().Record(TraceEventKind::kRejection, CascadeLayer::kNone, id,
                               placed.server, demand, placed.freed, outcome);
    return Error{placed.error};
  }
  registry.Add(metrics_.launched);
  if (low_priority) {
    registry.Add(metrics_.launched_low_priority);
  }
  return placed.server;
}

bool ClusterManager::PreemptForDemand(size_t server_index,
                                      const ResourceVector& demand) {
  Server& server = *servers_[server_index];
  while (!demand.AllLeq(server.Free())) {
    // Revoke the low-priority VM freeing the most of the bottleneck
    // resource (standard eviction heuristic).
    Vm* victim = nullptr;
    double victim_gain = -1.0;
    const ResourceVector need = (demand - server.Free()).ClampNonNegative();
    for (const auto& vm : server.vms()) {
      if (vm->priority() != VmPriority::kLow) {
        continue;
      }
      const double gain = vm->effective().Min(need).SafeDivide(server.capacity()).Sum();
      if (gain > victim_gain) {
        victim_gain = gain;
        victim = vm.get();
      }
    }
    if (victim == nullptr) {
      return false;
    }
    const VmId id = victim->id();
    telemetry_->metrics().Add(metrics_.preempted);
    telemetry_->trace().Record(TraceEventKind::kPreemption, CascadeLayer::kNone, id,
                               server.id(), need, victim->effective(), 0);
    victim->set_state(VmState::kPreempted);
    server.RemoveVm(id);
    ForgetVm(id, server_index);
    preempted_since_take_.push_back(id);
  }
  return true;
}

void ClusterManager::CompleteVm(VmId id) {
  const auto it = vm_index_.find(id);
  if (it == vm_index_.end()) {
    return;
  }
  const size_t i = it->second;
  Server& server = *servers_[i];
  std::unique_ptr<Vm> vm = server.RemoveVm(id);
  assert(vm != nullptr);
  vm->set_state(VmState::kCompleted);
  ForgetVm(id, i);
  telemetry_->metrics().Add(metrics_.completed);
  telemetry_->trace().Record(TraceEventKind::kVmComplete, CascadeLayer::kNone, id,
                             server.id(), vm->size(), vm->effective(), 0);
  // Freed resources flow back to deflated VMs (reverse cascade).
  if (config_.strategy == ReclamationStrategy::kDeflation) {
    controllers_[i]->ReinflateAll();
  }
}

Vm* ClusterManager::FindVm(VmId id) {
  const auto it = vm_index_.find(id);
  return it != vm_index_.end() ? servers_[it->second]->FindVm(id) : nullptr;
}

Server* ClusterManager::ServerOf(VmId id) {
  const auto it = vm_index_.find(id);
  return it != vm_index_.end() ? servers_[it->second].get() : nullptr;
}

std::vector<VmId> ClusterManager::TakePreempted() {
  std::vector<VmId> out;
  out.swap(preempted_since_take_);
  return out;
}

void ClusterManager::AttachFaultInjector(FaultInjector* faults) {
  faults_ = faults;
  for (auto& controller : controllers_) {
    controller->AttachFaultInjector(faults);
  }
  for (auto& server : servers_) {
    for (const auto& vm : server->vms()) {
      vm->guest_os().AttachFaultInjector(faults, vm->id());
    }
  }
}

void ClusterManager::AdoptVm(std::unique_ptr<Vm> vm, ServerId server) {
  assert(vm != nullptr);
  const int index = ServerIndex(server);
  assert(index >= 0);
  const VmId id = vm->id();
  if (faults_ != nullptr) {
    vm->guest_os().AttachFaultInjector(faults_, id);
  }
  servers_[static_cast<size_t>(index)]->AddVm(std::move(vm));
  vm_index_[id] = static_cast<size_t>(index);
}

bool ClusterManager::RestoreHealthStates(const std::vector<ServerHealth>& health) {
  if (health.size() != health_.size()) {
    return false;
  }
  health_ = health;
  UpdateHealthGauge();
  return true;
}

void ClusterManager::RefreshPlaceable() const {
  if (!placeable_dirty_) {
    return;
  }
  placeable_rows_.clear();
  for (size_t i = 0; i < servers_.size(); ++i) {
    if (health_[i] != ServerHealth::kHealthy) {
      continue;
    }
    placeable_rows_.push_back(static_cast<uint32_t>(i));
  }
  placeable_dirty_ = false;
}

int ClusterManager::ServerIndex(ServerId id) const {
  // Server ids are assigned densely (0..n-1) by the constructor, so the id
  // is its own index; guard anyway so stray ids degrade to "not found".
  if (id < 0 || static_cast<size_t>(id) >= servers_.size()) {
    return -1;
  }
  assert(servers_[static_cast<size_t>(id)]->id() == id);
  return static_cast<int>(id);
}

ServerHealth ClusterManager::health(ServerId id) const {
  const int index = ServerIndex(id);
  assert(index >= 0);
  return health_[static_cast<size_t>(index)];
}

void ClusterManager::UpdateHealthGauge() {
  // Every health transition funnels through here, so it doubles as the
  // invalidation point for the cached placement candidate list and the
  // sync point for the mirror's eligibility bits.
  placeable_dirty_ = true;
  double healthy = 0.0;
  for (size_t i = 0; i < health_.size(); ++i) {
    const bool is_healthy = health_[i] == ServerHealth::kHealthy;
    fleet_.SetEligible(i, is_healthy);
    if (is_healthy) {
      healthy += 1.0;
    }
  }
  telemetry_->metrics().Set(metrics_.healthy_servers, healthy);
}

void ClusterManager::ResetVmDeflation(Vm& vm) {
  vm.HvRelease(vm.hv_reclaimed());
  vm.guest_os().Replug(vm.guest_os().unplugged());
}

void ClusterManager::CrashServer(ServerId id) {
  const int index = ServerIndex(id);
  if (index < 0 || health_[index] == ServerHealth::kDown) {
    return;
  }
  health_[index] = ServerHealth::kDown;
  Server& server = *servers_[index];
  MetricsRegistry& registry = telemetry_->metrics();
  registry.Add(metrics_.server_crashes);
  UpdateHealthGauge();
  telemetry_->trace().Record(TraceEventKind::kServerCrash, CascadeLayer::kNone, -1, id,
                             server.Allocated(), ResourceVector::Zero(),
                             static_cast<int32_t>(server.vm_count()));
  DEFL_LOG(kInfo) << "server " << id << ": crashed with " << server.vm_count()
                  << " VMs";

  // Evacuate: the crash wiped every hosted VM; each restarts at nominal
  // size somewhere else if the cluster has room. High priority re-places
  // first so transient capacity cannot crowd it out.
  std::vector<std::unique_ptr<Vm>> lost;
  while (server.vm_count() > 0) {
    const VmId vm_id = server.vms().front()->id();
    ForgetVm(vm_id, static_cast<size_t>(index));
    lost.push_back(server.RemoveVm(vm_id));
  }
  std::stable_sort(lost.begin(), lost.end(),
                   [](const std::unique_ptr<Vm>& a, const std::unique_ptr<Vm>& b) {
                     if (a->priority() != b->priority()) {
                       return a->priority() == VmPriority::kHigh;
                     }
                     return a->id() < b->id();
                   });
  for (auto& vm : lost) {
    ResetVmDeflation(*vm);
    vm->set_state(VmState::kPending);
    const VmId vm_id = vm->id();
    const ResourceVector size = vm->size();
    const bool low_priority = vm->deflatable();
    const PlaceOutcome placed = TryPlace(vm);
    if (placed.ok) {
      registry.Add(metrics_.crash_replaced);
      continue;
    }
    if (low_priority) {
      // Crash-induced revocation: outcome 4 distinguishes it from policy
      // preemption (outcome 0) in the trace, and crash_preempted keeps it
      // out of the preemption-probability numerator.
      registry.Add(metrics_.crash_preempted);
      telemetry_->trace().Record(TraceEventKind::kPreemption, CascadeLayer::kNone,
                                 vm_id, id, size, ResourceVector::Zero(), 4);
      vm->set_state(VmState::kPreempted);
      preempted_since_take_.push_back(vm_id);
    } else {
      registry.Add(metrics_.crash_lost);
      telemetry_->trace().Record(TraceEventKind::kRejection, CascadeLayer::kNone,
                                 vm_id, id, size, ResourceVector::Zero(), 4);
      vm->set_state(VmState::kPreempted);
    }
  }
}

void ClusterManager::DegradeServer(ServerId id) {
  const int index = ServerIndex(id);
  if (index < 0 || health_[index] != ServerHealth::kHealthy) {
    return;
  }
  health_[index] = ServerHealth::kDegraded;
  telemetry_->metrics().Add(metrics_.server_degrades);
  UpdateHealthGauge();
  telemetry_->trace().Record(TraceEventKind::kServerDegrade, CascadeLayer::kNone, -1,
                             id, ResourceVector::Zero(), ResourceVector::Zero(), 0);
}

void ClusterManager::RecoverServer(ServerId id) {
  const int index = ServerIndex(id);
  if (index < 0 || health_[index] != ServerHealth::kDown) {
    return;
  }
  health_[index] = ServerHealth::kRecovering;
  telemetry_->metrics().Add(metrics_.server_recoveries);
  UpdateHealthGauge();
  telemetry_->trace().Record(TraceEventKind::kServerRecover, CascadeLayer::kNone, -1,
                             id, servers_[index]->capacity(), ResourceVector::Zero(),
                             0);
  // The returned capacity relieves cluster pressure; survivors that were
  // squeezed while the server was down get their resources back.
  if (config_.strategy == ReclamationStrategy::kDeflation) {
    for (size_t i = 0; i < servers_.size(); ++i) {
      if (health_[i] == ServerHealth::kHealthy ||
          health_[i] == ServerHealth::kDegraded) {
        controllers_[i]->ReinflateAll();
      }
    }
  }
}

void ClusterManager::MarkHealthy(ServerId id) {
  const int index = ServerIndex(id);
  if (index < 0) {
    return;
  }
  if (health_[index] == ServerHealth::kRecovering ||
      health_[index] == ServerHealth::kDegraded) {
    health_[index] = ServerHealth::kHealthy;
    UpdateHealthGauge();
  }
}

double ClusterManager::Utilization() const {
  ResourceVector allocated;
  ResourceVector capacity;
  for (size_t i = 0; i < servers_.size(); ++i) {
    if (health_[i] == ServerHealth::kDown) {
      continue;  // a down server's capacity is not serving anyone
    }
    allocated += servers_[i]->Allocated();
    capacity += servers_[i]->capacity();
  }
  double util = 0.0;
  for (const ResourceKind kind : kAllResources) {
    if (capacity[kind] > 0.0) {
      util = std::max(util, allocated[kind] / capacity[kind]);
    }
  }
  return std::min(util, 1.0);
}

double ClusterManager::Overcommitment() const {
  ResourceVector nominal;
  ResourceVector capacity;
  for (size_t i = 0; i < servers_.size(); ++i) {
    if (health_[i] == ServerHealth::kDown) {
      continue;
    }
    capacity += servers_[i]->capacity();
    // Cached per-server nominal demand (folded in hosting order), summed in
    // server order: O(servers) on warm caches, and one canonical fold order
    // regardless of thread count.
    nominal += servers_[i]->NominalDemand();
  }
  double oc = 0.0;
  for (const ResourceKind kind : kAllResources) {
    if (capacity[kind] > 0.0) {
      oc = std::max(oc, nominal[kind] / capacity[kind]);
    }
  }
  return oc;
}

void ClusterManager::ForEachServerParallel(const std::function<void(size_t)>& fn) {
  // Chunked so the pool's claim cursor is touched once per ~shard rather
  // than once per server. Which thread runs which chunk is irrelevant: fn
  // touches only the state of the one server it is handed (shard
  // ownership), and any cross-server folding happens on the caller
  // afterwards in canonical order.
  constexpr size_t kChunk = 64;
  const size_t count = servers_.size();
  const size_t chunks = (count + kChunk - 1) / kChunk;
  pool_->ParallelFor(static_cast<int64_t>(chunks), [&](int64_t c) {
    const size_t begin = static_cast<size_t>(c) * kChunk;
    const size_t end = std::min(begin + kChunk, count);
    for (size_t i = begin; i < end; ++i) {
      fn(i);
    }
  });
}

void ClusterManager::WarmAccounting() {
  ForEachServerParallel([this](size_t i) { servers_[i]->WarmAccountingCache(); });
}

void ClusterManager::CollectUsageSamples(std::vector<ServerUsageSample>* out) {
  // The session passes the same scratch vector every tick: keep the outer
  // entries and each inner vms buffer (clear, not destroy) so steady-state
  // sampling never touches the allocator.
  out->resize(servers_.size());
  ForEachServerParallel([this, out](size_t i) {
    ServerUsageSample& sample = (*out)[i];
    sample.nominal_overcommitment = servers_[i]->NominalOvercommitment();
    sample.vms.clear();
    sample.vms.reserve(servers_[i]->vm_count());
    for (const auto& vm : servers_[i]->vms()) {
      sample.vms.push_back(ServerUsageSample::VmUsage{
          vm->priority() == VmPriority::kLow, vm->size().cpu(), vm->effective().cpu()});
    }
  });
}

double ClusterManager::HighPriorityEffectiveCpu() {
  hp_cpu_scratch_.EnsureShards(servers_.size());
  ForEachServerParallel([this](size_t i) {
    std::vector<double>& values = hp_cpu_scratch_.shard(i);
    for (const auto& vm : servers_[i]->vms()) {
      if (vm->priority() == VmPriority::kHigh) {
        values.push_back(vm->effective().cpu());
      }
    }
  });
  // Flat fold in (server, hosting) order: the exact summation sequence the
  // old sequential loop used, so the result cannot drift by even one ulp
  // with the thread count. Per-shard partial sums would regroup the adds and
  // change the rounding -- forbidden.
  double sum = 0.0;
  for (size_t i = 0; i < servers_.size(); ++i) {
    for (const double value : hp_cpu_scratch_.shard(i)) {
      sum += value;
    }
  }
  hp_cpu_scratch_.Retire();  // empty the shards, keep their capacity
  return sum;
}

void ClusterManager::ReinflateSweep(double holdback_cpu_per_server) {
  if (reinflate_plans_.size() < servers_.size()) {
    reinflate_plans_.resize(servers_.size());
  }
  ForEachServerParallel([this, holdback_cpu_per_server](size_t i) {
    // Hold back capacity-shaped headroom for forecast demand.
    const double cpu = servers_[i]->capacity().cpu();
    const ResourceVector holdback =
        cpu > 0.0 ? servers_[i]->capacity() * (holdback_cpu_per_server / cpu)
                  : ResourceVector::Zero();
    controllers_[i]->PlanReinflate(holdback, &reinflate_plans_[i]);
  });
  // Apply sequentially in server order: mutations and their telemetry
  // (reinflate counters, kReinflation trace records) happen in one
  // canonical order no matter how the planning phase was scheduled. Each
  // plan is retired right after its apply (emptied, capacity kept).
  for (size_t i = 0; i < servers_.size(); ++i) {
    if (!reinflate_plans_[i].empty()) {
      controllers_[i]->ApplyReinflate(reinflate_plans_[i]);
      reinflate_plans_[i].entries.clear();
    }
  }
}

std::vector<double> ClusterManager::PerServerOvercommitment() const {
  std::vector<double> out;
  out.reserve(servers_.size());
  for (const auto& server : servers_) {
    out.push_back(server->NominalOvercommitment());
  }
  return out;
}

}  // namespace defl
