# Empty dependencies file for cascade_properties_test.
# This may be replaced when dependencies are built.
