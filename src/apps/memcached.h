// Memcached model: an in-memory LRU key-value store serving a Zipf-popular
// GET stream (YCSB/memtier-style), plus the paper's application deflation
// policy -- dynamically resize the cache and let LRU eviction shed the
// coldest objects, trading hit rate for never touching swap (Section 4).
//
// Throughput model: worker threads (one per visible core, as memcached
// deploys) serve GETs whose service time is the base CPU cost plus, for
// requests that touch a non-resident page, a swap-in stall. The guest/host
// keep the hottest pages resident (LRU paging), but blind hypervisor-level
// reclamation wastes a fraction of residency on the wrong pages.
#ifndef SRC_APPS_MEMCACHED_H_
#define SRC_APPS_MEMCACHED_H_

#include <cstdint>
#include <string>

#include "src/apps/app_model.h"
#include "src/hypervisor/overcommit.h"

namespace defl {

struct MemcachedConfig {
  int64_t num_keys = 20'000'000;  // key universe
  double item_kb = 1.0;           // object size
  double zipf_s = 0.95;           // key popularity skew
  double configured_cache_mb = 12.0 * 1024.0;
  // Fraction of the configured cache the workload has actually filled;
  // determines the real memory footprint.
  double fill_fraction = 0.6;
  double process_overhead_mb = 1024.0;  // hash table, buffers, libc
  double base_service_us = 30.0;        // CPU cost of a GET
  double swap_in_us = 800.0;            // stall when a GET hits a swapped page
  // Fraction of residency that blind hypervisor paging keeps on the right
  // (hot) pages; guest-initiated reclamation is perfectly informed.
  double hv_paging_efficiency = 0.8;
  double min_cache_mb = 512.0;  // the agent will not shrink below this
  // Guest memory headroom below which the OOM killer takes the server.
  double oom_reserve_mb = 256.0;
  OvercommitCosts costs;
};

class MemcachedModel;

// Application deflation agent (Table 1): shrinks the cache via LRU eviction
// for memory targets; CPU/I/O deflation is left to the VM level.
class MemcachedAgent : public DeflationAgent {
 public:
  explicit MemcachedAgent(MemcachedModel* model) : model_(model) {}

  ResourceVector SelfDeflate(const ResourceVector& target) override;
  void OnReinflate(const ResourceVector& added) override;
  double MemoryFootprintMb() const override;

 private:
  MemcachedModel* model_;
};

class MemcachedModel : public AppModel {
 public:
  explicit MemcachedModel(const MemcachedConfig& config);

  // --- AppModel ---
  double NormalizedPerformance(const EffectiveAllocation& alloc) const override;
  double MemoryFootprintMb() const override;
  DeflationAgent* agent() override { return &agent_; }
  const std::string& name() const override { return name_; }

  // Successful GETs per second (thousands): the Figure 5c metric. Counts
  // only cache hits, as the paper does.
  double ThroughputKGets(const EffectiveAllocation& alloc) const;
  // Object hit rate given the currently stored item count.
  double HitRate() const;

  // --- Cache sizing (used by the agent) ---
  double cache_limit_mb() const { return cache_limit_mb_; }
  // Resizes the cache limit; shrinking evicts (instantly reduces footprint).
  void ResizeCache(double new_limit_mb);
  // MB of objects currently stored: min(fill target, cache limit).
  double StoredMb() const;

  const MemcachedConfig& config() const { return config_; }
  // The allocation corresponding to the nominal VM size (set once by the
  // harness so NormalizedPerformance has a baseline).
  void SetBaseline(const EffectiveAllocation& alloc);

 private:
  int64_t StoredItems() const;
  // Fraction of hits that stall on swap given residency for object memory.
  double SwapHitFraction(const EffectiveAllocation& alloc) const;

  MemcachedConfig config_;
  std::string name_ = "memcached";
  double cache_limit_mb_;
  MemcachedAgent agent_;
  double baseline_kgets_ = 0.0;
};

}  // namespace defl

#endif  // SRC_APPS_MEMCACHED_H_
