// Figure 8b: worst-case deflation latency -- a single giant VM (48 vCPUs,
// 100 GB) deflated by 10-55% through hypervisor-only reclamation (swap
// everything), hypervisor+OS (unplug what is free, swap the rest) and full
// cascade (the application frees memory first, making reclamation cheap).
// Paper: cascade stays under ~100 s at 50%; without application deflation
// latency is 2-3x higher.
#include "bench/bench_util.h"
#include "src/apps/memcached.h"
#include "src/core/cascade.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

VmSpec GiantVmSpec() {
  VmSpec spec;
  spec.name = "giant-vm";
  spec.size = ResourceVector(48.0, 100.0 * 1024.0, 2000.0, 10000.0);
  spec.priority = VmPriority::kLow;
  return spec;
}

MemcachedConfig GiantAppConfig() {
  MemcachedConfig config;
  config.configured_cache_mb = 88.0 * 1024.0;
  config.fill_fraction = 0.95;
  config.process_overhead_mb = 4.0 * 1024.0;
  config.num_keys = 200'000'000;
  return config;
}

TelemetryContext* SharedTelemetry() {
  static TelemetryContext telemetry;
  return &telemetry;
}

double Point(DeflationMode mode, double f, bool with_agent, double deadline_s = 0.0) {
  Vm vm(0, GiantVmSpec());
  MemcachedModel app(GiantAppConfig());
  vm.guest_os().set_app_used_mb(app.MemoryFootprintMb());
  CascadeController controller(mode);
  controller.AttachTelemetry(SharedTelemetry());
  CascadeOptions options;
  options.deadline_s = deadline_s;
  const DeflationOutcome outcome = controller.Deflate(
      vm, with_agent ? app.agent() : nullptr, vm.size() * f, options);
  if (deadline_s > 0.0) {
    // With a deadline the VM-blocking portion is what matters: the clipped
    // remainder is swapped out asynchronously under host control.
    const DeflationLatencyModel& model = controller.latency_model();
    return model.params().fixed_s + model.AppStageSeconds(outcome.breakdown) +
           model.OsStageSeconds(outcome.breakdown);
  }
  return outcome.latency_seconds;
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Figure 8b", "worst-case deflation latency (48 vCPU / 100 GB VM)");
  bench::PrintNote("Latency in seconds to reach the deflation target.");
  bench::PrintNote("cascade-30s: Section 5 deadline -- VM-blocking time only; the");
  bench::PrintNote("clipped remainder is reclaimed asynchronously by host swapping.");
  bench::PrintColumns({"deflation%", "hypervisor", "hyp+os", "cascade", "cascade-30s"});
  for (const double f : {0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55}) {
    bench::PrintCell(f * 100.0);
    bench::PrintCell(Point(DeflationMode::kHypervisorOnly, f, false));
    bench::PrintCell(Point(DeflationMode::kVmLevel, f, false));
    bench::PrintCell(Point(DeflationMode::kCascade, f, true));
    bench::PrintCell(Point(DeflationMode::kCascade, f, true, /*deadline_s=*/30.0));
    bench::EndRow();
  }
  const MetricsRegistry& registry = SharedTelemetry()->metrics();
  const RunningStats& latency =
      registry.distribution(registry.FindDistribution("cascade/deflate/latency_s"));
  const EventTrace& trace = SharedTelemetry()->trace();
  std::printf("  (telemetry: %lld ops, latency mean %.1f s / max %.1f s; "
              "%lld app / %lld os / %lld hv stage events)\n",
              static_cast<long long>(registry.CounterValue("cascade/deflate/ops")),
              latency.mean(), latency.max(),
              static_cast<long long>(trace.CountKind(TraceEventKind::kCascadeStage,
                                                     CascadeLayer::kApplication)),
              static_cast<long long>(trace.CountKind(TraceEventKind::kCascadeStage,
                                                     CascadeLayer::kGuestOs)),
              static_cast<long long>(trace.CountKind(TraceEventKind::kCascadeStage,
                                                     CascadeLayer::kHypervisor)));
  return 0;
}
