// Property test for the SimSession checkpoint/restore contract (DESIGN.md
// §11): killing a run at a RANDOM boundary, restoring the snapshot, and
// finishing must produce the same bytes -- metrics JSON, event-trace JSONL,
// and every result counter -- as the uninterrupted run, for every thread
// count on either side of the kill, and for every shipped fault plan. The
// kill points are drawn from DEFL_FAULT_SEED so CI's seed matrix explores
// different boundaries each leg.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/cluster/sim_session.h"
#include "src/common/rng.h"
#include "src/faults/fault_plan.h"
#include "src/sim/snapshot_io.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

#ifndef DEFL_SOURCE_DIR
#error "build must define DEFL_SOURCE_DIR"
#endif

const int kThreadCounts[] = {1, 2, 7};

uint64_t TestSeed() {
  const char* env = std::getenv("DEFL_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

ClusterSimConfig BaseConfig() {
  ClusterSimConfig config;
  config.num_servers = 10;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 2.0 * 3600.0;
  config.trace.max_lifetime_s = 3600.0;
  config.trace.seed = TestSeed();
  config.trace =
      WithTargetLoad(config.trace, 1.5, config.num_servers, config.server_capacity);
  config.cluster.strategy = ReclamationStrategy::kDeflation;
  config.sample_period_s = 300.0;
  config.reinflate_period_s = 600.0;
  config.predictive_holdback = true;
  return config;
}

std::string Export(const TelemetryContext& telemetry) {
  std::ostringstream os;
  telemetry.metrics().DumpJson(os);
  os << "\n";
  telemetry.trace().DumpJsonl(os);
  return os.str();
}

std::string RunUninterrupted(ClusterSimConfig config, int threads) {
  config.cluster.threads = threads;
  TelemetryContext telemetry;
  config.telemetry = &telemetry;
  Result<SimSession> session = SimSession::Open(config);
  EXPECT_TRUE(session.ok()) << session.error();
  session.value().Finish();
  return Export(telemetry);
}

// Runs with a kill at `kill_at_s`, restoring at `restore_threads`, and
// returns the resumed run's full export.
std::string RunKilledAndRestored(ClusterSimConfig config, int threads,
                                 int restore_threads, double kill_at_s) {
  config.cluster.threads = threads;
  std::string bytes;
  {
    TelemetryContext telemetry;
    config.telemetry = &telemetry;
    Result<SimSession> session = SimSession::Open(config);
    EXPECT_TRUE(session.ok()) << session.error();
    session.value().StepUntil(kill_at_s);
    bytes = session.value().SnapshotBytes();
  }  // the first process "dies" here
  TelemetryContext resumed;
  SimSession::RestoreOptions options;
  options.telemetry = &resumed;
  options.threads = restore_threads;
  Result<SimSession> restored = SimSession::RestoreBytes(bytes, options);
  EXPECT_TRUE(restored.ok()) << restored.error();
  if (!restored.ok()) {
    return "";
  }
  restored.value().Finish();
  return Export(resumed);
}

TEST(SnapshotRoundtripTest, RandomKillPointsAreInvisibleAcrossThreadCounts) {
  const ClusterSimConfig config = BaseConfig();
  const std::string reference = RunUninterrupted(config, 1);
  ASSERT_FALSE(reference.empty());
  Rng rng(TestSeed() ^ 0x5eed5eedULL);
  for (const int threads : kThreadCounts) {
    EXPECT_EQ(reference, RunUninterrupted(config, threads))
        << "threads=" << threads << " changed the uninterrupted output";
    for (int trial = 0; trial < 3; ++trial) {
      const double kill_at_s = rng.Uniform(0.0, config.trace.duration_s);
      const int restore_threads =
          kThreadCounts[static_cast<size_t>(rng.UniformInt(0, 2))];
      EXPECT_EQ(reference,
                RunKilledAndRestored(config, threads, restore_threads, kill_at_s))
          << "kill at " << kill_at_s << "s, threads " << threads << " -> "
          << restore_threads;
    }
  }
}

TEST(SnapshotRoundtripTest, EventBoundaryKillsAreInvisible) {
  // Kill after a random NUMBER OF EVENTS (not a time): snapshots taken
  // between two same-timestamp events must restore exactly too.
  const ClusterSimConfig config = BaseConfig();
  const std::string reference = RunUninterrupted(config, 1);
  Rng rng(TestSeed() ^ 0xb0da7eULL);
  for (int trial = 0; trial < 3; ++trial) {
    const int64_t kill_after = rng.UniformInt(1, 4000);
    std::string bytes;
    {
      TelemetryContext telemetry;
      ClusterSimConfig run = config;
      run.telemetry = &telemetry;
      Result<SimSession> session = SimSession::Open(run);
      ASSERT_TRUE(session.ok()) << session.error();
      session.value().StepEvents(kill_after);
      bytes = session.value().SnapshotBytes();
    }
    TelemetryContext resumed;
    SimSession::RestoreOptions options;
    options.telemetry = &resumed;
    Result<SimSession> restored = SimSession::RestoreBytes(bytes, options);
    ASSERT_TRUE(restored.ok()) << restored.error();
    restored.value().Finish();
    EXPECT_EQ(reference, Export(resumed)) << "kill after " << kill_after
                                          << " events";
  }
}

TEST(SnapshotRoundtripTest, DoubleKillIsInvisible) {
  // Two generations of kill/restore: snapshot, restore, run a while,
  // snapshot again, restore again, finish.
  const ClusterSimConfig config = BaseConfig();
  const std::string reference = RunUninterrupted(config, 1);
  std::string first;
  {
    TelemetryContext telemetry;
    ClusterSimConfig run = config;
    run.telemetry = &telemetry;
    Result<SimSession> session = SimSession::Open(run);
    ASSERT_TRUE(session.ok()) << session.error();
    session.value().StepUntil(1800.0);
    first = session.value().SnapshotBytes();
  }
  std::string second;
  {
    TelemetryContext telemetry;
    SimSession::RestoreOptions options;
    options.telemetry = &telemetry;
    Result<SimSession> restored = SimSession::RestoreBytes(first, options);
    ASSERT_TRUE(restored.ok()) << restored.error();
    restored.value().StepUntil(5400.0);
    second = restored.value().SnapshotBytes();
  }
  TelemetryContext resumed;
  SimSession::RestoreOptions options;
  options.telemetry = &resumed;
  Result<SimSession> restored = SimSession::RestoreBytes(second, options);
  ASSERT_TRUE(restored.ok()) << restored.error();
  restored.value().Finish();
  EXPECT_EQ(reference, Export(resumed));
}

TEST(SnapshotRoundtripTest, SharedBlobServesManyRestoresUnchanged) {
  // The what-if service's contract (DESIGN.md §15): N sessions forked off
  // ONE const blob -- via the zero-copy RestoreView path -- each finish to
  // the uninterrupted output, at randomized kill points and mixed thread
  // counts, and the blob's bytes never change.
  const ClusterSimConfig config = BaseConfig();
  const std::string reference = RunUninterrupted(config, 1);
  Rng rng(TestSeed() ^ 0xb10bf00dULL);
  const double kill_at_s = rng.Uniform(0.0, config.trace.duration_s);
  std::string blob;
  {
    TelemetryContext telemetry;
    ClusterSimConfig run = config;
    run.telemetry = &telemetry;
    Result<SimSession> session = SimSession::Open(run);
    ASSERT_TRUE(session.ok()) << session.error();
    session.value().StepUntil(kill_at_s);
    blob = session.value().SnapshotBytes();
  }
  const uint64_t blob_fnv = SnapshotFnv1a64(blob.data(), blob.size());
  for (int restore = 0; restore < 3; ++restore) {
    TelemetryContext resumed;
    SimSession::RestoreOptions options;
    options.telemetry = &resumed;
    options.threads = kThreadCounts[static_cast<size_t>(restore) %
                                    (sizeof(kThreadCounts) / sizeof(int))];
    Result<SimSession> restored =
        SimSession::RestoreView(std::string_view(blob), options);
    ASSERT_TRUE(restored.ok()) << "restore " << restore << ": "
                               << restored.error();
    restored.value().Finish();
    EXPECT_EQ(reference, Export(resumed))
        << "restore " << restore << " from the shared blob diverged";
    EXPECT_EQ(blob_fnv, SnapshotFnv1a64(blob.data(), blob.size()))
        << "restore " << restore << " wrote through the shared blob";
  }
}

TEST(SnapshotRoundtripTest, FileAndBytesRestorePathsAgree) {
  // Snapshot(path) + Restore(path) and SnapshotBytes() + RestoreBytes()
  // must be the same round trip: the file layer adds framing-free I/O only.
  const ClusterSimConfig config = BaseConfig();
  std::string bytes;
  const std::string path = testing::TempDir() + "/roundtrip_paths.snap";
  {
    TelemetryContext telemetry;
    ClusterSimConfig run = config;
    run.telemetry = &telemetry;
    Result<SimSession> session = SimSession::Open(run);
    ASSERT_TRUE(session.ok()) << session.error();
    session.value().StepUntil(1800.0);
    bytes = session.value().SnapshotBytes();
    const Result<bool> written = session.value().Snapshot(path);
    ASSERT_TRUE(written.ok()) << written.error();
  }
  TelemetryContext from_file_ctx;
  SimSession::RestoreOptions file_options;
  file_options.telemetry = &from_file_ctx;
  Result<SimSession> from_file = SimSession::Restore(path, file_options);
  ASSERT_TRUE(from_file.ok()) << from_file.error();
  from_file.value().Finish();

  TelemetryContext from_bytes_ctx;
  SimSession::RestoreOptions bytes_options;
  bytes_options.telemetry = &from_bytes_ctx;
  Result<SimSession> from_bytes = SimSession::RestoreBytes(bytes, bytes_options);
  ASSERT_TRUE(from_bytes.ok()) << from_bytes.error();
  from_bytes.value().Finish();

  EXPECT_EQ(Export(from_file_ctx), Export(from_bytes_ctx));
}

TEST(SnapshotRoundtripTest, PlacementOverrideValidatedAndApplied) {
  const ClusterSimConfig config = BaseConfig();
  std::string bytes;
  {
    TelemetryContext telemetry;
    ClusterSimConfig run = config;
    run.telemetry = &telemetry;
    Result<SimSession> session = SimSession::Open(run);
    ASSERT_TRUE(session.ok()) << session.error();
    session.value().StepUntil(900.0);
    bytes = session.value().SnapshotBytes();
  }
  TelemetryContext overridden;
  SimSession::RestoreOptions options;
  options.telemetry = &overridden;
  options.placement = static_cast<int>(PlacementPolicy::kFirstFit);
  Result<SimSession> restored = SimSession::RestoreBytes(bytes, options);
  ASSERT_TRUE(restored.ok()) << restored.error();
  EXPECT_EQ(restored.value().config().cluster.placement,
            PlacementPolicy::kFirstFit);

  TelemetryContext rejected;
  SimSession::RestoreOptions bad;
  bad.telemetry = &rejected;
  bad.placement = 42;
  Result<SimSession> invalid = SimSession::RestoreBytes(bytes, bad);
  ASSERT_FALSE(invalid.ok());
  EXPECT_NE(invalid.error().find("placement override"), std::string::npos)
      << invalid.error();
}

// Every shipped fault plan: the injector cursors and the health timeline
// must survive the kill exactly.
class ShippedPlanRoundtripTest : public testing::TestWithParam<const char*> {};

TEST_P(ShippedPlanRoundtripTest, KillAndRestoreMatchesUninterrupted) {
  ClusterSimConfig config = BaseConfig();
  const std::string path =
      std::string(DEFL_SOURCE_DIR "/examples/") + GetParam() + ".plan";
  Result<FaultPlan> plan = LoadFaultPlanFile(path);
  ASSERT_TRUE(plan.ok()) << path << ": " << plan.error();
  config.fault_plan = std::move(plan.value());

  const std::string reference = RunUninterrupted(config, 1);
  Rng rng(TestSeed() ^ 0xfa0175ULL);
  for (const int threads : {1, 7}) {
    const double kill_at_s = rng.Uniform(0.0, config.trace.duration_s);
    EXPECT_EQ(reference, RunKilledAndRestored(config, threads, 8 - threads,
                                              kill_at_s))
        << GetParam() << ": kill at " << kill_at_s << "s, threads " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Plans, ShippedPlanRoundtripTest,
                         testing::Values("faults_basic", "faults_wire",
                                         "faults_cluster"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace defl
