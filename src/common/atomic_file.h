// Crash-safe file replacement: write to "<path>.tmp", fsync the data, rename
// over the destination, then fsync the containing directory so the rename
// itself is durable. A reader therefore only ever sees the old complete file
// or the new complete file -- never a torn half-write -- and after the call
// returns the new bytes survive power loss. Every artifact a run promises to
// leave behind (snapshots, checkpoints, --metrics-out / --trace-out exports)
// goes through this path; see DESIGN.md §13.
#ifndef SRC_COMMON_ATOMIC_FILE_H_
#define SRC_COMMON_ATOMIC_FILE_H_

#include <string>

#include "src/common/result.h"

namespace defl {

// Atomically replaces `path` with `bytes`. The temp file lives next to the
// destination (same filesystem, so the rename is atomic). On failure the
// destination is untouched; a stale "<path>.tmp" may remain and is
// overwritten by the next attempt.
Result<bool> WriteFileAtomic(const std::string& path, const std::string& bytes);

// Whole-file read (binary). Errors name the path.
Result<std::string> ReadFileToString(const std::string& path);

// fsync the directory containing `path` (after a rename/unlink inside it).
// Best-effort on filesystems that reject directory fsync.
void SyncParentDir(const std::string& path);

}  // namespace defl

#endif  // SRC_COMMON_ATOMIC_FILE_H_
