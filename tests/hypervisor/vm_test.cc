#include "src/hypervisor/vm.h"

#include <gtest/gtest.h>

namespace defl {
namespace {

VmSpec MakeSpec(VmPriority priority = VmPriority::kLow) {
  VmSpec spec;
  spec.name = "test-vm";
  spec.size = ResourceVector(4.0, 16000.0, 100.0, 1000.0);
  spec.priority = priority;
  spec.min_size = ResourceVector(1.0, 2000.0, 10.0, 100.0);
  return spec;
}

TEST(VmTest, InitialAllocationsMatchSpec) {
  Vm vm(1, MakeSpec());
  EXPECT_EQ(vm.guest_visible(), vm.size());
  EXPECT_EQ(vm.effective(), vm.size());
  EXPECT_DOUBLE_EQ(vm.MaxDeflationFraction(), 0.0);
  EXPECT_EQ(vm.state(), VmState::kPending);
}

TEST(VmTest, HvReclaimReducesEffectiveNotVisible) {
  Vm vm(1, MakeSpec());
  const ResourceVector taken = vm.HvReclaim(ResourceVector(2.0, 8000.0, 0.0, 0.0));
  EXPECT_EQ(taken, ResourceVector(2.0, 8000.0, 0.0, 0.0));
  EXPECT_EQ(vm.guest_visible(), vm.size());  // guest unaware (black box)
  EXPECT_EQ(vm.effective(), ResourceVector(2.0, 8000.0, 100.0, 1000.0));
}

TEST(VmTest, HvReclaimClampsToEffective) {
  Vm vm(1, MakeSpec());
  const ResourceVector taken = vm.HvReclaim(ResourceVector(100.0, 99999.0, 0.0, 0.0));
  EXPECT_EQ(taken, ResourceVector(4.0, 16000.0, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(vm.effective().cpu(), 0.0);
}

TEST(VmTest, HvReleaseReturnsResources) {
  Vm vm(1, MakeSpec());
  vm.HvReclaim(ResourceVector(2.0, 8000.0, 0.0, 0.0));
  const ResourceVector released = vm.HvRelease(ResourceVector(1.0, 4000.0, 5.0, 5.0));
  EXPECT_EQ(released, ResourceVector(1.0, 4000.0, 0.0, 0.0));  // disk/net not reclaimed
  EXPECT_EQ(vm.effective(), ResourceVector(3.0, 12000.0, 100.0, 1000.0));
}

TEST(VmTest, UnplugThenClampKeepsInvariant) {
  Vm vm(1, MakeSpec());
  // Hypervisor reclaims 3 CPUs, then guest unplugs 2: visible=2 < spec-hv=1?
  vm.HvReclaim(ResourceVector(3.0, 0.0, 0.0, 0.0));
  vm.guest_os().TryUnplug(ResourceVector(2.0, 0.0));
  vm.ClampHvToVisible();
  EXPECT_DOUBLE_EQ(vm.guest_visible().cpu(), 2.0);
  // hv_reclaimed clamped to visible: effective >= 0.
  EXPECT_GE(vm.effective().cpu(), 0.0);
  EXPECT_LE(vm.hv_reclaimed().cpu(), vm.guest_visible().cpu());
}

TEST(VmTest, DeflationFractionPerResource) {
  Vm vm(1, MakeSpec());
  vm.HvReclaim(ResourceVector(2.0, 4000.0, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(vm.DeflationFraction(ResourceKind::kCpu), 0.5);
  EXPECT_DOUBLE_EQ(vm.DeflationFraction(ResourceKind::kMemory), 0.25);
  EXPECT_DOUBLE_EQ(vm.DeflationFraction(ResourceKind::kDiskBw), 0.0);
  EXPECT_DOUBLE_EQ(vm.MaxDeflationFraction(), 0.5);
}

TEST(VmTest, DeflatableAmountRespectsMinSize) {
  Vm vm(1, MakeSpec(VmPriority::kLow));
  const ResourceVector d = vm.deflatable_amount();
  EXPECT_EQ(d, ResourceVector(3.0, 14000.0, 90.0, 900.0));
  // Deflate to min: nothing left.
  vm.HvReclaim(d);
  EXPECT_TRUE(vm.deflatable_amount().IsZero());
}

TEST(VmTest, HighPriorityVmIsNotDeflatable) {
  Vm vm(1, MakeSpec(VmPriority::kHigh));
  EXPECT_FALSE(vm.deflatable());
  EXPECT_TRUE(vm.deflatable_amount().IsZero());
}

TEST(VmTest, AllocationViewReflectsLayers) {
  Vm vm(1, MakeSpec());
  vm.guest_os().TryUnplug(ResourceVector(1.0, 2000.0));
  vm.ClampHvToVisible();
  vm.HvReclaim(ResourceVector(1.0, 3000.0, 20.0, 200.0));
  const EffectiveAllocation a = vm.allocation();
  EXPECT_DOUBLE_EQ(a.visible_cpus, 3.0);
  EXPECT_DOUBLE_EQ(a.cpu_capacity, 2.0);
  EXPECT_DOUBLE_EQ(a.guest_memory_mb, 14000.0);
  EXPECT_DOUBLE_EQ(a.resident_memory_mb, 11000.0);
  EXPECT_DOUBLE_EQ(a.disk_bw, 80.0);
  EXPECT_DOUBLE_EQ(a.net_bw, 800.0);
  EXPECT_TRUE(a.cpu_multiplexed());
  EXPECT_TRUE(a.memory_overcommitted());
}

TEST(VmTest, AllocationNotMultiplexedWithoutHvReclaim) {
  Vm vm(1, MakeSpec());
  vm.guest_os().TryUnplug(ResourceVector(2.0, 4000.0));
  const EffectiveAllocation a = vm.allocation();
  EXPECT_FALSE(a.cpu_multiplexed());
  EXPECT_FALSE(a.memory_overcommitted());
}

}  // namespace
}  // namespace defl
