// Predictive resource management for deflatable VMs (the paper's §7 future
// work, after Resource Central [26]): an exponentially-weighted moving
// average of high-priority demand, used by the proactive reinflation loop to
// hold back headroom for imminent high-priority arrivals instead of
// reinflating everything and deflating again moments later.
#ifndef SRC_CLUSTER_PREDICTOR_H_
#define SRC_CLUSTER_PREDICTOR_H_

#include <cmath>

namespace defl {

class EwmaPredictor {
 public:
  // alpha in (0, 1]: weight of the newest observation. Also tracks a
  // variance estimate so callers can hold back mean + k*stddev.
  explicit EwmaPredictor(double alpha = 0.2) : alpha_(alpha) {}

  void Observe(double value) {
    if (!initialized_) {
      mean_ = value;
      var_ = 0.0;
      initialized_ = true;
      return;
    }
    const double delta = value - mean_;
    mean_ += alpha_ * delta;
    var_ = (1.0 - alpha_) * (var_ + alpha_ * delta * delta);
  }

  bool initialized() const { return initialized_; }
  double mean() const { return mean_; }
  // Raw variance estimate (may be 0); paired with RestoreState for
  // deterministic checkpoint/restore (SimSession snapshots).
  double variance() const { return var_; }
  void RestoreState(bool initialized, double mean, double var) {
    initialized_ = initialized;
    mean_ = mean;
    var_ = var;
  }
  double stddev() const { return var_ > 0.0 ? std::sqrt(var_) : 0.0; }
  // Conservative demand forecast: mean + k sigma.
  double UpperBound(double k_sigma = 1.0) const { return mean_ + k_sigma * stddev(); }

 private:
  double alpha_;
  bool initialized_ = false;
  double mean_ = 0.0;
  double var_ = 0.0;
};

}  // namespace defl

#endif  // SRC_CLUSTER_PREDICTOR_H_
