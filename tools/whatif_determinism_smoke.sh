#!/bin/sh
# End-to-end determinism check for the what-if service (DESIGN.md §15):
#
#   1. Worker invariance on a MID-RUN snapshot (3h into a 6h run, so
#      `run hours=` queries actually simulate): the shipped query batch and
#      both shipped sweep grids must be byte-identical at workers 1 vs 8.
#   2. Base-source invariance: a cold snapshot taken at the horizon and a
#      durable-dir run of the same scenario driven to completion hold the
#      same state (recovery is byte-exact), so both bases must answer the
#      batch identically -- at different worker counts, for good measure.
#
# Usage: whatif_determinism_smoke.sh <deflation_sim> <deflation_server> \
#            <work_dir> <examples_dir>
set -eu

SIM="$1"
SERVER="$2"
DIR="$3"
EXAMPLES="$4"

rm -rf "$DIR"
mkdir -p "$DIR"
cd "$DIR"

# --- 1. Worker invariance on a mid-run snapshot ---
"$SIM" --servers=10 --duration-h=6 --load=1.5 \
  --stop-after-h=3 --snapshot-out=mid.snap > /dev/null

"$SERVER" --snapshot=mid.snap --queries="$EXAMPLES/whatif_queries.q" \
  --workers=1 --out=batch_w1.jsonl 2> /dev/null
"$SERVER" --snapshot=mid.snap --queries="$EXAMPLES/whatif_queries.q" \
  --workers=8 --out=batch_w8.jsonl 2> /dev/null
cmp batch_w1.jsonl batch_w8.jsonl

for grid in sweep_policies sweep_faults; do
  "$SERVER" --snapshot=mid.snap --sweep="$EXAMPLES/$grid.grid" \
    --workers=1 --out="${grid}_w1.jsonl" 2> /dev/null
  "$SERVER" --snapshot=mid.snap --sweep="$EXAMPLES/$grid.grid" \
    --workers=8 --out="${grid}_w8.jsonl" 2> /dev/null
  cmp "${grid}_w1.jsonl" "${grid}_w8.jsonl"
done

# --- 2. Cold snapshot vs recovered durable dir ---
"$SIM" --servers=10 --duration-h=3 --load=1.5 \
  --stop-after-h=3 --snapshot-out=cold.snap > /dev/null

"$SIM" --servers=10 --duration-h=3 --load=1.5 \
  --durable-dir=run.d --checkpoint-every-h=1 --checkpoint-min-wall-s=0 \
  > /dev/null

"$SERVER" --snapshot=cold.snap --queries="$EXAMPLES/whatif_queries.q" \
  --workers=1 --out=cold.jsonl 2> /dev/null
"$SERVER" --recover-dir=run.d --queries="$EXAMPLES/whatif_queries.q" \
  --workers=4 --out=recovered.jsonl 2> /dev/null
cmp cold.jsonl recovered.jsonl

# --- 3. slo queries against an interactive-serving snapshot ---
# DESIGN.md §16: the batch mixes measurement (no knobs), policy flips, and a
# mix-fraction override; answers must not move with the worker count.
"$SIM" --servers=10 --duration-h=6 --load=1.5 \
  --diurnal --diurnal-period-h=2 --arrival-seed=17 \
  --interactive --interactive-fraction=0.45 --slo-p99-ms=60 \
  --slo-period-s=300 --rate-rps-per-cpu=120 --rate-period-h=2 \
  --stop-after-h=3 --snapshot-out=slo.snap > /dev/null

cat > slo.q <<'EOF'
slo hours=1
slo p99=40 policy=uniform hours=1
slo p99=40 policy=slo hours=1
slo fraction=0.8 hours=1
EOF
"$SERVER" --snapshot=slo.snap --queries=slo.q \
  --workers=1 --out=slo_w1.jsonl 2> /dev/null
"$SERVER" --snapshot=slo.snap --queries=slo.q \
  --workers=8 --out=slo_w8.jsonl 2> /dev/null
cmp slo_w1.jsonl slo_w8.jsonl
grep -q '"violation_rate"' slo_w1.jsonl

echo "whatif determinism smoke: OK"
