file(REMOVE_RECURSE
  "CMakeFiles/cluster_overcommit.dir/cluster_overcommit.cpp.o"
  "CMakeFiles/cluster_overcommit.dir/cluster_overcommit.cpp.o.d"
  "cluster_overcommit"
  "cluster_overcommit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_overcommit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
