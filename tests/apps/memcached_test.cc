#include "src/apps/memcached.h"

#include <gtest/gtest.h>

#include "src/apps/deflation_harness.h"

namespace defl {
namespace {

EffectiveAllocation FullAllocation() {
  const VmSpec spec = StandardVmSpec();
  Vm vm(0, spec);
  return vm.allocation();
}

TEST(MemcachedModelTest, BaselineThroughputIsCpuBound) {
  MemcachedModel model{MemcachedConfig{}};
  const EffectiveAllocation full = FullAllocation();
  const double kgets = model.ThroughputKGets(full);
  // 4 cores at 30 us/GET, scaled by the hit rate: on the order of 1e2 kGETS.
  EXPECT_GT(kgets, 80.0);
  EXPECT_LT(kgets, 140.0);
  model.SetBaseline(full);
  EXPECT_NEAR(model.NormalizedPerformance(full), 1.0, 1e-9);
}

TEST(MemcachedModelTest, HitRateHighWithSkewedKeys) {
  MemcachedModel model{MemcachedConfig{}};
  EXPECT_GT(model.HitRate(), 0.85);
  EXPECT_LE(model.HitRate(), 1.0);
}

TEST(MemcachedModelTest, FootprintIsStoredPlusOverhead) {
  MemcachedConfig config;
  config.configured_cache_mb = 12288.0;
  config.fill_fraction = 0.5;
  config.process_overhead_mb = 1000.0;
  MemcachedModel model(config);
  EXPECT_DOUBLE_EQ(model.StoredMb(), 6144.0);
  EXPECT_DOUBLE_EQ(model.MemoryFootprintMb(), 7144.0);
}

TEST(MemcachedModelTest, AgentShrinksCacheAndReportsFreedMemory) {
  MemcachedConfig config;
  config.fill_fraction = 1.0;
  MemcachedModel model(config);
  const double before = model.MemoryFootprintMb();
  const ResourceVector freed =
      model.agent()->SelfDeflate(ResourceVector(0.0, 4096.0));
  EXPECT_NEAR(freed.memory_mb(), 4096.0, 1.0);
  EXPECT_NEAR(model.MemoryFootprintMb(), before - freed.memory_mb(), 1e-6);
  EXPECT_LT(model.HitRate(), 1.0);
}

TEST(MemcachedModelTest, AgentHonorsMinimumCacheSize) {
  MemcachedConfig config;
  config.min_cache_mb = 512.0;
  MemcachedModel model(config);
  model.agent()->SelfDeflate(ResourceVector(0.0, 1e9));
  EXPECT_DOUBLE_EQ(model.cache_limit_mb(), 512.0);
}

TEST(MemcachedModelTest, ReinflateGrowsBackToConfiguredLimit) {
  MemcachedModel model{MemcachedConfig{}};
  model.agent()->SelfDeflate(ResourceVector(0.0, 6000.0));
  model.agent()->OnReinflate(ResourceVector(0.0, 1e9));
  EXPECT_DOUBLE_EQ(model.cache_limit_mb(), model.config().configured_cache_mb);
}

TEST(MemcachedModelTest, HypervisorMemoryDeflationCausesSwapStalls) {
  MemcachedModel model{MemcachedConfig{}};
  const EffectiveAllocation full = FullAllocation();
  model.SetBaseline(full);
  const ResourceVector mem_half(0.0, 0.5, 0.0, 0.0);
  const HarnessResult r =
      DeflateAppVm(model, DeflationMode::kHypervisorOnly, mem_half);
  const double perf = model.NormalizedPerformance(r.alloc);
  EXPECT_LT(perf, 0.95);  // swapping hurts...
  EXPECT_GT(perf, 0.2);   // ...but is not a preemption-style cliff
}

TEST(MemcachedModelTest, OsOnlyDeflationOomsAtHighLevels) {
  // The Figure 5a failure mode: forced unplug beyond the footprint kills
  // the unmodified app.
  MemcachedModel model{MemcachedConfig{}};
  const EffectiveAllocation full = FullAllocation();
  model.SetBaseline(full);
  const HarnessResult r = DeflateAppVm(model, DeflationMode::kOsOnly,
                                       ResourceVector(0.0, 0.6, 0.0, 0.0),
                                       StandardVmSpec(), /*use_agent=*/false);
  EXPECT_TRUE(r.oom);
  EXPECT_DOUBLE_EQ(model.NormalizedPerformance(r.alloc), 0.0);
}

TEST(MemcachedModelTest, OsOnlySafeAtLowLevels) {
  MemcachedModel model{MemcachedConfig{}};
  const EffectiveAllocation full = FullAllocation();
  model.SetBaseline(full);
  const HarnessResult r = DeflateAppVm(model, DeflationMode::kOsOnly,
                                       ResourceVector(0.0, 0.25, 0.0, 0.0),
                                       StandardVmSpec(), /*use_agent=*/false);
  EXPECT_FALSE(r.oom);
  EXPECT_GT(model.NormalizedPerformance(r.alloc), 0.95);
}

TEST(MemcachedModelTest, AppDeflationBeatsUnmodifiedAtHighMemoryPressure) {
  // Figure 5c: at >= 50% memory deflation the deflation-aware memcached
  // (resize + LRU eviction, no swap) far outperforms the unmodified one.
  MemcachedConfig heavy;
  heavy.fill_fraction = 1.0;     // cache is full, nothing free in the guest
  heavy.swap_in_us = 2500.0;

  MemcachedModel unmodified(heavy);
  const EffectiveAllocation full = FullAllocation();
  unmodified.SetBaseline(full);
  const HarnessResult u = DeflateAppVm(unmodified, DeflationMode::kVmLevel,
                                       ResourceVector(0.0, 0.5, 0.0, 0.0),
                                       StandardVmSpec(), /*use_agent=*/false);
  const double kgets_unmodified = unmodified.ThroughputKGets(u.alloc);

  MemcachedModel aware(heavy);
  aware.SetBaseline(full);
  const HarnessResult a = DeflateAppVm(aware, DeflationMode::kCascade,
                                       ResourceVector(0.0, 0.5, 0.0, 0.0));
  const double kgets_aware = aware.ThroughputKGets(a.alloc);

  EXPECT_GT(kgets_aware, kgets_unmodified * 3.0);
  // The deflation-aware server still serves a healthy fraction of baseline.
  EXPECT_GT(kgets_aware, unmodified.ThroughputKGets(full) * 0.5);
}

TEST(MemcachedModelTest, CpuDeflationScalesThroughput) {
  MemcachedModel model{MemcachedConfig{}};
  const EffectiveAllocation full = FullAllocation();
  model.SetBaseline(full);
  const HarnessResult r = DeflateAppVm(model, DeflationMode::kVmLevel,
                                       ResourceVector(0.5, 0.0, 0.0, 0.0),
                                       StandardVmSpec(), /*use_agent=*/false);
  const double perf = model.NormalizedPerformance(r.alloc);
  EXPECT_GT(perf, 0.4);
  EXPECT_LT(perf, 0.65);  // roughly proportional for a throughput server
}

TEST(MemcachedModelTest, PerformanceMonotonicallyDegradesWithMemoryDeflation) {
  double prev = 2.0;
  for (const double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.55}) {
    MemcachedModel model{MemcachedConfig{}};
    const EffectiveAllocation full = FullAllocation();
    model.SetBaseline(full);
    const HarnessResult r = DeflateAppVm(model, DeflationMode::kVmLevel,
                                         ResourceVector(0.0, f, 0.0, 0.0),
                                         StandardVmSpec(), /*use_agent=*/false);
    const double perf = model.NormalizedPerformance(r.alloc);
    EXPECT_LE(perf, prev + 1e-9) << "at deflation " << f;
    prev = perf;
  }
}

}  // namespace
}  // namespace defl
