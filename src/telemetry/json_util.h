// Shared JSON rendering helpers for the telemetry dumps (metrics DumpJson,
// trace DumpJsonl). One definition instead of per-file copies, and strictly
// valid output: every emission path funnels through here, so a downstream
// parser never sees a bare `nan`/`inf` token or an unescaped control byte.
#ifndef SRC_TELEMETRY_JSON_UTIL_H_
#define SRC_TELEMETRY_JSON_UTIL_H_

#include <string>

namespace defl {

// Deterministic, locale-independent double rendering. Non-finite values
// render as `null`: NaN/Inf have no JSON representation, and emitting them
// bare breaks strict parsers.
std::string JsonNumber(double x);

// Quotes and escapes `s` as a JSON string literal (quote, backslash, and
// all control bytes < 0x20).
std::string JsonString(const std::string& s);

}  // namespace defl

#endif  // SRC_TELEMETRY_JSON_UTIL_H_
