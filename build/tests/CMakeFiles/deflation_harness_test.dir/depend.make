# Empty dependencies file for deflation_harness_test.
# This may be replaced when dependencies are built.
