# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[deflation_sim_smoke]=] "/root/repo/build/tools/deflation_sim" "--servers=4" "--duration-h=1" "--load=1.2" "--pricing")
set_tests_properties([=[deflation_sim_smoke]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[spark_sim_smoke]=] "/root/repo/build/tools/spark_sim" "--workload=kmeans" "--approach=cascade" "--fraction=0.5" "--scale=0.25")
set_tests_properties([=[spark_sim_smoke]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
