# Empty dependencies file for deflation_sim.
# This may be replaced when dependencies are built.
