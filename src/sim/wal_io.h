// Write-ahead journal for durable simulation runs (DESIGN.md §13). The WAL
// records every externally injected command before it executes, plus a
// marker for every checkpoint, so a SIGKILLed run can be rebuilt exactly:
// load the newest valid snapshot, then re-apply the journaled commands.
//
// File layout (all integers little-endian):
//
//   header:  magic "DEFLWAL0" (8 bytes) | format version (u32)
//   record:  payload length (u32) | kind (u8) | payload |
//            FNV-1a-64 over (length | kind | payload) (u64)
//
// Every record carries its own checksum, so the reader is torn-tail
// tolerant in the trace_io spirit: it accepts records until the first
// short, corrupt, or malformed one, reports how many bytes were valid, and
// the writer truncates the garbage tail before appending again. A record is
// only acknowledged once write(2) + fsync(2) have returned, which is what
// makes it a WRITE-AHEAD log: a command that was acted on is always
// recoverable, and a command that is not recoverable was never acted on.
//
// Replay safety: commands are absolute targets (run until sim time T, run
// until N total events executed), never deltas, so re-applying the whole
// journal on top of ANY valid checkpoint -- even one taken after some of
// the journaled commands already ran -- converges to the same state.
// Checkpoint markers are written BEFORE their snapshot file, so a marker
// without a snapshot means "checkpoint was cut short" (harmless), while a
// snapshot without a marker cannot exist.
#ifndef SRC_SIM_WAL_IO_H_
#define SRC_SIM_WAL_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace defl {

inline constexpr char kWalMagic[8] = {'D', 'E', 'F', 'L', 'W', 'A', 'L', '0'};
inline constexpr uint32_t kWalFormatVersion = 1;

enum class WalRecordKind : uint8_t {
  // Run the simulation until sim time `t_s` (absolute, clamped to the
  // horizon; idempotent once the clock has passed it).
  kStepUntil = 0,
  // Run until `target_events` TOTAL events have executed (absolute count;
  // idempotent once events_executed has passed it).
  kStepEventsTo = 1,
  // Checkpoint `checkpoint_id` is about to be written at (sim_time_s,
  // events_executed); `snapshot_fnv`/`snapshot_size` fingerprint the blob so
  // recovery can verify a snapshot file against the marker that announced it.
  kCheckpoint = 2,
};
inline constexpr uint8_t kMaxWalRecordKind = 2;

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kStepUntil;
  double t_s = 0.0;                // kStepUntil
  int64_t target_events = 0;       // kStepEventsTo
  uint64_t checkpoint_id = 0;      // kCheckpoint
  double sim_time_s = 0.0;         // kCheckpoint
  int64_t events_executed = 0;     // kCheckpoint
  uint64_t snapshot_fnv = 0;       // kCheckpoint
  uint64_t snapshot_size = 0;      // kCheckpoint

  static WalRecord StepUntil(double t_s);
  static WalRecord StepEventsTo(int64_t target_events);
  static WalRecord Checkpoint(uint64_t id, double sim_time_s,
                              int64_t events_executed, uint64_t snapshot_fnv,
                              uint64_t snapshot_size);
};

// One framed record (length | kind | payload | checksum), sans file header.
std::string EncodeWalRecord(const WalRecord& record);

// The 12-byte file header.
std::string EncodeWalHeader();

struct WalReadResult {
  std::vector<WalRecord> records;  // every record before the torn point
  uint64_t valid_bytes = 0;        // prefix length holding header + records
  bool torn = false;               // trailing garbage was found (and ignored)
  std::string torn_reason;         // what was wrong with the first bad record
};

// Decodes a WAL image. A missing/short/corrupt header is a hard error (the
// file is not a WAL); anything wrong after that merely marks the tail torn.
Result<WalReadResult> DecodeWal(const std::string& bytes);

// Reads and decodes `path`. Errors only on open/read failure or a bad
// header; torn tails come back in the result.
Result<WalReadResult> ReadWalFile(const std::string& path);

// Append handle. Every Append is write + fsync before it returns success;
// the caller may treat a returned record as durable.
class WalWriter {
 public:
  // Creates `path` with a fresh header (truncating any previous content),
  // fsyncs it and its directory.
  static Result<WalWriter> Create(const std::string& path);

  // Opens `path` for appending at `valid_bytes` (from ReadWalFile),
  // truncating any torn tail past it first.
  static Result<WalWriter> OpenAt(const std::string& path, uint64_t valid_bytes);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  ~WalWriter();

  Result<bool> Append(const WalRecord& record);

 private:
  explicit WalWriter(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace defl

#endif  // SRC_SIM_WAL_IO_H_
