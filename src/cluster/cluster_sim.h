// Trace-driven cluster simulation (the Section 6.3 methodology): replay a
// VM arrival/lifetime trace through the cluster manager and measure
// utilization, overcommitment, and the probability that a low-priority VM
// is preempted -- with deflation-based or preemption-only reclamation.
#ifndef SRC_CLUSTER_CLUSTER_SIM_H_
#define SRC_CLUSTER_CLUSTER_SIM_H_

#include <cstdint>
#include <vector>

#include "src/apps/web_cluster.h"
#include "src/cluster/cluster_manager.h"
#include "src/cluster/pricing.h"
#include "src/cluster/trace.h"
#include "src/faults/fault_plan.h"

namespace defl {

// Interactive-serving workload mix (ROADMAP item 3, the Fuerst/Shenoy
// follow-up question): a fraction of low-priority arrivals are web VMs
// serving an open-loop diurnal request stream. A periodic SLO controller
// evaluates each web VM's p99 against the fig5-style latency model
// (WebLatencyParams) and -- when slo_aware -- relieves violating VMs by
// deflating batch/spark co-tenants and reinflating the web VM, as an
// alternative to the EuroSys uniform-proportional policies.
struct InteractiveSloConfig {
  bool enabled = false;
  // Fraction of low-priority trace arrivals re-tagged as interactive web
  // VMs (seeded, deterministic; explicit traces tag by "web" name prefix).
  double fraction = 0.3;
  uint64_t seed = 21;
  // Tail-latency target for interactive VMs, in milliseconds.
  double slo_p99_ms = 100.0;
  // true: the SLO-aware controller (prefer batch victims, reinflate web VMs
  // on SLO pressure); false: measure violations only and leave reclamation
  // to the uniform policies (the paper's baseline).
  bool slo_aware = true;
  double control_period_s = 60.0;
  // Open-loop request generator: per-VM offered load in requests/s is
  // rate_rps_per_cpu * nominal_cpus * (1 + amplitude*sin(2*pi*(t+phase)/T))
  // with a per-VM deterministic phase (millions of users in aggregate).
  double rate_rps_per_cpu = 30.0;
  double rate_amplitude = 0.6;
  double rate_period_s = 24.0 * 3600.0;
  WebLatencyParams latency;
};

struct ClusterSimConfig {
  int num_servers = 100;
  ResourceVector server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  TraceConfig trace;
  // When enabled, arrivals come from the diurnal/bursty generator
  // (GenerateDiurnalTrace) instead of the flat-rate Poisson process;
  // trace.arrival_rate_per_s remains the mean rate, so WithTargetLoad
  // composes unchanged. Ignored when explicit_trace is set.
  ArrivalGenConfig arrivals;
  // When non-empty, replayed instead of generating from `trace` (the paper
  // replays the Eucalyptus traces this way); `trace.duration_s` still bounds
  // the simulated horizon.
  std::vector<TraceEvent> explicit_trace;
  ClusterConfig cluster;
  double sample_period_s = 300.0;
  // Proactive reinflation: every period, servers return free resources to
  // their deflated VMs (0 = only reinflate when a VM completes, the paper's
  // baseline behavior).
  double reinflate_period_s = 0.0;
  // With predictive holdback (§7 future work), the reinflation loop keeps
  // back an EWMA-forecast of imminent high-priority demand growth instead of
  // reinflating everything and re-deflating moments later.
  bool predictive_holdback = false;
  double predictor_alpha = 0.2;
  // Failure injection (DESIGN.md §8). Rules with no effect in a cluster run
  // are ignored; server_crash/server_degrade/server_recover rules become
  // scheduled health transitions. An empty plan disables injection entirely
  // (and keeps the telemetry output byte-identical to a faultless build).
  FaultPlan fault_plan;
  // How long a recovered server stays on probation (kRecovering, excluded
  // from placement) before being promoted back to kHealthy.
  double recovery_grace_s = 600.0;
  // Interactive-serving workload mix + SLO controller (off by default; when
  // disabled the run is byte-identical to builds without the feature).
  InteractiveSloConfig interactive;
  // Telemetry sink (absorbed the second argument of the deprecated
  // RunClusterSim overload): the run publishes every metric and trace event
  // through it and derives all result fields from it. nullptr = the session
  // owns a private context with the event trace disabled. Not part of the
  // serialized snapshot state; Restore() takes its own sink.
  TelemetryContext* telemetry = nullptr;
};

struct ClusterSimResult {
  ClusterCounters counters;
  // Fraction of launched low-priority VMs that were later revoked.
  double preemption_probability = 0.0;
  // Fraction of all arrivals that could not be placed.
  double rejection_rate = 0.0;
  double mean_utilization = 0.0;      // time-weighted, dominant dimension
  double mean_overcommitment = 0.0;   // time-weighted nominal demand / capacity
  double peak_overcommitment = 0.0;
  // Per-server nominal overcommitment, sampled periodically (Figure 8d).
  std::vector<double> server_overcommitment_samples;
  // Resource-hours delivered, for the §8 pricing models.
  UsageSummary usage;
  // Mean fraction of their nominal size that low-priority VMs actually had
  // (1.0 = never deflated); the "quality" of transient capacity.
  double low_priority_allocation_quality = 0.0;
  // Crash fallout, separate from the policy preemptions above: VMs revoked
  // because their server died and nothing else had room do not count against
  // the deflation policy's preemption probability.
  int64_t crash_preemptions = 0;
  int64_t crash_replacements = 0;
  int64_t server_crashes = 0;
  int64_t server_recoveries = 0;
  // Interactive-serving scenario (all zero unless interactive.enabled).
  int64_t interactive_vms = 0;        // arrivals tagged as web VMs
  double slo_violation_rate = 0.0;    // violating checks / total checks
  double slo_mean_p99_ms = 0.0;       // mean observed p99 across checks
  double slo_peak_p99_ms = 0.0;       // worst observed p99
  int64_t slo_reinflate_ops = 0;      // SLO-pressure reinflations of web VMs
  int64_t slo_victim_deflations = 0;  // batch co-tenants deflated to relieve
};

// Batch compatibility wrapper over SimSession (src/cluster/sim_session.h):
// opens a session on `config` and runs it to completion. The cluster manager
// / servers / controllers publish through config.telemetry (or a private
// context with the trace disabled when unset), the sampling loop records the
// cluster/utilization and cluster/overcommitment series, and every
// ClusterSimResult field is derived back from the registry. Drivers that
// want stepping, inspection, or checkpoint/restore use SimSession directly.
ClusterSimResult RunClusterSim(const ClusterSimConfig& config);
// DEPRECATED: set ClusterSimConfig::telemetry instead (or use SimSession
// directly). Kept only as a source-compatibility shim; no in-tree callers.
[[deprecated("set ClusterSimConfig::telemetry (or use SimSession) instead")]]
ClusterSimResult RunClusterSim(const ClusterSimConfig& config,
                               TelemetryContext* telemetry);

}  // namespace defl

#endif  // SRC_CLUSTER_CLUSTER_SIM_H_
