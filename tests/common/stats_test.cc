#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace defl {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleSampleVarianceIsZero) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  RunningStats target;
  target.Merge(a);
  EXPECT_EQ(target.count(), 2);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 17.5);
}

TEST(PercentileTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99.0), 7.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bin 0
  h.Add(9.5);   // bin 4
  h.Add(-3.0);  // clamps to bin 0
  h.Add(42.0);  // clamps to bin 4
  h.Add(4.0);   // bin 2
  EXPECT_EQ(h.total(), 5);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(2), 1);
  EXPECT_EQ(h.bin_count(4), 2);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(HistogramTest, NonFiniteSamplesAreDroppedNotBinned) {
  Histogram h(0.0, 10.0, 5);
  h.Add(std::nan(""));
  h.Add(std::numeric_limits<double>::infinity());
  h.Add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 0);
  EXPECT_EQ(h.dropped(), 3);
  for (int b = 0; b < h.num_bins(); ++b) {
    EXPECT_EQ(h.bin_count(b), 0) << "bin " << b;
  }
  // Finite samples still land normally, including huge ones that would
  // overflow the bin index without the pre-cast clamp.
  h.Add(5.0);
  h.Add(1e300);
  h.Add(-1e300);
  EXPECT_EQ(h.total(), 3);
  EXPECT_EQ(h.dropped(), 3);
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(2), 1);
  EXPECT_EQ(h.bin_count(4), 1);
}

TEST(TimeWeightedMeanTest, PiecewiseConstantSignal) {
  TimeWeightedMean m;
  m.Update(0.0, 1.0);   // 1.0 over [0, 10)
  m.Update(10.0, 3.0);  // 3.0 over [10, 20)
  EXPECT_DOUBLE_EQ(m.Finish(20.0), 2.0);
}

TEST(TimeWeightedMeanTest, UnevenIntervals) {
  TimeWeightedMean m;
  m.Update(0.0, 10.0);  // 10 for 1s
  m.Update(1.0, 0.0);   // 0 for 9s
  EXPECT_DOUBLE_EQ(m.Finish(10.0), 1.0);
}

}  // namespace
}  // namespace defl
