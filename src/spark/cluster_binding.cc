#include "src/spark/cluster_binding.h"

#include <algorithm>

namespace defl {

class SparkClusterBinding::VmAgent : public DeflationAgent {
 public:
  VmAgent(SparkClusterBinding* binding, Vm* vm) : binding_(binding), vm_(vm) {}

  ResourceVector SelfDeflate(const ResourceVector& target) override {
    double fraction = 0.0;
    for (const ResourceKind kind : kAllResources) {
      if (vm_->size()[kind] > 0.0) {
        fraction = std::max(fraction, target[kind] / vm_->size()[kind]);
      }
    }
    const SparkDeflationChoice choice =
        binding_->DecideRound(binding_->sim_->now(), fraction);
    if (choice != SparkDeflationChoice::kSelfDeflate) {
      return ResourceVector::Zero();  // decline; OS/hypervisor take over
    }
    return binding_->engine_->SelfDeflateVm(vm_->id(), target);
  }

  void OnReinflate(const ResourceVector& added) override {
    binding_->engine_->ReinflateVm(vm_->id(), added);
  }

  double MemoryFootprintMb() const override {
    return binding_->engine_->WorkerFootprintMb(vm_->id());
  }

 private:
  SparkClusterBinding* binding_;
  Vm* vm_;
};

SparkClusterBinding::SparkClusterBinding(SparkEngine* engine,
                                         LocalController* controller, Simulator* sim)
    : engine_(engine), controller_(controller), sim_(sim) {
  for (Vm* vm : engine_->worker_vms()) {
    agents_.push_back(std::make_unique<VmAgent>(this, vm));
    controller_->RegisterAgent(vm->id(), agents_.back().get());
    registered_.push_back(vm->id());
    vm->guest_os().set_app_used_mb(engine_->WorkerFootprintMb(vm->id()));
  }
}

SparkClusterBinding::~SparkClusterBinding() {
  for (const VmId id : registered_) {
    controller_->UnregisterAgent(id);
  }
}

SparkDeflationChoice SparkClusterBinding::DecideRound(double now, double fraction) {
  if (now == round_time_) {
    return round_choice_;  // same round: the master decides once per event
  }
  round_time_ = now;
  // The master sees the whole deflation vector; under the controller's
  // proportional policy every worker receives (approximately) this fraction.
  const std::vector<double> fractions(engine_->worker_vms().size(),
                                      std::min(fraction, 0.95));
  const SparkPolicyDecision decision = DecideSparkDeflation(
      engine_->MakePolicyInputs(fractions), controller_->telemetry());
  round_choice_ = decision.choice;
  if (round_choice_ == SparkDeflationChoice::kSelfDeflate) {
    ++self_rounds_;
  } else {
    ++vm_rounds_;
  }
  return round_choice_;
}

}  // namespace defl
