# Empty dependencies file for fig5a_memcached_memory.
# This may be replaced when dependencies are built.
