#include "src/telemetry/json_util.h"

#include <cmath>
#include <cstdio>

namespace defl {

std::string JsonNumber(double x) {
  if (!std::isfinite(x)) {
    return "null";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace defl
