// Circuit-breaker lifecycle for the guarded agent RPC path (DESIGN.md §8):
// a dead agent times out, retries back off, the breaker opens, deflation
// still meets its target by falling through to the OS/hypervisor layers,
// and a successful footprint probe closes the breaker again. All with a
// fixed seed, so the exact schedule is pinned.
#include "src/core/agent_guard.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/local_controller.h"
#include "src/core/protocol.h"

namespace defl {
namespace {

// Elastic test agent: frees exactly what is asked, tracks its footprint.
class ElasticAgent : public DeflationAgent {
 public:
  explicit ElasticAgent(double footprint_mb) : footprint_mb_(footprint_mb) {}

  ResourceVector SelfDeflate(const ResourceVector& target) override {
    ++calls_;
    const double give = std::min(target.memory_mb(), footprint_mb_ * 0.5);
    footprint_mb_ -= give;
    return ResourceVector(0.0, give);
  }
  void OnReinflate(const ResourceVector& added) override {
    footprint_mb_ += added.memory_mb();
  }
  double MemoryFootprintMb() const override { return footprint_mb_; }
  int calls() const { return calls_; }

 private:
  double footprint_mb_;
  int calls_ = 0;
};

GuestOs::Params ExactOsParams() {
  GuestOs::Params p;
  p.kernel_reserve_mb = 0.0;
  p.unplug_efficiency = 1.0;
  p.min_cpus = 0;
  return p;
}

std::unique_ptr<Vm> MakeVm(VmId id) {
  VmSpec spec;
  spec.name = "guarded-vm";
  spec.size = ResourceVector(8.0, 32768.0);
  spec.priority = VmPriority::kLow;
  auto vm = std::make_unique<Vm>(id, spec, ExactOsParams());
  vm->set_state(VmState::kRunning);
  vm->guest_os().set_app_used_mb(8000.0);
  return vm;
}

// kAgentUnresponsive with p=1 scoped to the VM, budgeted so the fault
// "heals" after `budget` attempts -- the deterministic way to script
// timeout -> breaker open -> fall-through -> probe success -> close.
FaultPlan DeadAgentPlan(int64_t vm, int64_t budget) {
  FaultPlan plan;
  plan.seed = 77;
  FaultRule rule;
  rule.kind = FaultKind::kAgentUnresponsive;
  rule.vm = vm;
  rule.probability = 1.0;
  rule.max_count = budget;
  plan.rules.push_back(rule);
  return plan;
}

TEST(AgentGuardTest, BreakerLifecycleMeetsTargetThroughout) {
  Server server(1, ResourceVector(32.0, 131072.0));
  Vm* vm = server.AddVm(MakeVm(1));
  LocalControllerConfig config;
  config.mode = DeflationMode::kCascade;
  config.guard.rpc_timeout_s = 5.0;
  config.guard.max_attempts = 3;
  config.guard.breaker_threshold = 3;
  LocalController controller(&server, config);
  ElasticAgent agent(8000.0);
  controller.RegisterAgent(1, &agent);

  // Budget of 4: the first request burns 3 attempts (opens the breaker),
  // the first probe burns the 4th (still down), the second probe succeeds.
  FaultInjector injector(DeadAgentPlan(1, 4));
  controller.AttachFaultInjector(&injector);
  GuardedAgent* guard = controller.FindGuard(1);
  ASSERT_NE(guard, nullptr);
  EXPECT_FALSE(guard->breaker_open());

  // Request 1: every attempt times out, the breaker trips on the third
  // consecutive timeout, and the OS + hypervisor still deliver the target.
  const ResourceVector target(2.0, 4096.0);
  const DeflationOutcome out1 = controller.DeflateVm(1, target);
  EXPECT_TRUE(out1.TargetMet());
  EXPECT_TRUE(out1.app_freed.IsZero());
  EXPECT_TRUE(guard->breaker_open());
  EXPECT_EQ(guard->timeouts(), 3);
  EXPECT_EQ(guard->retries(), 2);
  EXPECT_EQ(guard->breaker_trips(), 1);
  EXPECT_EQ(agent.calls(), 0);
  // Timeout waits and backoff were folded into the reported latency.
  EXPECT_GE(out1.latency_seconds, 3 * config.guard.rpc_timeout_s);
  for (const ResourceKind kind : kAllResources) {
    EXPECT_GE(vm->effective()[kind], -1e-9);
  }

  // Request 2: breaker open, probe times out (burns the budget's last
  // fault), the cascade falls through -- target still met, agent untouched.
  const DeflationOutcome out2 = controller.DeflateVm(1, target);
  EXPECT_TRUE(out2.TargetMet());
  EXPECT_TRUE(guard->breaker_open());
  EXPECT_EQ(guard->timeouts(), 4);
  EXPECT_EQ(agent.calls(), 0);

  // Request 3: the fault budget is spent, the footprint probe succeeds,
  // the breaker closes, and the agent participates again.
  const DeflationOutcome out3 = controller.DeflateVm(1, target);
  EXPECT_TRUE(out3.TargetMet());
  EXPECT_FALSE(guard->breaker_open());
  EXPECT_EQ(agent.calls(), 1);
  EXPECT_GT(out3.app_freed.memory_mb(), 0.0);
  for (const ResourceKind kind : kAllResources) {
    EXPECT_GE(vm->effective()[kind], -1e-9);
  }
}

TEST(AgentGuardTest, DeadAgentFootprintStaysCached) {
  // An open breaker must report the last known footprint, not zero --
  // otherwise hot-unplug would consider the app's memory free to take.
  ElasticAgent agent(6000.0);
  FaultInjector injector(DeadAgentPlan(9, -1));  // permanently dead
  AgentGuardConfig config;
  config.breaker_threshold = 1;
  GuardedAgent guard(9, &agent, &injector, config);
  EXPECT_DOUBLE_EQ(guard.MemoryFootprintMb(), 6000.0);
  guard.SelfDeflate(ResourceVector(0.0, 1000.0));  // times out, breaker opens
  ASSERT_TRUE(guard.breaker_open());
  EXPECT_DOUBLE_EQ(guard.MemoryFootprintMb(), 6000.0);
}

TEST(AgentGuardTest, NoInjectorIsPassThrough) {
  ElasticAgent agent(8000.0);
  AgentGuardConfig config;
  GuardedAgent guard(1, &agent, nullptr, config);
  const ResourceVector freed = guard.SelfDeflate(ResourceVector(0.0, 2000.0));
  EXPECT_DOUBLE_EQ(freed.memory_mb(), 2000.0);
  EXPECT_EQ(guard.timeouts(), 0);
  EXPECT_DOUBLE_EQ(guard.TakeInjectedDelay(), 0.0);
}

TEST(AgentGuardTest, ShortDeliveryScalesFreedAmount) {
  FaultPlan plan;
  plan.seed = 11;
  FaultRule rule;
  rule.kind = FaultKind::kAgentShortDelivery;
  rule.probability = 1.0;
  rule.magnitude = 0.5;
  plan.rules.push_back(rule);
  FaultInjector injector(plan);
  ElasticAgent agent(8000.0);
  AgentGuardConfig config;
  GuardedAgent guard(1, &agent, &injector, config);
  const ResourceVector freed = guard.SelfDeflate(ResourceVector(0.0, 2000.0));
  EXPECT_DOUBLE_EQ(freed.memory_mb(), 1000.0);  // half of what the app gave
}

TEST(AgentGuardTest, FaultyTransportDegradesToSilence) {
  // Dropped or corrupted wire responses must read as "agent freed nothing",
  // never as garbage amounts.
  ElasticAgent agent(8000.0);
  AgentEndpoint endpoint(3, &agent);
  FaultPlan plan;
  plan.seed = 21;
  FaultRule rule;
  rule.kind = FaultKind::kWireDrop;
  rule.probability = 1.0;
  rule.max_count = 1;
  plan.rules.push_back(rule);
  FaultInjector injector(plan);
  WireTransport transport = MakeFaultyTransport(
      [&endpoint](const std::string& line) { return endpoint.Handle(line); },
      &injector, 3);
  RemoteAgentProxy proxy(3, transport);
  // First call: the response line is dropped; the proxy sees silence.
  EXPECT_TRUE(proxy.SelfDeflate(ResourceVector(0.0, 1000.0)).IsZero());
  // Budget exhausted: the next call goes through normally.
  EXPECT_GT(proxy.SelfDeflate(ResourceVector(0.0, 1000.0)).memory_mb(), 0.0);
}

}  // namespace
}  // namespace defl
