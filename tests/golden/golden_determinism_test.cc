// Golden end-to-end determinism suite (DESIGN.md §10): every simulation
// scenario -- including each shipped examples/*.plan fault plan -- must
// produce byte-identical metrics JSON and event-trace JSONL whether it runs
// on 1 thread or 8. On top of the pairwise comparison, the 1-thread output
// is hashed and pinned against tests/golden/golden_digests.txt, so any
// change to the simulation's observable output (intended or not) shows up
// in review as a digest diff.
//
// To regenerate after an intended output change:
//   DEFL_UPDATE_GOLDEN=1 ./golden_determinism_test
// then copy the printed block into tests/golden/golden_digests.txt.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster_sim.h"
#include "src/cluster/sim_session.h"
#include "src/faults/fault_plan.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

#ifndef DEFL_SOURCE_DIR
#error "build must define DEFL_SOURCE_DIR"
#endif

constexpr const char* kDigestFile =
    DEFL_SOURCE_DIR "/tests/golden/golden_digests.txt";

// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms for the
// byte-stream pinning this suite needs (not cryptographic, not required).
uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 14695981039346656037ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string HexDigest(uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

// Scenario matrix: the deflation_sim defaults at small scale, one variant
// per placement policy and strategy, plus one per shipped fault plan.
const char* const kScenarios[] = {
    "base",           "first_fit",     "two_choices",    "preemption_only",
    "reinflate",      "predictive",    "diurnal",        "faults_basic",
    "faults_wire",    "faults_cluster", "interactive",   "interactive_uniform",
};

ClusterSimConfig MakeConfig(const std::string& name) {
  ClusterSimConfig config;
  config.num_servers = 40;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.seed = 42;
  config.trace.duration_s = 3.0 * 3600.0;
  config.trace.max_lifetime_s = 2.0 * 3600.0;
  config.trace.low_priority_fraction = 0.6;
  config.trace =
      WithTargetLoad(config.trace, 1.6, config.num_servers, config.server_capacity);

  if (name == "first_fit") {
    config.cluster.placement = PlacementPolicy::kFirstFit;
  } else if (name == "two_choices") {
    config.cluster.placement = PlacementPolicy::kTwoChoices;
  } else if (name == "preemption_only") {
    config.cluster.strategy = ReclamationStrategy::kPreemptionOnly;
  } else if (name == "reinflate") {
    config.reinflate_period_s = 600.0;
  } else if (name == "predictive") {
    config.reinflate_period_s = 600.0;
    config.predictive_holdback = true;
  } else if (name == "diurnal") {
    // Diurnal/bursty arrivals (src/sim/arrival_gen.h): a short period so the
    // 3-hour horizon covers peaks and troughs, with bursts layered on top.
    config.reinflate_period_s = 600.0;
    config.arrivals.enabled = true;
    config.arrivals.diurnal_amplitude = 0.7;
    config.arrivals.diurnal_period_s = 2.0 * 3600.0;
    config.arrivals.burst_rate_per_s = 2.0 / 3600.0;
    config.arrivals.burst_duration_s = 900.0;
    config.arrivals.burst_multiplier = 3.0;
    config.arrivals.seed = 17;
  } else if (name.rfind("interactive", 0) == 0) {
    // Interactive-serving mix (DESIGN.md §16) over diurnal arrivals: a tight
    // SLO plus a high per-CPU request rate so violations (and, for the
    // slo-aware variant, controller interventions) occur within 3 hours.
    // `interactive` runs the SLO-aware controller; `interactive_uniform`
    // measures the same workload under the uniform baseline.
    config.reinflate_period_s = 600.0;
    config.arrivals.enabled = true;
    config.arrivals.diurnal_amplitude = 0.6;
    config.arrivals.diurnal_period_s = 2.0 * 3600.0;
    config.arrivals.seed = 17;
    config.interactive.enabled = true;
    config.interactive.fraction = 0.45;
    config.interactive.slo_p99_ms = 60.0;
    config.interactive.slo_aware = (name == "interactive");
    config.interactive.control_period_s = 300.0;
    config.interactive.rate_rps_per_cpu = 120.0;
    config.interactive.rate_period_s = 2.0 * 3600.0;
  } else if (name.rfind("faults_", 0) == 0) {
    const std::string path =
        std::string(DEFL_SOURCE_DIR "/examples/") + name + ".plan";
    Result<FaultPlan> plan = LoadFaultPlanFile(path);
    EXPECT_TRUE(plan.ok()) << path << ": " << plan.error();
    if (plan.ok()) {
      config.fault_plan = std::move(plan.value());
    }
    config.reinflate_period_s = 600.0;
  }
  return config;
}

// Runs the scenario at the given thread count and returns the full
// observable output: metrics JSON, then the event-trace JSONL.
std::string RunScenario(const std::string& name, int threads) {
  ClusterSimConfig config = MakeConfig(name);
  config.cluster.threads = threads;
  TelemetryContext telemetry;
  telemetry.trace().set_enabled(true);
  config.telemetry = &telemetry;
  RunClusterSim(config);
  std::ostringstream out;
  telemetry.metrics().DumpJson(out);
  out << "\n";
  telemetry.trace().DumpJsonl(out);
  return out.str();
}

// Runs the scenario to its halfway point, snapshots, drops the session (as
// if the process were killed), restores into a FRESH telemetry context at a
// different thread count, and finishes. Returns the resumed run's output.
std::string RunScenarioWithSnapshot(const std::string& name, int threads,
                                    int restore_threads) {
  ClusterSimConfig config = MakeConfig(name);
  config.cluster.threads = threads;
  std::string bytes;
  {
    TelemetryContext telemetry;
    telemetry.trace().set_enabled(true);
    config.telemetry = &telemetry;
    Result<SimSession> session = SimSession::Open(config);
    EXPECT_TRUE(session.ok()) << session.error();
    if (!session.ok()) {
      return "";
    }
    session.value().StepUntil(config.trace.duration_s / 2.0);
    bytes = session.value().SnapshotBytes();
  }
  TelemetryContext resumed;
  SimSession::RestoreOptions options;
  options.telemetry = &resumed;
  options.threads = restore_threads;
  Result<SimSession> restored = SimSession::RestoreBytes(bytes, options);
  EXPECT_TRUE(restored.ok()) << restored.error();
  if (!restored.ok()) {
    return "";
  }
  restored.value().Finish();
  std::ostringstream out;
  resumed.metrics().DumpJson(out);
  out << "\n";
  resumed.trace().DumpJsonl(out);
  return out.str();
}

std::map<std::string, std::string> LoadDigests() {
  std::map<std::string, std::string> digests;
  std::ifstream in(kDigestFile);
  std::string name;
  std::string digest;
  while (in >> name >> digest) {
    digests[name] = digest;
  }
  return digests;
}

class GoldenDeterminismTest : public testing::TestWithParam<const char*> {};

TEST_P(GoldenDeterminismTest, ThreadCountDoesNotChangeOutput) {
  const std::string name = GetParam();
  const std::string one = RunScenario(name, 1);
  const std::string eight = RunScenario(name, 8);
  // Byte-for-byte: the sharded sweeps must be invisible in the output.
  ASSERT_EQ(one, eight) << "scenario " << name
                        << ": output differs between --threads 1 and 8";
  EXPECT_FALSE(one.empty());
}

TEST_P(GoldenDeterminismTest, MatchesCheckedInDigest) {
  const std::string name = GetParam();
  const std::string digest = HexDigest(Fnv1a64(RunScenario(name, 1)));
  if (std::getenv("DEFL_UPDATE_GOLDEN") != nullptr) {
    // Regeneration mode: print the line to paste into the digest file.
    std::printf("GOLDEN %s %s\n", name.c_str(), digest.c_str());
    GTEST_SKIP() << "DEFL_UPDATE_GOLDEN set; printed new digest";
  }
  const std::map<std::string, std::string> digests = LoadDigests();
  const auto it = digests.find(name);
  ASSERT_NE(it, digests.end())
      << "no digest for scenario '" << name << "' in " << kDigestFile
      << "; regenerate with DEFL_UPDATE_GOLDEN=1";
  EXPECT_EQ(it->second, digest)
      << "scenario " << name << " output changed; if intended, regenerate "
      << kDigestFile << " with DEFL_UPDATE_GOLDEN=1";
}

TEST_P(GoldenDeterminismTest, SnapshotMidRunDoesNotChangeOutput) {
  // Kill-at-halfway + restore must be byte-invisible against the same
  // uninterrupted output the digest file pins, at both thread pairings.
  const std::string name = GetParam();
  const std::string uninterrupted = RunScenario(name, 1);
  ASSERT_FALSE(uninterrupted.empty());
  EXPECT_EQ(uninterrupted, RunScenarioWithSnapshot(name, 1, 8))
      << "scenario " << name << ": snapshot at threads 1, restore at 8";
  EXPECT_EQ(uninterrupted, RunScenarioWithSnapshot(name, 8, 1))
      << "scenario " << name << ": snapshot at threads 8, restore at 1";
}

INSTANTIATE_TEST_SUITE_P(Scenarios, GoldenDeterminismTest,
                         testing::ValuesIn(kScenarios),
                         [](const testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace defl
