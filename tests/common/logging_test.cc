#include "src/common/logging.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/result.h"

namespace defl {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelThresholdRoundTrips) {
  LogLevelGuard guard;
  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LoggingTest, StreamMacroFormatsMixedTypes) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // suppress output during the test
  // Must compile and not crash for mixed operand types.
  DEFL_LOG(kDebug) << "vm " << 42 << " deflated by " << 0.5 << " at level "
                   << static_cast<int>(LogLevel::kInfo);
  DEFL_LOG(kInfo) << "suppressed";
  SUCCEED();
}

TEST(ResultTest, ValueAndErrorAccess) {
  Result<int> ok_result = 7;
  ASSERT_TRUE(ok_result.ok());
  EXPECT_TRUE(static_cast<bool>(ok_result));
  EXPECT_EQ(ok_result.value(), 7);
  ok_result.value() = 9;
  EXPECT_EQ(ok_result.value(), 9);

  Result<int> err_result = Error{"nope"};
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.error(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, WorksWithNonCopyableValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.value(), 5);
}

}  // namespace
}  // namespace defl
