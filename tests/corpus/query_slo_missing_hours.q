# slo queries must run: hours= > 0 is required
slo p99=80 policy=slo
