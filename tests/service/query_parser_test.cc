// Adversarial tests for the what-if request parsers (DESIGN.md §15): the
// query-line/script parser and the sweep-grid parser must be total --
// malformed, truncated, duplicate-keyed, unknown-keyed, and out-of-range
// requests all fail with a DESCRIPTIVE error (naming the offending key,
// value, and -- in scripts -- line), never a crash or a silently-defaulted
// field. The service is a long-lived process fed operator input; a typo
// must come back as an error line, not take the fleet planner down.
#include <gtest/gtest.h>

#include <string>

#include "src/service/query.h"
#include "src/service/sweep.h"

namespace defl {
namespace {

// Asserts the parse fails and the error mentions every given fragment.
template <typename T>
void ExpectErrorMentions(const Result<T>& result,
                         std::initializer_list<const char*> fragments) {
  ASSERT_FALSE(result.ok()) << "expected a parse error";
  for (const char* fragment : fragments) {
    EXPECT_NE(result.error().find(fragment), std::string::npos)
        << "error '" << result.error() << "' does not mention '" << fragment
        << "'";
  }
}

TEST(QueryParserTest, ParsesEveryKind) {
  Result<WhatIfQuery> place =
      ParseQuery("place count=40 cpu=2 mem=4096 disk=10 net=5 prio=high hours=1.5");
  ASSERT_TRUE(place.ok()) << place.error();
  EXPECT_EQ(place.value().kind, QueryKind::kPlace);
  EXPECT_EQ(place.value().count, 40);
  EXPECT_DOUBLE_EQ(place.value().shape.cpu(), 2.0);
  EXPECT_DOUBLE_EQ(place.value().shape.memory_mb(), 4096.0);
  EXPECT_DOUBLE_EQ(place.value().shape.disk_bw(), 10.0);
  EXPECT_DOUBLE_EQ(place.value().shape.net_bw(), 5.0);
  EXPECT_EQ(place.value().priority, VmPriority::kHigh);
  EXPECT_DOUBLE_EQ(place.value().hours, 1.5);

  Result<WhatIfQuery> fail = ParseQuery("fail fraction=0.25 seed=9");
  ASSERT_TRUE(fail.ok()) << fail.error();
  EXPECT_EQ(fail.value().kind, QueryKind::kFail);
  EXPECT_DOUBLE_EQ(fail.value().fraction, 0.25);
  EXPECT_EQ(fail.value().seed, 9u);

  Result<WhatIfQuery> oc = ParseQuery("overcommit target=1.5 cpu=2 limit=100");
  ASSERT_TRUE(oc.ok()) << oc.error();
  EXPECT_EQ(oc.value().kind, QueryKind::kOvercommit);
  EXPECT_DOUBLE_EQ(oc.value().target, 1.5);
  EXPECT_EQ(oc.value().limit, 100);

  Result<WhatIfQuery> run = ParseQuery("run hours=6");
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_EQ(run.value().kind, QueryKind::kRun);
  EXPECT_DOUBLE_EQ(run.value().hours, 6.0);

  Result<WhatIfQuery> slo =
      ParseQuery("slo p99=80 fraction=0.4 policy=uniform period=300 hours=2");
  ASSERT_TRUE(slo.ok()) << slo.error();
  EXPECT_EQ(slo.value().kind, QueryKind::kSlo);
  EXPECT_DOUBLE_EQ(slo.value().slo_p99_ms, 80.0);
  EXPECT_DOUBLE_EQ(slo.value().mix_fraction, 0.4);
  EXPECT_EQ(slo.value().slo_policy, 0);
  EXPECT_DOUBLE_EQ(slo.value().slo_period_s, 300.0);
  EXPECT_DOUBLE_EQ(slo.value().hours, 2.0);

  // Every override is optional: a bare `slo hours=` run keeps the snapshot's
  // settings, marked by -1 sentinels.
  Result<WhatIfQuery> bare = ParseQuery("slo hours=1");
  ASSERT_TRUE(bare.ok()) << bare.error();
  EXPECT_DOUBLE_EQ(bare.value().slo_p99_ms, -1.0);
  EXPECT_DOUBLE_EQ(bare.value().mix_fraction, -1.0);
  EXPECT_EQ(bare.value().slo_policy, -1);
  EXPECT_DOUBLE_EQ(bare.value().slo_period_s, -1.0);
}

TEST(QueryParserTest, RejectsEmptyAndUnknownKinds) {
  ExpectErrorMentions(ParseQuery(""), {"empty query"});
  ExpectErrorMentions(ParseQuery("   \t "), {"empty query"});
  ExpectErrorMentions(ParseQuery("deflate fraction=0.5"),
                      {"unknown query kind", "deflate"});
}

TEST(QueryParserTest, RejectsMalformedFields) {
  ExpectErrorMentions(ParseQuery("place count"), {"malformed field", "count"});
  ExpectErrorMentions(ParseQuery("place count="), {"malformed field"});
  ExpectErrorMentions(ParseQuery("place =5 cpu=2"), {"malformed field", "=5"});
}

TEST(QueryParserTest, RejectsUnknownAndDuplicateKeys) {
  ExpectErrorMentions(ParseQuery("place coun=5 cpu=2"),
                      {"unknown key", "coun", "place"});
  ExpectErrorMentions(ParseQuery("run hours=1 fraction=0.5"),
                      {"unknown key", "fraction", "run"});
  ExpectErrorMentions(ParseQuery("place count=5 count=6 cpu=2"),
                      {"duplicate key", "count"});
}

TEST(QueryParserTest, RejectsUnparsableNumbers) {
  ExpectErrorMentions(ParseQuery("fail fraction=0.5x"),
                      {"cannot parse", "fraction", "0.5x"});
  ExpectErrorMentions(ParseQuery("place count=ten cpu=2"),
                      {"cannot parse", "count", "ten"});
  ExpectErrorMentions(ParseQuery("fail fraction=0.1 seed=-3"),
                      {"cannot parse", "seed", "-3"});
}

TEST(QueryParserTest, RejectsMissingRequiredKeys) {
  ExpectErrorMentions(ParseQuery("place cpu=2"), {"place", "count"});
  ExpectErrorMentions(ParseQuery("place count=5"), {"place", "cpu"});
  ExpectErrorMentions(ParseQuery("fail seed=3"), {"fail", "fraction"});
  ExpectErrorMentions(ParseQuery("overcommit cpu=2"),
                      {"overcommit", "target"});
  ExpectErrorMentions(ParseQuery("run"), {"run", "hours"});
}

TEST(QueryParserTest, RejectsOutOfRangeValues) {
  ExpectErrorMentions(ParseQuery("fail fraction=1.5"), {"fraction", "[0, 1]"});
  ExpectErrorMentions(ParseQuery("fail fraction=-0.1"), {"fraction", "[0, 1]"});
  ExpectErrorMentions(ParseQuery("place count=0 cpu=2"), {"count", ">= 1"});
  ExpectErrorMentions(ParseQuery("place count=5 cpu=0"), {"cpu", "> 0"});
  ExpectErrorMentions(ParseQuery("place count=5 cpu=2 mem=-1"), {">= 0"});
  ExpectErrorMentions(ParseQuery("overcommit target=0 cpu=2"),
                      {"target", "> 0"});
  ExpectErrorMentions(ParseQuery("overcommit target=1.5 cpu=2 limit=0"),
                      {"limit", ">= 1"});
  ExpectErrorMentions(ParseQuery("run hours=-2"), {"hours", ">= 0"});
  ExpectErrorMentions(ParseQuery("run hours=0"), {"run", "hours"});
  ExpectErrorMentions(ParseQuery("place count=5 cpu=2 prio=urgent"),
                      {"prio", "urgent"});
}

TEST(QueryParserTest, SloKindGuardsItsAllowListAndRanges) {
  ExpectErrorMentions(ParseQuery("slo p99=80"), {"slo", "hours"});
  ExpectErrorMentions(ParseQuery("slo hours=0"), {"slo", "hours"});
  ExpectErrorMentions(ParseQuery("slo hours=1 p99=0"), {"p99", "> 0"});
  ExpectErrorMentions(ParseQuery("slo hours=1 fraction=1.5"),
                      {"fraction", "[0, 1]"});
  ExpectErrorMentions(ParseQuery("slo hours=1 period=-60"),
                      {"period", "> 0"});
  ExpectErrorMentions(ParseQuery("slo hours=1 policy=aggressive"),
                      {"policy", "aggressive", "slo or uniform"});
  // The allow-list is strict per kind: slo takes no VM shape, and the other
  // kinds do not inherit the slo keys.
  ExpectErrorMentions(ParseQuery("slo hours=1 cpu=2"),
                      {"unknown key", "cpu", "slo"});
  ExpectErrorMentions(ParseQuery("run hours=1 p99=80"),
                      {"unknown key", "p99", "run"});
}

TEST(QueryParserTest, ScriptSkipsCommentsAndNumbersErrors) {
  Result<std::vector<WhatIfQuery>> script = ParseQueryScript(
      "# capacity check\n"
      "\n"
      "place count=5 cpu=2\r\n"
      "run hours=1\n");
  ASSERT_TRUE(script.ok()) << script.error();
  EXPECT_EQ(script.value().size(), 2u);

  ExpectErrorMentions(
      ParseQueryScript("place count=5 cpu=2\n\n# fine\nfail fraction=2.0\n"),
      {"line 4", "fraction"});
}

TEST(QueryParserTest, EmptyScriptIsAnError) {
  ExpectErrorMentions(ParseQueryScript(""), {"no queries"});
  ExpectErrorMentions(ParseQueryScript("# only comments\n\n"), {"no queries"});
}

TEST(SweepGridTest, ParsesAxesScalarsAndDefaults) {
  Result<SweepGrid> grid = ParseSweepGrid(
      "# grid\n"
      "policy = best-fit, first-fit, 2-choices\n"
      "fail-fraction = 0.0, 0.5\n"
      "overcommit-target = 1.2\n"
      "intensity = 0.5, 1.0, 2.0\n"
      "hours = 2\n"
      "shape = 4:8192:10:5\n"
      "fail-seed = 11\n"
      "limit = 500\n");
  ASSERT_TRUE(grid.ok()) << grid.error();
  EXPECT_EQ(grid.value().policies.size(), 3u);
  EXPECT_EQ(grid.value().Cells(), 3 * 2 * 1 * 3);
  EXPECT_DOUBLE_EQ(grid.value().hours, 2.0);
  EXPECT_DOUBLE_EQ(grid.value().shape.cpu(), 4.0);
  EXPECT_DOUBLE_EQ(grid.value().shape.net_bw(), 5.0);
  EXPECT_EQ(grid.value().fail_seed, 11u);
  EXPECT_EQ(grid.value().limit, 500);

  // Unspecified axes collapse to a single default value, so a one-line grid
  // is a valid (1-cell) sweep.
  Result<SweepGrid> minimal = ParseSweepGrid("policy = best-fit\n");
  ASSERT_TRUE(minimal.ok()) << minimal.error();
  EXPECT_EQ(minimal.value().Cells(), 1);
}

TEST(SweepGridTest, RejectsMalformedInput) {
  ExpectErrorMentions(ParseSweepGrid("policy best-fit\n"),
                      {"line 1", "key = value"});
  ExpectErrorMentions(ParseSweepGrid("policy = best-fit\nwat = 7\n"),
                      {"line 2", "unknown key", "wat"});
  ExpectErrorMentions(
      ParseSweepGrid("policy = best-fit\npolicy = first-fit\n"),
      {"line 2", "duplicate key", "policy"});
  ExpectErrorMentions(ParseSweepGrid("policy = worst-fit\n"),
                      {"unknown placement policy", "worst-fit"});
  ExpectErrorMentions(ParseSweepGrid("fail-fraction = 0.5, 1.5\n"),
                      {"fail-fraction", "[0, 1]"});
  ExpectErrorMentions(ParseSweepGrid("overcommit-target = 0\n"),
                      {"overcommit-target", "> 0"});
  ExpectErrorMentions(ParseSweepGrid("intensity = -1\n"),
                      {"intensity", ">= 0"});
  ExpectErrorMentions(ParseSweepGrid("shape = 2\n"), {"shape", "cpu:mem"});
  ExpectErrorMentions(ParseSweepGrid("shape = 0:4096\n"), {"cpu > 0"});
  ExpectErrorMentions(ParseSweepGrid("shape = 2:x\n"), {"shape", "x"});
  ExpectErrorMentions(ParseSweepGrid("limit = 0\n"), {"limit", ">= 1"});
  ExpectErrorMentions(ParseSweepGrid("hours = nope\n"), {"hours", "nope"});
  ExpectErrorMentions(ParseSweepGrid("fail-seed = -2\n"), {"fail-seed"});
  ExpectErrorMentions(ParseSweepGrid("policy =\n"), {"empty key or value"});
}

}  // namespace
}  // namespace defl
