# Empty compiler generated dependencies file for fig8d_placement_policies.
# This may be replaced when dependencies are built.
