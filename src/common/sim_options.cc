#include "src/common/sim_options.h"

#include <charconv>
#include <sstream>
#include <utility>

namespace defl {
namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) {
    ++begin;
  }
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Result<double> ParseSpecF64(const std::string& key, const std::string& value) {
  double parsed = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    return Error{"'" + key + "': bad number '" + value + "'"};
  }
  return parsed;
}

Result<uint64_t> ParseSpecU64(const std::string& key, const std::string& value) {
  uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    return Error{"'" + key + "': bad unsigned integer '" + value + "'"};
  }
  return parsed;
}

Result<bool> ParseSpecBool(const std::string& key, const std::string& value) {
  if (value == "on" || value == "true") {
    return true;
  }
  if (value == "off" || value == "false") {
    return false;
  }
  return Error{"'" + key + "': bad boolean '" + value +
               "' (use on/off or true/false)"};
}

// Typed assignment for one `key = value` setting; unknown keys are errors.
Result<bool> AssignWorkloadKey(WorkloadSpec& spec, const std::string& key,
                               const std::string& value) {
  const struct {
    const char* name;
    double* out;
  } f64_keys[] = {
      {"load", &spec.load},
      {"duration-h", &spec.duration_h},
      {"low-pri-fraction", &spec.low_pri_fraction},
      {"diurnal-amplitude", &spec.diurnal_amplitude},
      {"diurnal-period-h", &spec.diurnal_period_h},
      {"diurnal-phase-h", &spec.diurnal_phase_h},
      {"burst-rate-per-h", &spec.burst_rate_per_h},
      {"burst-duration-s", &spec.burst_duration_s},
      {"burst-multiplier", &spec.burst_multiplier},
      {"interactive-fraction", &spec.interactive_fraction},
      {"slo-p99-ms", &spec.slo_p99_ms},
      {"slo-period-s", &spec.slo_period_s},
      {"rate-rps-per-cpu", &spec.rate_rps_per_cpu},
      {"rate-amplitude", &spec.rate_amplitude},
      {"rate-period-h", &spec.rate_period_h},
  };
  for (const auto& entry : f64_keys) {
    if (key == entry.name) {
      const Result<double> parsed = ParseSpecF64(key, value);
      if (!parsed.ok()) {
        return Error{parsed.error()};
      }
      *entry.out = parsed.value();
      return true;
    }
  }
  const struct {
    const char* name;
    uint64_t* out;
  } u64_keys[] = {
      {"seed", &spec.seed},
      {"arrival-seed", &spec.arrival_seed},
      {"interactive-seed", &spec.interactive_seed},
  };
  for (const auto& entry : u64_keys) {
    if (key == entry.name) {
      const Result<uint64_t> parsed = ParseSpecU64(key, value);
      if (!parsed.ok()) {
        return Error{parsed.error()};
      }
      *entry.out = parsed.value();
      return true;
    }
  }
  const struct {
    const char* name;
    bool* out;
  } bool_keys[] = {
      {"diurnal", &spec.diurnal},
      {"interactive", &spec.interactive},
  };
  for (const auto& entry : bool_keys) {
    if (key == entry.name) {
      const Result<bool> parsed = ParseSpecBool(key, value);
      if (!parsed.ok()) {
        return Error{parsed.error()};
      }
      *entry.out = parsed.value();
      return true;
    }
  }
  const struct {
    const char* name;
    std::string* out;
  } string_keys[] = {
      {"trace-file", &spec.trace_file},
      {"fault-plan", &spec.fault_plan},
      {"slo-policy", &spec.slo_policy},
  };
  for (const auto& entry : string_keys) {
    if (key == entry.name) {
      *entry.out = value;
      return true;
    }
  }
  return Error{"unknown key '" + key + "'"};
}

// "source:line: 'key'" for file-built settings, "--key" for flag-built ones
// -- so spec-file validation errors point at the offending line while the
// deprecated flag aliases keep their historical wording.
std::string KeyWhere(const WorkloadSpec& spec, const std::string& source,
                     const std::string& key) {
  const auto it = spec.provenance.find(key);
  if (it != spec.provenance.end() && it->second > 0) {
    return source + ":" + std::to_string(it->second) + ": '" + key + "'";
  }
  return "--" + key;
}

}  // namespace

SimOptionsParser::SimOptionsParser(std::string program_description)
    : parser_(std::move(program_description)) {
  parser_.AddString("metrics-out", "write the metrics registry to this JSON file",
                    &common_.metrics_out);
  parser_.AddString("trace-out", "write the deflation event trace to this JSONL file",
                    &common_.trace_out);
  parser_.AddString("fault-plan", "inject failures from this fault plan file",
                    &common_.fault_plan);
}

Result<std::vector<std::string>> SimOptionsParser::Parse(int argc,
                                                         const char* const* argv) {
  return parser_.Parse(argc, argv);
}

Result<bool> RejectFlagCombination(const std::string& flag_a, bool a_set,
                                   const std::string& flag_b, bool b_set,
                                   const std::string& reason) {
  if (a_set && b_set) {
    return Error{"--" + flag_a + " and --" + flag_b + " cannot be combined (" +
                 reason + ")"};
  }
  return true;
}

Result<WorkloadSpec> ParseWorkloadSpec(const std::string& text,
                                       const std::string& source_name) {
  WorkloadSpec spec;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (!raw.empty() && raw.back() == '\r') {
      raw.pop_back();
    }
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.resize(hash);
    }
    const std::string line = Trim(raw);
    if (line.empty()) {
      continue;
    }
    const auto fail = [&](const std::string& message) -> Result<WorkloadSpec> {
      return Error{source_name + ":" + std::to_string(line_no) + ": " + message};
    };
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return fail("expected 'key = value', got '" + line + "'");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return fail("setting has no key before '='");
    }
    if (value.empty()) {
      return fail("'" + key + "' has no value");
    }
    const auto seen = spec.provenance.find(key);
    if (seen != spec.provenance.end()) {
      return fail("duplicate key '" + key + "' (first set on line " +
                  std::to_string(seen->second) + ")");
    }
    const Result<bool> assigned = AssignWorkloadKey(spec, key, value);
    if (!assigned.ok()) {
      return fail(assigned.error());
    }
    spec.provenance.emplace(key, line_no);
  }
  if (spec.provenance.empty()) {
    return Error{source_name + ": workload spec has no settings"};
  }
  return spec;
}

Result<bool> ValidateWorkloadSpec(const WorkloadSpec& spec,
                                  const std::string& source_name) {
  const auto where = [&](const std::string& key) {
    return KeyWhere(spec, source_name, key);
  };
  const auto cannot_combine = [&](const std::string& a, const std::string& b,
                                  const std::string& reason) -> Result<bool> {
    return Error{where(a) + " and " + where(b) + " cannot be combined (" +
                 reason + ")"};
  };

  // Pairwise exclusions: a replayed trace carries its own arrival process,
  // so the generator family and its knobs cannot also be set.
  static const char* const kArrivalKnobs[] = {
      "diurnal-amplitude", "diurnal-period-h",  "diurnal-phase-h",
      "burst-rate-per-h",  "burst-duration-s",  "burst-multiplier",
      "arrival-seed",
  };
  if (!spec.trace_file.empty() && spec.diurnal) {
    return cannot_combine("trace-file", "diurnal",
                          "a replayed trace carries its own arrival times");
  }
  for (const char* knob : kArrivalKnobs) {
    if (!spec.Has(knob)) {
      continue;
    }
    if (!spec.trace_file.empty()) {
      return cannot_combine("trace-file", knob,
                            "a replayed trace carries its own arrival times");
    }
    if (!spec.diurnal) {
      return Error{where(knob) +
                   " requires diurnal (the flat-rate Poisson generator "
                   "ignores it)"};
    }
  }
  // SLO knobs are meaningless without the interactive mix; a spec that sets
  // them with `interactive` off is a mistake, not a request.
  static const char* const kSloKnobs[] = {
      "interactive-fraction", "interactive-seed", "slo-p99-ms",
      "slo-policy",           "slo-period-s",     "rate-rps-per-cpu",
      "rate-amplitude",       "rate-period-h",
  };
  for (const char* knob : kSloKnobs) {
    if (spec.Has(knob) && !spec.interactive) {
      return Error{where(knob) + " requires interactive"};
    }
  }

  if (spec.load <= 0.0) {
    return Error{where("load") + " must be positive"};
  }
  if (spec.duration_h <= 0.0) {
    return Error{where("duration-h") + " must be positive"};
  }
  if (spec.low_pri_fraction < 0.0 || spec.low_pri_fraction > 1.0) {
    return Error{where("low-pri-fraction") + " must be in [0, 1]"};
  }
  if (spec.diurnal_amplitude < 0.0 || spec.diurnal_amplitude > 1.0) {
    return Error{where("diurnal-amplitude") + " must be in [0, 1]"};
  }
  if (spec.diurnal_period_h <= 0.0) {
    return Error{where("diurnal-period-h") + " must be positive"};
  }
  if (spec.burst_rate_per_h < 0.0) {
    return Error{where("burst-rate-per-h") + " must be non-negative"};
  }
  if (spec.burst_duration_s < 0.0) {
    return Error{where("burst-duration-s") + " must be non-negative"};
  }
  if (spec.burst_multiplier < 0.0) {
    return Error{where("burst-multiplier") + " must be non-negative"};
  }
  if (spec.interactive_fraction < 0.0 || spec.interactive_fraction > 1.0) {
    return Error{where("interactive-fraction") + " must be in [0, 1]"};
  }
  if (spec.slo_p99_ms <= 0.0) {
    return Error{where("slo-p99-ms") + " must be positive"};
  }
  if (spec.slo_policy != "slo" && spec.slo_policy != "uniform") {
    return Error{where("slo-policy") + " must be 'slo' or 'uniform' (got '" +
                 spec.slo_policy + "')"};
  }
  if (spec.slo_period_s <= 0.0) {
    return Error{where("slo-period-s") + " must be positive"};
  }
  if (spec.rate_rps_per_cpu < 0.0) {
    return Error{where("rate-rps-per-cpu") + " must be non-negative"};
  }
  if (spec.rate_amplitude < 0.0 || spec.rate_amplitude > 1.0) {
    return Error{where("rate-amplitude") + " must be in [0, 1]"};
  }
  if (spec.rate_period_h <= 0.0) {
    return Error{where("rate-period-h") + " must be positive"};
  }
  return true;
}

}  // namespace defl
