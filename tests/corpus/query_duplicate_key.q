place count=5 count=6 cpu=2
