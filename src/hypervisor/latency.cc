#include "src/hypervisor/latency.h"

#include <algorithm>

namespace defl {

DeflationLatencyModel::DeflationLatencyModel(const LatencyParams& params)
    : params_(params) {}

double DeflationLatencyModel::AppStageSeconds(const ReclaimBreakdown& b) const {
  if (!b.used_app_level) {
    return 0.0;
  }
  return params_.app_fixed_s + b.app_freed_mb / params_.app_free_mbps;
}

double DeflationLatencyModel::OsStageSeconds(const ReclaimBreakdown& b) const {
  const double mem_s = b.unplug_freed_mb / params_.unplug_freed_mbps +
                       b.unplug_cold_mb / params_.unplug_cold_mbps +
                       b.balloon_mb / params_.balloon_mbps;
  const double cpu_s = b.unplug_cpus * params_.cpu_unplug_s;
  return std::max(mem_s, cpu_s);  // CPU and memory unplug overlap
}

double DeflationLatencyModel::HypervisorStageSeconds(const ReclaimBreakdown& b) const {
  return b.hv_swap_mb / params_.swap_out_mbps * params_.control_loop_overhead;
}

double DeflationLatencyModel::TotalSeconds(const ReclaimBreakdown& b) const {
  return params_.fixed_s + AppStageSeconds(b) + OsStageSeconds(b) +
         HypervisorStageSeconds(b);
}

}  // namespace defl
