// Figure 5a: memcached (unmodified) under memory deflation through the
// three mechanical reclamation paths -- hypervisor-only (host swapping),
// OS-only (forced hot-unplug; OOM-kills the app at high levels), and
// hypervisor+OS (VM-level: unplug what is safe, swap the rest).
#include "bench/bench_util.h"
#include "src/apps/deflation_harness.h"
#include "src/apps/memcached.h"

namespace defl {
namespace {

double Point(DeflationMode mode, double f) {
  MemcachedModel model{MemcachedConfig{}};
  Vm baseline_vm(0, StandardVmSpec());
  model.SetBaseline(baseline_vm.allocation());
  const HarnessResult r =
      DeflateAppVm(model, mode, ResourceVector(0.0, f, 0.0, 0.0), StandardVmSpec(),
                   /*use_agent=*/false);
  return model.NormalizedPerformance(r.alloc);
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Figure 5a", "memcached memory deflation: mechanism comparison");
  bench::PrintNote("Unmodified memcached, 12 GB cache (60% filled) in a 16 GB VM.");
  bench::PrintNote("Paper: hypervisor-only loses ~20% at 50%; OS-only is superior up");
  bench::PrintNote("to ~40% then the app is OOM-killed; hypervisor+OS tracks the best.");
  bench::PrintColumns({"deflation%", "hypervisor", "os-only", "hyp+os"});
  for (const double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.55}) {
    bench::PrintCell(f * 100.0);
    bench::PrintCell(Point(DeflationMode::kHypervisorOnly, f));
    bench::PrintCell(Point(DeflationMode::kOsOnly, f));
    bench::PrintCell(Point(DeflationMode::kVmLevel, f));
    bench::EndRow();
  }
  return 0;
}
