// Quickstart: deflate a single VM through the cascade.
//
// Creates a 4 vCPU / 16 GB low-priority VM running a deflation-aware
// memcached, asks the cascade controller to reclaim half of everything, and
// shows how the request flows through the three layers -- application
// (cache resize + LRU eviction), guest OS (hot-unplug), hypervisor
// (overcommitment) -- then returns the resources and reinflates.
#include <cstdio>

#include "src/apps/deflation_harness.h"
#include "src/apps/memcached.h"
#include "src/core/cascade.h"

using namespace defl;

namespace {

void PrintVm(const char* label, const Vm& vm, const MemcachedModel& app) {
  const EffectiveAllocation a = vm.allocation();
  std::printf("%-22s guest sees %4.1f vCPU / %6.0f MB; backed %4.1f vCPU / %6.0f MB; "
              "cache %5.0f MB; throughput %6.1f kGETS/s\n",
              label, a.visible_cpus, a.guest_memory_mb, a.cpu_capacity,
              a.resident_memory_mb, app.cache_limit_mb(), app.ThroughputKGets(a));
}

}  // namespace

int main() {
  // A deflatable (low-priority, transient) VM.
  Vm vm(1, StandardVmSpec());
  vm.set_state(VmState::kRunning);

  // A deflation-aware application: its agent resizes the cache on request.
  MemcachedModel app{MemcachedConfig{}};
  vm.guest_os().set_app_used_mb(app.MemoryFootprintMb());

  CascadeController cascade(DeflationMode::kCascade);
  PrintVm("before deflation:", vm, app);

  // Resource pressure: the cluster manager wants half of everything back.
  const ResourceVector target = vm.size() * 0.5;
  const DeflationOutcome outcome = cascade.Deflate(vm, app.agent(), target);

  std::printf("\ncascade deflation of %s:\n", target.ToString().c_str());
  std::printf("  application freed   %s\n", outcome.app_freed.ToString().c_str());
  std::printf("  guest OS unplugged  %s\n", outcome.unplugged.ToString().c_str());
  std::printf("  hypervisor reclaimed%s\n", outcome.hv_reclaimed.ToString().c_str());
  std::printf("  target met: %s, latency %.1f s\n\n",
              outcome.TargetMet() ? "yes" : "no", outcome.latency_seconds);
  PrintVm("while deflated:", vm, app);

  // Pressure is gone: reverse cascade returns everything.
  cascade.Reinflate(vm, app.agent(), vm.size() - vm.effective());
  std::printf("\n");
  PrintVm("after reinflation:", vm, app);
  return 0;
}
