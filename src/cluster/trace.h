// Synthetic cloud workload trace with the statistical structure of the
// Eucalyptus traces used in Section 6.3 (the original trace files are not
// redistributable): Poisson VM arrivals, heavy-tailed lifetimes, a catalog
// of VM sizes, a configurable low-priority fraction, and per-application
// minimum sizes (the empirically determined minimum levels for Spark,
// memcached and SpecJBB VMs the paper mentions).
#ifndef SRC_CLUSTER_TRACE_H_
#define SRC_CLUSTER_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hypervisor/vm.h"
#include "src/resources/resource_vector.h"
#include "src/sim/arrival_gen.h"

namespace defl {

struct TraceEvent {
  double arrival_s = 0.0;
  double lifetime_s = 0.0;
  VmSpec spec;
};

struct VmCatalogEntry {
  std::string app;       // "spark", "memcached", "specjbb", ...
  ResourceVector size;
  double min_fraction;   // minimum viable allocation as a fraction of size
  double weight;         // relative arrival frequency
};

// The default catalog: small-to-large VM shapes with the paper's three
// application classes and their empirically-determined minimum sizes.
std::vector<VmCatalogEntry> DefaultVmCatalog();

struct TraceConfig {
  double duration_s = 24.0 * 3600.0;
  double arrival_rate_per_s = 0.01;
  // Heavy-tailed lifetimes: bounded Pareto with this tail index.
  double lifetime_alpha = 1.5;
  double min_lifetime_s = 600.0;
  double max_lifetime_s = 48.0 * 3600.0;
  // Fraction of arrivals that are transient (deflatable/preemptible). With
  // 0.6 the cluster sustains the paper's 1.6x overcommitment without
  // preemptions; see EXPERIMENTS.md for the sensitivity to this knob.
  double low_priority_fraction = 0.6;
  std::vector<VmCatalogEntry> catalog = DefaultVmCatalog();
  uint64_t seed = 42;
};

std::vector<TraceEvent> GenerateTrace(const TraceConfig& config);

// Like GenerateTrace, but arrival times come from the diurnal/bursty
// generator (src/sim/arrival_gen.h) instead of a flat-rate Poisson process:
// config.arrival_rate_per_s is the mean rate the sinusoid oscillates
// around, so WithTargetLoad composes unchanged. VM shapes, lifetimes, and
// priorities are sampled per arrival from config.seed with the same
// per-event draw order as GenerateTrace; arrival times draw from
// arrivals.seed, so the two knobs vary independently.
std::vector<TraceEvent> GenerateDiurnalTrace(const TraceConfig& config,
                                             const ArrivalGenConfig& arrivals);

// Mean offered load of a config against a cluster: arrival_rate * E[lifetime]
// * E[vm dominant share] / cluster capacity. Used to derive the arrival rate
// for a target overcommitment level (the Figure 8c x-axis).
double MeanVmCpu(const TraceConfig& config);
double MeanLifetimeS(const TraceConfig& config);

// Returns a copy of `config` with the arrival rate chosen so the steady-state
// offered CPU load is `target_load` times the cluster CPU capacity
// (target_load = 1.6 reproduces "1.6x utilization").
TraceConfig WithTargetLoad(const TraceConfig& config, double target_load,
                           int num_servers, const ResourceVector& server_capacity);

}  // namespace defl

#endif  // SRC_CLUSTER_TRACE_H_
