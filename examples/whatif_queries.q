# What-if query batch for deflation_server (--queries=...).
# One query per line: kind key=value ...; `#` comments and blanks skipped.

# Headroom: how many more 2-core transient VMs fit right now?
place count=40 cpu=2 mem=4096

# Firm capacity: can we take 10 high-priority 4-core VMs without deflating?
place count=10 cpu=4 mem=8192 prio=high

# Resilience: what does losing 20% of the fleet cost immediately...
fail fraction=0.2 seed=7
# ... and after an hour of the workload churning on the survivors?
fail fraction=0.5 seed=3 hours=1

# Packing: push overcommitment toward 1.8 with 2-core transients.
overcommit target=1.8 cpu=2 mem=4096 limit=500

# Baseline forecast: two more hours of the snapshotted workload as-is.
run hours=2

# Tail health: serve 40% of the fleet interactively for an hour under the
# SLO-aware controller -- what violation rate does an 80 ms p99 target see?
slo p99=80 fraction=0.4 policy=slo hours=1
