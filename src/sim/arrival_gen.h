// Synthetic open-loop arrival-time generator with diurnal and bursty
// structure: a sinusoidal base rate (the day/night cycle every production
// trace shows) overlaid with Poisson-arriving burst windows that multiply
// the instantaneous rate. Sampling uses Lewis-Shedler thinning against the
// rate ceiling, so the output is an exact draw from the non-homogeneous
// Poisson process and -- like everything stochastic in this repository --
// fully determined by the seed.
//
// This layer produces arrival TIMES only; the trace layer
// (GenerateDiurnalTrace in src/cluster/trace.h) attaches VM shapes,
// lifetimes, and priorities to them.
#ifndef SRC_SIM_ARRIVAL_GEN_H_
#define SRC_SIM_ARRIVAL_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace defl {

struct ArrivalGenConfig {
  // Off by default: the flat-rate Poisson generator (GenerateTrace) stays
  // the canonical path and existing outputs are untouched.
  bool enabled = false;

  // rate(t) = base * (1 + amplitude * sin(2*pi*(t - phase)/period)), so
  // `base` stays the MEAN rate over whole periods. amplitude in [0, 1]
  // (0 = flat, 1 = rate touches zero at the trough).
  double diurnal_amplitude = 0.0;
  double diurnal_period_s = 24.0 * 3600.0;
  // Shifts the sinusoid: the peak sits at phase + period/4.
  double diurnal_phase_s = 0.0;

  // Burst windows arrive as their own Poisson process (rate of ONSETS per
  // second); while inside a window, the instantaneous rate is multiplied by
  // burst_multiplier (> 1 spikes, < 1 dips, 1 disables).
  double burst_rate_per_s = 0.0;
  double burst_duration_s = 600.0;
  double burst_multiplier = 1.0;

  uint64_t seed = 7;
};

// Empty string when valid, else a description of the offending field.
std::string ValidateArrivalGen(const ArrivalGenConfig& config);

// Instantaneous rate at time t given the burst windows (sorted onset
// times). Exposed for tests; the generator uses an O(1) cursor internally.
double ArrivalRateAt(const ArrivalGenConfig& config, double base_rate_per_s,
                     double t, const std::vector<double>& burst_onsets);

// Strictly increasing arrival times in [0, duration_s), drawn by thinning a
// homogeneous Poisson process at the rate ceiling. base_rate_per_s is the
// mean rate the diurnal modulation oscillates around (e.g. derived from
// WithTargetLoad); the expected count is ~ base * duration * (1 +
// burst_time_fraction * (multiplier - 1)).
std::vector<double> GenerateArrivalTimes(const ArrivalGenConfig& config,
                                         double base_rate_per_s, double duration_s);

}  // namespace defl

#endif  // SRC_SIM_ARRIVAL_GEN_H_
