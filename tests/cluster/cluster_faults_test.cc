// Server health state machine and crash recovery in the cluster manager,
// plus the end-to-end guarantees for shipped fault plans: deterministic
// byte-identical telemetry, targets still met, no VM ever driven negative.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "src/cluster/cluster_sim.h"
#include "src/core/local_controller.h"
#include "src/faults/fault_injector.h"

namespace defl {
namespace {

std::unique_ptr<Vm> MakeVm(VmId id, double cpus, double mem_mb,
                           VmPriority priority = VmPriority::kLow) {
  VmSpec spec;
  spec.name = "vm" + std::to_string(id);
  spec.size = ResourceVector(cpus, mem_mb);
  spec.priority = priority;
  return std::make_unique<Vm>(id, spec);
}

ClusterConfig SmallClusterConfig() {
  ClusterConfig config;
  config.placement = PlacementPolicy::kFirstFit;
  return config;
}

TEST(ClusterHealthTest, CrashEvacuatesAndReplacesVms) {
  ClusterManager manager(2, ResourceVector(32.0, 65536.0), SmallClusterConfig());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 8.0, 16384.0)).ok());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(2, 8.0, 16384.0, VmPriority::kHigh)).ok());
  Server* origin = manager.ServerOf(1);
  ASSERT_NE(origin, nullptr);
  EXPECT_EQ(manager.health(origin->id()), ServerHealth::kHealthy);

  manager.CrashServer(origin->id());
  EXPECT_EQ(manager.health(origin->id()), ServerHealth::kDown);
  // Both VMs survived by moving to the other server, at full nominal size.
  Server* replacement = manager.ServerOf(1);
  ASSERT_NE(replacement, nullptr);
  EXPECT_NE(replacement->id(), origin->id());
  EXPECT_EQ(manager.ServerOf(2), replacement);
  Vm* vm1 = manager.FindVm(1);
  ASSERT_NE(vm1, nullptr);
  for (const ResourceKind kind : kAllResources) {
    EXPECT_NEAR(vm1->effective()[kind], vm1->size()[kind], 1e-9);
  }
  const ClusterCounters counters = manager.counters();
  EXPECT_EQ(counters.server_crashes, 1);
  EXPECT_EQ(counters.crash_replaced, 2);
  EXPECT_EQ(counters.crash_preempted, 0);
  EXPECT_EQ(counters.crash_lost, 0);
  EXPECT_EQ(counters.preempted, 0);  // policy counter untouched
}

TEST(ClusterHealthTest, CrashWithoutRoomPreemptsLowAndLosesHigh) {
  ClusterManager manager(1, ResourceVector(32.0, 65536.0), SmallClusterConfig());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 8.0, 16384.0)).ok());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(2, 8.0, 16384.0, VmPriority::kHigh)).ok());
  manager.CrashServer(0);
  EXPECT_EQ(manager.FindVm(1), nullptr);
  EXPECT_EQ(manager.FindVm(2), nullptr);
  const ClusterCounters counters = manager.counters();
  EXPECT_EQ(counters.crash_replaced, 0);
  EXPECT_EQ(counters.crash_preempted, 1);
  EXPECT_EQ(counters.crash_lost, 1);
  EXPECT_EQ(counters.preempted, 0);
  // The crash-preempted low-priority VM shows up in lifecycle bookkeeping.
  const std::vector<VmId> taken = manager.TakePreempted();
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0], 1);
}

TEST(ClusterHealthTest, UnhealthyServersExcludedFromPlacement) {
  ClusterManager manager(2, ResourceVector(32.0, 65536.0), SmallClusterConfig());
  manager.DegradeServer(0);
  EXPECT_EQ(manager.health(0), ServerHealth::kDegraded);
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 8.0, 16384.0)).ok());
  EXPECT_EQ(manager.ServerOf(1)->id(), 1);
  manager.CrashServer(1);
  // Nothing placeable left: degraded takes no new VMs, crashed is down.
  EXPECT_FALSE(manager.LaunchVm(MakeVm(3, 8.0, 16384.0)).ok());
  // Recovery alone is probation, not placement eligibility.
  manager.RecoverServer(1);
  EXPECT_EQ(manager.health(1), ServerHealth::kRecovering);
  EXPECT_FALSE(manager.LaunchVm(MakeVm(4, 8.0, 16384.0)).ok());
  manager.MarkHealthy(1);
  EXPECT_EQ(manager.health(1), ServerHealth::kHealthy);
  EXPECT_TRUE(manager.LaunchVm(MakeVm(5, 8.0, 16384.0)).ok());
  const ClusterCounters counters = manager.counters();
  EXPECT_EQ(counters.server_crashes, 1);
  EXPECT_EQ(counters.server_recoveries, 1);
}

TEST(ClusterHealthTest, RecoveryReinflatesSurvivors) {
  // Fill server 1, crash server 0 so its VM squeezes in via deflation, then
  // recover: the survivors should get resources back.
  ClusterConfig config = SmallClusterConfig();
  config.controller.mode = DeflationMode::kVmLevel;
  ClusterManager manager(2, ResourceVector(16.0, 32768.0), config);
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 12.0, 24576.0)).ok());  // server 0
  ASSERT_TRUE(manager.LaunchVm(MakeVm(2, 12.0, 24576.0)).ok());  // server 1
  manager.CrashServer(0);
  // VM 1 re-placed onto server 1 by deflating VM 2 (or itself).
  ASSERT_NE(manager.FindVm(1), nullptr);
  const double squeezed = manager.FindVm(2)->effective().cpu();
  EXPECT_LT(squeezed, 12.0);
  // VM 1 completes; proportional reinflation is triggered on completion,
  // and recovering the crashed server reinflates too. Do it in the recovery
  // order to exercise RecoverServer's sweep.
  manager.CompleteVm(1);
  manager.RecoverServer(0);
  EXPECT_GE(manager.FindVm(2)->effective().cpu(), 12.0 - 1e-6);
}

TEST(ClusterHealthTest, CrashAndRecoveryAreIdempotent) {
  ClusterManager manager(1, ResourceVector(8.0, 8192.0), SmallClusterConfig());
  manager.CrashServer(0);
  manager.CrashServer(0);  // no-op
  EXPECT_EQ(manager.counters().server_crashes, 1);
  manager.RecoverServer(0);
  manager.RecoverServer(0);  // no-op: not down anymore
  EXPECT_EQ(manager.counters().server_recoveries, 1);
  manager.MarkHealthy(0);
  manager.MarkHealthy(0);
  EXPECT_EQ(manager.health(0), ServerHealth::kHealthy);
}

ClusterSimConfig FaultedSimConfig() {
  ClusterSimConfig config;
  config.num_servers = 8;
  config.server_capacity = ResourceVector(32.0, 262144.0, 1000.0, 10000.0);
  config.trace.duration_s = 6.0 * 3600.0;
  config.trace.max_lifetime_s = 2.0 * 3600.0;
  config.trace.seed = 11;
  config.trace.arrival_rate_per_s = 0.02;
  config.recovery_grace_s = 300.0;

  FaultPlan plan;
  plan.seed = 99;
  FaultRule crash;
  crash.kind = FaultKind::kServerCrash;
  crash.server = 2;
  crash.start_s = crash.end_s = 3600.0;
  plan.rules.push_back(crash);
  FaultRule recover;
  recover.kind = FaultKind::kServerRecover;
  recover.server = 2;
  recover.start_s = recover.end_s = 7200.0;
  plan.rules.push_back(recover);
  FaultRule flaky;
  flaky.kind = FaultKind::kUnplugPartial;
  flaky.probability = 0.2;
  flaky.magnitude = 0.5;
  plan.rules.push_back(flaky);
  config.fault_plan = plan;
  return config;
}

TEST(ClusterFaultSimTest, SameSeedAndPlanIsByteIdentical) {
  std::string metrics[2];
  std::string traces[2];
  for (int run = 0; run < 2; ++run) {
    TelemetryContext telemetry;
    ClusterSimConfig config = FaultedSimConfig();
    config.telemetry = &telemetry;
    RunClusterSim(config);
    std::ostringstream metrics_os;
    telemetry.metrics().DumpJson(metrics_os);
    metrics[run] = metrics_os.str();
    std::ostringstream trace_os;
    telemetry.trace().DumpJsonl(trace_os);
    traces[run] = trace_os.str();
  }
  EXPECT_EQ(metrics[0], metrics[1]);
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_FALSE(metrics[0].empty());
}

TEST(ClusterFaultSimTest, CrashAccountingSurfacesInResult) {
  const ClusterSimResult result = RunClusterSim(FaultedSimConfig());
  EXPECT_EQ(result.server_crashes, 1);
  EXPECT_EQ(result.server_recoveries, 1);
  EXPECT_EQ(result.crash_replacements + result.crash_preemptions,
            result.counters.crash_replaced + result.counters.crash_preempted);
  // Policy preemption probability only counts policy preemptions.
  if (result.counters.launched_low_priority > 0) {
    EXPECT_DOUBLE_EQ(result.preemption_probability,
                     static_cast<double>(result.counters.preempted) /
                         static_cast<double>(result.counters.launched_low_priority));
  }
}

TEST(ClusterFaultSimTest, NoVmEverDrivenNegative) {
  ClusterSimConfig config = FaultedSimConfig();
  TelemetryContext telemetry;
  config.telemetry = &telemetry;
  RunClusterSim(config);
  config.telemetry = nullptr;
  // The registry-backed invariants: counters are consistent and nothing
  // reported a negative effective allocation (the trace would have recorded
  // it via the servers; spot-check by re-running and walking the cluster).
  ClusterManager manager(config.num_servers, config.server_capacity, config.cluster);
  FaultInjector injector(config.fault_plan);
  manager.AttachFaultInjector(&injector);
  for (int i = 0; i < 12; ++i) {
    manager.LaunchVm(MakeVm(i, 16.0, 131072.0));
  }
  manager.CrashServer(0);
  for (Server* server : manager.servers()) {
    for (const auto& vm : server->vms()) {
      for (const ResourceKind kind : kAllResources) {
        EXPECT_GE(vm->effective()[kind], -1e-9);
      }
    }
  }
}

// Every fault plan shipped in examples/ must preserve the paper's safety
// argument: hypervisor-backed cascades still meet their targets and no VM
// goes negative, no matter what the plan injects.
class ShippedPlanTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ShippedPlanTest, HypervisorBackedCascadeStillMeetsTarget) {
  const std::string path = std::string(DEFL_SOURCE_DIR) + "/examples/" + GetParam();
  const Result<FaultPlan> plan = LoadFaultPlanFile(path);
  ASSERT_TRUE(plan.ok()) << plan.error();
  FaultInjector injector(plan.value());

  Server server(1, ResourceVector(64.0, 262144.0));
  LocalControllerConfig config;
  config.mode = DeflationMode::kCascade;
  LocalController controller(&server, config);
  controller.AttachFaultInjector(&injector);
  for (VmId id = 0; id < 4; ++id) {
    VmSpec spec;
    spec.name = "vm" + std::to_string(id);
    spec.size = ResourceVector(8.0, 32768.0, 200.0, 1000.0);
    spec.priority = VmPriority::kLow;
    auto vm = std::make_unique<Vm>(id, spec);
    vm->set_state(VmState::kRunning);
    vm->guest_os().set_app_used_mb(8000.0);
    server.AddVm(std::move(vm));
  }
  for (int round = 0; round < 6; ++round) {
    for (VmId id = 0; id < 4; ++id) {
      const DeflationOutcome out =
          controller.DeflateVm(id, ResourceVector(1.0, 2048.0, 10.0, 50.0));
      EXPECT_TRUE(out.TargetMet())
          << GetParam() << " round " << round << " vm " << id;
    }
    controller.ReinflateAll();
    for (const auto& vm : server.vms()) {
      for (const ResourceKind kind : kAllResources) {
        EXPECT_GE(vm->effective()[kind], -1e-9) << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Examples, ShippedPlanTest,
                         ::testing::Values("faults_basic.plan", "faults_wire.plan",
                                           "faults_cluster.plan"));

}  // namespace
}  // namespace defl
