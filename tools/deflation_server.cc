// deflation_server: what-if capacity-planning service over one fleet
// snapshot (DESIGN.md §15).
//
// Loads a snapshot (or recovers a durable run directory) ONCE into an
// immutable in-memory blob, then answers what-if queries -- place N VMs,
// fail K% of servers, overcommit to a target, run H sim-hours -- each on a
// private copy-on-restore child session, so queries never see each other
// and the base state never changes. A sweep grid fans a parameter matrix
// (policy x fail fraction x overcommit x intensity) over child runs and
// merges the cells in canonical grid order: output is byte-identical for
// every --workers value.
//
// Examples:
//   deflation_sim --duration-h=12 --stop-after-h=12 --snapshot-out=fleet.snap
//   deflation_server --snapshot=fleet.snap --queries=examples/whatif_queries.q
//   deflation_server --snapshot=fleet.snap --sweep=examples/sweep_policies.grid \
//       --workers=8 --out=sweep.jsonl
//   deflation_server --recover-dir=run.d            # interactive: queries on stdin
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/cluster/sim_session.h"
#include "src/common/atomic_file.h"
#include "src/common/flags.h"
#include "src/common/sim_options.h"
#include "src/service/query.h"
#include "src/service/sweep.h"
#include "src/service/whatif.h"
#include "src/sim/snapshot_io.h"
#include "src/telemetry/json_util.h"

using namespace defl;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  return 1;
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{"cannot open " + path};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Error{"read error on " + path};
  }
  return std::move(buffer).str();
}

// Batch/sweep output lands atomically in --out, or on stdout.
int Emit(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  const Result<bool> written = WriteFileAtomic(out_path, text);
  if (!written.ok()) {
    return Fail("cannot write " + out_path + ": " + written.error());
  }
  return 0;
}

// Interactive mode: one query per stdin line, one JSON answer (or error)
// line per query on stdout. Parse errors are answers, not exits -- an
// operator typo must not take the service down.
int ServeStdin(const WhatIfService& service) {
  std::string line;
  while (std::getline(std::cin, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    if (line == "quit" || line == "exit") {
      break;
    }
    Result<WhatIfQuery> query = ParseQuery(line);
    if (!query.ok()) {
      std::printf("{\"error\":%s}\n", JsonString(query.error()).c_str());
      std::fflush(stdout);
      continue;
    }
    Result<std::string> answer = service.Answer(query.value());
    if (!answer.ok()) {
      std::printf("{\"error\":%s}\n", JsonString(answer.error()).c_str());
    } else {
      std::printf("%s\n", answer.value().c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot;
  std::string recover_dir;
  std::string queries_path;
  std::string sweep_path;
  std::string out_path;
  int64_t workers = 1;

  FlagParser parser(
      "deflation_server: what-if capacity-planning queries over a fleet "
      "snapshot");
  parser.AddString("snapshot", "load this SimSession snapshot as the base fleet",
                   &snapshot);
  parser.AddString("recover-dir",
                   "recover this durable run directory (DESIGN.md §13) and "
                   "serve its recovered state instead of a snapshot file",
                   &recover_dir);
  parser.AddString("queries",
                   "answer this query script (one query per line) as a batch "
                   "and exit; without --queries/--sweep, queries are read "
                   "interactively from stdin",
                   &queries_path);
  parser.AddString("sweep",
                   "run this sweep grid file over the base snapshot and exit",
                   &sweep_path);
  parser.AddString("out", "write the batch/sweep report here (atomic) instead "
                   "of stdout",
                   &out_path);
  parser.AddInt("workers",
                "threads answering queries / sweep cells concurrently "
                "(output is byte-identical for every value)",
                &workers);
  const Result<std::vector<std::string>> parsed = parser.Parse(argc, argv);
  if (!parsed.ok()) {
    return Fail(parsed.error());
  }
  if (!parsed.value().empty()) {
    return Fail("unexpected positional argument '" + parsed.value()[0] + "'");
  }
  const Result<bool> combo = RejectFlagCombination(
      "snapshot", !snapshot.empty(), "recover-dir", !recover_dir.empty(),
      "the base fleet has exactly one source");
  if (!combo.ok()) {
    return Fail(combo.error());
  }
  const Result<bool> mode = RejectFlagCombination(
      "queries", !queries_path.empty(), "sweep", !sweep_path.empty(),
      "run batches and sweeps as separate invocations");
  if (!mode.ok()) {
    return Fail(mode.error());
  }
  if (snapshot.empty() && recover_dir.empty()) {
    return Fail("one of --snapshot or --recover-dir is required");
  }
  if (workers < 1) {
    return Fail("--workers must be >= 1");
  }

  // Acquire the base blob. A recovered durable dir is re-serialized through
  // SnapshotBytes(): restore is byte-exact, so children of the re-serialized
  // blob answer exactly as children of a snapshot taken at the same state.
  std::string blob;
  if (!snapshot.empty()) {
    Result<std::string> bytes = ReadSnapshotFile(snapshot);
    if (!bytes.ok()) {
      return Fail(bytes.error());
    }
    blob = std::move(bytes.value());
  } else {
    Result<SimSession> recovered = SimSession::Recover(recover_dir);
    if (!recovered.ok()) {
      return Fail("cannot recover " + recover_dir + ": " + recovered.error());
    }
    blob = recovered.value().SnapshotBytes();
  }

  Result<WhatIfService> loaded = WhatIfService::Load(std::move(blob));
  if (!loaded.ok()) {
    return Fail(loaded.error());
  }
  const WhatIfService& service = loaded.value();
  std::fprintf(stderr,
               "deflation_server: base fleet loaded (%zu bytes, fnv1a64 "
               "%016llx, t=%.1fh of %.1fh, workers=%lld)\n",
               service.blob().size(),
               static_cast<unsigned long long>(service.blob_fnv()),
               service.base_now_s() / 3600.0,
               service.base_duration_s() / 3600.0,
               static_cast<long long>(workers));

  if (!queries_path.empty()) {
    Result<std::string> script = ReadTextFile(queries_path);
    if (!script.ok()) {
      return Fail(script.error());
    }
    Result<std::vector<WhatIfQuery>> queries = ParseQueryScript(script.value());
    if (!queries.ok()) {
      return Fail(queries_path + ": " + queries.error());
    }
    return Emit(service.AnswerBatch(queries.value(), static_cast<int>(workers)),
                out_path);
  }
  if (!sweep_path.empty()) {
    Result<std::string> grid_text = ReadTextFile(sweep_path);
    if (!grid_text.ok()) {
      return Fail(grid_text.error());
    }
    Result<SweepGrid> grid = ParseSweepGrid(grid_text.value());
    if (!grid.ok()) {
      return Fail(sweep_path + ": " + grid.error());
    }
    SweepOrchestrator orchestrator(&service);
    Result<std::string> report =
        orchestrator.Run(grid.value(), static_cast<int>(workers));
    if (!report.ok()) {
      return Fail(report.error());
    }
    return Emit(report.value(), out_path);
  }
  return ServeStdin(service);
}
