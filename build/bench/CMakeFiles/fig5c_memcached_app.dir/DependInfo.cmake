
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5c_memcached_app.cc" "bench/CMakeFiles/fig5c_memcached_app.dir/fig5c_memcached_app.cc.o" "gcc" "bench/CMakeFiles/fig5c_memcached_app.dir/fig5c_memcached_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/defl_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/defl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/defl_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/defl_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/defl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
