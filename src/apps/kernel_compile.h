// Kernel-compile model: a parallel build (make -j) with an Amdahl-style
// profile -- dependency chains, link steps and single-threaded phases form
// the serial fraction. CPU is the binding resource; the memory footprint is
// modest, so this workload isolates the CPU reclamation mechanisms compared
// in Figure 5b (vCPU hot-unplug vs hypervisor shares/throttling).
//
// An unmodified build has no deflation agent: make -jN keeps N workers, so
// under hypervisor CPU deflation the extra runnable threads suffer LHP. A
// deflation-aware build (the optional agent here) reduces -j instead, which
// is equivalent to hot-unplug from the performance model's viewpoint.
#ifndef SRC_APPS_KERNEL_COMPILE_H_
#define SRC_APPS_KERNEL_COMPILE_H_

#include <string>

#include "src/apps/app_model.h"
#include "src/hypervisor/overcommit.h"

namespace defl {

struct KernelCompileConfig {
  // Fraction of build work that parallelizes across cores. Calibrated so a
  // 4-vCPU build deflated 75% loses ~30% performance with combined
  // hypervisor+OS deflation, matching Section 6.1.
  double parallel_fraction = 0.5;
  double footprint_mb = 4096.0;  // compiler working set
  double baseline_cpus = 4.0;
  // Source tree + artifacts the build re-reads from the page cache; when
  // unplug drops cache pages, those reads go to disk. 0 disables the effect
  // (cold-cache baseline).
  double page_cache_working_set_mb = 0.0;
  // Build-time inflation when the entire working set must be re-read.
  double cold_cache_penalty = 0.25;
  OvercommitCosts costs;
};

class KernelCompileModel : public AppModel {
 public:
  explicit KernelCompileModel(const KernelCompileConfig& config);

  double NormalizedPerformance(const EffectiveAllocation& alloc) const override;
  double MemoryFootprintMb() const override { return config_.footprint_mb; }
  DeflationAgent* agent() override { return nullptr; }  // unmodified app
  const std::string& name() const override { return name_; }

  // Build-throughput multiplier relative to the undeflated baseline
  // (inverse of makespan ratio).
  double Throughput(const EffectiveAllocation& alloc) const;

  const KernelCompileConfig& config() const { return config_; }

 private:
  KernelCompileConfig config_;
  std::string name_ = "kernel-compile";
};

}  // namespace defl

#endif  // SRC_APPS_KERNEL_COMPILE_H_
