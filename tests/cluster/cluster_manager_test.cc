#include "src/cluster/cluster_manager.h"

#include <gtest/gtest.h>

#include <memory>

namespace defl {
namespace {

std::unique_ptr<Vm> MakeVm(VmId id, double cpus, double mem_mb,
                           VmPriority priority = VmPriority::kLow,
                           double min_fraction = 0.0) {
  VmSpec spec;
  spec.name = "vm" + std::to_string(id);
  spec.size = ResourceVector(cpus, mem_mb);
  spec.priority = priority;
  spec.min_size = spec.size * min_fraction;
  return std::make_unique<Vm>(id, spec);
}

ClusterConfig DeflationConfig() {
  ClusterConfig config;
  config.strategy = ReclamationStrategy::kDeflation;
  config.controller.mode = DeflationMode::kVmLevel;
  return config;
}

TEST(ClusterManagerTest, LaunchPlacesOnFreeServer) {
  ClusterManager manager(2, ResourceVector(16.0, 65536.0), DeflationConfig());
  const Result<ServerId> placed = manager.LaunchVm(MakeVm(1, 8.0, 32768.0));
  ASSERT_TRUE(placed.ok());
  EXPECT_NE(manager.FindVm(1), nullptr);
  EXPECT_EQ(manager.counters().launched, 1);
  EXPECT_EQ(manager.ServerOf(1)->id(), placed.value());
}

TEST(ClusterManagerTest, OverflowTriggersDeflation) {
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), DeflationConfig());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 16.0, 65536.0)).ok());  // fills server
  const Result<ServerId> placed =
      manager.LaunchVm(MakeVm(2, 8.0, 32768.0, VmPriority::kHigh));
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(manager.counters().deflation_ops, 1);
  EXPECT_EQ(manager.counters().preempted, 0);
  // The low-priority VM shrank to make room.
  EXPECT_LE(manager.FindVm(1)->effective().cpu(), 8.0 + 1e-9);
}

TEST(ClusterManagerTest, DeflationPreemptsOnlyBelowMinimums) {
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), DeflationConfig());
  // Two low-pri VMs with high minimums: deflation alone cannot yield 12 CPUs.
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 8.0, 32768.0, VmPriority::kLow, 0.75)).ok());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(2, 8.0, 32768.0, VmPriority::kLow, 0.75)).ok());
  const Result<ServerId> placed =
      manager.LaunchVm(MakeVm(3, 12.0, 49152.0, VmPriority::kHigh));
  ASSERT_TRUE(placed.ok());
  EXPECT_GE(manager.counters().preempted, 1);
  EXPECT_EQ(manager.TakePreempted().size(), manager.counters().preempted);
}

TEST(ClusterManagerTest, PreemptionOnlyStrategyRevokesInsteadOfDeflating) {
  ClusterConfig config;
  config.strategy = ReclamationStrategy::kPreemptionOnly;
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), config);
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 12.0, 49152.0)).ok());
  const Result<ServerId> placed =
      manager.LaunchVm(MakeVm(2, 8.0, 32768.0, VmPriority::kHigh));
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(manager.counters().preempted, 1);
  EXPECT_EQ(manager.counters().deflation_ops, 0);
  EXPECT_EQ(manager.FindVm(1), nullptr);
}

TEST(ClusterManagerTest, PreemptionOnlyLowPriorityCannotDisplace) {
  ClusterConfig config;
  config.strategy = ReclamationStrategy::kPreemptionOnly;
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), config);
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 12.0, 49152.0)).ok());
  // A low-priority arrival that does not fit in free space is rejected.
  const Result<ServerId> placed = manager.LaunchVm(MakeVm(2, 8.0, 32768.0));
  EXPECT_FALSE(placed.ok());
  EXPECT_EQ(manager.counters().rejected, 1);
}

TEST(ClusterManagerTest, HighPriorityNeverPreempted) {
  ClusterConfig config;
  config.strategy = ReclamationStrategy::kPreemptionOnly;
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), config);
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 16.0, 65536.0, VmPriority::kHigh)).ok());
  const Result<ServerId> placed =
      manager.LaunchVm(MakeVm(2, 8.0, 32768.0, VmPriority::kHigh));
  EXPECT_FALSE(placed.ok());
  EXPECT_NE(manager.FindVm(1), nullptr);
}

TEST(ClusterManagerTest, CompletionReinflatesDeflatedNeighbors) {
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), DeflationConfig());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 16.0, 65536.0)).ok());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(2, 8.0, 32768.0, VmPriority::kHigh)).ok());
  ASSERT_LT(manager.FindVm(1)->effective().cpu(), 16.0);
  manager.CompleteVm(2);
  EXPECT_EQ(manager.counters().completed, 1);
  // The freed resources flowed back.
  EXPECT_NEAR(manager.FindVm(1)->effective().cpu(), 16.0, 1e-6);
}

TEST(ClusterManagerTest, UtilizationAndOvercommitmentMetrics) {
  ClusterManager manager(2, ResourceVector(16.0, 65536.0), DeflationConfig());
  EXPECT_DOUBLE_EQ(manager.Utilization(), 0.0);
  EXPECT_DOUBLE_EQ(manager.Overcommitment(), 0.0);
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 16.0, 65536.0)).ok());
  EXPECT_DOUBLE_EQ(manager.Utilization(), 0.5);
  EXPECT_DOUBLE_EQ(manager.Overcommitment(), 0.5);
  // Deflate by launching a high-priority VM on the same server.
  ASSERT_TRUE(manager.LaunchVm(MakeVm(2, 16.0, 65536.0, VmPriority::kHigh)).ok());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(3, 16.0, 65536.0, VmPriority::kHigh)).ok());
  // Nominal demand 48 CPUs on 32: overcommitted 1.5x.
  EXPECT_DOUBLE_EQ(manager.Overcommitment(), 1.5);
  const std::vector<double> per_server = manager.PerServerOvercommitment();
  EXPECT_EQ(per_server.size(), 2u);
}

TEST(ClusterManagerTest, RejectsWhenClusterExhausted) {
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), DeflationConfig());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 16.0, 65536.0, VmPriority::kHigh)).ok());
  EXPECT_FALSE(manager.LaunchVm(MakeVm(2, 16.0, 65536.0, VmPriority::kHigh)).ok());
  EXPECT_EQ(manager.counters().rejected, 1);
}

TEST(ClusterManagerTest, CompleteUnknownVmIsNoOp) {
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), DeflationConfig());
  manager.CompleteVm(42);
  EXPECT_EQ(manager.counters().completed, 0);
}

}  // namespace
}  // namespace defl
