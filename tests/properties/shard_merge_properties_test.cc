// Property test for the sharded parallel sweeps (DESIGN.md §10): replaying
// the SAME randomized event sequence with the fork-join pool at 1, 2, and 7
// threads must produce bitwise-exact results -- every ClusterSimResult
// field, the metrics JSON, the event-trace JSONL, the per-server accounting
// aggregates, and the flat-folded HighPriorityEffectiveCpu sum. Sharding is
// an implementation detail of HOW the sweeps run; it must be invisible in
// WHAT they compute. Seeded from DEFL_FAULT_SEED so CI can run a matrix.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/cluster/cluster_manager.h"
#include "src/cluster/cluster_sim.h"

namespace defl {
namespace {

const int kThreadCounts[] = {1, 2, 7};

uint64_t TestSeed() {
  const char* env = std::getenv("DEFL_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

std::unique_ptr<Vm> RandomVm(VmId id, Rng& rng) {
  VmSpec spec;
  spec.name = "vm" + std::to_string(id);
  spec.size = ResourceVector(static_cast<double>(rng.UniformInt(1, 12)),
                             static_cast<double>(rng.UniformInt(1, 12)) * 4096.0);
  spec.priority = rng.Uniform(0.0, 1.0) < 0.6 ? VmPriority::kLow : VmPriority::kHigh;
  spec.min_size = spec.size * rng.Uniform(0.0, 0.6);
  return std::make_unique<Vm>(id, spec);
}

// --- Full-simulation replay ------------------------------------------------

struct SimRun {
  ClusterSimResult result;
  std::string metrics_json;
  std::string trace_jsonl;
};

SimRun RunSim(int variant, int threads) {
  ClusterSimConfig config;
  config.num_servers = 20;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.seed = TestSeed() + static_cast<uint64_t>(variant) * 1009;
  config.trace.duration_s = 2.0 * 3600.0;
  config.trace.max_lifetime_s = 1.0 * 3600.0;
  config.trace =
      WithTargetLoad(config.trace, 1.6, config.num_servers, config.server_capacity);
  config.cluster.placement = static_cast<PlacementPolicy>(variant % 3);
  config.cluster.strategy = variant % 2 == 0 ? ReclamationStrategy::kDeflation
                                             : ReclamationStrategy::kPreemptionOnly;
  config.reinflate_period_s = variant % 3 == 0 ? 0.0 : 600.0;
  config.predictive_holdback = variant % 4 == 1;
  config.cluster.threads = threads;

  SimRun run;
  TelemetryContext telemetry;
  telemetry.trace().set_enabled(true);
  config.telemetry = &telemetry;
  run.result = RunClusterSim(config);
  std::ostringstream metrics;
  telemetry.metrics().DumpJson(metrics);
  run.metrics_json = metrics.str();
  std::ostringstream trace;
  telemetry.trace().DumpJsonl(trace);
  run.trace_jsonl = trace.str();
  return run;
}

void ExpectSimRunsBitwiseEqual(const SimRun& a, const SimRun& b, int threads) {
  const std::string label = " (threads=1 vs " + std::to_string(threads) + ")";
  // EXPECT_EQ on doubles is exact equality -- bitwise for these folds, no
  // tolerance: the sharded reduction replays the sequential arithmetic.
  EXPECT_EQ(a.result.counters.launched, b.result.counters.launched) << label;
  EXPECT_EQ(a.result.counters.launched_low_priority,
            b.result.counters.launched_low_priority)
      << label;
  EXPECT_EQ(a.result.counters.rejected, b.result.counters.rejected) << label;
  EXPECT_EQ(a.result.counters.preempted, b.result.counters.preempted) << label;
  EXPECT_EQ(a.result.counters.completed, b.result.counters.completed) << label;
  EXPECT_EQ(a.result.counters.deflation_ops, b.result.counters.deflation_ops) << label;
  EXPECT_EQ(a.result.preemption_probability, b.result.preemption_probability) << label;
  EXPECT_EQ(a.result.rejection_rate, b.result.rejection_rate) << label;
  EXPECT_EQ(a.result.mean_utilization, b.result.mean_utilization) << label;
  EXPECT_EQ(a.result.mean_overcommitment, b.result.mean_overcommitment) << label;
  EXPECT_EQ(a.result.peak_overcommitment, b.result.peak_overcommitment) << label;
  EXPECT_EQ(a.result.server_overcommitment_samples,
            b.result.server_overcommitment_samples)
      << label;
  EXPECT_EQ(a.result.usage.low_pri_vm_hours, b.result.usage.low_pri_vm_hours) << label;
  EXPECT_EQ(a.result.usage.low_pri_nominal_cpu_hours,
            b.result.usage.low_pri_nominal_cpu_hours)
      << label;
  EXPECT_EQ(a.result.usage.low_pri_effective_cpu_hours,
            b.result.usage.low_pri_effective_cpu_hours)
      << label;
  EXPECT_EQ(a.result.usage.high_pri_cpu_hours, b.result.usage.high_pri_cpu_hours)
      << label;
  EXPECT_EQ(a.result.low_priority_allocation_quality,
            b.result.low_priority_allocation_quality)
      << label;
  EXPECT_EQ(a.metrics_json, b.metrics_json) << label;
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl) << label;
}

class ShardMergeSimTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardMergeSimTest, SimulationIsBitwiseExactAcrossShardCounts) {
  const SimRun base = RunSim(GetParam(), 1);
  EXPECT_FALSE(base.metrics_json.empty());
  for (const int threads : kThreadCounts) {
    if (threads == 1) {
      continue;
    }
    const SimRun sharded = RunSim(GetParam(), threads);
    ExpectSimRunsBitwiseEqual(base, sharded, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardMergeSimTest, ::testing::Range(0, 8));

// --- Direct manager-op replay ----------------------------------------------

// Snapshot of everything the sharded sweeps compute, for cross-thread-count
// comparison after an identical random op sequence.
struct ManagerSnapshot {
  std::vector<ServerAccounting> accounting;
  std::vector<ClusterManager::ServerUsageSample> usage;
  std::vector<double> high_pri_cpu_readings;
  ClusterCounters counters;
};

ManagerSnapshot RunRandomOps(int variant, int threads) {
  const uint64_t seed = TestSeed() + static_cast<uint64_t>(variant) * 7919;
  Rng rng(seed);
  ClusterConfig config;
  config.placement = static_cast<PlacementPolicy>(variant % 3);
  config.threads = threads;
  const int num_servers = 6;
  ClusterManager manager(num_servers, ResourceVector(16.0, 65536.0), config);

  ManagerSnapshot snap;
  std::vector<VmId> live;
  VmId next_id = 1;
  for (int op = 0; op < 300; ++op) {
    const int64_t roll = rng.UniformInt(0, 99);
    if (roll < 50) {  // launch (exercises the sharded placement probes)
      const VmId id = next_id++;
      if (manager.LaunchVm(RandomVm(id, rng)).ok()) {
        live.push_back(id);
      }
    } else if (roll < 60 && !live.empty()) {  // complete
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      manager.CompleteVm(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (roll < 68 && !live.empty()) {  // explicit deflate
      // Frees capacity while leaving the VM deflated, so a later
      // ReinflateSweep has something real to give back.
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      Server* server = manager.ServerOf(live[pick]);
      if (server != nullptr) {
        Vm* vm = server->FindVm(live[pick]);
        manager.controller(server->id())
            ->DeflateVm(live[pick], vm->deflatable_amount() * rng.Uniform(0.0, 1.0));
      }
    } else if (roll < 75) {  // sharded reinflation sweep
      manager.ReinflateSweep(rng.Uniform(0.0, 2.0));
    } else if (roll < 85) {  // sharded demand gather
      snap.high_pri_cpu_readings.push_back(manager.HighPriorityEffectiveCpu());
    } else if (roll < 92) {  // crash
      manager.CrashServer(rng.UniformInt(0, num_servers - 1));
    } else {  // recover + promote
      const ServerId target = rng.UniformInt(0, num_servers - 1);
      manager.RecoverServer(target);
      manager.MarkHealthy(target);
    }
    std::erase_if(live, [&manager](VmId id) { return manager.FindVm(id) == nullptr; });
  }

  manager.WarmAccounting();
  manager.CollectUsageSamples(&snap.usage);
  for (Server* server : manager.servers()) {
    snap.accounting.push_back(server->RecomputeAccounting());
  }
  snap.counters = manager.counters();
  return snap;
}

class ShardMergeOpsTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardMergeOpsTest, ManagerOpsAreBitwiseExactAcrossShardCounts) {
  const ManagerSnapshot base = RunRandomOps(GetParam(), 1);
  for (const int threads : kThreadCounts) {
    if (threads == 1) {
      continue;
    }
    const ManagerSnapshot sharded = RunRandomOps(GetParam(), threads);
    const std::string label = " (threads=1 vs " + std::to_string(threads) + ")";
    ASSERT_EQ(base.accounting.size(), sharded.accounting.size()) << label;
    for (size_t i = 0; i < base.accounting.size(); ++i) {
      EXPECT_TRUE(base.accounting[i] == sharded.accounting[i])
          << "server " << i << label;
    }
    ASSERT_EQ(base.usage.size(), sharded.usage.size()) << label;
    for (size_t i = 0; i < base.usage.size(); ++i) {
      EXPECT_EQ(base.usage[i].nominal_overcommitment,
                sharded.usage[i].nominal_overcommitment)
          << "server " << i << label;
      ASSERT_EQ(base.usage[i].vms.size(), sharded.usage[i].vms.size())
          << "server " << i << label;
      for (size_t v = 0; v < base.usage[i].vms.size(); ++v) {
        EXPECT_EQ(base.usage[i].vms[v].low_priority,
                  sharded.usage[i].vms[v].low_priority)
            << "server " << i << " vm " << v << label;
        EXPECT_EQ(base.usage[i].vms[v].nominal_cpu, sharded.usage[i].vms[v].nominal_cpu)
            << "server " << i << " vm " << v << label;
        EXPECT_EQ(base.usage[i].vms[v].effective_cpu,
                  sharded.usage[i].vms[v].effective_cpu)
            << "server " << i << " vm " << v << label;
      }
    }
    EXPECT_EQ(base.high_pri_cpu_readings, sharded.high_pri_cpu_readings) << label;
    EXPECT_EQ(base.counters.launched, sharded.counters.launched) << label;
    EXPECT_EQ(base.counters.rejected, sharded.counters.rejected) << label;
    EXPECT_EQ(base.counters.preempted, sharded.counters.preempted) << label;
    EXPECT_EQ(base.counters.completed, sharded.counters.completed) << label;
    EXPECT_EQ(base.counters.deflation_ops, sharded.counters.deflation_ops) << label;
    EXPECT_EQ(base.counters.crash_replaced, sharded.counters.crash_replaced) << label;
    EXPECT_EQ(base.counters.crash_preempted, sharded.counters.crash_preempted) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardMergeOpsTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace defl
