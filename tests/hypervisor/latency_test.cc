#include "src/hypervisor/latency.h"

#include <gtest/gtest.h>

namespace defl {
namespace {

TEST(LatencyTest, EmptyBreakdownIsJustFixedCost) {
  DeflationLatencyModel model;
  ReclaimBreakdown b;
  EXPECT_DOUBLE_EQ(model.TotalSeconds(b), model.params().fixed_s);
}

TEST(LatencyTest, HypervisorSwapDominatesLargeMemory) {
  DeflationLatencyModel model;
  ReclaimBreakdown b;
  b.hv_swap_mb = 50.0 * 1024.0;  // 50 GB, the Figure 8b giant-VM case
  const double t = model.TotalSeconds(b);
  // 50 GB at ~180 MB/s with control-loop overhead: several minutes.
  EXPECT_GT(t, 250.0);
  EXPECT_LT(t, 500.0);
}

TEST(LatencyTest, UnplugIsMuchFasterThanSwap) {
  DeflationLatencyModel model;
  ReclaimBreakdown swap;
  swap.hv_swap_mb = 20000.0;
  ReclaimBreakdown unplug;
  unplug.unplug_cold_mb = 20000.0;
  EXPECT_LT(model.TotalSeconds(unplug), model.TotalSeconds(swap) / 5.0);
}

TEST(LatencyTest, AppFreedMemoryUnplugsFastest) {
  DeflationLatencyModel model;
  ReclaimBreakdown cold;
  cold.unplug_cold_mb = 20000.0;
  ReclaimBreakdown freed;
  freed.unplug_freed_mb = 20000.0;
  EXPECT_LT(model.OsStageSeconds(freed), model.OsStageSeconds(cold));
}

TEST(LatencyTest, AppStageOnlyChargedWhenUsed) {
  DeflationLatencyModel model;
  ReclaimBreakdown b;
  b.app_freed_mb = 10000.0;
  b.used_app_level = false;
  EXPECT_DOUBLE_EQ(model.AppStageSeconds(b), 0.0);
  b.used_app_level = true;
  EXPECT_GT(model.AppStageSeconds(b), model.params().app_fixed_s);
}

TEST(LatencyTest, CpuAndMemoryUnplugOverlap) {
  DeflationLatencyModel model;
  ReclaimBreakdown b;
  b.unplug_cpus = 24.0;
  b.unplug_cold_mb = 1000.0;
  const double cpu_only = 24.0 * model.params().cpu_unplug_s;
  EXPECT_DOUBLE_EQ(model.OsStageSeconds(b), cpu_only);  // CPU dominates; max not sum
}

TEST(LatencyTest, StagesAreAdditive) {
  DeflationLatencyModel model;
  ReclaimBreakdown b;
  b.used_app_level = true;
  b.app_freed_mb = 5000.0;
  b.unplug_freed_mb = 5000.0;
  b.hv_swap_mb = 1000.0;
  EXPECT_NEAR(model.TotalSeconds(b),
              model.params().fixed_s + model.AppStageSeconds(b) +
                  model.OsStageSeconds(b) + model.HypervisorStageSeconds(b),
              1e-12);
}

TEST(LatencyTest, CascadeBeatsBlackBoxForGiantVm) {
  // The Figure 8b scenario in microcosm: reclaiming 50 GB from a VM where
  // the app can free most of it should be several times faster than pure
  // hypervisor swapping.
  DeflationLatencyModel model;
  ReclaimBreakdown cascade;
  cascade.used_app_level = true;
  cascade.app_freed_mb = 40000.0;
  cascade.unplug_freed_mb = 40000.0;
  cascade.unplug_cold_mb = 0.0;
  cascade.hv_swap_mb = 10000.0;
  ReclaimBreakdown blackbox;
  blackbox.hv_swap_mb = 50000.0;
  EXPECT_LT(model.TotalSeconds(cascade), model.TotalSeconds(blackbox) / 2.0);
}

}  // namespace
}  // namespace defl
