// Figure 5b: kernel-compile under CPU deflation through hypervisor-only
// (shares/throttling with lock-holder preemption), OS-only (vCPU hot-unplug)
// and hypervisor+OS. The paper: hypervisor-only trails hot-unplug by up to
// ~22%; combining both allows 75% deflation at ~30% performance loss.
#include "bench/bench_util.h"
#include "src/apps/deflation_harness.h"
#include "src/apps/kernel_compile.h"

namespace defl {
namespace {

double Point(DeflationMode mode, double f) {
  KernelCompileModel model{KernelCompileConfig{}};
  const HarnessResult r =
      DeflateAppVm(model, mode, ResourceVector(f, 0.0, 0.0, 0.0), StandardVmSpec(),
                   /*use_agent=*/false);
  return model.NormalizedPerformance(r.alloc);
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Figure 5b", "kernel-compile CPU deflation: mechanism comparison");
  bench::PrintNote("make -j4 build in a 4 vCPU VM; CPU deflated 0-80%.");
  bench::PrintColumns({"deflation%", "hypervisor", "os-only", "hyp+os"});
  for (const double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8}) {
    bench::PrintCell(f * 100.0);
    bench::PrintCell(Point(DeflationMode::kHypervisorOnly, f));
    bench::PrintCell(Point(DeflationMode::kOsOnly, f));
    bench::PrintCell(Point(DeflationMode::kVmLevel, f));
    bench::EndRow();
  }
  return 0;
}
