# Empty compiler generated dependencies file for fig8b_deflation_latency.
# This may be replaced when dependencies are built.
