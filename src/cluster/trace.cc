#include "src/cluster/trace.h"

#include <cassert>
#include <cmath>

#include "src/common/rng.h"

namespace defl {

std::vector<VmCatalogEntry> DefaultVmCatalog() {
  // Sizes follow a typical cloud catalog (4 GB per core, I/O scaled with
  // size). Minimum fractions per application class: Spark tolerates deep
  // deflation (task scale-down), memcached needs enough memory for its hot
  // set, SpecJBB needs live heap plus headroom.
  // Minimum fractions follow the Figure 1 deflation-tolerance curves: Spark
  // and batch jobs survive 80-90% deflation, memcached needs its hot set,
  // SpecJBB needs live heap plus headroom.
  return {
      {"spark", ResourceVector(4.0, 16384.0, 100.0, 500.0), 0.10, 0.35},
      {"spark-large", ResourceVector(8.0, 32768.0, 200.0, 1000.0), 0.10, 0.10},
      {"memcached", ResourceVector(2.0, 8192.0, 50.0, 500.0), 0.20, 0.25},
      {"specjbb", ResourceVector(4.0, 16384.0, 50.0, 250.0), 0.30, 0.15},
      {"batch", ResourceVector(1.0, 4096.0, 25.0, 100.0), 0.05, 0.15},
  };
}

namespace {

// One trace event at arrival time t; draws (catalog pick, lifetime,
// priority) from `rng` in the exact per-event order GenerateTrace has always
// used, so both generators attach identical workloads to a given arrival
// sequence position.
TraceEvent SampleEvent(const TraceConfig& config, double total_weight, double t,
                       int64_t id, Rng& rng) {
  // Pick a catalog entry by weight.
  double pick = rng.NextDouble() * total_weight;
  const VmCatalogEntry* chosen = &config.catalog.back();
  for (const VmCatalogEntry& entry : config.catalog) {
    pick -= entry.weight;
    if (pick <= 0.0) {
      chosen = &entry;
      break;
    }
  }

  TraceEvent event;
  event.arrival_s = t;
  event.lifetime_s = rng.BoundedPareto(config.min_lifetime_s, config.max_lifetime_s,
                                       config.lifetime_alpha);
  event.spec.name = chosen->app + "-" + std::to_string(id);
  event.spec.size = chosen->size;
  event.spec.priority = rng.Chance(config.low_priority_fraction) ? VmPriority::kLow
                                                                 : VmPriority::kHigh;
  event.spec.min_size = chosen->size * chosen->min_fraction;
  return event;
}

double TotalCatalogWeight(const TraceConfig& config) {
  double total_weight = 0.0;
  for (const VmCatalogEntry& entry : config.catalog) {
    total_weight += entry.weight;
  }
  return total_weight;
}

}  // namespace

std::vector<TraceEvent> GenerateTrace(const TraceConfig& config) {
  assert(config.arrival_rate_per_s > 0.0 && !config.catalog.empty());
  Rng rng(config.seed);
  const double total_weight = TotalCatalogWeight(config);

  std::vector<TraceEvent> events;
  double t = rng.Exponential(config.arrival_rate_per_s);
  int64_t next_id = 0;
  while (t < config.duration_s) {
    events.push_back(SampleEvent(config, total_weight, t, next_id++, rng));
    t += rng.Exponential(config.arrival_rate_per_s);
  }
  return events;
}

std::vector<TraceEvent> GenerateDiurnalTrace(const TraceConfig& config,
                                             const ArrivalGenConfig& arrivals) {
  assert(config.arrival_rate_per_s > 0.0 && !config.catalog.empty());
  const std::vector<double> times = GenerateArrivalTimes(
      arrivals, config.arrival_rate_per_s, config.duration_s);
  Rng rng(config.seed);
  const double total_weight = TotalCatalogWeight(config);

  std::vector<TraceEvent> events;
  events.reserve(times.size());
  int64_t next_id = 0;
  for (const double t : times) {
    events.push_back(SampleEvent(config, total_weight, t, next_id++, rng));
  }
  return events;
}

double MeanVmCpu(const TraceConfig& config) {
  double total_weight = 0.0;
  double weighted_cpu = 0.0;
  for (const VmCatalogEntry& entry : config.catalog) {
    total_weight += entry.weight;
    weighted_cpu += entry.weight * entry.size.cpu();
  }
  return total_weight > 0.0 ? weighted_cpu / total_weight : 0.0;
}

double MeanLifetimeS(const TraceConfig& config) {
  // Mean of a bounded Pareto on [L, H] with tail alpha (alpha != 1).
  const double l = config.min_lifetime_s;
  const double h = config.max_lifetime_s;
  const double a = config.lifetime_alpha;
  const double la = std::pow(l, a);
  const double ha = std::pow(h, a);
  return la / (1.0 - la / ha) * a / (a - 1.0) *
         (1.0 / std::pow(l, a - 1.0) - 1.0 / std::pow(h, a - 1.0));
}

TraceConfig WithTargetLoad(const TraceConfig& config, double target_load,
                           int num_servers, const ResourceVector& server_capacity) {
  assert(target_load > 0.0);
  TraceConfig out = config;
  const double cluster_cpu = num_servers * server_capacity.cpu();
  // Little's law: offered CPU = rate * E[lifetime] * E[vm cpu].
  out.arrival_rate_per_s =
      target_load * cluster_cpu / (MeanLifetimeS(config) * MeanVmCpu(config));
  return out;
}

}  // namespace defl
