# Empty dependencies file for fig5b_kcompile_cpu.
# This may be replaced when dependencies are built.
