# Empty compiler generated dependencies file for fig7b_cnn_timeline.
# This may be replaced when dependencies are built.
