file(REMOVE_RECURSE
  "CMakeFiles/cascade_properties_test.dir/properties/cascade_properties_test.cc.o"
  "CMakeFiles/cascade_properties_test.dir/properties/cascade_properties_test.cc.o.d"
  "cascade_properties_test"
  "cascade_properties_test.pdb"
  "cascade_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascade_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
