// JVM application model (SpecJBB-style, fixed injection rate). Response
// time is driven by three effects:
//   * CPU: an M/M/1-with-capacity queueing term -- utilization rises as CPU
//     capacity is deflated;
//   * GC: shrinking the heap raises garbage-collection overhead roughly as
//     g0 * live / (heap - live) (the classic GC headroom law);
//   * swap: an unmodified JVM keeps its configured max heap, so memory
//     deflation below the footprint stalls requests on page faults.
// The application deflation policy (Section 4, "JVM") shrinks the max heap
// via forced GC to fit resident memory: more GC, but never swap.
#ifndef SRC_APPS_JVM_H_
#define SRC_APPS_JVM_H_

#include <string>

#include "src/apps/app_model.h"
#include "src/hypervisor/overcommit.h"

namespace defl {

struct JvmConfig {
  double live_data_mb = 4096.0;       // live heap data
  double configured_heap_mb = 10240.0;
  double jvm_overhead_mb = 1536.0;    // metaspace, code cache, stacks
  double min_headroom_factor = 1.2;   // heap >= live * factor
  double gc_coefficient = 0.08;       // g0 in gc_frac = g0 * live/(heap-live)
  double base_service_us = 400.0;     // request CPU cost at zero GC
  double injection_rate_per_s = 1000.0;  // fixed IR (SpecJBB "fixed IR" mode)
  double pages_touched_per_request = 25.0;
  double swap_in_us = 800.0;
  double heap_zipf_s = 0.95;          // page-access locality within the heap
  double hv_paging_efficiency = 0.8;
  double max_response_time_us = 10000.0;  // saturation cap ("SLO blown")
  OvercommitCosts costs;
};

class JvmModel;

// Application policy: on memory deflation, trigger GC and reduce max heap to
// fit the available memory (about 30 lines of JMX in the paper).
class JvmAgent : public DeflationAgent {
 public:
  explicit JvmAgent(JvmModel* model) : model_(model) {}

  ResourceVector SelfDeflate(const ResourceVector& target) override;
  void OnReinflate(const ResourceVector& added) override;
  double MemoryFootprintMb() const override;

 private:
  JvmModel* model_;
};

class JvmModel : public AppModel {
 public:
  explicit JvmModel(const JvmConfig& config);

  double NormalizedPerformance(const EffectiveAllocation& alloc) const override;
  double MemoryFootprintMb() const override;
  DeflationAgent* agent() override { return &agent_; }
  const std::string& name() const override { return name_; }

  // Mean response time in microseconds: the Figure 5d metric.
  double ResponseTimeUs(const EffectiveAllocation& alloc) const;
  // Maximum sustainable injection rate (requests/s at saturation): the
  // max-jOPS-style capacity metric used for Figure 1.
  double MaxThroughputPerS(const EffectiveAllocation& alloc) const;
  // GC time fraction at the current heap size.
  double GcFraction() const;

  double heap_mb() const { return heap_mb_; }
  double min_heap_mb() const;
  // Shrinks/grows the max heap (triggering GC); clamped to
  // [min_heap, configured_heap].
  void ResizeHeap(double new_heap_mb);

  const JvmConfig& config() const { return config_; }
  void SetBaseline(const EffectiveAllocation& alloc);

 private:
  double SwapStallUs(const EffectiveAllocation& alloc) const;

  JvmConfig config_;
  std::string name_ = "jvm-specjbb";
  double heap_mb_;
  JvmAgent agent_;
  double baseline_rt_us_ = 0.0;
};

}  // namespace defl

#endif  // SRC_APPS_JVM_H_
