#include "src/spark/policy.h"

#include <gtest/gtest.h>

namespace defl {
namespace {

TEST(PolicyMathTest, VmLevelFactorMatchesEquation1) {
  // T_vm/T = c + (1-c)/(1-max d): c=0.5, d=0.5 -> 0.5 + 0.5/0.5 = 1.5.
  EXPECT_DOUBLE_EQ(EstimateVmLevelTimeFactor(0.5, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(EstimateVmLevelTimeFactor(0.0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(EstimateVmLevelTimeFactor(1.0, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(EstimateVmLevelTimeFactor(0.0, 0.0), 1.0);
}

TEST(PolicyMathTest, SelfFactorMatchesEquation3) {
  // T_self/T = c + (rc + 1 - c)/(1 - mean d): c=0.5, d=0.5, r=1 ->
  // 0.5 + (0.5 + 0.5)/0.5 = 2.5.
  EXPECT_DOUBLE_EQ(EstimateSelfDeflationTimeFactor(0.5, 0.5, 1.0), 2.5);
  // With r = 0 self-deflation matches VM-level at equal d.
  EXPECT_DOUBLE_EQ(EstimateSelfDeflationTimeFactor(0.5, 0.5, 0.0),
                   EstimateVmLevelTimeFactor(0.5, 0.5));
}

TEST(PolicyMathTest, ExtremeDeflationClamped) {
  EXPECT_LT(EstimateVmLevelTimeFactor(0.0, 1.0), 1e3);
  EXPECT_LT(EstimateSelfDeflationTimeFactor(0.0, 1.0, 1.0), 1e3);
}

SparkPolicyInputs BaseInputs() {
  SparkPolicyInputs in;
  in.progress_c = 0.5;
  in.deflation_fractions = std::vector<double>(8, 0.5);
  in.r_estimate = 0.5;
  return in;
}

TEST(PolicyDecisionTest, UniformDeflationHighRPrefersVmLevel) {
  // With equal deflation everywhere, mean d == max d, so the straggler
  // penalty disappears and any recomputation cost tips toward VM-level.
  SparkPolicyInputs in = BaseInputs();
  in.r_estimate = 0.9;  // ALS-like
  const SparkPolicyDecision d = DecideSparkDeflation(in);
  EXPECT_EQ(d.choice, SparkDeflationChoice::kVmLevel);
  EXPECT_GT(d.t_self_factor, d.t_vm_factor);
}

TEST(PolicyMathTest, OvercommitEfficiencyInflatesVmEstimate) {
  EXPECT_GT(EstimateVmLevelTimeFactor(0.5, 0.5, 0.85),
            EstimateVmLevelTimeFactor(0.5, 0.5, 1.0));
}

TEST(PolicyDecisionTest, UniformDeflationLowRPrefersSelf) {
  // K-means-like: recomputation is cheap, while running on overcommitted
  // resources pays LHP/swap overheads -- self-deflation wins (Figure 6b).
  SparkPolicyInputs in = BaseInputs();
  in.r_estimate = 0.05;
  const SparkPolicyDecision d = DecideSparkDeflation(in);
  EXPECT_EQ(d.choice, SparkDeflationChoice::kSelfDeflate);
}

TEST(PolicyDecisionTest, SkewedDeflationLowRPrefersSelf) {
  // One VM deflated hard: VM-level stragglers dominate; cheap recomputation
  // (K-means-like) makes self-deflation attractive.
  SparkPolicyInputs in = BaseInputs();
  in.deflation_fractions = {0.8, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1};
  in.r_estimate = 0.05;
  const SparkPolicyDecision d = DecideSparkDeflation(in);
  EXPECT_EQ(d.choice, SparkDeflationChoice::kSelfDeflate);
}

TEST(PolicyDecisionTest, ShuffleImminentForcesWorstCaseR) {
  SparkPolicyInputs in = BaseInputs();
  in.deflation_fractions = {0.8, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1};
  in.r_estimate = 0.05;
  in.shuffle_imminent = true;
  const SparkPolicyDecision d = DecideSparkDeflation(in);
  EXPECT_DOUBLE_EQ(d.r_used, 1.0);
}

TEST(PolicyDecisionTest, SynchronousJobForcesWorstCaseR) {
  SparkPolicyInputs in = BaseInputs();
  in.synchronous_job = true;
  in.r_estimate = 0.0;
  const SparkPolicyDecision d = DecideSparkDeflation(in);
  EXPECT_DOUBLE_EQ(d.r_used, 1.0);
  EXPECT_EQ(d.choice, SparkDeflationChoice::kVmLevel);
}

TEST(PolicyDecisionTest, NearCompletionPrefersVmLevel) {
  // Section 4.1: jobs close to completion risk high recomputation, so the
  // policy tends to VM overcommitment.
  SparkPolicyInputs in = BaseInputs();
  in.deflation_fractions = {0.6, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2};
  in.r_estimate = 0.4;
  in.progress_c = 0.95;
  EXPECT_EQ(DecideSparkDeflation(in).choice, SparkDeflationChoice::kVmLevel);
  // The same pressure early in the run favors self-deflation.
  in.progress_c = 0.05;
  EXPECT_EQ(DecideSparkDeflation(in).choice, SparkDeflationChoice::kSelfDeflate);
}

TEST(PolicyDecisionTest, NamesAreStable) {
  EXPECT_STREQ(SparkDeflationChoiceName(SparkDeflationChoice::kSelfDeflate), "self");
  EXPECT_STREQ(SparkDeflationChoiceName(SparkDeflationChoice::kVmLevel), "vm-level");
}

}  // namespace
}  // namespace defl
