// Deflating distributed data processing: runs ALS (shuffle-heavy) and
// K-means (shallow lineage) on an 8-worker Spark-like cluster, applies 50%
// resource pressure halfway through, and shows the Section 4.1 policy
// choosing the cheaper mechanism per workload -- VM-level deflation for ALS
// (recomputation would be deep), self-deflation for K-means (recomputation
// is cheap, overcommitment overhead is not).
#include <cstdio>

#include "src/spark/experiment.h"

using namespace defl;

namespace {

void RunWorkload(const SparkWorkload& wl) {
  SparkExperimentConfig config;
  config.deflation_fraction = 0.5;
  config.deflate_at_progress = 0.5;

  const double baseline = SparkBaselineMakespan(wl, config);
  std::printf("%s: undisturbed run %.1f s\n", wl.name.c_str(), baseline);

  config.approach = SparkReclamationApproach::kCascadePolicy;
  const SparkExperimentResult cascade = RunSparkExperiment(wl, config);
  std::printf("  policy estimates: T_vm = %.2f, T_self = %.2f (r = %.2f)\n",
              cascade.decision.t_vm_factor, cascade.decision.t_self_factor,
              cascade.decision.r_used);
  std::printf("  policy chose %s; measured %.1f s (%.2fx)\n",
              SparkDeflationChoiceName(cascade.decision.choice), cascade.makespan_s,
              cascade.makespan_s / baseline);

  for (const SparkReclamationApproach approach :
       {SparkReclamationApproach::kSelfDeflation, SparkReclamationApproach::kVmLevel,
        SparkReclamationApproach::kPreemption}) {
    config.approach = approach;
    const SparkExperimentResult r = RunSparkExperiment(wl, config);
    std::printf("  %-11s %.1f s (%.2fx)  [killed %ld tasks, recomputed %ld, "
                "rollbacks %ld]\n",
                SparkReclamationApproachName(approach), r.makespan_s,
                r.makespan_s / baseline, r.tasks_killed, r.recomputed_tasks,
                r.rollbacks);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("50%% of every worker's resources reclaimed at 50%% job progress.\n\n");
  RunWorkload(MakeAlsWorkload(0.5));
  RunWorkload(MakeKmeansWorkload(0.5));
  RunWorkload(MakeCnnWorkload(0.5));
  return 0;
}
