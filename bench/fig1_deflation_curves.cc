// Figure 1: normalized performance of SPEC-JBB, kernel-compile, memcached
// and Spark K-means when their VMs are deflated by 0-90% (all resources,
// cascade deflation with each application's own policy). The paper's point:
// reclaiming 50% of all resources costs well under 50% of performance for
// deflation-friendly applications.
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/deflation_harness.h"
#include "src/apps/jvm.h"
#include "src/apps/kernel_compile.h"
#include "src/apps/memcached.h"
#include "src/spark/experiment.h"

namespace defl {
namespace {

// The workload drives each server at ~60% of its undeflated capacity, as in
// a loaded-but-not-saturated deployment; deflation only hurts once capacity
// drops below the offered load (plus any hit-rate/GC effects).
constexpr double kOfferedLoadFraction = 0.6;

double MemcachedPoint(double f) {
  MemcachedModel model{MemcachedConfig{}};
  Vm baseline_vm(0, StandardVmSpec());
  const EffectiveAllocation full = baseline_vm.allocation();
  const double base_hit = model.HitRate();
  const double base_capacity = model.ThroughputKGets(full) / base_hit;
  const double offered = kOfferedLoadFraction * base_capacity;

  const HarnessResult r =
      DeflateAppVm(model, DeflationMode::kCascade, ResourceVector::Uniform(f));
  const double hit = model.HitRate();
  const double capacity = hit > 0.0 ? model.ThroughputKGets(r.alloc) / hit : 0.0;
  return std::min(offered, capacity) * hit / (offered * base_hit);
}

double JvmPoint(double f) {
  JvmModel model{JvmConfig{}};
  Vm baseline_vm(0, StandardVmSpec());
  const double base_capacity = model.MaxThroughputPerS(baseline_vm.allocation());
  const double offered = kOfferedLoadFraction * base_capacity;
  const HarnessResult r =
      DeflateAppVm(model, DeflationMode::kCascade, ResourceVector::Uniform(f));
  return std::min(offered, model.MaxThroughputPerS(r.alloc)) / offered;
}

double KcompilePoint(double f) {
  KernelCompileModel model{KernelCompileConfig{}};
  const HarnessResult r = DeflateAppVm(model, DeflationMode::kVmLevel,
                                       ResourceVector::Uniform(f), StandardVmSpec(),
                                       /*use_agent=*/false);
  return model.NormalizedPerformance(r.alloc);
}

double SparkKmeansPoint(double f) {
  const SparkWorkload wl = MakeKmeansWorkload(0.25);
  SparkExperimentConfig config;
  config.approach = SparkReclamationApproach::kCascadePolicy;
  config.deflation_fraction = f;
  config.deflate_at_progress = 0.0;  // deflated for the whole run
  const double baseline = SparkBaselineMakespan(wl, config);
  const SparkExperimentResult result = RunSparkExperiment(wl, config);
  if (!result.completed || result.makespan_s <= 0.0) {
    return 0.0;
  }
  return baseline / result.makespan_s;
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Figure 1", "application performance vs deflation (cascade)");
  bench::PrintNote("4 vCPU / 16 GB VM; CPU, memory and I/O deflated together.");
  bench::PrintNote("Paper: at 50% deflation most apps lose < 30% performance.");
  bench::PrintColumns({"deflation%", "specjbb", "kcompile", "memcached", "spark-kmeans"});
  for (const double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    bench::PrintCell(f * 100.0);
    bench::PrintCell(JvmPoint(f));
    bench::PrintCell(KcompilePoint(f));
    bench::PrintCell(MemcachedPoint(f));
    bench::PrintCell(SparkKmeansPoint(f));
    bench::EndRow();
  }
  return 0;
}
