#include "src/sim/snapshot_io.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/atomic_file.h"

namespace defl {

uint64_t SnapshotFnv1a64(const char* data, size_t size) {
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

namespace {

void AppendU64Le(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t LoadU64Le(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

SnapshotWriter::SnapshotWriter() {
  bytes_.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  WriteU32(kSnapshotFormatVersion);
}

void SnapshotWriter::WriteU8(uint8_t v) {
  assert(!finished_);
  bytes_.push_back(static_cast<char>(v));
}

void SnapshotWriter::WriteU32(uint32_t v) {
  assert(!finished_);
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void SnapshotWriter::WriteU64(uint64_t v) {
  assert(!finished_);
  AppendU64Le(bytes_, v);
}

void SnapshotWriter::WriteF64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void SnapshotWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  assert(!finished_);
  bytes_.append(s);
}

std::string SnapshotWriter::Finish() {
  assert(!finished_);
  finished_ = true;
  AppendU64Le(bytes_, SnapshotFnv1a64(bytes_.data(), bytes_.size()));
  return std::move(bytes_);
}

SnapshotReader::SnapshotReader(std::string owned, std::string_view bytes,
                               size_t payload_begin, size_t payload_end)
    : owned_(std::move(owned)),
      bytes_(owned_.empty() ? bytes : std::string_view(owned_)),
      pos_(payload_begin),
      payload_end_(payload_end) {}

SnapshotReader::SnapshotReader(SnapshotReader&& other) noexcept
    : owned_(std::move(other.owned_)),
      bytes_(owned_.empty() ? other.bytes_ : std::string_view(owned_)),
      pos_(other.pos_),
      payload_end_(other.payload_end_),
      error_(std::move(other.error_)) {}

SnapshotReader& SnapshotReader::operator=(SnapshotReader&& other) noexcept {
  if (this != &other) {
    owned_ = std::move(other.owned_);
    bytes_ = owned_.empty() ? other.bytes_ : std::string_view(owned_);
    pos_ = other.pos_;
    payload_end_ = other.payload_end_;
    error_ = std::move(other.error_);
  }
  return *this;
}

Result<SnapshotReader> SnapshotReader::Open(std::string bytes) {
  Result<SnapshotReader> opened = OpenView(std::string_view(bytes));
  if (!opened.ok()) {
    return Error{opened.error()};
  }
  // Re-anchor the validated framing onto storage the reader owns; pos_ and
  // payload_end_ are offsets, so they carry over unchanged.
  return SnapshotReader(std::move(bytes), std::string_view(),
                        opened.value().pos_, opened.value().payload_end_);
}

Result<SnapshotReader> SnapshotReader::OpenView(std::string_view bytes) {
  constexpr size_t kHeader = sizeof(kSnapshotMagic) + 4;
  constexpr size_t kFooter = 8;
  if (bytes.size() < kHeader + kFooter) {
    return Error{"snapshot truncated: " + std::to_string(bytes.size()) +
                 " bytes is smaller than the fixed header + footer"};
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Error{"not a deflation snapshot (bad magic)"};
  }
  uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<uint32_t>(
                   static_cast<unsigned char>(bytes[sizeof(kSnapshotMagic) + i]))
               << (8 * i);
  }
  if (version != kSnapshotFormatVersion) {
    return Error{"unsupported snapshot format version " + std::to_string(version) +
                 " (this build reads version " +
                 std::to_string(kSnapshotFormatVersion) +
                 "); re-run with the build that wrote it"};
  }
  const size_t body = bytes.size() - kFooter;
  const uint64_t expected = LoadU64Le(bytes.data() + body);
  const uint64_t actual = SnapshotFnv1a64(bytes.data(), body);
  if (expected != actual) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "footer %016llx != content %016llx",
                  static_cast<unsigned long long>(expected),
                  static_cast<unsigned long long>(actual));
    return Error{std::string("snapshot integrity check failed (") + buf +
                 "); the file is corrupted or truncated"};
  }
  return SnapshotReader(std::string(), bytes, kHeader, body);
}

bool SnapshotReader::Need(size_t n) {
  if (!ok()) {
    return false;
  }
  if (payload_end_ - pos_ < n) {
    Fail("snapshot payload ended early (needed " + std::to_string(n) +
         " more bytes at offset " + std::to_string(pos_) + ")");
    return false;
  }
  return true;
}

void SnapshotReader::Fail(const std::string& message) {
  if (error_.empty()) {
    error_ = message;
  }
  pos_ = payload_end_;
}

uint8_t SnapshotReader::ReadU8() {
  if (!Need(1)) {
    return 0;
  }
  return static_cast<uint8_t>(bytes_[pos_++]);
}

uint32_t SnapshotReader::ReadU32() {
  if (!Need(4)) {
    return 0;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t SnapshotReader::ReadU64() {
  if (!Need(8)) {
    return 0;
  }
  const uint64_t v = LoadU64Le(bytes_.data() + pos_);
  pos_ += 8;
  return v;
}

double SnapshotReader::ReadF64() {
  const uint64_t bits = ReadU64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::ReadString() {
  const uint64_t size = ReadU64();
  // Bound before Need(): a corrupted length must not drive a huge allocation.
  if (ok() && size > payload_end_ - pos_) {
    Fail("snapshot string length " + std::to_string(size) +
         " exceeds the remaining payload");
    return {};
  }
  if (!Need(static_cast<size_t>(size))) {
    return {};
  }
  std::string out(bytes_.substr(pos_, static_cast<size_t>(size)));
  pos_ += static_cast<size_t>(size);
  return out;
}

Result<bool> WriteSnapshotFile(const std::string& bytes, const std::string& path) {
  return WriteFileAtomic(path, bytes);
}

Result<std::string> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{"cannot open snapshot file " + path};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Error{"read error on snapshot file " + path};
  }
  return std::move(buffer).str();
}

}  // namespace defl
