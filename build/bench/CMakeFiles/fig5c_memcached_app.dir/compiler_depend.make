# Empty compiler generated dependencies file for fig5c_memcached_app.
# This may be replaced when dependencies are built.
