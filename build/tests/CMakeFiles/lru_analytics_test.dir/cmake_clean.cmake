file(REMOVE_RECURSE
  "CMakeFiles/lru_analytics_test.dir/common/lru_analytics_test.cc.o"
  "CMakeFiles/lru_analytics_test.dir/common/lru_analytics_test.cc.o.d"
  "lru_analytics_test"
  "lru_analytics_test.pdb"
  "lru_analytics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lru_analytics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
