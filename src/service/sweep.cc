#include "src/service/sweep.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/sim/snapshot_io.h"
#include "src/telemetry/json_util.h"

namespace defl {

namespace {

constexpr VmId kSweepVmIdBase = 2'000'000'000'000LL;

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string Trim(const std::string& s) {
  const size_t first = s.find_first_not_of(" \t");
  if (first == std::string::npos) {
    return std::string();
  }
  const size_t last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (true) {
    const size_t comma = s.find(',', begin);
    parts.push_back(Trim(s.substr(begin, comma - begin)));
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return parts;
}

bool ParseF64(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseI64(const std::string& text, int64_t* out) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return false;
  }
  *out = v;
  return true;
}

Result<PlacementPolicy> ParsePolicy(const std::string& name) {
  if (name == "best-fit") {
    return PlacementPolicy::kBestFit;
  }
  if (name == "first-fit") {
    return PlacementPolicy::kFirstFit;
  }
  if (name == "2-choices") {
    return PlacementPolicy::kTwoChoices;
  }
  return Error{"unknown placement policy '" + name +
               "' (expected best-fit, first-fit, or 2-choices)"};
}

// cpu:mem[:disk[:net]]
Result<ResourceVector> ParseShape(const std::string& text) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (true) {
    const size_t colon = text.find(':', begin);
    parts.push_back(text.substr(begin, colon - begin));
    if (colon == std::string::npos) {
      break;
    }
    begin = colon + 1;
  }
  if (parts.size() < 2 || parts.size() > 4) {
    return Error{"shape '" + text +
                 "' must be cpu:mem[:disk[:net]] (2 to 4 components)"};
  }
  double dims[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!ParseF64(parts[i], &dims[i]) || dims[i] < 0.0) {
      return Error{"shape component '" + parts[i] + "' in '" + text +
                   "' is not a number >= 0"};
    }
  }
  if (dims[0] <= 0.0) {
    return Error{"shape '" + text + "' must have cpu > 0"};
  }
  return ResourceVector(dims[0], dims[1], dims[2], dims[3]);
}

// One cell of the grid, executed on a private child session. `service`
// provides the shared blob; everything else is cell-local.
Result<std::string> RunCell(const WhatIfService& service, const SweepGrid& grid,
                            PlacementPolicy policy, double fail_fraction,
                            double overcommit_target, double intensity) {
  TelemetryContext telemetry;
  Result<SimSession> restored =
      service.RestoreChild(&telemetry, static_cast<int>(policy));
  if (!restored.ok()) {
    return Error{"sweep cell restore failed: " + restored.error()};
  }
  SimSession& session = restored.value();
  ClusterManager& manager = session.manager();
  const ClusterCounters before = manager.counters();

  // 1. Fault stage: crash the configured fraction of healthy servers, with
  // the same seeded canonical draw the fail query uses.
  int64_t failed = 0;
  if (fail_fraction > 0.0) {
    std::vector<ServerId> healthy;
    const std::vector<ServerHealth>& states = manager.health_states();
    std::vector<Server*> servers = manager.servers();
    for (size_t i = 0; i < states.size(); ++i) {
      if (states[i] == ServerHealth::kHealthy) {
        healthy.push_back(servers[i]->id());
      }
    }
    const int64_t n = static_cast<int64_t>(healthy.size());
    int64_t k = static_cast<int64_t>(
        std::floor(fail_fraction * static_cast<double>(n) + 0.5));
    if (k > n) {
      k = n;
    }
    Rng rng(grid.fail_seed);
    for (int64_t i = 0; i < k; ++i) {
      const int64_t j = rng.UniformInt(i, n - 1);
      std::swap(healthy[static_cast<size_t>(i)],
                healthy[static_cast<size_t>(j)]);
    }
    std::vector<ServerId> victims(healthy.begin(), healthy.begin() + k);
    std::sort(victims.begin(), victims.end());
    for (ServerId id : victims) {
      manager.CrashServer(id);
    }
    failed = k;
  }

  // 2. Admission stage: push `shape` VMs (the intensity axis scales the
  // budget) until the overcommit target is reached or a launch bounces.
  const int64_t budget = static_cast<int64_t>(
      std::floor(intensity * static_cast<double>(grid.limit) + 0.5));
  VmSpec spec;
  spec.name = "sweep";
  spec.size = grid.shape;
  spec.priority = VmPriority::kLow;
  int64_t admitted = 0;
  int64_t attempts = 0;
  while (attempts < budget && manager.Overcommitment() < overcommit_target) {
    std::unique_ptr<Vm> vm = std::make_unique<Vm>(kSweepVmIdBase + attempts, spec);
    ++attempts;
    if (manager.LaunchVm(std::move(vm)).ok()) {
      ++admitted;
    } else {
      break;
    }
  }

  // 3. Sim stage: let the fleet evolve under its snapshotted workload.
  const ClusterCounters mid = manager.counters();
  if (grid.hours > 0.0) {
    session.StepUntil(session.now() + grid.hours * 3600.0);
  }
  const ClusterCounters end = manager.counters();

  // Deflation distribution, identical in spirit to the run query's report.
  std::vector<ClusterManager::ServerUsageSample> samples;
  manager.CollectUsageSamples(&samples);
  std::vector<double> deflation;
  double sum = 0.0;
  for (const ClusterManager::ServerUsageSample& sample : samples) {
    for (const ClusterManager::ServerUsageSample::VmUsage& vm : sample.vms) {
      if (!vm.low_priority || vm.nominal_cpu <= 0.0) {
        continue;
      }
      const double d = 1.0 - vm.effective_cpu / vm.nominal_cpu;
      deflation.push_back(d);
      sum += d;
    }
  }
  double p99 = 0.0;
  double mean = 0.0;
  if (!deflation.empty()) {
    std::sort(deflation.begin(), deflation.end());
    size_t idx = (deflation.size() * 99) / 100;
    if (idx >= deflation.size()) {
      idx = deflation.size() - 1;
    }
    p99 = deflation[idx];
    mean = sum / static_cast<double>(deflation.size());
  }

  std::string out = "{\"policy\":" + JsonString(PlacementPolicyName(policy));
  out += ",\"fail_fraction\":" + JsonNumber(fail_fraction);
  out += ",\"overcommit_target\":" + JsonNumber(overcommit_target);
  out += ",\"intensity\":" + JsonNumber(intensity);
  out += ",\"failed\":" + std::to_string(failed);
  out += ",\"admitted\":" + std::to_string(admitted);
  out += ",\"preempted\":" + std::to_string(end.preempted - before.preempted);
  out += ",\"sim_preempted\":" + std::to_string(end.preempted - mid.preempted);
  out += ",\"crash_preempted\":" +
         std::to_string(end.crash_preempted - before.crash_preempted);
  out += ",\"deflation_ops\":" +
         std::to_string(end.deflation_ops - before.deflation_ops);
  out += ",\"low_vms\":" + std::to_string(deflation.size());
  out += ",\"p99_deflation\":" + JsonNumber(p99);
  out += ",\"mean_deflation\":" + JsonNumber(mean);
  out += ",\"utilization\":" + JsonNumber(manager.Utilization());
  out += ",\"overcommitment\":" + JsonNumber(manager.Overcommitment());
  out += "}";
  return out;
}

}  // namespace

Result<SweepGrid> ParseSweepGrid(const std::string& text) {
  SweepGrid grid;
  bool have_policy = false, have_fail = false, have_oc = false,
       have_intensity = false;
  std::unordered_set<std::string> seen;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    const std::string where = "sweep grid line " + std::to_string(line_number);
    const size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return Error{where + ": expected key = value, got '" + trimmed + "'"};
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return Error{where + ": empty key or value"};
    }
    if (!seen.insert(key).second) {
      return Error{where + ": duplicate key '" + key + "'"};
    }

    if (key == "policy") {
      for (const std::string& part : SplitCommas(value)) {
        Result<PlacementPolicy> policy = ParsePolicy(part);
        if (!policy.ok()) {
          return Error{where + ": " + policy.error()};
        }
        grid.policies.push_back(policy.value());
      }
      have_policy = true;
    } else if (key == "fail-fraction") {
      for (const std::string& part : SplitCommas(value)) {
        double f = 0.0;
        if (!ParseF64(part, &f) || f < 0.0 || f > 1.0) {
          return Error{where + ": fail-fraction '" + part +
                       "' is not a number in [0, 1]"};
        }
        grid.fail_fractions.push_back(f);
      }
      have_fail = true;
    } else if (key == "overcommit-target") {
      for (const std::string& part : SplitCommas(value)) {
        double t = 0.0;
        if (!ParseF64(part, &t) || t <= 0.0) {
          return Error{where + ": overcommit-target '" + part +
                       "' is not a number > 0"};
        }
        grid.overcommit_targets.push_back(t);
      }
      have_oc = true;
    } else if (key == "intensity") {
      for (const std::string& part : SplitCommas(value)) {
        double a = 0.0;
        if (!ParseF64(part, &a) || a < 0.0) {
          return Error{where + ": intensity '" + part +
                       "' is not a number >= 0"};
        }
        grid.intensities.push_back(a);
      }
      have_intensity = true;
    } else if (key == "hours") {
      if (!ParseF64(value, &grid.hours) || grid.hours < 0.0) {
        return Error{where + ": hours '" + value + "' is not a number >= 0"};
      }
    } else if (key == "shape") {
      Result<ResourceVector> shape = ParseShape(value);
      if (!shape.ok()) {
        return Error{where + ": " + shape.error()};
      }
      grid.shape = shape.value();
    } else if (key == "fail-seed") {
      if (!ParseU64(value, &grid.fail_seed)) {
        return Error{where + ": fail-seed '" + value +
                     "' is not an unsigned integer"};
      }
    } else if (key == "limit") {
      if (!ParseI64(value, &grid.limit) || grid.limit < 1) {
        return Error{where + ": limit '" + value + "' is not an integer >= 1"};
      }
    } else {
      return Error{where + ": unknown key '" + key + "'"};
    }
  }
  if (!have_policy) {
    grid.policies.push_back(PlacementPolicy::kBestFit);
  }
  if (!have_fail) {
    grid.fail_fractions.push_back(0.0);
  }
  if (!have_oc) {
    grid.overcommit_targets.push_back(1.0);
  }
  if (!have_intensity) {
    grid.intensities.push_back(1.0);
  }
  if (grid.Cells() == 0) {
    return Error{"sweep grid has an empty axis"};
  }
  return grid;
}

Result<std::string> SweepOrchestrator::Run(const SweepGrid& grid,
                                           int workers) const {
  // Flatten the axes into canonical cell order: policy outermost, then
  // fail-fraction, overcommit-target, intensity. results[i] belongs to cell
  // i forever; workers race only over *which* cell to run next, never over
  // where a result lands.
  struct Cell {
    PlacementPolicy policy;
    double fail_fraction;
    double overcommit_target;
    double intensity;
  };
  std::vector<Cell> cells;
  cells.reserve(static_cast<size_t>(grid.Cells()));
  for (PlacementPolicy policy : grid.policies) {
    for (double fail : grid.fail_fractions) {
      for (double oc : grid.overcommit_targets) {
        for (double intensity : grid.intensities) {
          cells.push_back(Cell{policy, fail, oc, intensity});
        }
      }
    }
  }

  std::vector<std::string> lines(cells.size());
  std::vector<std::string> errors(cells.size());
  const WhatIfService& service = *service_;
  const auto run_cell = [&](int64_t i) {
    const Cell& cell = cells[static_cast<size_t>(i)];
    Result<std::string> line =
        RunCell(service, grid, cell.policy, cell.fail_fraction,
                cell.overcommit_target, cell.intensity);
    if (line.ok()) {
      lines[static_cast<size_t>(i)] = line.value();
    } else {
      errors[static_cast<size_t>(i)] = line.error();
    }
  };
  const int64_t n = static_cast<int64_t>(cells.size());
  if (workers <= 1) {
    for (int64_t i = 0; i < n; ++i) {
      run_cell(i);
    }
  } else {
    ThreadPool pool(workers);
    pool.ParallelFor(n, run_cell);
  }
  for (int64_t i = 0; i < n; ++i) {
    if (!errors[static_cast<size_t>(i)].empty()) {
      return Error{"sweep cell " + std::to_string(i) + " failed: " +
                   errors[static_cast<size_t>(i)]};
    }
  }

  std::string out = "# sweep policies=" + std::to_string(grid.policies.size()) +
                    " fail=" + std::to_string(grid.fail_fractions.size()) +
                    " overcommit=" + std::to_string(grid.overcommit_targets.size()) +
                    " intensity=" + std::to_string(grid.intensities.size()) +
                    " hours=" + JsonNumber(grid.hours) + "\n";
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  out += "# sweep cells=" + std::to_string(cells.size()) + " fnv1a64=" +
         Hex16(SnapshotFnv1a64(out.data(), out.size())) + "\n";
  return out;
}

}  // namespace defl
