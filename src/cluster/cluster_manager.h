// Centralized deflation-based cluster manager (Section 5): places VMs with
// deflation-aware bin packing, reclaims resources through the per-server
// local controllers (proportional cascade deflation), preempts only when
// deflation to minimum sizes cannot satisfy demand, and reinflates
// proportionally when resources free up. A preemption-only mode implements
// the baseline used in Figure 8c.
//
// Servers additionally carry a health state machine driven by fault
// injection (DESIGN.md §8): healthy -> degraded -> down -> recovering ->
// healthy. Unhealthy servers are excluded from placement; crashing a server
// evacuates its VMs (re-placed elsewhere if possible, otherwise revoked as
// crash preemptions), and recovery reinflates the survivors.
#ifndef SRC_CLUSTER_CLUSTER_MANAGER_H_
#define SRC_CLUSTER_CLUSTER_MANAGER_H_

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/fleet_view.h"
#include "src/cluster/placement.h"
#include "src/common/epoch_arena.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/local_controller.h"
#include "src/faults/fault_injector.h"
#include "src/hypervisor/server.h"

namespace defl {

// Per-server health as seen by the cluster manager. Only kHealthy servers
// receive new placements; kDegraded keeps its VMs but takes no more;
// kDown has lost everything; kRecovering is back up but on probation until
// the manager promotes it (MarkHealthy).
enum class ServerHealth { kHealthy, kDegraded, kDown, kRecovering };

const char* ServerHealthName(ServerHealth health);

enum class ReclamationStrategy {
  kDeflation,       // proportional cascade deflation, preempt below minimums
  kPreemptionOnly,  // the conventional transient-VM baseline
};

struct ClusterConfig {
  PlacementPolicy placement = PlacementPolicy::kBestFit;
  ReclamationStrategy strategy = ReclamationStrategy::kDeflation;
  LocalControllerConfig controller;
  uint64_t seed = 1;
  // Threads the manager's fork-join pool runs placement probes and
  // per-server sweeps on (1 = everything inline on the caller). Outputs are
  // byte-identical for every value: parallel phases follow the DESIGN.md
  // §10 shard-ownership + deterministic-reduction rules.
  int threads = 1;
};

// Snapshot view of the registry-backed lifecycle counters. Kept as a struct
// for API compatibility with the pre-telemetry counters; the live values
// reside in the MetricsRegistry under cluster/vms/*.
struct ClusterCounters {
  int64_t launched = 0;
  int64_t launched_low_priority = 0;
  int64_t rejected = 0;
  int64_t preempted = 0;       // low-priority VMs revoked by policy
  int64_t completed = 0;
  int64_t deflation_ops = 0;   // MakeRoom calls that deflated something
  // Crash fallout, kept separate from the policy counters above so the
  // paper's preemption probability is not polluted by injected failures.
  int64_t crash_replaced = 0;  // VMs re-placed after their server crashed
  int64_t crash_preempted = 0; // low-priority VMs revoked because no server had room
  int64_t crash_lost = 0;      // high-priority VMs that could not be re-placed
  int64_t server_crashes = 0;
  int64_t server_recoveries = 0;
};

class ClusterManager {
 public:
  // `telemetry` may be nullptr: the manager then owns a private context so
  // the counters() view always accumulates. Servers and local controllers
  // publish through the same context.
  ClusterManager(int num_servers, const ResourceVector& server_capacity,
                 const ClusterConfig& config, TelemetryContext* telemetry = nullptr);

  // Places and starts the VM, deflating or preempting per the configured
  // strategy. On failure the VM is rejected (returned error) and counted.
  Result<ServerId> LaunchVm(std::unique_ptr<Vm> vm);

  // Normal completion: the VM leaves and its server reinflates.
  // O(hosted VMs on one server) via the VM index.
  void CompleteVm(VmId id);

  // O(1) lookups backed by the VmId -> server index map, which is kept
  // coherent by every placement/removal path in this class.
  Vm* FindVm(VmId id);
  Server* ServerOf(VmId id);
  std::vector<Server*> servers();
  LocalController* controller(ServerId id);

  ClusterCounters counters() const;
  TelemetryContext* telemetry() const { return telemetry_; }
  // Low-priority VMs revoked since the last call (for lifecycle bookkeeping).
  std::vector<VmId> TakePreempted();

  // The structure-of-arrays mirror every placement probe scans (DESIGN.md
  // §12). Kept coherent with the object graph through the servers'
  // ServerObserver notifications; exposed for property tests and benches.
  FleetView& fleet() { return fleet_; }

  // --- Sharded parallel sweeps (DESIGN.md §10) ---
  // The fork-join pool behind the parallel phases (never nullptr; inline
  // when config.threads <= 1). Drivers may shard their own read-only scans
  // over it, observing the per-shard server-ownership rule.
  ThreadPool* thread_pool() { return pool_.get(); }

  // Refreshes every server's lazy accounting cache in parallel so a
  // subsequent sequential reduction (Utilization, Overcommitment, ...) reads
  // only clean O(1) caches.
  void WarmAccounting();

  // One sampling-tick usage snapshot of a server, gathered read-only in
  // parallel by CollectUsageSamples and folded into the telemetry registry
  // by the simulation loop in canonical server order.
  struct ServerUsageSample {
    double nominal_overcommitment = 0.0;
    struct VmUsage {
      bool low_priority = false;
      double nominal_cpu = 0.0;    // vm->size().cpu()
      double effective_cpu = 0.0;  // vm->effective().cpu()
    };
    std::vector<VmUsage> vms;
  };
  // Fills out[i] for server i (resized to the server count). Parallel over
  // shards; per-VM entries appear in hosting order so any fold the caller
  // does replays the exact sequential arithmetic.
  void CollectUsageSamples(std::vector<ServerUsageSample>* out);

  // Sum of effective CPU over hosted high-priority VMs. Gathered per-shard
  // in parallel, then folded flat in canonical (server, hosting) order so
  // the double-precision sum is byte-identical for any thread count.
  double HighPriorityEffectiveCpu();

  // Proactive reverse cascade over every server (the reinflation loop):
  // plans each server's proportional reinflation in parallel (read-only),
  // then applies the plans sequentially in server order so telemetry and
  // mutations happen in one canonical order. `holdback_cpu_per_server`
  // reserves capacity-shaped headroom for forecast demand.
  void ReinflateSweep(double holdback_cpu_per_server);

  // --- Failure injection and server health (DESIGN.md §8) ---

  // Forwards the injector to every local controller (agent guards, cascade
  // latency spikes) and to the guest OS of every hosted and future VM
  // (partial-unplug faults). nullptr detaches.
  void AttachFaultInjector(FaultInjector* faults);
  FaultInjector* fault_injector() const { return faults_; }

  ServerHealth health(ServerId id) const;
  // Whole-server failure: marks the server kDown and evacuates it. Each lost
  // VM is reset to its nominal allocation (crash wipes deflation state) and
  // re-placed on a healthy server if any fits (counted crash_replaced);
  // otherwise low-priority VMs are revoked (crash_preempted, trace outcome 4)
  // and high-priority VMs are lost (crash_lost). No-op if already down.
  void CrashServer(ServerId id);
  // kHealthy -> kDegraded: keeps its VMs but receives no new placements.
  void DegradeServer(ServerId id);
  // kDown -> kRecovering: capacity returns (still excluded from placement)
  // and the relieved pressure proportionally reinflates survivors on the
  // healthy servers.
  void RecoverServer(ServerId id);
  // Promotes kRecovering/kDegraded back to kHealthy after the caller's
  // probation grace period.
  void MarkHealthy(ServerId id);

  // --- Deterministic checkpoint/restore (SimSession snapshots) ---

  // Re-hosts a snapshot-restored VM on `server` exactly as the snapshotting
  // run left it: no placement probe, no reclamation, no RNG or fault-
  // injector draws. The server's add-path telemetry still fires; the session
  // overwrites the whole registry right afterwards, so nothing the adoption
  // emits survives into restored output. Ignores server health (a degraded
  // server keeps its VMs across a snapshot).
  void AdoptVm(std::unique_ptr<Vm> vm, ServerId server);
  const std::vector<ServerHealth>& health_states() const { return health_; }
  // Reinstates the snapshotted health vector; false if the size differs.
  bool RestoreHealthStates(const std::vector<ServerHealth>& health);
  std::array<uint64_t, 4> SaveRngState() const { return rng_.SaveState(); }
  void RestoreRngState(const std::array<uint64_t, 4>& state) {
    rng_.RestoreState(state);
  }
  // Low-priority revocations not yet drained by TakePreempted.
  const std::vector<VmId>& pending_preempted() const {
    return preempted_since_take_;
  }
  void RestorePreempted(std::vector<VmId> ids) {
    preempted_since_take_ = std::move(ids);
  }

  // --- Cluster-level metrics ---
  // Dominant-dimension utilization of backed resources, in [0, 1].
  double Utilization() const;
  // Sum of nominal VM sizes over total capacity (>1 = overcommitted).
  double Overcommitment() const;
  // Per-server nominal overcommitment values (Figure 8d).
  std::vector<double> PerServerOvercommitment() const;

 private:
  // Outcome of one placement attempt (shared by LaunchVm and crash
  // re-placement; the caller does its own rejection accounting).
  struct PlaceOutcome {
    bool ok = false;
    ServerId server = -1;
    // 1 = fit into free capacity, 2 = deflation made room, 3 = preemption
    // made room (trace outcome convention of kPlacement/kRejection).
    int32_t trace_outcome = 1;
    ResourceVector freed;  // what reclamation managed to free on failure
    std::string error;
  };

  // Places `vm` on a healthy server, reclaiming per the configured strategy.
  // Consumes `vm` on success and leaves it intact on failure.
  PlaceOutcome TryPlace(std::unique_ptr<Vm>& vm);
  // Rebuilds the healthy-row candidate list placement probes scan (rows are
  // server indices, ascending). Rebuilt lazily after a health transition;
  // placement probes hit the cache.
  void RefreshPlaceable() const;
  // Runs fn(server_index) for every server, chunked over the pool. Callers
  // must follow the shard-ownership rule: fn touches only server i's state.
  void ForEachServerParallel(const std::function<void(size_t)>& fn);
  int ServerIndex(ServerId id) const;
  void UpdateHealthGauge();
  // Crash wipes deflation state: the re-placed VM restarts at nominal size.
  static void ResetVmDeflation(Vm& vm);

  // Preemption-only reclamation: revoke low-priority VMs on the server at
  // `server_index` until `demand` fits; returns false if impossible. Each
  // victim is fully deregistered (agent map, VM index) like any other
  // removal path.
  bool PreemptForDemand(size_t server_index, const ResourceVector& demand);
  // Removes the VM from the index and its controller's agent map (every
  // removal path must go through this or replicate it).
  void ForgetVm(VmId id, size_t server_index);

  ClusterConfig config_;
  Rng rng_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Server>> servers_;
  // Declared after servers_ so it is destroyed first: its destructor
  // detaches itself as each (still-alive) server's observer.
  FleetView fleet_;
  std::vector<std::unique_ptr<LocalController>> controllers_;
  std::vector<ServerHealth> health_;
  // Cache of the healthy-row candidate list consumed by every placement
  // probe (ascending server indices, which double as FleetView rows);
  // invalidated only by health transitions (rare next to probes).
  mutable std::vector<uint32_t> placeable_rows_;
  mutable bool placeable_dirty_ = true;
  std::vector<VmId> preempted_since_take_;
  // Retire-reclaim scratch for the parallel sweeps (DESIGN.md §14): workers
  // fill exactly their own shard, the coordinator folds in canonical order,
  // then retires the buffers (capacity kept) so steady-state sweeps never
  // touch the allocator.
  ShardScratch<double> hp_cpu_scratch_;
  std::vector<ReinflatePlan> reinflate_plans_;
  // VmId -> index into servers_/controllers_ for every hosted VM.
  std::unordered_map<VmId, size_t> vm_index_;
  FaultInjector* faults_ = nullptr;

  TelemetryContext* telemetry_ = nullptr;
  std::unique_ptr<TelemetryContext> owned_telemetry_;
  struct {
    CounterHandle launched;
    CounterHandle launched_low_priority;
    CounterHandle rejected;
    CounterHandle preempted;
    CounterHandle completed;
    CounterHandle deflation_ops;
    CounterHandle crash_replaced;
    CounterHandle crash_preempted;
    CounterHandle crash_lost;
    CounterHandle server_crashes;
    CounterHandle server_recoveries;
    CounterHandle server_degrades;
    GaugeHandle healthy_servers;
  } metrics_;
};

}  // namespace defl

#endif  // SRC_CLUSTER_CLUSTER_MANAGER_H_
