# Empty compiler generated dependencies file for ext_ablation_split.
# This may be replaced when dependencies are built.
