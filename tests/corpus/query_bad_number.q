fail fraction=0.5x
