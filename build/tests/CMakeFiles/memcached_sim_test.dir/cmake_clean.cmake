file(REMOVE_RECURSE
  "CMakeFiles/memcached_sim_test.dir/apps/memcached_sim_test.cc.o"
  "CMakeFiles/memcached_sim_test.dir/apps/memcached_sim_test.cc.o.d"
  "memcached_sim_test"
  "memcached_sim_test.pdb"
  "memcached_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcached_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
