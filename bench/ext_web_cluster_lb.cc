// Extension (Section 3.2.1 / footnote 2): deflation-aware load balancing
// for web clusters. Two of four backends are deflated by increasing amounts;
// the capacity-weighted balancer sheds traffic from deflated servers, the
// capacity-oblivious baseline keeps overloading them.
#include "bench/bench_util.h"
#include "src/apps/web_cluster.h"

namespace defl {
namespace {

struct Point {
  double served = 0.0;
  double dropped = 0.0;
  double rt_us = 0.0;
};

Point Run(LoadBalancingPolicy policy, double deflation) {
  const ResourceVector vm_size(4.0, 16384.0, 100.0, 1000.0);
  WebCluster cluster(4, vm_size);
  const double offered = 0.6 * cluster.TotalCapacityRps();
  cluster.DeflateBackend(0, vm_size * deflation);
  cluster.DeflateBackend(1, vm_size * deflation);
  const WebClusterMetrics m = cluster.Evaluate(offered, policy);
  return Point{m.served_rps, m.dropped_rps, m.mean_response_us};
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Extension: web cluster",
                     "deflation-aware vs oblivious load balancing");
  bench::PrintNote("4 backends at 60% offered load; backends 0-1 deflated.");
  bench::PrintColumns({"deflation%", "aware-rps", "aware-drop", "aware-rt",
                       "blind-rps", "blind-drop", "blind-rt"});
  for (const double f : {0.0, 0.2, 0.4, 0.5, 0.6, 0.7}) {
    const Point aware = Run(LoadBalancingPolicy::kDeflationAware, f);
    const Point blind = Run(LoadBalancingPolicy::kEvenSplit, f);
    bench::PrintCell(f * 100.0);
    bench::PrintCell(aware.served);
    bench::PrintCell(aware.dropped);
    bench::PrintCell(aware.rt_us);
    bench::PrintCell(blind.served);
    bench::PrintCell(blind.dropped);
    bench::PrintCell(blind.rt_us);
    bench::EndRow();
  }
  return 0;
}
