// FaultPlan parsing/encoding and FaultInjector determinism: the whole value
// of the subsystem is that a (plan, seed) pair names one exact failure
// schedule, so the round-trip and the sampling streams are pinned down here.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/faults/fault_injector.h"
#include "src/faults/fault_plan.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

TEST(FaultPlanParseTest, ParsesHeaderAndRules) {
  const std::string text =
      "# comment\n"
      "faultplan/1 seed=99\n"
      "rule kind=unplug-partial p=0.25 magnitude=0.6\n"
      "\n"
      "rule kind=server-crash server=3 at=7200\n"
      "rule kind=agent-unresponsive vm=5 p=0.5 start=10 end=20 max=4\n";
  const Result<FaultPlan> parsed = ParseFaultPlan(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const FaultPlan& plan = parsed.value();
  EXPECT_EQ(plan.seed, 99u);
  ASSERT_EQ(plan.rules.size(), 3u);

  EXPECT_EQ(plan.rules[0].kind, FaultKind::kUnplugPartial);
  EXPECT_EQ(plan.rules[0].vm, -1);
  EXPECT_EQ(plan.rules[0].server, -1);
  EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.25);
  EXPECT_DOUBLE_EQ(plan.rules[0].magnitude, 0.6);

  EXPECT_EQ(plan.rules[1].kind, FaultKind::kServerCrash);
  EXPECT_EQ(plan.rules[1].server, 3);
  // at= pins the window to one instant.
  EXPECT_DOUBLE_EQ(plan.rules[1].start_s, 7200.0);
  EXPECT_DOUBLE_EQ(plan.rules[1].end_s, 7200.0);

  EXPECT_EQ(plan.rules[2].kind, FaultKind::kAgentUnresponsive);
  EXPECT_EQ(plan.rules[2].vm, 5);
  EXPECT_DOUBLE_EQ(plan.rules[2].start_s, 10.0);
  EXPECT_DOUBLE_EQ(plan.rules[2].end_s, 20.0);
  EXPECT_EQ(plan.rules[2].max_count, 4);
}

TEST(FaultPlanParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseFaultPlan("").ok());
  EXPECT_FALSE(ParseFaultPlan("rule kind=wire-drop\n").ok());  // no header
  EXPECT_FALSE(ParseFaultPlan("faultplan/2 seed=1\n").ok());   // bad version
  const std::string header = "faultplan/1 seed=1\n";
  EXPECT_FALSE(ParseFaultPlan(header + "rule kind=bogus\n").ok());
  EXPECT_FALSE(ParseFaultPlan(header + "rule kind=wire-drop frequency=2\n").ok());
  EXPECT_FALSE(ParseFaultPlan(header + "rule kind=wire-drop p=1.5\n").ok());
  EXPECT_FALSE(ParseFaultPlan(header + "rule kind=wire-drop p=nan\n").ok());
  EXPECT_FALSE(ParseFaultPlan(header + "rule kind=agent-slow magnitude=-1\n").ok());
  EXPECT_FALSE(ParseFaultPlan(header + "rule kind=wire-drop start=5 end=1\n").ok());
  EXPECT_FALSE(ParseFaultPlan(header + "rule kind=wire-drop vm=1.5\n").ok());
}

// Every structural rejection names the offending line, so a typo in a
// 50-rule plan is a one-line fix, not a hunt.
TEST(FaultPlanParseTest, RejectsOutOfRangeSitesAndBudgets) {
  const std::string header = "faultplan/1 seed=1\n";
  const auto error_of = [&](const std::string& rule) {
    const Result<FaultPlan> parsed = ParseFaultPlan(header + rule);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << rule;
    return parsed.ok() ? std::string() : parsed.error();
  };
  EXPECT_NE(error_of("rule kind=wire-drop vm=-2\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(error_of("rule kind=wire-drop server=-7\n").find("server"),
            std::string::npos);
  EXPECT_NE(error_of("rule kind=wire-drop max=0\n").find("max"),
            std::string::npos);
  EXPECT_FALSE(ParseFaultPlan(header + "rule kind=wire-drop max=-3\n").ok());
  EXPECT_FALSE(ParseFaultPlan(header + "rule kind=wire-drop start=-5\n").ok());
  // Server events target servers; a vm= scope cannot mean anything.
  EXPECT_NE(error_of("rule kind=server-crash vm=3 at=100\n").find("vm="),
            std::string::npos);
}

TEST(FaultPlanParseTest, RejectsZeroDurationWindowsForMechanismFaults) {
  const std::string header = "faultplan/1 seed=1\n";
  // at= pins start == end: meaningful for scheduled server events, a
  // never-firing window for probabilistic mechanism faults.
  EXPECT_TRUE(ParseFaultPlan(header + "rule kind=server-crash server=1 at=60\n").ok());
  EXPECT_FALSE(ParseFaultPlan(header + "rule kind=wire-drop at=60\n").ok());
  EXPECT_FALSE(
      ParseFaultPlan(header + "rule kind=agent-slow start=60 end=60\n").ok());
}

TEST(FaultPlanParseTest, RejectsConflictingRulesWithBothLineNumbers) {
  const std::string header = "faultplan/1 seed=1\n";
  // Same kind, overlapping windows, intersecting site scopes (wildcard vm
  // intersects vm=3): the two p= values would silently compound.
  const Result<FaultPlan> windowed = ParseFaultPlan(
      header +
      "rule kind=wire-drop p=0.2 start=0 end=100\n"
      "rule kind=wire-drop p=0.1 vm=3 start=50 end=150\n");
  ASSERT_FALSE(windowed.ok());
  EXPECT_NE(windowed.error().find("line 3"), std::string::npos);
  EXPECT_NE(windowed.error().find("line 2"), std::string::npos);

  // Duplicate scheduled server event at the same instant.
  const Result<FaultPlan> scheduled = ParseFaultPlan(
      header +
      "rule kind=server-crash server=4 at=7200\n"
      "rule kind=server-crash at=7200\n");
  ASSERT_FALSE(scheduled.ok());
  EXPECT_NE(scheduled.error().find("line 2"), std::string::npos);

  // Disjoint windows, disjoint sites, or different kinds are all fine.
  EXPECT_TRUE(ParseFaultPlan(header +
                             "rule kind=wire-drop p=0.2 start=0 end=100\n"
                             "rule kind=wire-drop p=0.1 start=101 end=200\n")
                  .ok());
  EXPECT_TRUE(ParseFaultPlan(header +
                             "rule kind=wire-drop p=0.2 vm=1\n"
                             "rule kind=wire-drop p=0.1 vm=2\n")
                  .ok());
  EXPECT_TRUE(ParseFaultPlan(header +
                             "rule kind=server-crash server=4 at=7200\n"
                             "rule kind=server-crash server=4 at=9000\n"
                             "rule kind=server-recover server=4 at=8000\n")
                  .ok());
}

TEST(FaultPlanParseTest, EncodeParseRoundTrips) {
  FaultPlan plan;
  plan.seed = 12345;
  FaultRule rule;
  rule.kind = FaultKind::kAgentSlow;
  rule.vm = 7;
  rule.probability = 0.125;
  rule.magnitude = 2.5;
  rule.start_s = 100.0;
  rule.end_s = 200.0;
  rule.max_count = 3;
  plan.rules.push_back(rule);
  rule = FaultRule();
  rule.kind = FaultKind::kServerRecover;
  rule.server = 2;
  rule.start_s = rule.end_s = 3600.0;
  plan.rules.push_back(rule);

  const std::string encoded = EncodeFaultPlan(plan);
  const Result<FaultPlan> reparsed = ParseFaultPlan(encoded);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_EQ(EncodeFaultPlan(reparsed.value()), encoded);
  EXPECT_EQ(reparsed.value().seed, plan.seed);
  ASSERT_EQ(reparsed.value().rules.size(), plan.rules.size());
  EXPECT_EQ(reparsed.value().rules[0].max_count, 3);
  EXPECT_DOUBLE_EQ(reparsed.value().rules[0].magnitude, 2.5);
}

FaultPlan OneRulePlan(FaultKind kind, double p, uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  FaultRule rule;
  rule.kind = kind;
  rule.probability = p;
  plan.rules.push_back(rule);
  return plan;
}

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  const FaultPlan plan = OneRulePlan(FaultKind::kUnplugPartial, 0.5, 42);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 200; ++i) {
    const FaultDecision da = a.Sample(FaultKind::kUnplugPartial, 1, -1);
    const FaultDecision db = b.Sample(FaultKind::kUnplugPartial, 1, -1);
    EXPECT_EQ(da.fired, db.fired);
    EXPECT_DOUBLE_EQ(da.roll, db.roll);
  }
  EXPECT_EQ(a.injected(FaultKind::kUnplugPartial),
            b.injected(FaultKind::kUnplugPartial));
  EXPECT_GT(a.total_injected(), 0);
  EXPECT_LT(a.total_injected(), 200);
}

TEST(FaultInjectorTest, SitesHaveIndependentStreams) {
  // Interleaving extra samples at one site must not perturb another site's
  // stream -- this is what makes runs replayable even when the number of
  // injection points differs between layers.
  const FaultPlan plan = OneRulePlan(FaultKind::kUnplugPartial, 0.5, 7);
  FaultInjector plain(plan);
  FaultInjector noisy(plan);
  std::vector<bool> expected;
  for (int i = 0; i < 100; ++i) {
    expected.push_back(plain.Sample(FaultKind::kUnplugPartial, 1, -1).fired);
  }
  for (int i = 0; i < 100; ++i) {
    noisy.Sample(FaultKind::kUnplugPartial, 2, -1);  // other VM's stream
    noisy.Sample(FaultKind::kUnplugPartial, 2, -1);
    EXPECT_EQ(noisy.Sample(FaultKind::kUnplugPartial, 1, -1).fired, expected[i]);
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiffer) {
  FaultInjector a(OneRulePlan(FaultKind::kWireDrop, 0.5, 1));
  FaultInjector b(OneRulePlan(FaultKind::kWireDrop, 0.5, 2));
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.Sample(FaultKind::kWireDrop, 1, -1).fired !=
        b.Sample(FaultKind::kWireDrop, 1, -1).fired) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, RuleScopeAndBudget) {
  FaultPlan plan;
  plan.seed = 3;
  FaultRule rule;
  rule.kind = FaultKind::kAgentUnresponsive;
  rule.vm = 4;
  rule.probability = 1.0;
  rule.max_count = 2;
  plan.rules.push_back(rule);
  FaultInjector injector(plan);
  // Other VMs never match.
  EXPECT_FALSE(injector.Sample(FaultKind::kAgentUnresponsive, 5, -1).fired);
  // The scoped VM fires exactly max_count times.
  EXPECT_TRUE(injector.Sample(FaultKind::kAgentUnresponsive, 4, -1).fired);
  EXPECT_TRUE(injector.Sample(FaultKind::kAgentUnresponsive, 4, -1).fired);
  EXPECT_FALSE(injector.Sample(FaultKind::kAgentUnresponsive, 4, -1).fired);
  EXPECT_EQ(injector.injected(FaultKind::kAgentUnresponsive), 2);
}

TEST(FaultInjectorTest, TimeWindowFollowsTelemetryClock) {
  FaultPlan plan;
  plan.seed = 5;
  FaultRule rule;
  rule.kind = FaultKind::kHvLatencySpike;
  rule.probability = 1.0;
  rule.start_s = 10.0;
  rule.end_s = 20.0;
  plan.rules.push_back(rule);

  FaultInjector injector(plan);
  TelemetryContext telemetry;
  double now = 0.0;
  TelemetryClockScope clock(&telemetry, [&now] { return now; });
  injector.AttachTelemetry(&telemetry);

  EXPECT_FALSE(injector.Sample(FaultKind::kHvLatencySpike, 1, -1).fired);
  now = 15.0;
  EXPECT_TRUE(injector.Sample(FaultKind::kHvLatencySpike, 1, -1).fired);
  now = 25.0;
  EXPECT_FALSE(injector.Sample(FaultKind::kHvLatencySpike, 1, -1).fired);
}

TEST(FaultInjectorTest, ServerEventsExpandAndSort) {
  FaultPlan plan;
  plan.seed = 1;
  FaultRule crash;
  crash.kind = FaultKind::kServerCrash;
  crash.server = -1;  // every server
  crash.start_s = crash.end_s = 500.0;
  plan.rules.push_back(crash);
  FaultRule recover;
  recover.kind = FaultKind::kServerRecover;
  recover.server = 1;
  recover.start_s = recover.end_s = 100.0;
  plan.rules.push_back(recover);
  // Non-server rules are not events.
  plan.rules.push_back(OneRulePlan(FaultKind::kWireDrop, 1.0, 0).rules[0]);

  FaultInjector injector(plan);
  const std::vector<FaultInjector::ServerEvent> events = injector.ServerEventsFor(3);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, FaultKind::kServerRecover);
  EXPECT_DOUBLE_EQ(events[0].time_s, 100.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i + 1)].kind, FaultKind::kServerCrash);
    EXPECT_EQ(events[static_cast<size_t>(i + 1)].server, i);
  }
}

TEST(FaultInjectorTest, TelemetryCountsInjections) {
  TelemetryContext telemetry;
  FaultInjector injector(OneRulePlan(FaultKind::kWireCorrupt, 1.0, 9));
  injector.AttachTelemetry(&telemetry);
  injector.Sample(FaultKind::kWireCorrupt, 1, -1);
  injector.Sample(FaultKind::kWireCorrupt, 1, -1);
  EXPECT_EQ(telemetry.metrics().CounterValue("faults/injected/wire-corrupt"), 2);
}

}  // namespace
}  // namespace defl
