// A minimal command-line flag parser for the tools (no external
// dependencies): --name=value / --name value / --bool-flag, typed
// registration, generated usage text, and strict errors on unknown flags
// (with a nearest-name suggestion), duplicated flags, or bad values.
#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <string>
#include <vector>

#include "src/common/result.h"

namespace defl {

class FlagParser {
 public:
  explicit FlagParser(std::string program_description);

  // Registration: `out` must outlive Parse(); it is pre-filled with the
  // current (default) value shown in the usage text.
  void AddString(const std::string& name, const std::string& help, std::string* out);
  void AddDouble(const std::string& name, const std::string& help, double* out);
  void AddInt(const std::string& name, const std::string& help, int64_t* out);
  // Bools: `--name` sets true, `--name=false/true` sets explicitly.
  void AddBool(const std::string& name, const std::string& help, bool* out);

  // Parses argv (skipping argv[0]). On success returns the positional
  // (non-flag) arguments. `--help` yields an error whose message is the
  // usage text. Each flag may appear at most once per invocation: a repeat
  // is an error, not a silent last-one-wins (a shell-history edit that
  // leaves two --seed values behind should fail loudly).
  Result<std::vector<std::string>> Parse(int argc, const char* const* argv);

  // True when the flag appeared on the last parsed command line (with either
  // separator style). Lets a tool distinguish a default value from an
  // explicit one -- e.g. to reject deprecated aliases alongside their
  // replacement, or to record flag provenance. False before Parse().
  bool WasSet(const std::string& name) const;

  std::string Usage() const;

 private:
  enum class Kind { kString, kDouble, kInt, kBool };
  struct Flag {
    std::string name;
    std::string help;
    Kind kind;
    void* out;
    std::string default_text;
    bool set = false;
  };

  Flag* Find(const std::string& name);
  Result<bool> Assign(Flag& flag, const std::string& value);

  std::string description_;
  std::vector<Flag> flags_;
};

}  // namespace defl

#endif  // SRC_COMMON_FLAGS_H_
