#include "src/cluster/trace_io.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace defl {
namespace {

constexpr const char* kHeader =
    "# arrival_s,lifetime_s,name,priority,cpus,memory_mb,disk_bw,net_bw,"
    "min_cpus,min_memory_mb,min_disk_bw,min_net_bw";

Result<double> ParseNumber(const std::string& field, int line_no) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return Error{"line " + std::to_string(line_no) + ": bad number '" + field + "'"};
  }
  return value;
}

std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) {
    fields.push_back(field);
  }
  return fields;
}

// Parses one non-comment record line; enforces field shape and per-event
// validity plus the sorted-arrival invariant against last_arrival.
Result<TraceEvent> ParseRecord(const std::string& line, int line_no,
                               double last_arrival) {
  const std::vector<std::string> fields = SplitCsv(line);
  if (fields.size() != 12) {
    return Error{"line " + std::to_string(line_no) + ": expected 12 fields, got " +
                 std::to_string(fields.size())};
  }
  TraceEvent event;
  double numbers[10] = {};
  // Numeric fields: 0,1 then 4..11 (2 = name, 3 = priority).
  const int numeric_indexes[10] = {0, 1, 4, 5, 6, 7, 8, 9, 10, 11};
  for (int i = 0; i < 10; ++i) {
    const Result<double> parsed =
        ParseNumber(fields[static_cast<size_t>(numeric_indexes[i])], line_no);
    if (!parsed.ok()) {
      return Error{parsed.error()};
    }
    numbers[i] = parsed.value();
  }
  event.arrival_s = numbers[0];
  event.lifetime_s = numbers[1];
  event.spec.name = fields[2];
  if (fields[3] == "low") {
    event.spec.priority = VmPriority::kLow;
  } else if (fields[3] == "high") {
    event.spec.priority = VmPriority::kHigh;
  } else {
    return Error{"line " + std::to_string(line_no) + ": bad priority '" + fields[3] +
                 "'"};
  }
  event.spec.size = ResourceVector(numbers[2], numbers[3], numbers[4], numbers[5]);
  event.spec.min_size = ResourceVector(numbers[6], numbers[7], numbers[8], numbers[9]);
  if (event.arrival_s < last_arrival) {
    return Error{"line " + std::to_string(line_no) + ": arrivals not sorted"};
  }
  if (event.lifetime_s <= 0.0 || !event.spec.min_size.AllLeq(event.spec.size)) {
    return Error{"line " + std::to_string(line_no) + ": invalid event"};
  }
  return event;
}

}  // namespace

void WriteTraceCsv(const std::vector<TraceEvent>& trace, std::ostream& out) {
  out << kHeader << "\n";
  out.precision(12);  // round-trip fidelity for times and sizes
  for (const TraceEvent& e : trace) {
    out << e.arrival_s << ',' << e.lifetime_s << ',' << e.spec.name << ','
        << (e.spec.priority == VmPriority::kLow ? "low" : "high") << ','
        << e.spec.size.cpu() << ',' << e.spec.size.memory_mb() << ','
        << e.spec.size.disk_bw() << ',' << e.spec.size.net_bw() << ','
        << e.spec.min_size.cpu() << ',' << e.spec.min_size.memory_mb() << ','
        << e.spec.min_size.disk_bw() << ',' << e.spec.min_size.net_bw() << "\n";
  }
}

std::string TraceToCsv(const std::vector<TraceEvent>& trace) {
  std::ostringstream out;
  WriteTraceCsv(trace, out);
  return out.str();
}

Result<std::vector<TraceEvent>> ReadTraceCsv(std::istream& in) {
  std::vector<TraceEvent> trace;
  std::string line;
  int line_no = 0;
  double last_arrival = -1.0;
  while (std::getline(in, line)) {
    ++line_no;
    // WriteTraceCsv terminates every record with '\n', so content that runs
    // into EOF without one may be a truncated write. Hand-authored or
    // editor-stripped files are still accepted: an unterminated final line
    // that parses into a complete valid record loads normally, and only a
    // genuinely short or garbled tail is rejected -- with the truncation
    // called out, since a generic field-count error would misdirect.
    const bool unterminated = in.eof() && !line.empty();
    if (line.empty() || line[0] == '#') {
      continue;
    }
    Result<TraceEvent> record = ParseRecord(line, line_no, last_arrival);
    if (!record.ok()) {
      if (unterminated) {
        return Error{record.error() +
                     " (possible truncated record at EOF: missing trailing newline)"};
      }
      return Error{record.error()};
    }
    last_arrival = record.value().arrival_s;
    trace.push_back(std::move(record).value());
  }
  return trace;
}

Result<std::vector<TraceEvent>> ParseTraceCsv(const std::string& text) {
  std::istringstream in(text);
  return ReadTraceCsv(in);
}

Result<bool> SaveTraceFile(const std::vector<TraceEvent>& trace,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Error{"cannot open for writing: " + path};
  }
  WriteTraceCsv(trace, out);
  return true;
}

Result<std::vector<TraceEvent>> LoadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error{"cannot open: " + path};
  }
  return ReadTraceCsv(in);
}

}  // namespace defl
