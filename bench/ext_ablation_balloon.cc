// Ablation (Section 7 related work [47, 54]): memory ballooning vs hot-
// unplug as the guest-aware reclamation mechanism under cascade deflation.
// Same memcached VM, same memory target: ballooning wastes usable memory to
// fragmentation (lower throughput once the cache feels the squeeze) and
// inflates page-at-a-time (higher reclamation latency).
#include "bench/bench_util.h"
#include "src/apps/memcached.h"
#include "src/core/cascade.h"

namespace defl {
namespace {

struct Point {
  double kgets = 0.0;
  double usable_mb = 0.0;
  double latency_s = 0.0;
};

Point Run(DeflationMode mode, double f) {
  VmSpec spec;
  spec.name = "vm";
  spec.size = ResourceVector(4.0, 16.0 * 1024.0, 200.0, 1250.0);
  Vm vm(0, spec);
  MemcachedConfig config;
  config.fill_fraction = 1.0;
  MemcachedModel app(config);
  vm.guest_os().set_app_used_mb(app.MemoryFootprintMb());
  CascadeController controller(mode);
  const DeflationOutcome out =
      controller.Deflate(vm, nullptr, ResourceVector(0.0, f * spec.size.memory_mb()));
  return Point{app.ThroughputKGets(vm.allocation()),
               vm.allocation().guest_memory_mb, out.latency_seconds};
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Ablation: ballooning vs hot-unplug",
                     "guest-aware memory reclamation mechanisms");
  bench::PrintNote("Unmodified memcached (full 12 GB cache); memory-only deflation.");
  bench::PrintNote("Fragmentation shows up as lost usable guest memory; inflation");
  bench::PrintNote("speed as reclamation latency.");
  bench::PrintColumns({"deflation%", "unplug-kgets", "balloon-kgets", "unplug-usable",
                       "balloon-usable", "unplug-lat(s)", "balloon-lat(s)"});
  for (const double f : {0.05, 0.1, 0.15, 0.2, 0.3, 0.4}) {
    const Point unplug = Run(DeflationMode::kVmLevel, f);
    const Point balloon = Run(DeflationMode::kBalloonLevel, f);
    bench::PrintCell(f * 100.0);
    bench::PrintCell(unplug.kgets);
    bench::PrintCell(balloon.kgets);
    bench::PrintCell(unplug.usable_mb);
    bench::PrintCell(balloon.usable_mb);
    bench::PrintCell(unplug.latency_s);
    bench::PrintCell(balloon.latency_s);
    bench::EndRow();
  }
  return 0;
}
