file(REMOVE_RECURSE
  "CMakeFiles/spark_sim.dir/spark_sim.cc.o"
  "CMakeFiles/spark_sim.dir/spark_sim.cc.o.d"
  "spark_sim"
  "spark_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
