// MetricsRegistry: the uniform instrumentation substrate for every layer of
// the reproduction (cascade, local controllers, hypervisor servers, cluster
// manager, cluster sim, Spark engine). Producers register named metrics once
// (naming convention: "layer/subsystem/metric") and then publish through
// small integer handles, so the hot path is an array index -- no map lookups,
// no allocation beyond amortized vector growth.
//
// Metric families:
//   * Counter      -- monotonically increasing int64 (events, ops, kills).
//   * Gauge        -- a double that is set or accumulated (resource-hours).
//   * Distribution -- RunningStats over samples, optionally histogram-backed
//                     (latencies, per-op reclaimed MB).
//   * Series       -- a piecewise-constant signal sampled in SimTime
//                     (cluster utilization, overcommitment over time).
//
// Registration is idempotent: registering an existing name returns the same
// handle, so several producers (e.g. per-server local controllers) can share
// one aggregate metric.
#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/stats.h"

namespace defl {

// Typed handles: cheap to copy, default-invalid so a detached producer can
// keep them around without registering.
struct CounterHandle {
  int32_t index = -1;
  bool valid() const { return index >= 0; }
};
struct GaugeHandle {
  int32_t index = -1;
  bool valid() const { return index >= 0; }
};
struct DistributionHandle {
  int32_t index = -1;
  bool valid() const { return index >= 0; }
};
struct SeriesHandle {
  int32_t index = -1;
  bool valid() const { return index >= 0; }
};

class MetricsRegistry {
 public:
  struct TimePoint {
    double time = 0.0;
    double value = 0.0;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Registration (idempotent; slow path, done once per producer) ---
  CounterHandle Counter(const std::string& name);
  GaugeHandle Gauge(const std::string& name);
  DistributionHandle Distribution(const std::string& name);
  // Distribution that additionally bins samples into a fixed histogram.
  DistributionHandle Distribution(const std::string& name, double hist_lo,
                                  double hist_hi, int hist_bins);
  SeriesHandle Series(const std::string& name);

  // --- Hot-path updates (O(1), handle-indexed) ---
  void Add(CounterHandle h, int64_t delta = 1) {
    if (h.valid()) {
      counters_[static_cast<size_t>(h.index)].value += delta;
    }
  }
  void Set(GaugeHandle h, double value) {
    if (h.valid()) {
      gauges_[static_cast<size_t>(h.index)].value = value;
    }
  }
  // Gauges double as floating-point accumulators (e.g. delivered CPU-hours).
  void AddTo(GaugeHandle h, double delta) {
    if (h.valid()) {
      gauges_[static_cast<size_t>(h.index)].value += delta;
    }
  }
  void Observe(DistributionHandle h, double sample);
  // Appends one (time, value) point; `time` must be non-decreasing per series
  // (callers sample off the simulator clock, which only moves forward).
  void ObserveAt(SeriesHandle h, double time, double value) {
    if (h.valid()) {
      series_[static_cast<size_t>(h.index)].points.push_back(
          TimePoint{time, value});
    }
  }

  // --- Reads ---
  int64_t counter(CounterHandle h) const {
    return h.valid() ? counters_[static_cast<size_t>(h.index)].value : 0;
  }
  double gauge(GaugeHandle h) const {
    return h.valid() ? gauges_[static_cast<size_t>(h.index)].value : 0.0;
  }
  const RunningStats& distribution(DistributionHandle h) const;
  const std::vector<TimePoint>& series_points(SeriesHandle h) const;
  // Time-weighted mean of the piecewise-constant series signal over
  // [first point, t_end]; 0 when empty.
  double SeriesTimeWeightedMean(SeriesHandle h, double t_end) const;
  double SeriesMax(SeriesHandle h) const;

  // --- Lookup by name (slow; for tests and export consumers) ---
  // Invalid handle if the name was never registered (or has another type).
  CounterHandle FindCounter(const std::string& name) const;
  GaugeHandle FindGauge(const std::string& name) const;
  DistributionHandle FindDistribution(const std::string& name) const;
  SeriesHandle FindSeries(const std::string& name) const;
  int64_t CounterValue(const std::string& name) const {
    return counter(FindCounter(name));
  }
  double GaugeValue(const std::string& name) const {
    return gauge(FindGauge(name));
  }

  // JSON object with one section per metric family, in registration order.
  // Output is deterministic: identical runs dump byte-identical JSON.
  void DumpJson(std::ostream& os) const;

  // --- Deterministic checkpoint/restore (SimSession snapshots) ---
  // ExportState captures every slot's name and value in registration order.
  // ImportState overwrites the values of an already-populated registry: the
  // restore path first re-runs the exact construction sequence that
  // registered the metrics (reproducing registration order, histogram
  // geometry included), then imports values wholesale. Slot counts, names,
  // positions, and histogram bin counts must match exactly -- any skew means
  // the snapshot came from a differently-configured run and is rejected.
  struct DistributionState {
    std::string name;
    int64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    bool has_histogram = false;
    std::vector<int64_t> hist_counts;
    int64_t hist_total = 0;
    int64_t hist_dropped = 0;
  };
  struct State {
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<DistributionState> distributions;
    std::vector<std::pair<std::string, std::vector<TimePoint>>> series;
  };
  State ExportState() const;
  Result<bool> ImportState(const State& state);

 private:
  struct CounterSlot {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeSlot {
    std::string name;
    double value = 0.0;
  };
  struct DistributionSlot {
    std::string name;
    RunningStats stats;
    std::vector<Histogram> histogram;  // empty or exactly one (no default ctor)
  };
  struct SeriesSlot {
    std::string name;
    std::vector<TimePoint> points;
  };

  std::vector<CounterSlot> counters_;
  std::vector<GaugeSlot> gauges_;
  std::vector<DistributionSlot> distributions_;
  std::vector<SeriesSlot> series_;
};

}  // namespace defl

#endif  // SRC_TELEMETRY_METRICS_H_
