#include "src/core/local_controller.h"

#include <gtest/gtest.h>

#include <memory>

namespace defl {
namespace {

GuestOs::Params ExactOsParams() {
  GuestOs::Params p;
  p.kernel_reserve_mb = 0.0;
  p.unplug_efficiency = 1.0;
  p.min_cpus = 0;
  return p;
}

std::unique_ptr<Vm> MakeVm(VmId id, double cpus, double mem_mb,
                           VmPriority priority = VmPriority::kLow,
                           ResourceVector min_size = ResourceVector()) {
  VmSpec spec;
  spec.name = "vm" + std::to_string(id);
  spec.size = ResourceVector(cpus, mem_mb);
  spec.priority = priority;
  spec.min_size = min_size;
  return std::make_unique<Vm>(id, spec, ExactOsParams());
}

LocalControllerConfig VmLevelConfig() {
  LocalControllerConfig config;
  config.mode = DeflationMode::kVmLevel;
  return config;
}

TEST(LocalControllerTest, NoOpWhenEnoughFree) {
  Server server(1, ResourceVector(32.0, 64000.0));
  server.AddVm(MakeVm(1, 8.0, 16000.0));
  LocalController controller(&server, VmLevelConfig());
  const ReclaimResult r = controller.MakeRoom(ResourceVector(8.0, 16000.0));
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.deflated.empty());
  EXPECT_TRUE(r.preempted.empty());
}

TEST(LocalControllerTest, ProportionalDeflationAcrossVms) {
  Server server(1, ResourceVector(16.0, 32000.0));
  // Two low-pri VMs fill the server; one is twice the other.
  server.AddVm(MakeVm(1, 8.0, 16000.0));   // deflatable 8 CPU
  server.AddVm(MakeVm(2, 4.0, 8000.0));    // deflatable 4 CPU
  server.AddVm(MakeVm(3, 4.0, 8000.0, VmPriority::kHigh));
  LocalController controller(&server, VmLevelConfig());
  const ReclaimResult r = controller.MakeRoom(ResourceVector(6.0, 12000.0));
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.preempted.empty());
  EXPECT_EQ(r.deflated.size(), 2u);
  // Proportional: VM 1 gives 2/3 of the need, VM 2 gives 1/3.
  Vm* vm1 = server.FindVm(1);
  Vm* vm2 = server.FindVm(2);
  EXPECT_NEAR(vm1->size().cpu() - vm1->effective().cpu(), 4.0, 1e-6);
  EXPECT_NEAR(vm2->size().cpu() - vm2->effective().cpu(), 2.0, 1e-6);
  EXPECT_TRUE(ResourceVector(6.0, 12000.0).AllLeq(server.Free(), 1e-6));
}

TEST(LocalControllerTest, HighPriorityVmsAreNeverDeflated) {
  Server server(1, ResourceVector(16.0, 32000.0));
  server.AddVm(MakeVm(1, 8.0, 16000.0, VmPriority::kHigh));
  server.AddVm(MakeVm(2, 8.0, 16000.0));
  LocalController controller(&server, VmLevelConfig());
  const ReclaimResult r = controller.MakeRoom(ResourceVector(4.0, 8000.0));
  EXPECT_TRUE(r.success);
  EXPECT_EQ(server.FindVm(1)->effective(), ResourceVector(8.0, 16000.0));
  EXPECT_EQ(server.FindVm(2)->effective(), ResourceVector(4.0, 8000.0));
}

TEST(LocalControllerTest, MinSizeTriggersPreemption) {
  Server server(1, ResourceVector(16.0, 32000.0));
  // Both VMs have high minimums: only 2+2 CPUs deflatable in total.
  server.AddVm(MakeVm(1, 8.0, 16000.0, VmPriority::kLow, ResourceVector(6.0, 12000.0)));
  server.AddVm(MakeVm(2, 8.0, 16000.0, VmPriority::kLow, ResourceVector(6.0, 12000.0)));
  LocalController controller(&server, VmLevelConfig());
  // Need 8 CPUs; deflation alone gives at most 4 => preempt one VM.
  const ReclaimResult r = controller.MakeRoom(ResourceVector(8.0, 16000.0));
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.preempted.size(), 1u);
  EXPECT_EQ(server.vm_count(), 1u);
}

TEST(LocalControllerTest, PreemptionFreesWholeAllocation) {
  Server server(1, ResourceVector(16.0, 32000.0));
  server.AddVm(MakeVm(1, 16.0, 32000.0, VmPriority::kLow, ResourceVector(15.0, 30000.0)));
  LocalController controller(&server, VmLevelConfig());
  const ReclaimResult r = controller.MakeRoom(ResourceVector(8.0, 16000.0));
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.preempted.size(), 1u);
  EXPECT_EQ(server.Free(), server.capacity());
}

TEST(LocalControllerTest, FailsWhenOnlyHighPriorityRemain) {
  Server server(1, ResourceVector(16.0, 32000.0));
  server.AddVm(MakeVm(1, 16.0, 32000.0, VmPriority::kHigh));
  LocalController controller(&server, VmLevelConfig());
  const ReclaimResult r = controller.MakeRoom(ResourceVector(8.0, 16000.0));
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.preempted.empty());
  EXPECT_EQ(server.vm_count(), 1u);
}

TEST(LocalControllerTest, ConcurrentLatencyIsMaxNotSum) {
  Server server(1, ResourceVector(16.0, 64000.0));
  Vm* vm1 = server.AddVm(MakeVm(1, 8.0, 32000.0));
  Vm* vm2 = server.AddVm(MakeVm(2, 8.0, 32000.0));
  vm1->guest_os().set_app_used_mb(30000.0);
  vm2->guest_os().set_app_used_mb(30000.0);
  LocalController controller(&server, VmLevelConfig());
  const ReclaimResult r = controller.MakeRoom(ResourceVector(0.0, 16000.0));
  ASSERT_TRUE(r.success);
  // Each VM reclaims ~8000 MB by swap; latency should be one VM's worth.
  DeflationLatencyModel model;
  ReclaimBreakdown one;
  one.hv_swap_mb = 9000.0;  // upper bound on one VM's share
  EXPECT_LE(r.latency_seconds, model.TotalSeconds(one));
}

TEST(LocalControllerTest, ResidualSweepAfterUnplugGranularity) {
  // Proportional split of 3 CPUs across two VMs gives 1.5 each; whole-unit
  // unplug delivers 1+1 and hypervisor shares cover the rest. MakeRoom must
  // still succeed exactly.
  Server server(1, ResourceVector(8.0, 32000.0));
  server.AddVm(MakeVm(1, 4.0, 16000.0));
  server.AddVm(MakeVm(2, 4.0, 16000.0));
  LocalController controller(&server, VmLevelConfig());
  const ReclaimResult r = controller.MakeRoom(ResourceVector(3.0, 0.0));
  EXPECT_TRUE(r.success);
  EXPECT_GE(server.Free().cpu(), 3.0 - 1e-6);
}

TEST(LocalControllerTest, ReinflateAllReturnsProportionally) {
  Server server(1, ResourceVector(16.0, 32000.0));
  server.AddVm(MakeVm(1, 8.0, 16000.0));
  server.AddVm(MakeVm(2, 8.0, 16000.0));
  LocalController controller(&server, VmLevelConfig());
  ASSERT_TRUE(controller.MakeRoom(ResourceVector(8.0, 16000.0)).success);
  // The demand leaves; everything can be reinflated.
  const ResourceVector returned = controller.ReinflateAll();
  EXPECT_NEAR(returned.cpu(), 8.0, 1e-6);
  EXPECT_NEAR(returned.memory_mb(), 16000.0, 1e-6);
  EXPECT_EQ(server.FindVm(1)->effective(), ResourceVector(8.0, 16000.0));
  EXPECT_EQ(server.FindVm(2)->effective(), ResourceVector(8.0, 16000.0));
}

TEST(LocalControllerTest, ReinflateRespectsHoldBack) {
  Server server(1, ResourceVector(16.0, 32000.0));
  server.AddVm(MakeVm(1, 16.0, 32000.0));
  LocalController controller(&server, VmLevelConfig());
  ASSERT_TRUE(controller.MakeRoom(ResourceVector(8.0, 16000.0)).success);
  // Hold back half of what is free for an incoming VM.
  controller.ReinflateAll(ResourceVector(4.0, 8000.0));
  EXPECT_NEAR(server.Free().cpu(), 4.0, 1e-6);
  EXPECT_NEAR(server.Free().memory_mb(), 8000.0, 1e-6);
}

TEST(LocalControllerTest, ReinflateNoOpWhenNothingDeflated) {
  Server server(1, ResourceVector(16.0, 32000.0));
  server.AddVm(MakeVm(1, 8.0, 16000.0));
  LocalController controller(&server, VmLevelConfig());
  EXPECT_TRUE(controller.ReinflateAll().IsZero());
}

TEST(LocalControllerTest, AlphaHoldsBackSafetyMargin) {
  Server server(1, ResourceVector(16.0, 32000.0));
  server.AddVm(MakeVm(1, 16.0, 32000.0));
  LocalControllerConfig config = VmLevelConfig();
  config.alpha = 0.5;
  LocalController controller(&server, config);
  const ReclaimResult r = controller.MakeRoom(ResourceVector(8.0, 0.0));
  // First proportional pass holds back half, residual sweep completes it.
  EXPECT_TRUE(r.success);
  EXPECT_GE(server.Free().cpu(), 8.0 - 1e-6);
}

TEST(LocalControllerTest, EqualSplitHitsSmallVmsHarder) {
  // Ablation (DESIGN.md): equal-split deflation takes the same absolute
  // amount from every VM, so the small VM ends up proportionally far more
  // deflated -- the straggler-maker the proportional policy avoids.
  auto run = [](DeflationSplit split) {
    Server server(1, ResourceVector(16.0, 32000.0));
    server.AddVm(MakeVm(1, 12.0, 24000.0));
    server.AddVm(MakeVm(2, 4.0, 8000.0));
    LocalControllerConfig config = VmLevelConfig();
    config.split = split;
    LocalController controller(&server, config);
    EXPECT_TRUE(controller.MakeRoom(ResourceVector(4.0, 8000.0)).success);
    return std::pair<double, double>{
        server.FindVm(1)->MaxDeflationFraction(),
        server.FindVm(2)->MaxDeflationFraction()};
  };
  const auto [prop_big, prop_small] = run(DeflationSplit::kProportional);
  EXPECT_NEAR(prop_big, prop_small, 1e-6);  // equal *fractions*
  const auto [eq_big, eq_small] = run(DeflationSplit::kEqual);
  EXPECT_GT(eq_small, eq_big + 0.2);  // small VM deflated much harder
  EXPECT_GT(eq_small, prop_small);
}

TEST(LocalControllerTest, DeadlineBoundsSynchronousStages) {
  // The Section 5 deadline bounds the time spent in the synchronous upper
  // layers (agent round-trip, hot-unplug); clipped work falls through to
  // the hypervisor, whose reclamation proceeds asynchronously under host
  // control. The target is still fully reclaimed.
  auto run = [](double deadline) {
    Server server(1, ResourceVector(16.0, 64000.0));
    Vm* vm = server.AddVm(MakeVm(1, 16.0, 64000.0));
    vm->guest_os().set_app_used_mb(20000.0);
    LocalControllerConfig config = VmLevelConfig();
    config.deflation_deadline_s = deadline;
    LocalController controller(&server, config);
    const DeflationOutcome out =
        controller.DeflateVm(1, ResourceVector(8.0, 40000.0));
    EXPECT_TRUE(out.TargetMet());
    const DeflationLatencyModel model;
    return model.AppStageSeconds(out.breakdown) + model.OsStageSeconds(out.breakdown);
  };
  const double unbounded_sync_s = run(0.0);
  const double bounded_sync_s = run(5.0);
  EXPECT_GT(unbounded_sync_s, 5.0);
  EXPECT_LE(bounded_sync_s, 5.0 + 1e-6);
}

TEST(LocalControllerTest, SplitNames) {
  EXPECT_STREQ(DeflationSplitName(DeflationSplit::kProportional), "proportional");
  EXPECT_STREQ(DeflationSplitName(DeflationSplit::kEqual), "equal");
}

TEST(LocalControllerTest, AgentRegistry) {
  Server server(1, ResourceVector(16.0, 32000.0));
  server.AddVm(MakeVm(1, 8.0, 16000.0));
  LocalController controller(&server, VmLevelConfig());
  InelasticAgent agent(1000.0);
  controller.RegisterAgent(1, &agent);
  EXPECT_EQ(controller.FindAgent(1), &agent);
  controller.UnregisterAgent(1);
  EXPECT_EQ(controller.FindAgent(1), nullptr);
  EXPECT_EQ(controller.FindAgent(42), nullptr);
}

}  // namespace
}  // namespace defl
