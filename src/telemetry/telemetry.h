// TelemetryContext: one bundle of MetricsRegistry + EventTrace that a whole
// experiment shares. Producers hold a `TelemetryContext*` (nullptr =
// detached, zero overhead beyond one branch) and pre-register their metric
// handles in AttachTelemetry(); drivers (tools, benches, tests) own the
// context, point its clock at their simulator, and export JSON/JSONL at the
// end of the run.
#ifndef SRC_TELEMETRY_TELEMETRY_H_
#define SRC_TELEMETRY_TELEMETRY_H_

#include <functional>
#include <utility>

#include "src/telemetry/event_trace.h"
#include "src/telemetry/metrics.h"

namespace defl {

class TelemetryContext {
 public:
  TelemetryContext() = default;
  TelemetryContext(const TelemetryContext&) = delete;
  TelemetryContext& operator=(const TelemetryContext&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  EventTrace& trace() { return trace_; }
  const EventTrace& trace() const { return trace_; }

  void SetClock(std::function<double()> clock) { trace_.SetClock(std::move(clock)); }
  double Now() const { return trace_.Now(); }

 private:
  MetricsRegistry metrics_;
  EventTrace trace_;
};

// RAII clock binding: drivers whose simulator dies before the context does
// (experiments constructing a Simulator on the stack) scope the clock to the
// run so no dangling clock callback survives.
class TelemetryClockScope {
 public:
  TelemetryClockScope(TelemetryContext* telemetry, std::function<double()> clock)
      : telemetry_(telemetry) {
    if (telemetry_ != nullptr) {
      telemetry_->SetClock(std::move(clock));
    }
  }
  ~TelemetryClockScope() {
    if (telemetry_ != nullptr) {
      telemetry_->trace().ClearClock();
    }
  }
  TelemetryClockScope(const TelemetryClockScope&) = delete;
  TelemetryClockScope& operator=(const TelemetryClockScope&) = delete;

 private:
  TelemetryContext* telemetry_;
};

}  // namespace defl

#endif  // SRC_TELEMETRY_TELEMETRY_H_
