#include "src/service/query.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace defl {

namespace {

bool ParseF64(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseI64(const std::string& text, int64_t* out) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return false;
  }
  *out = v;
  return true;
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

// The keys each kind accepts; anything else is an explicit error so a typo
// ("coun=5") can never silently fall back to a default.
const std::unordered_set<std::string>& KeysFor(QueryKind kind) {
  static const std::unordered_set<std::string> place = {
      "count", "cpu", "mem", "disk", "net", "prio", "hours"};
  static const std::unordered_set<std::string> fail = {"fraction", "seed",
                                                       "hours"};
  static const std::unordered_set<std::string> overcommit = {
      "target", "cpu", "mem", "disk", "net", "prio", "limit", "hours"};
  static const std::unordered_set<std::string> run = {"hours"};
  static const std::unordered_set<std::string> slo = {
      "p99", "fraction", "policy", "period", "hours"};
  switch (kind) {
    case QueryKind::kPlace:
      return place;
    case QueryKind::kFail:
      return fail;
    case QueryKind::kOvercommit:
      return overcommit;
    case QueryKind::kRun:
      return run;
    case QueryKind::kSlo:
      return slo;
  }
  return run;
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPlace:
      return "place";
    case QueryKind::kFail:
      return "fail";
    case QueryKind::kOvercommit:
      return "overcommit";
    case QueryKind::kRun:
      return "run";
    case QueryKind::kSlo:
      return "slo";
  }
  return "unknown";
}

Result<WhatIfQuery> ParseQuery(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Error{
        "empty query (expected a kind: place, fail, overcommit, run, slo)"};
  }

  WhatIfQuery query;
  const std::string& kind = tokens[0];
  if (kind == "place") {
    query.kind = QueryKind::kPlace;
  } else if (kind == "fail") {
    query.kind = QueryKind::kFail;
  } else if (kind == "overcommit") {
    query.kind = QueryKind::kOvercommit;
  } else if (kind == "run") {
    query.kind = QueryKind::kRun;
  } else if (kind == "slo") {
    query.kind = QueryKind::kSlo;
  } else {
    return Error{"unknown query kind '" + kind +
                 "' (expected place, fail, overcommit, run, or slo)"};
  }

  const std::unordered_set<std::string>& allowed = KeysFor(query.kind);
  std::unordered_map<std::string, std::string> fields;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      return Error{"malformed field '" + token + "' in " + kind +
                   " query (expected key=value)"};
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (allowed.count(key) == 0) {
      return Error{"unknown key '" + key + "' for " + kind + " query"};
    }
    if (!fields.emplace(key, value).second) {
      return Error{"duplicate key '" + key + "' in " + kind + " query"};
    }
  }

  // Typed extraction; every key already passed the kind's allow-list above,
  // so these helpers only have to validate the value text.
  auto has = [&fields](const char* key) { return fields.count(key) != 0; };
  auto f64 = [&fields, &kind](const char* key, double* out) -> Result<bool> {
    const auto it = fields.find(key);
    if (it == fields.end()) {
      return true;
    }
    if (!ParseF64(it->second, out)) {
      return Error{"cannot parse " + std::string(key) + "='" + it->second +
                   "' in " + kind + " query as a number"};
    }
    return true;
  };
  auto i64 = [&fields, &kind](const char* key, int64_t* out) -> Result<bool> {
    const auto it = fields.find(key);
    if (it == fields.end()) {
      return true;
    }
    if (!ParseI64(it->second, out)) {
      return Error{"cannot parse " + std::string(key) + "='" + it->second +
                   "' in " + kind + " query as an integer"};
    }
    return true;
  };

  double cpu = 0.0, mem = 0.0, disk = 0.0, net = 0.0;
  for (const auto& step : {f64("cpu", &cpu), f64("mem", &mem),
                           f64("disk", &disk), f64("net", &net),
                           f64("fraction", &query.fraction),
                           f64("target", &query.target),
                           f64("p99", &query.slo_p99_ms),
                           f64("period", &query.slo_period_s),
                           f64("hours", &query.hours)}) {
    if (!step.ok()) {
      return Error{step.error()};
    }
  }
  for (const auto& step : {i64("count", &query.count), i64("limit", &query.limit)}) {
    if (!step.ok()) {
      return Error{step.error()};
    }
  }
  if (has("seed")) {
    if (!ParseU64(fields.at("seed"), &query.seed)) {
      return Error{"cannot parse seed='" + fields.at("seed") + "' in " + kind +
                   " query as an unsigned integer"};
    }
  }
  if (has("prio")) {
    const std::string& prio = fields.at("prio");
    if (prio == "low") {
      query.priority = VmPriority::kLow;
    } else if (prio == "high") {
      query.priority = VmPriority::kHigh;
    } else {
      return Error{"bad prio='" + prio + "' in " + kind +
                   " query (expected low or high)"};
    }
  }
  if (has("policy")) {
    const std::string& policy = fields.at("policy");
    if (policy == "slo") {
      query.slo_policy = 1;
    } else if (policy == "uniform") {
      query.slo_policy = 0;
    } else {
      return Error{"bad policy='" + policy + "' in " + kind +
                   " query (expected slo or uniform)"};
    }
  }
  query.shape = ResourceVector(cpu, mem, disk, net);

  // Kind-specific requirements and ranges.
  if (query.hours < 0.0) {
    return Error{kind + " query hours must be >= 0 (got " +
                 std::to_string(query.hours) + ")"};
  }
  switch (query.kind) {
    case QueryKind::kPlace:
      if (!has("count")) {
        return Error{"place query requires count="};
      }
      if (query.count < 1) {
        return Error{"place query count must be >= 1 (got " +
                     std::to_string(query.count) + ")"};
      }
      if (!has("cpu") || cpu <= 0.0) {
        return Error{"place query requires cpu= > 0"};
      }
      break;
    case QueryKind::kFail:
      if (!has("fraction")) {
        return Error{"fail query requires fraction="};
      }
      if (query.fraction < 0.0 || query.fraction > 1.0) {
        return Error{"fail query fraction must be in [0, 1] (got " +
                     std::to_string(query.fraction) + ")"};
      }
      break;
    case QueryKind::kOvercommit:
      if (!has("target")) {
        return Error{"overcommit query requires target="};
      }
      if (query.target <= 0.0) {
        return Error{"overcommit query target must be > 0 (got " +
                     std::to_string(query.target) + ")"};
      }
      if (!has("cpu") || cpu <= 0.0) {
        return Error{"overcommit query requires cpu= > 0"};
      }
      if (query.limit < 1) {
        return Error{"overcommit query limit must be >= 1 (got " +
                     std::to_string(query.limit) + ")"};
      }
      break;
    case QueryKind::kRun:
      if (!has("hours") || query.hours <= 0.0) {
        return Error{"run query requires hours= > 0"};
      }
      break;
    case QueryKind::kSlo:
      if (!has("hours") || query.hours <= 0.0) {
        return Error{"slo query requires hours= > 0"};
      }
      if (has("p99") && query.slo_p99_ms <= 0.0) {
        return Error{"slo query p99 must be > 0 (got " +
                     std::to_string(query.slo_p99_ms) + ")"};
      }
      if (has("fraction")) {
        if (query.fraction < 0.0 || query.fraction > 1.0) {
          return Error{"slo query fraction must be in [0, 1] (got " +
                       std::to_string(query.fraction) + ")"};
        }
        query.mix_fraction = query.fraction;
      }
      if (has("period") && query.slo_period_s <= 0.0) {
        return Error{"slo query period must be > 0 (got " +
                     std::to_string(query.slo_period_s) + ")"};
      }
      break;
  }
  if (mem < 0.0 || disk < 0.0 || net < 0.0) {
    return Error{kind + " query shape dimensions must be >= 0"};
  }
  return query;
}

Result<std::vector<WhatIfQuery>> ParseQueryScript(const std::string& text) {
  std::vector<WhatIfQuery> queries;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip a trailing CR (scripts may arrive with DOS endings) and skip
    // blank/comment lines.
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    Result<WhatIfQuery> query = ParseQuery(line);
    if (!query.ok()) {
      return Error{"query script line " + std::to_string(line_number) + ": " +
                   query.error()};
    }
    queries.push_back(query.value());
  }
  if (queries.empty()) {
    return Error{"query script contains no queries"};
  }
  return queries;
}

}  // namespace defl
