file(REMOVE_RECURSE
  "CMakeFiles/defl_resources.dir/resource_vector.cc.o"
  "CMakeFiles/defl_resources.dir/resource_vector.cc.o.d"
  "libdefl_resources.a"
  "libdefl_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defl_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
