#include "src/cluster/predictor.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace defl {
namespace {

TEST(EwmaPredictorTest, FirstObservationInitializes) {
  EwmaPredictor p(0.3);
  EXPECT_FALSE(p.initialized());
  p.Observe(10.0);
  EXPECT_TRUE(p.initialized());
  EXPECT_DOUBLE_EQ(p.mean(), 10.0);
  EXPECT_DOUBLE_EQ(p.stddev(), 0.0);
}

TEST(EwmaPredictorTest, ConvergesToConstantSignal) {
  EwmaPredictor p(0.3);
  for (int i = 0; i < 100; ++i) {
    p.Observe(42.0);
  }
  EXPECT_NEAR(p.mean(), 42.0, 1e-9);
  EXPECT_NEAR(p.stddev(), 0.0, 1e-9);
}

TEST(EwmaPredictorTest, TracksLevelShift) {
  EwmaPredictor p(0.3);
  for (int i = 0; i < 50; ++i) {
    p.Observe(10.0);
  }
  for (int i = 0; i < 50; ++i) {
    p.Observe(100.0);
  }
  EXPECT_NEAR(p.mean(), 100.0, 1.0);
}

TEST(EwmaPredictorTest, NoisySignalHasPositiveSpread) {
  EwmaPredictor p(0.2);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    p.Observe(rng.Normal(50.0, 10.0));
  }
  EXPECT_NEAR(p.mean(), 50.0, 8.0);
  EXPECT_GT(p.stddev(), 3.0);
  EXPECT_GT(p.UpperBound(1.0), p.mean());
  EXPECT_GT(p.UpperBound(2.0), p.UpperBound(1.0));
}

TEST(EwmaPredictorTest, HigherAlphaReactsFaster) {
  EwmaPredictor slow(0.05);
  EwmaPredictor fast(0.5);
  for (int i = 0; i < 20; ++i) {
    slow.Observe(0.0);
    fast.Observe(0.0);
  }
  slow.Observe(100.0);
  fast.Observe(100.0);
  EXPECT_GT(fast.mean(), slow.mean());
}

}  // namespace
}  // namespace defl
