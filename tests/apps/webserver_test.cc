#include "src/apps/webserver.h"

#include <gtest/gtest.h>

#include "src/apps/deflation_harness.h"

namespace defl {
namespace {

EffectiveAllocation FullAllocation() {
  Vm vm(0, StandardVmSpec());
  return vm.allocation();
}

TEST(WebServerTest, BaselineThroughput) {
  WebServerModel model{WebServerConfig{}};
  // 4 cores at 2 ms/request: 2000 rps.
  EXPECT_NEAR(model.ThroughputRps(FullAllocation()), 2000.0, 1.0);
}

TEST(WebServerTest, AgentShrinksPoolOnCpuDeflation) {
  WebServerModel model{WebServerConfig{}};
  const ResourceVector freed = model.agent()->SelfDeflate(ResourceVector(2.0, 0.0));
  // 8 threads/core * 2 cores = 16 threads shed; 2 CPUs relinquished.
  EXPECT_EQ(model.threads(), 16);
  EXPECT_DOUBLE_EQ(freed.cpu(), 2.0);
  EXPECT_GT(freed.memory_mb(), 0.0);  // thread stacks returned
}

TEST(WebServerTest, PoolNeverShrinksBelowOneThread) {
  WebServerModel model{WebServerConfig{}};
  model.agent()->SelfDeflate(ResourceVector(100.0, 0.0));
  EXPECT_GE(model.threads(), 1);
}

TEST(WebServerTest, ReinflateGrowsPool) {
  WebServerModel model{WebServerConfig{}};
  model.agent()->SelfDeflate(ResourceVector(2.0, 0.0));
  model.agent()->OnReinflate(ResourceVector(2.0, 0.0));
  EXPECT_EQ(model.threads(), model.config().configured_threads);
}

TEST(WebServerTest, SelfDeflatedPoolAvoidsLhpPenalty) {
  // Keeping 32 runnable threads on 2 cores incurs LHP; shrinking the pool
  // to match capacity does not.
  WebServerModel aware{WebServerConfig{}};
  const HarnessResult a =
      DeflateAppVm(aware, DeflationMode::kCascade, ResourceVector(0.5, 0.0, 0.0, 0.0));
  const double rps_aware = aware.ThroughputRps(a.alloc);

  WebServerModel unmodified{WebServerConfig{}};
  const HarnessResult u =
      DeflateAppVm(unmodified, DeflationMode::kHypervisorOnly,
                   ResourceVector(0.5, 0.0, 0.0, 0.0), StandardVmSpec(),
                   /*use_agent=*/false);
  const double rps_unmodified = unmodified.ThroughputRps(u.alloc);

  EXPECT_GT(rps_aware, rps_unmodified);
}

TEST(WebServerTest, OomWhenMemoryBelowFootprint) {
  WebServerModel model{WebServerConfig{}};
  EffectiveAllocation alloc = FullAllocation();
  alloc.guest_memory_mb = 100.0;
  EXPECT_DOUBLE_EQ(model.ThroughputRps(alloc), 0.0);
}

TEST(WebServerTest, NormalizedAgainstBaseline) {
  WebServerModel model{WebServerConfig{}};
  const EffectiveAllocation full = FullAllocation();
  model.SetBaseline(full);
  EXPECT_NEAR(model.NormalizedPerformance(full), 1.0, 1e-9);
}

}  // namespace
}  // namespace defl
