# Empty dependencies file for defl_apps.
# This may be replaced when dependencies are built.
