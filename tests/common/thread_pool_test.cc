#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace defl {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1);
  std::vector<int64_t> seen;
  pool.ParallelFor(5, [&](int64_t i) { seen.push_back(i); });
  // No workers: the caller runs every item itself, in index order.
  EXPECT_EQ(seen, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ZeroAndNegativeParallelismClampToOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.parallelism(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.parallelism(), 1);
}

TEST(ThreadPoolTest, EveryItemRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4);
  constexpr int64_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, ZeroCountIsANoop) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  pool.ParallelFor(0, [&](int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, SingleItemRunsOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(1, [&](int64_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, BackToBackJobsDoNotLeakItems) {
  // Regression guard for the stale-waker hazard: a worker that wakes late
  // for job G must never claim items of job G+1 with job G's function.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    const int64_t count = 1 + round % 7;
    std::vector<std::atomic<int>> hits(count);
    pool.ParallelFor(count, [&](int64_t i) { hits[i].fetch_add(1); });
    for (int64_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " item " << i;
    }
  }
}

TEST(ThreadPoolTest, ShardedSumMatchesSequential) {
  // The usage pattern of the sharded sweeps: workers fill disjoint slots,
  // the caller folds them in canonical order after the barrier.
  constexpr int64_t kItems = 4096;
  std::vector<double> values(kItems);
  for (int64_t i = 0; i < kItems; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  const double sequential = std::accumulate(values.begin(), values.end(), 0.0);

  ThreadPool pool(7);
  constexpr int64_t kChunk = 64;
  const int64_t chunks = (kItems + kChunk - 1) / kChunk;
  std::vector<double> slot(kItems, 0.0);
  pool.ParallelFor(chunks, [&](int64_t c) {
    const int64_t begin = c * kChunk;
    const int64_t end = std::min(begin + kChunk, kItems);
    for (int64_t i = begin; i < end; ++i) {
      slot[i] = values[i];
    }
  });
  double folded = 0.0;
  for (const double v : slot) {
    folded += v;
  }
  // Same flat left-to-right fold => bitwise-identical double.
  EXPECT_EQ(folded, sequential);
}

TEST(ThreadPoolTest, UsesMultipleThreadsForLargeJobs) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  // Each item spins briefly so the workers have a chance to join in before
  // the caller drains everything; on a loaded single-core machine this may
  // still all land on one thread, so only sanity-check the bounds.
  pool.ParallelFor(64, [&](int64_t) {
    volatile uint64_t x = 0;
    for (int i = 0; i < 20000; ++i) {
      x = x + static_cast<uint64_t>(i);
    }
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 4u);
}

}  // namespace
}  // namespace defl
