file(REMOVE_RECURSE
  "libdefl_core.a"
)
