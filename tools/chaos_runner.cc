// chaos_runner: crash-recovery supervisor for durable simulation runs.
//
// Launches a child command, SIGKILLs it at a seeded random wall-clock delay,
// and relaunches the SAME command until it completes -- the execution a
// durable run promises to survive (DESIGN.md §13). After the child finally
// exits 0, optional --compare pairs assert that the files the killed-and-
// recovered run produced are byte-identical to reference files from an
// uninterrupted run.
//
// Examples:
//   chaos_runner --seed=7 --kills=4 -- \
//       deflation_sim --servers=20 --duration-h=6 --durable-dir=run.d \
//                     --metrics-out=m.json
//   chaos_runner --seed=7 --kills=4 --compare=m.json=ref.json -- \
//       deflation_sim ... --durable-dir=run.d --metrics-out=m.json
//
// Exit status: 0 when the command completed (and every compare pair
// matched); 1 on a supervisor/compare failure; the child's own exit status
// when it failed for reasons other than our SIGKILL.
#include <sys/types.h>
#include <sys/wait.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/atomic_file.h"
#include "src/common/flags.h"
#include "src/common/rng.h"

using namespace defl;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "chaos_runner: %s\n", message.c_str());
  return 1;
}

// Splits "a=b,c=d" into {{a,b},{c,d}}.
Result<std::vector<std::pair<std::string, std::string>>> ParseComparePairs(
    const std::string& spec) {
  std::vector<std::pair<std::string, std::string>> pairs;
  size_t start = 0;
  while (start <= spec.size() && !spec.empty()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(start, comma - start);
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      return Error{"bad --compare item '" + item + "' (want produced=reference)"};
    }
    pairs.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    if (comma == spec.size()) {
      break;
    }
    start = comma + 1;
  }
  return pairs;
}

struct ChildOutcome {
  bool exited = false;     // normal exit (vs. signal)
  int exit_status = 0;     // when exited
  int term_signal = 0;     // when signalled
  bool killed_by_us = false;
};

// Runs one generation of the child. When `kill_after_ms` >= 0, delivers
// SIGKILL once that wall-clock delay elapses (unless the child beat it).
Result<ChildOutcome> RunGeneration(const std::vector<std::string>& command,
                                   int64_t kill_after_ms) {
  std::vector<char*> argv;
  argv.reserve(command.size() + 1);
  for (const std::string& arg : command) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Error{std::string("fork failed: ") + std::strerror(errno)};
  }
  if (pid == 0) {
    ::execvp(argv[0], argv.data());
    std::fprintf(stderr, "chaos_runner: cannot exec %s: %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(kill_after_ms < 0 ? 0 : kill_after_ms);
  ChildOutcome outcome;
  for (;;) {
    int status = 0;
    const pid_t done = ::waitpid(pid, &status, WNOHANG);
    if (done == pid) {
      if (WIFEXITED(status)) {
        outcome.exited = true;
        outcome.exit_status = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        outcome.term_signal = WTERMSIG(status);
      }
      return outcome;
    }
    if (done < 0) {
      return Error{std::string("waitpid failed: ") + std::strerror(errno)};
    }
    if (kill_after_ms >= 0 && std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      outcome.killed_by_us = true;
      kill_after_ms = -1;  // keep waiting, but only reap from here on
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace

int main(int argc, char** argv) {
  int64_t seed = 1;
  int64_t kills = 3;
  int64_t min_delay_ms = 10;
  int64_t max_delay_ms = 500;
  int64_t max_restarts = 64;
  std::string compare;

  FlagParser parser(
      "chaos_runner: SIGKILL a durable run at seeded random times and "
      "restart it until completion");
  parser.AddInt("seed", "RNG seed for the kill schedule", &seed);
  parser.AddInt("kills", "SIGKILLs to deliver before letting the run finish",
                &kills);
  parser.AddInt("min-delay-ms", "earliest kill after launch", &min_delay_ms);
  parser.AddInt("max-delay-ms", "latest kill after launch", &max_delay_ms);
  parser.AddInt("max-restarts",
                "abort if the command needs more generations than this",
                &max_restarts);
  parser.AddString("compare",
                   "comma-separated produced=reference file pairs asserted "
                   "byte-identical after completion",
                   &compare);

  // Everything after "--" is the supervised command, untouched; only the
  // flags before it are ours.
  int split = argc;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") == 0) {
      split = i;
      break;
    }
  }
  const Result<std::vector<std::string>> parsed = parser.Parse(split, argv);
  if (!parsed.ok()) {
    return Fail(parsed.error());
  }
  if (!parsed.value().empty()) {
    return Fail("unexpected positional argument '" + parsed.value()[0] +
                "' (put the supervised command after --)");
  }
  std::vector<std::string> command;
  for (int i = split + 1; i < argc; ++i) {
    command.emplace_back(argv[i]);
  }
  if (command.empty()) {
    return Fail("no command given (usage: chaos_runner [flags] -- command ...)");
  }
  if (min_delay_ms < 0 || max_delay_ms < min_delay_ms) {
    return Fail("need 0 <= --min-delay-ms <= --max-delay-ms");
  }
  const Result<std::vector<std::pair<std::string, std::string>>> pairs =
      ParseComparePairs(compare);
  if (!pairs.ok()) {
    return Fail(pairs.error());
  }

  Rng rng(static_cast<uint64_t>(seed));
  int64_t kills_delivered = 0;
  for (int64_t generation = 1;; ++generation) {
    if (generation > max_restarts) {
      return Fail("gave up after " + std::to_string(max_restarts) +
                  " generations (is recovery making progress?)");
    }
    const bool armed = kills_delivered < kills;
    const int64_t delay_ms =
        armed ? rng.UniformInt(min_delay_ms, max_delay_ms) : -1;
    if (armed) {
      std::printf("chaos_runner: generation %lld, SIGKILL in %lld ms\n",
                  static_cast<long long>(generation),
                  static_cast<long long>(delay_ms));
    } else {
      std::printf("chaos_runner: generation %lld, running to completion\n",
                  static_cast<long long>(generation));
    }
    std::fflush(stdout);
    const Result<ChildOutcome> ran = RunGeneration(command, delay_ms);
    if (!ran.ok()) {
      return Fail(ran.error());
    }
    const ChildOutcome& outcome = ran.value();
    if (outcome.killed_by_us || outcome.term_signal == SIGKILL) {
      ++kills_delivered;
      continue;  // the whole point: recovery must pick it up
    }
    if (!outcome.exited) {
      return Fail("command died on unexpected signal " +
                  std::to_string(outcome.term_signal));
    }
    if (outcome.exit_status != 0) {
      std::fprintf(stderr, "chaos_runner: command failed with status %d\n",
                   outcome.exit_status);
      return outcome.exit_status;
    }
    std::printf("chaos_runner: completed after %lld kills, %lld generations\n",
                static_cast<long long>(kills_delivered),
                static_cast<long long>(generation));
    break;
  }

  for (const auto& [produced, reference] : pairs.value()) {
    const Result<std::string> got = ReadFileToString(produced);
    if (!got.ok()) {
      return Fail(got.error());
    }
    const Result<std::string> want = ReadFileToString(reference);
    if (!want.ok()) {
      return Fail(want.error());
    }
    if (got.value() != want.value()) {
      return Fail("recovered output " + produced +
                  " differs from uninterrupted reference " + reference);
    }
    std::printf("chaos_runner: %s matches %s\n", produced.c_str(),
                reference.c_str());
  }
  return 0;
}
