// Web-application cluster with a deflation-aware load balancer (the paper's
// footnote 2: "Web-application clusters are another popular cloud workload,
// and can use a deflation-aware load-balancer for cascade deflation").
//
// A cluster of thread-pool web servers sits behind a load balancer. When a
// backend's VM is deflated, its agent shrinks the worker pool and the
// deflation-aware balancer re-weights traffic by each backend's current
// capacity ("serve less traffic from deflated servers", Section 3.2.1). The
// capacity-oblivious baseline keeps an even split and overloads deflated
// backends while the others idle.
#ifndef SRC_APPS_WEB_CLUSTER_H_
#define SRC_APPS_WEB_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/apps/webserver.h"
#include "src/hypervisor/vm.h"

namespace defl {

enum class LoadBalancingPolicy {
  kDeflationAware,  // weight by current backend capacity
  kEvenSplit,       // capacity-oblivious round robin
};

const char* LoadBalancingPolicyName(LoadBalancingPolicy policy);

// Tail-latency model for one deflated web VM (the fig5-style degradation
// curves: performance degrades gracefully up to a knee, then falls off a
// cliff as deflation digs into the working set). Service time inflates with
// the deflation fraction d = 1 - effective/nominal; request latency follows
// an M/M/1 open-loop queue on the deflated capacity.
struct WebLatencyParams {
  double base_service_us = 2000.0;  // undeflated per-request service time
  // Up to `knee_fraction` deflation, service time grows linearly with slope
  // `graceful_slope` (memcached/web tier in fig5: <~2x at 50% deflation).
  double knee_fraction = 0.5;
  double graceful_slope = 0.8;
  // Past the knee the working set no longer fits: a polynomial cliff.
  double cliff_power = 3.0;
  double cliff_scale = 6.0;
  // Open-loop utilization is clamped here so the M/M/1 term stays finite.
  double max_utilization = 0.98;
};

// Latency quantiles of one backend under an offered load, in milliseconds.
struct WebLatencyQuantiles {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double utilization = 0.0;   // after clamping to max_utilization
  double capacity_rps = 0.0;  // service rate at this deflation level
};

// Service-time multiplier at deflation fraction `d` in [0, 1].
double WebServiceTimeInflation(const WebLatencyParams& params, double d);

// Capacity (requests/s) of a backend with `effective_cpus` of compute whose
// service time has been inflated by deflation fraction `d`.
double WebCapacityRps(const WebLatencyParams& params, double effective_cpus,
                      double d);

// Steady-state M/M/1 quantiles for `offered_rps` against the deflated
// capacity: p50 = T ln 2, p99 = T ln 100 with T the mean sojourn time.
WebLatencyQuantiles WebLatencyUnderLoad(const WebLatencyParams& params,
                                        double effective_cpus, double d,
                                        double offered_rps);

struct WebClusterMetrics {
  double offered_rps = 0.0;
  double served_rps = 0.0;   // requests actually completed
  double dropped_rps = 0.0;  // offered beyond a backend's capacity
  // Mean response time over served requests (M/M/1 per backend), us.
  double mean_response_us = 0.0;
  std::vector<double> backend_utilization;
};

class WebCluster {
 public:
  // Creates `num_backends` web servers, each on its own low-priority VM of
  // the given size. VMs are owned by the cluster.
  WebCluster(int num_backends, const ResourceVector& vm_size,
             const WebServerConfig& server_config = {});

  int num_backends() const { return static_cast<int>(backends_.size()); }
  Vm& vm(int backend) { return *backends_[static_cast<size_t>(backend)].vm; }
  WebServerModel& server(int backend) {
    return *backends_[static_cast<size_t>(backend)].server;
  }

  // Total capacity (requests/s) over all backends at current allocations.
  double TotalCapacityRps();

  // Distributes `offered_rps` across backends per the policy and evaluates
  // steady-state throughput and response time.
  WebClusterMetrics Evaluate(double offered_rps, LoadBalancingPolicy policy);

  // Deflates one backend's VM through the full cascade (its agent shrinks
  // the pool); returns what was reclaimed.
  ResourceVector DeflateBackend(int backend, const ResourceVector& target);
  // Reverse cascade for one backend.
  void ReinflateBackend(int backend);

 private:
  struct Backend {
    std::unique_ptr<Vm> vm;
    std::unique_ptr<WebServerModel> server;
  };

  double BackendCapacityRps(Backend& backend);

  std::vector<Backend> backends_;
};

}  // namespace defl

#endif  // SRC_APPS_WEB_CLUSTER_H_
