
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster_manager.cc" "src/cluster/CMakeFiles/defl_cluster.dir/cluster_manager.cc.o" "gcc" "src/cluster/CMakeFiles/defl_cluster.dir/cluster_manager.cc.o.d"
  "/root/repo/src/cluster/cluster_sim.cc" "src/cluster/CMakeFiles/defl_cluster.dir/cluster_sim.cc.o" "gcc" "src/cluster/CMakeFiles/defl_cluster.dir/cluster_sim.cc.o.d"
  "/root/repo/src/cluster/placement.cc" "src/cluster/CMakeFiles/defl_cluster.dir/placement.cc.o" "gcc" "src/cluster/CMakeFiles/defl_cluster.dir/placement.cc.o.d"
  "/root/repo/src/cluster/pricing.cc" "src/cluster/CMakeFiles/defl_cluster.dir/pricing.cc.o" "gcc" "src/cluster/CMakeFiles/defl_cluster.dir/pricing.cc.o.d"
  "/root/repo/src/cluster/trace.cc" "src/cluster/CMakeFiles/defl_cluster.dir/trace.cc.o" "gcc" "src/cluster/CMakeFiles/defl_cluster.dir/trace.cc.o.d"
  "/root/repo/src/cluster/trace_io.cc" "src/cluster/CMakeFiles/defl_cluster.dir/trace_io.cc.o" "gcc" "src/cluster/CMakeFiles/defl_cluster.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/defl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/defl_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/defl_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/defl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/defl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
