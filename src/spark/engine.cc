#include "src/spark/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/logging.h"

namespace defl {

int SparkEngine::Worker::AliveCount() const {
  int n = 0;
  for (const Executor& e : executors) {
    if (e.alive) {
      ++n;
    }
  }
  return n;
}

SparkEngine::SparkEngine(Simulator* sim, SparkWorkload workload, std::vector<Vm*> workers)
    : SparkEngine(sim, std::move(workload), std::move(workers), Config()) {}

SparkEngine::SparkEngine(Simulator* sim, SparkWorkload workload, std::vector<Vm*> workers,
                         const Config& config)
    : sim_(sim), workload_(std::move(workload)), config_(config) {
  assert(sim_ != nullptr && !workers.empty());
  for (Vm* vm : workers) {
    Worker w;
    w.vm = vm;
    const int slots = static_cast<int>(vm->size().cpu());
    for (int s = 0; s < slots; ++s) {
      w.executors.push_back(Executor{ExecutorId{vm->id(), s}, true, {}});
    }
    workers_.push_back(std::move(w));
  }
  BuildStages();
  total_cost_ = workload_.TotalCost();
  outputs_.resize(stages_.size());
  pending_.resize(stages_.size());
  ever_completed_.resize(stages_.size());
  for (size_t s = 0; s < stages_.size(); ++s) {
    outputs_[s].assign(static_cast<size_t>(stages_[s].num_partitions),
                       OutputState::kMissing);
    ever_completed_[s].assign(static_cast<size_t>(stages_[s].num_partitions), 0);
    for (int p = 0; p < stages_[s].num_partitions; ++p) {
      pending_[s].insert(p);
    }
  }
}

void SparkEngine::AttachTelemetry(TelemetryContext* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    metrics_ = {};
    return;
  }
  MetricsRegistry& registry = telemetry_->metrics();
  metrics_.tasks_completed = registry.Counter("spark/engine/tasks_completed");
  metrics_.tasks_killed = registry.Counter("spark/engine/tasks_killed");
  metrics_.rollbacks = registry.Counter("spark/engine/rollbacks");
  metrics_.recomputed_tasks = registry.Counter("spark/engine/recomputed_tasks");
}

void SparkEngine::BuildStages() {
  // Map RDD id -> stage index while walking the (topologically ordered)
  // lineage. A new stage begins at a source, a wide dependency, or a cached
  // parent; otherwise the RDD pipelines into its parent's stage.
  std::vector<int> stage_of(workload_.rdds.size(), -1);
  for (const RddDef& rdd : workload_.rdds) {
    // A second parent (join) always forces a stage boundary.
    const bool new_stage = rdd.parent < 0 || rdd.wide || rdd.parent2 >= 0 ||
                           workload_.rdds[static_cast<size_t>(rdd.parent)].cached;
    if (new_stage) {
      Stage stage;
      stage.members.push_back(rdd.id);
      stage.output_rdd = rdd.id;
      stage.num_partitions = rdd.num_partitions;
      stage.cost_per_task = rdd.cost_per_partition_s;
      stage.wide_input = rdd.wide || rdd.parent2 >= 0;
      stage.input_stage = rdd.parent >= 0 ? stage_of[static_cast<size_t>(rdd.parent)] : -1;
      stage.input_stage2 =
          rdd.parent2 >= 0 ? stage_of[static_cast<size_t>(rdd.parent2)] : -1;
      stage.records_per_task = workload_.records_per_task;
      stages_.push_back(stage);
      stage_of[static_cast<size_t>(rdd.id)] = static_cast<int>(stages_.size()) - 1;
    } else {
      // Narrow, uncached: pipeline into the parent's stage.
      const int s = stage_of[static_cast<size_t>(rdd.parent)];
      Stage& stage = stages_[static_cast<size_t>(s)];
      assert(stage.num_partitions == rdd.num_partitions &&
             "narrow dependency must preserve partitioning");
      stage.members.push_back(rdd.id);
      stage.output_rdd = rdd.id;
      stage.cost_per_task += rdd.cost_per_partition_s;
      stage_of[static_cast<size_t>(rdd.id)] = s;
    }
  }
}

SparkEngine::Worker* SparkEngine::FindWorker(VmId id) {
  for (Worker& w : workers_) {
    if (w.vm->id() == id) {
      return &w;
    }
  }
  return nullptr;
}

const SparkEngine::Worker* SparkEngine::FindWorker(VmId id) const {
  for (const Worker& w : workers_) {
    if (w.vm->id() == id) {
      return &w;
    }
  }
  return nullptr;
}

int SparkEngine::AliveExecutors(VmId id) const {
  const Worker* w = FindWorker(id);
  return w != nullptr ? w->AliveCount() : 0;
}

std::vector<Vm*> SparkEngine::worker_vms() const {
  std::vector<Vm*> out;
  out.reserve(workers_.size());
  for (const Worker& w : workers_) {
    out.push_back(w.vm);
  }
  return out;
}

double SparkEngine::WorkerFootprintMb(VmId id) const {
  const Worker* w = FindWorker(id);
  if (w == nullptr) {
    return 0.0;
  }
  const double spec_mem = w->vm->size().memory_mb();
  const double per_exec_mem = spec_mem * config_.executor_mem_fraction /
                              std::max(w->vm->size().cpu(), 1.0);
  return 0.15 * spec_mem + per_exec_mem * w->AliveCount();
}

double SparkEngine::WorkerActiveTasks(VmId id) const {
  double n = 0;
  for (const RunningTask& t : running_) {
    if (t.executor.vm == id) {
      ++n;
    }
  }
  return n;
}

double SparkEngine::TaskSpeed(const Worker& worker, int active_tasks) const {
  if (active_tasks <= 0 || worker.vm->state() != VmState::kRunning) {
    return 0.0;
  }
  const EffectiveAllocation alloc = worker.vm->allocation();
  const double cpu_rate =
      CappedParallelRate(static_cast<double>(active_tasks), alloc.visible_cpus,
                         alloc.cpu_capacity, config_.costs) /
      static_cast<double>(active_tasks);
  // Fewer concurrent tasks contend less for memory bandwidth and GC.
  const double spec_cpus = std::max(worker.vm->size().cpu(), 1.0);
  const double contention_boost = std::min(
      2.0, std::pow(spec_cpus / static_cast<double>(active_tasks),
                    config_.contention_gamma));
  // Memory demand is the workload's working set, scaled down when executors
  // are killed (self-deflation returns their memory); under VM-level
  // deflation it stays put and the shortfall is swap stalls.
  const double spec_mem = worker.vm->size().memory_mb();
  const double total_slots = std::max(static_cast<double>(worker.executors.size()), 1.0);
  const double demand = spec_mem * workload_.memory_demand_fraction *
                        worker.AliveCount() / total_slots;
  double swap_factor = 1.0;
  if (alloc.memory_overcommitted()) {
    // Resident memory left for executors after the guest's own working set
    // and the residency wasted by blind host paging.
    const double waste_mb =
        BlindPagingWasteMb(alloc.guest_memory_mb, alloc.resident_memory_mb,
                           config_.hv_paging_efficiency);
    const double resident_for_spark =
        alloc.resident_memory_mb - 0.15 * spec_mem - waste_mb;
    const double p_swap =
        LruSwapHitFraction(demand, std::max(resident_for_spark, 0.0), config_.page_zipf_s);
    swap_factor = 1.0 / (1.0 + config_.swap_task_penalty * p_swap);
  }
  // Only the CPU-elastic part of a task slows with reduced CPU capacity;
  // the rest is bandwidth/sync bound.
  const double pf = std::clamp(workload_.cpu_elastic_fraction, 0.0, 1.0);
  const double raw = cpu_rate * contention_boost;
  if (raw <= 0.0) {
    return 0.0;
  }
  const double elastic_speed = 1.0 / ((1.0 - pf) + pf / raw);
  return elastic_speed * swap_factor;
}

bool SparkEngine::StageOutputAvailable(int stage, int partition) const {
  return outputs_[static_cast<size_t>(stage)][static_cast<size_t>(partition)] !=
         OutputState::kMissing;
}

bool SparkEngine::InputsAvailable(int stage, int partition) const {
  const Stage& st = stages_[static_cast<size_t>(stage)];
  // Join input (always shuffle-wide): all partitions required.
  if (st.input_stage2 >= 0) {
    const Stage& in2 = stages_[static_cast<size_t>(st.input_stage2)];
    for (int q = 0; q < in2.num_partitions; ++q) {
      if (!StageOutputAvailable(st.input_stage2, q)) {
        return false;
      }
    }
  }
  if (st.input_stage < 0) {
    return true;
  }
  const Stage& in = stages_[static_cast<size_t>(st.input_stage)];
  if (st.wide_input) {
    for (int q = 0; q < in.num_partitions; ++q) {
      if (!StageOutputAvailable(st.input_stage, q)) {
        return false;
      }
    }
    return true;
  }
  return StageOutputAvailable(st.input_stage, partition);
}

void SparkEngine::EnsureInputsPending() {
  // Missing inputs of pending partitions become pending in their producer
  // stage; iterate to a fixpoint (repairs can cascade down the lineage).
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = static_cast<int>(stages_.size()) - 1; s >= 0; --s) {
      const Stage& st = stages_[static_cast<size_t>(s)];
      if (pending_[static_cast<size_t>(s)].empty()) {
        continue;
      }
      auto need_input = [&](int input_stage, int q) {
        if (StageOutputAvailable(input_stage, q)) {
          return;
        }
        if (pending_[static_cast<size_t>(input_stage)].insert(q).second) {
          changed = true;
        }
      };
      if (st.input_stage2 >= 0) {
        const Stage& in2 = stages_[static_cast<size_t>(st.input_stage2)];
        for (int q = 0; q < in2.num_partitions; ++q) {
          need_input(st.input_stage2, q);
        }
      }
      if (st.input_stage < 0) {
        continue;
      }
      const Stage& in = stages_[static_cast<size_t>(st.input_stage)];
      if (st.wide_input) {
        for (int q = 0; q < in.num_partitions; ++q) {
          need_input(st.input_stage, q);
        }
      } else {
        for (const int p : pending_[static_cast<size_t>(s)]) {
          need_input(st.input_stage, p);
        }
      }
    }
  }
  // Repairs re-run tasks whose input stage may itself have running tasks; a
  // pending partition that is currently being recomputed must not be
  // double-dispatched. Running tasks were removed from pending at dispatch,
  // but a repair insert could re-add them -- filter those out.
  for (const RunningTask& t : running_) {
    pending_[static_cast<size_t>(t.stage)].erase(t.partition);
  }
}

void SparkEngine::MarkOutput(int stage, int partition, const ExecutorId& executor) {
  OutputState& state =
      outputs_[static_cast<size_t>(stage)][static_cast<size_t>(partition)];
  if (state != OutputState::kDurable) {
    state = OutputState::kStored;
  }
  Worker* w = FindWorker(executor.vm);
  assert(w != nullptr);
  w->executors[static_cast<size_t>(executor.slot)].stored.insert({stage, partition});
}

void SparkEngine::InvalidateOutputsOn(const ExecutorId& executor) {
  Worker* w = FindWorker(executor.vm);
  assert(w != nullptr);
  Executor& exec = w->executors[static_cast<size_t>(executor.slot)];
  const int last_stage = static_cast<int>(stages_.size()) - 1;
  for (const auto& [stage, partition] : exec.stored) {
    OutputState& state =
        outputs_[static_cast<size_t>(stage)][static_cast<size_t>(partition)];
    if (state == OutputState::kDurable) {
      continue;  // checkpointed to stable storage
    }
    state = OutputState::kMissing;
    // Final-stage outputs have no downstream consumer to trigger a repair;
    // re-add them directly so the job still completes.
    if (stage == last_stage && !done_) {
      pending_[static_cast<size_t>(stage)].insert(partition);
    }
  }
  exec.stored.clear();
}

void SparkEngine::Start() {
  assert(!started_);
  started_ = true;
  Dispatch();
}

void SparkEngine::Dispatch() {
  if (done_ || !started_ || checkpoint_in_progress_) {
    return;
  }
  EnsureInputsPending();

  // Strict BSP including repairs: work on the lowest stage that has pending
  // or running tasks; later stages wait at the barrier.
  int work_stage = -1;
  for (size_t s = 0; s < stages_.size(); ++s) {
    const bool has_running =
        std::any_of(running_.begin(), running_.end(),
                    [&](const RunningTask& t) { return t.stage == static_cast<int>(s); });
    if (!pending_[s].empty() || has_running) {
      work_stage = static_cast<int>(s);
      break;
    }
  }
  if (work_stage < 0) {
    done_ = true;
    finish_time_ = sim_->now();
    return;
  }

  // Launch pending tasks of the work stage onto free executors, least-loaded
  // worker first (the Spark scheduler's even load distribution).
  const std::vector<int> pending_now(pending_[static_cast<size_t>(work_stage)].begin(),
                                     pending_[static_cast<size_t>(work_stage)].end());
  for (const int p : pending_now) {
    if (!InputsAvailable(work_stage, p)) {
      continue;  // a repair will produce it; revisit on next dispatch
    }
    Worker* best = nullptr;
    int best_slot = -1;
    double best_load = 1e18;
    for (Worker& w : workers_) {
      if (w.vm->state() != VmState::kRunning) {
        continue;
      }
      int free_slot = -1;
      for (const Executor& e : w.executors) {
        if (!e.alive) {
          continue;
        }
        const bool busy = std::any_of(running_.begin(), running_.end(),
                                      [&](const RunningTask& t) { return t.executor == e.id; });
        if (!busy) {
          free_slot = e.id.slot;
          break;
        }
      }
      if (free_slot < 0) {
        continue;
      }
      const double load = WorkerActiveTasks(w.vm->id());
      if (load < best_load) {
        best_load = load;
        best = &w;
        best_slot = free_slot;
      }
    }
    if (best == nullptr) {
      break;  // no free slots anywhere
    }
    StartTask(work_stage, p, *best, best_slot);
  }
}

void SparkEngine::StartTask(int stage, int partition, Worker& worker, int slot) {
  pending_[static_cast<size_t>(stage)].erase(partition);
  RunningTask task;
  task.stage = stage;
  task.partition = partition;
  task.executor = ExecutorId{worker.vm->id(), slot};
  task.work_left = stages_[static_cast<size_t>(stage)].cost_per_task;
  task.segment_start = sim_->now();
  task.speed = 0.0;  // set by RefreshSpeeds below
  running_.push_back(std::move(task));
  RefreshSpeeds(worker.vm->id());
}

void SparkEngine::RefreshSpeeds(VmId id) {
  Worker* w = FindWorker(id);
  if (w == nullptr) {
    return;
  }
  const int active = static_cast<int>(WorkerActiveTasks(id));
  const double speed = TaskSpeed(*w, active);
  for (RunningTask& t : running_) {
    if (t.executor.vm != id) {
      continue;
    }
    // Bank completed work at the old speed, then restart the clock.
    t.work_left = std::max(0.0, t.work_left - t.speed * (sim_->now() - t.segment_start));
    t.segment_start = sim_->now();
    t.speed = speed;
    t.event.Cancel();
    if (speed <= 0.0) {
      continue;  // fully stalled; rescheduled when capacity returns
    }
    const ExecutorId exec = t.executor;
    const int stage = t.stage;
    const int partition = t.partition;
    t.event = sim_->After(t.work_left / speed, [this, exec, stage, partition] {
      for (size_t i = 0; i < running_.size(); ++i) {
        if (running_[i].executor == exec && running_[i].stage == stage &&
            running_[i].partition == partition) {
          FinishTask(i);
          return;
        }
      }
    });
  }
}

void SparkEngine::FinishTask(size_t running_index) {
  RunningTask task = running_[running_index];
  running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(running_index));

  MarkOutput(task.stage, task.partition, task.executor);
  char& done_before =
      ever_completed_[static_cast<size_t>(task.stage)][static_cast<size_t>(task.partition)];
  const Stage& st = stages_[static_cast<size_t>(task.stage)];
  if (done_before == 0) {
    done_before = 1;
    progress_cost_done_ += st.cost_per_task;
  } else {
    ++recomputed_tasks_;
    if (telemetry_ != nullptr) {
      telemetry_->metrics().Add(metrics_.recomputed_tasks);
    }
  }
  completion_log_.push_back(TaskCompletion{sim_->now(), task.stage, st.records_per_task});
  if (telemetry_ != nullptr) {
    telemetry_->metrics().Add(metrics_.tasks_completed);
  }

  RefreshSpeeds(task.executor.vm);

  // Stage barrier bookkeeping: if this stage is drained, consider a
  // checkpoint before moving on.
  const bool stage_drained =
      pending_[static_cast<size_t>(task.stage)].empty() &&
      std::none_of(running_.begin(), running_.end(),
                   [&](const RunningTask& t) { return t.stage == task.stage; });
  if (stage_drained) {
    MaybeCheckpoint(task.stage);
  }
  Dispatch();
}

void SparkEngine::MaybeCheckpoint(int completed_stage) {
  if (workload_.checkpoint_every_stages <= 0 || checkpoint_in_progress_) {
    return;
  }
  if (!stages_[static_cast<size_t>(completed_stage)].wide_input) {
    return;  // only iteration (shuffle) stages advance the model
  }
  if (completed_stage <= last_durable_stage_) {
    return;  // re-execution of already-checkpointed work
  }
  ++stages_since_checkpoint_;
  if (stages_since_checkpoint_ < workload_.checkpoint_every_stages) {
    return;
  }
  checkpoint_in_progress_ = true;
  sim_->After(workload_.checkpoint_cost_s, [this, completed_stage] {
    for (int s = 0; s <= completed_stage; ++s) {
      for (auto& state : outputs_[static_cast<size_t>(s)]) {
        if (state == OutputState::kStored) {
          state = OutputState::kDurable;
        }
      }
    }
    last_durable_stage_ = completed_stage;
    stages_since_checkpoint_ = 0;
    checkpoint_in_progress_ = false;
    Dispatch();
  });
}

void SparkEngine::KillTasksOn(const ExecutorId& executor) {
  int64_t killed = 0;
  for (size_t i = running_.size(); i-- > 0;) {
    RunningTask& t = running_[i];
    if (t.executor == executor) {
      t.event.Cancel();
      pending_[static_cast<size_t>(t.stage)].insert(t.partition);
      running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
      ++tasks_killed_;
      ++killed;
    }
  }
  if (killed > 0 && telemetry_ != nullptr) {
    telemetry_->metrics().Add(metrics_.tasks_killed, killed);
    telemetry_->trace().Record(TraceEventKind::kTaskKill, CascadeLayer::kApplication,
                               executor.vm, -1, ResourceVector::Zero(),
                               ResourceVector::Zero(), static_cast<int32_t>(killed));
  }
}

void SparkEngine::OnTaskKilled() {
  if (workload_.synchronous) {
    RollbackToCheckpoint();
  }
}

void SparkEngine::RollbackToCheckpoint() {
  ++rollbacks_;
  // The in-flight iteration is invalid: kill everything still running.
  for (RunningTask& t : running_) {
    t.event.Cancel();
    pending_[static_cast<size_t>(t.stage)].insert(t.partition);
    ++tasks_killed_;
  }
  if (telemetry_ != nullptr) {
    MetricsRegistry& registry = telemetry_->metrics();
    registry.Add(metrics_.rollbacks);
    registry.Add(metrics_.tasks_killed, static_cast<int64_t>(running_.size()));
    telemetry_->trace().Record(TraceEventKind::kRollback, CascadeLayer::kApplication,
                               -1, -1, ResourceVector::Zero(), ResourceVector::Zero(),
                               static_cast<int32_t>(running_.size()));
  }
  running_.clear();
  // Model state after the last checkpoint is lost: invalidate the outputs of
  // every non-durable iteration (wide) stage. Cached input data on surviving
  // executors is not model state and survives.
  for (size_t s = 0; s < stages_.size(); ++s) {
    if (!stages_[s].wide_input || static_cast<int>(s) <= last_durable_stage_) {
      continue;
    }
    for (int p = 0; p < stages_[s].num_partitions; ++p) {
      OutputState& state = outputs_[s][static_cast<size_t>(p)];
      if (state == OutputState::kStored) {
        state = OutputState::kMissing;
        pending_[s].insert(p);
        // Remove stale store records.
        for (Worker& w : workers_) {
          for (Executor& e : w.executors) {
            e.stored.erase({static_cast<int>(s), p});
          }
        }
      }
    }
  }
}

ResourceVector SparkEngine::SelfDeflateVm(VmId id, const ResourceVector& target) {
  Worker* w = FindWorker(id);
  if (w == nullptr) {
    return ResourceVector::Zero();
  }
  const double per_exec_mem = w->vm->size().memory_mb() * config_.executor_mem_fraction /
                              std::max(w->vm->size().cpu(), 1.0);
  // The driver reduces parallelism in proportion to the dominant deflation
  // fraction: a 50% request kills half the executors. Memory the dead
  // executors held is returned; any shortfall against the raw target falls
  // through to the lower cascade layers (best-effort self-deflation).
  double fraction = 0.0;
  for (const ResourceKind kind : kAllResources) {
    if (w->vm->size()[kind] > 0.0) {
      fraction = std::max(fraction, target[kind] / w->vm->size()[kind]);
    }
  }
  const int total_slots = static_cast<int>(w->executors.size());
  const int want_kill =
      std::clamp(static_cast<int>(std::llround(fraction * total_slots)), 0,
                 w->AliveCount());
  int to_kill = want_kill;
  if (to_kill == 0) {
    return ResourceVector::Zero();
  }
  bool killed_any_task = false;
  // Kill from the highest slot down (deterministic; Spark blacklists whole
  // executors regardless of what they hold).
  for (int s = static_cast<int>(w->executors.size()) - 1; s >= 0 && to_kill > 0; --s) {
    Executor& e = w->executors[static_cast<size_t>(s)];
    if (!e.alive) {
      continue;
    }
    const bool was_busy = std::any_of(running_.begin(), running_.end(),
                                      [&](const RunningTask& t) { return t.executor == e.id; });
    killed_any_task = killed_any_task || was_busy;
    KillTasksOn(e.id);
    InvalidateOutputsOn(e.id);
    e.alive = false;
    --to_kill;
  }
  const int killed = want_kill - to_kill;
  if (killed_any_task || workload_.synchronous) {
    OnTaskKilled();
  }
  RefreshSpeeds(id);
  Dispatch();
  return ResourceVector(static_cast<double>(killed), killed * per_exec_mem);
}

void SparkEngine::ReinflateVm(VmId id, const ResourceVector& added) {
  Worker* w = FindWorker(id);
  if (w == nullptr || w->vm->state() != VmState::kRunning) {
    return;
  }
  int revive = static_cast<int>(added.cpu());
  for (Executor& e : w->executors) {
    if (revive <= 0) {
      break;
    }
    if (!e.alive) {
      e.alive = true;
      e.stored.clear();
      --revive;
    }
  }
  RefreshSpeeds(id);
  Dispatch();
}

void SparkEngine::PreemptVm(VmId id) {
  Worker* w = FindWorker(id);
  if (w == nullptr) {
    return;
  }
  bool killed_any_task = false;
  for (Executor& e : w->executors) {
    if (!e.alive) {
      continue;
    }
    const bool was_busy = std::any_of(running_.begin(), running_.end(),
                                      [&](const RunningTask& t) { return t.executor == e.id; });
    killed_any_task = killed_any_task || was_busy;
    KillTasksOn(e.id);
    InvalidateOutputsOn(e.id);
    e.alive = false;
  }
  w->vm->set_state(VmState::kPreempted);
  if (killed_any_task || workload_.synchronous) {
    OnTaskKilled();
  }
  Dispatch();
}

void SparkEngine::OnAllocationChanged() {
  for (Worker& w : workers_) {
    RefreshSpeeds(w.vm->id());
  }
  Dispatch();
}

double SparkEngine::Progress() const {
  if (total_cost_ <= 0.0) {
    return 0.0;
  }
  return std::min(1.0, progress_cost_done_ / total_cost_);
}

double SparkEngine::SyncCostFraction() const {
  double sync_cost = 0.0;
  double total = 0.0;
  for (const Stage& st : stages_) {
    const double cost = st.cost_per_task * st.num_partitions;
    total += cost;
    if (st.wide_input) {
      sync_cost += cost;
    }
  }
  return total > 0.0 ? sync_cost / total : 0.0;
}

bool SparkEngine::ShuffleImminent() const {
  // The stage currently at the barrier: if it is a shuffle (wide input),
  // killed tasks will need to refetch inputs that may die with their
  // executors -- worst-case recomputation (Section 4.1).
  for (size_t s = 0; s < stages_.size(); ++s) {
    const bool has_work =
        !pending_[s].empty() ||
        std::any_of(running_.begin(), running_.end(),
                    [&](const RunningTask& t) { return t.stage == static_cast<int>(s); });
    if (has_work) {
      return stages_[s].wide_input;
    }
  }
  return false;
}

SparkPolicyInputs SparkEngine::MakePolicyInputs(
    const std::vector<double>& deflation_fractions) const {
  SparkPolicyInputs inputs;
  inputs.progress_c = Progress();
  inputs.deflation_fractions = deflation_fractions;
  inputs.r_estimate = SyncCostFraction();
  inputs.shuffle_imminent = ShuffleImminent();
  inputs.synchronous_job = workload_.synchronous;
  return inputs;
}

}  // namespace defl
