#include "src/cluster/cluster_manager.h"

#include <gtest/gtest.h>

#include <memory>

namespace defl {
namespace {

std::unique_ptr<Vm> MakeVm(VmId id, double cpus, double mem_mb,
                           VmPriority priority = VmPriority::kLow,
                           double min_fraction = 0.0) {
  VmSpec spec;
  spec.name = "vm" + std::to_string(id);
  spec.size = ResourceVector(cpus, mem_mb);
  spec.priority = priority;
  spec.min_size = spec.size * min_fraction;
  return std::make_unique<Vm>(id, spec);
}

ClusterConfig DeflationConfig() {
  ClusterConfig config;
  config.strategy = ReclamationStrategy::kDeflation;
  config.controller.mode = DeflationMode::kVmLevel;
  return config;
}

TEST(ClusterManagerTest, LaunchPlacesOnFreeServer) {
  ClusterManager manager(2, ResourceVector(16.0, 65536.0), DeflationConfig());
  const Result<ServerId> placed = manager.LaunchVm(MakeVm(1, 8.0, 32768.0));
  ASSERT_TRUE(placed.ok());
  EXPECT_NE(manager.FindVm(1), nullptr);
  EXPECT_EQ(manager.counters().launched, 1);
  EXPECT_EQ(manager.ServerOf(1)->id(), placed.value());
}

TEST(ClusterManagerTest, OverflowTriggersDeflation) {
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), DeflationConfig());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 16.0, 65536.0)).ok());  // fills server
  const Result<ServerId> placed =
      manager.LaunchVm(MakeVm(2, 8.0, 32768.0, VmPriority::kHigh));
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(manager.counters().deflation_ops, 1);
  EXPECT_EQ(manager.counters().preempted, 0);
  // The low-priority VM shrank to make room.
  EXPECT_LE(manager.FindVm(1)->effective().cpu(), 8.0 + 1e-9);
}

TEST(ClusterManagerTest, DeflationPreemptsOnlyBelowMinimums) {
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), DeflationConfig());
  // Two low-pri VMs with high minimums: deflation alone cannot yield 12 CPUs.
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 8.0, 32768.0, VmPriority::kLow, 0.75)).ok());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(2, 8.0, 32768.0, VmPriority::kLow, 0.75)).ok());
  const Result<ServerId> placed =
      manager.LaunchVm(MakeVm(3, 12.0, 49152.0, VmPriority::kHigh));
  ASSERT_TRUE(placed.ok());
  EXPECT_GE(manager.counters().preempted, 1);
  EXPECT_EQ(manager.TakePreempted().size(), manager.counters().preempted);
}

TEST(ClusterManagerTest, PreemptionOnlyStrategyRevokesInsteadOfDeflating) {
  ClusterConfig config;
  config.strategy = ReclamationStrategy::kPreemptionOnly;
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), config);
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 12.0, 49152.0)).ok());
  const Result<ServerId> placed =
      manager.LaunchVm(MakeVm(2, 8.0, 32768.0, VmPriority::kHigh));
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(manager.counters().preempted, 1);
  EXPECT_EQ(manager.counters().deflation_ops, 0);
  EXPECT_EQ(manager.FindVm(1), nullptr);
}

TEST(ClusterManagerTest, PreemptionOnlyLowPriorityCannotDisplace) {
  ClusterConfig config;
  config.strategy = ReclamationStrategy::kPreemptionOnly;
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), config);
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 12.0, 49152.0)).ok());
  // A low-priority arrival that does not fit in free space is rejected.
  const Result<ServerId> placed = manager.LaunchVm(MakeVm(2, 8.0, 32768.0));
  EXPECT_FALSE(placed.ok());
  EXPECT_EQ(manager.counters().rejected, 1);
}

TEST(ClusterManagerTest, HighPriorityNeverPreempted) {
  ClusterConfig config;
  config.strategy = ReclamationStrategy::kPreemptionOnly;
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), config);
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 16.0, 65536.0, VmPriority::kHigh)).ok());
  const Result<ServerId> placed =
      manager.LaunchVm(MakeVm(2, 8.0, 32768.0, VmPriority::kHigh));
  EXPECT_FALSE(placed.ok());
  EXPECT_NE(manager.FindVm(1), nullptr);
}

TEST(ClusterManagerTest, CompletionReinflatesDeflatedNeighbors) {
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), DeflationConfig());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 16.0, 65536.0)).ok());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(2, 8.0, 32768.0, VmPriority::kHigh)).ok());
  ASSERT_LT(manager.FindVm(1)->effective().cpu(), 16.0);
  manager.CompleteVm(2);
  EXPECT_EQ(manager.counters().completed, 1);
  // The freed resources flowed back.
  EXPECT_NEAR(manager.FindVm(1)->effective().cpu(), 16.0, 1e-6);
}

TEST(ClusterManagerTest, UtilizationAndOvercommitmentMetrics) {
  ClusterManager manager(2, ResourceVector(16.0, 65536.0), DeflationConfig());
  EXPECT_DOUBLE_EQ(manager.Utilization(), 0.0);
  EXPECT_DOUBLE_EQ(manager.Overcommitment(), 0.0);
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 16.0, 65536.0)).ok());
  EXPECT_DOUBLE_EQ(manager.Utilization(), 0.5);
  EXPECT_DOUBLE_EQ(manager.Overcommitment(), 0.5);
  // Deflate by launching a high-priority VM on the same server.
  ASSERT_TRUE(manager.LaunchVm(MakeVm(2, 16.0, 65536.0, VmPriority::kHigh)).ok());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(3, 16.0, 65536.0, VmPriority::kHigh)).ok());
  // Nominal demand 48 CPUs on 32: overcommitted 1.5x.
  EXPECT_DOUBLE_EQ(manager.Overcommitment(), 1.5);
  const std::vector<double> per_server = manager.PerServerOvercommitment();
  EXPECT_EQ(per_server.size(), 2u);
}

TEST(ClusterManagerTest, RejectsWhenClusterExhausted) {
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), DeflationConfig());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 16.0, 65536.0, VmPriority::kHigh)).ok());
  EXPECT_FALSE(manager.LaunchVm(MakeVm(2, 16.0, 65536.0, VmPriority::kHigh)).ok());
  EXPECT_EQ(manager.counters().rejected, 1);
}

TEST(ClusterManagerTest, CompleteUnknownVmIsNoOp) {
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), DeflationConfig());
  manager.CompleteVm(42);
  EXPECT_EQ(manager.counters().completed, 0);
}

TEST(ClusterManagerTest, PreemptionUnregistersVictimAgents) {
  ClusterConfig config;
  config.strategy = ReclamationStrategy::kPreemptionOnly;
  ClusterManager manager(1, ResourceVector(16.0, 65536.0), config);
  const Result<ServerId> low = manager.LaunchVm(MakeVm(1, 12.0, 49152.0));
  ASSERT_TRUE(low.ok());
  InelasticAgent agent(1024.0);
  manager.controller(low.value())->RegisterAgent(1, &agent);
  ASSERT_NE(manager.controller(low.value())->FindAgent(1), nullptr);

  // The high-priority arrival revokes VM 1; its agent registration must not
  // outlive it (a later VM could reuse the id and inherit a stale agent).
  ASSERT_TRUE(manager.LaunchVm(MakeVm(2, 8.0, 32768.0, VmPriority::kHigh)).ok());
  EXPECT_EQ(manager.counters().preempted, 1);
  EXPECT_EQ(manager.FindVm(1), nullptr);
  EXPECT_EQ(manager.controller(low.value())->FindAgent(1), nullptr);
  // The preempted VM is also gone from the index: completing it is a no-op.
  manager.CompleteVm(1);
  EXPECT_EQ(manager.counters().completed, 0);
}

TEST(ClusterManagerTest, FailedReclamationRollsBackCollateralDeflation) {
  // OS-only deflation genuinely under-delivers: forced hot-unplug cannot
  // take the last CPU (min_cpus) or the kernel reserve, and unplugged memory
  // pays the efficiency tax. So a demand within the VM's nominal deflatable
  // headroom can still fail -- and the failed attempt must not leave the
  // survivor shrunken for an arrival that was rejected.
  ClusterConfig config = DeflationConfig();
  config.controller.mode = DeflationMode::kOsOnly;
  ClusterManager manager(1, ResourceVector(16.0, 16384.0), config);
  ASSERT_TRUE(manager.LaunchVm(MakeVm(1, 8.0, 8192.0)).ok());
  ASSERT_TRUE(manager.LaunchVm(MakeVm(2, 8.0, 8192.0, VmPriority::kHigh)).ok());
  ASSERT_NEAR(manager.FindVm(1)->effective().cpu(), 8.0, 1e-9);

  // Feasible on paper (deflatable = 8 CPU / 8192 MB) but un-unpluggable in
  // practice: VM 1 can surrender at most 7 CPUs.
  const Result<ServerId> placed =
      manager.LaunchVm(MakeVm(3, 8.0, 7500.0, VmPriority::kHigh));
  EXPECT_FALSE(placed.ok());
  EXPECT_EQ(manager.counters().rejected, 1);
  EXPECT_EQ(manager.FindVm(3), nullptr);
  // VM 1 is back at its pre-attempt effective size.
  EXPECT_NEAR(manager.FindVm(1)->effective().cpu(), 8.0, 1e-6);
  EXPECT_NEAR(manager.FindVm(1)->effective().memory_mb(), 8192.0, 1e-6);
}

TEST(ClusterManagerTest, VmIndexFollowsCrashEvacuation) {
  ClusterManager manager(2, ResourceVector(16.0, 65536.0), DeflationConfig());
  const Result<ServerId> placed = manager.LaunchVm(MakeVm(1, 8.0, 32768.0));
  ASSERT_TRUE(placed.ok());
  const ServerId original = placed.value();
  manager.CrashServer(original);
  // The VM was re-placed on the surviving server and the index followed it.
  Server* now = manager.ServerOf(1);
  ASSERT_NE(now, nullptr);
  EXPECT_NE(now->id(), original);
  EXPECT_EQ(manager.FindVm(1), now->FindVm(1));
  manager.CompleteVm(1);
  EXPECT_EQ(manager.FindVm(1), nullptr);
  EXPECT_EQ(manager.counters().completed, 1);
}

}  // namespace
}  // namespace defl
