# Empty compiler generated dependencies file for fig8c_preemption_probability.
# This may be replaced when dependencies are built.
