// Binds a running Spark job to the cluster management plane: each worker VM
// gets a DeflationAgent that relays cascade requests to the Spark driver
// (Section 5: "Spark workers relay the deflation requests to the Spark
// master, which then executes the policy, and returns the amount of
// relinquished resources on each worker"). The driver runs the Section 4.1
// policy once per deflation round; if it chooses self-deflation the agents
// kill executors and report the freed resources, otherwise they decline and
// the cascade falls through to OS/hypervisor reclamation. Reinflation
// notifications revive executors.
#ifndef SRC_SPARK_CLUSTER_BINDING_H_
#define SRC_SPARK_CLUSTER_BINDING_H_

#include <memory>
#include <vector>

#include "src/core/local_controller.h"
#include "src/spark/engine.h"

namespace defl {

class SparkClusterBinding {
 public:
  // Registers one agent per engine worker VM with the controller. Borrowed
  // pointers; the binding must outlive neither.
  SparkClusterBinding(SparkEngine* engine, LocalController* controller,
                      Simulator* sim);
  ~SparkClusterBinding();

  SparkClusterBinding(const SparkClusterBinding&) = delete;
  SparkClusterBinding& operator=(const SparkClusterBinding&) = delete;

  // Call after the controller deflated/reinflated VMs so in-flight task
  // speeds pick up the new allocations.
  void SyncAllocations() { engine_->OnAllocationChanged(); }

  // Number of deflation rounds in which the driver chose self-deflation /
  // declined (VM-level).
  int self_deflation_rounds() const { return self_rounds_; }
  int vm_level_rounds() const { return vm_rounds_; }

 private:
  class VmAgent;

  // Policy decision shared by all agents within one deflation round (same
  // simulated timestamp).
  SparkDeflationChoice DecideRound(double now, double fraction);

  SparkEngine* engine_;
  LocalController* controller_;
  Simulator* sim_;
  std::vector<std::unique_ptr<VmAgent>> agents_;
  std::vector<VmId> registered_;

  double round_time_ = -1.0;
  SparkDeflationChoice round_choice_ = SparkDeflationChoice::kVmLevel;
  int self_rounds_ = 0;
  int vm_rounds_ = 0;
};

}  // namespace defl

#endif  // SRC_SPARK_CLUSTER_BINDING_H_
