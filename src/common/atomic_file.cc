#include "src/common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/crash_point.h"

namespace defl {
namespace {

std::string ErrnoText() { return std::strerror(errno); }

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

}  // namespace

void SyncParentDir(const std::string& path) {
  const int fd = ::open(ParentDir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return;
  }
  ::fsync(fd);  // best-effort: some filesystems refuse directory fsync
  ::close(fd);
}

Result<bool> WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Error{"cannot open " + tmp + " for writing: " + ErrnoText()};
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const std::string error = ErrnoText();
      ::close(fd);
      return Error{"short write to " + tmp + ": " + error};
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string error = ErrnoText();
    ::close(fd);
    return Error{"fsync failed on " + tmp + ": " + error};
  }
  ::close(fd);
  // Chaos window: the complete tmp file is durable but the destination still
  // holds the previous version (or nothing).
  CrashPoint("atomic-tmp-synced");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Error{"cannot rename " + tmp + " into place as " + path + ": " +
                 ErrnoText()};
  }
  // The rename only becomes power-loss durable once the directory entry is
  // synced; until then a reader in THIS boot already sees the new file.
  SyncParentDir(path);
  CrashPoint("atomic-renamed");
  return true;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{"cannot open file " + path};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Error{"read error on file " + path};
  }
  return std::move(buffer).str();
}

}  // namespace defl
