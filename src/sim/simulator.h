// Discrete-event simulation kernel. A Simulator owns a virtual clock and a
// priority queue of scheduled events; events are callbacks executed in
// (time, sequence) order so same-time events run in scheduling order,
// which keeps every experiment deterministic.
//
// The Spark engine, the cluster manager, and the timeline benches all run on
// this kernel; the analytic application models do not need it.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace defl {

// Simulated time in seconds.
using SimTime = double;

// Handle that allows cancelling a scheduled event. Cancellation is lazy: the
// event stays in the queue but is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  // False if the event already ran or was cancelled, or the handle is empty.
  bool pending() const { return state_ != nullptr && !*state_; }
  void Cancel();

 private:
  friend class Simulator;
  // Shared "cancelled" flag; the queue entry holds the other reference.
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}
  std::shared_ptr<bool> state_;
};

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= now).
  EventHandle At(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle After(SimTime delay, std::function<void()> fn);

  // Schedules `fn` every `period` seconds, first firing at now + period,
  // until the returned handle is cancelled or the run limit stops the sim.
  EventHandle Every(SimTime period, std::function<void()> fn);

  // Runs until the queue is empty or `until` is reached (events strictly
  // after `until` remain queued; the clock advances to `until`).
  void Run(SimTime until = kNoLimit);

  // Runs exactly one event if any is due; returns false when queue is empty.
  bool Step();

  int64_t events_executed() const { return events_executed_; }

  static constexpr SimTime kNoLimit = -1.0;

 private:
  struct Entry {
    SimTime when;
    int64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  EventHandle Push(SimTime when, std::function<void()> fn);

  SimTime now_ = 0.0;
  int64_t next_seq_ = 0;
  int64_t events_executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace defl

#endif  // SRC_SIM_SIMULATOR_H_
