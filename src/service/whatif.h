// WhatIfService: the serving core of `deflation_server` (DESIGN.md §15).
// Loads one snapshot blob into immutable shared memory, then answers
// what-if queries by forking copy-on-restore child sessions off it:
//
//   Result<WhatIfService> service = WhatIfService::Load(std::move(blob));
//   std::string report = service.value().AnswerBatch(queries, /*workers=*/8);
//
// Isolation model: every query gets its own SimSession (restored zero-copy
// via SimSession::RestoreView), its own fresh TelemetryContext, and an
// inline (threads=1) pool, so concurrent queries share exactly one thing --
// the const blob -- and an answer depends only on (blob, query). That is
// what makes AnswerBatch byte-identical at every worker count: results are
// written into a slot per query and joined in input order.
#ifndef SRC_SERVICE_WHATIF_H_
#define SRC_SERVICE_WHATIF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/sim_session.h"
#include "src/common/result.h"
#include "src/service/query.h"

namespace defl {

class WhatIfService {
 public:
  // Takes ownership of the snapshot blob and validates it with one probe
  // restore; a corrupt or version-skewed blob fails here, not per query.
  static Result<WhatIfService> Load(std::string blob);

  // Executes one query on a private child session and renders the answer as
  // a single JSON line (fixed key order, deterministic number rendering).
  // Fails only on restore errors; query-level outcomes (e.g. every
  // placement rejected) are data in the answer, not errors.
  Result<std::string> Answer(const WhatIfQuery& query) const;

  // Answers every query, fanning over `workers` threads (<= 1 = serial on
  // the caller), and joins the lines in input order with a trailing
  // `# batch` footer carrying the query count and an FNV-1a-64 digest of
  // the lines. Output is byte-identical for every worker count. A query
  // whose restore fails yields an {"error": ...} line in its slot.
  std::string AnswerBatch(const std::vector<WhatIfQuery>& queries,
                          int workers) const;

  // Forks a private child session off the shared blob. `telemetry` must be
  // fresh; `placement` >= 0 overrides the future placement policy (the
  // sweep orchestrator's policy axis); `slo` (when non-null and active)
  // overrides the interactive-serving SLO config on the child, enabling it
  // if the snapshot ran without one. Children restore with threads=1:
  // queries parallelize across sessions, never inside one.
  Result<SimSession> RestoreChild(
      TelemetryContext* telemetry, int placement = -1,
      const SimSession::RestoreOptions::SloOverride* slo = nullptr) const;

  // FNV-1a-64 of the base blob; the property suite re-hashes after a
  // concurrent batch to prove no query wrote through the shared bytes.
  uint64_t blob_fnv() const { return blob_fnv_; }
  // Virtual clock / horizon of the base snapshot, from the probe restore.
  double base_now_s() const { return base_now_s_; }
  double base_duration_s() const { return base_duration_s_; }
  const std::string& blob() const { return *blob_; }

 private:
  explicit WhatIfService(std::shared_ptr<const std::string> blob)
      : blob_(std::move(blob)) {}

  std::shared_ptr<const std::string> blob_;
  uint64_t blob_fnv_ = 0;
  double base_now_s_ = 0.0;
  double base_duration_s_ = 0.0;
};

}  // namespace defl

#endif  // SRC_SERVICE_WHATIF_H_
