// End-to-end Spark deflation experiments (Section 6.2): run a workload on a
// cluster of worker VMs, apply resource pressure mid-run through one of the
// compared reclamation approaches, and measure the makespan.
//
//   * kVmLevel     -- decline self-deflation; OS + hypervisor reclaim
//                     underneath (stragglers emerge from the BSP barrier);
//   * kSelf        -- the driver kills executors and returns resources
//                     voluntarily (recomputation of lost lineage emerges);
//   * kCascadePolicy -- the Section 4.1 policy picks between the two from
//                     the Equation 1/3 estimates;
//   * kPreemption  -- the public-cloud baseline: whole VMs are revoked;
//   * kNone        -- undisturbed baseline run.
#ifndef SRC_SPARK_EXPERIMENT_H_
#define SRC_SPARK_EXPERIMENT_H_

#include <memory>
#include <vector>

#include "src/faults/fault_injector.h"
#include "src/spark/engine.h"
#include "src/spark/policy.h"
#include "src/spark/workload.h"

namespace defl {

enum class SparkReclamationApproach {
  kNone,
  kCascadePolicy,
  kSelfDeflation,
  kVmLevel,
  kPreemption,
};

const char* SparkReclamationApproachName(SparkReclamationApproach approach);

struct SparkExperimentConfig {
  int num_workers = 8;
  // Worker VM size (the driver runs on a separate non-deflatable VM).
  ResourceVector worker_size = ResourceVector(4.0, 16.0 * 1024.0, 200.0, 1250.0);
  SparkReclamationApproach approach = SparkReclamationApproach::kNone;
  // Fraction of every worker's resources reclaimed (CPU, memory, I/O).
  double deflation_fraction = 0.0;
  // Trigger when job progress first reaches this fraction (Section 6.2
  // deflates "roughly 50% into their execution")...
  double deflate_at_progress = 0.5;
  // ...or at an absolute time if >= 0 (overrides the progress trigger).
  double deflate_at_time_s = -1.0;
  // If >= 0, pressure ends this many seconds after deflation: resources are
  // returned and VMs reinflate (Figure 7b).
  double reinflate_after_s = -1.0;
  SparkEngine::Config engine;
  double sim_time_limit_s = 400000.0;
  // Optional telemetry sink: the engine, the cascade controller, and the
  // policy all publish through it; its clock follows the experiment's
  // simulator for the duration of the run.
  TelemetryContext* telemetry = nullptr;
  // Optional failure injection (DESIGN.md §8): partial-unplug faults in the
  // workers' guest OSes and hypervisor latency spikes in the cascade.
  FaultInjector* faults = nullptr;
};

struct SparkExperimentResult {
  double makespan_s = 0.0;
  bool completed = false;
  bool deflation_applied = false;
  // Only meaningful for kCascadePolicy.
  SparkPolicyDecision decision;
  int64_t tasks_killed = 0;
  int64_t recomputed_tasks = 0;
  int64_t rollbacks = 0;
  std::vector<SparkEngine::TaskCompletion> completion_log;
};

SparkExperimentResult RunSparkExperiment(const SparkWorkload& workload,
                                         const SparkExperimentConfig& config);

// Convenience: makespan of the undisturbed run (kNone), for normalization.
double SparkBaselineMakespan(const SparkWorkload& workload,
                             const SparkExperimentConfig& config);

}  // namespace defl

#endif  // SRC_SPARK_EXPERIMENT_H_
