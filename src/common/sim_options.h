// Shared command-line surface for the simulation tools (deflation_sim,
// spark_sim): one place registers the flags both drivers accept, with one
// help string and one error wording, so `--metrics-out` behaves identically
// everywhere. Tool-specific flags still register on flags() directly; all
// of them inherit FlagParser's strictness (unknown-flag suggestions,
// duplicate-occurrence rejection, typed value errors).
#ifndef SRC_COMMON_SIM_OPTIONS_H_
#define SRC_COMMON_SIM_OPTIONS_H_

#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/result.h"

namespace defl {

// The flags every simulation tool accepts.
struct SimCommonOptions {
  std::string metrics_out;   // write the metrics registry to this JSON file
  std::string trace_out;     // write the deflation event trace to this JSONL file
  std::string fault_plan;    // inject failures from this fault plan file
};

class SimOptionsParser {
 public:
  // Registers the SimCommonOptions flags up front so they appear first in
  // --help with identical wording in every tool.
  explicit SimOptionsParser(std::string program_description);

  // Register tool-specific flags here before calling Parse().
  FlagParser& flags() { return parser_; }
  const SimCommonOptions& common() const { return common_; }

  // Parses argv; on success returns positional arguments (see
  // FlagParser::Parse for --help and error semantics).
  Result<std::vector<std::string>> Parse(int argc, const char* const* argv);

 private:
  FlagParser parser_;
  SimCommonOptions common_;
};

// Usage error for flags that cannot be combined, with one wording for every
// tool: "--a and --b cannot be combined (<reason>)". Returns ok when at most
// one of the two is set.
Result<bool> RejectFlagCombination(const std::string& flag_a, bool a_set,
                                   const std::string& flag_b, bool b_set,
                                   const std::string& reason);

}  // namespace defl

#endif  // SRC_COMMON_SIM_OPTIONS_H_
