// Adversarial property test for the wire protocol (DESIGN.md §8): encode/
// decode round-trips for arbitrary well-formed messages, and DecodeMessage
// must reject -- never crash on, never silently accept -- truncated lines,
// corrupted bytes, duplicated fields, non-finite numerics, and oversized
// input. Seeded from DEFL_FAULT_SEED so CI can run a seed matrix.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/protocol.h"

namespace defl {
namespace {

uint64_t TestSeed() {
  const char* env = std::getenv("DEFL_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

DeflationMessage RandomMessage(Rng& rng) {
  DeflationMessage message;
  constexpr DeflationMessageKind kKinds[] = {
      DeflationMessageKind::kDeflateRequest, DeflationMessageKind::kDeflateResponse,
      DeflationMessageKind::kReinflateNotice, DeflationMessageKind::kFootprintQuery,
      DeflationMessageKind::kFootprintReport};
  message.kind = kKinds[rng.UniformInt(0, 4)];
  message.vm_id = rng.UniformInt(0, 1 << 20);
  message.sequence = rng.UniformInt(0, 1 << 30);
  // Amounts stay within 6 significant digits so the %.6g wire encoding is
  // exact and the round-trip can be compared with EXPECT_DOUBLE_EQ.
  message.amount = ResourceVector(rng.UniformInt(0, 128), rng.UniformInt(0, 900000),
                                  rng.UniformInt(0, 4000), rng.UniformInt(0, 40000));
  return message;
}

TEST(ProtocolRoundTripTest, EncodeDecodeRoundTrips) {
  Rng rng(TestSeed());
  for (int i = 0; i < 500; ++i) {
    const DeflationMessage message = RandomMessage(rng);
    const Result<DeflationMessage> decoded = DecodeMessage(EncodeMessage(message));
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    EXPECT_EQ(decoded.value().kind, message.kind);
    EXPECT_EQ(decoded.value().vm_id, message.vm_id);
    EXPECT_EQ(decoded.value().sequence, message.sequence);
    for (const ResourceKind kind : kAllResources) {
      // %.6g encoding: integral values up to 2^20 survive exactly.
      EXPECT_DOUBLE_EQ(decoded.value().amount[kind], message.amount[kind]);
    }
  }
}

// A decode result is acceptable if it errored, or if it parsed into sane
// values. What is never acceptable: crashes, non-finite amounts, or ids
// that silently wrapped.
void ExpectSaneDecode(const std::string& line) {
  const Result<DeflationMessage> decoded = DecodeMessage(line);
  if (!decoded.ok()) {
    return;
  }
  const DeflationMessage& message = decoded.value();
  EXPECT_EQ(message.vm_id, message.vm_id);  // not NaN-poisoned
  for (const ResourceKind kind : kAllResources) {
    const double v = message.amount[kind];
    EXPECT_TRUE(v == v && v < 1e300 && v > -1e300) << "non-finite in: " << line;
  }
}

TEST(ProtocolAdversarialTest, TruncatedLinesNeverCrash) {
  Rng rng(TestSeed());
  for (int i = 0; i < 100; ++i) {
    const std::string line = EncodeMessage(RandomMessage(rng));
    for (size_t cut = 0; cut <= line.size(); cut += 3) {
      ExpectSaneDecode(line.substr(0, cut));
    }
    // Truncation mid-line must be an error, not a partial accept.
    EXPECT_FALSE(DecodeMessage(line.substr(0, line.size() / 2)).ok());
  }
}

TEST(ProtocolAdversarialTest, CorruptedBytesNeverCrash) {
  Rng rng(TestSeed() + 1);
  for (int i = 0; i < 300; ++i) {
    std::string line = EncodeMessage(RandomMessage(rng));
    const int flips = static_cast<int>(rng.UniformInt(1, 4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(line.size()) - 1));
      line[pos] = static_cast<char>(rng.UniformInt(1, 255));
    }
    ExpectSaneDecode(line);
  }
}

TEST(ProtocolAdversarialTest, RejectsDuplicatedAndReorderedFields) {
  // Strict field order means a duplicated key displaces an expected one.
  EXPECT_FALSE(DecodeMessage("defl/1 deflate-req vm=1 vm=2 cpu=0 mem=0 disk=0 net=0").ok());
  EXPECT_FALSE(
      DecodeMessage("defl/1 deflate-req seq=2 vm=1 cpu=0 mem=0 disk=0 net=0").ok());
  EXPECT_FALSE(DecodeMessage(
                   "defl/1 deflate-req vm=1 seq=2 cpu=1 mem=2 disk=3 net=4 extra=5")
                   .ok());
}

TEST(ProtocolAdversarialTest, RejectsNonFiniteAndNonIntegralValues) {
  EXPECT_FALSE(
      DecodeMessage("defl/1 deflate-req vm=1 seq=2 cpu=inf mem=0 disk=0 net=0").ok());
  EXPECT_FALSE(
      DecodeMessage("defl/1 deflate-req vm=1 seq=2 cpu=nan mem=0 disk=0 net=0").ok());
  // Ids must be integral and within int64-exact double range.
  EXPECT_FALSE(
      DecodeMessage("defl/1 deflate-req vm=1.5 seq=2 cpu=0 mem=0 disk=0 net=0").ok());
  EXPECT_FALSE(
      DecodeMessage("defl/1 deflate-req vm=1 seq=1e30 cpu=0 mem=0 disk=0 net=0").ok());
  // A plain finite fractional amount is fine.
  EXPECT_TRUE(
      DecodeMessage("defl/1 deflate-req vm=1 seq=2 cpu=0.5 mem=0 disk=0 net=0").ok());
}

TEST(ProtocolAdversarialTest, RejectsOversizedLines) {
  std::string line = "defl/1 deflate-req vm=1 seq=2 cpu=0 mem=0 disk=0 net=";
  line.append(2000, '9');
  EXPECT_FALSE(DecodeMessage(line).ok());
  ExpectSaneDecode(line);
  ExpectSaneDecode(std::string(100000, 'x'));
}

TEST(ProtocolAdversarialTest, ProxyTreatsGarbageAsSilence) {
  // Whatever the wire does, the proxy must fall through with zero rather
  // than surface a bogus freed amount.
  Rng rng(TestSeed() + 2);
  for (int i = 0; i < 100; ++i) {
    std::string garbage;
    const int len = static_cast<int>(rng.UniformInt(0, 120));
    for (int c = 0; c < len; ++c) {
      garbage.push_back(static_cast<char>(rng.UniformInt(1, 255)));
    }
    RemoteAgentProxy proxy(1, [&garbage](const std::string&) { return garbage; });
    EXPECT_TRUE(proxy.SelfDeflate(ResourceVector(1.0, 100.0)).IsZero());
  }
}

TEST(ProtocolAdversarialTest, ProxyRejectsCrossWiredReplies) {
  // A syntactically valid reply for the wrong VM or of the wrong kind is
  // a confused agent, not a result.
  RemoteAgentProxy wrong_vm(1, [](const std::string&) {
    return std::string("defl/1 deflate-resp vm=2 seq=1 cpu=4 mem=1000 disk=0 net=0");
  });
  EXPECT_TRUE(wrong_vm.SelfDeflate(ResourceVector(1.0, 100.0)).IsZero());
  RemoteAgentProxy wrong_kind(1, [](const std::string&) {
    return std::string(
        "defl/1 footprint-report vm=1 seq=1 cpu=4 mem=1000 disk=0 net=0");
  });
  EXPECT_TRUE(wrong_kind.SelfDeflate(ResourceVector(1.0, 100.0)).IsZero());
}

}  // namespace
}  // namespace defl
