
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/webserver_test.cc" "tests/CMakeFiles/webserver_test.dir/apps/webserver_test.cc.o" "gcc" "tests/CMakeFiles/webserver_test.dir/apps/webserver_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/defl_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/defl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/defl_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/defl_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/defl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
