#include "src/hypervisor/vm.h"

#include <algorithm>
#include <cassert>

namespace defl {

Vm::Vm(VmId id, VmSpec spec, const GuestOs::Params& os_params)
    : id_(id), spec_(std::move(spec)), guest_os_(spec_.size, os_params) {
  guest_os_.set_fault_scope(id_);
  guest_os_.set_allocation_listener(this);
}

Vm::Vm(Vm&& other) noexcept
    : id_(other.id_),
      spec_(std::move(other.spec_)),
      state_(other.state_),
      guest_os_(std::move(other.guest_os_)),
      hv_reclaimed_(other.hv_reclaimed_) {
  guest_os_.set_allocation_listener(this);
}

Vm& Vm::operator=(Vm&& other) noexcept {
  if (this != &other) {
    id_ = other.id_;
    spec_ = std::move(other.spec_);
    state_ = other.state_;
    guest_os_ = std::move(other.guest_os_);
    hv_reclaimed_ = other.hv_reclaimed_;
    guest_os_.set_allocation_listener(this);
    listener_ = nullptr;
  }
  return *this;
}

void Vm::OnAllocationChanged() { NotifyAllocationChanged(); }

void Vm::NotifyAllocationChanged() {
  if (listener_ != nullptr) {
    listener_->OnAllocationChanged();
  }
}

ResourceVector Vm::effective() const {
  // Balloon-pinned memory has been handed back to the host.
  ResourceVector balloon;
  balloon[ResourceKind::kMemory] = guest_os_.balloon_mb();
  return (guest_visible() - balloon - hv_reclaimed_).ClampNonNegative();
}

ResourceVector Vm::deflatable_amount() const {
  if (!deflatable()) {
    return ResourceVector::Zero();
  }
  return (effective() - spec_.min_size).ClampNonNegative();
}

double Vm::DeflationFraction(ResourceKind kind) const {
  const double total = spec_.size[kind];
  if (total <= 0.0) {
    return 0.0;
  }
  return std::clamp(1.0 - effective()[kind] / total, 0.0, 1.0);
}

double Vm::MaxDeflationFraction() const {
  double d = 0.0;
  for (const ResourceKind kind : kAllResources) {
    if (spec_.size[kind] > 0.0) {
      d = std::max(d, DeflationFraction(kind));
    }
  }
  return d;
}

EffectiveAllocation Vm::allocation() const {
  const ResourceVector vis = guest_visible();
  const ResourceVector eff = effective();
  EffectiveAllocation a;
  a.visible_cpus = vis.cpu();
  a.cpu_capacity = eff.cpu();
  // Balloon-pinned memory and its fragmentation waste are invisible-in-
  // effect: the guest sees them but applications cannot use them.
  a.guest_memory_mb = guest_os_.UsableMemoryMb();
  a.resident_memory_mb = std::min(eff.memory_mb(), a.guest_memory_mb);
  a.disk_bw = eff.disk_bw();
  a.net_bw = eff.net_bw();
  a.page_cache_mb = guest_os_.page_cache_mb();
  return a;
}

ResourceVector Vm::HvReclaim(const ResourceVector& amount) {
  // Cannot take more than what is currently backed.
  const ResourceVector take = amount.ClampNonNegative().Min(effective());
  hv_reclaimed_ += take;
  NotifyAllocationChanged();
  return take;
}

ResourceVector Vm::HvRelease(const ResourceVector& amount) {
  const ResourceVector give = amount.ClampNonNegative().Min(hv_reclaimed_);
  hv_reclaimed_ -= give;
  NotifyAllocationChanged();
  return give;
}

void Vm::ClampHvToVisible() {
  ResourceVector ceiling = guest_visible();
  ceiling[ResourceKind::kMemory] =
      std::max(0.0, ceiling.memory_mb() - guest_os_.balloon_mb());
  hv_reclaimed_ = hv_reclaimed_.Min(ceiling).ClampNonNegative();
  NotifyAllocationChanged();
}

}  // namespace defl
