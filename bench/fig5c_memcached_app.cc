// Figure 5c: memcached successful GETs/s (kGETS/s) under memory deflation,
// unmodified (VM-level reclamation: the kernel swaps, GETs stall) vs the
// deflation-aware memcached (cache resize + LRU eviction: lower hit rate,
// never swaps). Paper: ~6x higher throughput at 50% deflation.
#include "bench/bench_util.h"
#include "src/apps/deflation_harness.h"
#include "src/apps/memcached.h"

namespace defl {
namespace {

MemcachedConfig HeavyConfig() {
  MemcachedConfig config;
  config.fill_fraction = 1.0;  // full cache: no free memory to hide behind
  config.swap_in_us = 2500.0;
  return config;
}

double Point(bool app_deflation, double f) {
  MemcachedModel model(HeavyConfig());
  const HarnessResult r = DeflateAppVm(
      model, app_deflation ? DeflationMode::kCascade : DeflationMode::kVmLevel,
      ResourceVector(0.0, f, 0.0, 0.0), StandardVmSpec(), app_deflation);
  return model.ThroughputKGets(r.alloc);
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Figure 5c", "memcached kGETS/s: unmodified vs app deflation");
  bench::PrintNote("12 GB cache fully populated; Zipf(0.95) GET stream.");
  bench::PrintColumns({"deflation%", "unmodified", "app-deflation"});
  for (const double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    bench::PrintCell(f * 100.0);
    bench::PrintCell(Point(false, f));
    bench::PrintCell(Point(true, f));
    bench::EndRow();
  }
  return 0;
}
