# Empty compiler generated dependencies file for fig5d_specjbb_app.
# This may be replaced when dependencies are built.
