// Application performance models. Each model maps an EffectiveAllocation
// (what the VM actually has, per mechanism) to a steady-state performance
// number, and optionally exposes a DeflationAgent implementing the
// application-level policies of Section 4 / Table 1. The models are built
// from first principles (queueing, Amdahl, LRU/Zipf locality, GC headroom)
// and composed with the mechanism cost primitives in src/hypervisor.
#ifndef SRC_APPS_APP_MODEL_H_
#define SRC_APPS_APP_MODEL_H_

#include <string>

#include "src/core/deflation_agent.h"
#include "src/hypervisor/vm.h"

namespace defl {

class AppModel {
 public:
  virtual ~AppModel() = default;

  // Steady-state performance under `alloc`, normalized to the performance at
  // the VM's full nominal allocation (1.0 = undegraded, 0.0 = not running,
  // e.g. OOM-killed). May exceed 1.0 marginally if given extra resources.
  virtual double NormalizedPerformance(const EffectiveAllocation& alloc) const = 0;

  // Current anonymous-memory footprint in MB, for guest-OS accounting.
  virtual double MemoryFootprintMb() const = 0;

  // The app-level deflation agent, or nullptr for unmodified applications.
  virtual DeflationAgent* agent() { return nullptr; }

  virtual const std::string& name() const = 0;
};

}  // namespace defl

#endif  // SRC_APPS_APP_MODEL_H_
