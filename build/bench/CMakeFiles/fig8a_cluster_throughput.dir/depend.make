# Empty dependencies file for fig8a_cluster_throughput.
# This may be replaced when dependencies are built.
