#include "src/common/thread_pool.h"

#include <cstdlib>

#include "src/common/logging.h"

namespace defl {

ThreadPool::ThreadPool(int parallelism) : parallelism_(parallelism < 1 ? 1 : parallelism) {
  workers_.reserve(static_cast<size_t>(parallelism_ - 1));
  for (int i = 1; i < parallelism_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  generation_hint_.fetch_add(1, std::memory_order_release);  // break spinners
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

int64_t ThreadPool::DrainCurrentJob(const std::function<void(int64_t)>& fn) {
  // Claim items one at a time from the shared cursor. Items are independent
  // (shard ownership), so which thread runs which item never matters; the
  // caller's canonical-order merge provides determinism.
  int64_t ran = 0;
  for (;;) {
    const int64_t i = next_cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_count_) {
      break;
    }
    fn(i);
    ++ran;
  }
  return ran;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    // Fork-join batches arrive back-to-back from the event loop, so spin
    // briefly on the generation hint before paying the condition-variable
    // sleep/wake latency; yield periodically so an oversubscribed host
    // (fewer cores than threads) still makes progress.
    for (int spin = 0; spin < 4096; ++spin) {
      if (generation_hint_.load(std::memory_order_acquire) != seen_generation) {
        break;
      }
      if ((spin & 255) == 255) {
        std::this_thread::yield();
      }
    }
    const std::function<void(int64_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      fn = job_;
      // Committing under the lock is what lets ParallelFor wait for every
      // worker that joined this job to leave before recycling the cursor:
      // a late waker can never claim items of a newer job with an old fn.
      ++draining_;
    }
    const int64_t ran = DrainCurrentJob(*fn);
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_ += ran;
      --draining_;
    }
    done_.notify_one();
  }
}

void ThreadPool::ParallelFor(int64_t count, const std::function<void(int64_t)>& fn) {
  if (count <= 0) {
    return;
  }
  if (workers_.empty() || count == 1) {
    for (int64_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (job_ != nullptr) {
      // Nested or concurrent ParallelFor on one pool would hand workers a
      // dangling fn / recycled cursor; the pool is exposed to external
      // drivers, so misuse must fail loudly even in release builds.
      DEFL_LOG(kError) << "ThreadPool::ParallelFor does not nest and is not "
                          "reentrant; a job is already running on this pool";
      std::abort();
    }
    job_ = &fn;
    job_count_ = count;
    completed_ = 0;
    next_cursor_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  generation_hint_.fetch_add(1, std::memory_order_release);
  wake_.notify_all();
  // The caller participates too; on a host with fewer cores than threads
  // this also guarantees forward progress.
  const int64_t ran = DrainCurrentJob(fn);
  {
    std::unique_lock<std::mutex> lock(mu_);
    completed_ += ran;
    done_.wait(lock, [&] { return completed_ == job_count_ && draining_ == 0; });
    job_ = nullptr;
  }
}

}  // namespace defl
