// Cascade deflation (Section 3.2, Figure 3): the multi-level reclamation
// controller. Resource pressure is applied top-down -- application first,
// then guest-OS hot-unplug, then hypervisor overcommitment -- and whatever a
// layer cannot (or chooses not to) reclaim falls through to the next one.
// Single-level and two-level baselines from the evaluation (hypervisor-only,
// OS-only, VM-level) are the same controller with layers masked off.
#ifndef SRC_CORE_CASCADE_H_
#define SRC_CORE_CASCADE_H_

#include "src/core/deflation_agent.h"
#include "src/faults/fault_injector.h"
#include "src/hypervisor/latency.h"
#include "src/hypervisor/vm.h"
#include "src/resources/resource_vector.h"
#include "src/telemetry/telemetry.h"

namespace defl {

enum class DeflationMode {
  kHypervisorOnly,  // black-box VM overcommitment (Figure 5 "Hypervisor only")
  kOsOnly,          // forced hot-unplug, no fall-through ("OS only")
  kVmLevel,         // OS + hypervisor, no app involvement ("Hypervisor+OS")
  kCascade,         // application + OS + hypervisor (full cascade)
  kBalloonLevel,    // balloon driver + hypervisor: the classic VMware-style
                    // reclamation the paper's hot-unplug replaces (Section 7)
};

const char* DeflationModeName(DeflationMode mode);

struct CascadeOptions {
  // Wall-clock budget for the reclamation (Section 5: "deflation operations
  // have a deadline that is primarily determined by the amount of memory
  // reclamation. If a deflation operation times out, we proceed to the next
  // level"). The application and OS stages are given only as much work as
  // fits their share of the budget; the hypervisor absorbs the remainder
  // (its reclamation proceeds under host control). <= 0 disables.
  double deadline_s = 0.0;
};

struct DeflationOutcome {
  ResourceVector requested;
  // Freed internally by the application (its allocation shrank).
  ResourceVector app_freed;
  // Returned to the host by guest hot-unplug.
  ResourceVector unplugged;
  // Reclaimed by hypervisor overcommitment.
  ResourceVector hv_reclaimed;
  // Per-stage work items for the latency model.
  ReclaimBreakdown breakdown;
  double latency_seconds = 0.0;
  // A deadline was set and the upper stages were clipped to honor it.
  bool deadline_clipped = false;

  // Resources actually back in the host's hands.
  ResourceVector TotalReclaimed() const { return unplugged + hv_reclaimed; }
  bool TargetMet(double eps = 1e-6) const {
    return requested.AllLeq(TotalReclaimed(), eps);
  }
};

class CascadeController {
 public:
  explicit CascadeController(DeflationMode mode,
                             LatencyParams latency_params = LatencyParams());

  DeflationMode mode() const { return mode_; }

  // Reclaims `target` (absolute amounts) from the VM using the configured
  // layers. `agent` may be nullptr (unmodified application); it is only
  // consulted in kCascade mode.
  DeflationOutcome Deflate(Vm& vm, DeflationAgent* agent, const ResourceVector& target);
  DeflationOutcome Deflate(Vm& vm, DeflationAgent* agent, const ResourceVector& target,
                           const CascadeOptions& options);

  // Reverse cascade (Section 5): returns `amount` to the VM -- hypervisor
  // release first, then memory/CPU replug, then agent notification.
  // Returns what was actually returned to the VM.
  ResourceVector Reinflate(Vm& vm, DeflationAgent* agent, const ResourceVector& amount);

  const DeflationLatencyModel& latency_model() const { return latency_model_; }

  // Publishes per-layer reclamation events and cascade metrics through
  // `telemetry` (nullptr detaches). Metric handles are resolved here once;
  // the Deflate hot path never performs a name lookup.
  void AttachTelemetry(TelemetryContext* telemetry);
  TelemetryContext* telemetry() const { return telemetry_; }

  // Injects hypervisor-stage latency spikes (kHvLatencySpike rules) into the
  // outcome latency. nullptr detaches; the detached hot path costs one
  // branch.
  void AttachFaultInjector(FaultInjector* faults) { faults_ = faults; }
  FaultInjector* fault_injector() const { return faults_; }

 private:
  // Deflation-outcome bits for the kDeflation trace event.
  static constexpr int32_t kOutcomeTargetMet = 1;
  static constexpr int32_t kOutcomeDeadlineClipped = 2;

  DeflationMode mode_;
  DeflationLatencyModel latency_model_;
  FaultInjector* faults_ = nullptr;

  TelemetryContext* telemetry_ = nullptr;
  struct {
    CounterHandle deflate_ops;
    CounterHandle target_missed;
    CounterHandle deadline_clipped;
    CounterHandle reinflate_ops;
    DistributionHandle latency_s;
    DistributionHandle app_freed_mb;
    DistributionHandle unplugged_mb;
    DistributionHandle hv_reclaimed_mb;
  } metrics_;
};

}  // namespace defl

#endif  // SRC_CORE_CASCADE_H_
