# Empty compiler generated dependencies file for defl_common.
# This may be replaced when dependencies are built.
