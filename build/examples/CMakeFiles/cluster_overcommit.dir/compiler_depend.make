# Empty compiler generated dependencies file for cluster_overcommit.
# This may be replaced when dependencies are built.
