#include "src/hypervisor/guest_os.h"

#include <gtest/gtest.h>

namespace defl {
namespace {

GuestOs::Params TestParams() {
  GuestOs::Params p;
  p.kernel_reserve_mb = 500.0;
  p.unplug_efficiency = 1.0;  // exact numbers in tests
  p.min_cpus = 1;
  return p;
}

TEST(GuestOsTest, StartsSeeingFullSpec) {
  GuestOs os(ResourceVector(4.0, 16384.0, 100.0, 1000.0), TestParams());
  EXPECT_EQ(os.visible(), ResourceVector(4.0, 16384.0, 100.0, 1000.0));
  EXPECT_TRUE(os.unplugged().IsZero());
}

TEST(GuestOsTest, SafelyUnpluggableAccountsForAppAndReserve) {
  GuestOs os(ResourceVector(4.0, 16000.0), TestParams());
  os.set_app_used_mb(8000.0);
  const ResourceVector safe = os.SafelyUnpluggable();
  EXPECT_DOUBLE_EQ(safe.memory_mb(), 16000.0 - 8000.0 - 500.0);
  EXPECT_DOUBLE_EQ(safe.cpu(), 3.0);  // keeps min_cpus online
  EXPECT_DOUBLE_EQ(safe.disk_bw(), 0.0);
  EXPECT_DOUBLE_EQ(safe.net_bw(), 0.0);
}

TEST(GuestOsTest, UnplugEfficiencyReducesUnpluggableMemory) {
  GuestOs::Params p = TestParams();
  p.unplug_efficiency = 0.5;
  GuestOs os(ResourceVector(4.0, 10500.0), p);
  os.set_app_used_mb(5000.0);
  EXPECT_DOUBLE_EQ(os.SafelyUnpluggable().memory_mb(), 2500.0);
}

TEST(GuestOsTest, PinnedCpusBlockUnplug) {
  GuestOs os(ResourceVector(8.0, 16000.0), TestParams());
  os.set_pinned_cpus(6);
  EXPECT_DOUBLE_EQ(os.SafelyUnpluggable().cpu(), 2.0);
  const ResourceVector done = os.TryUnplug(ResourceVector(4.0, 0.0));
  EXPECT_DOUBLE_EQ(done.cpu(), 2.0);
}

TEST(GuestOsTest, CpuUnplugsWholeUnits) {
  GuestOs os(ResourceVector(8.0, 16000.0), TestParams());
  const ResourceVector done = os.TryUnplug(ResourceVector(2.7, 0.0));
  EXPECT_DOUBLE_EQ(done.cpu(), 2.0);
  EXPECT_DOUBLE_EQ(os.visible().cpu(), 6.0);
}

TEST(GuestOsTest, SafeUnplugRefusesAppMemory) {
  GuestOs os(ResourceVector(4.0, 16000.0), TestParams());
  os.set_app_used_mb(14000.0);
  // Only 1500 MB safely free; a 8000 MB request is clamped.
  const ResourceVector done = os.TryUnplug(ResourceVector(0.0, 8000.0));
  EXPECT_DOUBLE_EQ(done.memory_mb(), 1500.0);
  EXPECT_FALSE(os.UnderOomPressure());
}

TEST(GuestOsTest, ForcedUnplugCanCauseOomPressure) {
  GuestOs os(ResourceVector(4.0, 16000.0), TestParams());
  os.set_app_used_mb(14000.0);
  const ResourceVector done = os.TryUnplug(ResourceVector(0.0, 8000.0), /*force=*/true);
  EXPECT_DOUBLE_EQ(done.memory_mb(), 8000.0);
  EXPECT_TRUE(os.UnderOomPressure());
}

TEST(GuestOsTest, ForcedUnplugStillHonorsKernelReserve) {
  GuestOs os(ResourceVector(4.0, 16000.0), TestParams());
  const ResourceVector done = os.TryUnplug(ResourceVector(0.0, 20000.0), /*force=*/true);
  EXPECT_DOUBLE_EQ(done.memory_mb(), 15500.0);
}

TEST(GuestOsTest, ForcedCpuUnplugKeepsMinimum) {
  GuestOs os(ResourceVector(4.0, 16000.0), TestParams());
  const ResourceVector done = os.TryUnplug(ResourceVector(10.0, 0.0), /*force=*/true);
  EXPECT_DOUBLE_EQ(done.cpu(), 3.0);
  EXPECT_DOUBLE_EQ(os.visible().cpu(), 1.0);
}

TEST(GuestOsTest, ReplugRestoresResources) {
  GuestOs os(ResourceVector(8.0, 16000.0), TestParams());
  os.TryUnplug(ResourceVector(4.0, 6000.0));
  EXPECT_EQ(os.visible(), ResourceVector(4.0, 10000.0));
  const ResourceVector back = os.Replug(ResourceVector(2.0, 3000.0));
  EXPECT_EQ(back, ResourceVector(2.0, 3000.0));
  EXPECT_EQ(os.visible(), ResourceVector(6.0, 13000.0));
}

TEST(GuestOsTest, ReplugClampsToUnplugged) {
  GuestOs os(ResourceVector(8.0, 16000.0), TestParams());
  os.TryUnplug(ResourceVector(2.0, 1000.0));
  const ResourceVector back = os.Replug(ResourceVector(100.0, 100000.0));
  EXPECT_EQ(back, ResourceVector(2.0, 1000.0));
  EXPECT_EQ(os.visible(), ResourceVector(8.0, 16000.0));
  EXPECT_TRUE(os.unplugged().IsZero());
}

TEST(GuestOsTest, UnplugConsumesTrulyFreeBeforePageCache) {
  GuestOs os(ResourceVector(4.0, 16000.0), TestParams());
  os.set_app_used_mb(8000.0);
  os.set_page_cache_mb(3000.0);
  // Reclaimable = 16000 - 8000 - 500 = 7500, of which 3000 is page cache.
  // Taking 4000 consumes the 4500 truly-free pool only.
  os.TryUnplug(ResourceVector(0.0, 4000.0));
  EXPECT_DOUBLE_EQ(os.page_cache_mb(), 3000.0);
  // Taking 2000 more digs 1500 into the cache.
  os.TryUnplug(ResourceVector(0.0, 2000.0));
  EXPECT_DOUBLE_EQ(os.page_cache_mb(), 1500.0);
}

TEST(GuestOsTest, ForcedUnplugDropsAllCacheBeforeOom) {
  GuestOs os(ResourceVector(4.0, 16000.0), TestParams());
  os.set_app_used_mb(8000.0);
  os.set_page_cache_mb(3000.0);
  os.TryUnplug(ResourceVector(0.0, 7500.0));
  EXPECT_DOUBLE_EQ(os.page_cache_mb(), 0.0);
  EXPECT_FALSE(os.UnderOomPressure());
}

TEST(GuestOsTest, NegativeTargetIsIgnored) {
  GuestOs os(ResourceVector(8.0, 16000.0), TestParams());
  const ResourceVector done = os.TryUnplug(ResourceVector(-2.0, -500.0));
  EXPECT_TRUE(done.IsZero());
}

TEST(GuestOsTest, BalloonPinsMemoryWithFragmentationWaste) {
  GuestOs::Params p = TestParams();
  p.balloon_fragmentation = 0.1;
  GuestOs os(ResourceVector(4.0, 16000.0), p);
  os.set_app_used_mb(8000.0);
  const double pinned = os.BalloonInflate(4000.0);
  EXPECT_DOUBLE_EQ(pinned, 4000.0);
  EXPECT_DOUBLE_EQ(os.balloon_mb(), 4000.0);
  EXPECT_DOUBLE_EQ(os.BalloonFragmentationMb(), 400.0);
  EXPECT_DOUBLE_EQ(os.UsableMemoryMb(), 16000.0 - 4400.0);
  // Visible memory is unchanged: the guest still sees the pinned pages.
  EXPECT_DOUBLE_EQ(os.visible().memory_mb(), 16000.0);
}

TEST(GuestOsTest, BalloonIsBestEffortLikeUnplug) {
  GuestOs::Params p = TestParams();
  p.balloon_fragmentation = 0.0;
  GuestOs os(ResourceVector(4.0, 16000.0), p);
  os.set_app_used_mb(14000.0);
  // Only 1500 MB safely free; the balloon cannot take app memory.
  const double pinned = os.BalloonInflate(8000.0);
  EXPECT_DOUBLE_EQ(pinned, 1500.0);
  EXPECT_FALSE(os.UnderOomPressure());
}

TEST(GuestOsTest, BalloonDeflateRestoresUsableMemory) {
  GuestOs os(ResourceVector(4.0, 16000.0), TestParams());
  os.set_app_used_mb(4000.0);
  os.BalloonInflate(6000.0);
  const double released = os.BalloonDeflate(10000.0);
  EXPECT_DOUBLE_EQ(released, 6000.0);
  EXPECT_DOUBLE_EQ(os.balloon_mb(), 0.0);
  EXPECT_DOUBLE_EQ(os.UsableMemoryMb(), 16000.0);
}

TEST(GuestOsTest, BalloonReducesSafelyUnpluggable) {
  GuestOs::Params p = TestParams();
  p.balloon_fragmentation = 0.0;
  GuestOs os(ResourceVector(4.0, 16000.0), p);
  os.set_app_used_mb(8000.0);
  const double before = os.SafelyUnpluggable().memory_mb();
  os.BalloonInflate(3000.0);
  EXPECT_DOUBLE_EQ(os.SafelyUnpluggable().memory_mb(), before - 3000.0);
}

TEST(GuestOsTest, UnplugNeverTouchesDiskOrNet) {
  GuestOs os(ResourceVector(8.0, 16000.0, 100.0, 1000.0), TestParams());
  const ResourceVector done =
      os.TryUnplug(ResourceVector(0.0, 0.0, 50.0, 500.0), /*force=*/true);
  EXPECT_TRUE(done.IsZero());
  EXPECT_DOUBLE_EQ(os.visible().disk_bw(), 100.0);
}

}  // namespace
}  // namespace defl
