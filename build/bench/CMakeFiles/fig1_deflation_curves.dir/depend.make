# Empty dependencies file for fig1_deflation_curves.
# This may be replaced when dependencies are built.
