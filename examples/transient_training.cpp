// Inelastic workloads on transient resources: synchronous DNN training
// (which cannot scale down gracefully -- killing any task rolls the model
// back) survives a 20-minute burst of 50% resource pressure under deflation
// with a modest slowdown, while the preemption alternative needs periodic
// checkpointing and loses progress to the restart.
#include <cstdio>

#include "src/spark/experiment.h"

using namespace defl;

namespace {

double Run(SparkReclamationApproach approach, bool checkpointing, double baseline) {
  const SparkWorkload wl = MakeCnnWorkload(1.0, checkpointing, 40);
  SparkExperimentConfig config;
  config.approach = approach;
  config.deflation_fraction = approach == SparkReclamationApproach::kNone ? 0.0 : 0.5;
  config.deflate_at_time_s = 300.0;
  config.reinflate_after_s = 1200.0;
  const SparkExperimentResult r = RunSparkExperiment(wl, config);
  std::printf("  %-26s finished in %7.1f s (%.2fx)%s\n",
              approach == SparkReclamationApproach::kNone
                  ? "undisturbed"
                  : SparkReclamationApproachName(approach),
              r.makespan_s, baseline > 0.0 ? r.makespan_s / baseline : 1.0,
              r.rollbacks > 0 ? "  [rolled back to checkpoint]" : "");
  return r.makespan_s;
}

}  // namespace

int main() {
  std::printf("CNN training (40 synchronous iterations, 8 workers);\n");
  std::printf("50%% resource pressure during minutes 5-25.\n\n");
  const double baseline = Run(SparkReclamationApproach::kNone, false, 0.0);
  Run(SparkReclamationApproach::kVmLevel, false, baseline);
  std::printf("  (preemption path requires checkpointing even when idle:)\n");
  Run(SparkReclamationApproach::kPreemption, true, baseline);
  return 0;
}
