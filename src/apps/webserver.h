// Web-server cluster member model (Table 1): a thread-pool server behind a
// load balancer. The application deflation policy shrinks the worker pool to
// match the deflated CPU capacity -- threads beyond capacity only add
// lock-holder preemption and context-switch overhead -- and reports the new
// capacity so the load balancer can shift traffic away (Section 4 footnote:
// "a deflation-aware load-balancer").
#ifndef SRC_APPS_WEBSERVER_H_
#define SRC_APPS_WEBSERVER_H_

#include <string>

#include "src/apps/app_model.h"
#include "src/hypervisor/overcommit.h"

namespace defl {

struct WebServerConfig {
  int configured_threads = 32;
  double base_service_us = 2000.0;    // request service time
  double per_thread_mb = 64.0;        // stack + buffers per worker
  double app_base_mb = 2048.0;        // code, shared caches
  double baseline_cpus = 4.0;
  OvercommitCosts costs;
};

class WebServerModel;

class WebServerAgent : public DeflationAgent {
 public:
  explicit WebServerAgent(WebServerModel* model) : model_(model) {}

  ResourceVector SelfDeflate(const ResourceVector& target) override;
  void OnReinflate(const ResourceVector& added) override;
  double MemoryFootprintMb() const override;

 private:
  WebServerModel* model_;
};

class WebServerModel : public AppModel {
 public:
  explicit WebServerModel(const WebServerConfig& config);

  double NormalizedPerformance(const EffectiveAllocation& alloc) const override;
  double MemoryFootprintMb() const override;
  DeflationAgent* agent() override { return &agent_; }
  const std::string& name() const override { return name_; }

  // Sustainable requests/s given the allocation and current pool size.
  double ThroughputRps(const EffectiveAllocation& alloc) const;

  int threads() const { return threads_; }
  void ResizeThreadPool(int threads);

  const WebServerConfig& config() const { return config_; }
  void SetBaseline(const EffectiveAllocation& alloc);

 private:
  WebServerConfig config_;
  std::string name_ = "webserver";
  int threads_;
  WebServerAgent agent_;
  double baseline_rps_ = 0.0;
};

}  // namespace defl

#endif  // SRC_APPS_WEBSERVER_H_
