// Deflation-aware VM placement (Section 5): multi-dimensional bin packing
// where a server's availability is free + deflatable resources, and fitness
// is the cosine similarity between the VM's demand vector and the server's
// availability vector. Three policies from the paper: best-fit, first-fit,
// and 2-choices (sample two random servers, keep the fitter one).
#ifndef SRC_CLUSTER_PLACEMENT_H_
#define SRC_CLUSTER_PLACEMENT_H_

#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/hypervisor/server.h"
#include "src/resources/resource_vector.h"

namespace defl {

enum class PlacementPolicy { kBestFit, kFirstFit, kTwoChoices };

const char* PlacementPolicyName(PlacementPolicy policy);

// What counts as a server's availability for a given arrival:
//   kFreeOnly            -- untouched resources only (no reclamation),
//   kFreePlusDeflatable  -- free + what deflation can reclaim (low-priority
//                           arrivals under deflation-based management),
//   kFreePlusPreemptible -- free + everything low-priority VMs hold (high-
//                           priority arrivals, which may displace them).
enum class AvailabilityMode { kFreeOnly, kFreePlusDeflatable, kFreePlusPreemptible };

// fitness(D, A) = (A . D) / (|A| |D|); higher is better.
double PlacementFitness(const ResourceVector& demand, const ResourceVector& availability);

ResourceVector ServerAvailability(const Server& server, AvailabilityMode mode);

// Picks a server whose availability (per `mode`) covers `demand`. Returns an
// index into `servers` or an error when no server is feasible.
//
// With a non-null `pool`, the candidate scan is sharded across the pool's
// threads: each chunk of candidates is scored by one thread (reading only
// its own chunk's servers, which may lazily refresh their accounting caches
// -- the per-shard-ownership rule of DESIGN.md §10), and the per-chunk
// results are folded with order-independent reductions (min feasible index
// for first-fit, max fitness with lowest-index tie-break for best-fit). The
// chosen server is therefore byte-identical to the sequential scan for any
// pool size and any chunking. 2-choices consumes the caller's RNG stream on
// the calling thread exactly as before; only its full-scan fallback shards.
Result<size_t> PlaceVm(const ResourceVector& demand,
                       const std::vector<Server*>& servers, PlacementPolicy policy,
                       Rng& rng, AvailabilityMode mode = AvailabilityMode::kFreePlusDeflatable,
                       ThreadPool* pool = nullptr);

}  // namespace defl

#endif  // SRC_CLUSTER_PLACEMENT_H_
