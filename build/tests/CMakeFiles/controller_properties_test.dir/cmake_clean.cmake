file(REMOVE_RECURSE
  "CMakeFiles/controller_properties_test.dir/properties/controller_properties_test.cc.o"
  "CMakeFiles/controller_properties_test.dir/properties/controller_properties_test.cc.o.d"
  "controller_properties_test"
  "controller_properties_test.pdb"
  "controller_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
