// A working mini data-parallel engine with Spark's execution semantics, run
// on the discrete-event simulator against the hypervisor VM model:
//   * RDD lineage chains are decomposed into BSP stages at shuffle (wide) and
//     cache boundaries; a stage's tasks run in waves over executor slots;
//   * every stage output is materialized on the executor that computed it;
//     losing an executor loses its shuffle files and cached blocks, and any
//     future consumer triggers recursive lineage recomputation;
//   * each worker VM hosts one single-slot executor per vCPU (the paper's
//     deployment); task speed reflects the VM's EffectiveAllocation --
//     CPU multiplexing (with lock-holder preemption) and memory
//     overcommitment (swap stalls) slow tasks down, so stragglers under
//     VM-level deflation are emergent, not scripted;
//   * self-deflation kills executors (tasks die, outputs are lost) and
//     returns their resources; synchronous (DNN) workloads roll back to the
//     last checkpoint when any task is killed;
//   * preemption removes a whole VM.
//
// The paper's running-time models (Equations 1-3) live in policy.h and are
// used only to *decide*; everything measured comes from executing the DAG.
#ifndef SRC_SPARK_ENGINE_H_
#define SRC_SPARK_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/hypervisor/overcommit.h"
#include "src/hypervisor/vm.h"
#include "src/sim/simulator.h"
#include "src/spark/policy.h"
#include "src/spark/workload.h"
#include "src/telemetry/telemetry.h"

namespace defl {

class SparkEngine {
 public:
  struct Config {
    // Fraction of VM memory given to executors (spark.executor.memory).
    double executor_mem_fraction = 0.6;
    // Task slowdown = 1 + swap_task_penalty * swap_hit_fraction.
    double swap_task_penalty = 4.0;
    double page_zipf_s = 0.95;
    // Fraction of blindly reclaimed residency that host paging keeps on the
    // right pages (see BlindPagingWasteMb).
    double hv_paging_efficiency = 0.8;
    // Shared-resource contention (memory bandwidth, JVM GC): a task runs
    // (spec_cpus / active_tasks)^gamma faster when fewer tasks share the
    // worker. This is why killing half the executors costs less than 2x
    // (K-means self-deflation in Figure 6b is ~1.4x, not 2x).
    double contention_gamma = 0.2;
    OvercommitCosts costs;
  };

  struct TaskCompletion {
    double time = 0.0;
    int stage = 0;
    double records = 0.0;
  };

  // `workers` are the worker VMs (the driver runs on a separate high-priority
  // VM and is never deflated, per Section 4.1). VMs are borrowed, not owned.
  SparkEngine(Simulator* sim, SparkWorkload workload, std::vector<Vm*> workers);
  SparkEngine(Simulator* sim, SparkWorkload workload, std::vector<Vm*> workers,
              const Config& config);

  // Schedules the first wave of tasks; call once, then run the simulator.
  void Start();

  bool done() const { return done_; }
  double finish_time() const { return finish_time_; }

  // --- Deflation integration ---

  // Recomputes in-flight task speeds after any VM allocation change
  // (VM-level deflation or reinflation).
  void OnAllocationChanged();

  // Application-level deflation of one worker: kills enough single-slot
  // executors to cover the CPU/memory target; their running tasks die and
  // their stored outputs are lost. Returns the resources actually freed.
  ResourceVector SelfDeflateVm(VmId id, const ResourceVector& target);

  // Restores previously self-deflated executors (fresh, with empty stores)
  // after reinflation returned `added` resources to the VM.
  void ReinflateVm(VmId id, const ResourceVector& added);

  // Preemption baseline: the VM is gone; all its executors and outputs die.
  void PreemptVm(VmId id);

  // --- Driver metrics (inputs to the Section 4.1 policy) ---

  // Fraction of total job cost completed at least once (the paper's c).
  double Progress() const;
  // Cost fraction of shuffle (wide-input) stages: the r heuristic.
  double SyncCostFraction() const;
  // True when the currently executing stage is a shuffle.
  bool ShuffleImminent() const;
  // Convenience: assembles policy inputs from the live engine state.
  SparkPolicyInputs MakePolicyInputs(const std::vector<double>& deflation_fractions) const;

  // --- Introspection ---
  const SparkWorkload& workload() const { return workload_; }
  int num_stages() const { return static_cast<int>(stages_.size()); }
  int64_t tasks_completed() const { return static_cast<int64_t>(completion_log_.size()); }
  int64_t tasks_killed() const { return tasks_killed_; }
  int64_t rollbacks() const { return rollbacks_; }
  int64_t recomputed_tasks() const { return recomputed_tasks_; }
  const std::vector<TaskCompletion>& completion_log() const { return completion_log_; }
  int AliveExecutors(VmId id) const;
  std::vector<Vm*> worker_vms() const;

  // Publishes task-kill / rollback / completion telemetry (nullptr detaches).
  void AttachTelemetry(TelemetryContext* telemetry);
  TelemetryContext* telemetry() const { return telemetry_; }
  // Guest-OS memory footprint of a worker: base system usage plus the live
  // executors' shares (for agent/guest accounting).
  double WorkerFootprintMb(VmId id) const;

 private:
  // One stage = a chain of narrow, uncached RDDs ending at a materialization
  // point (shuffle write or cache).
  struct Stage {
    std::vector<RddId> members;
    RddId output_rdd = -1;
    int input_stage = -1;   // stage producing our primary input, -1 for sources
    int input_stage2 = -1;  // join/cogroup second input (always wide), -1 if none
    bool wide_input = false;
    int num_partitions = 0;
    double cost_per_task = 0.0;
    double records_per_task = 0.0;
  };

  enum class OutputState : uint8_t { kMissing, kStored, kDurable };

  struct ExecutorId {
    VmId vm;
    int slot;
    auto operator<=>(const ExecutorId&) const = default;
  };

  struct Executor {
    ExecutorId id;
    bool alive = true;
    // (stage, partition) outputs stored here.
    std::set<std::pair<int, int>> stored;
  };

  struct RunningTask {
    int stage = 0;
    int partition = 0;
    ExecutorId executor;
    double work_left = 0.0;
    double speed = 1.0;
    double segment_start = 0.0;
    EventHandle event;
  };

  struct Worker {
    Vm* vm = nullptr;
    std::vector<Executor> executors;
    int AliveCount() const;
  };

  void BuildStages();
  Worker* FindWorker(VmId id);
  const Worker* FindWorker(VmId id) const;

  // Per-task execution speed on a worker given its current allocation and
  // number of concurrently running tasks.
  double TaskSpeed(const Worker& worker, int active_tasks) const;
  double WorkerActiveTasks(VmId id) const;
  void RefreshSpeeds(VmId id);

  // Marks missing inputs of pending partitions as pending in their producer
  // stages (recursive lineage repair). Returns true if anything was added.
  void EnsureInputsPending();
  bool InputsAvailable(int stage, int partition) const;
  bool StageOutputAvailable(int stage, int partition) const;
  void MarkOutput(int stage, int partition, const ExecutorId& executor);
  void InvalidateOutputsOn(const ExecutorId& executor);

  void Dispatch();
  void StartTask(int stage, int partition, Worker& worker, int slot);
  void FinishTask(size_t running_index);
  void KillTasksOn(const ExecutorId& executor);
  void OnTaskKilled();  // synchronous-job rollback hook
  void RollbackToCheckpoint();
  void MaybeCheckpoint(int completed_stage);

  Simulator* sim_;
  SparkWorkload workload_;
  Config config_;
  std::vector<Worker> workers_;
  std::vector<Stage> stages_;

  // outputs_[stage][partition]: where/if the output lives. When kStored, the
  // executor is found via its `stored` set; durable outputs live on stable
  // storage and survive executor loss.
  std::vector<std::vector<OutputState>> outputs_;
  std::vector<std::set<int>> pending_;             // partitions to (re)compute
  std::vector<std::vector<char>> ever_completed_;  // for progress accounting

  std::vector<RunningTask> running_;
  bool started_ = false;
  bool done_ = false;
  double finish_time_ = 0.0;
  double progress_cost_done_ = 0.0;
  double total_cost_ = 0.0;
  int last_durable_stage_ = -1;  // checkpoint frontier
  int stages_since_checkpoint_ = 0;
  bool checkpoint_in_progress_ = false;

  int64_t tasks_killed_ = 0;
  int64_t rollbacks_ = 0;
  int64_t recomputed_tasks_ = 0;
  std::vector<TaskCompletion> completion_log_;

  TelemetryContext* telemetry_ = nullptr;
  struct {
    CounterHandle tasks_completed;
    CounterHandle tasks_killed;
    CounterHandle rollbacks;
    CounterHandle recomputed_tasks;
  } metrics_;
};

}  // namespace defl

#endif  // SRC_SPARK_ENGINE_H_
