#include "src/core/cascade.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace defl {
namespace {

VmSpec MakeSpec() {
  VmSpec spec;
  spec.name = "cascade-vm";
  spec.size = ResourceVector(4.0, 16000.0, 100.0, 1000.0);
  spec.priority = VmPriority::kLow;
  return spec;
}

GuestOs::Params ExactOsParams() {
  GuestOs::Params p;
  p.kernel_reserve_mb = 500.0;
  p.unplug_efficiency = 1.0;
  return p;
}

// Test agent: frees up to `memory_budget_mb` of memory, nothing else.
class MemoryFreeingAgent : public DeflationAgent {
 public:
  MemoryFreeingAgent(double footprint_mb, double min_footprint_mb)
      : footprint_mb_(footprint_mb), min_footprint_mb_(min_footprint_mb) {}

  ResourceVector SelfDeflate(const ResourceVector& target) override {
    const double can_free = footprint_mb_ - min_footprint_mb_;
    const double freed = std::min(target.memory_mb(), std::max(can_free, 0.0));
    footprint_mb_ -= freed;
    ++calls_;
    return ResourceVector(0.0, freed);
  }
  void OnReinflate(const ResourceVector& added) override {
    reinflated_ += added;
  }
  double MemoryFootprintMb() const override { return footprint_mb_; }

  int calls() const { return calls_; }
  const ResourceVector& reinflated() const { return reinflated_; }

 private:
  double footprint_mb_;
  double min_footprint_mb_;
  int calls_ = 0;
  ResourceVector reinflated_;
};

TEST(CascadeTest, HypervisorOnlyNeverTouchesGuest) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(8000.0);
  CascadeController controller(DeflationMode::kHypervisorOnly);
  const ResourceVector target(2.0, 8000.0, 0.0, 0.0);
  const DeflationOutcome out = controller.Deflate(vm, nullptr, target);
  EXPECT_TRUE(out.unplugged.IsZero());
  EXPECT_TRUE(out.app_freed.IsZero());
  EXPECT_EQ(out.hv_reclaimed, target);
  EXPECT_TRUE(out.TargetMet());
  EXPECT_EQ(vm.guest_visible(), vm.size());
  // All memory reclaimed by swapping.
  EXPECT_DOUBLE_EQ(out.breakdown.hv_swap_mb, 8000.0);
}

TEST(CascadeTest, OsOnlyForcesUnplugAndCanMissTarget) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(12000.0);
  CascadeController controller(DeflationMode::kOsOnly);
  // Ask for 8000 MB; force-unplug takes it even though the app uses 12000,
  // creating OOM pressure (the Figure 5a OS-only failure mode).
  const DeflationOutcome out = controller.Deflate(vm, nullptr, ResourceVector(0.0, 8000.0));
  EXPECT_DOUBLE_EQ(out.unplugged.memory_mb(), 8000.0);
  EXPECT_TRUE(out.hv_reclaimed.IsZero());
  EXPECT_TRUE(vm.guest_os().UnderOomPressure());
}

TEST(CascadeTest, VmLevelUnplugsFreeThenOvercommitsRest) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(12000.0);  // 3500 MB safely free
  CascadeController controller(DeflationMode::kVmLevel);
  const DeflationOutcome out = controller.Deflate(vm, nullptr, ResourceVector(0.0, 8000.0));
  EXPECT_DOUBLE_EQ(out.unplugged.memory_mb(), 3500.0);
  EXPECT_DOUBLE_EQ(out.hv_reclaimed.memory_mb(), 4500.0);
  EXPECT_TRUE(out.TargetMet());
  EXPECT_FALSE(vm.guest_os().UnderOomPressure());
  // Latency breakdown: free memory offlined, the rest swapped.
  EXPECT_DOUBLE_EQ(out.breakdown.unplug_freed_mb, 3500.0);
  EXPECT_DOUBLE_EQ(out.breakdown.hv_swap_mb, 4500.0);
}

TEST(CascadeTest, FullCascadeUsesAppFirst) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(14000.0);  // little free
  MemoryFreeingAgent agent(14000.0, 4000.0);
  CascadeController controller(DeflationMode::kCascade);
  const DeflationOutcome out =
      controller.Deflate(vm, &agent, ResourceVector(0.0, 8000.0));
  EXPECT_EQ(agent.calls(), 1);
  EXPECT_DOUBLE_EQ(out.app_freed.memory_mb(), 8000.0);
  // Everything the app freed becomes unpluggable; no hypervisor swap needed.
  EXPECT_DOUBLE_EQ(out.unplugged.memory_mb(), 8000.0);
  EXPECT_DOUBLE_EQ(out.hv_reclaimed.memory_mb(), 0.0);
  EXPECT_TRUE(out.TargetMet());
  EXPECT_DOUBLE_EQ(out.breakdown.hv_swap_mb, 0.0);
  // Guest footprint accounting was updated.
  EXPECT_DOUBLE_EQ(vm.guest_os().app_used_mb(), 6000.0);
}

TEST(CascadeTest, CascadeFallsThroughWhenAppDeclines) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(14000.0);
  InelasticAgent agent(14000.0);  // refuses to self-deflate
  CascadeController controller(DeflationMode::kCascade);
  const DeflationOutcome out =
      controller.Deflate(vm, &agent, ResourceVector(0.0, 8000.0));
  EXPECT_TRUE(out.app_freed.IsZero());
  // Safe free = 16000 - 14000 - 500 = 1500; the rest falls to the hypervisor.
  EXPECT_DOUBLE_EQ(out.unplugged.memory_mb(), 1500.0);
  EXPECT_DOUBLE_EQ(out.hv_reclaimed.memory_mb(), 6500.0);
  EXPECT_TRUE(out.TargetMet());
}

TEST(CascadeTest, CascadeWithoutAgentBehavesLikeVmLevel) {
  Vm vm1(1, MakeSpec(), ExactOsParams());
  vm1.guest_os().set_app_used_mb(10000.0);
  Vm vm2(2, MakeSpec(), ExactOsParams());
  vm2.guest_os().set_app_used_mb(10000.0);
  CascadeController cascade(DeflationMode::kCascade);
  CascadeController vm_level(DeflationMode::kVmLevel);
  const ResourceVector target(2.0, 6000.0, 0.0, 0.0);
  const DeflationOutcome a = cascade.Deflate(vm1, nullptr, target);
  const DeflationOutcome b = vm_level.Deflate(vm2, nullptr, target);
  EXPECT_EQ(a.unplugged, b.unplugged);
  EXPECT_EQ(a.hv_reclaimed, b.hv_reclaimed);
}

TEST(CascadeTest, CpuUnplugIsWholeUnitsRestOvercommitted) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(1000.0);
  CascadeController controller(DeflationMode::kVmLevel);
  const DeflationOutcome out =
      controller.Deflate(vm, nullptr, ResourceVector(2.5, 0.0));
  EXPECT_DOUBLE_EQ(out.unplugged.cpu(), 2.0);
  EXPECT_DOUBLE_EQ(out.hv_reclaimed.cpu(), 0.5);
  EXPECT_TRUE(out.TargetMet());
  const EffectiveAllocation a = vm.allocation();
  EXPECT_DOUBLE_EQ(a.visible_cpus, 2.0);
  EXPECT_DOUBLE_EQ(a.cpu_capacity, 1.5);
}

TEST(CascadeTest, DiskAndNetworkAlwaysViaHypervisor) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  CascadeController controller(DeflationMode::kVmLevel);
  const DeflationOutcome out =
      controller.Deflate(vm, nullptr, ResourceVector(0.0, 0.0, 50.0, 500.0));
  EXPECT_DOUBLE_EQ(out.unplugged.disk_bw(), 0.0);
  EXPECT_DOUBLE_EQ(out.hv_reclaimed.disk_bw(), 50.0);
  EXPECT_DOUBLE_EQ(out.hv_reclaimed.net_bw(), 500.0);
}

TEST(CascadeTest, NegativeTargetIsNoOp) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  CascadeController controller(DeflationMode::kCascade);
  const DeflationOutcome out =
      controller.Deflate(vm, nullptr, ResourceVector(-1.0, -100.0));
  EXPECT_TRUE(out.TotalReclaimed().IsZero());
  EXPECT_EQ(vm.effective(), vm.size());
}

TEST(CascadeTest, LatencyOrderingAcrossModes) {
  // Same target, three mechanisms: cascade (app frees) < vm-level (some
  // unplug) < hypervisor-only (all swap). The Figure 8b ordering.
  const ResourceVector target(0.0, 8000.0, 0.0, 0.0);

  Vm hv_vm(1, MakeSpec(), ExactOsParams());
  hv_vm.guest_os().set_app_used_mb(14000.0);
  CascadeController hv(DeflationMode::kHypervisorOnly);
  const double t_hv = hv.Deflate(hv_vm, nullptr, target).latency_seconds;

  Vm vml_vm(2, MakeSpec(), ExactOsParams());
  vml_vm.guest_os().set_app_used_mb(14000.0);
  CascadeController vml(DeflationMode::kVmLevel);
  const double t_vml = vml.Deflate(vml_vm, nullptr, target).latency_seconds;

  Vm casc_vm(3, MakeSpec(), ExactOsParams());
  casc_vm.guest_os().set_app_used_mb(14000.0);
  MemoryFreeingAgent agent(14000.0, 4000.0);
  CascadeController casc(DeflationMode::kCascade);
  const double t_casc = casc.Deflate(casc_vm, &agent, target).latency_seconds;

  EXPECT_LT(t_casc, t_vml);
  EXPECT_LT(t_vml, t_hv);
}

TEST(CascadeTest, ReinflateReversesHypervisorFirst) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(12000.0);
  CascadeController controller(DeflationMode::kVmLevel);
  controller.Deflate(vm, nullptr, ResourceVector(0.0, 8000.0));
  const double hv_before = vm.hv_reclaimed().memory_mb();
  ASSERT_GT(hv_before, 0.0);
  // Return less than the hypervisor-reclaimed amount: only HvRelease runs.
  const ResourceVector back =
      controller.Reinflate(vm, nullptr, ResourceVector(0.0, hv_before / 2.0));
  EXPECT_DOUBLE_EQ(back.memory_mb(), hv_before / 2.0);
  EXPECT_DOUBLE_EQ(vm.hv_reclaimed().memory_mb(), hv_before / 2.0);
  EXPECT_DOUBLE_EQ(vm.guest_os().unplugged().memory_mb(), 3500.0);  // untouched
}

TEST(CascadeTest, ReinflateFullyRestoresVm) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(10000.0);
  MemoryFreeingAgent agent(10000.0, 2000.0);
  CascadeController controller(DeflationMode::kCascade);
  controller.Deflate(vm, &agent, ResourceVector(2.0, 9000.0, 20.0, 200.0));
  const ResourceVector deflated_by = vm.size() - vm.effective();
  const ResourceVector back = controller.Reinflate(vm, &agent, deflated_by);
  EXPECT_EQ(back, deflated_by);
  EXPECT_EQ(vm.effective(), vm.size());
  EXPECT_TRUE(agent.reinflated().AnyPositive());
}

TEST(CascadeBalloonTest, BalloonLevelReclaimsViaBalloonThenHypervisor) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(12000.0);  // 3500 MB safely free
  CascadeController controller(DeflationMode::kBalloonLevel);
  const DeflationOutcome out =
      controller.Deflate(vm, nullptr, ResourceVector(0.0, 8000.0));
  EXPECT_GT(out.breakdown.balloon_mb, 0.0);
  EXPECT_GT(out.hv_reclaimed.memory_mb(), 0.0);
  EXPECT_TRUE(out.TargetMet());
  EXPECT_FALSE(vm.guest_os().UnderOomPressure());
}

TEST(CascadeBalloonTest, HotplugBeatsBallooningOnUsableMemoryAndLatency) {
  // The Section 7 comparison [47, 54]: at the same reclamation target,
  // hot-unplug leaves the guest more usable memory (no fragmentation) and
  // completes faster (no page-at-a-time balloon inflation).
  const ResourceVector target(0.0, 6000.0, 0.0, 0.0);

  Vm unplug_vm(1, MakeSpec(), ExactOsParams());
  unplug_vm.guest_os().set_app_used_mb(8000.0);
  CascadeController hotplug(DeflationMode::kVmLevel);
  const DeflationOutcome unplug_out = hotplug.Deflate(unplug_vm, nullptr, target);

  Vm balloon_vm(2, MakeSpec(), ExactOsParams());
  balloon_vm.guest_os().set_app_used_mb(8000.0);
  CascadeController balloon(DeflationMode::kBalloonLevel);
  const DeflationOutcome balloon_out = balloon.Deflate(balloon_vm, nullptr, target);

  EXPECT_TRUE(unplug_out.TargetMet());
  EXPECT_TRUE(balloon_out.TargetMet());
  // Both gave the host the same amount back...
  EXPECT_NEAR(unplug_vm.effective().memory_mb(), balloon_vm.effective().memory_mb(),
              1e-6);
  // ...but the ballooned guest lost extra usable memory to fragmentation
  // and took longer to reclaim.
  EXPECT_GT(unplug_vm.allocation().guest_memory_mb,
            balloon_vm.allocation().guest_memory_mb);
  EXPECT_LT(unplug_out.latency_seconds, balloon_out.latency_seconds);
}

TEST(CascadeBalloonTest, ReinflateDeflatesTheBalloon) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(8000.0);
  CascadeController controller(DeflationMode::kBalloonLevel);
  controller.Deflate(vm, nullptr, ResourceVector(0.0, 6000.0));
  const ResourceVector back =
      controller.Reinflate(vm, nullptr, vm.size() - vm.effective());
  EXPECT_NEAR(back.memory_mb(), 6000.0, 1e-6);
  EXPECT_DOUBLE_EQ(vm.guest_os().balloon_mb(), 0.0);
  EXPECT_EQ(vm.effective(), vm.size());
}

TEST(CascadeDeadlineTest, NoDeadlineNeverClips) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(10000.0);
  CascadeController controller(DeflationMode::kVmLevel);
  const DeflationOutcome out =
      controller.Deflate(vm, nullptr, ResourceVector(2.0, 8000.0), CascadeOptions{});
  EXPECT_FALSE(out.deadline_clipped);
  EXPECT_TRUE(out.TargetMet());
}

TEST(CascadeDeadlineTest, TightDeadlineShiftsWorkToHypervisor) {
  // Two identical VMs, same target; the deadline-bound one unplugs less and
  // lets the hypervisor absorb the remainder -- the target is still met,
  // only the mechanism mix changes (Section 5 timeout fall-through).
  const ResourceVector target(0.0, 8000.0, 0.0, 0.0);

  Vm relaxed_vm(1, MakeSpec(), ExactOsParams());
  relaxed_vm.guest_os().set_app_used_mb(6000.0);
  CascadeController controller(DeflationMode::kVmLevel);
  const DeflationOutcome relaxed = controller.Deflate(relaxed_vm, nullptr, target);

  Vm rushed_vm(2, MakeSpec(), ExactOsParams());
  rushed_vm.guest_os().set_app_used_mb(6000.0);
  CascadeOptions options;
  options.deadline_s = 2.0;  // barely more than the fixed overhead
  const DeflationOutcome rushed = controller.Deflate(rushed_vm, nullptr, target, options);

  EXPECT_TRUE(rushed.deadline_clipped);
  EXPECT_LT(rushed.unplugged.memory_mb(), relaxed.unplugged.memory_mb());
  EXPECT_GT(rushed.hv_reclaimed.memory_mb(), relaxed.hv_reclaimed.memory_mb());
  EXPECT_TRUE(rushed.TargetMet());
}

TEST(CascadeDeadlineTest, DeadlineLimitsAgentAsk) {
  // The agent is only asked for what it can free within the budget.
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(14000.0);
  MemoryFreeingAgent agent(14000.0, 2000.0);
  CascadeController controller(DeflationMode::kCascade);
  CascadeOptions options;
  options.deadline_s = 4.0;  // fixed 1s + agent fixed 2s -> ~1s of freeing
  const DeflationOutcome out =
      controller.Deflate(vm, &agent, ResourceVector(0.0, 10000.0), options);
  EXPECT_TRUE(out.deadline_clipped);
  // ~1s at the app free rate (2500 MB/s) plus slack; far below 10000.
  EXPECT_LT(out.app_freed.memory_mb(), 4000.0);
  EXPECT_TRUE(out.TargetMet());  // hypervisor still covers the full target
}

TEST(CascadeDeadlineTest, CpuUnplugClippedByPerCpuCost) {
  Vm vm(1, MakeSpec(), ExactOsParams());
  vm.guest_os().set_app_used_mb(1000.0);
  CascadeController controller(DeflationMode::kVmLevel);
  CascadeOptions options;
  options.deadline_s = 1.0 + 0.6;  // fixed 1s + time for exactly one CPU
  const DeflationOutcome out =
      controller.Deflate(vm, nullptr, ResourceVector(3.0, 0.0), options);
  EXPECT_LE(out.unplugged.cpu(), 1.0);
  EXPECT_TRUE(out.TargetMet());  // shares cover the other two CPUs
}

TEST(DeflationModeTest, Names) {
  EXPECT_STREQ(DeflationModeName(DeflationMode::kHypervisorOnly), "hypervisor-only");
  EXPECT_STREQ(DeflationModeName(DeflationMode::kOsOnly), "os-only");
  EXPECT_STREQ(DeflationModeName(DeflationMode::kVmLevel), "vm-level");
  EXPECT_STREQ(DeflationModeName(DeflationMode::kCascade), "cascade");
}

}  // namespace
}  // namespace defl
