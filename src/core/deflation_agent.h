// Application deflation agent interface. In the paper this is a REST
// endpoint inside the VM that the per-server local controller calls with a
// deflation vector; the application responds with the amount of resources it
// voluntarily relinquished (Section 5, "Implementation details"). Here it is
// a virtual interface implemented by the application models in src/apps and
// by the Spark driver in src/spark.
#ifndef SRC_CORE_DEFLATION_AGENT_H_
#define SRC_CORE_DEFLATION_AGENT_H_

#include "src/resources/resource_vector.h"

namespace defl {

class DeflationAgent {
 public:
  virtual ~DeflationAgent() = default;

  // Asks the application to voluntarily relinquish up to `target` (absolute
  // amounts). The application applies its own policy -- it may free all,
  // part, or none of the request (inelastic apps simply return zero).
  // Returns what was actually freed.
  virtual ResourceVector SelfDeflate(const ResourceVector& target) = 0;

  // Notifies the application that `added` resources became available again
  // (reverse cascade, Section 5). The application may re-expand.
  virtual void OnReinflate(const ResourceVector& added) = 0;

  // Current application memory footprint in MB; the cascade controller
  // propagates this into the guest OS accounting so hot-unplug knows what
  // is safely free.
  virtual double MemoryFootprintMb() const = 0;
};

// Policy of inelastic applications (synchronous MPI, legacy single-VM apps):
// ignore deflation requests and let the OS + hypervisor handle everything.
class InelasticAgent : public DeflationAgent {
 public:
  explicit InelasticAgent(double footprint_mb) : footprint_mb_(footprint_mb) {}

  ResourceVector SelfDeflate(const ResourceVector& /*target*/) override {
    return ResourceVector::Zero();
  }
  void OnReinflate(const ResourceVector& /*added*/) override {}
  double MemoryFootprintMb() const override { return footprint_mb_; }

 private:
  double footprint_mb_;
};

}  // namespace defl

#endif  // SRC_CORE_DEFLATION_AGENT_H_
