file(REMOVE_RECURSE
  "CMakeFiles/ext_pricing_economics.dir/ext_pricing_economics.cc.o"
  "CMakeFiles/ext_pricing_economics.dir/ext_pricing_economics.cc.o.d"
  "ext_pricing_economics"
  "ext_pricing_economics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pricing_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
