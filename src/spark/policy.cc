#include "src/spark/policy.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace defl {
namespace {

// Deflating 100% would stall forever; clamp the denominator.
constexpr double kMaxFraction = 0.95;

double Clamp01(double x) { return std::clamp(x, 0.0, kMaxFraction); }

}  // namespace

const char* SparkDeflationChoiceName(SparkDeflationChoice choice) {
  switch (choice) {
    case SparkDeflationChoice::kSelfDeflate:
      return "self";
    case SparkDeflationChoice::kVmLevel:
      return "vm-level";
  }
  return "?";
}

double EstimateVmLevelTimeFactor(double c, double max_deflation,
                                 double overcommit_efficiency) {
  c = std::clamp(c, 0.0, 1.0);
  const double efficiency = std::clamp(overcommit_efficiency, 0.05, 1.0);
  return c + (1.0 - c) / ((1.0 - Clamp01(max_deflation)) * efficiency);
}

double EstimateSelfDeflationTimeFactor(double c, double mean_deflation, double r) {
  c = std::clamp(c, 0.0, 1.0);
  r = std::clamp(r, 0.0, 1.0);
  return c + (r * c + 1.0 - c) / (1.0 - Clamp01(mean_deflation));
}

SparkPolicyDecision DecideSparkDeflation(const SparkPolicyInputs& inputs,
                                         TelemetryContext* telemetry) {
  SparkPolicyDecision decision;
  const auto& d = inputs.deflation_fractions;
  assert(!d.empty());
  const double max_d = *std::max_element(d.begin(), d.end());
  const double mean_d =
      std::accumulate(d.begin(), d.end(), 0.0) / static_cast<double>(d.size());

  // Worst-case recomputation when a shuffle is about to run or when killing
  // tasks restarts the synchronous job outright.
  decision.r_used = (inputs.shuffle_imminent || inputs.synchronous_job)
                        ? 1.0
                        : inputs.r_estimate;

  decision.t_vm_factor = EstimateVmLevelTimeFactor(inputs.progress_c, max_d,
                                                   inputs.vm_overcommit_efficiency);
  decision.t_self_factor = EstimateSelfDeflationTimeFactor(
      inputs.progress_c, mean_d, decision.r_used);
  decision.choice = decision.t_self_factor < decision.t_vm_factor
                        ? SparkDeflationChoice::kSelfDeflate
                        : SparkDeflationChoice::kVmLevel;
  if (telemetry != nullptr) {
    // Decisions are per-round, not per-task: the idempotent name lookup here
    // is off the hot path.
    const bool self = decision.choice == SparkDeflationChoice::kSelfDeflate;
    MetricsRegistry& registry = telemetry->metrics();
    registry.Add(registry.Counter("spark/policy/decisions"));
    registry.Add(registry.Counter(self ? "spark/policy/self" : "spark/policy/vm_level"));
    telemetry->trace().Record(
        TraceEventKind::kSparkPolicy, CascadeLayer::kApplication, -1, -1,
        ResourceVector(decision.t_vm_factor, decision.t_self_factor, decision.r_used,
                       inputs.progress_c),
        ResourceVector::Zero(), self ? 1 : 0);
  }
  return decision;
}

}  // namespace defl
