#include "src/cluster/placement.h"

#include <algorithm>

namespace defl {
namespace {

bool Feasible(const Server& server, const ResourceVector& demand,
              AvailabilityMode mode) {
  return demand.AllLeq(ServerAvailability(server, mode));
}

}  // namespace

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kBestFit:
      return "best-fit";
    case PlacementPolicy::kFirstFit:
      return "first-fit";
    case PlacementPolicy::kTwoChoices:
      return "2-choices";
  }
  return "?";
}

double PlacementFitness(const ResourceVector& demand,
                        const ResourceVector& availability) {
  return ResourceVector::CosineSimilarity(demand, availability);
}

ResourceVector ServerAvailability(const Server& server, AvailabilityMode mode) {
  switch (mode) {
    case AvailabilityMode::kFreeOnly:
      return server.Free();
    case AvailabilityMode::kFreePlusDeflatable:
      return server.Availability();
    case AvailabilityMode::kFreePlusPreemptible: {
      ResourceVector preemptible;
      for (const auto& vm : server.vms()) {
        if (vm->priority() == VmPriority::kLow) {
          preemptible += vm->effective();
        }
      }
      return server.Free() + preemptible;
    }
  }
  return server.Free();
}

Result<size_t> PlaceVm(const ResourceVector& demand,
                       const std::vector<Server*>& servers, PlacementPolicy policy,
                       Rng& rng, AvailabilityMode mode) {
  if (servers.empty()) {
    return Error{"no servers"};
  }
  switch (policy) {
    case PlacementPolicy::kFirstFit:
      for (size_t i = 0; i < servers.size(); ++i) {
        if (Feasible(*servers[i], demand, mode)) {
          return i;
        }
      }
      return Error{"no feasible server (first-fit)"};

    case PlacementPolicy::kBestFit: {
      size_t best = servers.size();
      double best_fitness = -1.0;
      for (size_t i = 0; i < servers.size(); ++i) {
        if (!Feasible(*servers[i], demand, mode)) {
          continue;
        }
        const double fitness =
            PlacementFitness(demand, ServerAvailability(*servers[i], mode));
        if (fitness > best_fitness) {
          best_fitness = fitness;
          best = i;
        }
      }
      if (best == servers.size()) {
        return Error{"no feasible server (best-fit)"};
      }
      return best;
    }

    case PlacementPolicy::kTwoChoices: {
      // Sample two random servers and keep the fitter feasible one; retry a
      // few times before falling back to a full first-fit scan.
      constexpr int kAttempts = 8;
      for (int attempt = 0; attempt < kAttempts; ++attempt) {
        const auto a = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(servers.size()) - 1));
        const auto b = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(servers.size()) - 1));
        const bool fa = Feasible(*servers[a], demand, mode);
        const bool fb = Feasible(*servers[b], demand, mode);
        if (fa && fb) {
          const double fit_a =
              PlacementFitness(demand, ServerAvailability(*servers[a], mode));
          const double fit_b =
              PlacementFitness(demand, ServerAvailability(*servers[b], mode));
          return fit_a >= fit_b ? a : b;
        }
        if (fa) {
          return a;
        }
        if (fb) {
          return b;
        }
      }
      for (size_t i = 0; i < servers.size(); ++i) {
        if (Feasible(*servers[i], demand, mode)) {
          return i;
        }
      }
      return Error{"no feasible server (2-choices)"};
    }
  }
  return Error{"unknown policy"};
}

}  // namespace defl
