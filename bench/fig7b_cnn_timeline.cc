// Figure 7b: CNN training throughput over time under a 30-minute burst of
// 50% resource pressure (minutes 10-40). Three systems:
//   * baseline   -- no pressure, no checkpointing;
//   * deflation  -- VMs deflate for the window, then reinflate; no
//                   checkpointing needed;
//   * preemption -- the job must checkpoint periodically (paying ~20%
//                   throughput all the time); half the VMs are revoked for
//                   the window and the job restarts from the last checkpoint.
#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "src/spark/experiment.h"

namespace defl {
namespace {

constexpr double kBinS = 300.0;  // 5-minute bins
constexpr double kPressureStartS = 600.0;
constexpr double kPressureDurationS = 1800.0;
constexpr double kHorizonS = 4800.0;
// Sized so the training run spans the 80-minute horizon with ~1-minute
// iterations (several per reporting bin, for a smooth throughput signal).
constexpr double kScale = 5.0;
constexpr int kIterations = 84;

std::vector<double> ThroughputBins(const SparkExperimentResult& result) {
  std::vector<double> bins(static_cast<size_t>(kHorizonS / kBinS), 0.0);
  for (const auto& completion : result.completion_log) {
    const auto bin = static_cast<size_t>(completion.time / kBinS);
    if (bin < bins.size()) {
      bins[bin] += completion.records / kBinS;
    }
  }
  return bins;
}

SparkExperimentResult RunScenario(SparkReclamationApproach approach,
                                  bool with_checkpointing) {
  const SparkWorkload wl = MakeCnnWorkload(kScale, with_checkpointing, kIterations);
  SparkExperimentConfig config;
  config.approach = approach;
  config.deflation_fraction = approach == SparkReclamationApproach::kNone ? 0.0 : 0.5;
  config.deflate_at_time_s = kPressureStartS;
  config.reinflate_after_s = kPressureDurationS;
  config.sim_time_limit_s = kHorizonS;
  return RunSparkExperiment(wl, config);
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Figure 7b", "CNN training throughput under transient pressure");
  bench::PrintNote("50% pressure during minutes 10-40; records/second in 5-min bins.");
  bench::PrintNote("Preemption requires periodic checkpointing (~20% overhead) and");
  bench::PrintNote("restarts from the last checkpoint when VMs are revoked.");

  const auto baseline = ThroughputBins(RunScenario(SparkReclamationApproach::kNone, false));
  const auto deflation =
      ThroughputBins(RunScenario(SparkReclamationApproach::kVmLevel, false));
  const auto preemption =
      ThroughputBins(RunScenario(SparkReclamationApproach::kPreemption, true));

  bench::PrintColumns({"minute", "baseline", "deflation", "preemption"});
  for (size_t bin = 0; bin < baseline.size(); ++bin) {
    bench::PrintCell(static_cast<double>(bin) * kBinS / 60.0);
    bench::PrintCell(baseline[bin]);
    bench::PrintCell(deflation[bin]);
    bench::PrintCell(preemption[bin]);
    bench::EndRow();
  }
  return 0;
}
