// Deflation-aware load balancing: a 4-backend web cluster under resource
// pressure. When two backends are deflated by 50%, a capacity-oblivious
// balancer keeps overloading them (dropped requests, high latency) while the
// deflation-aware balancer re-weights traffic and serves everything the
// remaining capacity allows.
#include <cstdio>

#include "src/apps/web_cluster.h"

using namespace defl;

namespace {

void Report(const char* when, WebCluster& cluster, double offered) {
  std::printf("%s (offered %.0f rps, capacity %.0f rps)\n", when, offered,
              cluster.TotalCapacityRps());
  for (const LoadBalancingPolicy policy :
       {LoadBalancingPolicy::kDeflationAware, LoadBalancingPolicy::kEvenSplit}) {
    const WebClusterMetrics m = cluster.Evaluate(offered, policy);
    std::printf("  %-16s served %6.0f rps, dropped %5.0f rps, mean RT %7.0f us\n",
                LoadBalancingPolicyName(policy), m.served_rps, m.dropped_rps,
                m.mean_response_us);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const ResourceVector vm_size(4.0, 16384.0, 100.0, 1000.0);
  WebCluster cluster(4, vm_size);
  const double offered = 0.6 * cluster.TotalCapacityRps();

  Report("before deflation", cluster, offered);

  std::printf("-- resource pressure: backends 0 and 1 deflated by 50%% --\n\n");
  cluster.DeflateBackend(0, vm_size * 0.5);
  cluster.DeflateBackend(1, vm_size * 0.5);
  Report("while deflated", cluster, offered);

  cluster.ReinflateBackend(0);
  cluster.ReinflateBackend(1);
  Report("after reinflation", cluster, offered);
  return 0;
}
