#include "src/apps/webserver.h"

#include <algorithm>
#include <cmath>

namespace defl {

ResourceVector WebServerAgent::SelfDeflate(const ResourceVector& target) {
  ResourceVector freed;
  const double footprint_before = MemoryFootprintMb();
  // CPU deflation response: shrink the pool so runnable threads match what
  // will remain, avoiding multiplexing penalties. The relinquished CPU is
  // then reclaimable without LHP risk.
  if (target.cpu() > 0.0) {
    const auto threads_per_core =
        static_cast<double>(model_->config().configured_threads) /
        model_->config().baseline_cpus;
    const int shed_threads =
        static_cast<int>(std::floor(target.cpu() * threads_per_core));
    const int new_threads = std::max(1, model_->threads() - shed_threads);
    const int actually_shed = model_->threads() - new_threads;
    model_->ResizeThreadPool(new_threads);
    freed[ResourceKind::kCpu] =
        std::floor(static_cast<double>(actually_shed) / threads_per_core);
  }
  // Shrinking the pool also returns the shed workers' stacks and buffers.
  freed[ResourceKind::kMemory] = std::max(0.0, footprint_before - MemoryFootprintMb());
  return freed;
}

void WebServerAgent::OnReinflate(const ResourceVector& added) {
  if (added.cpu() > 0.0) {
    const auto threads_per_core =
        static_cast<double>(model_->config().configured_threads) /
        model_->config().baseline_cpus;
    const int grow = static_cast<int>(std::floor(added.cpu() * threads_per_core));
    model_->ResizeThreadPool(
        std::min(model_->config().configured_threads, model_->threads() + grow));
  }
}

double WebServerAgent::MemoryFootprintMb() const { return model_->MemoryFootprintMb(); }

WebServerModel::WebServerModel(const WebServerConfig& config)
    : config_(config), threads_(config.configured_threads), agent_(this) {}

void WebServerModel::ResizeThreadPool(int threads) {
  threads_ = std::clamp(threads, 1, config_.configured_threads);
}

double WebServerModel::MemoryFootprintMb() const {
  return config_.app_base_mb + config_.per_thread_mb * threads_;
}

double WebServerModel::ThroughputRps(const EffectiveAllocation& alloc) const {
  if (alloc.guest_memory_mb < MemoryFootprintMb()) {
    return 0.0;
  }
  const double rate = CappedParallelRate(static_cast<double>(threads_),
                                         alloc.visible_cpus, alloc.cpu_capacity,
                                         config_.costs);
  return rate * 1e6 / config_.base_service_us;
}

void WebServerModel::SetBaseline(const EffectiveAllocation& alloc) {
  baseline_rps_ = ThroughputRps(alloc);
}

double WebServerModel::NormalizedPerformance(const EffectiveAllocation& alloc) const {
  if (baseline_rps_ <= 0.0) {
    return 0.0;
  }
  return ThroughputRps(alloc) / baseline_rps_;
}

}  // namespace defl
