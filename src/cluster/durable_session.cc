#include "src/cluster/durable_session.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <utility>
#include <vector>

#include "src/common/atomic_file.h"
#include "src/common/crash_point.h"
#include "src/sim/snapshot_io.h"

namespace defl {
namespace {

namespace fs = std::filesystem;

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

// ckpt-<id>.snap -> id, or -1 for anything else in the directory.
int64_t CheckpointIdFromName(const std::string& name) {
  constexpr const char* kPrefix = "ckpt-";
  constexpr const char* kSuffix = ".snap";
  if (name.size() < 5 + 5 + 1 || name.compare(0, 5, kPrefix) != 0 ||
      name.compare(name.size() - 5, 5, kSuffix) != 0) {
    return -1;
  }
  const std::string digits = name.substr(5, name.size() - 10);
  if (digits.empty()) {
    return -1;
  }
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      return -1;
    }
  }
  return static_cast<int64_t>(std::strtoull(digits.c_str(), nullptr, 10));
}

struct CheckpointFile {
  uint64_t id = 0;
  std::string path;
};

// Every ckpt-<id>.snap in `dir`, newest id first.
std::vector<CheckpointFile> ListCheckpoints(const std::string& dir) {
  std::vector<CheckpointFile> files;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const int64_t id = CheckpointIdFromName(entry.path().filename().string());
    if (id >= 0) {
      files.push_back(
          CheckpointFile{static_cast<uint64_t>(id), entry.path().string()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const CheckpointFile& a, const CheckpointFile& b) {
              return a.id > b.id;
            });
  return files;
}

// Newest checkpoint marker per id (a WAL can mention an id once only, but a
// truncated-and-rewritten tail is conceivable; last one wins).
std::map<uint64_t, WalRecord> CheckpointMarkers(const WalReadResult& wal) {
  std::map<uint64_t, WalRecord> markers;
  for (const WalRecord& record : wal.records) {
    if (record.kind == WalRecordKind::kCheckpoint) {
      markers[record.checkpoint_id] = record;
    }
  }
  return markers;
}

// Restores the newest checkpoint that (a) passes the snapshot's own
// integrity framing and (b) matches its WAL marker fingerprint when the
// marker survived. Candidates failing either test are skipped -- a crash
// can leave at most torn garbage, never a wrong-but-plausible file, because
// snapshot writes are atomic.
Result<SimSession> RestoreNewestCheckpoint(
    const std::string& dir, const WalReadResult& wal,
    const SimSession::RestoreOptions& options) {
  const std::map<uint64_t, WalRecord> markers = CheckpointMarkers(wal);
  std::string skipped;
  for (const CheckpointFile& file : ListCheckpoints(dir)) {
    Result<std::string> bytes = ReadFileToString(file.path);
    if (!bytes.ok()) {
      skipped += "\n  " + file.path + ": " + bytes.error();
      continue;
    }
    const auto marker = markers.find(file.id);
    if (marker != markers.end() &&
        (marker->second.snapshot_size != bytes.value().size() ||
         marker->second.snapshot_fnv !=
             SnapshotFnv1a64(bytes.value().data(), bytes.value().size()))) {
      skipped += "\n  " + file.path + ": does not match its WAL marker";
      continue;
    }
    // Cheap full validation (magic/version/checksum) before committing the
    // caller's telemetry context to a restore attempt.
    const Result<SnapshotReader> framed = SnapshotReader::Open(bytes.value());
    if (!framed.ok()) {
      skipped += "\n  " + file.path + ": " + framed.error();
      continue;
    }
    Result<SimSession> session = SimSession::RestoreBytes(bytes.value(), options);
    if (session.ok()) {
      return session;
    }
    // A checksum-valid snapshot that fails semantic restore is a format bug,
    // not crash damage. Retrying is only safe into a fresh private context.
    if (options.telemetry != nullptr) {
      return Error{"cannot restore " + file.path + ": " + session.error()};
    }
    skipped += "\n  " + file.path + ": " + session.error();
  }
  return Error{"no recoverable checkpoint in " + dir +
               (skipped.empty() ? " (no ckpt-*.snap files)" : skipped)};
}

// Read-only replay: re-apply every journaled command. Commands are absolute
// targets, so records the restored checkpoint already covers no-op.
void ReplayCommands(SimSession& session, const std::vector<WalRecord>& records) {
  for (const WalRecord& record : records) {
    switch (record.kind) {
      case WalRecordKind::kStepUntil:
        session.StepUntil(record.t_s);
        break;
      case WalRecordKind::kStepEventsTo: {
        const int64_t diff = record.target_events - session.events_executed();
        if (diff > 0) {
          session.StepEvents(diff);
        }
        break;
      }
      case WalRecordKind::kCheckpoint:
        break;
    }
  }
}

// First cadence boundary strictly after `now`.
double NextBoundary(double now, double every_s) {
  double b = (std::floor(now / every_s) + 1.0) * every_s;
  if (b <= now) {
    b += every_s;
  }
  return b;
}

}  // namespace

Result<SimSession> SimSession::Recover(const std::string& dir,
                                       const RestoreOptions& options) {
  Result<WalReadResult> wal = ReadWalFile(WalPath(dir));
  if (!wal.ok()) {
    return Error{"cannot recover " + dir + ": " + wal.error()};
  }
  Result<SimSession> session =
      RestoreNewestCheckpoint(dir, wal.value(), options);
  if (!session.ok()) {
    return Error{"cannot recover " + dir + ": " + session.error()};
  }
  ReplayCommands(session.value(), wal.value().records);
  return session;
}

DurableSession::DurableSession(SimSession session, WalWriter wal,
                               Options options)
    : session_(std::move(session)),
      wal_(std::move(wal)),
      options_(std::move(options)) {
  if (options_.keep_checkpoints < 1) {
    options_.keep_checkpoints = 1;
  }
  last_ckpt_wall_ = std::chrono::steady_clock::now();
}

std::string DurableSession::CheckpointPath(uint64_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06llu.snap",
                static_cast<unsigned long long>(id));
  return options_.dir + "/" + name;
}

bool DurableSession::CanRecover(const std::string& dir) {
  const Result<WalReadResult> wal = ReadWalFile(WalPath(dir));
  return wal.ok() && !ListCheckpoints(dir).empty();
}

Result<DurableSession> DurableSession::Create(const ClusterSimConfig& config,
                                              const Options& options) {
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Error{"cannot create durable dir " + options.dir + ": " +
                 ec.message()};
  }
  Result<WalWriter> wal = WalWriter::Create(WalPath(options.dir));
  if (!wal.ok()) {
    return Error{wal.error()};
  }
  Result<SimSession> session = SimSession::Open(config);
  if (!session.ok()) {
    return Error{session.error()};
  }
  DurableSession durable(std::move(session.value()), std::move(wal.value()),
                         options);
  // Genesis checkpoint: from the first acknowledged command on, recovery
  // always has a base to replay against.
  const Result<bool> genesis = durable.Checkpoint();
  if (!genesis.ok()) {
    return Error{"cannot write genesis checkpoint: " + genesis.error()};
  }
  return durable;
}

Result<DurableSession> DurableSession::Recover(const Options& options) {
  Result<WalReadResult> wal_read = ReadWalFile(WalPath(options.dir));
  if (!wal_read.ok()) {
    return Error{"cannot recover " + options.dir + ": " + wal_read.error()};
  }
  const WalReadResult& wal = wal_read.value();

  SimSession::RestoreOptions restore;
  restore.telemetry = options.telemetry;
  restore.threads = options.threads;
  Result<SimSession> session = RestoreNewestCheckpoint(options.dir, wal, restore);
  if (!session.ok()) {
    return Error{"cannot recover " + options.dir + ": " + session.error()};
  }

  // Reattach the journal, truncating any torn tail first: the next append
  // lands directly after the last record that was ever acknowledged.
  Result<WalWriter> writer = WalWriter::OpenAt(WalPath(options.dir), wal.valid_bytes);
  if (!writer.ok()) {
    return Error{"cannot recover " + options.dir + ": " + writer.error()};
  }

  DurableSession durable(std::move(session.value()), std::move(writer.value()),
                         options);
  // Continue checkpoint ids past everything ever mentioned -- markers whose
  // snapshot never landed and files whose marker was truncated included.
  uint64_t max_id = 0;
  bool any_id = false;
  for (const auto& [id, marker] : CheckpointMarkers(wal)) {
    (void)marker;
    max_id = std::max(max_id, id);
    any_id = true;
  }
  for (const CheckpointFile& file : ListCheckpoints(options.dir)) {
    max_id = std::max(max_id, file.id);
    any_id = true;
  }
  durable.next_checkpoint_id_ = any_id ? max_id + 1 : 0;
  // Dedupe key = the restored state: an immediately repeated recovery (or a
  // finished run restarted by a supervisor) won't accrete identical
  // snapshots under fresh ids.
  durable.last_ckpt_time_s_ = durable.session_.now();
  durable.last_ckpt_events_ = durable.session_.events_executed();

  // Re-apply the journaled command suffix THROUGH the auto-checkpoint path:
  // cadence boundaries the dead process never reached are checkpointed as
  // the replay crosses them, so a kill chain always makes durable progress
  // (each generation can die and the next resumes further along).
  for (const WalRecord& record : wal.records) {
    switch (record.kind) {
      case WalRecordKind::kStepUntil: {
        const Result<bool> applied = durable.ApplyStepUntil(record.t_s, false);
        if (!applied.ok()) {
          return Error{applied.error()};
        }
        break;
      }
      case WalRecordKind::kStepEventsTo: {
        const int64_t diff =
            record.target_events - durable.session_.events_executed();
        if (diff > 0) {
          durable.session_.StepEvents(diff);
        }
        break;
      }
      case WalRecordKind::kCheckpoint:
        break;
    }
  }
  // Post-replay checkpoint (deduped when replay advanced nothing): whatever
  // this recovery recomputed is immediately durable.
  const Result<bool> sealed = durable.Checkpoint();
  if (!sealed.ok()) {
    return Error{sealed.error()};
  }
  return durable;
}

Result<bool> DurableSession::ApplyStepUntil(double t, bool journal) {
  if (journal) {
    const Result<bool> appended = wal_.Append(WalRecord::StepUntil(t));
    if (!appended.ok()) {
      return appended;
    }
  }
  if (options_.checkpoint_every_s > 0.0) {
    const double target = std::min(t, session_.duration_s());
    double boundary = NextBoundary(session_.now(), options_.checkpoint_every_s);
    while (boundary <= target) {
      session_.StepUntil(boundary);
      const Result<bool> saved = CheckpointInternal(/*forced=*/false);
      if (!saved.ok()) {
        return saved;
      }
      boundary = NextBoundary(session_.now(), options_.checkpoint_every_s);
    }
  }
  session_.StepUntil(t);
  return true;
}

Result<bool> DurableSession::StepUntil(double t) {
  return ApplyStepUntil(t, /*journal=*/true);
}

Result<int64_t> DurableSession::StepEvents(int64_t max_events) {
  // Journal the ABSOLUTE post-step event count: replay after a crash
  // re-runs "until N total", which no-ops once the state already holds N.
  const int64_t target = session_.events_executed() + max_events;
  const Result<bool> appended = wal_.Append(WalRecord::StepEventsTo(target));
  if (!appended.ok()) {
    return Error{appended.error()};
  }
  return session_.StepEvents(max_events);
}

Result<bool> DurableSession::Checkpoint() {
  return CheckpointInternal(/*forced=*/true);
}

Result<bool> DurableSession::CheckpointInternal(bool forced) {
  if (session_.now() == last_ckpt_time_s_ &&
      session_.events_executed() == last_ckpt_events_) {
    return true;  // nothing advanced since the newest durable snapshot
  }
  // The wall-clock gate: on a run that clears many cadence boundaries per
  // wall-second there is no durability value in checkpointing each one --
  // skipping keeps the overhead bounded by (checkpoint cost / interval)
  // while a crash still loses at most min_checkpoint_wall_s of wall time.
  if (!forced && options_.min_checkpoint_wall_s > 0.0) {
    const std::chrono::duration<double> since =
        std::chrono::steady_clock::now() - last_ckpt_wall_;
    if (since.count() < options_.min_checkpoint_wall_s) {
      ++checkpoints_gated_;
      return true;
    }
  }
  const std::string bytes = session_.SnapshotBytes();
  const uint64_t id = next_checkpoint_id_++;
  // Marker BEFORE snapshot: a marker without its file means "checkpoint cut
  // short" (recovery skips it); a file without a marker can only appear if
  // corruption truncated the WAL, and then the file still self-validates.
  const Result<bool> marked = wal_.Append(WalRecord::Checkpoint(
      id, session_.now(), session_.events_executed(),
      SnapshotFnv1a64(bytes.data(), bytes.size()), bytes.size()));
  if (!marked.ok()) {
    return marked;
  }
  CrashPoint("ckpt-marker-synced");
  const Result<bool> written = WriteFileAtomic(CheckpointPath(id), bytes);
  if (!written.ok()) {
    return written;
  }
  CrashPoint("ckpt-snapshot-written");
  // Retention only after the newer snapshot is durably in place: the newest
  // K files always include at least one complete recovery point.
  const std::vector<CheckpointFile> files = ListCheckpoints(options_.dir);
  for (size_t i = static_cast<size_t>(options_.keep_checkpoints);
       i < files.size(); ++i) {
    std::error_code ec;
    fs::remove(files[i].path, ec);
  }
  if (files.size() > static_cast<size_t>(options_.keep_checkpoints)) {
    SyncParentDir(CheckpointPath(id));
  }
  CrashPoint("ckpt-retired");
  last_ckpt_time_s_ = session_.now();
  last_ckpt_events_ = session_.events_executed();
  last_ckpt_wall_ = std::chrono::steady_clock::now();
  ++checkpoints_written_;
  return true;
}

Result<ClusterSimResult> DurableSession::Finish() {
  const Result<bool> stepped = StepUntil(session_.duration_s());
  if (!stepped.ok()) {
    return Error{stepped.error()};
  }
  // Final checkpoint: a supervisor restart after completion (e.g. killed
  // while exporting metrics) recovers instantly and just re-exports.
  const Result<bool> saved = Checkpoint();
  if (!saved.ok()) {
    return Error{saved.error()};
  }
  return session_.Finish();
}

}  // namespace defl
