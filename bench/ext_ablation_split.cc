// Ablation (DESIGN.md): proportional vs equal deflation split, and the
// alpha safety margin. A heterogeneous server (one 12-vCPU and three 2-vCPU
// transient VMs) must give up increasing amounts of resources; we report the
// worst per-VM deflation fraction -- the straggler-maker for BSP jobs
// (Equation 1 depends on max(d)) -- under each split policy, and the unplug
// vs hypervisor mix as alpha grows.
#include <memory>

#include "bench/bench_util.h"
#include "src/core/local_controller.h"

namespace defl {
namespace {

std::unique_ptr<Vm> MakeVm(VmId id, double cpus) {
  VmSpec spec;
  spec.name = "vm" + std::to_string(id);
  spec.size = ResourceVector(cpus, cpus * 4096.0, cpus * 25.0, cpus * 300.0);
  spec.priority = VmPriority::kLow;
  return std::make_unique<Vm>(id, spec);
}

struct SplitResult {
  double max_fraction = 0.0;
  double mean_fraction = 0.0;
};

SplitResult RunSplit(DeflationSplit split, double reclaim_fraction) {
  Server server(1, ResourceVector(18.0, 18.0 * 4096.0, 450.0, 5400.0));
  server.AddVm(MakeVm(1, 12.0));
  server.AddVm(MakeVm(2, 2.0));
  server.AddVm(MakeVm(3, 2.0));
  server.AddVm(MakeVm(4, 2.0));
  for (const auto& vm : server.vms()) {
    vm->guest_os().set_app_used_mb(vm->size().memory_mb() * 0.5);
  }
  LocalControllerConfig config;
  config.mode = DeflationMode::kVmLevel;
  config.split = split;
  LocalController controller(&server, config);
  controller.MakeRoom(server.capacity() * reclaim_fraction);

  SplitResult result;
  double sum = 0.0;
  for (const auto& vm : server.vms()) {
    const double d = vm->MaxDeflationFraction();
    result.max_fraction = std::max(result.max_fraction, d);
    sum += d;
  }
  result.mean_fraction = sum / static_cast<double>(server.vms().size());
  return result;
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Ablation: deflation split",
                     "proportional vs equal split on a heterogeneous server");
  bench::PrintNote("One 12-vCPU + three 2-vCPU transient VMs; Equation 1's straggler");
  bench::PrintNote("term grows with max(d), so a lower max fraction is better.");
  bench::PrintColumns({"reclaim%", "prop-max(d)", "prop-mean(d)", "equal-max(d)",
                       "equal-mean(d)"});
  for (const double f : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    const SplitResult prop = RunSplit(DeflationSplit::kProportional, f);
    const SplitResult equal = RunSplit(DeflationSplit::kEqual, f);
    bench::PrintCell(f * 100.0);
    bench::PrintCell(prop.max_fraction);
    bench::PrintCell(prop.mean_fraction);
    bench::PrintCell(equal.max_fraction);
    bench::PrintCell(equal.mean_fraction);
    bench::EndRow();
  }
  return 0;
}
