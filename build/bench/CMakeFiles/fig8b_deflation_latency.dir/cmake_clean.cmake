file(REMOVE_RECURSE
  "CMakeFiles/fig8b_deflation_latency.dir/fig8b_deflation_latency.cc.o"
  "CMakeFiles/fig8b_deflation_latency.dir/fig8b_deflation_latency.cc.o.d"
  "fig8b_deflation_latency"
  "fig8b_deflation_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_deflation_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
