// SimSession: the steppable public surface of the cluster simulation.
// Where RunClusterSim() replays a whole trace in one opaque call, a session
// lets an external driver interleave with the simulation -- advance to a
// chosen time, inspect live cluster state, checkpoint to disk, and resume a
// killed run days later:
//
//   Result<SimSession> session = SimSession::Open(config);
//   session.value().StepUntil(12 * 3600.0);
//   session.value().Snapshot("run.snap");       // kill-safe checkpoint
//   ...
//   Result<SimSession> resumed = SimSession::Restore("run.snap");
//   ClusterSimResult result = resumed.value().Finish();
//
// Determinism contract (DESIGN.md §11): a snapshot captures the *complete*
// simulation state -- virtual clock, pending event queue, RNG streams,
// fault-injector cursors, per-VM deflation state, telemetry registry and
// event trace -- so kill + Restore at any step boundary produces output
// byte-identical to the uninterrupted run, for any thread count on either
// side of the checkpoint. RunClusterSim() is now a thin wrapper over this
// class: Open + Finish.
#ifndef SRC_CLUSTER_SIM_SESSION_H_
#define SRC_CLUSTER_SIM_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/cluster/cluster_sim.h"
#include "src/common/result.h"

namespace defl {

// Read-only live views returned by SimSession::Inspect().
struct SimServerView {
  ServerId id = -1;
  ServerHealth health = ServerHealth::kHealthy;
  int64_t vm_count = 0;
  ResourceVector allocated;
  ResourceVector free;
  double nominal_overcommitment = 0.0;
};

struct SimInspectView {
  double now_s = 0.0;
  double duration_s = 0.0;
  int64_t events_executed = 0;
  int64_t pending_events = 0;  // still queued (including past the horizon)
  int64_t hosted_vms = 0;
  double utilization = 0.0;
  double overcommitment = 0.0;
  ClusterCounters counters;
  std::vector<SimServerView> servers;
};

class SimSession {
 public:
  struct RestoreOptions {
    // Publish into this context instead of a session-private one. It must be
    // freshly constructed (no metrics registered): Restore rebuilds the
    // snapshot's registry layout inside it and rejects any mismatch.
    TelemetryContext* telemetry = nullptr;
    // > 0 overrides the snapshotted ClusterConfig::threads. Outputs are
    // byte-identical for every value (DESIGN.md §10), so a snapshot taken
    // at --threads 8 restores exactly on a single-core box.
    int threads = 0;
    // >= 0 overrides the snapshotted placement policy (a PlacementPolicy
    // cast to int). The restored fleet state is untouched -- only future
    // placement decisions change. This is the sweep orchestrator's policy
    // axis (DESIGN.md §15); out-of-range values fail the restore.
    int placement = -1;
    // Interactive-serving override (the `slo` what-if query, DESIGN.md §16):
    // enables the SLO controller on the restored child -- or adjusts an
    // already-interactive run -- without disturbing restored fleet state.
    // Negative fields keep the snapshotted value. Overriding `fraction`
    // re-tags the regenerated trace, so it fails on explicit-trace
    // snapshots (there is no generator to rerun).
    struct SloOverride {
      bool active = false;
      double slo_p99_ms = -1.0;
      double fraction = -1.0;
      int policy = -1;  // 0 = uniform baseline, 1 = slo-aware
      double control_period_s = -1.0;
    };
    SloOverride slo;
  };

  // Builds the session and schedules the whole run (fault timeline, trace
  // arrivals, sampling and reinflation ticks) without executing anything:
  // the clock is at 0 until the first Step*. Fails on an invalid config.
  static Result<SimSession> Open(const ClusterSimConfig& config);

  // Rebuilds a session from Snapshot() output. Corrupted, truncated, or
  // version-skewed snapshots fail with a descriptive error, never a crash.
  static Result<SimSession> Restore(const std::string& path,
                                    const RestoreOptions& options);
  // Rebuilds a session from a durable run directory (DESIGN.md §13): loads
  // the newest valid checkpoint snapshot and re-applies the write-ahead
  // journal's command suffix, yielding the state an uninterrupted run would
  // hold -- no matter where (even mid-checkpoint or mid-WAL-append) the
  // writing process was SIGKILLed. Read-only: the directory is not touched;
  // use DurableSession to continue the run. Defined in durable_session.cc.
  static Result<SimSession> Recover(const std::string& dir,
                                    const RestoreOptions& options);
  static Result<SimSession> Recover(const std::string& dir) {
    return Recover(dir, RestoreOptions());
  }
  static Result<SimSession> Restore(const std::string& path) {
    return Restore(path, RestoreOptions());
  }
  static Result<SimSession> RestoreBytes(const std::string& bytes,
                                         const RestoreOptions& options);
  static Result<SimSession> RestoreBytes(const std::string& bytes) {
    return RestoreBytes(bytes, RestoreOptions());
  }
  // Zero-copy restore over caller-kept memory: the blob is only read during
  // the call and never written, so any number of sessions -- including
  // concurrently, from different threads -- can fork off one shared const
  // blob (the what-if service's copy-on-restore children, DESIGN.md §15).
  static Result<SimSession> RestoreView(std::string_view bytes,
                                        const RestoreOptions& options);

  SimSession(SimSession&&) noexcept;
  SimSession& operator=(SimSession&&) noexcept;
  ~SimSession();

  double now() const;
  double duration_s() const;
  int64_t events_executed() const;
  // True when no pending event is due within the simulated horizon.
  bool done() const;

  // Executes every event due at or before min(t, duration) and advances the
  // clock to that time (matching Simulator::Run boundary semantics).
  void StepUntil(double t);
  // Executes up to `max_events` due events, advancing the clock only as far
  // as the last one executed. Returns how many ran.
  int64_t StepEvents(int64_t max_events);

  SimInspectView Inspect() const;

  // Serializes the complete deterministic state (format: DESIGN.md §11).
  // Snapshot() writes atomically (temp file + rename).
  std::string SnapshotBytes() const;
  Result<bool> Snapshot(const std::string& path) const;

  // Runs the remainder of the simulation and derives the result from the
  // telemetry registry, exactly as RunClusterSim always has.
  ClusterSimResult Finish();

  // The telemetry context the run publishes through (session-owned unless a
  // sink was supplied via ClusterSimConfig::telemetry / RestoreOptions).
  TelemetryContext& telemetry();
  const ClusterSimConfig& config() const;
  // Deep access for tests and embedders; treat as read-only between steps.
  ClusterManager& manager();

  // Opaque implementation state (defined in sim_session.cc; public only so
  // the build helpers there can construct it).
  struct State;

 private:
  explicit SimSession(std::unique_ptr<State> state);

  std::unique_ptr<State> state_;
};

}  // namespace defl

#endif  // SRC_CLUSTER_SIM_SESSION_H_
