#include "src/apps/lru_cache.h"

#include <gtest/gtest.h>

#include <string>

#include "src/common/rng.h"

namespace defl {
namespace {

TEST(LruCacheTest, PutGetBasics) {
  LruCache<int, std::string> cache(3);
  cache.Put(1, "a");
  cache.Put(2, "b");
  EXPECT_EQ(cache.Get(1).value_or(""), "a");
  EXPECT_EQ(cache.Get(2).value_or(""), "b");
  EXPECT_FALSE(cache.Get(3).has_value());
  EXPECT_EQ(cache.entry_count(), 2);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_TRUE(cache.Get(1).has_value());  // 1 is now most recent
  cache.Put(3, 30);                       // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(LruCacheTest, UpdateRefreshesRecencyAndValue) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // update; 2 is now LRU
  cache.Put(3, 30);
  EXPECT_EQ(cache.Get(1).value_or(0), 11);
  EXPECT_FALSE(cache.Contains(2));
}

TEST(LruCacheTest, CostAccounting) {
  LruCache<int, int> cache(10);
  cache.Put(1, 1, 4);
  cache.Put(2, 2, 4);
  EXPECT_EQ(cache.size(), 8);
  cache.Put(3, 3, 4);  // evicts 1 (cost 4) to fit
  EXPECT_EQ(cache.size(), 8);
  EXPECT_FALSE(cache.Contains(1));
}

TEST(LruCacheTest, OversizedItemIsDropped) {
  LruCache<int, int> cache(5);
  cache.Put(1, 1, 10);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.size(), 0);
}

TEST(LruCacheTest, ResizeEvictsImmediately) {
  LruCache<int, int> cache(4);
  for (int i = 0; i < 4; ++i) {
    cache.Put(i, i);
  }
  ASSERT_TRUE(cache.Get(0).has_value());  // 0 most recent; LRU order 1,2,3
  cache.Resize(2);
  EXPECT_EQ(cache.entry_count(), 2);
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  // Growing back does not resurrect entries.
  cache.Resize(4);
  EXPECT_EQ(cache.entry_count(), 2);
}

TEST(LruCacheTest, EraseRemovesEntry) {
  LruCache<int, int> cache(4);
  cache.Put(1, 1);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.size(), 0);
}

TEST(LruCacheTest, HitRateCounters) {
  LruCache<int, int> cache(2);
  cache.Put(1, 1);
  cache.Get(1);
  cache.Get(2);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
  cache.ResetCounters();
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.0);
}

TEST(LruCacheTest, EmpiricalZipfHitRateMatchesAnalyticModel) {
  // Drive a real LRU with a Zipf stream and compare the measured hit rate
  // with the ZipfHeadFraction approximation used by the memcached model.
  // This validates the analytic curve the Figure 5 benches rely on.
  const int64_t universe = 50000;
  const int64_t capacity = 5000;
  const double s = 0.9;
  LruCache<int64_t, int> cache(capacity);
  ZipfDistribution zipf(universe, s);
  Rng rng(12345);

  // Warm up.
  for (int i = 0; i < 200000; ++i) {
    const int64_t key = zipf.Sample(rng);
    if (!cache.Get(key).has_value()) {
      cache.Put(key, 1);
    }
  }
  cache.ResetCounters();
  for (int i = 0; i < 400000; ++i) {
    const int64_t key = zipf.Sample(rng);
    if (!cache.Get(key).has_value()) {
      cache.Put(key, 1);
    }
  }
  const double analytic = ZipfHeadFraction(universe, capacity, s);
  // ZipfHeadFraction is the *ideal* top-k hit rate; real LRU under the
  // independent reference model underperforms it by a margin that shrinks
  // with skew (Che's approximation). Require the analytic curve to be a
  // modest upper bound, not an exact match.
  EXPECT_LE(cache.HitRate(), analytic + 0.01);
  EXPECT_GT(cache.HitRate(), analytic - 0.15);
  EXPECT_GT(cache.HitRate(), 0.5);  // still far above the 10% capacity ratio
}

}  // namespace
}  // namespace defl
