# Empty compiler generated dependencies file for local_controller_test.
# This may be replaced when dependencies are built.
