file(REMOVE_RECURSE
  "CMakeFiles/fig7a_deflation_timing.dir/fig7a_deflation_timing.cc.o"
  "CMakeFiles/fig7a_deflation_timing.dir/fig7a_deflation_timing.cc.o.d"
  "fig7a_deflation_timing"
  "fig7a_deflation_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_deflation_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
