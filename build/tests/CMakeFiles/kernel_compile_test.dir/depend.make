# Empty dependencies file for kernel_compile_test.
# This may be replaced when dependencies are built.
