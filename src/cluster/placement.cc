#include "src/cluster/placement.h"

#include <algorithm>
#include <cmath>

namespace defl {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kBestFit:
      return "best-fit";
    case PlacementPolicy::kFirstFit:
      return "first-fit";
    case PlacementPolicy::kTwoChoices:
      return "2-choices";
  }
  return "?";
}

double PlacementFitness(const ResourceVector& demand,
                        const ResourceVector& availability) {
  return ResourceVector::CosineSimilarity(demand, availability);
}

ResourceVector ServerAvailability(const Server& server, AvailabilityMode mode) {
  switch (mode) {
    case AvailabilityMode::kFreeOnly:
      return server.Free();
    case AvailabilityMode::kFreePlusDeflatable:
      return server.Availability();
    case AvailabilityMode::kFreePlusPreemptible:
      return server.Free() + server.Preemptible();
  }
  return server.Free();
}

namespace {

// Per-chunk scan result. `first_feasible` serves first-fit (min over chunks);
// (fitness, best_feasible) serves best-fit. Both reductions are
// order-independent under their total-order tie-breaks, so the fold is
// invariant to chunk boundaries and thread count.
struct ChunkScan {
  size_t first_feasible = SIZE_MAX;
  size_t best_feasible = SIZE_MAX;
  double best_fitness = -1.0;
};

// Shard the candidate scan only when it is worth a fork-join dispatch.
constexpr size_t kMinParallelCandidates = 32;
constexpr size_t kScanChunk = 64;

bool UseParallelScan(size_t candidates, ThreadPool* pool) {
  return pool != nullptr && pool->parallelism() > 1 &&
         candidates >= kMinParallelCandidates;
}

// Scans candidates [begin, end) exactly like the sequential loops below:
// feasibility and fitness consume one availability vector per server.
ChunkScan ScanRange(const ResourceVector& demand, const std::vector<Server*>& servers,
                    AvailabilityMode mode, bool need_fitness, size_t begin,
                    size_t end) {
  ChunkScan out;
  for (size_t i = begin; i < end; ++i) {
    const ResourceVector availability = ServerAvailability(*servers[i], mode);
    if (!demand.AllLeq(availability)) {
      continue;
    }
    if (out.first_feasible == SIZE_MAX) {
      out.first_feasible = i;
      if (!need_fitness) {
        return out;  // first-fit needs nothing past the first hit
      }
    }
    const double fitness = PlacementFitness(demand, availability);
    if (fitness > out.best_fitness ||
        (fitness == out.best_fitness && i < out.best_feasible)) {
      out.best_fitness = fitness;
      out.best_feasible = i;
    }
  }
  return out;
}

// Whole-candidate-set scan, sharded across `pool` when profitable. The merge
// folds chunks in ascending chunk order on the calling thread, but the
// tie-breaks make the outcome independent of that order too.
// Folds per-chunk results into one. Ascending chunk order on the calling
// thread, but the tie-breaks make the outcome independent of that order.
ChunkScan MergeChunks(const std::vector<ChunkScan>& partial) {
  ChunkScan merged;
  for (const ChunkScan& chunk : partial) {
    merged.first_feasible = std::min(merged.first_feasible, chunk.first_feasible);
    if (chunk.best_fitness > merged.best_fitness ||
        (chunk.best_fitness == merged.best_fitness &&
         chunk.best_feasible < merged.best_feasible)) {
      merged.best_fitness = chunk.best_fitness;
      merged.best_feasible = chunk.best_feasible;
    }
  }
  return merged;
}

// Pooled per-probe chunk scratch (DESIGN.md §14 retire-reclaim): placement
// runs thousands of probes per simulated hour, and a fresh vector per probe
// dominated the scan's allocation profile. Only the coordinating thread (the
// ParallelFor caller) sizes and merges the buffer; workers write disjoint
// elements of an already-sized vector, so no reallocation can race the
// dispatch. assign() re-default-initializes every slot, which is the retire
// step -- capacity survives, values do not.
std::vector<ChunkScan>& ChunkScratch(size_t chunks) {
  static thread_local std::vector<ChunkScan> scratch;
  scratch.assign(chunks, ChunkScan{});
  return scratch;
}

// Whole-candidate-set scan, sharded across `pool` when profitable.
ChunkScan ScanAll(const ResourceVector& demand, const std::vector<Server*>& servers,
                  AvailabilityMode mode, bool need_fitness, ThreadPool* pool) {
  if (!UseParallelScan(servers.size(), pool)) {
    return ScanRange(demand, servers, mode, need_fitness, 0, servers.size());
  }
  const size_t count = servers.size();
  const size_t chunks = (count + kScanChunk - 1) / kScanChunk;
  std::vector<ChunkScan>& partial = ChunkScratch(chunks);
  pool->ParallelFor(static_cast<int64_t>(chunks), [&](int64_t c) {
    const size_t begin = static_cast<size_t>(c) * kScanChunk;
    const size_t end = std::min(begin + kScanChunk, count);
    partial[static_cast<size_t>(c)] =
        ScanRange(demand, servers, mode, need_fitness, begin, end);
  });
  return MergeChunks(partial);
}

// --- Structure-of-arrays scan (FleetView) ---

// The two column sets whose elementwise sum is a row's availability under
// one mode. `extra` is null for kFreeOnly; the scan loop is specialized on
// that so the common path stays branch-free per candidate.
struct FleetCols {
  const double* base[kNumResources];
  const double* extra[kNumResources];
};

FleetCols ModeColumns(const FleetView& fleet, AvailabilityMode mode) {
  FleetCols cols;
  for (const ResourceKind kind : kAllResources) {
    const auto k = static_cast<size_t>(kind);
    cols.base[k] = fleet.free_col(kind);
    switch (mode) {
      case AvailabilityMode::kFreeOnly:
        cols.extra[k] = nullptr;
        break;
      case AvailabilityMode::kFreePlusDeflatable:
        cols.extra[k] = fleet.deflatable_col(kind);
        break;
      case AvailabilityMode::kFreePlusPreemptible:
        cols.extra[k] = fleet.preemptible_col(kind);
        break;
    }
  }
  return cols;
}

// Flat-loop equivalent of ScanRange over candidate positions [begin, end).
// Every floating-point operation replicates the object-graph path in the
// same order: availability = base (+ extra) per dimension (the same adds as
// Server::Availability), feasibility = AllLeq's per-dimension compare with
// the same epsilon, fitness = CosineSimilarity's dot / (|d| * |a|) with
// dimension-order accumulation and the degenerate-denominator guard. The
// loop reads only contiguous arrays: no pointer-chasing, no virtual calls,
// and the compiler can vectorize the per-dimension math.
template <bool kHasExtra>
ChunkScan ScanFleetRangeImpl(const FleetCols& cols, const double (&d)[kNumResources],
                             double demand_norm, const std::vector<uint32_t>& candidates,
                             bool need_fitness, size_t begin, size_t end) {
  constexpr double kEps = 1e-9;  // matches ResourceVector::AllLeq's default
  ChunkScan out;
  for (size_t i = begin; i < end; ++i) {
    const size_t row = candidates[i];
    double a[kNumResources];
    bool feasible = true;
    for (int k = 0; k < kNumResources; ++k) {
      a[k] = kHasExtra ? cols.base[k][row] + cols.extra[k][row] : cols.base[k][row];
      feasible &= !(d[k] > a[k] + kEps);
    }
    if (!feasible) {
      continue;
    }
    if (out.first_feasible == SIZE_MAX) {
      out.first_feasible = i;
      if (!need_fitness) {
        return out;
      }
    }
    double dot = 0.0;
    double norm2 = 0.0;
    for (int k = 0; k < kNumResources; ++k) {
      dot += d[k] * a[k];
      norm2 += a[k] * a[k];
    }
    const double denom = demand_norm * std::sqrt(norm2);
    const double fitness = denom == 0.0 ? 0.0 : dot / denom;
    if (fitness > out.best_fitness ||
        (fitness == out.best_fitness && i < out.best_feasible)) {
      out.best_fitness = fitness;
      out.best_feasible = i;
    }
  }
  return out;
}

ChunkScan ScanFleetRange(const FleetCols& cols, const double (&d)[kNumResources],
                         double demand_norm, const std::vector<uint32_t>& candidates,
                         bool need_fitness, size_t begin, size_t end) {
  return cols.extra[0] != nullptr
             ? ScanFleetRangeImpl<true>(cols, d, demand_norm, candidates,
                                        need_fitness, begin, end)
             : ScanFleetRangeImpl<false>(cols, d, demand_norm, candidates,
                                         need_fitness, begin, end);
}

// SoA whole-candidate scan; shards CANDIDATE INDEX RANGES across the pool
// (workers touch only the flat columns). Same chunk size, merge, and
// tie-breaks as the object-graph ScanAll, so the outcome is byte-identical
// at any thread count.
ChunkScan ScanAllFleet(const ResourceVector& demand, const FleetView& fleet,
                       const std::vector<uint32_t>& candidates, AvailabilityMode mode,
                       bool need_fitness, ThreadPool* pool) {
  const FleetCols cols = ModeColumns(fleet, mode);
  double d[kNumResources];
  for (const ResourceKind kind : kAllResources) {
    d[static_cast<size_t>(kind)] = demand[kind];
  }
  const double demand_norm = demand.Norm();
  const size_t count = candidates.size();
  if (!UseParallelScan(count, pool)) {
    return ScanFleetRange(cols, d, demand_norm, candidates, need_fitness, 0, count);
  }
  const size_t chunks = (count + kScanChunk - 1) / kScanChunk;
  std::vector<ChunkScan>& partial = ChunkScratch(chunks);
  pool->ParallelFor(static_cast<int64_t>(chunks), [&](int64_t c) {
    const size_t begin = static_cast<size_t>(c) * kScanChunk;
    const size_t end = std::min(begin + kScanChunk, count);
    partial[static_cast<size_t>(c)] =
        ScanFleetRange(cols, d, demand_norm, candidates, need_fitness, begin, end);
  });
  return MergeChunks(partial);
}

}  // namespace

Result<size_t> PlaceVm(const ResourceVector& demand,
                       const std::vector<Server*>& servers, PlacementPolicy policy,
                       Rng& rng, AvailabilityMode mode, ThreadPool* pool) {
  if (servers.empty()) {
    return Error{"no servers"};
  }
  // Each candidate's availability is computed exactly once per probe:
  // feasibility and fitness consume the same vector instead of re-deriving
  // it (the server-side aggregates are cached, but the vector assembly --
  // Free/clamp/adds -- is still worth sharing on the placement hot path).
  switch (policy) {
    case PlacementPolicy::kFirstFit: {
      const ChunkScan scan = ScanAll(demand, servers, mode, /*need_fitness=*/false, pool);
      if (scan.first_feasible == SIZE_MAX) {
        return Error{"no feasible server (first-fit)"};
      }
      return scan.first_feasible;
    }

    case PlacementPolicy::kBestFit: {
      const ChunkScan scan = ScanAll(demand, servers, mode, /*need_fitness=*/true, pool);
      if (scan.best_feasible == SIZE_MAX) {
        return Error{"no feasible server (best-fit)"};
      }
      return scan.best_feasible;
    }

    case PlacementPolicy::kTwoChoices: {
      // Sample two *distinct* random servers and keep the fitter feasible
      // one; retry a few times before falling back to a full first-fit
      // scan. (Sampling with replacement would silently degenerate to one
      // choice whenever both draws land on the same server.)
      constexpr int kAttempts = 8;
      const auto count = static_cast<int64_t>(servers.size());
      for (int attempt = 0; attempt < kAttempts; ++attempt) {
        const auto a = static_cast<size_t>(rng.UniformInt(0, count - 1));
        size_t b = a;
        if (count >= 2) {
          // Draw from the count-1 servers that are not `a`.
          b = static_cast<size_t>(rng.UniformInt(0, count - 2));
          if (b >= a) {
            ++b;
          }
        }
        const ResourceVector avail_a = ServerAvailability(*servers[a], mode);
        const bool fa = demand.AllLeq(avail_a);
        if (b == a) {
          if (fa) {
            return a;
          }
          continue;
        }
        const ResourceVector avail_b = ServerAvailability(*servers[b], mode);
        const bool fb = demand.AllLeq(avail_b);
        if (fa && fb) {
          const double fit_a = PlacementFitness(demand, avail_a);
          const double fit_b = PlacementFitness(demand, avail_b);
          return fit_a >= fit_b ? a : b;
        }
        if (fa) {
          return a;
        }
        if (fb) {
          return b;
        }
      }
      const ChunkScan scan = ScanAll(demand, servers, mode, /*need_fitness=*/false, pool);
      if (scan.first_feasible == SIZE_MAX) {
        return Error{"no feasible server (2-choices)"};
      }
      return scan.first_feasible;
    }
  }
  return Error{"unknown policy"};
}

ResourceVector FleetAvailability(const FleetView& fleet, size_t row,
                                 AvailabilityMode mode) {
  // Elementwise assembly in the same operation order as ServerAvailability:
  // kFreeOnly copies the mirrored Free() bits; the other modes add the
  // second aggregate per dimension exactly like ResourceVector::operator+.
  ResourceVector out;
  for (const ResourceKind kind : kAllResources) {
    switch (mode) {
      case AvailabilityMode::kFreeOnly:
        out[kind] = fleet.free_col(kind)[row];
        break;
      case AvailabilityMode::kFreePlusDeflatable:
        out[kind] = fleet.free_col(kind)[row] + fleet.deflatable_col(kind)[row];
        break;
      case AvailabilityMode::kFreePlusPreemptible:
        out[kind] = fleet.free_col(kind)[row] + fleet.preemptible_col(kind)[row];
        break;
    }
  }
  return out;
}

Result<size_t> PlaceVmFleet(const ResourceVector& demand, FleetView& fleet,
                            const std::vector<uint32_t>& candidates,
                            PlacementPolicy policy, Rng& rng, AvailabilityMode mode,
                            ThreadPool* pool) {
  if (candidates.empty()) {
    return Error{"no servers"};
  }
  // Bring every dirty row coherent before any column is read; O(1) when
  // nothing mutated since the last probe.
  fleet.Refresh();
  switch (policy) {
    case PlacementPolicy::kFirstFit: {
      const ChunkScan scan =
          ScanAllFleet(demand, fleet, candidates, mode, /*need_fitness=*/false, pool);
      if (scan.first_feasible == SIZE_MAX) {
        return Error{"no feasible server (first-fit)"};
      }
      return scan.first_feasible;
    }

    case PlacementPolicy::kBestFit: {
      const ChunkScan scan =
          ScanAllFleet(demand, fleet, candidates, mode, /*need_fitness=*/true, pool);
      if (scan.best_feasible == SIZE_MAX) {
        return Error{"no feasible server (best-fit)"};
      }
      return scan.best_feasible;
    }

    case PlacementPolicy::kTwoChoices: {
      // Same draw sequence, comparisons, and fallback as the object-graph
      // 2-choices -- only the availability reads come from the columns.
      constexpr int kAttempts = 8;
      const auto count = static_cast<int64_t>(candidates.size());
      for (int attempt = 0; attempt < kAttempts; ++attempt) {
        const auto a = static_cast<size_t>(rng.UniformInt(0, count - 1));
        size_t b = a;
        if (count >= 2) {
          b = static_cast<size_t>(rng.UniformInt(0, count - 2));
          if (b >= a) {
            ++b;
          }
        }
        const ResourceVector avail_a = FleetAvailability(fleet, candidates[a], mode);
        const bool fa = demand.AllLeq(avail_a);
        if (b == a) {
          if (fa) {
            return a;
          }
          continue;
        }
        const ResourceVector avail_b = FleetAvailability(fleet, candidates[b], mode);
        const bool fb = demand.AllLeq(avail_b);
        if (fa && fb) {
          const double fit_a = PlacementFitness(demand, avail_a);
          const double fit_b = PlacementFitness(demand, avail_b);
          return fit_a >= fit_b ? a : b;
        }
        if (fa) {
          return a;
        }
        if (fb) {
          return b;
        }
      }
      const ChunkScan scan =
          ScanAllFleet(demand, fleet, candidates, mode, /*need_fitness=*/false, pool);
      if (scan.first_feasible == SIZE_MAX) {
        return Error{"no feasible server (2-choices)"};
      }
      return scan.first_feasible;
    }
  }
  return Error{"unknown policy"};
}

}  // namespace defl
