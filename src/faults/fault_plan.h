// FaultPlan: a declarative, replayable schedule of failures to inject into a
// run. The paper's safety argument (Section 3.2) is that every cascade layer
// is best-effort -- "hot unplugging of resources may fail or only succeed in
// partial reclamation" -- and the hypervisor layer guarantees the target
// anyway; the cloud-scale follow-up (Fuerst & Shenoy) extends this to whole-
// server availability events. A FaultPlan names which failures occur where
// and when; the FaultInjector samples them deterministically from one seed,
// so the same plan + seed reproduces the exact same failure schedule.
//
// Plan file format (one directive per line, '#' comments):
//   faultplan/1 seed=<n>
//   rule kind=<kind> [vm=<id>] [server=<id>] [p=<prob>] [magnitude=<m>]
//        [start=<s>] [end=<s>] [at=<s>] [max=<n>]
//
// vm/server default to -1 (= any); `at=` pins start and end to one instant
// (used by the whole-server crash/degrade/recover events); `max` bounds how
// many times the rule may fire (-1 = unlimited). Magnitude semantics are
// kind-specific and documented on FaultKind.
#ifndef SRC_FAULTS_FAULT_PLAN_H_
#define SRC_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace defl {

enum class FaultKind : uint8_t {
  // --- Agent RPC layer (magnitudes: seconds of delay / fraction kept) ---
  kAgentUnresponsive,   // the agent never answers; the RPC times out
  kAgentSlow,           // the reply arrives `magnitude` seconds late
  kAgentShortDelivery,  // the agent frees only `magnitude` (0..1) of its reply
  // --- Wire transport (RemoteAgentProxy over a real transport) ---
  kWireDrop,     // the line is lost; the caller sees an empty response
  kWireCorrupt,  // one byte of the response line is mangled
  // --- Guest OS layer ---
  kUnplugPartial,  // memory unplug delivers only (1 - magnitude * U[0,1]) of
                   // what was computed as available (Section 3.2.2)
  // --- Hypervisor layer ---
  kHvLatencySpike,  // hypervisor-stage reclamation latency x `magnitude`
  // --- Whole-server availability events (scheduled; `at=` is the time) ---
  kServerDegrade,  // healthy -> degraded: excluded from new placements
  kServerCrash,    // -> down: hosted VMs are lost (re-placed or preempted)
  kServerRecover,  // down/degraded -> recovering -> healthy
};

inline constexpr int kNumFaultKinds = 10;

const char* FaultKindName(FaultKind kind);
Result<FaultKind> FaultKindFromName(const std::string& name);
// True for the whole-server events that are scheduled at a point in time
// rather than sampled at an injection site.
bool IsServerEventKind(FaultKind kind);

struct FaultRule {
  FaultKind kind = FaultKind::kUnplugPartial;
  int64_t vm = -1;      // -1 = any VM
  int64_t server = -1;  // -1 = any server
  double probability = 1.0;
  double magnitude = 1.0;  // kind-specific, see FaultKind
  double start_s = 0.0;    // active window in sim time, inclusive
  double end_s = kNoEnd;
  int64_t max_count = -1;  // total fires allowed; -1 = unlimited

  static constexpr double kNoEnd = 1e300;
};

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }
};

// Parses the plan text format above. Strict: unknown kinds, unknown keys,
// malformed numbers, probabilities outside [0,1], and negative magnitudes
// are errors, as is a missing/incorrect header line.
Result<FaultPlan> ParseFaultPlan(const std::string& text);

// Canonical encoding; ParseFaultPlan(EncodeFaultPlan(p)) round-trips.
std::string EncodeFaultPlan(const FaultPlan& plan);

Result<FaultPlan> LoadFaultPlanFile(const std::string& path);

}  // namespace defl

#endif  // SRC_FAULTS_FAULT_PLAN_H_
