place count=5 cpu=
