#include "src/cluster/cluster_sim.h"

#include <algorithm>
#include <memory>

#include "src/cluster/predictor.h"
#include "src/common/stats.h"
#include "src/sim/simulator.h"

namespace defl {

ClusterSimResult RunClusterSim(const ClusterSimConfig& config) {
  // Private context so every result field can still be derived from the
  // registry; nothing will export the trace, so don't accumulate it.
  TelemetryContext local;
  local.trace().set_enabled(false);
  return RunClusterSim(config, &local);
}

ClusterSimResult RunClusterSim(const ClusterSimConfig& config,
                               TelemetryContext* telemetry) {
  if (telemetry == nullptr) {
    return RunClusterSim(config);
  }
  Simulator sim;
  TelemetryClockScope clock_scope(telemetry, [&sim] { return sim.now(); });
  ClusterManager manager(config.num_servers, config.server_capacity, config.cluster,
                         telemetry);
  // Only built when the plan has rules, so a faultless run registers no
  // fault metrics and its output stays byte-identical to earlier builds.
  std::unique_ptr<FaultInjector> injector;
  if (!config.fault_plan.rules.empty()) {
    injector = std::make_unique<FaultInjector>(config.fault_plan);
    injector->AttachTelemetry(telemetry);
    manager.AttachFaultInjector(injector.get());
    for (const FaultInjector::ServerEvent& event :
         injector->ServerEventsFor(config.num_servers)) {
      sim.At(event.time_s, [&manager, &sim, &config, event] {
        switch (event.kind) {
          case FaultKind::kServerCrash:
            manager.CrashServer(event.server);
            break;
          case FaultKind::kServerDegrade:
            manager.DegradeServer(event.server);
            break;
          case FaultKind::kServerRecover:
            manager.RecoverServer(event.server);
            sim.After(config.recovery_grace_s,
                      [&manager, event] { manager.MarkHealthy(event.server); });
            break;
          default:
            break;
        }
      });
    }
  }
  const std::vector<TraceEvent> trace =
      config.explicit_trace.empty() ? GenerateTrace(config.trace)
                                    : config.explicit_trace;

  MetricsRegistry& registry = telemetry->metrics();
  const SeriesHandle util_series = registry.Series("cluster/utilization");
  const SeriesHandle oc_series = registry.Series("cluster/overcommitment");
  const SeriesHandle server_oc_series = registry.Series("cluster/server_overcommitment");
  const GaugeHandle low_vm_hours = registry.Gauge("cluster/usage/low_pri_vm_hours");
  const GaugeHandle low_nominal_cpu_hours =
      registry.Gauge("cluster/usage/low_pri_nominal_cpu_hours");
  const GaugeHandle low_effective_cpu_hours =
      registry.Gauge("cluster/usage/low_pri_effective_cpu_hours");
  const GaugeHandle high_cpu_hours = registry.Gauge("cluster/usage/high_pri_cpu_hours");
  const DistributionHandle allocation_quality =
      registry.Distribution("cluster/low_pri/allocation_quality");

  VmId next_id = 0;
  for (const TraceEvent& event : trace) {
    const VmId id = next_id++;
    sim.At(event.arrival_s, [&manager, &sim, event, id] {
      auto vm = std::make_unique<Vm>(id, event.spec);
      const Result<ServerId> placed = manager.LaunchVm(std::move(vm));
      if (!placed.ok()) {
        return;
      }
      sim.After(event.lifetime_s, [&manager, id] {
        // The VM may have been preempted in the meantime; completing a
        // missing VM is a no-op.
        if (manager.FindVm(id) != nullptr) {
          manager.CompleteVm(id);
        }
      });
    });
  }

  // The sampling sweep gathers every server's usage snapshot in parallel
  // (read-only, shard ownership over the accounting caches) and then folds
  // it into the registry here in canonical (server, hosting) order -- the
  // exact sequence of registry calls the old sequential loop made, so the
  // exported metrics are byte-identical for any --threads value.
  const double dt_hours = config.sample_period_s / 3600.0;
  std::vector<ClusterManager::ServerUsageSample> usage_samples;
  sim.Every(config.sample_period_s, [&] {
    manager.CollectUsageSamples(&usage_samples);  // also warms all caches
    registry.ObserveAt(util_series, sim.now(), manager.Utilization());
    registry.ObserveAt(oc_series, sim.now(), manager.Overcommitment());
    for (const ClusterManager::ServerUsageSample& sample : usage_samples) {
      registry.ObserveAt(server_oc_series, sim.now(), sample.nominal_overcommitment);
      for (const ClusterManager::ServerUsageSample::VmUsage& vm : sample.vms) {
        if (vm.low_priority) {
          registry.AddTo(low_vm_hours, dt_hours);
          registry.AddTo(low_nominal_cpu_hours, vm.nominal_cpu * dt_hours);
          registry.AddTo(low_effective_cpu_hours, vm.effective_cpu * dt_hours);
          if (vm.nominal_cpu > 0.0) {
            registry.Observe(allocation_quality, vm.effective_cpu / vm.nominal_cpu);
          }
        } else {
          registry.AddTo(high_cpu_hours, vm.effective_cpu * dt_hours);
        }
      }
    }
  });

  // Proactive reinflation loop (optionally with predictive holdback). The
  // demand gather and the per-server reinflation planning run sharded in
  // parallel; the plans apply in canonical server order (DESIGN.md §10).
  EwmaPredictor high_pri_demand(config.predictor_alpha);
  if (config.reinflate_period_s > 0.0) {
    sim.Every(config.reinflate_period_s, [&] {
      const double high_pri_cpu = manager.HighPriorityEffectiveCpu();
      high_pri_demand.Observe(high_pri_cpu);
      double holdback_cpu_per_server = 0.0;
      if (config.predictive_holdback && high_pri_demand.initialized()) {
        const double expected_growth =
            std::max(0.0, high_pri_demand.UpperBound(1.0) - high_pri_cpu);
        holdback_cpu_per_server = expected_growth / config.num_servers;
      }
      manager.ReinflateSweep(holdback_cpu_per_server);
    });
  }

  sim.Run(config.trace.duration_s);

  ClusterSimResult result;
  result.counters = manager.counters();
  const int64_t low = result.counters.launched_low_priority;
  result.preemption_probability =
      low > 0 ? static_cast<double>(result.counters.preempted) / static_cast<double>(low)
              : 0.0;
  const int64_t arrivals = result.counters.launched + result.counters.rejected;
  result.rejection_rate =
      arrivals > 0
          ? static_cast<double>(result.counters.rejected) / static_cast<double>(arrivals)
          : 0.0;
  // Everything below is a registry read: the result struct is a snapshot
  // view over the telemetry the run produced.
  result.mean_utilization =
      registry.SeriesTimeWeightedMean(util_series, config.trace.duration_s);
  result.mean_overcommitment =
      registry.SeriesTimeWeightedMean(oc_series, config.trace.duration_s);
  result.peak_overcommitment = registry.SeriesMax(oc_series);
  const auto& server_oc_points = registry.series_points(server_oc_series);
  result.server_overcommitment_samples.reserve(server_oc_points.size());
  for (const MetricsRegistry::TimePoint& point : server_oc_points) {
    result.server_overcommitment_samples.push_back(point.value);
  }
  result.usage.low_pri_vm_hours = registry.gauge(low_vm_hours);
  result.usage.low_pri_nominal_cpu_hours = registry.gauge(low_nominal_cpu_hours);
  result.usage.low_pri_effective_cpu_hours = registry.gauge(low_effective_cpu_hours);
  result.usage.high_pri_cpu_hours = registry.gauge(high_cpu_hours);
  result.usage.preemptions = result.counters.preempted;
  result.low_priority_allocation_quality =
      registry.distribution(allocation_quality).mean();
  result.crash_preemptions = result.counters.crash_preempted;
  result.crash_replacements = result.counters.crash_replaced;
  result.server_crashes = result.counters.server_crashes;
  result.server_recoveries = result.counters.server_recoveries;
  return result;
}

}  // namespace defl
