#!/bin/sh
# End-to-end determinism check for the what-if service (DESIGN.md §15):
#
#   1. Worker invariance on a MID-RUN snapshot (3h into a 6h run, so
#      `run hours=` queries actually simulate): the shipped query batch and
#      both shipped sweep grids must be byte-identical at workers 1 vs 8.
#   2. Base-source invariance: a cold snapshot taken at the horizon and a
#      durable-dir run of the same scenario driven to completion hold the
#      same state (recovery is byte-exact), so both bases must answer the
#      batch identically -- at different worker counts, for good measure.
#
# Usage: whatif_determinism_smoke.sh <deflation_sim> <deflation_server> \
#            <work_dir> <examples_dir>
set -eu

SIM="$1"
SERVER="$2"
DIR="$3"
EXAMPLES="$4"

rm -rf "$DIR"
mkdir -p "$DIR"
cd "$DIR"

# --- 1. Worker invariance on a mid-run snapshot ---
"$SIM" --servers=10 --duration-h=6 --load=1.5 \
  --stop-after-h=3 --snapshot-out=mid.snap > /dev/null

"$SERVER" --snapshot=mid.snap --queries="$EXAMPLES/whatif_queries.q" \
  --workers=1 --out=batch_w1.jsonl 2> /dev/null
"$SERVER" --snapshot=mid.snap --queries="$EXAMPLES/whatif_queries.q" \
  --workers=8 --out=batch_w8.jsonl 2> /dev/null
cmp batch_w1.jsonl batch_w8.jsonl

for grid in sweep_policies sweep_faults; do
  "$SERVER" --snapshot=mid.snap --sweep="$EXAMPLES/$grid.grid" \
    --workers=1 --out="${grid}_w1.jsonl" 2> /dev/null
  "$SERVER" --snapshot=mid.snap --sweep="$EXAMPLES/$grid.grid" \
    --workers=8 --out="${grid}_w8.jsonl" 2> /dev/null
  cmp "${grid}_w1.jsonl" "${grid}_w8.jsonl"
done

# --- 2. Cold snapshot vs recovered durable dir ---
"$SIM" --servers=10 --duration-h=3 --load=1.5 \
  --stop-after-h=3 --snapshot-out=cold.snap > /dev/null

"$SIM" --servers=10 --duration-h=3 --load=1.5 \
  --durable-dir=run.d --checkpoint-every-h=1 --checkpoint-min-wall-s=0 \
  > /dev/null

"$SERVER" --snapshot=cold.snap --queries="$EXAMPLES/whatif_queries.q" \
  --workers=1 --out=cold.jsonl 2> /dev/null
"$SERVER" --recover-dir=run.d --queries="$EXAMPLES/whatif_queries.q" \
  --workers=4 --out=recovered.jsonl 2> /dev/null
cmp cold.jsonl recovered.jsonl

echo "whatif determinism smoke: OK"
