// Fixed-size fork-join thread pool for the sharded cluster simulation
// (DESIGN.md §10). Deliberately minimal: no work stealing, no task queue --
// one blocking ParallelFor at a time, items claimed from an atomic cursor.
//
// Determinism contract: the pool makes NO ordering promises about which
// worker runs which item or in what order items execute. Callers must
// therefore (a) give each item exclusive ownership of the state it touches
// (shard ownership -- no locks on the hot path), and (b) fold the per-item
// results on the calling thread in a fixed canonical order, or use only
// order-independent reductions (argmax with a total-order tie-break).
// Under that contract, results are byte-identical for every pool size,
// including the inline (single-thread) pool.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace defl {

class ThreadPool {
 public:
  // `parallelism` is the total number of threads that execute a ParallelFor,
  // including the caller: a pool of parallelism N spawns N-1 workers.
  // Values <= 1 spawn nothing and ParallelFor runs inline.
  explicit ThreadPool(int parallelism);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int parallelism() const { return parallelism_; }

  // Invokes fn(i) exactly once for every i in [0, count), distributing items
  // across the workers and the calling thread, and returns when all items
  // have finished. With no workers (parallelism <= 1) the loop runs inline
  // in ascending order. fn must not throw and must not call ParallelFor on
  // the same pool (no nesting).
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();
  // Claims and runs items of the current job until the cursor is exhausted;
  // returns how many items this thread ran.
  int64_t DrainCurrentJob(const std::function<void(int64_t)>& fn);

  const int parallelism_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;   // workers: a new job or stop
  std::condition_variable done_;   // caller: all items finished, drains done
  uint64_t generation_ = 0;        // bumped per ParallelFor, guarded by mu_
  const std::function<void(int64_t)>* job_ = nullptr;  // guarded by mu_
  int64_t job_count_ = 0;          // guarded by mu_ writes; read while draining
  std::atomic<int64_t> next_cursor_{0};
  int64_t completed_ = 0;  // items finished this job, guarded by mu_
  int64_t draining_ = 0;   // workers inside DrainCurrentJob, guarded by mu_
  bool stop_ = false;      // guarded by mu_
  // Lock-free mirror of generation_ so idle workers can spin briefly before
  // falling back to the condition variable.
  std::atomic<uint64_t> generation_hint_{0};
};

}  // namespace defl

#endif  // SRC_COMMON_THREAD_POOL_H_
