#include "src/spark/experiment.h"

#include <gtest/gtest.h>

namespace defl {
namespace {

// Scaled-down workloads keep the suite fast; shapes are scale-invariant.
constexpr double kScale = 0.25;

double NormalizedRunningTime(const SparkWorkload& wl, SparkReclamationApproach approach,
                             double fraction, double at_progress = 0.5) {
  SparkExperimentConfig config;
  config.approach = approach;
  config.deflation_fraction = fraction;
  config.deflate_at_progress = at_progress;
  const double baseline = SparkBaselineMakespan(wl, config);
  const SparkExperimentResult result = RunSparkExperiment(wl, config);
  EXPECT_TRUE(result.completed) << wl.name << " did not complete";
  return result.makespan_s / baseline;
}

TEST(SparkExperimentTest, BaselinesComplete) {
  SparkExperimentConfig config;
  for (const SparkWorkload& wl :
       {MakeAlsWorkload(kScale), MakeKmeansWorkload(kScale), MakeCnnWorkload(kScale),
        MakeRnnWorkload(kScale)}) {
    const double t = SparkBaselineMakespan(wl, config);
    EXPECT_GT(t, 0.0) << wl.name;
  }
}

TEST(SparkExperimentTest, DeflationSlowsJobsButLessThanProportionally) {
  // Figure 6 headline: 50% deflation costs well under 2x for VM-level.
  for (const SparkWorkload& wl : {MakeAlsWorkload(kScale), MakeKmeansWorkload(kScale)}) {
    const double t =
        NormalizedRunningTime(wl, SparkReclamationApproach::kVmLevel, 0.5);
    EXPECT_GT(t, 1.05) << wl.name;
    EXPECT_LT(t, 2.2) << wl.name;
  }
}

TEST(SparkExperimentTest, AlsSelfDeflationIsExpensive) {
  // Figure 6a: shuffle-heavy ALS recomputes deeply under self-deflation;
  // VM-level is cheaper.
  const SparkWorkload wl = MakeAlsWorkload(kScale);
  const double self =
      NormalizedRunningTime(wl, SparkReclamationApproach::kSelfDeflation, 0.5);
  const double vm = NormalizedRunningTime(wl, SparkReclamationApproach::kVmLevel, 0.5);
  EXPECT_GT(self, vm);
}

TEST(SparkExperimentTest, KmeansSelfDeflationIsCheap) {
  // Figure 6b: K-means' shallow lineage makes self-deflation the better
  // mechanism.
  const SparkWorkload wl = MakeKmeansWorkload(kScale);
  const double self =
      NormalizedRunningTime(wl, SparkReclamationApproach::kSelfDeflation, 0.5);
  const double vm = NormalizedRunningTime(wl, SparkReclamationApproach::kVmLevel, 0.5);
  EXPECT_LT(self, vm);
  EXPECT_LT(self, 1.8);
}

TEST(SparkExperimentTest, CascadePolicyTracksTheBetterMechanism) {
  for (const SparkWorkload& wl : {MakeAlsWorkload(kScale), MakeKmeansWorkload(kScale)}) {
    const double self =
        NormalizedRunningTime(wl, SparkReclamationApproach::kSelfDeflation, 0.5);
    const double vm = NormalizedRunningTime(wl, SparkReclamationApproach::kVmLevel, 0.5);
    const double cascade =
        NormalizedRunningTime(wl, SparkReclamationApproach::kCascadePolicy, 0.5);
    EXPECT_LE(cascade, std::min(self, vm) + 0.05) << wl.name;
  }
}

TEST(SparkExperimentTest, CnnPreemptionWorseThanDeflation) {
  // Figure 6c: deflation roughly halves the degradation vs preemption for
  // synchronous training.
  const SparkWorkload wl = MakeCnnWorkload(kScale);
  const double vm = NormalizedRunningTime(wl, SparkReclamationApproach::kVmLevel, 0.5);
  const double preempt =
      NormalizedRunningTime(wl, SparkReclamationApproach::kPreemption, 0.5);
  EXPECT_GT(preempt, vm * 1.3);
  EXPECT_LT(vm, 1.7);  // training tolerates VM-level deflation gracefully
}

TEST(SparkExperimentTest, CascadePicksVmLevelForSynchronousTraining) {
  const SparkWorkload wl = MakeRnnWorkload(kScale);
  SparkExperimentConfig config;
  config.approach = SparkReclamationApproach::kCascadePolicy;
  config.deflation_fraction = 0.5;
  const SparkExperimentResult result = RunSparkExperiment(wl, config);
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(result.deflation_applied);
  EXPECT_EQ(result.decision.choice, SparkDeflationChoice::kVmLevel);
  EXPECT_DOUBLE_EQ(result.decision.r_used, 1.0);
}

TEST(SparkExperimentTest, SelfDeflationCostGrowsWithProgress) {
  // Figure 7a: deflating later means more completed work is at risk; the
  // self-deflation overhead trend is upward in job progress while VM-level
  // overhead trends downward.
  const SparkWorkload wl = MakeAlsWorkload(kScale);
  const double self_early =
      NormalizedRunningTime(wl, SparkReclamationApproach::kSelfDeflation, 0.5, 0.2);
  const double self_late =
      NormalizedRunningTime(wl, SparkReclamationApproach::kSelfDeflation, 0.5, 0.7);
  const double vm_early =
      NormalizedRunningTime(wl, SparkReclamationApproach::kVmLevel, 0.5, 0.2);
  const double vm_late =
      NormalizedRunningTime(wl, SparkReclamationApproach::kVmLevel, 0.5, 0.7);
  EXPECT_GT(vm_early, vm_late);
  EXPECT_LT(self_early - vm_early, self_late - vm_late);
}

TEST(SparkExperimentTest, TransientPressureWithReinflation) {
  // Figure 7b in microcosm: pressure for a window, then reinflation; the job
  // completes with modest overhead compared to permanent deflation.
  const SparkWorkload wl = MakeCnnWorkload(kScale);
  SparkExperimentConfig config;
  config.approach = SparkReclamationApproach::kVmLevel;
  config.deflation_fraction = 0.5;
  config.deflate_at_time_s = 20.0;
  config.reinflate_after_s = 20.0;  // pressure ends well before the job does
  const double baseline = SparkBaselineMakespan(wl, config);
  const SparkExperimentResult result = RunSparkExperiment(wl, config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.makespan_s, baseline);

  SparkExperimentConfig permanent = config;
  permanent.reinflate_after_s = -1.0;
  const SparkExperimentResult forever = RunSparkExperiment(wl, permanent);
  ASSERT_TRUE(forever.completed);
  EXPECT_LT(result.makespan_s, forever.makespan_s);
}

TEST(SparkExperimentTest, ApproachNames) {
  EXPECT_STREQ(SparkReclamationApproachName(SparkReclamationApproach::kCascadePolicy),
               "cascade");
  EXPECT_STREQ(SparkReclamationApproachName(SparkReclamationApproach::kPreemption),
               "preemption");
}

}  // namespace
}  // namespace defl
