#include "src/hypervisor/server.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace defl {

Server::Server(ServerId id, ResourceVector capacity) : id_(id), capacity_(capacity) {}

Vm* Server::AddVm(std::unique_ptr<Vm> vm) {
  assert(vm != nullptr);
  if (!vm->effective().AllLeq(Free())) {
    DEFL_LOG(kWarn) << "server " << id_ << ": admitting VM " << vm->id()
                    << " beyond free capacity";
  }
  vm->set_state(VmState::kRunning);
  vms_.push_back(std::move(vm));
  return vms_.back().get();
}

std::unique_ptr<Vm> Server::RemoveVm(VmId id) {
  const auto it = std::find_if(vms_.begin(), vms_.end(),
                               [id](const auto& vm) { return vm->id() == id; });
  if (it == vms_.end()) {
    return nullptr;
  }
  std::unique_ptr<Vm> out = std::move(*it);
  vms_.erase(it);
  return out;
}

Vm* Server::FindVm(VmId id) {
  const auto it = std::find_if(vms_.begin(), vms_.end(),
                               [id](const auto& vm) { return vm->id() == id; });
  return it != vms_.end() ? it->get() : nullptr;
}

ResourceVector Server::Allocated() const {
  ResourceVector total;
  for (const auto& vm : vms_) {
    total += vm->effective();
  }
  return total;
}

ResourceVector Server::Free() const {
  return (capacity_ - Allocated()).ClampNonNegative();
}

ResourceVector Server::Deflatable() const {
  ResourceVector total;
  for (const auto& vm : vms_) {
    total += vm->deflatable_amount();
  }
  return total;
}

ResourceVector Server::Availability() const { return Free() + Deflatable(); }

double Server::NominalOvercommitment() const {
  ResourceVector nominal;
  for (const auto& vm : vms_) {
    nominal += vm->size();
  }
  double oc = 0.0;
  for (const ResourceKind kind : kAllResources) {
    if (capacity_[kind] > 0.0) {
      oc = std::max(oc, nominal[kind] / capacity_[kind]);
    }
  }
  return oc;
}

double Server::Utilization() const {
  const ResourceVector alloc = Allocated();
  double util = 0.0;
  for (const ResourceKind kind : kAllResources) {
    if (capacity_[kind] > 0.0) {
      util = std::max(util, alloc[kind] / capacity_[kind]);
    }
  }
  return std::min(util, 1.0);
}

bool Server::CanFitWithDeflation(const ResourceVector& demand) const {
  return demand.AllLeq(Availability());
}

}  // namespace defl
